// Tests of the remote-open baseline (Locus/Newcastle-style comparator).

#include "src/baseline/remote_open.h"

#include <gtest/gtest.h>

#include "src/rpc/interceptor.h"

namespace itc::baseline {
namespace {

class RemoteOpenTest : public ::testing::Test {
 protected:
  static constexpr UserId kUser = 9;

  RemoteOpenTest()
      : topo_(net::TopologyConfig{1, 1, 2}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_),
        key_(crypto::DeriveKeyFromPassword("pw", "realm")),
        server_(topo_.ServerNode(0, 0), &network_, cost_, rpc::RpcConfig{},
                [this](UserId u) -> std::optional<crypto::Key> {
                  if (u == kUser) return key_;
                  return std::nullopt;
                },
                77),
        client_(topo_.WorkstationNode(0, 0), &clock_, &server_, &network_, cost_) {}

  void SetUp() override { ASSERT_EQ(client_.Connect(kUser, key_, 5), Status::kOk); }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  crypto::Key key_;
  RemoteOpenServer server_;
  sim::Clock clock_;
  RemoteOpenClient client_;
};

TEST_F(RemoteOpenTest, WriteThenReadWholeFile) {
  const Bytes data(10000, 0x5a);
  ASSERT_EQ(client_.WriteWholeFile("/f", data), Status::kOk);
  auto back = client_.ReadWholeFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(RemoteOpenTest, EveryPageIsAnRpc) {
  const Bytes data(10 * kPageSize, 1);
  ASSERT_EQ(client_.WriteWholeFile("/f", data), Status::kOk);
  const uint64_t calls_before = server_.endpoint().stats().calls;
  ASSERT_TRUE(client_.ReadWholeFile("/f").ok());
  // Stat + open + 10 page reads + close = 13 calls.
  EXPECT_EQ(server_.endpoint().stats().calls - calls_before, 13u);
}

TEST_F(RemoteOpenTest, SparseReadTouchesOnePage) {
  const Bytes data(100 * kPageSize, 2);
  ASSERT_EQ(server_.storage().WriteFile("/big", data), Status::kOk);  // direct population
  auto handle = client_.Open("/big", false);
  ASSERT_TRUE(handle.ok());
  const uint64_t calls_before = server_.endpoint().stats().calls;
  auto page = client_.Read(*handle, 50 * kPageSize, 100);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), 100u);
  EXPECT_EQ(server_.endpoint().stats().calls - calls_before, 1u);
  EXPECT_EQ(client_.Close(*handle), Status::kOk);
}

TEST_F(RemoteOpenTest, StatAndDirOps) {
  ASSERT_EQ(client_.MkDir("/d"), Status::kOk);
  ASSERT_EQ(client_.WriteWholeFile("/d/f", ToBytes("xyz")), Status::kOk);
  auto st = client_.Stat("/d/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3u);
  EXPECT_FALSE(st->is_directory);
  EXPECT_TRUE(client_.Stat("/d")->is_directory);
  ASSERT_EQ(client_.Unlink("/d/f"), Status::kOk);
  EXPECT_EQ(client_.Stat("/d/f").status(), Status::kNotFound);
}

TEST_F(RemoteOpenTest, MissingFileAndBadHandle) {
  EXPECT_EQ(client_.Open("/nope", false).status(), Status::kNotFound);
  EXPECT_EQ(client_.Read(999, 0, 10).status(), Status::kBadDescriptor);
  EXPECT_EQ(client_.Close(999), Status::kBadDescriptor);
}

TEST_F(RemoteOpenTest, HandlesAreReleasedOnClose) {
  ASSERT_EQ(client_.WriteWholeFile("/f", ToBytes("x")), Status::kOk);
  auto h = client_.Open("/f", false);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(server_.open_handles(), 1u);
  ASSERT_EQ(client_.Close(*h), Status::kOk);
  EXPECT_EQ(server_.open_handles(), 0u);
}

TEST_F(RemoteOpenTest, RereadCostsFullPriceWithoutCaching) {
  // The defining weakness vs whole-file caching: the second read of the
  // same file costs just as much as the first.
  const Bytes data(20 * kPageSize, 3);
  ASSERT_EQ(client_.WriteWholeFile("/f", data), Status::kOk);

  const SimTime t0 = clock_.now();
  ASSERT_TRUE(client_.ReadWholeFile("/f").ok());
  const SimTime first = clock_.now() - t0;
  ASSERT_TRUE(client_.ReadWholeFile("/f").ok());
  const SimTime second = clock_.now() - t0 - first;
  EXPECT_NEAR(static_cast<double>(second), static_cast<double>(first),
              static_cast<double>(first) * 0.05);
}

TEST_F(RemoteOpenTest, ReadWholeFileSurfacesCloseFailure) {
  // Regression: ReadWholeFile used to drop the Status of its trailing Close,
  // returning the data as if nothing went wrong while the server-side handle
  // leaked. ReadWholeFile on a one-page file is stat + open + read + close;
  // fail exactly the close and the error must surface.
  const Bytes data(100, 0x7);
  ASSERT_EQ(client_.WriteWholeFile("/f", data), Status::kOk);
  server_.endpoint().fault().FailCalls(/*skip=*/3, /*count=*/1);
  auto back = client_.ReadWholeFile("/f");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status(), Status::kUnavailable);
  // The failed close really did leak the handle — the observable the old
  // code hid from the caller.
  EXPECT_EQ(server_.open_handles(), 1u);
  // With the fault cleared, the same read goes through.
  auto again = client_.ReadWholeFile("/f");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, data);
}

TEST_F(RemoteOpenTest, ReadDirListsNames) {
  ASSERT_EQ(client_.MkDir("/d"), Status::kOk);
  ASSERT_EQ(client_.WriteWholeFile("/d/a", ToBytes("1")), Status::kOk);
  ASSERT_EQ(client_.WriteWholeFile("/d/b", ToBytes("2")), Status::kOk);
  auto names = client_.ReadDir("/d");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "a");
  EXPECT_EQ((*names)[1], "b");
  EXPECT_EQ(client_.ReadDir("/nope").status(), Status::kNotFound);
  EXPECT_EQ(client_.ReadDir("/d/a").status(), Status::kNotDirectory);
}

TEST_F(RemoteOpenTest, RenameWithinServer) {
  ASSERT_EQ(client_.WriteWholeFile("/old", ToBytes("data")), Status::kOk);
  ASSERT_EQ(client_.Rename("/old", "/new"), Status::kOk);
  EXPECT_EQ(client_.Stat("/old").status(), Status::kNotFound);
  auto back = client_.ReadWholeFile("/new");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ToString(*back), "data");
  EXPECT_EQ(client_.Rename("/nope", "/x"), Status::kNotFound);
}

TEST_F(RemoteOpenTest, RmDirOnlyRemovesEmptyDirectories) {
  ASSERT_EQ(client_.MkDir("/d"), Status::kOk);
  ASSERT_EQ(client_.WriteWholeFile("/d/f", ToBytes("x")), Status::kOk);
  EXPECT_EQ(client_.RmDir("/d"), Status::kNotEmpty);
  ASSERT_EQ(client_.Unlink("/d/f"), Status::kOk);
  EXPECT_EQ(client_.RmDir("/d"), Status::kOk);
  EXPECT_EQ(client_.Stat("/d").status(), Status::kNotFound);
}

TEST_F(RemoteOpenTest, TruncateShrinksOpenFile) {
  ASSERT_EQ(client_.WriteWholeFile("/f", Bytes(5000, 0x11)), Status::kOk);
  auto h = client_.Open("/f", false);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(client_.Truncate(*h, 0), Status::kOk);
  ASSERT_EQ(client_.Close(*h), Status::kOk);
  EXPECT_EQ(client_.Stat("/f")->size, 0u);
  EXPECT_EQ(client_.Truncate(999, 0), Status::kBadDescriptor);
}

}  // namespace
}  // namespace itc::baseline
