// Fixture: deterministic time and randomness via the sim layer.
#include "src/common/rng.h"
#include "src/sim/clock.h"

namespace itc {

long Stamp(sim::Clock& clock) {
  return static_cast<long>(clock.Now());  // member accessor, not libc
}

int Jitter(common::Rng& rng) {
  return static_cast<int>(rng.Next() % 7);
}

struct Timer {
  long deadline_time = 0;  // 'time' as part of another identifier is fine
};

}  // namespace itc
