// kernel-ownership (per-shard) negative fixture: every touch of
// owned-by-shard state is ENTRY/QUIESCENT-reachable or carries the
// ITC_SHARD_FOREIGN waiver — and the waiver does not loosen plain
// ITC_OWNED_BY_KERNEL state in the same class.
#ifndef OWNERSHIP_SHARD_GOOD_H_
#define OWNERSHIP_SHARD_GOOD_H_

class Endpoint {
 public:
  Endpoint() { calls_ = 0; }
  ITC_KERNEL_ENTRY void Handle() { Bump(); }
  ITC_KERNEL_QUIESCENT void Reset() {
    calls_ = 0;
    epoch_ = 0;
  }
  // A declared cross-shard teardown path: waived, not sanctioned.
  ITC_SHARD_FOREIGN void Close() { calls_ = -1; }

 private:
  void Bump() { calls_++; }  // reachable via Handle

  ITC_OWNED_BY_SHARD int calls_ = 0;
  ITC_OWNED_BY_KERNEL int epoch_ = 0;
};

#endif  // OWNERSHIP_SHARD_GOOD_H_
