// Fixture: no-eager-contents stays quiet on lazy refs, sanctioned
// transients, and Materialize() away from populate sites.
#include "src/common/content.h"

void PopulateEverything(Campus& campus, VolumeId vol, uint64_t seed) {
  for (uint32_t i = 0; i < 1000; ++i) {
    (void)campus.PopulateDirect(vol, "/f" + std::to_string(i),
                                content::Ref::ForSeed(seed ^ i, 4096));
  }
  // itcfs-lint: allow(no-eager-contents) -- transient store payload
  Bytes scratch = SynthesizeContents(seed, 4096);
  (void)scratch;
  // Materialize outside a populate statement: a wire payload, fine.
  content::Ref ref = content::Ref::ForSeed(seed, 4096);
  Bytes wire = ref.Materialize();
  (void)wire;
}
