// Fixture: schema half of a consistent opcode set. Lexed under the path
// src/vice/protocol.cc.
#include "src/vice/protocol.h"

namespace itc::vice {

const std::vector<OpSpec>& ViceOpSchema() {
  static const std::vector<OpSpec> schema = {
      {Op(Proc::kTestAuth), "TestAuth", OpClass::kOther, true},
      {Op(Proc::kGetTime), "GetTime", OpClass::kOther, true},
      {Op(Proc::kFetch), "Fetch", OpClass::kFile, true},
  };
  return schema;
}

}  // namespace itc::vice
