// stale-suppression negative fixture: every allow earns its keep (or is an
// allow(stale-suppression), which the rule cannot self-evaluate).
struct Clock {
  long Now() {
    // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- fixture wall clock
    return time(nullptr);
  }
};

// itcfs-lint: allow(stale-suppression)
int D() { return 4; }
