// Fixture: enum half of a consistent opcode set. Lexed under the path
// src/vice/protocol.h so the opcode-sync rule picks it up.
#include <cstdint>

namespace itc::vice {

enum class Proc : uint32_t {
  kTestAuth = 1,
  kGetTime = 2,
  kFetch = 10,
};

}  // namespace itc::vice
