// Fixture: no-eager-contents must fire on both patterns.
#include "src/workload/source_tree.h"

void PopulateEverything(Campus& campus, VolumeId vol, uint64_t seed) {
  for (uint32_t i = 0; i < 1000; ++i) {
    // Pattern (a): eager materialization of synthetic contents.
    Bytes data = SynthesizeContents(seed ^ i, 4096);
    (void)campus.PopulateDirect(vol, "/f" + std::to_string(i), data);
  }
  // Pattern (b): Materialize() in the same statement as a Populate* call.
  content::Ref ref = content::Ref::ForSeed(seed, 4096);
  (void)campus.PopulateDirect(vol, "/big", ref.Materialize());
}
