// Fixture: assert() conditions with side effects (vanish under NDEBUG).
#include <cassert>

namespace itc {

void Drain(int* queue, int n) {
  assert(n-- > 0);          // violation: decrement in the condition
  assert((queue[0] = 1));   // violation: assignment in the condition
  assert(n >= 0);           // fine: pure condition
  (void)queue;
}

}  // namespace itc
