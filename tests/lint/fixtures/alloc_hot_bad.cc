// Positive fixture for no-alloc-in-kernel-hot-path: allocations and container
// growth inside Kernel::Run / Kernel::Dispatch must fire; the same calls in a
// cold-path Kernel method (Spawn) must not.

#include "src/sim/kernel.h"

namespace itc::sim {

void Kernel::Run() {
  Event* scratch = new Event();  // fires: 'new'
  trace_.push_back(TraceEntry{scratch->time, scratch->seq, "x"});  // fires: growth
  auto a = std::make_unique<Activity>();  // fires: make_unique
  Dispatch(a.get());
}

void Kernel::Dispatch(Activity* a) {
  ready_.insert(a);  // fires: growth
  a->resume = true;
}

void Kernel::Spawn(Activity* a) {
  queue_.push_back(a);  // quiet: Spawn is a cold path
  names_.emplace_back("activity");
}

}  // namespace itc::sim
