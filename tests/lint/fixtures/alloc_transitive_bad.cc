// no-alloc-in-kernel-hot-path-transitive positive fixture: helpers reachable
// from the kernel hot path allocate. Allocation directly inside Run/Dispatch
// belongs to the direct rule and must NOT be re-reported here.
class Kernel {
 public:
  void Run() {
    heap_.push_back(0);  // direct rule's territory, not this rule's
    Pump();
  }
  void Dispatch() { heap_.push_back(1); }  // likewise
  void WaitUntil(long t) { Park(t); }

 private:
  void Pump() { buf_ = new char[64]; }
  void Park(long t) { queue_.push_back(t); }

  char* buf_ = nullptr;
  std::vector<long> heap_;
  std::vector<long> queue_;
};
