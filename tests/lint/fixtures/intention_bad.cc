// Fixture: a ViceServer handler mutating a volume before logging an
// intention record. Lexed under the path src/vice/file_server.cc.
#include "src/vice/file_server.h"

namespace itc::vice {

Status ViceServer::Store(const CallContext& ctx, const Fid& fid,
                         const std::string& data) {
  Volume* vol = LookupVolume(fid);
  Status st = vol->StoreData(fid, data);  // violation: no LogIntention yet
  if (st != Status::kOk) return st;
  uint64_t lsn = LogIntention(ctx, IntentionKind::kStore, vol, data);
  return CommitIntention(ctx, lsn);
}

Status ViceServer::Fetch(const CallContext& ctx, const Fid& fid) {
  Volume* vol = LookupVolume(fid);
  return vol->GetStatus(fid).status();  // fine: read-only handler
}

}  // namespace itc::vice
