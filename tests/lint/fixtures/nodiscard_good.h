// Fixture: every Status/Result declaration carries [[nodiscard]].
#include "src/common/result.h"

namespace itc {

class Widget {
 public:
  [[nodiscard]] Status Flush();
  [[nodiscard]] Result<int> Measure() const;
  [[nodiscard]] virtual Status Sync(bool force);
  int Count() const;
};

[[nodiscard]] Status FreeFlush(Widget* w);

}  // namespace itc
