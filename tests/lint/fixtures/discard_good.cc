// Fixture: every Status/Result is consumed, propagated, or (void)-cast.
#include "tests/lint/fixtures/discard_decls.h"

namespace itc {

Status Use(Store& s, Store* p) {
  Status st = s.Put(1);
  if (st != Status::kOk) return st;
  auto value = p->Get(2);
  if (!value.ok()) return value.status();
  if (Compact(p) != Status::kOk) return Status::kNoSpace;
  (void)Compact(p);  // best-effort by design; sanctioned escape hatch
  s.Touch(3);
  return Status::kOk;
}

}  // namespace itc
