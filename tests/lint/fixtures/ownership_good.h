// kernel-ownership negative fixture: every touch of owned state is a ctor,
// a dtor, or reachable from an ENTRY/QUIESCENT function — and another class
// reusing the member name is not confused with the owner.
#ifndef OWNERSHIP_GOOD_H_
#define OWNERSHIP_GOOD_H_

class Kern {
 public:
  Kern() { ticks_ = 0; }
  ~Kern() { log_.clear(); }
  ITC_KERNEL_ENTRY void Run() { Advance(); }
  ITC_KERNEL_QUIESCENT void Reset() {
    ticks_ = 0;
    log_.clear();
  }
  ITC_KERNEL_QUIESCENT int Peek() const { return log_[0]; }

 private:
  void Advance() { log_.push_back(ticks_++); }  // reachable via Run

  ITC_OWNED_BY_KERNEL int ticks_ = 0;
  ITC_OWNED_BY_KERNEL std::vector<int> log_;
};

class Other {
 public:
  void Touch() { ticks_ = 1; }  // Other's own ticks_, not Kern's

 private:
  int ticks_ = 0;
};

#endif  // OWNERSHIP_GOOD_H_
