// Fixture: declarations the discarded-status fixtures call.
#include "src/common/result.h"

namespace itc {

class Store {
 public:
  [[nodiscard]] Status Put(int key);
  [[nodiscard]] Result<int> Get(int key);
  void Touch(int key);
};

[[nodiscard]] Status Compact(Store* s);

}  // namespace itc
