// Fixture: pure assert conditions; side effects happen outside.
#include <cassert>

namespace itc {

void Drain(int* queue, int n) {
  --n;
  assert(n >= 0);
  queue[0] = 1;
  assert(queue[0] == 1);
}

}  // namespace itc
