// Fixture: Status-returning declarations without [[nodiscard]].
#include "src/common/result.h"

namespace itc {

class Widget {
 public:
  Status Flush();                    // violation: plain Status
  Result<int> Measure() const;      // violation: Result<T>
  virtual Status Sync(bool force);  // violation: qualifier before the type
  int Count() const;                // fine: not an error-carrying type
};

Status FreeFlush(Widget* w);  // violation: free function

}  // namespace itc
