// Fixture: the intention record is appended before the first mutation.
#include "src/vice/file_server.h"

namespace itc::vice {

Status ViceServer::Store(const CallContext& ctx, const Fid& fid,
                         const std::string& data) {
  Volume* vol = LookupVolume(fid);
  uint64_t lsn = LogIntention(ctx, IntentionKind::kStore, vol, data);
  Status st = vol->StoreData(fid, data);
  if (st != Status::kOk) {
    AbortIntention(lsn);
    return st;
  }
  return CommitIntention(ctx, lsn);
}

Status ViceServer::Fetch(const CallContext& ctx, const Fid& fid) {
  Volume* vol = LookupVolume(fid);
  return vol->GetStatus(fid).status();
}

}  // namespace itc::vice
