// sim-determinism-transitive positive fixture: wall-clock taint laundered
// through helpers. allow(sim-determinism) silences the direct diagnostic but
// does not sanction the wrapper for its callers.
long WallSeconds() { return time(nullptr); }

long Uptime() { return WallSeconds() - 100; }

long Doubly() { return Uptime() * 2; }

long Sneaky() {
  // itcfs-lint: allow(sim-determinism) -- direct rule silenced only
  return time(nullptr);
}

long Launder() { return Sneaky(); }
