// Fixture: raw numeric lease durations outside the config default sites.
#include "src/common/types.h"

namespace itc {

void Offenders(SimTime now) {
  SimTime lease_expiry = now + Seconds(30);  // 1: expiry from a literal
  (void)lease_expiry;
  SuspendLeaseGrantsUntil(now + Seconds(30));  // 2: embargo from a literal
  if (lease_expiry - now < Millis(500)) {  // 3: renewal margin from a literal
    RenewLeases();
  }
}

}  // namespace itc
