// Fixture: suppression comments silence a diagnostic on their line or the
// line below; unrelated rule ids do not.
#include <ctime>

namespace itc {

long Stamp() {
  return time(nullptr);  // itcfs-lint: allow(sim-determinism)
}

long Stamp2() {
  // itcfs-lint: allow(sim-determinism) -- wall clock wanted for log prefix
  return time(nullptr);
}

long Stamp3() {
  return time(nullptr);  // itcfs-lint: allow(opcode-sync) -- wrong id, still fires
}

}  // namespace itc
