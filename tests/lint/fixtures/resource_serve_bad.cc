// Positive fixture for resource-serve-outside-kernel: functional code calls
// Resource::Serve directly instead of charging through sim::Charge.

#include "src/sim/resource.h"

namespace itc {

SimTime ChargeDirectly(sim::Resource& cpu, sim::Resource* disk, SimTime t) {
  t = cpu.Serve(t, 10);    // fires: member call via '.'
  t = disk->Serve(t, 20);  // fires: member call via '->'
  return t;
}

}  // namespace itc
