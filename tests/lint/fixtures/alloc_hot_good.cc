// Negative fixture for no-alloc-in-kernel-hot-path: in-place writes, heap
// pops, and shrinking are fine in the hot path; growth is allowed when
// suppressed for a documented cold path, and other classes' Run methods are
// not the kernel's.

#include "src/sim/kernel.h"

namespace itc::sim {

void Kernel::Run() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    const Event e = heap_.back();
    heap_.pop_back();                                // shrink: fine
    trace_buf_[trace_head_] = TraceEntry{e.time};    // in-place write: fine
    Dispatch(e.activity);
  }
}

void Kernel::Dispatch(Activity* a) {
  // itcfs-lint: allow(no-alloc-in-kernel-hot-path) -- lazy thread start is the cold reference path
  cold_starts_.push_back(a);
  a->resume = true;
}

void Harness::Run() {
  rows_.push_back(1);  // quiet: not the Kernel
}

}  // namespace itc::sim
