// Fixture: headers use the always-on ITC_CHECK instead of assert().
#include "src/common/logging.h"

namespace itc {

inline int Checked(int v) {
  ITC_CHECK(v >= 0);
  return v;
}

}  // namespace itc
