// sim-determinism-transitive negative fixture: the wrapper's banned line
// carries allow(sim-determinism-transitive), which sanctions it for callers.
long WallSeconds() {
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- measurement wrapper
  return time(nullptr);
}

long Uptime() { return WallSeconds() - 100; }
