// Negative fixture for resource-serve-outside-kernel: demands are charged
// through the kernel's staged API, and identifiers that merely resemble the
// Resource API stay quiet.

#include "src/sim/kernel.h"

namespace itc {

// A declaration named Serve is not a member call.
class Dispatcher {
 public:
  SimTime Serve(SimTime at, SimTime demand);
};

SimTime Serve(SimTime at);        // free function declaration
SimTime ServeTable(SimTime at);   // different identifier entirely

SimTime ChargeProperly(sim::Resource& cpu, SimTime t) {
  t = sim::Charge(cpu, t, 10);  // the sanctioned path
  t = Serve(t);                 // free-function call: not the Resource API
  t = ServeTable(t);
  return t;
}

}  // namespace itc
