// Fixture: enum with an entry the schema never registers (kRemove), and an
// entry whose wire name disagrees with the enumerator (kGetTime/"Clock").
#include <cstdint>

namespace itc::vice {

enum class Proc : uint32_t {
  kTestAuth = 1,
  kGetTime = 2,
  kFetch = 10,
  kRemove = 11,
};

}  // namespace itc::vice
