// kernel-ownership positive fixture: Rogue and Peek touch ITC_OWNED_BY_KERNEL
// state from methods no entry point can reach.
#ifndef OWNERSHIP_BAD_H_
#define OWNERSHIP_BAD_H_

class Kern {
 public:
  ITC_KERNEL_ENTRY void Run() {
    ticks_++;
    Advance();
  }
  ITC_KERNEL_QUIESCENT int Drain() { return log_.back(); }
  void Rogue() { ticks_ = 0; }
  int Peek() const { return log_[0]; }

 private:
  void Advance() { log_.push_back(ticks_); }  // reachable via Run: sanctioned

  ITC_OWNED_BY_KERNEL int ticks_ = 0;
  ITC_OWNED_BY_KERNEL std::vector<int> log_;
};

#endif  // OWNERSHIP_BAD_H_
