// Fixture: assert() in a header — a silent no-op under the default
// RelWithDebInfo (NDEBUG) build.
#include <cassert>

namespace itc {

inline int Checked(int v) {
  assert(v >= 0);  // violation: use ITC_CHECK instead
  return v;
}

}  // namespace itc
