// Negative fixture for vfs-dispatch-only: control-plane Venus calls and
// dispatch through the switch stay quiet; identifiers that merely resemble
// the banned shapes are not member file operations.

#include "src/venus/venus.h"
#include "src/virtue/vfs/switch.h"

namespace itc::virtue {

class Proper {
 public:
  Status Login(UserId user, const crypto::Key& key) {
    return venus_->Login(user, key);              // control plane: legal
  }
  void Logout() { venus_->Logout(); }             // control plane: legal
  UserId Who() { return venus_->user(); }         // control plane: legal

  Status Touch(const std::string& path) {
    auto fd = vfs_->Open(path, vfs::kRead);       // the sanctioned path
    if (!fd.ok()) return fd.status();
    return vfs_->Close(*fd);
  }

  // A local named Open is not a Venus member call.
  Status Open(const std::string& path);

 private:
  venus::Venus* venus_;
  vfs::Switch* vfs_;
};

}  // namespace itc::virtue
