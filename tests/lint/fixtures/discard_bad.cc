// Fixture: statement-position calls that drop a Status/Result.
#include "tests/lint/fixtures/discard_decls.h"

namespace itc {

void Use(Store& s, Store* p) {
  s.Put(1);        // violation: member call, Status dropped
  p->Get(2);       // violation: Result<int> dropped
  Compact(p);      // violation: free function
  if (true) Compact(p);  // violation: statement position inside if
  s.Touch(3);      // fine: void return
}

}  // namespace itc
