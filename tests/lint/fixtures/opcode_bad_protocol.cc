// Fixture: schema that disagrees with opcode_bad_protocol.h — kRemove is
// missing and kGetTime is registered under the wrong wire name.
#include "src/vice/protocol.h"

namespace itc::vice {

const std::vector<OpSpec>& ViceOpSchema() {
  static const std::vector<OpSpec> schema = {
      {Op(Proc::kTestAuth), "TestAuth", OpClass::kOther, true},
      {Op(Proc::kGetTime), "Clock", OpClass::kOther, true},
      {Op(Proc::kFetch), "Fetch", OpClass::kFile, true},
  };
  return schema;
}

}  // namespace itc::vice
