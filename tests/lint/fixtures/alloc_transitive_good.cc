// no-alloc-in-kernel-hot-path-transitive negative fixture: reachable helpers
// only write into pre-sized storage or carry a reasoned suppression, and
// allocation in code the kernel cannot reach is out of scope.
class Kernel {
 public:
  void Run() {
    Pump();
    Cold();
  }
  void WaitUntil(long t) { Park(t); }

 private:
  void Pump() { buf_[head_] = 1; }
  void Park(long t) { queue_[head_++] = t; }  // pre-sized in-place write
  void Cold() {
    // itcfs-lint: allow(no-alloc-in-kernel-hot-path-transitive) -- startup growth only
    queue_.push_back(0);
  }

  char buf_[8] = {};
  long head_ = 0;
  std::vector<long> queue_;
};

class Registry {
 public:
  void Add() { items_.push_back(1); }  // never reachable from the kernel

 private:
  std::vector<int> items_;
};
