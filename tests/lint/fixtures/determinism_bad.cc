// Fixture: wall-clock and ambient randomness outside src/sim/.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace itc {

long Stamp() {
  auto now = std::chrono::system_clock::now();  // violation
  (void)now;
  return time(nullptr);  // violation: libc time()
}

int Jitter() {
  return rand() % 7;  // violation: libc rand()
}

}  // namespace itc
