// kernel-ownership (per-shard) positive fixture: Rogue touches
// ITC_OWNED_BY_SHARD state from a method no entry point can reach and that
// carries no ITC_SHARD_FOREIGN waiver.
#ifndef OWNERSHIP_SHARD_BAD_H_
#define OWNERSHIP_SHARD_BAD_H_

class Endpoint {
 public:
  ITC_KERNEL_ENTRY void Handle() { calls_++; }
  void Rogue() { calls_ = 0; }  // unsanctioned, unwaived: must fire

 private:
  ITC_OWNED_BY_SHARD int calls_ = 0;
};

#endif  // OWNERSHIP_SHARD_BAD_H_
