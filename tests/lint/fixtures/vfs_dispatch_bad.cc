// Positive fixture for vfs-dispatch-only: workstation-layer code reaches
// around the VFS switch — straight into Venus's data plane and into the
// baseline remote-open client.

#include "src/baseline/remote_open.h"
#include "src/venus/venus.h"

namespace itc::virtue {

class Sidestep {
 public:
  Status Touch(const std::string& path) {
    auto fh = venus_->Open(path, true, true);     // fires: data-plane via ->
    if (!fh.ok()) return fh.status();
    return venus_->Close(*fh, true);              // fires: data-plane via ->
  }

  Status Peek(const std::string& path) {
    return venus().Stat(path).status();           // fires: data-plane via accessor
  }

  baseline::RemoteOpenClient* side_channel_;      // fires: parallel universe

 private:
  venus::Venus& venus() { return *venus_; }
  venus::Venus* venus_;
};

}  // namespace itc::virtue
