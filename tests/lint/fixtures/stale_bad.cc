// stale-suppression positive fixture: a typo'd rule id, an allow that
// silences nothing, and an allow(all) that silences nothing.
// itcfs-lint: allow(sim-determinsm) -- typo'd id
int A() { return 1; }

// itcfs-lint: allow(sim-determinism) -- nothing on the next line to suppress
int B() { return 2; }

// itcfs-lint: allow(all)
int C() { return 3; }
