// Fixture: lease durations read from the configs; unrelated literals stay
// legal, as does a suppressed occurrence.
#include "src/common/types.h"

namespace itc {

void Legal(SimTime now, const ViceConfig& vice, const VenusConfig& venus) {
  SimTime lease_expiry = now + vice.lease_term;  // configured term
  (void)lease_expiry;
  SuspendLeaseGrantsUntil(now + vice.lease_term);
  if (lease_expiry - now < venus.lease_renew_margin) {
    RenewLeases();
  }
  // A time literal with no lease identifier in the statement is not a lease
  // term at all.
  Sleep(Seconds(30));
  const SimTime deadline = now + Millis(500);
  (void)deadline;
  // itcfs-lint: allow(no-raw-lease-term)
  SimTime lease_probe = now + Seconds(1);
  (void)lease_probe;
}

}  // namespace itc
