// Tests for itcfs-lint: each rule is exercised against a checked-in
// positive fixture (must fire) and a negative fixture (must stay quiet).
// Fixtures live in tests/lint/fixtures/ and are lexed under the virtual
// repo path each rule keys on, so the fixtures never have to be compiled.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace itc::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(ITC_SOURCE_DIR) + "/tests/lint/fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lexes fixture `name` under the virtual path `as` (defaults to the
// fixture's own name under src/, which keeps it out of rule path filters
// unless the test opts in).
LexedFile LexFixture(const std::string& name, std::string as = "") {
  if (as.empty()) as = "src/fixture/" + name;
  return Lex(std::move(as), ReadFixture(name));
}

std::vector<Diagnostic> RunOne(const std::string& rule, LintInput input) {
  return RunRules(input, {rule});
}

TEST(NodiscardStatus, FiresOnUnannotatedDeclarations) {
  LintInput in;
  in.files.push_back(LexFixture("nodiscard_bad.h"));
  const auto diags = RunOne("nodiscard-status", in);
  EXPECT_EQ(diags.size(), 4u) << "Flush, Measure, Sync, FreeFlush";
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "nodiscard-status");
    EXPECT_EQ(d.file, "src/fixture/nodiscard_bad.h");
  }
}

TEST(NodiscardStatus, QuietWhenAnnotated) {
  LintInput in;
  in.files.push_back(LexFixture("nodiscard_good.h"));
  EXPECT_TRUE(RunOne("nodiscard-status", in).empty());
}

TEST(NodiscardStatus, OnlyChecksHeaders) {
  // The same unannotated declarations in a .cc are definitions of already
  // declared functions; only the header spelling is policed.
  LintInput in;
  in.files.push_back(Lex("src/fixture/defs.cc", ReadFixture("nodiscard_bad.h")));
  EXPECT_TRUE(RunOne("nodiscard-status", in).empty());
}

TEST(DiscardedStatus, FiresOnStatementPositionCalls) {
  LintInput in;
  in.files.push_back(LexFixture("discard_decls.h"));
  in.files.push_back(LexFixture("discard_bad.cc"));
  const auto diags = RunOne("discarded-status", in);
  EXPECT_EQ(diags.size(), 4u) << "Put, Get, Compact, Compact-inside-if";
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, "src/fixture/discard_bad.cc");
  }
}

TEST(DiscardedStatus, QuietWhenConsumedOrVoidCast) {
  LintInput in;
  in.files.push_back(LexFixture("discard_decls.h"));
  in.files.push_back(LexFixture("discard_good.cc"));
  EXPECT_TRUE(RunOne("discarded-status", in).empty());
}

TEST(IntentionBeforeMutate, FiresWhenMutationPrecedesLog) {
  LintInput in;
  in.files.push_back(LexFixture("intention_bad.cc", "src/vice/file_server.cc"));
  const auto diags = RunOne("intention-before-mutate", in);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("ViceServer::Store"), std::string::npos);
  EXPECT_NE(diags[0].message.find("StoreData"), std::string::npos);
}

TEST(IntentionBeforeMutate, QuietWhenLogComesFirst) {
  LintInput in;
  in.files.push_back(LexFixture("intention_good.cc", "src/vice/file_server.cc"));
  EXPECT_TRUE(RunOne("intention-before-mutate", in).empty());
}

TEST(IntentionBeforeMutate, OnlyAppliesToFileServer) {
  LintInput in;
  in.files.push_back(LexFixture("intention_bad.cc", "src/vice/other.cc"));
  EXPECT_TRUE(RunOne("intention-before-mutate", in).empty());
}

TEST(OpcodeSync, QuietWhenEnumSchemaAndDocAgree) {
  LintInput in;
  in.files.push_back(LexFixture("opcode_good_protocol.h", "src/vice/protocol.h"));
  in.files.push_back(LexFixture("opcode_good_protocol.cc", "src/vice/protocol.cc"));
  in.protocol_md = ReadFixture("opcode_good.md");
  EXPECT_TRUE(RunOne("opcode-sync", in).empty());
}

TEST(OpcodeSync, FiresOnEveryKindOfDrift) {
  LintInput in;
  in.files.push_back(LexFixture("opcode_bad_protocol.h", "src/vice/protocol.h"));
  in.files.push_back(LexFixture("opcode_bad_protocol.cc", "src/vice/protocol.cc"));
  in.protocol_md = ReadFixture("opcode_bad.md");
  const auto diags = RunOne("opcode-sync", in);
  // kGetTime registered as "Clock", kRemove with no schema entry, the doc
  // missing op 2, and the doc listing stale op 12.
  EXPECT_EQ(diags.size(), 4u);
  std::set<std::string> messages;
  for (const Diagnostic& d : diags) messages.insert(d.message);
  bool saw_name = false, saw_missing_schema = false, saw_doc_missing = false,
       saw_doc_stale = false;
  for (const std::string& m : messages) {
    if (m.find("named \"Clock\"") != std::string::npos) saw_name = true;
    if (m.find("kRemove has no OpSchema entry") != std::string::npos)
      saw_missing_schema = true;
    if (m.find("missing op 2") != std::string::npos) saw_doc_missing = true;
    if (m.find("lists op 12") != std::string::npos) saw_doc_stale = true;
  }
  EXPECT_TRUE(saw_name);
  EXPECT_TRUE(saw_missing_schema);
  EXPECT_TRUE(saw_doc_missing);
  EXPECT_TRUE(saw_doc_stale);
}

TEST(SimDeterminism, FiresOutsideSim) {
  LintInput in;
  in.files.push_back(LexFixture("determinism_bad.cc"));
  const auto diags = RunOne("sim-determinism", in);
  EXPECT_EQ(diags.size(), 3u) << "system_clock, time(), rand()";
}

TEST(SimDeterminism, QuietOnSimLayerAndAccessors) {
  LintInput in;
  in.files.push_back(LexFixture("determinism_good.cc"));
  EXPECT_TRUE(RunOne("sim-determinism", in).empty());
}

TEST(SimDeterminism, ExemptsSimDirectory) {
  LintInput in;
  in.files.push_back(LexFixture("determinism_bad.cc", "src/sim/clock.cc"));
  EXPECT_TRUE(RunOne("sim-determinism", in).empty());
}

TEST(ResourceServeOutsideKernel, FiresOnDirectServeCalls) {
  LintInput in;
  in.files.push_back(LexFixture("resource_serve_bad.cc"));
  const auto diags = RunOne("resource-serve-outside-kernel", in);
  EXPECT_EQ(diags.size(), 2u) << "cpu.Serve and disk->Serve";
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.message.find("sim::Charge"), std::string::npos);
  }
}

TEST(ResourceServeOutsideKernel, QuietOnChargeAndUnrelatedServes) {
  LintInput in;
  in.files.push_back(LexFixture("resource_serve_good.cc"));
  EXPECT_TRUE(RunOne("resource-serve-outside-kernel", in).empty());
}

TEST(ResourceServeOutsideKernel, ExemptsSimDirectory) {
  LintInput in;
  in.files.push_back(LexFixture("resource_serve_bad.cc", "src/sim/kernel.cc"));
  EXPECT_TRUE(RunOne("resource-serve-outside-kernel", in).empty());
}

TEST(NoAllocInKernelHotPath, FiresOnAllocationsInRunAndDispatch) {
  LintInput in;
  in.files.push_back(LexFixture("alloc_hot_bad.cc", "src/sim/kernel.cc"));
  const auto diags = RunOne("no-alloc-in-kernel-hot-path", in);
  EXPECT_EQ(diags.size(), 4u) << "new, push_back, make_unique, insert";
  bool saw_new = false, saw_growth = false, saw_make_unique = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "no-alloc-in-kernel-hot-path");
    if (d.message.find("'new'") != std::string::npos) saw_new = true;
    if (d.message.find("container growth") != std::string::npos) saw_growth = true;
    if (d.message.find("make_unique") != std::string::npos) saw_make_unique = true;
  }
  EXPECT_TRUE(saw_new);
  EXPECT_TRUE(saw_growth);
  EXPECT_TRUE(saw_make_unique);
}

TEST(NoAllocInKernelHotPath, QuietOnPresizedWritesAndSuppressedColdPath) {
  LintInput in;
  in.files.push_back(LexFixture("alloc_hot_good.cc", "src/sim/kernel.cc"));
  EXPECT_TRUE(RunOne("no-alloc-in-kernel-hot-path", in).empty());
}

TEST(VfsDispatchOnly, FiresOnDirectVenusAndBaselineClientUse) {
  LintInput in;
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/virtue/workstation.cc"));
  const auto diags = RunOne("vfs-dispatch-only", in);
  EXPECT_EQ(diags.size(), 4u) << "Open, Close, Stat, RemoteOpenClient";
  bool saw_client = false, saw_op = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "vfs-dispatch-only");
    if (d.message.find("RemoteOpenClient") != std::string::npos) saw_client = true;
    if (d.message.find("vfs::Switch") != std::string::npos) saw_op = true;
  }
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_op);
}

TEST(VfsDispatchOnly, QuietOnControlPlaneAndSwitchDispatch) {
  LintInput in;
  in.files.push_back(LexFixture("vfs_dispatch_good.cc", "src/virtue/workstation.cc"));
  EXPECT_TRUE(RunOne("vfs-dispatch-only", in).empty());
}

TEST(VfsDispatchOnly, ExemptsMountBackendsVenusAndBaseline) {
  LintInput in;
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/virtue/vfs/venus_mount.cc"));
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/venus/venus.cc"));
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/baseline/remote_open.cc"));
  EXPECT_TRUE(RunOne("vfs-dispatch-only", in).empty());
}

TEST(AssertSideEffect, FiresOnMutatingConditions) {
  LintInput in;
  in.files.push_back(LexFixture("assert_bad.cc"));
  const auto diags = RunOne("assert-side-effect", in);
  EXPECT_EQ(diags.size(), 2u) << "n-- and queue[0] = 1";
}

TEST(AssertSideEffect, QuietOnPureConditions) {
  LintInput in;
  in.files.push_back(LexFixture("assert_good.cc"));
  EXPECT_TRUE(RunOne("assert-side-effect", in).empty());
}

TEST(AssertInHeader, FiresOnAnyHeaderAssert) {
  LintInput in;
  in.files.push_back(LexFixture("assert_header_bad.h"));
  const auto diags = RunOne("assert-in-header", in);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("ITC_CHECK"), std::string::npos);
}

TEST(AssertInHeader, QuietOnItcCheckAndSourceFiles) {
  LintInput in;
  in.files.push_back(LexFixture("assert_header_good.h"));
  // assert in a .cc is allowed (only the side-effect rule applies there).
  in.files.push_back(LexFixture("assert_good.cc"));
  EXPECT_TRUE(RunOne("assert-in-header", in).empty());
}

TEST(Suppression, AllowCommentSilencesMatchingRuleOnly) {
  LintInput in;
  in.files.push_back(LexFixture("suppressed.cc"));
  const auto diags = RunOne("sim-determinism", in);
  // Stamp and Stamp2 are suppressed (trailing comment / line above);
  // Stamp3 names the wrong rule id, so it still fires.
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].line, 0);
  EXPECT_EQ(diags[0].rule, "sim-determinism");
}

TEST(Lexer, CommentsAndStringsProduceNoTokens) {
  LexedFile f = Lex("src/x.cc", "// assert(a++)\n/* rand() */ \"time(0)\" x;\n");
  ASSERT_EQ(f.tokens.size(), 3u);
  EXPECT_EQ(f.tokens[0].kind, TokKind::kString);
  EXPECT_EQ(f.tokens[1].text, "x");
  EXPECT_EQ(f.tokens[2].text, ";");
}

TEST(Lexer, RawStringsAndLineNumbers) {
  LexedFile f = Lex("src/x.cc", "auto s = R\"(rand()\nassert(i++))\";\nint y;\n");
  // No sim-determinism or assert tokens leak out of the raw string, and the
  // token after it sits on the right line.
  bool saw_rand = false;
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kString && t.text == "rand") saw_rand = true;
    if (t.text == "y") {
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_FALSE(saw_rand);
}

TEST(NoRawLeaseTerm, FiresOnNumericDurationsNearLeaseIdentifiers) {
  LintInput in;
  in.files.push_back(LexFixture("lease_term_bad.cc", "src/vice/lease/lease_manager.cc"));
  const auto diags = RunOne("no-raw-lease-term", in);
  EXPECT_EQ(diags.size(), 3u) << "expiry, embargo, renewal margin";
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "no-raw-lease-term");
    EXPECT_NE(d.message.find("lease_term"), std::string::npos);
  }
}

TEST(NoRawLeaseTerm, QuietOnConfiguredDurationsAndUnrelatedLiterals) {
  LintInput in;
  in.files.push_back(LexFixture("lease_term_good.cc", "src/vice/lease/lease_manager.cc"));
  EXPECT_TRUE(RunOne("no-raw-lease-term", in).empty());
}

TEST(NoRawLeaseTerm, ExemptsTheTwoConfigDefaultSites) {
  // The configured defaults are the one sanctioned literal spelling of each
  // duration: the server term and the client renewal margin.
  LintInput in;
  in.files.push_back(LexFixture("lease_term_bad.cc", "src/vice/file_server.h"));
  in.files.push_back(LexFixture("lease_term_bad.cc", "src/venus/config.h"));
  EXPECT_TRUE(RunOne("no-raw-lease-term", in).empty());
}

TEST(Cli, AllRulesHaveStableIds) {
  EXPECT_EQ(AllRules().size(), 11u);
  EXPECT_EQ(AllRules().count("nodiscard-status"), 1u);
  EXPECT_EQ(AllRules().count("opcode-sync"), 1u);
  EXPECT_EQ(AllRules().count("resource-serve-outside-kernel"), 1u);
  EXPECT_EQ(AllRules().count("no-alloc-in-kernel-hot-path"), 1u);
  EXPECT_EQ(AllRules().count("vfs-dispatch-only"), 1u);
  EXPECT_EQ(AllRules().count("no-raw-lease-term"), 1u);
}

}  // namespace
}  // namespace itc::lint
