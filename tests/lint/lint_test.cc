// Tests for itcfs-lint: each rule is exercised against a checked-in
// positive fixture (must fire) and a negative fixture (must stay quiet).
// Fixtures live in tests/lint/fixtures/ and are lexed under the virtual
// repo path each rule keys on, so the fixtures never have to be compiled.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/callgraph.h"
#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"
#include "tools/lint/symbols.h"

namespace itc::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(ITC_SOURCE_DIR) + "/tests/lint/fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lexes fixture `name` under the virtual path `as` (defaults to the
// fixture's own name under src/, which keeps it out of rule path filters
// unless the test opts in).
LexedFile LexFixture(const std::string& name, std::string as = "") {
  if (as.empty()) as = "src/fixture/" + name;
  return Lex(std::move(as), ReadFixture(name));
}

std::vector<Diagnostic> RunOne(const std::string& rule, LintInput input) {
  return RunRules(input, {rule});
}

TEST(NodiscardStatus, FiresOnUnannotatedDeclarations) {
  LintInput in;
  in.files.push_back(LexFixture("nodiscard_bad.h"));
  const auto diags = RunOne("nodiscard-status", in);
  EXPECT_EQ(diags.size(), 4u) << "Flush, Measure, Sync, FreeFlush";
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "nodiscard-status");
    EXPECT_EQ(d.file, "src/fixture/nodiscard_bad.h");
  }
}

TEST(NodiscardStatus, QuietWhenAnnotated) {
  LintInput in;
  in.files.push_back(LexFixture("nodiscard_good.h"));
  EXPECT_TRUE(RunOne("nodiscard-status", in).empty());
}

TEST(NodiscardStatus, OnlyChecksHeaders) {
  // The same unannotated declarations in a .cc are definitions of already
  // declared functions; only the header spelling is policed.
  LintInput in;
  in.files.push_back(Lex("src/fixture/defs.cc", ReadFixture("nodiscard_bad.h")));
  EXPECT_TRUE(RunOne("nodiscard-status", in).empty());
}

TEST(DiscardedStatus, FiresOnStatementPositionCalls) {
  LintInput in;
  in.files.push_back(LexFixture("discard_decls.h"));
  in.files.push_back(LexFixture("discard_bad.cc"));
  const auto diags = RunOne("discarded-status", in);
  EXPECT_EQ(diags.size(), 4u) << "Put, Get, Compact, Compact-inside-if";
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, "src/fixture/discard_bad.cc");
  }
}

TEST(DiscardedStatus, QuietWhenConsumedOrVoidCast) {
  LintInput in;
  in.files.push_back(LexFixture("discard_decls.h"));
  in.files.push_back(LexFixture("discard_good.cc"));
  EXPECT_TRUE(RunOne("discarded-status", in).empty());
}

TEST(IntentionBeforeMutate, FiresWhenMutationPrecedesLog) {
  LintInput in;
  in.files.push_back(LexFixture("intention_bad.cc", "src/vice/file_server.cc"));
  const auto diags = RunOne("intention-before-mutate", in);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("ViceServer::Store"), std::string::npos);
  EXPECT_NE(diags[0].message.find("StoreData"), std::string::npos);
}

TEST(IntentionBeforeMutate, QuietWhenLogComesFirst) {
  LintInput in;
  in.files.push_back(LexFixture("intention_good.cc", "src/vice/file_server.cc"));
  EXPECT_TRUE(RunOne("intention-before-mutate", in).empty());
}

TEST(IntentionBeforeMutate, OnlyAppliesToFileServer) {
  LintInput in;
  in.files.push_back(LexFixture("intention_bad.cc", "src/vice/other.cc"));
  EXPECT_TRUE(RunOne("intention-before-mutate", in).empty());
}

TEST(OpcodeSync, QuietWhenEnumSchemaAndDocAgree) {
  LintInput in;
  in.files.push_back(LexFixture("opcode_good_protocol.h", "src/vice/protocol.h"));
  in.files.push_back(LexFixture("opcode_good_protocol.cc", "src/vice/protocol.cc"));
  in.protocol_md = ReadFixture("opcode_good.md");
  EXPECT_TRUE(RunOne("opcode-sync", in).empty());
}

TEST(OpcodeSync, FiresOnEveryKindOfDrift) {
  LintInput in;
  in.files.push_back(LexFixture("opcode_bad_protocol.h", "src/vice/protocol.h"));
  in.files.push_back(LexFixture("opcode_bad_protocol.cc", "src/vice/protocol.cc"));
  in.protocol_md = ReadFixture("opcode_bad.md");
  const auto diags = RunOne("opcode-sync", in);
  // kGetTime registered as "Clock", kRemove with no schema entry, the doc
  // missing op 2, and the doc listing stale op 12.
  EXPECT_EQ(diags.size(), 4u);
  std::set<std::string> messages;
  for (const Diagnostic& d : diags) messages.insert(d.message);
  bool saw_name = false, saw_missing_schema = false, saw_doc_missing = false,
       saw_doc_stale = false;
  for (const std::string& m : messages) {
    if (m.find("named \"Clock\"") != std::string::npos) saw_name = true;
    if (m.find("kRemove has no OpSchema entry") != std::string::npos)
      saw_missing_schema = true;
    if (m.find("missing op 2") != std::string::npos) saw_doc_missing = true;
    if (m.find("lists op 12") != std::string::npos) saw_doc_stale = true;
  }
  EXPECT_TRUE(saw_name);
  EXPECT_TRUE(saw_missing_schema);
  EXPECT_TRUE(saw_doc_missing);
  EXPECT_TRUE(saw_doc_stale);
}

TEST(SimDeterminism, FiresOutsideSim) {
  LintInput in;
  in.files.push_back(LexFixture("determinism_bad.cc"));
  const auto diags = RunOne("sim-determinism", in);
  EXPECT_EQ(diags.size(), 3u) << "system_clock, time(), rand()";
}

TEST(SimDeterminism, QuietOnSimLayerAndAccessors) {
  LintInput in;
  in.files.push_back(LexFixture("determinism_good.cc"));
  EXPECT_TRUE(RunOne("sim-determinism", in).empty());
}

TEST(SimDeterminism, ExemptsSimDirectory) {
  LintInput in;
  in.files.push_back(LexFixture("determinism_bad.cc", "src/sim/clock.cc"));
  EXPECT_TRUE(RunOne("sim-determinism", in).empty());
}

TEST(ResourceServeOutsideKernel, FiresOnDirectServeCalls) {
  LintInput in;
  in.files.push_back(LexFixture("resource_serve_bad.cc"));
  const auto diags = RunOne("resource-serve-outside-kernel", in);
  EXPECT_EQ(diags.size(), 2u) << "cpu.Serve and disk->Serve";
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.message.find("sim::Charge"), std::string::npos);
  }
}

TEST(ResourceServeOutsideKernel, QuietOnChargeAndUnrelatedServes) {
  LintInput in;
  in.files.push_back(LexFixture("resource_serve_good.cc"));
  EXPECT_TRUE(RunOne("resource-serve-outside-kernel", in).empty());
}

TEST(ResourceServeOutsideKernel, ExemptsSimDirectory) {
  LintInput in;
  in.files.push_back(LexFixture("resource_serve_bad.cc", "src/sim/kernel.cc"));
  EXPECT_TRUE(RunOne("resource-serve-outside-kernel", in).empty());
}

TEST(NoAllocInKernelHotPath, FiresOnAllocationsInRunAndDispatch) {
  LintInput in;
  in.files.push_back(LexFixture("alloc_hot_bad.cc", "src/sim/kernel.cc"));
  const auto diags = RunOne("no-alloc-in-kernel-hot-path", in);
  EXPECT_EQ(diags.size(), 4u) << "new, push_back, make_unique, insert";
  bool saw_new = false, saw_growth = false, saw_make_unique = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "no-alloc-in-kernel-hot-path");
    if (d.message.find("'new'") != std::string::npos) saw_new = true;
    if (d.message.find("container growth") != std::string::npos) saw_growth = true;
    if (d.message.find("make_unique") != std::string::npos) saw_make_unique = true;
  }
  EXPECT_TRUE(saw_new);
  EXPECT_TRUE(saw_growth);
  EXPECT_TRUE(saw_make_unique);
}

TEST(NoAllocInKernelHotPath, QuietOnPresizedWritesAndSuppressedColdPath) {
  LintInput in;
  in.files.push_back(LexFixture("alloc_hot_good.cc", "src/sim/kernel.cc"));
  EXPECT_TRUE(RunOne("no-alloc-in-kernel-hot-path", in).empty());
}

TEST(VfsDispatchOnly, FiresOnDirectVenusAndBaselineClientUse) {
  LintInput in;
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/virtue/workstation.cc"));
  const auto diags = RunOne("vfs-dispatch-only", in);
  EXPECT_EQ(diags.size(), 4u) << "Open, Close, Stat, RemoteOpenClient";
  bool saw_client = false, saw_op = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "vfs-dispatch-only");
    if (d.message.find("RemoteOpenClient") != std::string::npos) saw_client = true;
    if (d.message.find("vfs::Switch") != std::string::npos) saw_op = true;
  }
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_op);
}

TEST(VfsDispatchOnly, QuietOnControlPlaneAndSwitchDispatch) {
  LintInput in;
  in.files.push_back(LexFixture("vfs_dispatch_good.cc", "src/virtue/workstation.cc"));
  EXPECT_TRUE(RunOne("vfs-dispatch-only", in).empty());
}

TEST(VfsDispatchOnly, ExemptsMountBackendsVenusAndBaseline) {
  LintInput in;
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/virtue/vfs/venus_mount.cc"));
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/venus/venus.cc"));
  in.files.push_back(LexFixture("vfs_dispatch_bad.cc", "src/baseline/remote_open.cc"));
  EXPECT_TRUE(RunOne("vfs-dispatch-only", in).empty());
}

TEST(AssertSideEffect, FiresOnMutatingConditions) {
  LintInput in;
  in.files.push_back(LexFixture("assert_bad.cc"));
  const auto diags = RunOne("assert-side-effect", in);
  EXPECT_EQ(diags.size(), 2u) << "n-- and queue[0] = 1";
}

TEST(AssertSideEffect, QuietOnPureConditions) {
  LintInput in;
  in.files.push_back(LexFixture("assert_good.cc"));
  EXPECT_TRUE(RunOne("assert-side-effect", in).empty());
}

TEST(AssertInHeader, FiresOnAnyHeaderAssert) {
  LintInput in;
  in.files.push_back(LexFixture("assert_header_bad.h"));
  const auto diags = RunOne("assert-in-header", in);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("ITC_CHECK"), std::string::npos);
}

TEST(AssertInHeader, QuietOnItcCheckAndSourceFiles) {
  LintInput in;
  in.files.push_back(LexFixture("assert_header_good.h"));
  // assert in a .cc is allowed (only the side-effect rule applies there).
  in.files.push_back(LexFixture("assert_good.cc"));
  EXPECT_TRUE(RunOne("assert-in-header", in).empty());
}

TEST(Suppression, AllowCommentSilencesMatchingRuleOnly) {
  LintInput in;
  in.files.push_back(LexFixture("suppressed.cc"));
  const auto diags = RunOne("sim-determinism", in);
  // Stamp and Stamp2 are suppressed (trailing comment / line above);
  // Stamp3 names the wrong rule id, so it still fires.
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].line, 0);
  EXPECT_EQ(diags[0].rule, "sim-determinism");
}

TEST(Lexer, CommentsAndStringsProduceNoTokens) {
  LexedFile f = Lex("src/x.cc", "// assert(a++)\n/* rand() */ \"time(0)\" x;\n");
  ASSERT_EQ(f.tokens.size(), 3u);
  EXPECT_EQ(f.tokens[0].kind, TokKind::kString);
  EXPECT_EQ(f.tokens[1].text, "x");
  EXPECT_EQ(f.tokens[2].text, ";");
}

TEST(Lexer, RawStringsAndLineNumbers) {
  LexedFile f = Lex("src/x.cc", "auto s = R\"(rand()\nassert(i++))\";\nint y;\n");
  // No sim-determinism or assert tokens leak out of the raw string, and the
  // token after it sits on the right line.
  bool saw_rand = false;
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kString && t.text == "rand") saw_rand = true;
    if (t.text == "y") {
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_FALSE(saw_rand);
}

TEST(NoRawLeaseTerm, FiresOnNumericDurationsNearLeaseIdentifiers) {
  LintInput in;
  in.files.push_back(LexFixture("lease_term_bad.cc", "src/vice/lease/lease_manager.cc"));
  const auto diags = RunOne("no-raw-lease-term", in);
  EXPECT_EQ(diags.size(), 3u) << "expiry, embargo, renewal margin";
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "no-raw-lease-term");
    EXPECT_NE(d.message.find("lease_term"), std::string::npos);
  }
}

TEST(NoRawLeaseTerm, QuietOnConfiguredDurationsAndUnrelatedLiterals) {
  LintInput in;
  in.files.push_back(LexFixture("lease_term_good.cc", "src/vice/lease/lease_manager.cc"));
  EXPECT_TRUE(RunOne("no-raw-lease-term", in).empty());
}

TEST(NoRawLeaseTerm, ExemptsTheTwoConfigDefaultSites) {
  // The configured defaults are the one sanctioned literal spelling of each
  // duration: the server term and the client renewal margin.
  LintInput in;
  in.files.push_back(LexFixture("lease_term_bad.cc", "src/vice/file_server.h"));
  in.files.push_back(LexFixture("lease_term_bad.cc", "src/venus/config.h"));
  EXPECT_TRUE(RunOne("no-raw-lease-term", in).empty());
}

TEST(NoEagerContents, FiresOnSynthesizeAndPopulateMaterialize) {
  LintInput in;
  in.files.push_back(LexFixture("eager_contents_bad.cc"));
  const auto diags = RunOne("no-eager-contents", in);
  EXPECT_EQ(diags.size(), 2u) << "SynthesizeContents call + Materialize in populate";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.rule, "no-eager-contents");
}

TEST(NoEagerContents, QuietOnRefsSuppressionsAndTransientMaterialize) {
  LintInput in;
  in.files.push_back(LexFixture("eager_contents_good.cc"));
  EXPECT_TRUE(RunOne("no-eager-contents", in).empty());
}

TEST(NoEagerContents, ExemptsContentAndSourceTreeModules) {
  // The delegating definition (and the content module itself) is where
  // materialization is the module's job.
  LintInput in;
  in.files.push_back(LexFixture("eager_contents_bad.cc", "src/workload/source_tree.cc"));
  in.files.push_back(LexFixture("eager_contents_bad.cc", "src/common/content.cc"));
  EXPECT_TRUE(RunOne("no-eager-contents", in).empty());
}

// --- v2: symbol index + call graph -------------------------------------------

TEST(SymbolIndexer, FindsMembersQualifiedDefsAndDeclMarkers) {
  LintInput in;
  in.files.push_back(Lex(
      "src/x.cc",
      "class A {\n"
      " public:\n"
      "  void M() { x_ = 1; }\n"
      "  ITC_KERNEL_ENTRY void E();\n"
      " private:\n"
      "  ITC_OWNED_BY_KERNEL int x_ = 0;\n"
      "};\n"
      "void A::E() { M(); }\n"
      "static int Free(int v) { return v; }\n"));
  const SymbolIndex idx = BuildIndex(in.files);
  ASSERT_EQ(idx.functions.size(), 3u);
  bool saw_m = false, saw_e = false, saw_free = false;
  for (const FunctionDef& f : idx.functions) {
    if (f.Qualified() == "A::M") saw_m = true;
    if (f.Qualified() == "A::E") {
      saw_e = true;
      // The marker sits on the in-class declaration; it must transfer to the
      // out-of-line definition.
      EXPECT_TRUE(f.entry);
    }
    if (f.Qualified() == "Free") saw_free = true;
  }
  EXPECT_TRUE(saw_m && saw_e && saw_free);
  ASSERT_EQ(idx.owned.size(), 1u);
  EXPECT_EQ(idx.owned[0].cls, "A");
  EXPECT_EQ(idx.owned[0].name, "x_");
}

TEST(SymbolIndexer, PreprocessorBracesDoNotDesyncScopes) {
  LintInput in;
  in.files.push_back(Lex(
      "src/x.cc",
      "#define CHECK(c) do { if (!(c)) { abort(); } } while (false)\n"
      "class B {\n"
      " public:\n"
      "  void F() { CHECK(1); }\n"
      "};\n"));
  const SymbolIndex idx = BuildIndex(in.files);
  ASSERT_EQ(idx.functions.size(), 1u);
  EXPECT_EQ(idx.functions[0].Qualified(), "B::F");
}

TEST(CallGraph, ReceiverHintPrunesAndBareCallsResolve) {
  LintInput in;
  in.files.push_back(Lex(
      "src/x.cc",
      "class Fiber { public: void Start() {} };\n"
      "class Workload { public: void Start() {} };\n"
      "class Kernel {\n"
      " public:\n"
      "  void Run() {\n"
      "    fiber_.Start();\n"
      "    Helper();\n"
      "  }\n"
      "  void Helper() {}\n"
      "  Fiber fiber_;\n"
      "};\n"));
  const SymbolIndex idx = BuildIndex(in.files);
  const CallGraph g = BuildCallGraph(idx);
  size_t run = idx.functions.size(), fiber_start = run, workload_start = run,
         helper = run;
  for (size_t i = 0; i < idx.functions.size(); ++i) {
    const std::string q = idx.functions[i].Qualified();
    if (q == "Kernel::Run") run = i;
    if (q == "Fiber::Start") fiber_start = i;
    if (q == "Workload::Start") workload_start = i;
    if (q == "Kernel::Helper") helper = i;
  }
  ASSERT_LT(run, idx.functions.size());
  // `fiber_.Start()` resolves to Fiber::Start — and NOT to Workload::Start,
  // which merely shares the method name.
  EXPECT_EQ(g.callees[run].count(fiber_start), 1u);
  EXPECT_EQ(g.callees[run].count(workload_start), 0u);
  EXPECT_EQ(g.callees[run].count(helper), 1u);
}

TEST(KernelOwnership, FiresOnUnreachableMethodsTouchingOwnedState) {
  LintInput in;
  in.files.push_back(LexFixture("ownership_bad.h"));
  const auto diags = RunOne("kernel-ownership", in);
  EXPECT_EQ(diags.size(), 2u) << "Rogue/ticks_ and Peek/log_";
  bool saw_rogue = false, saw_peek = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "kernel-ownership");
    if (d.message.find("Kern::Rogue") != std::string::npos) saw_rogue = true;
    if (d.message.find("Kern::Peek") != std::string::npos) saw_peek = true;
  }
  EXPECT_TRUE(saw_rogue);
  EXPECT_TRUE(saw_peek);
}

TEST(KernelOwnership, QuietOnSanctionedAccessCtorsAndUnrelatedClasses) {
  LintInput in;
  in.files.push_back(LexFixture("ownership_good.h"));
  EXPECT_TRUE(RunOne("kernel-ownership", in).empty());
}

TEST(KernelOwnership, FiresOnUnwaivedTouchOfShardState) {
  LintInput in;
  in.files.push_back(LexFixture("ownership_shard_bad.h"));
  const auto diags = RunOne("kernel-ownership", in);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("Endpoint::Rogue"), std::string::npos);
  EXPECT_NE(diags[0].message.find("ITC_OWNED_BY_SHARD"), std::string::npos);
  EXPECT_NE(diags[0].message.find("ITC_SHARD_FOREIGN"), std::string::npos)
      << "the shard message must name the waiver escape hatch";
}

TEST(KernelOwnership, ShardForeignWaiverCoversDeclaredCrossShardTouches) {
  LintInput in;
  in.files.push_back(LexFixture("ownership_shard_good.h"));
  EXPECT_TRUE(RunOne("kernel-ownership", in).empty());
}

TEST(KernelOwnership, ShardForeignDoesNotWaivePlainKernelState) {
  // Same class, but the foreign method touches ITC_OWNED_BY_KERNEL state:
  // the waiver is specific to per-shard members.
  LintInput in;
  in.files.push_back(Lex("src/fixture/ownership_mixed.h", R"(
class Mixed {
 public:
  ITC_KERNEL_ENTRY void Handle() { a_++; b_++; }
  ITC_SHARD_FOREIGN void Close() { a_ = 0; b_ = 0; }
 private:
  ITC_OWNED_BY_SHARD int a_ = 0;
  ITC_OWNED_BY_KERNEL int b_ = 0;
};
)"));
  const auto diags = RunOne("kernel-ownership", in);
  ASSERT_EQ(diags.size(), 1u) << "only the kernel-owned member b_ fires";
  EXPECT_NE(diags[0].message.find("'b_'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("Mixed::Close"), std::string::npos);
}

TEST(NoAllocTransitive, FiresOnReachableHelpersNotOnRootBodies) {
  LintInput in;
  in.files.push_back(LexFixture("alloc_transitive_bad.cc"));
  const auto diags = RunOne("no-alloc-in-kernel-hot-path-transitive", in);
  EXPECT_EQ(diags.size(), 2u) << "Pump's new and Park's push_back";
  bool saw_pump = false, saw_park = false;
  for (const Diagnostic& d : diags) {
    // Run/Dispatch bodies belong to the direct rule; the quoted culprit must
    // always be a reachable helper.
    EXPECT_EQ(d.message.find("'Kernel::Run'"), std::string::npos);
    EXPECT_EQ(d.message.find("'Kernel::Dispatch'"), std::string::npos);
    if (d.message.find("'Kernel::Pump'") != std::string::npos) saw_pump = true;
    if (d.message.find("'Kernel::Park'") != std::string::npos) saw_park = true;
  }
  EXPECT_TRUE(saw_pump);
  EXPECT_TRUE(saw_park);
}

TEST(NoAllocTransitive, QuietOnPresizedWritesSuppressionsAndUnreachableCode) {
  LintInput in;
  in.files.push_back(LexFixture("alloc_transitive_good.cc"));
  EXPECT_TRUE(RunOne("no-alloc-in-kernel-hot-path-transitive", in).empty());
}

TEST(SimDeterminismTransitive, TaintPropagatesThroughHelpers) {
  LintInput in;
  in.files.push_back(LexFixture("det_transitive_bad.cc"));
  const auto diags = RunOne("sim-determinism-transitive", in);
  // Uptime -> WallSeconds, Doubly -> Uptime, Launder -> Sneaky: the direct-
  // rule-only suppression on Sneaky does not sanction it for callers.
  EXPECT_EQ(diags.size(), 3u);
  bool saw_wall = false, saw_uptime = false, saw_sneaky = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "sim-determinism-transitive");
    if (d.message.find("'WallSeconds'") != std::string::npos) saw_wall = true;
    if (d.message.find("'Uptime'") != std::string::npos) saw_uptime = true;
    if (d.message.find("'Sneaky'") != std::string::npos) saw_sneaky = true;
  }
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_uptime);
  EXPECT_TRUE(saw_sneaky);
}

TEST(SimDeterminismTransitive, OwnAllowOnBannedLineSanctionsTheWrapper) {
  LintInput in;
  in.files.push_back(LexFixture("det_transitive_good.cc"));
  EXPECT_TRUE(RunOne("sim-determinism-transitive", in).empty());
}

TEST(SimDeterminismTransitive, ExemptFilesNeitherSeedNorGetDiagnosed) {
  LintInput in;
  in.files.push_back(LexFixture("det_transitive_bad.cc", "src/sim/clock_util.cc"));
  EXPECT_TRUE(RunOne("sim-determinism-transitive", in).empty());
}

TEST(StaleSuppression, FullRunFlagsTyposUnusedAllowsAndUnusedAllowAll) {
  LintInput in;
  in.files.push_back(LexFixture("stale_bad.cc"));
  const auto diags = RunRules(in, {});
  EXPECT_EQ(diags.size(), 3u);
  bool saw_unknown = false, saw_unused = false, saw_all = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "stale-suppression");
    if (d.message.find("unknown rule 'sim-determinsm'") != std::string::npos)
      saw_unknown = true;
    if (d.message.find("'allow(sim-determinism)' suppresses nothing") !=
        std::string::npos)
      saw_unused = true;
    if (d.message.find("'allow(all)'") != std::string::npos) saw_all = true;
  }
  EXPECT_TRUE(saw_unknown);
  EXPECT_TRUE(saw_unused);
  EXPECT_TRUE(saw_all);
}

TEST(StaleSuppression, PartialRunOnlyJudgesRulesThatRan) {
  LintInput in;
  in.files.push_back(LexFixture("stale_bad.cc"));
  // stale-suppression alone: the unknown id is still an error (it can never
  // become useful), but allow(sim-determinism) and allow(all) cannot be
  // judged without their rules running.
  const auto diags = RunRules(in, {"stale-suppression"});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("unknown rule"), std::string::npos);
}

TEST(StaleSuppression, QuietWhenEveryAllowEarnsItsKeep) {
  LintInput in;
  in.files.push_back(LexFixture("stale_good.cc"));
  EXPECT_TRUE(RunRules(in, {}).empty());
}

TEST(RuleDocSync, QuietWhenDocsMatchRegistry) {
  LintInput in;
  std::string md = "# itcfs-lint\n";
  for (const std::string& r : AllRules()) md += "### `" + r + "`\ntext\n";
  in.lint_md = md;
  EXPECT_TRUE(RunOne("rule-doc-sync", in).empty());
}

TEST(RuleDocSync, FiresOnMissingAndStaleSections) {
  LintInput in;
  std::string md = "# itcfs-lint\n### `no-such-rule`\n";
  for (const std::string& r : AllRules()) {
    if (r != "opcode-sync") md += "### `" + r + "`\n";
  }
  in.lint_md = md;
  const auto diags = RunOne("rule-doc-sync", in);
  EXPECT_EQ(diags.size(), 2u);
  bool saw_missing = false, saw_stale = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("'opcode-sync' has no") != std::string::npos) saw_missing = true;
    if (d.message.find("'no-such-rule'") != std::string::npos) saw_stale = true;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_stale);
}

TEST(RuleDocSync, SkippedWhenDocsAbsent) {
  LintInput in;  // lint_md empty: fixture-driven unit runs have no docs
  EXPECT_TRUE(RunOne("rule-doc-sync", in).empty());
}

// --- v2: lexer hardening -----------------------------------------------------

TEST(Lexer, PreprocessorTokensAreFlaggedAcrossContinuations) {
  LexedFile f = Lex("src/x.cc", "#define FOO \\\n  bar(1)\nint x;\n");
  bool saw_bar = false;
  for (const Token& t : f.tokens) {
    if (t.text == "bar") {
      saw_bar = true;
      EXPECT_TRUE(t.pp);
    }
    if (t.text == "x") {
      EXPECT_FALSE(t.pp);
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_TRUE(saw_bar);
}

TEST(Lexer, LineCommentContinuationSwallowsTheNextLine) {
  LexedFile f = Lex("src/x.cc", "// comment \\\nstill comment rand()\nint z;\n");
  ASSERT_GE(f.tokens.size(), 2u);
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[1].text, "z");
  EXPECT_EQ(f.tokens[1].line, 3);
}

TEST(Lexer, CustomDelimiterRawStringsAndMalformedFallback) {
  LexedFile f = Lex("src/x.cc", "auto s = R\"x(rand())x\"; int y;\n");
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kString) EXPECT_NE(t.text, "rand");
  }
  // A delimiter longer than 16 chars is not a raw string; the lexer must not
  // crash or swallow the rest of the file.
  LexedFile g = Lex("src/x.cc",
                    "auto t = R\"aaaaaaaaaaaaaaaaaaaa(x)\"; int w;\n");
  bool saw_w = false;
  for (const Token& t : g.tokens) {
    if (t.text == "w") saw_w = true;
  }
  EXPECT_TRUE(saw_w);
}

TEST(Lexer, OperatorCallAndQualifiedNamesSurviveIndexing) {
  LintInput in;
  in.files.push_back(Lex("src/x.cc",
                         "struct EventAfter {\n"
                         "  bool operator()(int a, int b) const { return a > b; }\n"
                         "};\n"
                         "bool Cmp::operator<(const Cmp& o) const { return true; }\n"));
  const SymbolIndex idx = BuildIndex(in.files);
  bool saw_call = false, saw_less = false;
  for (const FunctionDef& fd : idx.functions) {
    if (fd.Qualified() == "EventAfter::operator()") saw_call = true;
    if (fd.Qualified() == "Cmp::operator<") saw_less = true;
  }
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_less);
}

TEST(Cli, AllRulesHaveStableIds) {
  EXPECT_EQ(AllRules().size(), 17u);
  EXPECT_EQ(AllRules().count("nodiscard-status"), 1u);
  EXPECT_EQ(AllRules().count("no-eager-contents"), 1u);
  EXPECT_EQ(AllRules().count("opcode-sync"), 1u);
  EXPECT_EQ(AllRules().count("resource-serve-outside-kernel"), 1u);
  EXPECT_EQ(AllRules().count("no-alloc-in-kernel-hot-path"), 1u);
  EXPECT_EQ(AllRules().count("vfs-dispatch-only"), 1u);
  EXPECT_EQ(AllRules().count("no-raw-lease-term"), 1u);
  EXPECT_EQ(AllRules().count("kernel-ownership"), 1u);
  EXPECT_EQ(AllRules().count("no-alloc-in-kernel-hot-path-transitive"), 1u);
  EXPECT_EQ(AllRules().count("sim-determinism-transitive"), 1u);
  EXPECT_EQ(AllRules().count("stale-suppression"), 1u);
  EXPECT_EQ(AllRules().count("rule-doc-sync"), 1u);
}

}  // namespace
}  // namespace itc::lint
