// Unit tests for Vice volumes: vnode lifecycle, quota, stale fids, rename
// fid-invariance, clone copy-on-write, and salvage.

#include "src/vice/volume.h"

#include <gtest/gtest.h>

namespace itc::vice {
namespace {

using protection::AccessList;
using protection::Principal;

AccessList OwnerAcl(UserId owner) {
  AccessList acl;
  acl.SetPositive(Principal::User(owner), protection::kAllRights);
  return acl;
}

class VolumeTest : public ::testing::Test {
 protected:
  static constexpr UserId kOwner = 7;
  VolumeTest() : vol_(1, "test", VolumeType::kReadWrite, kOwner, OwnerAcl(kOwner), 0) {}

  Volume vol_;
};

TEST_F(VolumeTest, RootExistsWithConventionalFid) {
  auto st = vol_.GetStatus(vol_.root());
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->fid, (Fid{1, 1, 1}));
  EXPECT_EQ(st->type, VnodeType::kDirectory);
  EXPECT_FALSE(st->parent.valid());
}

TEST_F(VolumeTest, CreateFetchStoreCycle) {
  auto fid = vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  ASSERT_TRUE(fid.ok());
  EXPECT_TRUE(vol_.FetchData(*fid)->empty());

  ASSERT_EQ(vol_.StoreData(*fid, ToBytes("payload")), Status::kOk);
  EXPECT_EQ(ToString(*vol_.FetchData(*fid)), "payload");

  auto st = vol_.GetStatus(*fid);
  EXPECT_EQ(st->length, 7u);
  EXPECT_EQ(st->version, 2u);  // 1 at create, +1 per store
  EXPECT_EQ(st->parent, vol_.root());
}

TEST_F(VolumeTest, VersionBumpsOnEveryMutation) {
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  const uint64_t v1 = vol_.GetStatus(*&fid)->version;
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("a")), Status::kOk);
  const uint64_t v2 = vol_.GetStatus(fid)->version;
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("b")), Status::kOk);
  const uint64_t v3 = vol_.GetStatus(fid)->version;
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
}

TEST_F(VolumeTest, DirectoryDataIsInterpretable) {
  ASSERT_TRUE(vol_.CreateFile(vol_.root(), "a", kOwner, 0644).ok());
  ASSERT_TRUE(vol_.MakeDir(vol_.root(), "d", kOwner, OwnerAcl(kOwner)).ok());
  ASSERT_TRUE(vol_.MakeSymlink(vol_.root(), "s", "a", kOwner).ok());
  ASSERT_EQ(vol_.MakeMountPoint(vol_.root(), "m", 99), Status::kOk);

  auto data = vol_.FetchData(vol_.root());
  ASSERT_TRUE(data.ok());
  auto entries = DeserializeDirectory(*data);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 4u);
  EXPECT_EQ(entries->at("a").kind, DirItem::Kind::kFile);
  EXPECT_EQ(entries->at("d").kind, DirItem::Kind::kDirectory);
  EXPECT_EQ(entries->at("s").kind, DirItem::Kind::kSymlink);
  EXPECT_EQ(entries->at("m").kind, DirItem::Kind::kMountPoint);
  EXPECT_EQ(entries->at("m").mount_volume, 99u);
}

TEST_F(VolumeTest, StaleFidAfterRemove) {
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  ASSERT_EQ(vol_.RemoveFile(vol_.root(), "f"), Status::kOk);
  EXPECT_EQ(vol_.FetchData(fid).status(), Status::kStaleFid);
  EXPECT_EQ(vol_.GetStatus(fid).status(), Status::kStaleFid);
  // A recreated file with the same name gets a fresh fid.
  auto fid2 = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  EXPECT_NE(fid, fid2);
}

TEST_F(VolumeTest, WrongUniquifierIsStale) {
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  Fid forged = fid;
  forged.uniquifier += 1;
  EXPECT_EQ(vol_.GetStatus(forged).status(), Status::kStaleFid);
}

TEST_F(VolumeTest, RenamePreservesFidAndData) {
  // "File identifiers will remain invariant across renames" (Section 5.3).
  auto dir = *vol_.MakeDir(vol_.root(), "d", kOwner, OwnerAcl(kOwner));
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("keep me")), Status::kOk);
  const uint64_t version = vol_.GetStatus(fid)->version;

  ASSERT_EQ(vol_.Rename(vol_.root(), "f", dir, "g"), Status::kOk);
  auto st = vol_.GetStatus(fid);
  ASSERT_TRUE(st.ok());  // fid still valid
  EXPECT_EQ(st->parent, dir);
  EXPECT_EQ(st->version, version);  // data untouched
  EXPECT_EQ(ToString(*vol_.FetchData(fid)), "keep me");
}

TEST_F(VolumeTest, RenameDirectorySubtree) {
  auto d1 = *vol_.MakeDir(vol_.root(), "d1", kOwner, OwnerAcl(kOwner));
  auto d2 = *vol_.MakeDir(vol_.root(), "d2", kOwner, OwnerAcl(kOwner));
  auto inner = *vol_.MakeDir(d1, "inner", kOwner, OwnerAcl(kOwner));
  ASSERT_TRUE(vol_.CreateFile(inner, "deep", kOwner, 0644).ok());

  // Move d1 under d2 ("allowing us to support renaming of arbitrary
  // subtrees", Section 5.3).
  ASSERT_EQ(vol_.Rename(vol_.root(), "d1", d2, "moved"), Status::kOk);
  EXPECT_EQ(vol_.GetStatus(d1)->parent, d2);
  EXPECT_TRUE(vol_.GetStatus(inner).ok());

  // Cycle prevention: cannot move d2 into the subtree now under it.
  EXPECT_EQ(vol_.Rename(vol_.root(), "d2", inner, "oops"), Status::kInvalidArgument);
}

TEST_F(VolumeTest, QuotaEnforced) {
  Volume small(2, "small", VolumeType::kReadWrite, kOwner, OwnerAcl(kOwner),
               /*quota_bytes=*/4096);
  auto fid = *small.CreateFile(small.root(), "f", kOwner, 0644);
  EXPECT_EQ(small.StoreData(fid, Bytes(8192, 'x')), Status::kQuotaExceeded);
  EXPECT_EQ(small.StoreData(fid, Bytes(1024, 'x')), Status::kOk);
  // Shrinking then growing within quota is fine.
  EXPECT_EQ(small.StoreData(fid, Bytes(2048, 'x')), Status::kOk);
  EXPECT_GT(small.usage_bytes(), 2048u);
}

TEST_F(VolumeTest, QuotaFreedOnRemove) {
  Volume small(3, "small", VolumeType::kReadWrite, kOwner, OwnerAcl(kOwner), 8192);
  auto fid = *small.CreateFile(small.root(), "f", kOwner, 0644);
  ASSERT_EQ(small.StoreData(fid, Bytes(4096, 'x')), Status::kOk);
  const uint64_t used = small.usage_bytes();
  ASSERT_EQ(small.RemoveFile(small.root(), "f"), Status::kOk);
  EXPECT_LT(small.usage_bytes(), used - 4000);
}

TEST_F(VolumeTest, ReadOnlyVolumeRejectsMutation) {
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("v1")), Status::kOk);
  auto clone = vol_.Clone(50, "test.readonly");

  const Fid clone_fid{50, fid.vnode, fid.uniquifier};
  EXPECT_EQ(clone->StoreData(clone_fid, ToBytes("nope")), Status::kVolumeReadOnly);
  EXPECT_EQ(clone->CreateFile(clone->root(), "new", kOwner, 0644).status(),
            Status::kVolumeReadOnly);
  EXPECT_EQ(clone->RemoveFile(clone->root(), "f"), Status::kVolumeReadOnly);
  EXPECT_EQ(clone->SetMode(clone_fid, 0600), Status::kVolumeReadOnly);
}

TEST_F(VolumeTest, CloneIsFrozenSnapshotSharingData) {
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("frozen")), Status::kOk);

  auto clone = vol_.Clone(60, "clone");
  const Fid clone_fid{60, fid.vnode, fid.uniquifier};

  // Clone sees the data under its own volume id.
  EXPECT_EQ(ToString(*clone->FetchData(clone_fid)), "frozen");
  EXPECT_EQ(clone->GetStatus(clone_fid)->fid.volume, 60u);

  // Writing the original (copy-on-write) does not disturb the clone.
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("thawed")), Status::kOk);
  EXPECT_EQ(ToString(*clone->FetchData(clone_fid)), "frozen");
  EXPECT_EQ(ToString(*vol_.FetchData(fid)), "thawed");
}

TEST_F(VolumeTest, CloneRebrandsDirectoryEntries) {
  auto dir = *vol_.MakeDir(vol_.root(), "d", kOwner, OwnerAcl(kOwner));
  ASSERT_TRUE(vol_.CreateFile(dir, "f", kOwner, 0644).ok());
  auto clone = vol_.Clone(70, "clone");
  auto entries = DeserializeDirectory(*clone->FetchData(clone->root()));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->at("d").fid.volume, 70u);
}

TEST_F(VolumeTest, SnapshotIsExactAndSharesDataCopyOnWrite) {
  auto dir = *vol_.MakeDir(vol_.root(), "d", kOwner, OwnerAcl(kOwner));
  auto fid = *vol_.CreateFile(dir, "f", kOwner, 0644);
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("checkpointed")), Status::kOk);

  auto snap = vol_.Snapshot();

  // Unlike Clone, a snapshot preserves identity exactly: same id, name,
  // type, fids, and counters — its dump is byte-identical to the source's.
  EXPECT_EQ(snap->id(), vol_.id());
  EXPECT_EQ(snap->name(), vol_.name());
  EXPECT_EQ(snap->type(), VolumeType::kReadWrite);
  EXPECT_EQ(snap->usage_bytes(), vol_.usage_bytes());
  EXPECT_EQ(snap->Dump(), vol_.Dump());

  // Later mutation of the source leaves the snapshot frozen.
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("mutated since")), Status::kOk);
  ASSERT_TRUE(vol_.CreateFile(dir, "g", kOwner, 0644).ok());
  EXPECT_EQ(ToString(*snap->FetchData(fid)), "checkpointed");
  EXPECT_EQ(ToString(*vol_.FetchData(fid)), "mutated since");
}

TEST_F(VolumeTest, DumpSizeMatchesDumpExactly) {
  // DumpSize is the checkpoint disk-charge accounting: it must track the
  // real serialized size through every kind of state.
  EXPECT_EQ(vol_.DumpSize(), vol_.Dump().size());

  auto dir = *vol_.MakeDir(vol_.root(), "subdir", kOwner, OwnerAcl(kOwner));
  auto fid = *vol_.CreateFile(dir, "file.c", kOwner, 0644);
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("int main(void) { return 0; }")), Status::kOk);
  ASSERT_TRUE(vol_.MakeSymlink(dir, "link", "/vice/usr/elsewhere", kOwner).ok());
  EXPECT_EQ(vol_.DumpSize(), vol_.Dump().size());

  ASSERT_EQ(vol_.RemoveFile(dir, "file.c"), Status::kOk);
  EXPECT_EQ(vol_.DumpSize(), vol_.Dump().size());
}

TEST_F(VolumeTest, OfflineVolumeUnavailable) {
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  vol_.set_online(false);
  EXPECT_EQ(vol_.FetchData(fid).status(), Status::kVolumeOffline);
  vol_.set_online(true);
  EXPECT_TRUE(vol_.FetchData(fid).ok());
}

TEST_F(VolumeTest, EffectiveAclOfFileIsParentDirs) {
  // "The protected entities are directories, and all files within a
  //  directory have the same protection status."
  AccessList dir_acl;
  dir_acl.SetPositive(Principal::User(99), protection::kRead);
  auto dir = *vol_.MakeDir(vol_.root(), "d", kOwner, dir_acl);
  auto fid = *vol_.CreateFile(dir, "f", kOwner, 0644);
  auto acl = vol_.EffectiveAcl(fid);
  ASSERT_TRUE(acl.ok());
  EXPECT_EQ(*acl, dir_acl);
}

TEST_F(VolumeTest, SalvageCleanVolumeReportsClean) {
  ASSERT_TRUE(vol_.CreateFile(vol_.root(), "f", kOwner, 0644).ok());
  auto report = vol_.Salvage();
  EXPECT_TRUE(report.clean());
}

TEST_F(VolumeTest, RemoveEmptyDirOnly) {
  auto dir = *vol_.MakeDir(vol_.root(), "d", kOwner, OwnerAcl(kOwner));
  ASSERT_TRUE(vol_.CreateFile(dir, "f", kOwner, 0644).ok());
  EXPECT_EQ(vol_.RemoveDir(vol_.root(), "d"), Status::kNotEmpty);
  ASSERT_EQ(vol_.RemoveFile(dir, "f"), Status::kOk);
  EXPECT_EQ(vol_.RemoveDir(vol_.root(), "d"), Status::kOk);
}

TEST_F(VolumeTest, MTimeFromVirtualClock) {
  vol_.set_now(Seconds(100));
  auto fid = *vol_.CreateFile(vol_.root(), "f", kOwner, 0644);
  EXPECT_EQ(vol_.GetStatus(fid)->mtime, Seconds(100));
  vol_.set_now(Seconds(200));
  ASSERT_EQ(vol_.StoreData(fid, ToBytes("x")), Status::kOk);
  EXPECT_EQ(vol_.GetStatus(fid)->mtime, Seconds(200));
}

}  // namespace
}  // namespace itc::vice
