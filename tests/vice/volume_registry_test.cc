// Tests for volume administration: location database replication, volume
// moves, cloning, and read-only release.

#include "src/vice/volume_registry.h"

#include <gtest/gtest.h>

namespace itc::vice {
namespace {

using protection::AccessList;
using protection::Principal;

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest()
      : topo_(net::TopologyConfig{3, 1, 2}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_) {
    for (ServerId s = 0; s < 3; ++s) {
      servers_.push_back(std::make_unique<ViceServer>(
          s, topo_.NthServer(s), &network_, cost_, rpc::RpcConfig{}, ViceConfig{},
          &protection_, 50 + s));
      registry_.RegisterServer(servers_.back().get());
    }
    AccessList acl;
    acl.SetPositive(Principal::Group(protection::kAnyUserGroup), protection::kAllRights);
    acl_ = acl;
  }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  protection::ProtectionService protection_;
  VolumeRegistry registry_;
  std::vector<std::unique_ptr<ViceServer>> servers_;
  AccessList acl_;
};

TEST_F(RegistryTest, CreateVolumePlacesAtCustodianAndPublishes) {
  auto vid = registry_.CreateVolume("vol", /*custodian=*/1, 1, acl_, 0);
  ASSERT_TRUE(vid.ok());
  EXPECT_NE(servers_[1]->FindVolume(*vid), nullptr);
  EXPECT_EQ(servers_[0]->FindVolume(*vid), nullptr);
  // Every server's location snapshot knows the custodian.
  for (const auto& s : servers_) {
    auto info = s->location()->Find(*vid);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->custodian, 1u);
  }
}

TEST_F(RegistryTest, MoveVolumeUpdatesEveryReplica) {
  auto vid = *registry_.CreateVolume("mv", 0, 1, acl_, 0);
  Volume* vol = registry_.FindVolume(vid);
  ASSERT_TRUE(vol->CreateFile(vol->root(), "f", 1, 0644).ok());

  ASSERT_EQ(registry_.MoveVolume(vid, 2), Status::kOk);
  EXPECT_EQ(servers_[0]->FindVolume(vid), nullptr);
  ASSERT_NE(servers_[2]->FindVolume(vid), nullptr);
  // Contents moved intact.
  auto data = servers_[2]->FindVolume(vid)->FetchData(VolumeRootFid(vid));
  ASSERT_TRUE(data.ok());
  for (const auto& s : servers_) {
    EXPECT_EQ(s->location()->Find(vid)->custodian, 2u);
  }
}

TEST_F(RegistryTest, MoveToSameServerIsNoop) {
  auto vid = *registry_.CreateVolume("same", 0, 1, acl_, 0);
  EXPECT_EQ(registry_.MoveVolume(vid, 0), Status::kOk);
  EXPECT_NE(servers_[0]->FindVolume(vid), nullptr);
}

TEST_F(RegistryTest, CloneRegistersReadOnlyEntry) {
  auto vid = *registry_.CreateVolume("src", 0, 1, acl_, 0);
  auto clone = registry_.CloneVolume(vid, "src.clone");
  ASSERT_TRUE(clone.ok());
  auto info = servers_[1]->location()->Find(*clone);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->read_only);
  EXPECT_EQ(info->read_write_volume, vid);
  EXPECT_NE(servers_[0]->FindVolume(*clone), nullptr);
  // Cloning a read-only volume is refused.
  EXPECT_EQ(registry_.CloneVolume(*clone, "x").status(), Status::kVolumeReadOnly);
}

TEST_F(RegistryTest, ReleaseReadOnlyInstallsReplicasEverywhere) {
  auto vid = *registry_.CreateVolume("sys", 0, 1, acl_, 0);
  Volume* vol = registry_.FindVolume(vid);
  auto fid = *vol->CreateFile(vol->root(), "binary", 1, 0644);
  ASSERT_EQ(vol->StoreData(fid, ToBytes("v1")), Status::kOk);

  auto ro = registry_.ReleaseReadOnly(vid, "sys.readonly", {0, 1, 2});
  ASSERT_TRUE(ro.ok());
  for (const auto& s : servers_) {
    Volume* replica = s->FindVolume(*ro);
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(replica->read_only());
    EXPECT_EQ(ToString(*replica->FetchData(Fid{*ro, fid.vnode, fid.uniquifier})), "v1");
  }
  // The RW entry advertises the clone.
  auto info = servers_[0]->location()->Find(vid);
  EXPECT_EQ(info->ro_clone, *ro);
  auto clone_info = servers_[0]->location()->Find(*ro);
  EXPECT_EQ(clone_info->replica_sites.size(), 3u);
}

TEST_F(RegistryTest, SecondReleaseSupersedesFirst) {
  auto vid = *registry_.CreateVolume("sys2", 0, 1, acl_, 0);
  Volume* vol = registry_.FindVolume(vid);
  auto fid = *vol->CreateFile(vol->root(), "bin", 1, 0644);
  ASSERT_EQ(vol->StoreData(fid, ToBytes("v1")), Status::kOk);

  auto ro1 = *registry_.ReleaseReadOnly(vid, "sys2.ro1", {0, 1});
  ASSERT_EQ(vol->StoreData(fid, ToBytes("v2")), Status::kOk);
  auto ro2 = *registry_.ReleaseReadOnly(vid, "sys2.ro2", {0, 1});

  EXPECT_NE(ro1, ro2);
  EXPECT_EQ(servers_[0]->location()->Find(vid)->ro_clone, ro2);
  // "Multiple coexisting versions ... represented by their respective
  // read-only subtrees": the old clone is still served, frozen at v1.
  EXPECT_EQ(ToString(*servers_[0]
                          ->FindVolume(ro1)
                          ->FetchData(Fid{ro1, fid.vnode, fid.uniquifier})),
            "v1");
  EXPECT_EQ(ToString(*servers_[0]
                          ->FindVolume(ro2)
                          ->FetchData(Fid{ro2, fid.vnode, fid.uniquifier})),
            "v2");
}

TEST_F(RegistryTest, RootVolumeTracked) {
  auto vid = *registry_.CreateVolume("root", 0, 1, acl_, 0);
  ASSERT_EQ(registry_.SetRootVolume(vid), Status::kOk);
  for (const auto& s : servers_) EXPECT_EQ(s->location()->root_volume, vid);
  EXPECT_EQ(registry_.SetRootVolume(9999), Status::kNotFound);
}

TEST_F(RegistryTest, QuotaAndOnlineAdministration) {
  auto vid = *registry_.CreateVolume("q", 0, 1, acl_, 0);
  ASSERT_EQ(registry_.SetVolumeQuota(vid, 1024), Status::kOk);
  Volume* vol = registry_.FindVolume(vid);
  EXPECT_EQ(vol->quota_bytes(), 1024u);
  ASSERT_EQ(registry_.SetVolumeOnline(vid, false), Status::kOk);
  EXPECT_EQ(vol->GetStatus(vol->root()).status(), Status::kVolumeOffline);
  ASSERT_EQ(registry_.SetVolumeOnline(vid, true), Status::kOk);
}

TEST_F(RegistryTest, SalvageThroughRegistry) {
  auto vid = *registry_.CreateVolume("s", 0, 1, acl_, 0);
  Volume* vol = registry_.FindVolume(vid);
  ASSERT_TRUE(vol->CreateFile(vol->root(), "f", 1, 0644).ok());
  auto report = registry_.SalvageVolume(vid);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
}

TEST_F(RegistryTest, MountAtAddsMountPoint) {
  auto parent = *registry_.CreateVolume("p", 0, 1, acl_, 0);
  auto child = *registry_.CreateVolume("c", 1, 1, acl_, 0);
  ASSERT_EQ(registry_.MountAt(VolumeRootFid(parent), "child", child), Status::kOk);
  auto data = registry_.FindVolume(parent)->FetchData(VolumeRootFid(parent));
  auto entries = DeserializeDirectory(*data);
  EXPECT_EQ(entries->at("child").kind, DirItem::Kind::kMountPoint);
  EXPECT_EQ(entries->at("child").mount_volume, child);
  // Mounting an unknown volume fails.
  EXPECT_EQ(registry_.MountAt(VolumeRootFid(parent), "x", 777), Status::kNotFound);
}

}  // namespace
}  // namespace itc::vice
