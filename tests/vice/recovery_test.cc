// Crash-recovery unit tests: the intention log's lifecycle, the write-ahead
// discipline of the mutating handlers, crash-point semantics (Section 3.5's
// store-on-close atomicity: an operation the client never saw a reply for
// must not survive recovery), and the volatile/durable state split of
// SimulateCrash/Restart.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/rpc/interceptor.h"
#include "src/rpc/wire.h"
#include "src/vice/file_server.h"
#include "src/vice/recovery/intention_log.h"
#include "src/vice/recovery/stable_store.h"
#include "src/vice/volume_registry.h"

namespace itc::vice {
namespace {

using protection::AccessList;
using protection::Principal;
using recovery::IntentKind;
using recovery::IntentState;
using recovery::IntentionLog;

// --- IntentionLog in isolation ------------------------------------------------

TEST(IntentionLogTest, AppendCommitAbortLifecycle) {
  IntentionLog log;
  EXPECT_TRUE(log.empty());

  const Fid fid{1, 2, 3};
  const uint64_t a = log.Append(IntentKind::kStore, 1, 10, recovery::EncodeStore(fid, ToBytes("x")));
  const uint64_t b = log.Append(IntentKind::kRemoveFile, 1, 20, recovery::EncodeRemove(fid, "f"));
  const uint64_t c = log.Append(IntentKind::kSetAcl, 1, 30, recovery::EncodeSetAcl(fid, Bytes{}));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_GT(log.bytes_appended(), 0u);

  log.MarkCommitted(a);
  log.MarkAborted(b);
  EXPECT_EQ(log.records()[0].state, IntentState::kCommitted);
  EXPECT_EQ(log.records()[1].state, IntentState::kAborted);
  EXPECT_EQ(log.records()[2].state, IntentState::kLogged);

  const uint64_t bytes_before = log.bytes_appended();
  log.Truncate();
  EXPECT_TRUE(log.empty());
  // bytes_appended counts lifetime log traffic, not live records.
  EXPECT_EQ(log.bytes_appended(), bytes_before);
  // LSNs keep increasing across truncation.
  EXPECT_GT(log.Append(IntentKind::kStore, 1, 40, recovery::EncodeStore(fid, Bytes{})), c);
}

TEST(IntentionLogTest, ApplyIntentionReplaysAStore) {
  AccessList acl;
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup), protection::kAllRights);
  Volume vol(7, "v", VolumeType::kReadWrite, kAnonymousUser, acl, 0);
  Fid f = *vol.CreateFile(vol.root(), "f", kAnonymousUser, 0644);

  IntentionLog log;
  const uint64_t lsn =
      log.Append(IntentKind::kStore, 7, 99, recovery::EncodeStore(f, ToBytes("replayed")));
  log.MarkCommitted(lsn);
  ASSERT_EQ(recovery::ApplyIntention(vol, log.records()[0]), Status::kOk);
  EXPECT_EQ(ToString(*vol.FetchData(f)), "replayed");
  // The replay stamped the record's time onto the volume clock.
  EXPECT_EQ((*vol.Lookup(f))->status.mtime, 99);
}

// --- Server-level crash/restart ----------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : topo_(net::TopologyConfig{1, 1, 2}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_) {
    server_ = std::make_unique<ViceServer>(0, topo_.NthServer(0), &network_, cost_,
                                           rpc::RpcConfig{}, ViceConfig{}, &protection_,
                                           1000);
    registry_.RegisterServer(server_.get());
    alice_ = *protection_.CreateUser("alice", "pw-a");

    AccessList acl;
    acl.SetPositive(Principal::User(alice_), protection::kAllRights);
    acl.SetPositive(Principal::Group(protection::kAnyUserGroup),
                    protection::kLookup | protection::kRead);
    vol_ = *registry_.CreateVolume("v0", /*custodian=*/0, alice_, acl, 0);
    ITC_CHECK(registry_.SetRootVolume(vol_) == Status::kOk);
  }

  std::unique_ptr<rpc::ClientConnection> Connect() {
    auto key = crypto::DeriveKeyFromPassword("pw-a", "itc.cmu.edu");
    auto conn = rpc::ClientConnection::Connect(topo_.WorkstationNode(0, 0), alice_, key,
                                               &server_->endpoint(), &network_, cost_,
                                               &clock_, 77);
    ITC_CHECK(conn.ok());
    return std::move(*conn);
  }

  Result<Fid> CreateFile(rpc::ClientConnection* conn, const std::string& name) {
    rpc::Writer w;
    w.PutFid(VolumeRootFid(vol_));
    w.PutString(name);
    w.PutU32(0644);
    ASSIGN_OR_RETURN(Bytes reply, conn->Call(static_cast<uint32_t>(Proc::kCreateFile), w.Take()));
    rpc::Reader r(reply);
    RETURN_IF_ERROR(rpc::ExpectOk(r));
    return r.FidField();
  }

  Status Store(rpc::ClientConnection* conn, const Fid& fid, const std::string& data) {
    rpc::Writer w;
    w.PutFid(fid);
    w.PutBytes(ToBytes(data));
    auto reply = conn->Call(static_cast<uint32_t>(Proc::kStore), w.Take());
    if (!reply.ok()) return reply.status();
    rpc::Reader r(*reply);
    Status st = Status::kInternal;
    RETURN_IF_ERROR(r.ReadStatus(&st));
    return st;
  }

  Result<Bytes> Fetch(rpc::ClientConnection* conn, const Fid& fid) {
    rpc::Writer w;
    w.PutFid(fid);
    ASSIGN_OR_RETURN(Bytes reply, conn->Call(static_cast<uint32_t>(Proc::kFetch), w.Take()));
    rpc::Reader r(reply);
    RETURN_IF_ERROR(rpc::ExpectOk(r));
    RETURN_IF_ERROR(ReadVnodeStatus(r).status());
    return r.BytesField();
  }

  Result<uint32_t> ProbeEpoch(rpc::ClientConnection* conn) {
    ASSIGN_OR_RETURN(Bytes reply,
                     conn->Call(static_cast<uint32_t>(Proc::kProbeEpoch), Bytes{}));
    rpc::Reader r(reply);
    RETURN_IF_ERROR(rpc::ExpectOk(r));
    return r.U32();
  }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  sim::Clock clock_;
  protection::ProtectionService protection_;
  std::unique_ptr<ViceServer> server_;
  VolumeRegistry registry_;
  UserId alice_ = kAnonymousUser;
  VolumeId vol_ = kInvalidVolume;
};

TEST_F(RecoveryTest, StoreSurvivesCrashAndRestart) {
  auto conn = Connect();
  Fid f = *CreateFile(conn.get(), "f");
  ASSERT_EQ(Store(conn.get(), f, "durable"), Status::kOk);

  server_->SimulateCrash();
  EXPECT_TRUE(server_->crashed());
  auto report = server_->Restart(clock_.now());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.volumes_restored, 1u);
  EXPECT_EQ(report.replay_failures, 0u);
  EXPECT_GT(report.recovery_time, 0);

  auto conn2 = Connect();
  EXPECT_EQ(ToString(*Fetch(conn2.get(), f)), "durable");
}

TEST_F(RecoveryTest, CrashDropsVolatileStateRestartRestoresVolumes) {
  auto conn = Connect();
  Fid f = *CreateFile(conn.get(), "f");
  const NodeId client = topo_.WorkstationNode(0, 0);
  EXPECT_EQ(server_->endpoint().ConnectionCountFrom(client), 1u);

  server_->SimulateCrash();
  EXPECT_EQ(server_->endpoint().ConnectionCountFrom(client), 0u);
  EXPECT_EQ(server_->callbacks().promise_count(), 0u);
  EXPECT_EQ(server_->volume_count(), 0u);

  // The stale connection is told the server no longer knows it.
  EXPECT_EQ(Store(conn.get(), f, "x"), Status::kUnavailable);
  server_->Restart(clock_.now());
  EXPECT_FALSE(server_->crashed());
  EXPECT_EQ(server_->volume_count(), 1u);
  EXPECT_EQ(Store(conn.get(), f, "x"), Status::kConnectionBroken);
  auto conn2 = Connect();
  EXPECT_EQ(Store(conn2.get(), f, "x"), Status::kOk);
}

TEST_F(RecoveryTest, UnregisterCallbackSinkClosesThatNodesConnections) {
  auto conn = Connect();
  const NodeId client = topo_.WorkstationNode(0, 0);
  ASSERT_EQ(server_->endpoint().ConnectionCountFrom(client), 1u);
  // Regression: surrendering the sink must also drop the node's transport
  // state, or a later re-login would talk over a half-dead channel.
  server_->UnregisterCallbackSink(client);
  EXPECT_EQ(server_->endpoint().ConnectionCountFrom(client), 0u);
}

TEST_F(RecoveryTest, CrashBeforeLogAppendLeavesNoTrace) {
  auto conn = Connect();
  Fid f = *CreateFile(conn.get(), "f");
  ASSERT_EQ(Store(conn.get(), f, "old"), Status::kOk);
  const size_t log_before = server_->stable_store().log().size();

  server_->endpoint().fault().ArmCrash(rpc::CrashPoint::kBeforeLogAppend);
  EXPECT_EQ(Store(conn.get(), f, "new"), Status::kUnavailable);
  EXPECT_TRUE(server_->crashed());
  EXPECT_EQ(server_->stable_store().log().size(), log_before);

  auto report = server_->Restart(clock_.now());
  EXPECT_TRUE(report.clean());
  auto conn2 = Connect();
  EXPECT_EQ(ToString(*Fetch(conn2.get(), f)), "old");
}

TEST_F(RecoveryTest, CrashAfterLogAppendDiscardsUncommittedIntention) {
  auto conn = Connect();
  Fid f = *CreateFile(conn.get(), "f");
  ASSERT_EQ(Store(conn.get(), f, "old"), Status::kOk);

  server_->endpoint().fault().ArmCrash(rpc::CrashPoint::kAfterLogAppend);
  EXPECT_EQ(Store(conn.get(), f, "torn"), Status::kUnavailable);

  auto report = server_->Restart(clock_.now());
  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.intentions_discarded, 1u);
  // The client never got a reply, so the operation must not surface.
  auto conn2 = Connect();
  EXPECT_EQ(ToString(*Fetch(conn2.get(), f)), "old");
}

TEST_F(RecoveryTest, CrashBeforeReplyReplaysCommittedIntention) {
  auto conn = Connect();
  Fid f = *CreateFile(conn.get(), "f");
  ASSERT_EQ(Store(conn.get(), f, "old"), Status::kOk);

  server_->endpoint().fault().ArmCrash(rpc::CrashPoint::kBeforeReply);
  // The reply was lost, but the intention committed: after recovery the
  // operation is fully visible (at-most-once from the client's view, the
  // effect is simply the committed one).
  EXPECT_EQ(Store(conn.get(), f, "committed"), Status::kUnavailable);

  auto report = server_->Restart(clock_.now());
  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.intentions_replayed, 1u);
  auto conn2 = Connect();
  EXPECT_EQ(ToString(*Fetch(conn2.get(), f)), "committed");
}

TEST_F(RecoveryTest, CheckpointIntervalBoundsTheLog) {
  ViceConfig cfg;
  cfg.log_checkpoint_interval = 2;
  server_->set_config(cfg);

  auto conn = Connect();
  Fid f = *CreateFile(conn.get(), "f");
  for (int i = 0; i < 7; ++i) {
    ASSERT_EQ(Store(conn.get(), f, "v" + std::to_string(i)), Status::kOk);
  }
  // Every second commit re-dumps the volumes and truncates, so the log never
  // holds more than one full interval.
  EXPECT_LE(server_->stable_store().log().size(), 2u);

  server_->SimulateCrash();
  auto report = server_->Restart(clock_.now());
  EXPECT_TRUE(report.clean());
  auto conn2 = Connect();
  EXPECT_EQ(ToString(*Fetch(conn2.get(), f)), "v6");
}

TEST_F(RecoveryTest, ProbeEpochReportsRestarts) {
  auto conn = Connect();
  EXPECT_EQ(*ProbeEpoch(conn.get()), 0u);

  server_->SimulateCrash();
  server_->Restart(clock_.now());
  auto conn2 = Connect();
  EXPECT_EQ(*ProbeEpoch(conn2.get()), 1u);

  server_->SimulateCrash();
  server_->Restart(clock_.now());
  auto conn3 = Connect();
  EXPECT_EQ(*ProbeEpoch(conn3.get()), 2u);
}

TEST_F(RecoveryTest, DirectoryOpsReplayDeterministically) {
  auto conn = Connect();

  // A mixed mutation history: mkdir, create, store, rename, remove.
  rpc::Writer mk;
  mk.PutFid(VolumeRootFid(vol_));
  mk.PutString("d");
  mk.PutBytes(Bytes{});  // inherit ACL
  auto mk_reply = conn->Call(static_cast<uint32_t>(Proc::kMakeDir), mk.Take());
  ASSERT_TRUE(mk_reply.ok());
  rpc::Reader mkr(*mk_reply);
  ASSERT_EQ(rpc::ExpectOk(mkr), Status::kOk);
  Fid d = *mkr.FidField();

  Fid f = *CreateFile(conn.get(), "f");
  ASSERT_EQ(Store(conn.get(), f, "data"), Status::kOk);

  rpc::Writer rn;
  rn.PutFid(VolumeRootFid(vol_));
  rn.PutString("f");
  rn.PutFid(d);
  rn.PutString("g");
  auto rn_reply = conn->Call(static_cast<uint32_t>(Proc::kRename), rn.Take());
  ASSERT_TRUE(rn_reply.ok());
  rpc::Reader rnr(*rn_reply);
  ASSERT_EQ(rpc::ExpectOk(rnr), Status::kOk);

  const Bytes pre_crash_dump = registry_.FindVolume(vol_)->Dump();

  server_->SimulateCrash();
  auto report = server_->Restart(clock_.now());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.replay_failures, 0u);
  EXPECT_TRUE(report.salvage.clean());

  // Replay reconstructed the exact same volume, fid counters included.
  EXPECT_EQ(registry_.FindVolume(vol_)->Dump(), pre_crash_dump);
  auto conn2 = Connect();
  EXPECT_EQ(ToString(*Fetch(conn2.get(), f)), "data");
}

}  // namespace
}  // namespace itc::vice
