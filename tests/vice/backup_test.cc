// Tests for volume dump/restore and the backup workflow (the Integrity
// goal: "The probability of loss of stored data should be at least as low
// as on the current timesharing systems").

#include <gtest/gtest.h>

#include "src/campus/campus.h"
#include "src/vice/volume.h"

namespace itc::vice {
namespace {

using campus::Campus;
using campus::CampusConfig;
using protection::AccessList;
using protection::Principal;

AccessList OpenAcl() {
  AccessList acl;
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup), protection::kAllRights);
  return acl;
}

TEST(VolumeDumpTest, RoundTripPreservesEverything) {
  Volume vol(3, "original", VolumeType::kReadWrite, 7, OpenAcl(), 1 << 20);
  vol.set_now(Seconds(50));
  auto dir = *vol.MakeDir(vol.root(), "docs", 7, OpenAcl());
  auto file = *vol.CreateFile(dir, "paper.tex", 7, 0640);
  ASSERT_EQ(vol.StoreData(file, ToBytes("\\begin{document}")), Status::kOk);
  ASSERT_TRUE(vol.MakeSymlink(dir, "link", "paper.tex", 7).ok());
  ASSERT_EQ(vol.MakeMountPoint(vol.root(), "sub", 99), Status::kOk);

  const Bytes dump = vol.Dump();
  auto restored = Volume::Restore(dump, /*new_id=*/3, "original", VolumeType::kReadWrite);
  ASSERT_TRUE(restored.ok());

  // Identical fids, data, status, directory structure, quota accounting.
  EXPECT_EQ((*restored)->usage_bytes(), vol.usage_bytes());
  EXPECT_EQ((*restored)->vnode_count(), vol.vnode_count());
  EXPECT_EQ(ToString(*(*restored)->FetchData(file)), "\\begin{document}");
  auto st = (*restored)->GetStatus(file);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mode, 0640);
  EXPECT_EQ(st->mtime, Seconds(50));
  EXPECT_EQ(st->parent, dir);
  auto entries = DeserializeDirectory(*(*restored)->FetchData(vol.root()));
  EXPECT_EQ(entries->at("sub").mount_volume, 99u);
  // Salvage finds the restored volume perfectly consistent.
  EXPECT_TRUE((*restored)->Salvage().clean());
}

TEST(VolumeDumpTest, RestoreRebrandsFids) {
  Volume vol(3, "v", VolumeType::kReadWrite, 1, OpenAcl(), 0);
  auto file = *vol.CreateFile(vol.root(), "f", 1, 0644);
  ASSERT_EQ(vol.StoreData(file, ToBytes("x")), Status::kOk);
  auto restored = Volume::Restore(vol.Dump(), /*new_id=*/42, "v2", VolumeType::kReadWrite);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->id(), 42u);
  const Fid rebranded{42, file.vnode, file.uniquifier};
  EXPECT_EQ(ToString(*(*restored)->FetchData(rebranded)), "x");
  auto entries = DeserializeDirectory(*(*restored)->FetchData((*restored)->root()));
  EXPECT_EQ(entries->at("f").fid.volume, 42u);
}

TEST(VolumeDumpTest, CorruptDumpsRejected) {
  Volume vol(3, "v", VolumeType::kReadWrite, 1, OpenAcl(), 0);
  Bytes dump = vol.Dump();
  // Bad magic.
  Bytes bad = dump;
  bad[0] ^= 0xff;
  EXPECT_FALSE(Volume::Restore(bad, 9, "x", VolumeType::kReadWrite).ok());
  // Truncation.
  Bytes cut(dump.begin(), dump.begin() + static_cast<ptrdiff_t>(dump.size() / 2));
  EXPECT_FALSE(Volume::Restore(cut, 9, "x", VolumeType::kReadWrite).ok());
  // Trailing garbage.
  Bytes padded = dump;
  padded.push_back(0);
  EXPECT_FALSE(Volume::Restore(padded, 9, "x", VolumeType::kReadWrite).ok());
}

TEST(BackupWorkflowTest, DumpRestoreThroughRegistry) {
  Campus campus(CampusConfig::Revised(1, 2));
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("author", "pw", 0);
  ASSERT_TRUE(home.ok());
  auto& ws = campus.workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/author/thesis", ToBytes("ch 1..4")),
            Status::kOk);

  // Nightly backup.
  auto tape = campus.registry().BackupVolume(home->volume);
  ASSERT_TRUE(tape.ok());

  // Disaster: the user destroys their file the next day.
  ASSERT_EQ(ws.Unlink("/vice/usr/author/thesis"), Status::kOk);
  EXPECT_EQ(ws.ReadWholeFile("/vice/usr/author/thesis").status(), Status::kNotFound);

  // Operations restores the dump as a new volume mounted at /usr/restore.
  auto restored = campus.registry().RestoreVolume(*tape, "user.author.restored",
                                                  /*custodian=*/0);
  ASSERT_TRUE(restored.ok());
  Volume* root = campus.registry().FindVolume(
      campus.registry().location().root_volume);
  auto root_entries = DeserializeDirectory(*root->FetchData(root->root()));
  auto usr = root_entries->at("usr").fid;
  ASSERT_EQ(campus.registry().MountAt(usr, "restore", *restored), Status::kOk);

  ws.venus().FlushCache();  // see the new mount
  auto recovered = ws.ReadWholeFile("/vice/usr/restore/thesis");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(ToString(*recovered), "ch 1..4");
}

TEST(BackupWorkflowTest, BackupIsConsistentSnapshot) {
  Campus campus(CampusConfig::Revised(1, 1));
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("u", "pw", 0);
  ASSERT_TRUE(home.ok());
  ASSERT_EQ(campus.PopulateDirect(home->volume, "/f", ToBytes("v1")), Status::kOk);

  auto tape = campus.registry().BackupVolume(home->volume);
  ASSERT_TRUE(tape.ok());
  // Post-backup writes do not leak into the already-taken dump.
  ASSERT_EQ(campus.PopulateDirect(home->volume, "/f", ToBytes("v2")), Status::kOk);
  auto restored = campus.registry().RestoreVolume(*tape, "snap", 0);
  ASSERT_TRUE(restored.ok());
  Volume* vol = campus.registry().FindVolume(*restored);
  auto entries = DeserializeDirectory(*vol->FetchData(vol->root()));
  EXPECT_EQ(ToString(*vol->FetchData(entries->at("f").fid)), "v1");
}

}  // namespace
}  // namespace itc::vice
