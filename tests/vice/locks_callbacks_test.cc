// Unit tests for the lock manager (single-writer/multi-reader advisory
// locks) and the callback manager (invalidate-on-modification promises).

#include <gtest/gtest.h>

#include "src/vice/callback_manager.h"
#include "src/vice/lock_manager.h"

namespace itc::vice {
namespace {

// --- LockManager ------------------------------------------------------------

class LockTest : public ::testing::Test {
 protected:
  LockManager locks_;
  const Fid f_{1, 2, 3};
  const LockManager::Holder a_{100, 10};
  const LockManager::Holder b_{200, 20};
};

TEST_F(LockTest, MultipleReadersAllowed) {
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, b_), Status::kOk);
  EXPECT_TRUE(locks_.IsLocked(f_));
  EXPECT_FALSE(locks_.IsExclusive(f_));
}

TEST_F(LockTest, WriterExcludesEveryone) {
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, b_), Status::kLocked);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, b_), Status::kLocked);
  EXPECT_TRUE(locks_.IsExclusive(f_));
}

TEST_F(LockTest, ReaderBlocksWriter) {
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, b_), Status::kLocked);
}

TEST_F(LockTest, SoleReaderCanUpgrade) {
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, a_), Status::kOk);
  EXPECT_TRUE(locks_.IsExclusive(f_));
}

TEST_F(LockTest, UpgradeBlockedByOtherReader) {
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, b_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, a_), Status::kLocked);
}

TEST_F(LockTest, ReacquireIsIdempotent) {
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, a_), Status::kOk);
}

TEST_F(LockTest, ReleaseFreesLock) {
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, a_), Status::kOk);
  EXPECT_EQ(locks_.Release(f_, a_), Status::kOk);
  EXPECT_FALSE(locks_.IsLocked(f_));
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, b_), Status::kOk);
}

TEST_F(LockTest, ReleaseWithoutHoldFails) {
  EXPECT_EQ(locks_.Release(f_, a_), Status::kNotLocked);
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kShared, a_), Status::kOk);
  EXPECT_EQ(locks_.Release(f_, b_), Status::kNotLocked);
}

TEST_F(LockTest, ReleaseAllForWorkstationCrash) {
  const Fid g{1, 5, 5};
  EXPECT_EQ(locks_.Acquire(f_, LockMode::kExclusive, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(g, LockMode::kShared, a_), Status::kOk);
  EXPECT_EQ(locks_.Acquire(g, LockMode::kShared, b_), Status::kOk);
  locks_.ReleaseAllFor(a_);
  EXPECT_FALSE(locks_.IsLocked(f_));
  EXPECT_TRUE(locks_.IsLocked(g));  // b still holds
}

// --- CallbackManager -------------------------------------------------------------

class RecordingReceiver : public CallbackReceiver {
 public:
  explicit RecordingReceiver(NodeId node) : node_(node) {}
  void OnCallbackBroken(const Fid& fid) override { broken.push_back(fid); }
  NodeId callback_node() const override { return node_; }
  std::vector<Fid> broken;

 private:
  NodeId node_;
};

class CallbackTest : public ::testing::Test {
 protected:
  CallbackTest()
      : topo_(net::TopologyConfig{1, 1, 4}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_),
        cpu_("cpu"),
        r1_(topo_.WorkstationNode(0, 0)),
        r2_(topo_.WorkstationNode(0, 1)),
        r3_(topo_.WorkstationNode(0, 2)) {}

  uint32_t Break(const Fid& fid, CallbackReceiver* except) {
    return cbm_.Break(fid, except, 0, topo_.ServerNode(0, 0), &network_, &cpu_, cost_);
  }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  sim::Resource cpu_;
  CallbackManager cbm_;
  RecordingReceiver r1_, r2_, r3_;
  const Fid f_{1, 2, 3};
};

TEST_F(CallbackTest, BreakNotifiesAllHoldersExceptWriter) {
  cbm_.Register(f_, &r1_);
  cbm_.Register(f_, &r2_);
  cbm_.Register(f_, &r3_);
  EXPECT_EQ(Break(f_, &r1_), 2u);
  EXPECT_TRUE(r1_.broken.empty());
  EXPECT_EQ(r2_.broken.size(), 1u);
  EXPECT_EQ(r3_.broken.size(), 1u);
  EXPECT_EQ(cbm_.stats().broken, 2u);
}

TEST_F(CallbackTest, WriterPromiseSurvivesItsOwnBreak) {
  cbm_.Register(f_, &r1_);
  cbm_.Register(f_, &r2_);
  Break(f_, &r1_);
  // r1 keeps its promise; r2's is gone.
  EXPECT_TRUE(cbm_.HasPromise(f_, &r1_));
  EXPECT_FALSE(cbm_.HasPromise(f_, &r2_));
  // A second write by r2 must notify r1.
  cbm_.Register(f_, &r2_);
  EXPECT_EQ(Break(f_, &r2_), 1u);
  EXPECT_EQ(r1_.broken.size(), 1u);
}

TEST_F(CallbackTest, BreakOnUnknownFidIsNoop) {
  EXPECT_EQ(Break(f_, nullptr), 0u);
  EXPECT_EQ(cbm_.stats().break_events, 0u);
}

TEST_F(CallbackTest, UnregisterStopsNotifications) {
  cbm_.Register(f_, &r1_);
  cbm_.Unregister(f_, &r1_);
  EXPECT_EQ(Break(f_, nullptr), 0u);
}

TEST_F(CallbackTest, UnregisterAllDropsEveryPromise) {
  const Fid g{1, 9, 9};
  cbm_.Register(f_, &r1_);
  cbm_.Register(g, &r1_);
  cbm_.Register(g, &r2_);
  cbm_.UnregisterAll(&r1_);
  EXPECT_FALSE(cbm_.HasPromise(f_, &r1_));
  EXPECT_FALSE(cbm_.HasPromise(g, &r1_));
  EXPECT_TRUE(cbm_.HasPromise(g, &r2_));
}

TEST_F(CallbackTest, BreakChargesServerCpuAndNetwork) {
  cbm_.Register(f_, &r1_);
  cbm_.Register(f_, &r2_);
  const uint64_t msgs_before = network_.stats().messages;
  Break(f_, nullptr);
  EXPECT_EQ(network_.stats().messages - msgs_before, 2u);
  EXPECT_GT(cpu_.busy_time(), 0);
}

TEST_F(CallbackTest, BreakVolumeSweepsWholeVolume) {
  const Fid g{1, 9, 9};
  const Fid other_volume{2, 1, 1};
  cbm_.Register(f_, &r1_);
  cbm_.Register(g, &r2_);
  cbm_.Register(other_volume, &r3_);
  const uint32_t sent =
      cbm_.BreakVolume(1, 0, topo_.ServerNode(0, 0), &network_, &cpu_, cost_);
  EXPECT_EQ(sent, 2u);
  EXPECT_EQ(r1_.broken.size(), 1u);
  EXPECT_EQ(r2_.broken.size(), 1u);
  EXPECT_TRUE(r3_.broken.empty());
  EXPECT_TRUE(cbm_.HasPromise(other_volume, &r3_));
}

TEST_F(CallbackTest, RegisterIsIdempotentPerHolder) {
  cbm_.Register(f_, &r1_);
  cbm_.Register(f_, &r1_);
  EXPECT_EQ(cbm_.promise_count(), 1u);
  EXPECT_EQ(Break(f_, nullptr), 1u);
}

}  // namespace
}  // namespace itc::vice
