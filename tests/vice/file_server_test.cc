// Protocol-level tests of the Vice file server: these speak the raw
// Vice-Virtue wire interface over an authenticated connection, checking
// protection enforcement, custodian hints, server-side pathname traversal,
// and ACL manipulation — without Venus in the way.

#include "src/vice/file_server.h"

#include <gtest/gtest.h>

#include "src/rpc/wire.h"
#include "src/common/logging.h"
#include "src/vice/volume_registry.h"

namespace itc::vice {
namespace {

using protection::AccessList;
using protection::Principal;

class FileServerTest : public ::testing::Test {
 protected:
  FileServerTest()
      : topo_(net::TopologyConfig{2, 1, 2}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_) {
    for (ServerId s = 0; s < 2; ++s) {
      servers_.push_back(std::make_unique<ViceServer>(
          s, topo_.NthServer(s), &network_, cost_, rpc::RpcConfig{}, ViceConfig{},
          &protection_, 1000 + s));
      registry_.RegisterServer(servers_.back().get());
    }
    alice_ = *protection_.CreateUser("alice", "pw-a");
    bob_ = *protection_.CreateUser("bob", "pw-b");

    AccessList acl;
    acl.SetPositive(Principal::User(alice_), protection::kAllRights);
    acl.SetPositive(Principal::Group(protection::kAnyUserGroup),
                    protection::kLookup | protection::kRead);
    vol0_ = *registry_.CreateVolume("v0", /*custodian=*/0, alice_, acl, 0);
    vol1_ = *registry_.CreateVolume("v1", /*custodian=*/1, alice_, acl, 0);
    ITC_CHECK(registry_.SetRootVolume(vol0_) == Status::kOk);
    ITC_CHECK(registry_.MountAt(VolumeRootFid(vol0_), "v1", vol1_) == Status::kOk);
  }

  // Authenticated connection for `user` to server `s`.
  std::unique_ptr<rpc::ClientConnection> Connect(UserId user, const std::string& password,
                                                 ServerId s) {
    auto key = crypto::DeriveKeyFromPassword(password, "itc.cmu.edu");
    auto conn = rpc::ClientConnection::Connect(topo_.WorkstationNode(0, 0), user, key,
                                               &servers_[s]->endpoint(), &network_, cost_,
                                               &clock_, 77 + user);
    return conn.ok() ? std::move(*conn) : nullptr;
  }

  Bytes Call(rpc::ClientConnection* conn, Proc proc, const Bytes& req) {
    auto reply = conn->Call(static_cast<uint32_t>(proc), req);
    EXPECT_TRUE(reply.ok());
    return reply.ok() ? *reply : Bytes{};
  }

  Status ReplyStatus(const Bytes& reply) {
    rpc::Reader r(reply);
    Status st = Status::kInternal;
    EXPECT_EQ(r.ReadStatus(&st), Status::kOk);
    return st;
  }

  Result<Fid> CreateFile(rpc::ClientConnection* conn, const Fid& dir,
                         const std::string& name) {
    rpc::Writer w;
    w.PutFid(dir);
    w.PutString(name);
    w.PutU32(0644);
    Bytes reply = Call(conn, Proc::kCreateFile, w.Take());
    rpc::Reader r(reply);
    Status st = Status::kInternal;
    RETURN_IF_ERROR(r.ReadStatus(&st));
    RETURN_IF_ERROR(st);
    return r.FidField();
  }

  Status Store(rpc::ClientConnection* conn, const Fid& fid, const Bytes& data) {
    rpc::Writer w;
    w.PutFid(fid);
    w.PutBytes(data);
    return ReplyStatus(Call(conn, Proc::kStore, w.Take()));
  }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  protection::ProtectionService protection_;
  VolumeRegistry registry_;
  std::vector<std::unique_ptr<ViceServer>> servers_;
  sim::Clock clock_;
  UserId alice_ = 0, bob_ = 0;
  VolumeId vol0_ = 0, vol1_ = 0;
};

TEST_F(FileServerTest, TestAuthAndGetTime) {
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(ReplyStatus(Call(conn.get(), Proc::kTestAuth, {})), Status::kOk);

  Bytes reply = Call(conn.get(), Proc::kGetTime, {});
  rpc::Reader r(reply);
  Status st = Status::kInternal;
  ASSERT_EQ(r.ReadStatus(&st), Status::kOk);
  EXPECT_EQ(st, Status::kOk);
  EXPECT_TRUE(r.I64().ok());
}

TEST_F(FileServerTest, FetchReturnsStatusAndData) {
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  auto fid = CreateFile(conn.get(), VolumeRootFid(vol0_), "f");
  ASSERT_TRUE(fid.ok());
  ASSERT_EQ(Store(conn.get(), *fid, ToBytes("data!")), Status::kOk);

  rpc::Writer w;
  w.PutFid(*fid);
  Bytes reply = Call(conn.get(), Proc::kFetch, w.Take());
  rpc::Reader r(reply);
  Status st = Status::kInternal;
  ASSERT_EQ(r.ReadStatus(&st), Status::kOk);
  ASSERT_EQ(st, Status::kOk);
  auto status = ReadVnodeStatus(r);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->length, 5u);
  auto data = r.BytesField();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "data!");
}

TEST_F(FileServerTest, NotCustodianCarriesHint) {
  // Ask server 0 about a fid in vol1 (custodian: server 1).
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  rpc::Writer w;
  w.PutFid(VolumeRootFid(vol1_));
  Bytes reply = Call(conn.get(), Proc::kFetchStatus, w.Take());
  rpc::Reader r(reply);
  Status st = Status::kInternal;
  ASSERT_EQ(r.ReadStatus(&st), Status::kOk);
  ASSERT_EQ(st, Status::kNotCustodian);
  auto hint = r.U32();
  ASSERT_TRUE(hint.ok());
  EXPECT_EQ(*hint, 1u);  // "respond with the identity of the appropriate custodian"
}

TEST_F(FileServerTest, ProtectionEnforcedOnStore) {
  auto alice_conn = Connect(alice_, "pw-a", 0);
  auto bob_conn = Connect(bob_, "pw-b", 0);
  ASSERT_NE(alice_conn, nullptr);
  ASSERT_NE(bob_conn, nullptr);

  auto fid = CreateFile(alice_conn.get(), VolumeRootFid(vol0_), "private");
  ASSERT_TRUE(fid.ok());
  // Bob can read (AnyUser has r) but not write.
  rpc::Writer w;
  w.PutFid(*fid);
  EXPECT_EQ(ReplyStatus(Call(bob_conn.get(), Proc::kFetch, w.Take())), Status::kOk);
  EXPECT_EQ(Store(bob_conn.get(), *fid, ToBytes("hax")), Status::kPermissionDenied);
}

TEST_F(FileServerTest, PerFileBitsRefineDirRights) {
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  auto fid = CreateFile(conn.get(), VolumeRootFid(vol0_), "locked");
  ASSERT_TRUE(fid.ok());

  // Clear all write bits via SetStatus; even the owner's Store is refused.
  rpc::Writer w;
  w.PutFid(*fid);
  w.PutBool(true);
  w.PutU32(0444);
  w.PutBool(false);
  w.PutU32(0);
  EXPECT_EQ(ReplyStatus(Call(conn.get(), Proc::kSetStatus, w.Take())), Status::kOk);
  EXPECT_EQ(Store(conn.get(), *fid, ToBytes("x")), Status::kPermissionDenied);
}

TEST_F(FileServerTest, AclGetAndSet) {
  auto alice_conn = Connect(alice_, "pw-a", 0);
  auto bob_conn = Connect(bob_, "pw-b", 0);
  ASSERT_NE(alice_conn, nullptr);
  ASSERT_NE(bob_conn, nullptr);
  const Fid root = VolumeRootFid(vol0_);

  // Bob cannot change the ACL (no Administer right).
  AccessList evil;
  evil.SetPositive(Principal::User(bob_), protection::kAllRights);
  rpc::Writer w;
  w.PutFid(root);
  w.PutBytes(evil.Serialize());
  EXPECT_EQ(ReplyStatus(Call(bob_conn.get(), Proc::kSetAcl, w.Take())),
            Status::kPermissionDenied);

  // Alice grants Bob insert; now Bob can create files.
  AccessList acl;
  acl.SetPositive(Principal::User(alice_), protection::kAllRights);
  acl.SetPositive(Principal::User(bob_), protection::kLookup | protection::kInsert |
                                             protection::kWrite);
  rpc::Writer w2;
  w2.PutFid(root);
  w2.PutBytes(acl.Serialize());
  EXPECT_EQ(ReplyStatus(Call(alice_conn.get(), Proc::kSetAcl, w2.Take())), Status::kOk);
  EXPECT_TRUE(CreateFile(bob_conn.get(), root, "bobs").ok());
}

TEST_F(FileServerTest, NegativeRightsRevokeRapidly) {
  auto alice_conn = Connect(alice_, "pw-a", 0);
  auto bob_conn = Connect(bob_, "pw-b", 0);
  const Fid root = VolumeRootFid(vol0_);

  // Bob starts readable via AnyUser; alice adds a negative entry for him.
  auto fid = CreateFile(alice_conn.get(), root, "doc");
  ASSERT_TRUE(fid.ok());
  rpc::Writer w;
  w.PutFid(*fid);
  EXPECT_EQ(ReplyStatus(Call(bob_conn.get(), Proc::kFetch, w.Take())), Status::kOk);

  AccessList acl;
  acl.SetPositive(Principal::User(alice_), protection::kAllRights);
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup),
                  protection::kLookup | protection::kRead);
  acl.SetNegative(Principal::User(bob_), protection::kRead);
  rpc::Writer w2;
  w2.PutFid(root);
  w2.PutBytes(acl.Serialize());
  ASSERT_EQ(ReplyStatus(Call(alice_conn.get(), Proc::kSetAcl, w2.Take())), Status::kOk);

  rpc::Writer w3;
  w3.PutFid(*fid);
  EXPECT_EQ(ReplyStatus(Call(bob_conn.get(), Proc::kFetch, w3.Take())),
            Status::kPermissionDenied);
}

TEST_F(FileServerTest, ServerSidePathResolution) {
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  auto fid = CreateFile(conn.get(), VolumeRootFid(vol0_), "target");
  ASSERT_TRUE(fid.ok());

  rpc::Writer w;
  w.PutU32(kInvalidVolume);  // start at the root volume
  w.PutString("/target");
  Bytes reply = Call(conn.get(), Proc::kResolvePath, w.Take());
  rpc::Reader r(reply);
  Status st = Status::kInternal;
  ASSERT_EQ(r.ReadStatus(&st), Status::kOk);
  ASSERT_EQ(st, Status::kOk);
  auto resolved = r.FidField();
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *fid);
}

TEST_F(FileServerTest, ServerSideResolutionHandsOffAtMount) {
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  rpc::Writer w;
  w.PutU32(kInvalidVolume);
  w.PutString("/v1/somewhere");
  Bytes reply = Call(conn.get(), Proc::kResolvePath, w.Take());
  rpc::Reader r(reply);
  Status st = Status::kInternal;
  ASSERT_EQ(r.ReadStatus(&st), Status::kOk);
  ASSERT_EQ(st, Status::kNotCustodian);
  EXPECT_EQ(*r.U32(), 1u);       // custodian hint
  EXPECT_EQ(*r.U32(), vol1_);    // continue in this volume
  EXPECT_EQ(*r.String(), "/somewhere");
}

TEST_F(FileServerTest, CallCountsFeedHistogram) {
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  auto fid = CreateFile(conn.get(), VolumeRootFid(vol0_), "h");
  ASSERT_TRUE(fid.ok());
  rpc::Writer w;
  w.PutFid(*fid);
  Call(conn.get(), Proc::kFetchStatus, w.Take());
  rpc::Writer w2;
  w2.PutFid(*fid);
  w2.PutU64(1);
  Call(conn.get(), Proc::kValidate, w2.Take());

  auto hist = servers_[0]->CallHistogram();
  EXPECT_EQ(hist[CallClass::kStatus], 1u);
  EXPECT_EQ(hist[CallClass::kValidate], 1u);
  EXPECT_GE(servers_[0]->total_calls(), 3u);
}

TEST_F(FileServerTest, RenameAcrossVolumesRejected) {
  auto conn = Connect(alice_, "pw-a", 0);
  ASSERT_NE(conn, nullptr);
  rpc::Writer w;
  w.PutFid(VolumeRootFid(vol0_));
  w.PutString("a");
  w.PutFid(VolumeRootFid(vol1_));
  w.PutString("b");
  EXPECT_EQ(ReplyStatus(Call(conn.get(), Proc::kRename, w.Take())), Status::kCrossVolume);
}

}  // namespace
}  // namespace itc::vice
