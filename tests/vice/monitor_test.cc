// Tests for the monitoring / custodian-reassignment tool (Section 3.6).

#include "src/vice/monitor.h"

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc::vice {
namespace {

using campus::Campus;
using campus::CampusConfig;

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(2, 2));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    // The user's volume is custodian-ed in cluster 0, but she works from
    // cluster 1 — the "student moved to another dormitory" case.
    auto home = campus_->AddUserWithHome("nomad", "pw", /*custodian=*/0);
    ASSERT_TRUE(home.ok());
    home_ = *home;
  }

  void GenerateRemoteTraffic(int opens) {
    auto& ws = campus_->workstation(2);  // cluster 1
    ASSERT_EQ(ws.LoginWithPassword(home_.user, "pw"), Status::kOk);
    ASSERT_EQ(ws.WriteWholeFile("/vice/usr/nomad/f", ToBytes("x")), Status::kOk);
    for (int i = 0; i < opens; ++i) {
      ws.venus().FlushCache();  // force real server traffic each round
      ASSERT_TRUE(ws.ReadWholeFile("/vice/usr/nomad/f").ok());
    }
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome home_;
};

TEST_F(MonitorTest, NoRecommendationWithoutSignal) {
  Monitor monitor(&campus_->registry());
  auto report = monitor.Scan();
  EXPECT_TRUE(report.moves.empty());
}

TEST_F(MonitorTest, RecommendsMoveTowardDominantCluster) {
  GenerateRemoteTraffic(30);
  Monitor monitor(&campus_->registry(), /*dominance=*/0.6, /*min_accesses=*/20);
  auto report = monitor.Scan();
  ASSERT_FALSE(report.moves.empty());
  const MoveRecommendation& rec = report.moves.front();
  EXPECT_EQ(rec.volume, home_.volume);
  EXPECT_EQ(rec.current_custodian, 0u);
  EXPECT_EQ(rec.suggested_custodian, 1u);
  EXPECT_GT(rec.total_accesses, 20u);
  EXPECT_FALSE(rec.Describe().empty());
}

TEST_F(MonitorTest, ApplyMovesVolumeAndLocalizesTraffic) {
  GenerateRemoteTraffic(30);
  Monitor monitor(&campus_->registry(), 0.6, 20);
  auto report = monitor.Scan();
  ASSERT_FALSE(report.moves.empty());
  ASSERT_EQ(monitor.Apply(report.moves.front()), Status::kOk);
  EXPECT_NE(campus_->server(1).FindVolume(home_.volume), nullptr);

  // Traffic is now intra-cluster.
  auto& ws = campus_->workstation(2);
  ws.venus().FlushCache();
  campus_->network().ResetStats();
  ASSERT_TRUE(ws.ReadWholeFile("/vice/usr/nomad/f").ok());
  // Only the root-volume directories (still at server 0) may cross clusters;
  // refetch once more with warm directories to check the steady state.
  campus_->network().ResetStats();
  ws.venus().FlushCache();
  ASSERT_TRUE(ws.ReadWholeFile("/vice/usr/nomad/f").ok());
  // The file fetch itself lands at server 1 (same cluster).
  auto hist1 = campus_->server(1).CallHistogram();
  EXPECT_GE(hist1[CallClass::kFetch], 1u);
}

TEST_F(MonitorTest, ReadOnlyAndRootVolumesNeverRecommended) {
  // Hammer the root volume from cluster 1 — it must not be recommended.
  auto& ws = campus_->workstation(2);
  ASSERT_EQ(ws.LoginWithPassword(home_.user, "pw"), Status::kOk);
  for (int i = 0; i < 40; ++i) {
    ws.venus().FlushCache();
    ASSERT_TRUE(ws.ReadDir("/vice/usr").ok());
  }
  Monitor monitor(&campus_->registry(), 0.5, 10);
  auto report = monitor.Scan();
  for (const auto& rec : report.moves) {
    EXPECT_NE(rec.volume, campus_->registry().location().root_volume);
  }
}

TEST_F(MonitorTest, ServerLoadReported) {
  GenerateRemoteTraffic(10);
  Monitor monitor(&campus_->registry());
  auto report = monitor.Scan();
  EXPECT_GT(report.server_load[0], 0u);
}

}  // namespace
}  // namespace itc::vice
