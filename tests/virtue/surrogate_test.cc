// Tests for the surrogate server (Section 3.3): a low-function PC client
// reaching Vice through a full Virtue workstation.

#include "src/virtue/surrogate.h"

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc::virtue {
namespace {

using campus::Campus;
using campus::CampusConfig;

class SurrogateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(1, 2));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("pcuser", "pw", 0);
    ASSERT_TRUE(home.ok());
    user_ = home->user;

    // Workstation 0 hosts the surrogate and is attached to Vice.
    host_ = &campus_->workstation(0);
    ASSERT_EQ(host_->LoginWithPassword(user_, "pw"), Status::kOk);

    key_ = crypto::DeriveKeyFromPassword("pw", "itc.cmu.edu");
    surrogate_ = std::make_unique<SurrogateServer>(
        host_, &campus_->network(), campus_->config().cost, campus_->config().rpc,
        [this](UserId u) -> std::optional<crypto::Key> {
          if (u == user_) return key_;
          return std::nullopt;
        },
        999);

    // The "PC" borrows workstation 1's node id (same cluster, cheap link).
    pc_ = std::make_unique<PcClient>(campus_->topology().WorkstationNode(0, 1),
                                     &pc_clock_, surrogate_.get(), &campus_->network(),
                                     campus_->config().cost);
    ASSERT_EQ(pc_->Connect(user_, key_, 7), Status::kOk);
  }

  std::unique_ptr<Campus> campus_;
  Workstation* host_ = nullptr;
  UserId user_ = kAnonymousUser;
  crypto::Key key_;
  std::unique_ptr<SurrogateServer> surrogate_;
  sim::Clock pc_clock_;
  std::unique_ptr<PcClient> pc_;
};

TEST_F(SurrogateTest, PcReachesViceTransparently) {
  // The PC writes into the shared name space through the surrogate.
  ASSERT_EQ(pc_->WriteFile("/vice/usr/pcuser/memo.txt", ToBytes("from the PC")),
            Status::kOk);
  // A full workstation elsewhere sees it directly.
  auto& other = campus_->workstation(1);
  ASSERT_EQ(other.LoginWithPassword(user_, "pw"), Status::kOk);
  auto data = other.ReadWholeFile("/vice/usr/pcuser/memo.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "from the PC");
}

TEST_F(SurrogateTest, PcReadsThroughHostCache) {
  ASSERT_EQ(host_->WriteWholeFile("/vice/usr/pcuser/doc", ToBytes("cached at host")),
            Status::kOk);
  // Warm read revalidates the parent directory the create invalidated.
  ASSERT_TRUE(host_->ReadWholeFile("/vice/usr/pcuser/doc").ok());
  const uint64_t host_fetches = host_->venus().stats().fetches;
  auto data = pc_->ReadFile("/vice/usr/pcuser/doc");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "cached at host");
  // Served from the host's whole-file cache: no new fetch from Vice.
  EXPECT_EQ(host_->venus().stats().fetches, host_fetches);
}

TEST_F(SurrogateTest, StatAndDirListing) {
  ASSERT_EQ(pc_->WriteFile("/vice/usr/pcuser/a", Bytes(1234, 'x')), Status::kOk);
  auto st = pc_->Stat("/vice/usr/pcuser/a");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1234u);
  EXPECT_TRUE(st->shared);
  EXPECT_FALSE(st->is_directory);

  ASSERT_EQ(pc_->MkDir("/vice/usr/pcuser/sub"), Status::kOk);
  auto names = pc_->ReadDir("/vice/usr/pcuser");
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names->begin(), names->end(), "a"), names->end());
  EXPECT_NE(std::find(names->begin(), names->end(), "sub"), names->end());

  ASSERT_EQ(pc_->Unlink("/vice/usr/pcuser/a"), Status::kOk);
  EXPECT_EQ(pc_->ReadFile("/vice/usr/pcuser/a").status(), Status::kNotFound);
}

TEST_F(SurrogateTest, PcSeesHostLocalFilesToo) {
  ASSERT_EQ(host_->WriteWholeFile("/tmp/host-local", ToBytes("local data")), Status::kOk);
  auto data = pc_->ReadFile("/tmp/host-local");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "local data");
}

TEST_F(SurrogateTest, DifferentUserCannotBorrowHostSession) {
  // A second user with valid credentials CAN authenticate to the surrogate,
  // but every operation is refused: the surrogate executes under the host
  // session's identity and must not launder another user's requests
  // through it.
  auto other = campus_->protection().CreateUser("other", "pw2");
  ASSERT_TRUE(other.ok());
  const auto other_key = crypto::DeriveKeyFromPassword("pw2", "itc.cmu.edu");

  // Extend the surrogate's key lookup world: rebuild with both users known.
  auto surrogate = std::make_unique<SurrogateServer>(
      host_, &campus_->network(), campus_->config().cost, campus_->config().rpc,
      [&](UserId u) -> std::optional<crypto::Key> {
        if (u == user_) return key_;
        if (u == *other) return other_key;
        return std::nullopt;
      },
      1234);

  sim::Clock clock;
  PcClient impostor(campus_->topology().WorkstationNode(0, 1), &clock, surrogate.get(),
                    &campus_->network(), campus_->config().cost);
  ASSERT_EQ(impostor.Connect(*other, other_key, 9), Status::kOk);  // auth is fine...
  EXPECT_EQ(impostor.WriteFile("/vice/usr/pcuser/stolen", ToBytes("x")),
            Status::kPermissionDenied);  // ...acting as the host is not
  EXPECT_EQ(impostor.ReadFile("/vice/usr/pcuser/memo.txt").status(),
            Status::kPermissionDenied);

  // The rightful owner still works through the same surrogate.
  PcClient owner(campus_->topology().WorkstationNode(0, 1), &clock, surrogate.get(),
                 &campus_->network(), campus_->config().cost);
  ASSERT_EQ(owner.Connect(user_, key_, 10), Status::kOk);
  EXPECT_EQ(owner.WriteFile("/vice/usr/pcuser/mine", ToBytes("ok")), Status::kOk);
}

TEST_F(SurrogateTest, UnknownPcUserRefused) {
  PcClient stranger(campus_->topology().WorkstationNode(0, 1), &pc_clock_,
                    surrogate_.get(), &campus_->network(), campus_->config().cost);
  EXPECT_EQ(stranger.Connect(424242, key_, 8), Status::kAuthFailed);
}

TEST_F(SurrogateTest, ProtectionStillEnforcedByVice) {
  // The surrogate runs with the host's identity; Vice still checks rights.
  // pcuser has no write access to the root volume's /unix tree.
  EXPECT_EQ(pc_->WriteFile("/vice/unix/hack", ToBytes("nope")),
            Status::kPermissionDenied);
}

}  // namespace
}  // namespace itc::virtue
