// Tests of the Virtue intercept layer: local/shared classification, the
// descriptor API, and local-namespace semantics.

#include "src/virtue/workstation.h"

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc::virtue {
namespace {

using campus::Campus;
using campus::CampusConfig;

class WorkstationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(1, 2));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("alice", "pw", 0);
    ASSERT_TRUE(home.ok());
    alice_ = *home;
    ws_ = &campus_->workstation(0);
    ASSERT_EQ(ws_->LoginWithPassword(alice_.user, "pw"), Status::kOk);
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome alice_;
  Workstation* ws_ = nullptr;
};

TEST_F(WorkstationTest, StandardLayoutInstalled) {
  EXPECT_TRUE(ws_->local_fs().Stat("/tmp").ok());
  EXPECT_TRUE(ws_->local_fs().Stat("/vmunix").ok());
  EXPECT_EQ(*ws_->local_fs().ReadLink("/bin"), "/vice/unix/sun/bin");
}

TEST_F(WorkstationTest, ClassificationLocalVsShared) {
  EXPECT_FALSE(ws_->IsShared("/tmp/x"));
  EXPECT_FALSE(ws_->IsShared("/vmunix"));
  EXPECT_TRUE(ws_->IsShared("/vice/usr/alice/f"));
  EXPECT_TRUE(ws_->IsShared("/bin/ls"));  // via the local symlink
}

TEST_F(WorkstationTest, DescriptorReadWriteSeek) {
  auto fd = ws_->Open("/tmp/f", kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(ws_->Write(*fd, ToBytes("hello world")), Status::kOk);
  ASSERT_EQ(ws_->Close(*fd), Status::kOk);

  fd = ws_->Open("/tmp/f", kRead);
  ASSERT_TRUE(fd.ok());
  auto first = ws_->Read(*fd, 5);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(ToString(*first), "hello");
  ASSERT_TRUE(ws_->Seek(*fd, 6).ok());
  auto rest = ws_->Read(*fd, 100);
  EXPECT_EQ(ToString(*rest), "world");
  ASSERT_EQ(ws_->Close(*fd), Status::kOk);
}

TEST_F(WorkstationTest, ByteAtATimeOnSharedFile) {
  // "the standard Unix file system primitives, supporting ... byte-at-a-time
  //  access to files" — reads hit the whole-file cached copy.
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/alice/f", ToBytes("abcdef")), Status::kOk);
  auto fd = ws_->Open("/vice/usr/alice/f", kRead);
  ASSERT_TRUE(fd.ok());
  std::string assembled;
  for (;;) {
    auto b = ws_->Read(*fd, 1);
    ASSERT_TRUE(b.ok());
    if (b->empty()) break;
    assembled += static_cast<char>((*b)[0]);
  }
  EXPECT_EQ(assembled, "abcdef");
  EXPECT_EQ(ws_->Close(*fd), Status::kOk);
}

TEST_F(WorkstationTest, DirtySharedFileStoredOnClose) {
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/alice/f", ToBytes("v1")), Status::kOk);
  const uint64_t stores_before = ws_->venus().stats().stores;

  auto fd = ws_->Open("/vice/usr/alice/f", kRead | kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(ws_->Write(*fd, ToBytes("v2")), Status::kOk);
  // Not stored yet — Vice is contacted only at close.
  EXPECT_EQ(ws_->venus().stats().stores, stores_before);
  ASSERT_EQ(ws_->Close(*fd), Status::kOk);
  EXPECT_EQ(ws_->venus().stats().stores, stores_before + 1);
}

TEST_F(WorkstationTest, CleanCloseDoesNotStore) {
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/alice/f", ToBytes("v1")), Status::kOk);
  const uint64_t stores_before = ws_->venus().stats().stores;
  auto fd = ws_->Open("/vice/usr/alice/f", kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(ws_->Read(*fd, 10).ok());
  ASSERT_EQ(ws_->Close(*fd), Status::kOk);
  EXPECT_EQ(ws_->venus().stats().stores, stores_before);
}

TEST_F(WorkstationTest, WriteWithoutWriteFlagRefused) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/f", ToBytes("x")), Status::kOk);
  auto fd = ws_->Open("/tmp/f", kRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(ws_->Write(*fd, ToBytes("y")), Status::kPermissionDenied);
  EXPECT_EQ(ws_->Close(*fd), Status::kOk);
}

TEST_F(WorkstationTest, BadDescriptorRejected) {
  EXPECT_EQ(ws_->Read(999, 1).status(), Status::kBadDescriptor);
  EXPECT_EQ(ws_->Write(999, ToBytes("x")), Status::kBadDescriptor);
  EXPECT_EQ(ws_->Close(999), Status::kBadDescriptor);
}

TEST_F(WorkstationTest, TruncateFlag) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/f", ToBytes("long content")), Status::kOk);
  auto fd = ws_->Open("/tmp/f", kWrite | kTruncate);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(ws_->Write(*fd, ToBytes("s")), Status::kOk);
  EXPECT_EQ(ws_->Close(*fd), Status::kOk);
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/tmp/f")), "s");
}

TEST_F(WorkstationTest, OpenDirectoryRefused) {
  EXPECT_EQ(ws_->Open("/tmp", kRead).status(), Status::kIsDirectory);
  EXPECT_EQ(ws_->Open("/vice/usr/alice", kRead).status(), Status::kIsDirectory);
}

TEST_F(WorkstationTest, StatUnifiesLocalAndShared) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/local", ToBytes("12345")), Status::kOk);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/alice/shared", ToBytes("123")), Status::kOk);

  auto local = ws_->Stat("/tmp/local");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->size, 5u);
  EXPECT_FALSE(local->shared);

  auto shared = ws_->Stat("/vice/usr/alice/shared");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->size, 3u);
  EXPECT_TRUE(shared->shared);
}

TEST_F(WorkstationTest, RenameCrossDomainRefused) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/f", ToBytes("x")), Status::kOk);
  EXPECT_EQ(ws_->Rename("/tmp/f", "/vice/usr/alice/f"), Status::kCrossVolume);
}

TEST_F(WorkstationTest, MkdirUnlinkRmdirLocal) {
  ASSERT_EQ(ws_->MkDir("/tmp/d"), Status::kOk);
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/d/f", ToBytes("x")), Status::kOk);
  auto names = ws_->ReadDir("/tmp/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  ASSERT_EQ(ws_->Unlink("/tmp/d/f"), Status::kOk);
  ASSERT_EQ(ws_->RmDir("/tmp/d"), Status::kOk);
}

TEST_F(WorkstationTest, SensitiveLocalFileStaysLocal) {
  // File class 3 of Section 3.1: data the owner will not entrust to Vice.
  ASSERT_EQ(ws_->WriteWholeFile("/local/secret", ToBytes("do not share")), Status::kOk);
  EXPECT_FALSE(ws_->IsShared("/local/secret"));
  // Another workstation cannot see it.
  auto& other = campus_->workstation(1);
  ASSERT_EQ(other.LoginWithPassword(alice_.user, "pw"), Status::kOk);
  EXPECT_EQ(other.ReadWholeFile("/local/secret").status(), Status::kNotFound);
}

TEST_F(WorkstationTest, ChmodPropagatesToVice) {
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/alice/f", ToBytes("x")), Status::kOk);
  ASSERT_EQ(ws_->Chmod("/vice/usr/alice/f", 0600), Status::kOk);
  EXPECT_EQ(ws_->Stat("/vice/usr/alice/f")->mode, 0600);
}

TEST_F(WorkstationTest, ClockAdvancesWithWork) {
  const SimTime t0 = ws_->clock().now();
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/alice/big", Bytes(64 * 1024, 'x')),
            Status::kOk);
  EXPECT_GT(ws_->clock().now(), t0);
}

}  // namespace
}  // namespace itc::virtue
