// Cross-mount path resolution through the VFS switch: the Figure 3-2 /bin
// indirection, symlink chains that hop local -> /vice and back, loop and
// depth-budget enforcement across mount boundaries, and the component-
// boundary pin that keeps "/viceX" local.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/campus/campus.h"
#include "src/common/path.h"
#include "src/virtue/workstation.h"

namespace itc::virtue {
namespace {

using campus::Campus;
using campus::CampusConfig;

class VfsResolutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(1, 2));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("alice", "pw", 0);
    ASSERT_TRUE(home.ok());
    alice_ = *home;
    ws_ = &campus_->workstation(0);
    ASSERT_EQ(ws_->LoginWithPassword(alice_.user, "pw"), Status::kOk);
  }

  // Workstation-absolute name of a path in alice's home volume.
  std::string Home(const std::string& suffix) const {
    return kViceMountPoint + alice_.vice_path + suffix;
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome alice_;
  Workstation* ws_ = nullptr;
};

// Figure 3-2: /bin is a local symbolic link into the architecture-specific
// shared subtree, so "/bin/ls" transparently reads a Vice file.
TEST_F(VfsResolutionTest, BinIndirectionReachesArchSpecificSharedTree) {
  auto vol = campus_->CreateSystemVolume("unix-sun", "/unix/sun", 0);
  ASSERT_TRUE(vol.ok());
  ASSERT_EQ(campus_->PopulateDirect(*vol, "/bin/ls", ToBytes("ELF ls for sun")),
            Status::kOk);

  auto data = ws_->ReadWholeFile("/bin/ls");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "ELF ls for sun");

  auto info = ws_->Stat("/bin/ls");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->shared);
  EXPECT_TRUE(ws_->IsShared("/bin/ls"));
}

// A local link into /vice makes shared files reachable under a local name;
// the shared bit follows the mount that finally owns the file.
TEST_F(VfsResolutionTest, LocalSymlinkIntoViceResolvesOntoVenusMount) {
  ASSERT_EQ(ws_->WriteWholeFile(Home("/f"), ToBytes("in vice")),
            Status::kOk);
  ASSERT_EQ(ws_->Symlink("/vice/usr/alice", "/tmp/shared"), Status::kOk);

  auto data = ws_->ReadWholeFile("/tmp/shared/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "in vice");
  EXPECT_TRUE(ws_->IsShared("/tmp/shared/f"));
}

// The other direction: a symlink stored *inside* Vice whose absolute target
// names a workstation-local path escapes the shared space — Venus reports
// kSymlinkEscape, the switch re-resolves, and the local mount serves it.
TEST_F(VfsResolutionTest, ViceSymlinkEscapesBackToLocalSpace) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/real", ToBytes("local payload")), Status::kOk);
  ASSERT_EQ(ws_->Symlink("/tmp/real", Home("/back")), Status::kOk);

  auto data = ws_->ReadWholeFile(Home("/back"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "local payload");

  // The file the chain lands on is local, and stat says so.
  auto info = ws_->Stat(Home("/back"));
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->shared);

  // Writes through the escaping name land in the local file, not in Vice.
  ASSERT_EQ(ws_->WriteWholeFile(Home("/back"), ToBytes("updated")),
            Status::kOk);
  auto local = ws_->ReadWholeFile("/tmp/real");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(ToString(*local), "updated");
}

// A chain that bounces local -> vice -> local still resolves: each hop
// charges the one shared symlink budget.
TEST_F(VfsResolutionTest, ChainBouncingAcrossMountsResolves) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/real", ToBytes("bounced")), Status::kOk);
  ASSERT_EQ(ws_->Symlink("/tmp/real", Home("/hop")), Status::kOk);
  ASSERT_EQ(ws_->Symlink(Home("/hop"), "/tmp/entry"), Status::kOk);

  auto data = ws_->ReadWholeFile("/tmp/entry");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "bounced");
}

// A cycle spanning both mounts must terminate with kSymlinkLoop, not hang:
// local /loop -> vice hop -> local /loop -> ...
TEST_F(VfsResolutionTest, CrossMountSymlinkCycleDetected) {
  ASSERT_EQ(ws_->Symlink(Home("/vloop"), "/loop"), Status::kOk);
  ASSERT_EQ(ws_->Symlink("/loop", Home("/vloop")), Status::kOk);

  EXPECT_EQ(ws_->ReadWholeFile("/loop").status(), Status::kSymlinkLoop);
  EXPECT_EQ(ws_->Open("/loop", kRead).status(), Status::kSymlinkLoop);
}

// Depth budget is exact: kMaxSymlinkDepth local links resolve, one more is
// a loop verdict — the same bound the old in-Venus resolution enforced.
TEST_F(VfsResolutionTest, SymlinkDepthBudgetBoundary) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/real", ToBytes("deep")), Status::kOk);
  // Each link costs one expansion: a chain of exactly kMaxSymlinkDepth
  // links resolves, a chain one longer does not.
  std::string next = "/tmp/real";
  for (int i = kMaxSymlinkDepth; i >= 1; --i) {
    const std::string link = "/tmp/l" + std::to_string(i);
    ASSERT_EQ(ws_->Symlink(next, link), Status::kOk);
    next = link;
  }
  auto ok = ws_->ReadWholeFile("/tmp/l1");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ToString(*ok), "deep");

  ASSERT_EQ(ws_->Symlink("/tmp/l1", "/tmp/l0"), Status::kOk);
  EXPECT_EQ(ws_->ReadWholeFile("/tmp/l0").status(), Status::kSymlinkLoop);
}

// Regression: an absolute symlink *within* the shared space (target has no
// local counterpart) must keep restarting at the Vice root, not escape.
TEST_F(VfsResolutionTest, ViceInternalAbsoluteTargetStaysShared) {
  ASSERT_EQ(ws_->WriteWholeFile(Home("/f"), ToBytes("vice-side")),
            Status::kOk);
  // Target "/usr/alice/f" is Vice-absolute; there is no local /usr, so the
  // escape predicate keeps it inside the shared space.
  ASSERT_EQ(ws_->Symlink("/usr/alice/f", Home("/alias")), Status::kOk);

  auto data = ws_->ReadWholeFile(Home("/alias"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "vice-side");

  auto info = ws_->Stat(Home("/alias"));
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->shared);
}

// Pin: prefix matching is on component boundaries. "/viceX" shares four
// characters with the mount point but is an ordinary local name.
TEST_F(VfsResolutionTest, ViceXPrefixIsLocalNotShared) {
  EXPECT_FALSE(ws_->IsShared("/viceX"));
  EXPECT_FALSE(ws_->IsShared("/vice2/f"));
  ASSERT_EQ(ws_->MkDir("/viceX"), Status::kOk);
  ASSERT_EQ(ws_->WriteWholeFile("/viceX/f", ToBytes("local")), Status::kOk);
  auto info = ws_->Stat("/viceX/f");
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->shared);
  // The real mount point itself is shared.
  EXPECT_TRUE(ws_->IsShared("/vice"));
}

// Regression: mount points appear in their parent directory's listing. The
// switch merges mount-table entries into ReadDir, so "ls /" shows "vice"
// even though the local root fs has no entry of that name — without the
// merge, the shared tree is reachable but invisible to enumeration.
TEST_F(VfsResolutionTest, MountPointsAppearInParentDirectoryListings) {
  auto names = ws_->ReadDir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(std::count(names->begin(), names->end(), "vice"), 1)
      << "mount point leaf missing (or duplicated) in parent listing";
  EXPECT_TRUE(std::is_sorted(names->begin(), names->end()));

  // A local entry with the same name as a mount point is not double-listed.
  ASSERT_EQ(ws_->MkDir("/viceX"), Status::kOk);
  names = ws_->ReadDir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(std::count(names->begin(), names->end(), "viceX"), 1);
  EXPECT_EQ(std::count(names->begin(), names->end(), "vice"), 1);
}

// Renames may not cross a mount boundary (the EXDEV of this system), even
// when a symlink makes both names look like siblings.
TEST_F(VfsResolutionTest, CrossMountRenameRejected) {
  ASSERT_EQ(ws_->WriteWholeFile("/tmp/f", ToBytes("x")), Status::kOk);
  EXPECT_EQ(ws_->Rename("/tmp/f", Home("/f")), Status::kCrossVolume);
  ASSERT_EQ(ws_->WriteWholeFile(Home("/g"), ToBytes("y")), Status::kOk);
  EXPECT_EQ(ws_->Rename(Home("/g"), "/tmp/g"), Status::kCrossVolume);
}

}  // namespace
}  // namespace itc::virtue
