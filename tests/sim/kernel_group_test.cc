// Sharded multi-kernel runtime (src/sim/kernel_group.h): migration,
// one-shot posts, determinism, termination, and shard-count independence.
//
// The contract under test is the one docs/KERNEL.md states: with a fixed
// lookahead and fixed domain placement, every shard's event order is a pure
// function of the simulation — independent of OS thread scheduling, of the
// parking backend, and of how many shards the domains fold into.

#include "src/sim/kernel_group.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/kernel.h"

namespace itc::sim {
namespace {

constexpr SimTime kLookahead = 10'000;  // 10ms, the campus backbone floor

std::vector<KernelBackend> Backends() {
  return {KernelBackend::kFiber, KernelBackend::kThread};
}

TEST(KernelGroupTest, SpawnAndRunSingleShard) {
  for (KernelBackend backend : Backends()) {
    KernelGroup group(1, backend, kLookahead);
    std::vector<int> order;
    group.Spawn(0, "a", 200, [&] { order.push_back(2); });
    group.Spawn(0, "b", 100, [&] { order.push_back(1); });
    group.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(group.events_dispatched(), 2u);
  }
}

TEST(KernelGroupTest, MigrationRunsBodyOnTargetShardInTimeOrder) {
  for (KernelBackend backend : Backends()) {
    KernelGroup group(2, backend, kLookahead);
    std::vector<std::string> log;  // written on shard 1 only
    group.Spawn(1, "native", 5'000, [&] { log.push_back("native@5ms"); });
    group.Spawn(0, "traveller", 0, [&] {
      KernelGroup* g = KernelGroup::Current();
      ASSERT_NE(g, nullptr);
      EXPECT_EQ(Kernel::Current(), &g->shard(0));
      g->MigrateToDomain(1, Kernel::Current()->now() + kLookahead);
      EXPECT_EQ(Kernel::Current(), &g->shard(1));
      EXPECT_EQ(Kernel::Current()->now(), kLookahead);
      log.push_back("traveller@10ms");
      // And home again.
      g->MigrateToDomain(0, Kernel::Current()->now() + kLookahead);
      EXPECT_EQ(Kernel::Current(), &g->shard(0));
    });
    group.Run();
    // Shard 1 dispatches its native 5ms activity before the 10ms arrival.
    EXPECT_EQ(log, (std::vector<std::string>{"native@5ms", "traveller@10ms"}));
  }
}

TEST(KernelGroupTest, PostDeliversOneShotActivityAtArrivalTime) {
  for (KernelBackend backend : Backends()) {
    KernelGroup group(2, backend, kLookahead);
    SimTime delivered_at = 0;
    group.Spawn(0, "sender", 1'000, [&] {
      KernelGroup::Current()->Post(1, Kernel::Current()->now() + kLookahead,
                                   "oneshot", [&] {
                                     EXPECT_EQ(Kernel::Current(),
                                               &KernelGroup::Current()->shard(1));
                                     delivered_at = Kernel::Current()->now();
                                   });
      // Fire-and-forget: the sender's clock does not advance.
      EXPECT_EQ(Kernel::Current()->now(), 1'000u);
    });
    group.Run();
    EXPECT_EQ(delivered_at, 11'000u);
  }
}

TEST(KernelGroupTest, LookaheadContractIsChecked) {
  KernelGroup group(2, KernelBackend::kFiber, kLookahead);
  group.Spawn(0, "ok", 0, [&] {
    // Exactly lookahead away is legal; the death test for below-lookahead
    // timestamps lives in the lint/ITC_CHECK suite (aborts, not throws).
    KernelGroup::Current()->MigrateToDomain(1, kLookahead);
  });
  group.Run();
}

// Ping-pong keeps both shards exchanging work and exercises the
// termination scan: each hop is a cross-shard message in flight exactly
// when the other shard looks idle.
TEST(KernelGroupTest, PingPongTerminates) {
  for (KernelBackend backend : Backends()) {
    KernelGroup group(2, backend, kLookahead);
    int hops = 0;
    group.Spawn(0, "pingpong", 0, [&] {
      for (int i = 0; i < 32; ++i) {
        KernelGroup* g = KernelGroup::Current();
        g->MigrateToDomain(i % 2 == 0 ? 1 : 0,
                           Kernel::Current()->now() + kLookahead);
        hops += 1;
      }
    });
    group.Run();
    EXPECT_EQ(hops, 32);
  }
}

TEST(KernelGroupTest, ManyCrossShardActivitiesAllComplete) {
  for (KernelBackend backend : Backends()) {
    KernelGroup group(4, backend, kLookahead);
    std::atomic<int> done{0};
    for (uint32_t d = 0; d < 4; ++d) {
      for (int i = 0; i < 8; ++i) {
        group.Spawn(d, "w" + std::to_string(d) + "." + std::to_string(i),
                    i * 1'000, [&, d] {
                      KernelGroup* g = KernelGroup::Current();
                      for (uint32_t hop = 1; hop <= 3; ++hop) {
                        g->MigrateToDomain((d + hop) % 4,
                                           Kernel::Current()->now() + kLookahead);
                      }
                      done.fetch_add(1, std::memory_order_relaxed);
                    });
      }
    }
    group.Run();
    EXPECT_EQ(done.load(), 32);
  }
}

// Captures one shard's full trace as (time, name) pairs.
std::vector<std::pair<SimTime, std::string>> Flatten(
    const std::vector<TraceEntry>& trace) {
  std::vector<std::pair<SimTime, std::string>> out;
  out.reserve(trace.size());
  for (const TraceEntry& e : trace) out.emplace_back(e.time, e.activity);
  return out;
}

// The same program, run with the same shard count, replays the same trace
// on every shard — across repeated runs and across parking backends.
TEST(KernelGroupTest, DeterministicAcrossRunsAndBackends) {
  auto run = [&](KernelBackend backend) {
    KernelGroup group(3, backend, kLookahead);
    group.EnableTrace();
    for (uint32_t d = 0; d < 3; ++d) {
      group.Spawn(d, "p" + std::to_string(d), d * 100, [d] {
        KernelGroup* g = KernelGroup::Current();
        for (int i = 0; i < 5; ++i) {
          g->MigrateToDomain((d + 1) % 3, Kernel::Current()->now() + kLookahead);
          g->Post((d + 2) % 3, Kernel::Current()->now() + kLookahead,
                  "post" + std::to_string(d), [] {});
        }
      });
    }
    group.Run();
    std::vector<std::vector<std::pair<SimTime, std::string>>> traces;
    for (uint32_t i = 0; i < 3; ++i) traces.push_back(Flatten(group.shard_trace(i)));
    return traces;
  };
  const auto fiber1 = run(KernelBackend::kFiber);
  const auto fiber2 = run(KernelBackend::kFiber);
  const auto thread = run(KernelBackend::kThread);
  EXPECT_EQ(fiber1, fiber2);
  EXPECT_EQ(fiber1, thread);
}

// Folding 4 domains onto 1 shard yields the same per-domain event order as
// 4 shards: same-kernel cross-domain hops go through the same arrival-class
// mailbox path as true cross-shard hops.
TEST(KernelGroupTest, ShardCountIndependence) {
  auto run = [&](uint32_t shard_count) {
    KernelGroup group(shard_count, KernelBackend::kFiber, kLookahead);
    group.EnableTrace();
    for (uint32_t d = 0; d < 4; ++d) {
      group.Spawn(d, "p" + std::to_string(d), d * 137, [d] {
        KernelGroup* g = KernelGroup::Current();
        for (int i = 0; i < 4; ++i) {
          g->MigrateToDomain((d + 1) % 4, Kernel::Current()->now() + kLookahead);
        }
      });
    }
    group.Run();
    // Merge all shards' traces into one time-ordered sequence per run;
    // with 1 shard that is just its single trace.
    std::vector<std::pair<SimTime, std::string>> merged;
    for (uint32_t i = 0; i < shard_count; ++i) {
      const auto t = Flatten(group.shard_trace(i));
      merged.insert(merged.end(), t.begin(), t.end());
    }
    std::sort(merged.begin(), merged.end());
    return merged;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(2), run(4));
}

TEST(KernelGroupTest, ActivityFailurePropagatesFromAnyShard) {
  KernelGroup group(2, KernelBackend::kFiber, kLookahead);
  group.Spawn(1, "boom", 50, [] { throw std::runtime_error("shard 1 failed"); });
  group.Spawn(0, "fine", 0, [] {});
  EXPECT_THROW(group.Run(), std::runtime_error);
}

TEST(KernelGroupDefaultsTest, ShardCountClampsToDomains) {
  // ITCFS_SHARDS is not set in the test environment: one shard per domain.
  EXPECT_EQ(DefaultShardCount(1), 1u);
  EXPECT_GE(DefaultShardCount(8), 1u);
  EXPECT_LE(DefaultShardCount(8), 8u);
}

}  // namespace
}  // namespace itc::sim
