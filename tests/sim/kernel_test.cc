// Tests for the event kernel: arrival-order service (including the straggler
// scenario the old call-order model got wrong), FIFO-stable tie-breaking,
// staged multi-resource operations, and run-to-run determinism.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/sim/kernel.h"
#include "src/sim/resource.h"
#include "src/sim/scheduler.h"

namespace itc::sim {
namespace {

TEST(KernelTest, EventsRunInTimeOrderWithFifoTies) {
  Kernel kernel;
  std::vector<std::string> log;
  kernel.Spawn("late", 20, [&] { log.push_back("late"); });
  kernel.Spawn("tie-first", 10, [&] { log.push_back("tie-first"); });
  kernel.Spawn("tie-second", 10, [&] { log.push_back("tie-second"); });
  kernel.Run();
  // Simultaneous events run in spawn order (sequence number), never by
  // container or pointer order.
  EXPECT_EQ(log, (std::vector<std::string>{"tie-first", "tie-second", "late"}));
  EXPECT_EQ(kernel.now(), 20);
}

TEST(KernelTest, WaitUntilInterleavesActivities) {
  Kernel kernel;
  std::vector<std::string> log;
  kernel.Spawn("a", 0, [&] {
    log.push_back("a@0");
    kernel.WaitUntil(15);
    log.push_back("a@15");
  });
  kernel.Spawn("b", 5, [&] { log.push_back("b@5"); });
  kernel.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"a@0", "b@5", "a@15"}));
}

TEST(KernelTest, ChargeReturnsPredictedCompletionWithoutWaiting) {
  Kernel kernel;
  Resource cpu("cpu");
  SimTime completion = 0;
  SimTime now_after_charge = 0;
  kernel.Spawn("a", 0, [&] {
    completion = Charge(cpu, 5, 50);
    now_after_charge = kernel.now();
  });
  kernel.Run();
  // The activity suspended until the arrival (5), was charged, and moved on;
  // the completion (55) is a prediction it threads into its next stage.
  EXPECT_EQ(completion, 55);
  EXPECT_EQ(now_after_charge, 5);
}

TEST(KernelTest, ChargeOutsideKernelFallsBackToCallOrder) {
  ASSERT_EQ(Kernel::Current(), nullptr);
  Resource cpu("cpu");
  EXPECT_EQ(Charge(cpu, 50, 100), 150);
  // No kernel, no arrival-order queueing: the late-charged earlier arrival
  // queues behind already-admitted work. Single-actor tests rely on this.
  EXPECT_EQ(Charge(cpu, 10, 5), 155);
}

TEST(KernelTest, SimultaneousChargesServeInSpawnOrder) {
  Kernel kernel;
  Resource cpu("cpu");
  SimTime first = 0, second = 0;
  kernel.Spawn("first", 0, [&] { first = Charge(cpu, 10, 7); });
  kernel.Spawn("second", 0, [&] { second = Charge(cpu, 10, 7); });
  kernel.Run();
  EXPECT_EQ(first, 17);
  EXPECT_EQ(second, 24);
}

// A client modelled like a real workload operation: one Step() spans think
// time followed by a resource demand, so the demand's arrival lies in the
// middle of the step, not at its start.
class ThinkThenWork : public Process {
 public:
  ThinkThenWork(Resource* r, SimTime start, SimTime think, SimTime demand)
      : r_(r), now_(start), think_(think), demand_(demand) {}

  SimTime now() const override { return now_; }
  bool done() const override { return done_; }
  void Step() override {
    const SimTime arrival = now_ + think_;
    now_ = Charge(*r_, arrival, demand_);
    done_ = true;
  }

 private:
  Resource* r_;
  SimTime now_;
  SimTime think_;
  SimTime demand_;
  bool done_ = false;
};

// The straggler scenario from the old resource.h KNOWN APPROXIMATION block:
// the conservative scheduler steps A (smaller virtual time) first, A's whole
// operation runs synchronously and books the resource from t=50 to t=150,
// and then B — stepped later — presents an arrival (t=10) earlier than the
// resource's ready time and queues behind work that is logically in its
// future. The kernel suspends A until its arrival, serves B at t=10, and
// resumes A at t=50: exact FCFS in arrival order.
TEST(KernelTest, StragglerIsServedInArrivalOrder) {
  Resource cpu("cpu");
  ThinkThenWork a(&cpu, /*start=*/0, /*think=*/50, /*demand=*/100);
  ThinkThenWork b(&cpu, /*start=*/10, /*think=*/0, /*demand=*/5);
  Scheduler sched;
  sched.Add(&a);
  sched.Add(&b);
  const SimTime end = sched.RunAll();
  EXPECT_EQ(b.now(), 15);   // served [10, 15], not behind A
  EXPECT_EQ(a.now(), 150);  // served [50, 150]
  EXPECT_EQ(end, 150);
  EXPECT_EQ(cpu.busy_time(), 105);
}

// The same scenario under the retained call-order baseline documents the
// error the kernel removes: B completes at 155 instead of 15. This is the
// "fails against a call-order Resource" half of the regression pair — the
// assertions of StragglerIsServedInArrivalOrder do not hold here.
TEST(KernelTest, ConservativeBaselineExhibitsCallOrderError) {
  Resource cpu("cpu");
  ThinkThenWork a(&cpu, 0, 50, 100);
  ThinkThenWork b(&cpu, 10, 0, 5);
  Scheduler sched;
  sched.set_mode(SchedulerMode::kConservative);
  sched.Add(&a);
  sched.Add(&b);
  sched.RunAll();
  EXPECT_EQ(a.now(), 150);
  EXPECT_EQ(b.now(), 155);  // queued behind A's logically-later demand
}

// A three-stage operation (net, cpu, disk) interleaves with another client
// at every stage boundary; completions follow exact per-resource FCFS.
TEST(KernelTest, StagedOperationsInterleavePerResource) {
  Resource net("net"), cpu("cpu"), disk("disk");
  struct Pipeline : Process {
    Pipeline(Resource* n, Resource* c, Resource* d, SimTime start, SimTime net_d,
             SimTime cpu_d, SimTime disk_d)
        : n_(n), c_(c), d_(d), now_(start), net_d_(net_d), cpu_d_(cpu_d), disk_d_(disk_d) {}
    SimTime now() const override { return now_; }
    bool done() const override { return done_; }
    void Step() override {
      SimTime t = Charge(*n_, now_, net_d_);
      t = Charge(*c_, t, cpu_d_);
      now_ = Charge(*d_, t, disk_d_);
      done_ = true;
    }
    Resource *n_, *c_, *d_;
    SimTime now_, net_d_, cpu_d_, disk_d_;
    bool done_ = false;
  };
  Pipeline a(&net, &cpu, &disk, 0, 10, 50, 10);
  Pipeline b(&net, &cpu, &disk, 5, 10, 5, 5);
  Scheduler sched;
  sched.Add(&a);
  sched.Add(&b);
  sched.RunAll();
  // a: net [0,10], cpu [10,60], disk [60,70].
  // b: net arrives 5, busy until 10 -> [10,20]; cpu arrives 20, busy until
  // 60 -> [60,65]; disk arrives 65, busy until 70 -> [70,75].
  EXPECT_EQ(a.now(), 70);
  EXPECT_EQ(b.now(), 75);
  EXPECT_EQ(net.busy_time(), 20);
  EXPECT_EQ(cpu.busy_time(), 55);
  EXPECT_EQ(disk.busy_time(), 15);
}

// A worker that alternates think time and demands on a shared resource.
class Worker : public Process {
 public:
  Worker(Resource* r, SimTime think, SimTime demand, int jobs)
      : r_(r), think_(think), demand_(demand), left_(jobs) {}
  SimTime now() const override { return now_; }
  bool done() const override { return left_ == 0; }
  void Step() override {
    now_ = Charge(*r_, now_ + think_, demand_);
    --left_;
  }

 private:
  Resource* r_;
  SimTime think_, demand_, now_ = 0;
  int left_;
};

struct RunResult {
  SimTime end = 0;
  std::vector<TraceEntry> trace;
};

RunResult RunContendedDay() {
  Resource cpu("cpu");
  Worker a(&cpu, 3, 10, 5), b(&cpu, 7, 4, 6), c(&cpu, 1, 2, 9);
  Scheduler sched;
  sched.EnableTrace();
  sched.Add(&a);
  sched.Add(&b);
  sched.Add(&c);
  RunResult r;
  r.end = sched.RunAll();
  r.trace = sched.trace();
  return r;
}

TEST(KernelTest, IdenticalRunsProduceIdenticalTracesAndTimes) {
  const RunResult r1 = RunContendedDay();
  const RunResult r2 = RunContendedDay();
  EXPECT_EQ(r1.end, r2.end);
  ASSERT_FALSE(r1.trace.empty());
  EXPECT_EQ(r1.trace, r2.trace);
}

TEST(KernelTest, HorizonStopsActivitiesWithoutLosingDeterminism) {
  Resource cpu("cpu");
  Worker a(&cpu, 3, 10, 100), b(&cpu, 7, 4, 100);
  Scheduler sched;
  sched.Add(&a);
  sched.Add(&b);
  const SimTime end = sched.RunUntil(50);
  EXPECT_EQ(end, 50);
  // Neither process starts a new operation at or past the horizon.
  EXPECT_TRUE(a.now() >= 50 || a.done());
  EXPECT_TRUE(b.now() >= 50 || b.done());
}

}  // namespace
}  // namespace itc::sim
