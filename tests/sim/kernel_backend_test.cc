// Backend-equivalence suite for the event kernel: the fiber backend and the
// OS-thread reference backend must produce byte-identical kernel traces and
// identical final simulated times on seeded multi-client workloads — backend
// choice can only affect wall-clock, never simulated results. Also pins
// repeat-run determinism at N = 200, fiber stack pooling (stable pool size
// across RunAll cycles), trace ring-buffer semantics, and exception
// propagation out of a fiber activity.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/fiber.h"
#include "src/sim/kernel.h"
#include "src/sim/resource.h"
#include "src/sim/scheduler.h"

namespace itc::sim {
namespace {

// A client that alternates think time with staged demands on shared
// resources (net -> cpu -> disk), mimicking the shape of a real RPC. All
// parameters are derived deterministically from a seed.
class StagedWorker : public Process {
 public:
  StagedWorker(Resource* net, Resource* cpu, Resource* disk, uint64_t seed, int jobs)
      : net_(net), cpu_(cpu), disk_(disk), rng_(seed), left_(jobs) {}

  SimTime now() const override { return now_; }
  bool done() const override { return left_ == 0; }
  void Step() override {
    const SimTime think = 1 + static_cast<SimTime>(rng_.NextU64() % 29);
    SimTime t = Charge(*net_, now_ + think, 1 + static_cast<SimTime>(rng_.NextU64() % 5));
    t = Charge(*cpu_, t, 1 + static_cast<SimTime>(rng_.NextU64() % 17));
    now_ = Charge(*disk_, t, 1 + static_cast<SimTime>(rng_.NextU64() % 7));
    --left_;
  }

 private:
  Resource *net_, *cpu_, *disk_;
  Rng rng_;
  SimTime now_ = 0;
  int left_;
};

struct FleetResult {
  SimTime end = 0;
  std::vector<TraceEntry> trace;
  std::vector<SimTime> final_times;
  SimTime net_busy = 0, cpu_busy = 0, disk_busy = 0;
};

FleetResult RunFleet(KernelBackend backend, size_t n, int jobs = 5) {
  Resource net("net"), cpu("cpu"), disk("disk");
  std::vector<std::unique_ptr<StagedWorker>> workers;
  Scheduler sched;
  sched.set_backend(backend);
  sched.EnableTrace();
  for (size_t i = 0; i < n; ++i) {
    workers.push_back(
        std::make_unique<StagedWorker>(&net, &cpu, &disk, 0x5eedull + i * 7919, jobs));
    sched.Add(workers.back().get());
  }
  FleetResult r;
  r.end = sched.RunAll();
  r.trace = sched.trace();
  for (const auto& w : workers) r.final_times.push_back(w->now());
  r.net_busy = net.busy_time();
  r.cpu_busy = cpu.busy_time();
  r.disk_busy = disk.busy_time();
  return r;
}

TEST(BackendEquivalence, TracesAndTimesIdenticalAcrossBackends) {
  const FleetResult fiber = RunFleet(KernelBackend::kFiber, 60);
  const FleetResult thread = RunFleet(KernelBackend::kThread, 60);
  ASSERT_FALSE(fiber.trace.empty());
  EXPECT_EQ(fiber.end, thread.end);
  EXPECT_EQ(fiber.trace, thread.trace);  // byte-identical resumption order
  EXPECT_EQ(fiber.final_times, thread.final_times);
  EXPECT_EQ(fiber.net_busy, thread.net_busy);
  EXPECT_EQ(fiber.cpu_busy, thread.cpu_busy);
  EXPECT_EQ(fiber.disk_busy, thread.disk_busy);
}

TEST(BackendEquivalence, SmallFleetMatchesTooWithStragglers) {
  // A shape with heavy ties and stragglers: workers whose arrivals invert
  // their spawn order. Equivalence must hold event-for-event here as well.
  for (size_t n : {1u, 2u, 7u}) {
    const FleetResult fiber = RunFleet(KernelBackend::kFiber, n, 9);
    const FleetResult thread = RunFleet(KernelBackend::kThread, n, 9);
    EXPECT_EQ(fiber.end, thread.end) << "n=" << n;
    EXPECT_EQ(fiber.trace, thread.trace) << "n=" << n;
  }
}

TEST(BackendEquivalence, RepeatRunsAreDeterministicAt200Clients) {
  const FleetResult a = RunFleet(KernelBackend::kFiber, 200);
  const FleetResult b = RunFleet(KernelBackend::kFiber, 200);
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.final_times, b.final_times);
}

TEST(FiberPool, StackCountStableAcrossRunAllCycles) {
  // Warm the pool: after this, 64 concurrent activities' worth of stacks
  // exist (plus whatever earlier tests created) and all are back on the
  // freelist because every activity ran to completion.
  RunFleet(KernelBackend::kFiber, 64);
  FiberStackPool& pool = FiberStackPool::Instance();
  const size_t created = pool.created();
  ASSERT_GE(created, 64u);
  EXPECT_EQ(pool.free_count(), created);
  // Three more full RunAll cycles must reuse pooled stacks: no new mappings,
  // and every stack returned afterwards (no leak).
  for (int cycle = 0; cycle < 3; ++cycle) {
    RunFleet(KernelBackend::kFiber, 64);
    EXPECT_EQ(pool.created(), created) << "cycle " << cycle;
    EXPECT_EQ(pool.free_count(), created) << "cycle " << cycle;
  }
}

TEST(FiberPool, ExceptionInActivityStillReleasesStacks) {
  FiberStackPool& pool = FiberStackPool::Instance();
  Kernel kernel(KernelBackend::kFiber);
  kernel.Spawn("boom", 0, [] { throw std::runtime_error("activity failed"); });
  bool other_ran = false;
  kernel.Spawn("ok", 1, [&] { other_ran = true; });
  EXPECT_THROW(kernel.Run(), std::runtime_error);
  EXPECT_TRUE(other_ran);  // the failure is rethrown only after the run drains
  EXPECT_EQ(pool.free_count(), pool.created());
}

TEST(TraceRing, CapacityBoundsEntriesAndKeepsTheTail) {
  Kernel kernel(KernelBackend::kFiber);
  kernel.EnableTrace(/*capacity=*/4);
  kernel.Spawn("walker", 0, [&] {
    for (SimTime t = 10; t <= 100; t += 10) kernel.WaitUntil(t);
  });
  kernel.Run();
  // 11 resumptions (spawn + 10 waits); the ring keeps the last 4.
  const std::vector<TraceEntry> trace = kernel.trace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(kernel.trace_dropped(), 7u);
  EXPECT_EQ(trace.front().time, 70);
  EXPECT_EQ(trace.back().time, 100);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(trace[i - 1].seq, trace[i].seq);  // oldest-first linearization
  }
}

TEST(TraceRing, DefaultCapacityKeepsShortRunsComplete) {
  Kernel kernel(KernelBackend::kFiber);
  kernel.EnableTrace();
  kernel.Spawn("a", 5, [] {});
  kernel.Spawn("b", 3, [] {});
  kernel.Run();
  const std::vector<TraceEntry> trace = kernel.trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(kernel.trace_dropped(), 0u);
  EXPECT_EQ(trace[0].activity, "b");
  EXPECT_EQ(trace[1].activity, "a");
}

TEST(KernelStats, EventsDispatchedCountsResumptions) {
  Kernel kernel(KernelBackend::kFiber);
  kernel.Spawn("w", 0, [&] {
    kernel.WaitUntil(10);
    kernel.WaitUntil(20);
  });
  kernel.Run();
  EXPECT_EQ(kernel.events_dispatched(), 3u);  // spawn + two waits
}

}  // namespace
}  // namespace itc::sim
