// Unit tests for the timing substrate: FCFS resources, the per-entity clock,
// and the multi-client scheduler shim (kernel-specific behaviour — arrival
// order, tracing, determinism — is covered in kernel_test.cc).

#include <gtest/gtest.h>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/kernel.h"
#include "src/sim/resource.h"
#include "src/sim/scheduler.h"

namespace itc::sim {
namespace {

TEST(ResourceTest, IdleResourceServesImmediately) {
  Resource r("cpu");
  EXPECT_EQ(r.Serve(100, 50), 150);
  EXPECT_EQ(r.busy_time(), 50);
  EXPECT_EQ(r.jobs(), 1u);
}

TEST(ResourceTest, BusyResourceQueues) {
  Resource r("cpu");
  EXPECT_EQ(r.Serve(0, 100), 100);
  // Arrives at 50 while busy until 100: waits, completes at 130.
  EXPECT_EQ(r.Serve(50, 30), 130);
  EXPECT_EQ(r.busy_time(), 130);
}

TEST(ResourceTest, GapLeavesIdleTime) {
  Resource r("disk");
  r.Serve(0, 10);
  r.Serve(100, 10);
  EXPECT_EQ(r.busy_time(), 20);
  EXPECT_DOUBLE_EQ(r.Utilization(200), 0.1);
}

TEST(ResourceTest, UtilizationClamped) {
  Resource r("x");
  r.Serve(0, 100);
  EXPECT_DOUBLE_EQ(r.Utilization(50), 1.0);
  EXPECT_DOUBLE_EQ(r.Utilization(0), 0.0);
}

TEST(ResourceTest, ZeroDemandIsFree) {
  Resource r("x");
  EXPECT_EQ(r.Serve(10, 0), 10);
  EXPECT_EQ(r.busy_time(), 0);
}

TEST(ResourceTest, WindowTrackingSplitsAcrossWindows) {
  Resource r("cpu");
  r.EnableWindowTracking(100);
  r.Serve(50, 100);  // busy [50,150): 50 in window 0, 50 in window 1
  auto w = r.WindowUtilization();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST(ResourceTest, WindowTrackingPeaks) {
  Resource r("cpu");
  r.EnableWindowTracking(100);
  r.Serve(0, 100);    // window 0 fully busy
  r.Serve(250, 10);   // window 2 lightly busy
  auto w = r.WindowUtilization();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 0.1);
}

TEST(ResourceTest, ResetClears) {
  Resource r("cpu");
  r.Serve(0, 10);
  r.Reset();
  EXPECT_EQ(r.busy_time(), 0);
  EXPECT_EQ(r.jobs(), 0u);
  EXPECT_EQ(r.Serve(0, 5), 5);
}

TEST(ResourceTest, ResetRestoresFreshWindowTracking) {
  Resource r("cpu");
  r.EnableWindowTracking(100);
  r.Serve(0, 50);
  ASSERT_EQ(r.WindowUtilization().size(), 1u);
  r.Reset();
  // Provably fresh: no windows survive, and tracking itself is off until
  // explicitly re-enabled...
  EXPECT_TRUE(r.WindowUtilization().empty());
  EXPECT_EQ(r.Serve(0, 30), 30);
  EXPECT_TRUE(r.WindowUtilization().empty());
  // ...which is legal again after another Reset (jobs() is back to zero).
  r.Reset();
  r.EnableWindowTracking(10);
  r.Serve(0, 10);
  ASSERT_EQ(r.WindowUtilization().size(), 1u);
  EXPECT_DOUBLE_EQ(r.WindowUtilization()[0], 1.0);
}

TEST(ResourceDeathTest, EnableWindowTrackingAfterServeAborts) {
  Resource r("cpu");
  r.Serve(0, 10);
  // Windows are anchored at time 0; enabling late would silently drop the
  // busy time already accumulated, so it is a checked precondition.
  EXPECT_DEATH(r.EnableWindowTracking(100), "jobs_ == 0");
}

TEST(ClockTest, AdvanceAndMonotoneAdvanceTo) {
  Clock c;
  c.Advance(10);
  EXPECT_EQ(c.now(), 10);
  c.AdvanceTo(5);  // no-op, earlier
  EXPECT_EQ(c.now(), 10);
  c.AdvanceTo(20);
  EXPECT_EQ(c.now(), 20);
}

// A process that performs fixed-duration steps, recording the global
// interleaving order for scheduler tests.
class ScriptedProcess : public Process {
 public:
  ScriptedProcess(std::string name, std::vector<SimTime> durations,
                  std::vector<std::string>* log)
      : name_(std::move(name)), durations_(std::move(durations)), log_(log) {}

  SimTime now() const override { return now_; }
  bool done() const override { return next_ >= durations_.size(); }
  void Step() override {
    log_->push_back(name_);
    now_ += durations_[next_++];
  }

 private:
  std::string name_;
  std::vector<SimTime> durations_;
  std::vector<std::string>* log_;
  SimTime now_ = 0;
  size_t next_ = 0;
};

TEST(SchedulerTest, AlwaysStepsMinTimeProcess) {
  std::vector<std::string> log;
  ScriptedProcess a("a", {10, 10, 10}, &log);
  ScriptedProcess b("b", {25}, &log);
  Scheduler sched;
  sched.Add(&a);
  sched.Add(&b);
  const SimTime end = sched.RunAll();
  // a steps at 0,10,20; b steps at 0 (tie broken by add order) -> a,b,a,a.
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "a", "a"}));
  EXPECT_EQ(end, 30);
}

TEST(SchedulerTest, HorizonStopsEarly) {
  std::vector<std::string> log;
  ScriptedProcess a("a", std::vector<SimTime>(100, 10), &log);
  Scheduler sched;
  sched.Add(&a);
  const SimTime end = sched.RunUntil(55);
  EXPECT_EQ(end, 55);
  // Steps at 0,10,20,30,40,50 -> six steps; at 60 it is past the horizon.
  EXPECT_EQ(log.size(), 6u);
}

TEST(SchedulerTest, SharedResourceSerializesInArrivalOrder) {
  // Two processes hammer one resource; completion times must interleave in
  // global arrival order with FCFS queueing.
  Resource cpu("cpu");
  struct Worker : Process {
    Worker(Resource* r, SimTime think, int jobs) : r_(r), think_(think), left_(jobs) {}
    SimTime now() const override { return now_; }
    bool done() const override { return left_ == 0; }
    void Step() override {
      now_ += think_;
      now_ = Charge(*r_, now_, 10);
      --left_;
    }
    Resource* r_;
    SimTime think_, now_ = 0;
    int left_;
  };
  Worker fast(&cpu, 1, 5), slow(&cpu, 100, 1);
  Scheduler sched;
  sched.Add(&fast);
  sched.Add(&slow);
  sched.RunAll();
  EXPECT_EQ(cpu.busy_time(), 60);
  // fast's 5 jobs finish before slow arrives at t=100; slow served promptly.
  EXPECT_EQ(slow.now_, 110);
}

TEST(CostModelTest, TransmissionScalesWithBytes) {
  CostModel cm;
  EXPECT_EQ(cm.TransmissionTime(0), cm.net_msg_latency);
  EXPECT_GT(cm.TransmissionTime(100 * 1024), cm.TransmissionTime(1024));
}

TEST(CostModelTest, DiskIncludesSeek) {
  CostModel cm;
  EXPECT_EQ(cm.DiskTime(0), cm.disk_seek);
  EXPECT_EQ(cm.DiskTime(1024), cm.disk_seek + cm.disk_per_kb);
}

}  // namespace
}  // namespace itc::sim
