// Cross-workstation consistency semantics, under all three validation
// schemes.
//
// The paper's contract: store-on-close makes changes "immediately visible to
// all other users" (with callbacks or leases, whose breaks notify reachable
// holders synchronously) or visible at next validation (check-on-open);
// fetch vs concurrent store yields "either the old version or the new one,
// but never a partially modified version".

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;
using Scheme = venus::VenusConfig::Validation;

class ConsistencyTest : public ::testing::TestWithParam<Scheme> {
 protected:
  void SetUp() override {
    // Check-on-open rides the prototype configuration it was measured on;
    // the promise-based schemes ride the revised system.
    CampusConfig config = GetParam() == Scheme::kCheckOnOpen
                              ? CampusConfig::Prototype(1, 3)
                              : CampusConfig::Revised(1, 3);
    config.UseValidation(GetParam());
    campus_ = std::make_unique<Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto owner = campus_->AddUserWithHome("owner", "pw", 0);
    ASSERT_TRUE(owner.ok());
    owner_ = *owner;

    // Give everyone write access to a shared scratch directory.
    auto& ws = campus_->workstation(0);
    ASSERT_EQ(ws.LoginWithPassword(owner_.user, "pw"), Status::kOk);
    ASSERT_EQ(ws.MkDir("/vice/usr/owner/shared"), Status::kOk);
    auto acl = ws.venus().GetAcl("/usr/owner/shared");
    ASSERT_TRUE(acl.ok());
    acl->SetPositive(protection::Principal::Group(protection::kAnyUserGroup),
                     protection::kAllRights);
    ASSERT_EQ(ws.venus().SetAcl("/usr/owner/shared", *acl), Status::kOk);
    ws.Logout();

    for (int i = 0; i < 3; ++i) {
      auto u = campus_->protection().CreateUser("user" + std::to_string(i), "pw");
      ASSERT_TRUE(u.ok());
      users_[i] = *u;
      ASSERT_EQ(campus_->workstation(i).LoginWithPassword(users_[i], "pw"), Status::kOk);
    }
  }

  virtue::Workstation& ws(int i) { return campus_->workstation(i); }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome owner_;
  UserId users_[3] = {};
  const std::string file_ = "/vice/usr/owner/shared/doc";
};

TEST_P(ConsistencyTest, SequentialWriteReadChain) {
  // w0 writes v1; w1 reads v1, writes v2; w2 reads v2.
  ASSERT_EQ(ws(0).WriteWholeFile(file_, ToBytes("v1")), Status::kOk);
  auto r1 = ws(1).ReadWholeFile(file_);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(ToString(*r1), "v1");
  ASSERT_EQ(ws(1).WriteWholeFile(file_, ToBytes("v2")), Status::kOk);
  auto r2 = ws(2).ReadWholeFile(file_);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ToString(*r2), "v2");
  // And the original writer sees the update on its next open.
  auto r0 = ws(0).ReadWholeFile(file_);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(ToString(*r0), "v2");
}

TEST_P(ConsistencyTest, WholeFileStoreIsAtomic) {
  // Open-for-write at w0, write half the new content, DON'T close. Readers
  // must keep seeing the old version — partial writes never escape.
  ASSERT_EQ(ws(0).WriteWholeFile(file_, ToBytes("old-old-old")), Status::kOk);
  ASSERT_TRUE(ws(1).ReadWholeFile(file_).ok());

  auto fd = ws(0).Open(file_, virtue::kWrite | virtue::kTruncate);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(ws(0).Write(*fd, ToBytes("NEW")), Status::kOk);

  auto mid = ws(1).ReadWholeFile(file_);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(ToString(*mid), "old-old-old");  // old version, complete

  ASSERT_EQ(ws(0).Close(*fd), Status::kOk);  // store happens here
  auto after = ws(1).ReadWholeFile(file_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ToString(*after), "NEW");  // new version, complete
}

TEST_P(ConsistencyTest, ConcurrentWritersLastCloseWins) {
  ASSERT_EQ(ws(0).WriteWholeFile(file_, ToBytes("base")), Status::kOk);

  auto fd1 = ws(1).Open(file_, virtue::kWrite | virtue::kTruncate);
  auto fd2 = ws(2).Open(file_, virtue::kWrite | virtue::kTruncate);
  ASSERT_TRUE(fd1.ok() && fd2.ok());
  ASSERT_EQ(ws(1).Write(*fd1, ToBytes("from-w1")), Status::kOk);
  ASSERT_EQ(ws(2).Write(*fd2, ToBytes("from-w2")), Status::kOk);
  ASSERT_EQ(ws(1).Close(*fd1), Status::kOk);
  ASSERT_EQ(ws(2).Close(*fd2), Status::kOk);

  auto final = ws(0).ReadWholeFile(file_);
  ASSERT_TRUE(final.ok());
  EXPECT_EQ(ToString(*final), "from-w2");  // whole-file, last close wins
}

TEST_P(ConsistencyTest, DeleteVisibleEverywhere) {
  ASSERT_EQ(ws(0).WriteWholeFile(file_, ToBytes("x")), Status::kOk);
  ASSERT_TRUE(ws(1).ReadWholeFile(file_).ok());  // cached at w1
  ASSERT_EQ(ws(0).Unlink(file_), Status::kOk);
  EXPECT_EQ(ws(1).ReadWholeFile(file_).status(), Status::kNotFound);
  EXPECT_EQ(ws(2).ReadWholeFile(file_).status(), Status::kNotFound);
}

TEST_P(ConsistencyTest, DirectoryChangesPropagate) {
  ASSERT_EQ(ws(0).WriteWholeFile("/vice/usr/owner/shared/a", ToBytes("1")), Status::kOk);
  auto names1 = ws(1).ReadDir("/vice/usr/owner/shared");
  ASSERT_TRUE(names1.ok());
  const size_t before = names1->size();
  ASSERT_EQ(ws(2).WriteWholeFile("/vice/usr/owner/shared/b", ToBytes("2")), Status::kOk);
  auto names2 = ws(1).ReadDir("/vice/usr/owner/shared");
  ASSERT_TRUE(names2.ok());
  EXPECT_EQ(names2->size(), before + 1);
}

TEST_P(ConsistencyTest, StatSeesFreshLength) {
  ASSERT_EQ(ws(0).WriteWholeFile(file_, Bytes(100, 'a')), Status::kOk);
  ASSERT_TRUE(ws(1).Stat(file_).ok());
  ASSERT_EQ(ws(0).WriteWholeFile(file_, Bytes(5000, 'b')), Status::kOk);
  auto st = ws(1).Stat(file_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5000u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ConsistencyTest,
                         ::testing::Values(Scheme::kCheckOnOpen, Scheme::kCallbacks,
                                           Scheme::kLeases),
                         [](const ::testing::TestParamInfo<Scheme>& p) {
                           switch (p.param) {
                             case Scheme::kCheckOnOpen: return "CheckOnOpen";
                             case Scheme::kCallbacks: return "Callbacks";
                             case Scheme::kLeases: return "Leases";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace itc
