// Availability tests: single failures must not take out the community
// ("Single point network or machine failures should not affect the entire
// user community", Section 2.2), and read-only replication must mask
// replica-site failures.

#include <gtest/gtest.h>

#include "src/campus/campus.h"
#include "src/rpc/interceptor.h"
#include "src/workload/populate.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;

class AvailabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(2, 2));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto a = campus_->AddUserWithHome("a", "pw", /*custodian=*/0);
    auto b = campus_->AddUserWithHome("b", "pw", /*custodian=*/1);
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = *a;
    b_ = *b;
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome a_, b_;
};

TEST_F(AvailabilityTest, ServerFailureIsPartialNotTotal) {
  auto& ws_a = campus_->workstation(0);
  auto& ws_b = campus_->workstation(2);
  ASSERT_EQ(ws_a.LoginWithPassword(a_.user, "pw"), Status::kOk);
  ASSERT_EQ(ws_b.LoginWithPassword(b_.user, "pw"), Status::kOk);
  ASSERT_EQ(ws_a.WriteWholeFile("/vice/usr/a/f", ToBytes("on s0")), Status::kOk);
  ASSERT_EQ(ws_b.WriteWholeFile("/vice/usr/b/f", ToBytes("on s1")), Status::kOk);

  // Server 1 dies. Users of server 0 are untouched; users of server 1 see
  // "temporary loss of service to small groups of users".
  campus_->server(1).endpoint().fault().set_fail_all(true);
  ws_a.venus().FlushCache();
  ws_b.venus().FlushCache();
  EXPECT_TRUE(ws_a.ReadWholeFile("/vice/usr/a/f").ok());
  EXPECT_EQ(ws_b.ReadWholeFile("/vice/usr/b/f").status(), Status::kUnavailable);

  // Recovery restores service without manual client intervention.
  campus_->server(1).endpoint().fault().set_fail_all(false);
  auto back = ws_b.ReadWholeFile("/vice/usr/b/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ToString(*back), "on s1");
}

TEST_F(AvailabilityTest, ReadOnlyReplicationMasksReplicaFailure) {
  auto sys = campus_->CreateSystemVolume("sys", "/unix/sun", 0);
  ASSERT_TRUE(sys.ok());
  ASSERT_EQ(workload::PopulateSystemBinaries(*campus_, *sys, 4, 1), Status::kOk);
  ASSERT_TRUE(campus_->registry().ReleaseReadOnly(*sys, "sys.ro", {0, 1}).ok());

  // A workstation in cluster 1 normally uses the replica at server 1.
  auto& ws = campus_->workstation(2);
  ASSERT_EQ(ws.LoginWithPassword(b_.user, "pw"), Status::kOk);
  ASSERT_TRUE(ws.ReadWholeFile("/vice/unix/sun/bin/prog0").ok());

  // Its local replica site dies; the fetch transparently fails over to the
  // surviving site in cluster 0.
  campus_->server(1).endpoint().fault().set_fail_all(true);
  ws.venus().FlushCache();
  // Volume-location queries go to the home server... which is down. The
  // client's cached hints still name the replica sites, so refresh them
  // while the other server is reachable: hints are hints (Section 6.1).
  auto data = ws.ReadWholeFile("/vice/unix/sun/bin/prog1");
  if (!data.ok()) {
    // Home-server-down also blocks root-volume resolution for this client;
    // that path legitimately fails. Use warm directories instead.
    campus_->server(1).endpoint().fault().set_fail_all(false);
    ASSERT_TRUE(ws.ReadWholeFile("/vice/unix/sun/bin/prog1").ok());
    campus_->server(1).endpoint().fault().set_fail_all(true);
    data = ws.ReadWholeFile("/vice/unix/sun/bin/prog2");
  }
  ASSERT_TRUE(data.ok());
  // The fetch was served by server 0's replica.
  auto hist0 = campus_->server(0).CallHistogram();
  EXPECT_GE(hist0[vice::CallClass::kFetch], 1u);
}

TEST_F(AvailabilityTest, FailedHandshakeReportsUnavailable) {
  campus_->server(0).endpoint().fault().set_fail_all(true);
  auto& ws = campus_->workstation(0);
  EXPECT_EQ(ws.LoginWithPassword(a_.user, "pw"), Status::kUnavailable);
}

TEST_F(AvailabilityTest, LocalFilesUsableWhileViceDown) {
  // Section 3.1, local file class 4: "a modicum of usability when Vice is
  // unavailable."
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(a_.user, "pw"), Status::kOk);
  campus_->server(0).endpoint().fault().set_fail_all(true);
  campus_->server(1).endpoint().fault().set_fail_all(true);
  EXPECT_EQ(ws.WriteWholeFile("/tmp/draft", ToBytes("offline work")), Status::kOk);
  EXPECT_EQ(ToString(*ws.ReadWholeFile("/tmp/draft")), "offline work");
  EXPECT_TRUE(ws.ReadWholeFile("/vmunix").ok());
}

}  // namespace
}  // namespace itc
