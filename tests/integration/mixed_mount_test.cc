// Mixed-mount workload: one workstation with three backends live at once —
// local unixfs at "/", Venus whole-file caching at /vice, and a remote-open
// tree at /nfs — driven as a scheduled process under both kernel backends.
// Simulated results (end time, bytes read) must be identical for fiber and
// thread backends: the backend affects wall-clock throughput only.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/baseline/remote_open.h"
#include "src/campus/campus.h"
#include "src/sim/scheduler.h"
#include "src/virtue/workstation.h"

namespace itc::virtue {
namespace {

using campus::Campus;
using campus::CampusConfig;

// A scripted client touching all three mounts, one operation per Step().
class MixedWorkload : public sim::Process {
 public:
  explicit MixedWorkload(Workstation* ws) : ws_(ws) {}

  SimTime now() const override { return ws_->clock().now(); }
  bool done() const override { return step_ >= kSteps; }

  void Step() override {
    const std::string home = "/vice/usr/u0";
    switch (step_) {
      case 0:
        Check(ws_->WriteWholeFile("/tmp/scratch", ToBytes("local bytes")));
        break;
      case 1:
        Check(ws_->WriteWholeFile(home + "/doc", ToBytes("shared bytes")));
        break;
      case 2:
        Check(ws_->WriteWholeFile("/nfs/remote.txt", ToBytes("remote bytes")));
        break;
      case 3:
        Absorb(ws_->ReadWholeFile("/tmp/scratch"));
        break;
      case 4:
        Absorb(ws_->ReadWholeFile(home + "/doc"));  // warm: served from cache
        break;
      case 5:
        Absorb(ws_->ReadWholeFile("/nfs/remote.txt"));
        break;
      case 6:
        // Renames stay within a mount; crossing is the EXDEV analog.
        Check(ws_->Rename("/nfs/remote.txt", "/nfs/renamed.txt"));
        if (ws_->Rename("/tmp/scratch", "/nfs/stolen") != Status::kCrossVolume) {
          ++errors_;
        }
        if (ws_->Rename(home + "/doc", "/tmp/doc") != Status::kCrossVolume) {
          ++errors_;
        }
        break;
      case 7:
        Absorb(ws_->ReadWholeFile("/nfs/renamed.txt"));
        Absorb(ws_->ReadWholeFile(home + "/doc"));
        break;
      default:
        break;
    }
    ++step_;
  }

  int errors() const { return errors_; }
  const std::string& digest() const { return digest_; }

  static constexpr int kSteps = 8;

 private:
  void Check(Status s) {
    if (s != Status::kOk) ++errors_;
  }
  void Absorb(const Result<Bytes>& r) {
    if (!r.ok()) {
      ++errors_;
      return;
    }
    digest_ += ToString(*r);
    digest_ += '|';
  }

  Workstation* ws_;
  int step_ = 0;
  int errors_ = 0;
  std::string digest_;
};

struct RunResult {
  SimTime end = 0;
  std::string digest;
  int errors = 0;
  uint64_t venus_opens = 0;
};

RunResult RunMixed(sim::KernelBackend backend) {
  Campus campus(CampusConfig::Revised(1, 2));
  EXPECT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("u0", "pw", 0);
  EXPECT_TRUE(home.ok());

  auto& ws = campus.workstation(0);
  EXPECT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);

  // The remote-open service lives on the other workstation's node — any
  // addressable node works; what matters is that every RPC rides the same
  // simulated network as Venus traffic.
  const auto key = crypto::DeriveKeyFromPassword("pw", "itc.cmu.edu");
  baseline::RemoteOpenServer server(
      campus.workstation(1).node(), &campus.network(), campus.config().cost,
      rpc::RpcConfig{},
      [&key](UserId) -> std::optional<crypto::Key> { return key; }, 7);
  EXPECT_EQ(ws.MountRemote("/nfs", &server, &campus.network(), home->user, key, 11),
            Status::kOk);

  MixedWorkload client(&ws);
  sim::Scheduler sched;
  sched.set_backend(backend);
  sched.Add(&client);

  RunResult r;
  r.end = sched.RunAll();
  r.digest = client.digest();
  r.errors = client.errors();
  r.venus_opens = ws.venus().stats().opens;
  return r;
}

TEST(MixedMountTest, AllThreeBackendsServeOneNamespace) {
  const RunResult r = RunMixed(sim::KernelBackend::kFiber);
  EXPECT_EQ(r.errors, 0);
  EXPECT_EQ(r.digest,
            "local bytes|shared bytes|remote bytes|remote bytes|shared bytes|");
  EXPECT_GT(r.end, 0u);
  EXPECT_GT(r.venus_opens, 0u);
}

TEST(MixedMountTest, SimulatedResultsIdenticalAcrossKernelBackends) {
  const RunResult fiber = RunMixed(sim::KernelBackend::kFiber);
  const RunResult thread = RunMixed(sim::KernelBackend::kThread);
  EXPECT_EQ(fiber.end, thread.end);
  EXPECT_EQ(fiber.digest, thread.digest);
  EXPECT_EQ(fiber.errors, thread.errors);
  EXPECT_EQ(fiber.venus_opens, thread.venus_opens);
  EXPECT_EQ(fiber.errors, 0);
}

}  // namespace
}  // namespace itc::virtue
