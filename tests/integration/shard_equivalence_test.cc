// Shard-equivalence: the same multi-cluster campus day replayed under
// SchedulerMode::kEventDriven (one kernel) and SchedulerMode::kSharded (one
// kernel per cluster, one OS thread each) produces the same simulation.
//
// The workload is the locality configuration the paper's cluster design
// targets: every user's home volume lives on the server in their own
// cluster and the shared system volume is released read-only to every
// server, so the day's traffic never crosses the backbone. For such days
// docs/KERNEL.md promises bit-identical intra-cluster event sequences: the
// (virtual time, activity) dispatch subsequence of each cluster under the
// solo kernel equals that cluster's shard trace under kSharded, for any
// shard placement and either parking backend. End-of-day filesystem state
// and client/server statistics must agree exactly as well.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/campus/campus.h"
#include "src/sim/kernel.h"
#include "src/sim/scheduler.h"
#include "src/workload/populate.h"
#include "src/workload/synthetic_user.h"

namespace itc {
namespace {

constexpr uint32_t kClusters = 4;
constexpr uint32_t kWorkstationsPerCluster = 2;
constexpr uint64_t kSeed = 19850901;

struct DayResult {
  SimTime end = 0;
  uint32_t shards_used = 0;
  // Per-cluster dispatch sequence as (virtual time, activity name).
  std::vector<std::vector<std::pair<SimTime, std::string>>> cluster_traces;
  // End-of-day state: per-workstation Venus counters and a read-back of
  // every user's home working set (collected quiescently after the run).
  std::vector<std::vector<uint64_t>> venus_counters;
  std::vector<std::map<std::string, std::string>> home_files;
  std::map<vice::CallClass, uint64_t> call_histogram;
};

DayResult RunDay(sim::SchedulerMode mode, sim::KernelBackend backend) {
  campus::CampusConfig config =
      campus::CampusConfig::Revised(kClusters, kWorkstationsPerCluster);
  config.seed = kSeed;
  campus::Campus campus(config);
  auto rootvol = campus.SetupRootVolume();
  EXPECT_TRUE(rootvol.ok());

  auto sysvol = campus.CreateSystemVolume("sys.sun", "/unix/sun", /*custodian=*/0);
  EXPECT_TRUE(sysvol.ok());
  EXPECT_EQ(workload::PopulateSystemBinaries(campus, *sysvol, /*count=*/12,
                                             kSeed ^ 0xb1),
            Status::kOk);
  // Read-only replica on every server: system reads stay in-cluster.
  std::vector<ServerId> sites;
  for (ServerId s = 0; s < campus.server_count(); ++s) sites.push_back(s);
  EXPECT_TRUE(campus.registry().ReleaseReadOnly(*sysvol, "sys.sun.ro", sites).ok());

  workload::UserDayConfig day;
  day.operations = 60;
  day.own_files = 12;
  day.system_files = 12;
  day.mean_think = Seconds(2);

  const net::Topology& topo = campus.network().topology();
  std::vector<std::unique_ptr<workload::SyntheticUser>> users;
  for (uint32_t w = 0; w < campus.workstation_count(); ++w) {
    const std::string name = "u" + std::to_string(w);
    auto home = campus.AddUserWithHome(name, "pw-" + name, campus.HomeServerOf(w));
    EXPECT_TRUE(home.ok());
    EXPECT_EQ(workload::PopulateUserFiles(campus, home->volume, day.own_files,
                                          kSeed ^ w),
              Status::kOk);
    auto& ws = campus.workstation(w);
    EXPECT_EQ(ws.LoginWithPassword(home->user, "pw-" + name), Status::kOk);
    users.push_back(std::make_unique<workload::SyntheticUser>(
        &ws, "/vice" + home->vice_path, "/bin", day, kSeed ^ (w * 7919)));
  }

  // Release the root volume read-only to every server as well — after the
  // home-volume mount points exist, so the clones carry them. Path traversal
  // (/vice, /vice/usr, /vice/unix) is the one remaining reason a cluster
  // would cross the backbone during this day; with a local replica of the
  // (day-immutable) root volume it stays home.
  EXPECT_TRUE(
      campus.registry().ReleaseReadOnly(*rootvol, "vice.root.ro", sites).ok());
  // Login traversal cached location hints (and root directories) fetched
  // from the read-write custodian before the release; flush so every Venus
  // starts the day cold and resolves through the new clones.
  for (uint32_t w = 0; w < campus.workstation_count(); ++w) {
    campus.workstation(w).venus().FlushCache();
  }

  sim::Scheduler sched;
  sched.set_mode(mode);
  sched.set_backend(backend);
  sched.set_lookahead(config.cost.BackboneLookahead());
  // Large enough that the ring never wraps for this day (~40k dispatches);
  // a wrapped trace would silently weaken the subsequence comparison.
  sched.EnableTrace(1u << 18);
  for (uint32_t w = 0; w < users.size(); ++w) {
    sched.Add(users[w].get(), topo.ClusterOfNthWorkstation(w));
  }

  DayResult result;
  result.end = sched.RunAll();

  // Project the dispatch order onto clusters. Solo: filter the one global
  // trace by the owning cluster of each "p<w>" activity. Sharded: each
  // shard's trace is already one cluster's sequence (shard i == cluster i
  // here — kClusters domains on kClusters shards).
  result.cluster_traces.resize(kClusters);
  auto cluster_of_activity = [&](const std::string& activity) -> int {
    if (activity.empty() || activity[0] != 'p') return -1;
    const uint32_t w = static_cast<uint32_t>(std::stoul(activity.substr(1)));
    return static_cast<int>(topo.ClusterOfNthWorkstation(w));
  };
  if (mode == sim::SchedulerMode::kSharded) {
    result.shards_used = sched.shards_used();
    EXPECT_EQ(result.shards_used, kClusters);
    for (uint32_t s = 0; s < sched.shard_traces().size(); ++s) {
      for (const sim::TraceEntry& e : sched.shard_traces()[s]) {
        const int c = cluster_of_activity(e.activity);
        EXPECT_GE(c, 0) << "unexpected cross-cluster activity " << e.activity;
        if (c < 0) continue;
        EXPECT_EQ(static_cast<uint32_t>(c), s) << e.activity << " @" << e.time;
        result.cluster_traces[s].emplace_back(e.time, e.activity);
      }
    }
  } else {
    result.shards_used = 1;
    for (const sim::TraceEntry& e : sched.trace()) {
      const int c = cluster_of_activity(e.activity);
      EXPECT_GE(c, 0);
      if (c < 0) continue;
      result.cluster_traces[c].emplace_back(e.time, e.activity);
    }
  }

  // End-of-day state, collected quiescently (no kernel running).
  EXPECT_EQ(sim::Kernel::Current(), nullptr);
  for (uint32_t w = 0; w < campus.workstation_count(); ++w) {
    const venus::VenusStats& s = campus.workstation(w).venus().stats();
    result.venus_counters.push_back({s.opens, s.cache_hits, s.fetches, s.stores,
                                     s.callback_breaks_received});
    std::map<std::string, std::string> files;
    for (uint32_t f = 0; f < day.own_files; ++f) {
      const std::string path = "/vice/usr/u" + std::to_string(w) + "/" +
                               workload::SyntheticUser::OwnFileName(f);
      auto data = campus.workstation(w).ReadWholeFile(path);
      EXPECT_TRUE(data.ok()) << path;
      if (data.ok()) files[path] = ToString(*data);
    }
    result.home_files.push_back(std::move(files));
  }
  result.call_histogram = campus.TotalCallHistogram();
  return result;
}

void ExpectSameDay(const DayResult& solo, const DayResult& sharded) {
  EXPECT_EQ(solo.end, sharded.end);
  for (uint32_t c = 0; c < kClusters; ++c) {
    EXPECT_EQ(solo.cluster_traces[c], sharded.cluster_traces[c])
        << "cluster " << c << " dispatch sequence diverged";
  }
  EXPECT_EQ(solo.venus_counters, sharded.venus_counters);
  EXPECT_EQ(solo.home_files, sharded.home_files);
  EXPECT_EQ(solo.call_histogram, sharded.call_histogram);
}

TEST(ShardEquivalenceTest, ShardedDayMatchesSoloKernelFiberBackend) {
  const DayResult solo =
      RunDay(sim::SchedulerMode::kEventDriven, sim::KernelBackend::kFiber);
  const DayResult sharded =
      RunDay(sim::SchedulerMode::kSharded, sim::KernelBackend::kFiber);
  // The day actually exercised the campus.
  uint64_t dispatches = 0;
  for (const auto& t : solo.cluster_traces) dispatches += t.size();
  EXPECT_GT(dispatches, 1000u);
  ExpectSameDay(solo, sharded);
}

TEST(ShardEquivalenceTest, ShardedDayMatchesSoloKernelThreadBackend) {
  const DayResult solo =
      RunDay(sim::SchedulerMode::kEventDriven, sim::KernelBackend::kThread);
  const DayResult sharded =
      RunDay(sim::SchedulerMode::kSharded, sim::KernelBackend::kThread);
  ExpectSameDay(solo, sharded);
}

}  // namespace
}  // namespace itc
