// Availability scenarios that separate the three validation schemes: a link
// partition that heals after a fixed interval, and a server restart.
//
//   * check-on-open: unavailable during the partition (every open needs the
//     custodian), fresh immediately after it heals;
//   * callbacks: available throughout — but the break the partition ate is
//     gone forever, so the holder serves stale data even after the heal;
//   * leases: stale reads bounded by the lease term, then unavailable until
//     the heal, then fresh — and after a server restart the scheme recovers
//     within one term with no re-establishment traffic at all.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/campus/campus.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;
using Scheme = venus::VenusConfig::Validation;

class LeaseAvailabilityTest : public ::testing::Test {
 protected:
  void MakeCampus(Scheme scheme) {
    CampusConfig config = CampusConfig::Revised(2, 2);
    config.UseValidation(scheme);
    campus_ = std::make_unique<Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto a = campus_->AddUserWithHome("a", "pw", /*custodian=*/0);
    ASSERT_TRUE(a.ok());
    a_ = *a;
    // Writer shares the custodian's cluster; the reader watches from the
    // other cluster so only IT can be cut off.
    ASSERT_EQ(writer().LoginWithPassword(a_.user, "pw"), Status::kOk);
    ASSERT_EQ(reader().LoginWithPassword(a_.user, "pw"), Status::kOk);
    ASSERT_EQ(writer().WriteWholeFile(kFile, ToBytes("v1")), Status::kOk);
    auto r = reader().ReadWholeFile(kFile);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(ToString(*r), "v1");  // cached (and leased / promised)
  }

  // Cuts the reader off for [P1, P2) and returns (P1, P2): a window opening
  // one second after both clocks and long enough to outlive any lease.
  std::pair<SimTime, SimTime> PartitionReader() {
    const SimTime p1 = std::max(writer().clock().now(), reader().clock().now()) + Seconds(1);
    const SimTime p2 = p1 + Seconds(120);
    campus_->PartitionWorkstation(2, p1, p2);
    return {p1, p2};
  }

  virtue::Workstation& writer() { return campus_->workstation(0); }
  virtue::Workstation& reader() { return campus_->workstation(2); }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome a_;
  static constexpr const char* kFile = "/vice/usr/a/shared";
};

TEST_F(LeaseAvailabilityTest, LeasesBoundStalenessUnderPartition) {
  MakeCampus(Scheme::kLeases);
  const auto [p1, p2] = PartitionReader();

  // The write cannot be acknowledged while an unreachable holder's lease is
  // live: the server waits it out (never past the holder's expiry).
  writer().clock().AdvanceTo(p1 + Seconds(1));
  ASSERT_EQ(writer().WriteWholeFile(kFile, ToBytes("v2")), Status::kOk);
  EXPECT_GE(writer().clock().now(), Seconds(30));  // sat out the reader's lease
  EXPECT_GE(campus_->server(0).leases().stats().waited_out, 1u);
  EXPECT_GE(campus_->network().stats().partition_drops, 1u);

  // Within its lease the partitioned reader still serves the cached copy —
  // stale, but with zero communication and a hard bound on the staleness.
  reader().clock().AdvanceTo(p1 + Seconds(1));
  const uint64_t validations = reader().venus().stats().validations;
  auto during = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(ToString(*during), "v1");
  EXPECT_EQ(reader().venus().stats().validations, validations);

  // Past the lease term the trust horizon is gone: check-on-open fallback,
  // which the partition makes unavailable.
  reader().clock().AdvanceTo(p1 + Seconds(35));
  EXPECT_EQ(reader().ReadWholeFile(kFile).status(), Status::kUnavailable);

  // The heal is just the passage of time; the first open after it is fresh.
  reader().clock().AdvanceTo(p2 + Seconds(1));
  auto after = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ToString(*after), "v2");
}

TEST_F(LeaseAvailabilityTest, CallbacksServeStaleDataForeverAfterHealedPartition) {
  MakeCampus(Scheme::kCallbacks);
  const auto [p1, p2] = PartitionReader();

  // The break is lost to the partition and the write completes anyway.
  writer().clock().AdvanceTo(p1 + Seconds(1));
  ASSERT_EQ(writer().WriteWholeFile(kFile, ToBytes("v2")), Status::kOk);
  EXPECT_GE(campus_->server(0).callbacks().stats().lost, 1u);

  // The reader trusts its open-ended promise during the partition...
  reader().clock().AdvanceTo(p1 + Seconds(35));
  auto during = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(ToString(*during), "v1");

  // ...and — the hole leases close — KEEPS trusting it after the heal: the
  // staleness window is unbounded.
  reader().clock().AdvanceTo(p2 + Seconds(60));
  auto after = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ToString(*after), "v1");
}

TEST_F(LeaseAvailabilityTest, CheckOnOpenIsUnavailableUnderPartitionButFreshAfter) {
  MakeCampus(Scheme::kCheckOnOpen);
  const auto [p1, p2] = PartitionReader();

  writer().clock().AdvanceTo(p1 + Seconds(1));
  ASSERT_EQ(writer().WriteWholeFile(kFile, ToBytes("v2")), Status::kOk);

  reader().clock().AdvanceTo(p1 + Seconds(2));
  EXPECT_EQ(reader().ReadWholeFile(kFile).status(), Status::kUnavailable);

  reader().clock().AdvanceTo(p2 + Seconds(1));
  auto after = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ToString(*after), "v2");
}

TEST_F(LeaseAvailabilityTest, RestartEmbargoRecoversWithinOneTermWithoutReestablishment) {
  MakeCampus(Scheme::kLeases);
  const SimTime term = campus_->config().vice.lease_term;

  campus_->CrashServer(0);
  const SimTime restart_at = writer().clock().now();
  auto report = campus_->RestartServer(0, restart_at);
  ASSERT_TRUE(report.clean());

  // First contact after the restart rides the broken-connection retry; the
  // proven restart drops every lease the reader held from that server. The
  // news must arrive on a NON-mutating call — a store would itself be
  // delayed to the embargo's end, skipping the window under test.
  ASSERT_TRUE(reader().venus().GetAcl("/usr/a").ok());
  EXPECT_GE(reader().venus().stats().suspect_marks, 1u);
  ASSERT_LT(reader().clock().now(), restart_at + term);  // still inside it

  // During the embargo the file stays AVAILABLE — grants are refused, so
  // every open falls back to per-open validation (no lease, no trust).
  const uint64_t grants_before = reader().venus().stats().lease_grants;
  auto r1 = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(ToString(*r1), "v1");
  const uint64_t v1 = reader().venus().stats().validations;
  auto r2 = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(reader().venus().stats().validations, v1);  // revalidated, not trusted
  EXPECT_EQ(reader().venus().stats().lease_grants, grants_before);
  EXPECT_GE(campus_->server(0).leases().stats().refused, 1u);

  // A mutation inside the embargo waits out every lease the dead server
  // might have forgotten — the write's completion lands past restart + term.
  ASSERT_EQ(writer().WriteWholeFile(kFile, ToBytes("v2")), Status::kOk);
  EXPECT_GE(writer().clock().now(), restart_at + term);

  // One term after the restart, grants resume by themselves: no
  // re-establishment protocol, no recovery storm — just the next open.
  reader().clock().AdvanceTo(restart_at + term + Seconds(1));
  auto r3 = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(ToString(*r3), "v2");
  EXPECT_GT(reader().venus().stats().lease_grants, grants_before);
  const uint64_t v2 = reader().venus().stats().validations;
  auto r4 = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(ToString(*r4), "v2");
  EXPECT_EQ(reader().venus().stats().validations, v2);  // leased again: zero RPCs
}

// Pinning test (regression): marking a server suspect must drop that
// server's LEASES together with its callback promises. If only `valid` were
// cleared — or only non-dirty entries touched — a live lease_expiry would
// let Trusted() serve pre-crash data after a proven restart.
TEST_F(LeaseAvailabilityTest, MarkingServerSuspectDropsItsLeasesAtomically) {
  MakeCampus(Scheme::kLeases);

  campus_->CrashServer(0);
  ASSERT_TRUE(campus_->RestartServer(0, writer().clock().now()).clean());

  // Unrelated NON-mutating traffic delivers the restart news (broken
  // connection); the reader's clock stays well inside the pre-crash lease
  // horizon, so natural expiry cannot mask a missing invalidation.
  ASSERT_TRUE(reader().venus().GetAcl("/usr/a").ok());
  ASSERT_GE(reader().venus().stats().suspect_marks, 1u);
  ASSERT_LT(reader().clock().now(), Seconds(30));

  // The very next open of the leased file must pay a validation round trip;
  // trusting the pre-crash lease horizon here is the bug this test pins.
  const uint64_t validations = reader().venus().stats().validations;
  auto got = reader().ReadWholeFile(kFile);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "v1");
  EXPECT_GT(reader().venus().stats().validations, validations);
}

}  // namespace
}  // namespace itc
