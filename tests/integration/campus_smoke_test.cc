// End-to-end smoke test: a small campus, two users, cross-workstation
// sharing, callback invalidation, and user mobility.

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;

class CampusSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CampusConfig config = CampusConfig::Revised(/*clusters=*/2,
                                                /*workstations_per_cluster=*/3);
    campus_ = std::make_unique<Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto alice = campus_->AddUserWithHome("alice", "rosebud", /*custodian=*/0);
    ASSERT_TRUE(alice.ok());
    alice_ = *alice;
    auto bob = campus_->AddUserWithHome("bob", "sekrit", /*custodian=*/1);
    ASSERT_TRUE(bob.ok());
    bob_ = *bob;
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome alice_;
  Campus::UserHome bob_;
};

TEST_F(CampusSmokeTest, LoginAndWriteReadOwnFile) {
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(alice_.user, "rosebud"), Status::kOk);

  const std::string path = "/vice/usr/alice/notes.txt";
  ASSERT_EQ(ws.WriteWholeFile(path, ToBytes("hello vice")), Status::kOk);

  auto back = ws.ReadWholeFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ToString(*back), "hello vice");

  // Second read is a cache hit: no additional fetch.
  const uint64_t fetches_before = ws.venus().stats().fetches;
  auto again = ws.ReadWholeFile(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ws.venus().stats().fetches, fetches_before);
}

TEST_F(CampusSmokeTest, WrongPasswordFailsAuthentication) {
  auto& ws = campus_->workstation(0);
  EXPECT_EQ(ws.LoginWithPassword(alice_.user, "wrong"), Status::kAuthFailed);
}

TEST_F(CampusSmokeTest, CrossWorkstationSharingWithCallbacks) {
  auto& ws_a = campus_->workstation(0);
  auto& ws_b = campus_->workstation(4);  // other cluster
  ASSERT_EQ(ws_a.LoginWithPassword(alice_.user, "rosebud"), Status::kOk);
  ASSERT_EQ(ws_b.LoginWithPassword(bob_.user, "sekrit"), Status::kOk);

  const std::string path = "/vice/usr/alice/shared.txt";
  ASSERT_EQ(ws_a.WriteWholeFile(path, ToBytes("v1")), Status::kOk);

  // Bob reads Alice's file (AnyUser has read on her home volume).
  auto v1 = ws_b.ReadWholeFile(path);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(ToString(*v1), "v1");

  // Alice updates; Bob's cached copy must be invalidated by callback, and
  // his next read must see v2 ("changes by one user are immediately visible
  // to all other users").
  ASSERT_EQ(ws_a.WriteWholeFile(path, ToBytes("v2")), Status::kOk);
  EXPECT_GE(ws_b.venus().stats().callback_breaks_received, 1u);
  auto v2 = ws_b.ReadWholeFile(path);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(ToString(*v2), "v2");
}

TEST_F(CampusSmokeTest, ProtectionDeniesWriteToOthersHome) {
  auto& ws = campus_->workstation(1);
  ASSERT_EQ(ws.LoginWithPassword(bob_.user, "sekrit"), Status::kOk);
  EXPECT_EQ(ws.WriteWholeFile("/vice/usr/alice/intruder", ToBytes("x")),
            Status::kPermissionDenied);
}

TEST_F(CampusSmokeTest, UserMobility) {
  // Alice works at workstation 0, then moves to a workstation in another
  // cluster and sees exactly her files.
  auto& home_ws = campus_->workstation(0);
  ASSERT_EQ(home_ws.LoginWithPassword(alice_.user, "rosebud"), Status::kOk);
  ASSERT_EQ(home_ws.WriteWholeFile("/vice/usr/alice/thesis.tex", ToBytes("ch 1")),
            Status::kOk);
  home_ws.Logout();

  auto& away_ws = campus_->workstation(5);
  ASSERT_EQ(away_ws.LoginWithPassword(alice_.user, "rosebud"), Status::kOk);
  auto data = away_ws.ReadWholeFile("/vice/usr/alice/thesis.tex");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "ch 1");
}

TEST_F(CampusSmokeTest, LocalFilesInvisibleRemotely) {
  auto& ws_a = campus_->workstation(0);
  auto& ws_b = campus_->workstation(1);
  ASSERT_EQ(ws_a.LoginWithPassword(alice_.user, "rosebud"), Status::kOk);
  ASSERT_EQ(ws_b.LoginWithPassword(bob_.user, "sekrit"), Status::kOk);

  ASSERT_EQ(ws_a.WriteWholeFile("/tmp/scratch", ToBytes("local only")), Status::kOk);
  EXPECT_EQ(ws_b.ReadWholeFile("/tmp/scratch").status(), Status::kNotFound);
}

TEST_F(CampusSmokeTest, DirectoryListingAndUnlink) {
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(alice_.user, "rosebud"), Status::kOk);
  ASSERT_EQ(ws.MkDir("/vice/usr/alice/src"), Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/alice/src/a.c", ToBytes("int main;")),
            Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/alice/src/b.c", ToBytes("int x;")), Status::kOk);

  auto names = ws.ReadDir("/vice/usr/alice/src");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);

  ASSERT_EQ(ws.Unlink("/vice/usr/alice/src/a.c"), Status::kOk);
  names = ws.ReadDir("/vice/usr/alice/src");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "b.c");
}

TEST_F(CampusSmokeTest, SymlinkFromLocalBinIntoVice) {
  // Figure 3-2: /bin is a local symlink to /vice/unix/sun/bin.
  auto sysvol = campus_->CreateSystemVolume("sys.sun", "/unix/sun", /*custodian=*/0);
  ASSERT_TRUE(sysvol.ok());
  ASSERT_EQ(campus_->PopulateDirect(*sysvol, "/bin/ls", ToBytes("ls binary")),
            Status::kOk);

  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(alice_.user, "rosebud"), Status::kOk);
  auto ls = ws.ReadWholeFile("/bin/ls");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ToString(*ls), "ls binary");
  EXPECT_TRUE(ws.IsShared("/bin/ls"));
}

}  // namespace
}  // namespace itc
