// Upward compatibility (Section 2.3): "This interface is relatively static
// and enhancements to it occur in an upward-compatible manner as the system
// evolves."
//
// A prototype-generation client (server-side pathnames, check-on-open
// validation, count-limited cache) must work, unmodified, against a
// revised-generation server — including sharing correctly with
// revised-generation clients on the same server.

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;

class CompatibilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Revised servers...
    CampusConfig config = CampusConfig::Revised(1, 3);
    campus_ = std::make_unique<Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("mixed", "pw", 0);
    ASSERT_TRUE(home.ok());
    user_ = home->user;

    // ...and one extra workstation running the OLD client software.
    virtue::WorkstationConfig old_config;
    old_config.venus = venus::PrototypeVenusConfig();
    old_ws_ = std::make_unique<virtue::Workstation>(
        campus_->topology().WorkstationNode(0, 2), &campus_->server_map(), 0,
        &campus_->network(), campus_->config().cost, old_config, 999);
    ASSERT_EQ(old_ws_->InstallStandardLayout(), Status::kOk);
  }

  std::unique_ptr<Campus> campus_;
  UserId user_ = kAnonymousUser;
  std::unique_ptr<virtue::Workstation> old_ws_;
};

TEST_F(CompatibilityTest, PrototypeClientAgainstRevisedServer) {
  ASSERT_EQ(old_ws_->LoginWithPassword(user_, "pw"), Status::kOk);
  // The old client resolves by pathname (ResolvePath) — the new server
  // still answers it.
  ASSERT_EQ(old_ws_->WriteWholeFile("/vice/usr/mixed/old-style", ToBytes("works")),
            Status::kOk);
  EXPECT_EQ(ToString(*old_ws_->ReadWholeFile("/vice/usr/mixed/old-style")), "works");
  EXPECT_TRUE(old_ws_->Stat("/vice/usr/mixed/old-style").ok());
  EXPECT_TRUE(old_ws_->ReadDir("/vice/usr/mixed").ok());
  ASSERT_EQ(old_ws_->MkDir("/vice/usr/mixed/dir"), Status::kOk);
  EXPECT_EQ(old_ws_->Unlink("/vice/usr/mixed/old-style"), Status::kOk);
}

TEST_F(CompatibilityTest, MixedFleetShareCorrectly) {
  auto& new_ws = campus_->workstation(0);
  ASSERT_EQ(new_ws.LoginWithPassword(user_, "pw"), Status::kOk);
  ASSERT_EQ(old_ws_->LoginWithPassword(user_, "pw"), Status::kOk);

  const std::string path = "/vice/usr/mixed/shared";
  // New writes, old reads.
  ASSERT_EQ(new_ws.WriteWholeFile(path, ToBytes("v1 from new")), Status::kOk);
  EXPECT_EQ(ToString(*old_ws_->ReadWholeFile(path)), "v1 from new");
  // Old writes, new reads — the server breaks the new client's callback.
  ASSERT_EQ(old_ws_->WriteWholeFile(path, ToBytes("v2 from old")), Status::kOk);
  EXPECT_EQ(ToString(*new_ws.ReadWholeFile(path)), "v2 from old");
  // And the other way again: the old client's check-on-open catches it.
  ASSERT_EQ(new_ws.WriteWholeFile(path, ToBytes("v3 from new")), Status::kOk);
  EXPECT_EQ(ToString(*old_ws_->ReadWholeFile(path)), "v3 from new");
}

TEST_F(CompatibilityTest, OldClientBenefitsFromServerSideImprovements) {
  // The revised server has no per-call process switch and no .admin files,
  // so the same old client is simply faster — no client change needed.
  ASSERT_EQ(old_ws_->LoginWithPassword(user_, "pw"), Status::kOk);
  ASSERT_EQ(old_ws_->WriteWholeFile("/vice/usr/mixed/f", ToBytes("x")), Status::kOk);
  const SimTime t0 = old_ws_->clock().now();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(old_ws_->ReadWholeFile("/vice/usr/mixed/f").ok());
  const SimTime revised_cost = old_ws_->clock().now() - t0;

  // Same old client against a prototype-generation server.
  Campus proto(CampusConfig::Prototype(1, 1));
  ASSERT_TRUE(proto.SetupRootVolume().ok());
  auto home = proto.AddUserWithHome("mixed", "pw", 0);
  ASSERT_TRUE(home.ok());
  auto& proto_ws = proto.workstation(0);
  ASSERT_EQ(proto_ws.LoginWithPassword(home->user, "pw"), Status::kOk);
  ASSERT_EQ(proto_ws.WriteWholeFile("/vice/usr/mixed/f", ToBytes("x")), Status::kOk);
  const SimTime t1 = proto_ws.clock().now();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(proto_ws.ReadWholeFile("/vice/usr/mixed/f").ok());
  const SimTime proto_cost = proto_ws.clock().now() - t1;

  EXPECT_LT(revised_cost, proto_cost);
}

TEST_F(CompatibilityTest, RevisedClientSeesOldClientsMutationsViaCallbacks) {
  auto& new_ws = campus_->workstation(0);
  ASSERT_EQ(new_ws.LoginWithPassword(user_, "pw"), Status::kOk);
  ASSERT_EQ(old_ws_->LoginWithPassword(user_, "pw"), Status::kOk);

  // New client caches the directory; the old client adds an entry through
  // the pathname interface; the new client's next listing must include it.
  ASSERT_TRUE(new_ws.ReadDir("/vice/usr/mixed").ok());
  ASSERT_EQ(old_ws_->WriteWholeFile("/vice/usr/mixed/added-by-old", ToBytes("!")),
            Status::kOk);
  auto names = new_ws.ReadDir("/vice/usr/mixed");
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names->begin(), names->end(), "added-by-old"), names->end());
}

}  // namespace
}  // namespace itc
