// Administrative workflows end to end: quota enforcement through the client,
// volume offline/online, salvage after corruption, and heterogeneity
// (different workstation architectures seeing different binaries through the
// same names).

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;

class AdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(1, 2));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
  }
  std::unique_ptr<Campus> campus_;
};

TEST_F(AdminTest, QuotaEnforcedThroughClient) {
  auto home = campus_->AddUserWithHome("bounded", "pw", 0, /*quota_bytes=*/64 * 1024);
  ASSERT_TRUE(home.ok());
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);

  // Small files fit.
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/bounded/small", Bytes(8 * 1024, 'a')),
            Status::kOk);
  // A store that would exceed the quota is refused by the custodian.
  EXPECT_EQ(ws.WriteWholeFile("/vice/usr/bounded/big", Bytes(128 * 1024, 'b')),
            Status::kQuotaExceeded);
  // Deleting frees space; the write then succeeds.
  ASSERT_EQ(ws.Unlink("/vice/usr/bounded/small"), Status::kOk);
  EXPECT_EQ(ws.WriteWholeFile("/vice/usr/bounded/ok", Bytes(32 * 1024, 'c')), Status::kOk);

  // Operations can raise the quota.
  ASSERT_EQ(campus_->registry().SetVolumeQuota(home->volume, 1 << 20), Status::kOk);
  EXPECT_EQ(ws.WriteWholeFile("/vice/usr/bounded/big", Bytes(128 * 1024, 'b')),
            Status::kOk);

  // The user can see their own quota picture (df).
  auto vs = ws.venus().GetVolumeStatus("/usr/bounded");
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs->volume, home->volume);
  EXPECT_EQ(vs->quota_bytes, 1u << 20);
  EXPECT_GT(vs->usage_bytes, 128 * 1024u);
  EXPECT_FALSE(vs->read_only);
  EXPECT_TRUE(vs->online);
}

TEST_F(AdminTest, OfflineVolumeIsTemporaryLossOfService) {
  auto home = campus_->AddUserWithHome("victim", "pw", 0);
  ASSERT_TRUE(home.ok());
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/victim/f", ToBytes("x")), Status::kOk);
  ws.venus().FlushCache();

  ASSERT_EQ(campus_->registry().SetVolumeOnline(home->volume, false), Status::kOk);
  EXPECT_EQ(ws.ReadWholeFile("/vice/usr/victim/f").status(), Status::kVolumeOffline);
  ASSERT_EQ(campus_->registry().SetVolumeOnline(home->volume, true), Status::kOk);
  EXPECT_TRUE(ws.ReadWholeFile("/vice/usr/victim/f").ok());
}

TEST_F(AdminTest, SalvageRepairsCorruptedVolume) {
  auto home = campus_->AddUserWithHome("crashy", "pw", 0);
  ASSERT_TRUE(home.ok());
  vice::Volume* vol = campus_->registry().FindVolume(home->volume);
  ASSERT_NE(vol, nullptr);
  auto keep = vol->CreateFile(vol->root(), "keep", home->user, 0644);
  ASSERT_TRUE(keep.ok());
  ASSERT_EQ(vol->StoreData(*keep, ToBytes("survives")), Status::kOk);

  // Simulate crash damage: a dangling directory entry (vnode vanished) by
  // removing through a lower layer inconsistently — emulate by making a file
  // then removing it through a second handle of the same name sequence.
  auto doomed = vol->CreateFile(vol->root(), "doomed", home->user, 0644);
  ASSERT_TRUE(doomed.ok());
  // Forge damage: remove the vnode via RemoveFile then re-add a dangling
  // entry via MakeMountPoint misuse is not possible through the API, so we
  // instead verify salvage is a no-op on a healthy volume and that it
  // recomputes usage faithfully after heavy churn.
  for (int i = 0; i < 25; ++i) {
    auto f = vol->CreateFile(vol->root(), "churn" + std::to_string(i), home->user, 0644);
    ASSERT_TRUE(f.ok());
    ASSERT_EQ(vol->StoreData(*f, Bytes(1024 + i, 'x')), Status::kOk);
  }
  for (int i = 0; i < 25; i += 2) {
    ASSERT_EQ(vol->RemoveFile(vol->root(), "churn" + std::to_string(i)), Status::kOk);
  }
  auto report = campus_->registry().SalvageVolume(home->volume);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(ToString(*vol->FetchData(*keep)), "survives");
}

TEST_F(AdminTest, HeterogeneousArchitecturesSeeTheirOwnBinaries) {
  // Figure 3-2: on a Sun, /bin -> /vice/unix/sun/bin; on a Vax,
  // /bin -> /vice/unix/vax/bin. Same program name, right binary.
  auto sun_vol = campus_->CreateSystemVolume("sys.sun", "/unix/sun", 0);
  auto vax_vol = campus_->CreateSystemVolume("sys.vax", "/unix/vax", 0);
  ASSERT_TRUE(sun_vol.ok() && vax_vol.ok());
  ASSERT_EQ(campus_->PopulateDirect(*sun_vol, "/bin/cc", ToBytes("sun 68k code")),
            Status::kOk);
  ASSERT_EQ(campus_->PopulateDirect(*vax_vol, "/bin/cc", ToBytes("vax code")),
            Status::kOk);

  auto user = campus_->AddUserWithHome("porter", "pw", 0);
  ASSERT_TRUE(user.ok());

  auto& sun_ws = campus_->workstation(0);  // default arch "sun"
  ASSERT_EQ(sun_ws.LoginWithPassword(user->user, "pw"), Status::kOk);
  EXPECT_EQ(ToString(*sun_ws.ReadWholeFile("/bin/cc")), "sun 68k code");

  // Build a VAX workstation attached to the same campus.
  virtue::WorkstationConfig vax_config;
  vax_config.arch = "vax";
  virtue::Workstation vax_ws(campus_->topology().WorkstationNode(0, 1),
                             &campus_->server_map(), 0, &campus_->network(),
                             campus_->config().cost, vax_config, 777);
  ASSERT_EQ(vax_ws.InstallStandardLayout(), Status::kOk);
  ASSERT_EQ(vax_ws.LoginWithPassword(user->user, "pw"), Status::kOk);
  EXPECT_EQ(ToString(*vax_ws.ReadWholeFile("/bin/cc")), "vax code");
}

TEST_F(AdminTest, VolumeMoveKeepsDataAndBreaksPromises) {
  campus_ = std::make_unique<Campus>(CampusConfig::Revised(2, 2));
  ASSERT_TRUE(campus_->SetupRootVolume().ok());
  auto home = campus_->AddUserWithHome("mover", "pw", 0);
  ASSERT_TRUE(home.ok());
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/mover/f", ToBytes("precious")), Status::kOk);

  const uint64_t breaks_before = ws.venus().stats().callback_breaks_received;
  ASSERT_EQ(campus_->registry().MoveVolume(home->volume, /*new_custodian=*/1),
            Status::kOk);
  // The client heard its promises break...
  EXPECT_GT(ws.venus().stats().callback_breaks_received, breaks_before);
  // ...and transparently follows the new custodian.
  auto data = ws.ReadWholeFile("/vice/usr/mover/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "precious");
  EXPECT_EQ(campus_->server(1).FindVolume(home->volume) != nullptr, true);
}

}  // namespace
}  // namespace itc
