// End-to-end crash-recovery tests: a custodian dies at every crash point of
// every mutating op class while a campus is using it, and after Restart the
// community converges — no torn state, no stale data served off a dead
// callback promise, salvage always clean (Section 3.5: an operation either
// happened entirely or not at all, and the client can tell which by whether
// it saw the reply).

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/campus/campus.h"
#include "src/rpc/interceptor.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;
using rpc::CrashPoint;
using Scheme = venus::VenusConfig::Validation;

class CrashRecoveryTest : public ::testing::TestWithParam<Scheme> {
 protected:
  void SetUp() override {
    CampusConfig config = CampusConfig::Revised(2, 2);
    config.UseValidation(GetParam());
    campus_ = std::make_unique<Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto a = campus_->AddUserWithHome("a", "pw", /*custodian=*/0);
    auto b = campus_->AddUserWithHome("b", "pw", /*custodian=*/1);
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = *a;
    b_ = *b;
  }

  // Crash server 0 via an armed crash point, restart it, and require a clean
  // recovery.
  void RestartServerZero() {
    auto report = campus_->RestartServer(0, campus_->workstation(0).clock().now());
    EXPECT_TRUE(report.clean()) << "replay_failures=" << report.replay_failures;
    EXPECT_TRUE(report.salvage.clean());
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome a_, b_;
};

// One (crash point × op class) cell: arm, attempt the op (it must fail — the
// machine died under it), restart, then check the op is either fully present
// (kBeforeReply: it committed, only the reply was lost) or fully absent.
TEST_P(CrashRecoveryTest, CrashPointMatrixLeavesNoTornState) {
  auto& ws = campus_->workstation(0);
  auto& verifier = campus_->workstation(1);
  ASSERT_EQ(ws.LoginWithPassword(a_.user, "pw"), Status::kOk);
  ASSERT_EQ(verifier.LoginWithPassword(a_.user, "pw"), Status::kOk);

  const std::string dir = "/vice/usr/a";
  ASSERT_EQ(ws.WriteWholeFile(dir + "/seed", ToBytes("old")), Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile(dir + "/victim", ToBytes("bye")), Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile(dir + "/movable", ToBytes("mv")), Status::kOk);

  struct Cell {
    const char* name;
    std::function<Status()> op;
    std::function<void(bool applied)> check;
  };

  int round = 0;
  for (CrashPoint point :
       {CrashPoint::kBeforeLogAppend, CrashPoint::kAfterLogAppend, CrashPoint::kBeforeReply}) {
    const bool applied = point == CrashPoint::kBeforeReply;
    const std::string tag = std::to_string(round++);

    std::vector<Cell> cells;
    cells.push_back({"store", [&] { return ws.WriteWholeFile(dir + "/seed", ToBytes("new" + tag)); },
                     [&, tag](bool ok) {
                       auto got = verifier.ReadWholeFile(dir + "/seed");
                       ASSERT_TRUE(got.ok());
                       EXPECT_EQ(ToString(*got), ok ? "new" + tag : "old");
                       // Re-seed for the next round.
                       ASSERT_EQ(ws.WriteWholeFile(dir + "/seed", ToBytes("old")), Status::kOk);
                     }});
    cells.push_back({"create", [&] { return ws.WriteWholeFile(dir + "/c" + tag, ToBytes("x")); },
                     [&, tag](bool ok) {
                       EXPECT_EQ(verifier.Stat(dir + "/c" + tag).ok(), ok);
                     }});
    cells.push_back({"mkdir", [&] { return ws.MkDir(dir + "/d" + tag); },
                     [&, tag](bool ok) {
                       EXPECT_EQ(verifier.Stat(dir + "/d" + tag).ok(), ok);
                     }});
    cells.push_back({"remove", [&] { return ws.Unlink(dir + "/victim"); },
                     [&](bool ok) {
                       EXPECT_EQ(verifier.Stat(dir + "/victim").ok(), !ok);
                       if (ok) {
                         ASSERT_EQ(ws.WriteWholeFile(dir + "/victim", ToBytes("bye")),
                                   Status::kOk);
                       }
                     }});
    cells.push_back({"rename", [&] { return ws.Rename(dir + "/movable", dir + "/moved" + tag); },
                     [&, tag](bool ok) {
                       EXPECT_EQ(verifier.Stat(dir + "/movable").ok(), !ok);
                       EXPECT_EQ(verifier.Stat(dir + "/moved" + tag).ok(), ok);
                       if (ok) {
                         ASSERT_EQ(ws.Rename(dir + "/moved" + tag, dir + "/movable"),
                                   Status::kOk);
                       }
                     }});

    for (auto& cell : cells) {
      SCOPED_TRACE(std::string(cell.name) + " @point " + tag);
      campus_->server(0).endpoint().fault().ArmCrash(point);
      EXPECT_NE(cell.op(), Status::kOk);  // the machine died under the call
      EXPECT_TRUE(campus_->server(0).crashed());
      RestartServerZero();
      // The verifier must see server truth, not its own cached past.
      verifier.venus().FlushCache();
      cell.check(applied);
    }
  }
}

TEST_P(CrashRecoveryTest, MidStormCrashesConvergeAtEveryPoint) {
  auto& ws_a = campus_->workstation(0);
  auto& ws_b = campus_->workstation(2);
  ASSERT_EQ(ws_a.LoginWithPassword(a_.user, "pw"), Status::kOk);
  ASSERT_EQ(ws_b.LoginWithPassword(b_.user, "pw"), Status::kOk);

  const CrashPoint points[] = {CrashPoint::kBeforeLogAppend, CrashPoint::kAfterLogAppend,
                               CrashPoint::kBeforeReply};
  std::map<std::string, std::string> acked;  // writes the client saw succeed

  for (int i = 0; i < 24; ++i) {
    const std::string fa = "/vice/usr/a/f" + std::to_string(i);
    const std::string fb = "/vice/usr/b/f" + std::to_string(i);
    // Every 8th iteration the custodian of a's volume dies mid-storm, at a
    // rotating crash point.
    if (i % 8 == 4) campus_->server(0).endpoint().fault().ArmCrash(points[(i / 8) % 3]);

    if (ws_a.WriteWholeFile(fa, ToBytes("A" + std::to_string(i))) == Status::kOk) {
      acked[fa] = "A" + std::to_string(i);
    }
    if (campus_->server(0).crashed()) RestartServerZero();
    // Server 1 is never crashed: b's traffic must be entirely untouched.
    ASSERT_EQ(ws_b.WriteWholeFile(fb, ToBytes("B" + std::to_string(i))), Status::kOk);
    acked[fb] = "B" + std::to_string(i);
  }

  // Convergence: every acknowledged write is durable and readable by a fresh
  // cache, on both volumes.
  ws_a.venus().FlushCache();
  ws_b.venus().FlushCache();
  for (const auto& [path, want] : acked) {
    auto ra = ws_a.ReadWholeFile(path);
    ASSERT_TRUE(ra.ok()) << path;
    EXPECT_EQ(ToString(*ra), want) << path;
  }
  // And a final crash/restart cycle finds nothing to salvage.
  campus_->CrashServer(0);
  RestartServerZero();
}

TEST_P(CrashRecoveryTest, SuspectPromisesServeNoStaleData) {
  // Two workstations in cluster 0, both user a. Under every scheme, a
  // restart the client detects (broken connection) must drop whatever trust
  // the scheme kept — callback promise or lease alike.
  auto& writer = campus_->workstation(0);
  auto& reader = campus_->workstation(1);
  ASSERT_EQ(writer.LoginWithPassword(a_.user, "pw"), Status::kOk);
  ASSERT_EQ(reader.LoginWithPassword(a_.user, "pw"), Status::kOk);

  const std::string f = "/vice/usr/a/shared";
  ASSERT_EQ(writer.WriteWholeFile(f, ToBytes("v1")), Status::kOk);
  ASSERT_EQ(ToString(*reader.ReadWholeFile(f)), "v1");  // cached under a promise

  // The custodian dies and comes back: the reader's callback promise died
  // with it, silently.
  campus_->CrashServer(0);
  RestartServerZero();

  // A new version appears. The server holds no promise for the reader, so
  // no break is delivered to it.
  ASSERT_EQ(writer.WriteWholeFile(f, ToBytes("v2")), Status::kOk);

  // The reader touches the server for something unrelated — a scratch-file
  // store must contact the custodian no matter what is cached. The stale
  // pre-crash connection comes back CONNECTION_BROKEN; the re-handshake
  // retry succeeds, and the restart marks every cached entry from that
  // server suspect...
  ASSERT_EQ(reader.WriteWholeFile("/vice/usr/a/scratch", ToBytes("s")), Status::kOk);
  EXPECT_GE(reader.venus().stats().suspect_marks, 1u);

  // ...so the next open revalidates instead of trusting the dead promise,
  // and serves the new contents.
  auto got = reader.ReadWholeFile(f);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "v2");
}

TEST_P(CrashRecoveryTest, EpochProbeDetectsRestartAcrossSessions) {
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(a_.user, "pw"), Status::kOk);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/a/f", ToBytes("x")), Status::kOk);
  const uint64_t marks_before = ws.venus().stats().suspect_marks;
  ws.Logout();

  // The server restarts while this workstation is logged out — no connection
  // existed to break, so only the epoch can carry the news.
  campus_->CrashServer(0);
  RestartServerZero();

  ASSERT_EQ(ws.LoginWithPassword(a_.user, "pw"), Status::kOk);
  if (GetParam() == Scheme::kCallbacks) {
    // Only open-ended promises need the probe.
    EXPECT_GT(ws.venus().stats().suspect_marks, marks_before);
  } else {
    // Check-on-open never trusts; leases lapse on their own — neither pays
    // the probe round trip on every fresh connection.
    EXPECT_EQ(ws.venus().stats().suspect_marks, marks_before);
  }
}

TEST_P(CrashRecoveryTest, RecoveryReportAccountsForRestoredState) {
  auto& ws = campus_->workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(a_.user, "pw"), Status::kOk);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(ws.WriteWholeFile("/vice/usr/a/f" + std::to_string(i),
                                ToBytes(std::string(512, 'x'))),
              Status::kOk);
  }

  campus_->CrashServer(0);
  auto report = campus_->RestartServer(0, ws.clock().now());
  EXPECT_TRUE(report.clean());
  // Server 0 hosts at least the root volume and a's home volume.
  EXPECT_GE(report.volumes_restored, 2u);
  EXPECT_GT(report.recovery_time, 0);
  EXPECT_EQ(campus_->server(0).restart_epoch(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CrashRecoveryTest,
                         ::testing::Values(Scheme::kCheckOnOpen, Scheme::kCallbacks,
                                           Scheme::kLeases),
                         [](const ::testing::TestParamInfo<Scheme>& p) {
                           switch (p.param) {
                             case Scheme::kCheckOnOpen: return "CheckOnOpen";
                             case Scheme::kCallbacks: return "Callbacks";
                             case Scheme::kLeases: return "Leases";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace itc
