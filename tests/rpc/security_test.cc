// Adversarial tests at the transport boundary: what an attacker on the wire
// (or a compromised workstation without keys) can and cannot do.

#include <gtest/gtest.h>

#include "src/crypto/cbc.h"
#include "src/rpc/rpc.h"
#include "src/rpc/wire.h"

namespace itc::rpc {
namespace {

class EchoService : public Service {
 public:
  Result<Bytes> Dispatch(CallContext& ctx, uint32_t proc, const Bytes& request) override {
    (void)ctx;
    (void)proc;
    ++calls;
    return request;
  }
  int calls = 0;
};

class SecurityTest : public ::testing::Test {
 protected:
  static constexpr UserId kUser = 5;

  SecurityTest()
      : topo_(net::TopologyConfig{1, 1, 2}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_),
        key_(crypto::DeriveKeyFromPassword("pw", "realm")),
        server_(topo_.ServerNode(0, 0), &network_, cost_, RpcConfig{},
                [this](UserId u) -> std::optional<crypto::Key> {
                  if (u == kUser) return key_;
                  return std::nullopt;
                },
                42) {
    server_.set_service(&service_);
  }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  crypto::Key key_;
  EchoService service_;
  ServerEndpoint server_;
  sim::Clock clock_;
};

TEST_F(SecurityTest, ForgedCallOnDeadConnectionRejected) {
  // An attacker replays bytes against a connection id that does not exist.
  SimTime completion = 0;
  auto reply = server_.HandleCall(/*conn_id=*/999, topo_.WorkstationNode(0, 0),
                                  Bytes(64, 0x41), /*arrival=*/0, &completion);
  EXPECT_EQ(reply.status(), Status::kConnectionBroken);
  EXPECT_EQ(service_.calls, 0);
}

TEST_F(SecurityTest, GarbageOnLiveConnectionDetected) {
  auto conn = ClientConnection::Connect(topo_.WorkstationNode(0, 0), kUser, key_,
                                        &server_, &network_, cost_, &clock_, 7);
  ASSERT_TRUE(conn.ok());
  // A legitimate call works...
  ASSERT_TRUE((*conn)->Call(1, ToBytes("real")).ok());
  const int calls_before = service_.calls;
  // ...but injected garbage on the same connection id (1) never reaches the
  // service: the sealed-envelope integrity check rejects it.
  SimTime completion = 0;
  auto forged = server_.HandleCall(1, topo_.WorkstationNode(0, 1), Bytes(48, 0x5a), 0,
                                   &completion);
  EXPECT_EQ(forged.status(), Status::kTamperDetected);
  EXPECT_EQ(service_.calls, calls_before);
}

TEST_F(SecurityTest, ReplayedCiphertextFromOtherSessionRejected) {
  // Record a sealed request under session A, then try to replay it on
  // session B: different session keys make it undecipherable.
  auto conn_a = ClientConnection::Connect(topo_.WorkstationNode(0, 0), kUser, key_,
                                          &server_, &network_, cost_, &clock_, 11);
  auto conn_b = ClientConnection::Connect(topo_.WorkstationNode(0, 1), kUser, key_,
                                          &server_, &network_, cost_, &clock_, 22);
  ASSERT_TRUE(conn_a.ok() && conn_b.ok());

  // Reconstruct what a wiretapper would capture from session A: a sealed
  // frame under A's session key (we build one with the same primitive).
  crypto::SessionSecret fake_secret{crypto::DeriveSubKey(key_, 123), 123};
  Writer w;
  w.PutU32(1);
  Bytes framed = w.Take();
  Bytes captured = crypto::Seal(fake_secret.session_key, framed, 1);

  const int calls_before = service_.calls;
  SimTime completion = 0;
  // Replay against session B's connection id (2).
  auto replayed = server_.HandleCall(2, topo_.WorkstationNode(0, 1), captured, 0,
                                     &completion);
  EXPECT_EQ(replayed.status(), Status::kTamperDetected);
  EXPECT_EQ(service_.calls, calls_before);
}

TEST_F(SecurityTest, SealedRequestLeaksNothingOnTheWire) {
  const std::string secret = "SSN 000-11-2222 do not leak";
  const auto session = crypto::DeriveSubKey(key_, 9);
  const Bytes sealed = crypto::Seal(session, ToBytes(secret), 4);
  const std::string wire(sealed.begin(), sealed.end());
  EXPECT_EQ(wire.find("SSN"), std::string::npos);
  EXPECT_EQ(wire.find("leak"), std::string::npos);
}

TEST_F(SecurityTest, SessionKeysDifferAcrossConnections) {
  // Two logins by the same user must not share a session key: recorded
  // traffic from one session is useless against another. (Verified
  // indirectly: the same plaintext sealed under each connection's traffic
  // differs, and cross-session replay above fails.)
  auto c1 = ClientConnection::Connect(topo_.WorkstationNode(0, 0), kUser, key_, &server_,
                                      &network_, cost_, &clock_, 100);
  auto c2 = ClientConnection::Connect(topo_.WorkstationNode(0, 0), kUser, key_, &server_,
                                      &network_, cost_, &clock_, 200);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto r1 = (*c1)->Call(1, ToBytes("same payload"));
  auto r2 = (*c2)->Call(1, ToBytes("same payload"));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(*r1, *r2);  // same plaintext result, different wire traffic
}

}  // namespace
}  // namespace itc::rpc
