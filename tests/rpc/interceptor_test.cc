// Tests for the RPC interceptor chain: per-op tracing into CallStats, the
// client-stub retry/deadline interceptors (§3.5.3 — idempotent ops only are
// resent; mutators run at most once), and seeded server-side fault injection.

#include "src/rpc/interceptor.h"

#include <gtest/gtest.h>

#include "src/campus/campus.h"
#include "src/rpc/op_registry.h"
#include "src/rpc/rpc.h"
#include "src/rpc/wire.h"
#include "src/vice/protocol.h"

namespace itc::rpc {
namespace {

// --- LatencyHistogram --------------------------------------------------------

TEST(LatencyHistogramTest, RecordsAndSummarizes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);

  h.Record(100);
  h.Record(200);
  h.Record(400);
  h.Record(Millis(10));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), Millis(10));
  EXPECT_EQ(h.sum(), 100 + 200 + 400 + Millis(10));
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(h.sum()) / 4.0);
  // p100 lands in the top bucket, clamped to the observed max.
  EXPECT_EQ(h.Percentile(1.0), Millis(10));
  // With 4 samples p99 has rank 3, so it reports the 400-sample's bucket edge.
  EXPECT_GE(h.Percentile(0.99), 400);
  EXPECT_LT(h.Percentile(0.99), Millis(10));
  // p50 is bounded by its bucket's upper edge, never below the sample.
  EXPECT_GE(h.Percentile(0.5), 200);
  EXPECT_LT(h.Percentile(0.5), 400);
}

TEST(LatencyHistogramTest, MergeCombines) {
  LatencyHistogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

// --- Op schema / registry ----------------------------------------------------

TEST(OpSchemaTest, ViceSchemaLookup) {
  const OpSchema& schema = vice::ViceOpSchema();
  EXPECT_EQ(schema.ops().size(), 27u);
  const OpSpec* fetch = schema.Find(static_cast<uint32_t>(vice::Proc::kFetch));
  ASSERT_NE(fetch, nullptr);
  const OpSpec* grant = schema.Find(static_cast<uint32_t>(vice::Proc::kGrantLease));
  ASSERT_NE(grant, nullptr);
  EXPECT_EQ(grant->name, "GrantLease");
  EXPECT_EQ(fetch->name, "Fetch");
  EXPECT_EQ(fetch->call_class, CallClass::kFetch);
  EXPECT_TRUE(fetch->idempotent);
  const OpSpec* store = schema.Find(static_cast<uint32_t>(vice::Proc::kStore));
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(store->idempotent);
  EXPECT_EQ(schema.Find(9999), nullptr);
}

TEST(OpRegistryTest, UnknownAndUnboundOpcodesAreProtocolErrors) {
  static const OpSchema schema("toy", {{1, "Ping"}, {2, "Unbound"}});
  OpRegistry registry(&schema);
  registry.Bind(1, [](CallContext&, const Bytes& req) -> Result<Bytes> { return req; });

  CallContext ctx(1, 0, 0);
  EXPECT_TRUE(registry.Dispatch(ctx, 1, Bytes{}).ok());
  EXPECT_EQ(registry.Dispatch(ctx, 2, Bytes{}).status(), Status::kProtocolError);
  EXPECT_EQ(registry.Dispatch(ctx, 42, Bytes{}).status(), Status::kProtocolError);
}

TEST(OpRegistryTest, RenderOpTableShape) {
  const std::string table = RenderOpTable(vice::ViceOpSchema());
  EXPECT_NE(table.find("| proc | name | class | idempotent |"), std::string::npos);
  EXPECT_NE(table.find("| 10 | Fetch | fetch | yes |"), std::string::npos);
  EXPECT_NE(table.find("| 13 | Store | store | no |"), std::string::npos);
}

// --- End-to-end: campus-level stats -----------------------------------------

class InterceptorCampusTest : public ::testing::Test {
 protected:
  void Build(campus::CampusConfig config) {
    campus_ = std::make_unique<campus::Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("u", "pw", 0);
    ASSERT_TRUE(home.ok());
    home_ = *home;
    ws_ = &campus_->workstation(0);
    ASSERT_EQ(ws_->LoginWithPassword(home_.user, "pw"), Status::kOk);
  }

  std::unique_ptr<campus::Campus> campus_;
  campus::Campus::UserHome home_;
  virtue::Workstation* ws_ = nullptr;
};

TEST_F(InterceptorCampusTest, ServerCallStatsPopulatedAndAggregated) {
  Build(campus::CampusConfig::Revised(1, 1));
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/u/f", ToBytes("data")), Status::kOk);
  ws_->venus().FlushCache();
  ASSERT_TRUE(ws_->ReadWholeFile("/vice/usr/u/f").ok());

  const CallStats total = campus_->TotalCallStats();
  EXPECT_GT(total.total_calls(), 0u);
  const OpStats* fetch = total.Find(static_cast<uint32_t>(vice::Proc::kFetch));
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->name, "Fetch");
  EXPECT_GE(fetch->calls, 1u);
  EXPECT_GT(fetch->bytes_out, 0u);
  EXPECT_GT(fetch->latency.max(), 0);

  // The class collapse agrees with the per-server histogram path.
  EXPECT_EQ(campus_->TotalCallHistogram(), campus_->server(0).CallHistogram());
  EXPECT_EQ(campus_->TotalCalls(), campus_->server(0).total_calls());

  // The client stub records its own view, including round-trip latencies.
  const CallStats& client = ws_->venus().call_stats();
  EXPECT_GT(client.total_calls(), 0u);
  ASSERT_NE(client.Find(static_cast<uint32_t>(vice::Proc::kFetch)), nullptr);

  campus_->ResetAllStats();
  EXPECT_EQ(campus_->TotalCalls(), 0u);
  EXPECT_EQ(ws_->venus().call_stats().total_calls(), 0u);
}

TEST_F(InterceptorCampusTest, DroppedFetchReplyIsRetriedTransparently) {
  auto config = campus::CampusConfig::Revised(1, 1);
  config.rpc.retry.max_retries = 2;
  Build(config);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/u/f", ToBytes("survives")), Status::kOk);
  ws_->venus().FlushCache();

  auto& endpoint = campus_->server(0).endpoint();
  endpoint.ResetStats();
  endpoint.fault().DropNextReplies(1, CallClass::kFetch);

  // The fetch's reply is lost; the stub retries the idempotent op and the
  // read succeeds without the application seeing anything.
  auto data = ws_->ReadWholeFile("/vice/usr/u/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "survives");

  const OpStats* fetch =
      endpoint.call_stats().Find(static_cast<uint32_t>(vice::Proc::kFetch));
  ASSERT_NE(fetch, nullptr);
  EXPECT_GE(fetch->calls, 2u);  // the dropped attempt plus the retry
  EXPECT_GE(fetch->errors, 1u);
}

TEST_F(InterceptorCampusTest, StoreIsNeverBlindlyRetried) {
  auto config = campus::CampusConfig::Revised(1, 1);
  config.rpc.retry.max_retries = 2;
  Build(config);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/u/f", ToBytes("v1")), Status::kOk);

  auto& endpoint = campus_->server(0).endpoint();
  endpoint.ResetStats();
  endpoint.fault().DropNextReplies(1, CallClass::kStore);

  // The store executes server-side but its reply is lost. At-most-once: the
  // stub must NOT resend a non-idempotent op; the failure surfaces.
  EXPECT_EQ(ws_->WriteWholeFile("/vice/usr/u/f", ToBytes("v2")),
            Status::kUnavailable);

  const OpStats* store =
      endpoint.call_stats().Find(static_cast<uint32_t>(vice::Proc::kStore));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->calls, 1u);  // executed exactly once, never resent
}

TEST_F(InterceptorCampusTest, SeededFaultInjectionByClass) {
  Build(campus::CampusConfig::Revised(1, 1));
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/u/f", ToBytes("x")), Status::kOk);
  ws_->venus().FlushCache();

  // Every store is answered with the fault; fetches (including the directory
  // fetches path resolution needs) are untouched.
  FaultConfig fault;
  fault.error_probability = 1.0;
  fault.error = Status::kTimedOut;
  fault.only_class = CallClass::kStore;
  campus_->server(0).endpoint().fault().set_config(fault);

  EXPECT_TRUE(ws_->ReadWholeFile("/vice/usr/u/f").ok());
  EXPECT_EQ(ws_->WriteWholeFile("/vice/usr/u/f", ToBytes("y")), Status::kTimedOut);

  // Lifting the fault restores normal service.
  campus_->server(0).endpoint().fault().set_config(FaultConfig{});
  EXPECT_EQ(ws_->WriteWholeFile("/vice/usr/u/f", ToBytes("y")), Status::kOk);
}

TEST_F(InterceptorCampusTest, FailAllBlocksHandshake) {
  Build(campus::CampusConfig::Revised(1, 1));
  campus_->server(0).endpoint().fault().set_fail_all(true);
  ws_->Logout();
  EXPECT_EQ(ws_->LoginWithPassword(home_.user, "pw"), Status::kUnavailable);
  campus_->server(0).endpoint().fault().set_fail_all(false);
  EXPECT_EQ(ws_->LoginWithPassword(home_.user, "pw"), Status::kOk);
}

// --- Deadline ---------------------------------------------------------------

// Slow echo: proc 2 charges 500ms of server CPU.
class SlowEchoService : public Service {
 public:
  Result<Bytes> Dispatch(CallContext& ctx, uint32_t proc, const Bytes& request) override {
    if (proc == 2) ctx.ChargeCpu(Millis(500));
    return request;
  }
};

TEST(DeadlineTest, SlowCallTimesOut) {
  net::Topology topo(net::TopologyConfig{1, 1, 2});
  const sim::CostModel cost = sim::CostModel::Default1985();
  net::Network network(topo, cost);
  const crypto::Key key = crypto::DeriveKeyFromPassword("pw", "realm");
  SlowEchoService service;

  // A bare round trip costs ~18ms under the 1985 model (2 x 4ms network plus
  // 10ms of server CPU per call); 100ms comfortably admits it while catching
  // the 500ms op.
  RpcConfig config;
  config.call_deadline = Millis(100);
  ServerEndpoint server(
      topo.ServerNode(0, 0), &network, cost, config,
      [&key](UserId) -> std::optional<crypto::Key> { return key; }, 999);
  server.set_service(&service);

  sim::Clock clock;
  auto conn = ClientConnection::Connect(topo.WorkstationNode(0, 0), 7, key, &server,
                                        &network, cost, &clock, 555);
  ASSERT_TRUE(conn.ok());

  // A fast call fits inside the deadline...
  EXPECT_TRUE((*conn)->Call(1, ToBytes("quick")).ok());
  // ...the 500ms one does not.
  EXPECT_EQ((*conn)->Call(2, ToBytes("slow")).status(), Status::kTimedOut);
}

TEST(FailCallsTest, SkipsThenFailsExactlyCountCalls) {
  net::Topology topo(net::TopologyConfig{1, 1, 2});
  const sim::CostModel cost = sim::CostModel::Default1985();
  net::Network network(topo, cost);
  const crypto::Key key = crypto::DeriveKeyFromPassword("pw", "realm");
  SlowEchoService service;

  ServerEndpoint server(
      topo.ServerNode(0, 0), &network, cost, RpcConfig{},
      [&key](UserId) -> std::optional<crypto::Key> { return key; }, 999);
  server.set_service(&service);

  sim::Clock clock;
  auto conn = ClientConnection::Connect(topo.WorkstationNode(0, 0), 7, key, &server,
                                        &network, cost, &clock, 555);
  ASSERT_TRUE(conn.ok());

  // Skip 2, fail 1 with a chosen status, then clear: calls 1-2 succeed,
  // call 3 fails with exactly that status, call 4 succeeds again.
  server.fault().FailCalls(/*skip=*/2, /*count=*/1, Status::kConnectionBroken);
  EXPECT_TRUE((*conn)->Call(1, ToBytes("a")).ok());
  EXPECT_TRUE((*conn)->Call(1, ToBytes("b")).ok());
  EXPECT_EQ((*conn)->Call(1, ToBytes("c")).status(), Status::kConnectionBroken);
  EXPECT_TRUE((*conn)->Call(1, ToBytes("d")).ok());
}

}  // namespace
}  // namespace itc::rpc
