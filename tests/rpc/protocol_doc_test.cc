// Guards docs/PROTOCOL.md against drift: the opcode tables embedded between
// BEGIN/END GENERATED markers must match RenderOpTable() over the live op
// schemas. On mismatch the test prints the expected block — paste it into the
// document to regenerate.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/protection/protection_rpc.h"
#include "src/rpc/op_registry.h"
#include "src/vice/protocol.h"

namespace itc {
namespace {

std::string ReadProtocolDoc() {
  const std::string path = std::string(ITC_SOURCE_DIR) + "/docs/PROTOCOL.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The text between "<!-- BEGIN GENERATED: tag -->\n" and
// "<!-- END GENERATED: tag -->".
std::string ExtractBlock(const std::string& doc, const std::string& tag) {
  const std::string begin = "<!-- BEGIN GENERATED: " + tag + " -->\n";
  const std::string end = "<!-- END GENERATED: " + tag + " -->";
  const size_t b = doc.find(begin);
  if (b == std::string::npos) return "";
  const size_t start = b + begin.size();
  const size_t e = doc.find(end, start);
  if (e == std::string::npos) return "";
  return doc.substr(start, e - start);
}

TEST(ProtocolDocTest, ViceOpTableMatchesSchema) {
  const std::string expected = rpc::RenderOpTable(vice::ViceOpSchema());
  const std::string actual = ExtractBlock(ReadProtocolDoc(), "vice-op-table");
  EXPECT_EQ(actual, expected)
      << "docs/PROTOCOL.md vice-op-table is stale; regenerate it with:\n"
      << expected;
}

TEST(ProtocolDocTest, ProtectionOpTableMatchesSchema) {
  const std::string expected = rpc::RenderOpTable(protection::ProtectionOpSchema());
  const std::string actual = ExtractBlock(ReadProtocolDoc(), "protection-op-table");
  EXPECT_EQ(actual, expected)
      << "docs/PROTOCOL.md protection-op-table is stale; regenerate it with:\n"
      << expected;
}

}  // namespace
}  // namespace itc
