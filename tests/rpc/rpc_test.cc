// Unit tests for the RPC package: wire format, authenticated encrypted
// connections, timing behaviour of the two transports and server structures.

#include "src/rpc/rpc.h"

#include <gtest/gtest.h>

#include "src/crypto/cbc.h"
#include "src/rpc/wire.h"

namespace itc::rpc {
namespace {

// --- Wire format -------------------------------------------------------------

TEST(WireTest, RoundTripsAllTypes) {
  Writer w;
  w.PutU8(7);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutString("hello");
  w.PutBytes(Bytes{1, 2, 3});
  w.PutFid(Fid{9, 8, 7});
  w.PutStatus(Status::kQuotaExceeded);
  const Bytes buf = w.Take();

  Reader r(buf);
  EXPECT_EQ(*r.U8(), 7u);
  EXPECT_EQ(*r.U32(), 0xdeadbeefu);
  EXPECT_EQ(*r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(*r.I64(), -42);
  EXPECT_EQ(*r.Bool(), true);
  EXPECT_EQ(*r.String(), "hello");
  EXPECT_EQ(*r.BytesField(), (Bytes{1, 2, 3}));
  EXPECT_EQ(*r.FidField(), (Fid{9, 8, 7}));
  Status st = Status::kOk;
  EXPECT_EQ(r.ReadStatus(&st), Status::kOk);
  EXPECT_EQ(st, Status::kQuotaExceeded);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedBufferFails) {
  Writer w;
  w.PutU64(1);
  Bytes buf = w.Take();
  buf.resize(4);
  Reader r(buf);
  EXPECT_EQ(r.U64().status(), Status::kProtocolError);
}

TEST(WireTest, OversizedStringLengthFails) {
  Writer w;
  w.PutU32(1000);  // claims 1000 bytes follow; none do
  Reader r(w.Take());
  // First read the length back out as a string header.
  Bytes buf;
  {
    Writer w2;
    w2.PutU32(1000);
    buf = w2.Take();
  }
  Reader r2(buf);
  EXPECT_EQ(r2.String().status(), Status::kProtocolError);
}

// --- End-to-end RPC -----------------------------------------------------------

// Echo service: returns the request, optionally charging resources.
class EchoService : public Service {
 public:
  Result<Bytes> Dispatch(CallContext& ctx, uint32_t proc, const Bytes& request) override {
    last_user = ctx.user();
    last_proc = proc;
    if (proc == 2) ctx.ChargeCpu(Millis(100));
    if (proc == 3) ctx.ChargeDisk(64 * 1024);
    return request;
  }
  UserId last_user = kAnonymousUser;
  uint32_t last_proc = 0;
};

class RpcTest : public ::testing::Test {
 protected:
  static constexpr UserId kUser = 77;

  RpcTest()
      : topo_(net::TopologyConfig{1, 1, 2}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_),
        user_key_(crypto::DeriveKeyFromPassword("pw", "realm")) {}

  std::unique_ptr<ServerEndpoint> MakeServer(RpcConfig config) {
    auto lookup = [this](UserId u) -> std::optional<crypto::Key> {
      if (u == kUser) return user_key_;
      return std::nullopt;
    };
    auto server = std::make_unique<ServerEndpoint>(topo_.ServerNode(0, 0), &network_,
                                                   cost_, config, lookup, 999);
    server->set_service(&service_);
    return server;
  }

  Result<std::unique_ptr<ClientConnection>> Connect(ServerEndpoint* server,
                                                    UserId user = kUser) {
    return ClientConnection::Connect(topo_.WorkstationNode(0, 0), user, user_key_, server,
                                     &network_, cost_, &clock_, 555);
  }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  crypto::Key user_key_;
  EchoService service_;
  sim::Clock clock_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  auto server = MakeServer(RpcConfig{});
  auto conn = Connect(server.get());
  ASSERT_TRUE(conn.ok());
  const Bytes payload = ToBytes("ping");
  auto reply = (*conn)->Call(1, payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, payload);
  EXPECT_EQ(service_.last_user, kUser);
  EXPECT_EQ(service_.last_proc, 1u);
  EXPECT_EQ(server->stats().calls, 1u);
}

TEST_F(RpcTest, HandshakeAdvancesClock) {
  auto server = MakeServer(RpcConfig{});
  const SimTime before = clock_.now();
  auto conn = Connect(server.get());
  ASSERT_TRUE(conn.ok());
  // Four network legs + two server dispatches cannot be free.
  EXPECT_GT(clock_.now(), before);
  EXPECT_EQ(server->stats().handshakes, 1u);
}

TEST_F(RpcTest, UnknownUserFailsAuth) {
  auto server = MakeServer(RpcConfig{});
  auto conn = Connect(server.get(), /*user=*/12345);
  EXPECT_EQ(conn.status(), Status::kAuthFailed);
  EXPECT_EQ(server->stats().auth_failures, 1u);
}

TEST_F(RpcTest, CallAdvancesClockAndChargesServer) {
  auto server = MakeServer(RpcConfig{});
  auto conn = Connect(server.get());
  ASSERT_TRUE(conn.ok());
  const SimTime t0 = clock_.now();
  const SimTime cpu0 = server->cpu().busy_time();
  ASSERT_TRUE((*conn)->Call(2, ToBytes("work")).ok());  // charges 100 ms CPU
  EXPECT_GT(clock_.now() - t0, Millis(100));
  EXPECT_GT(server->cpu().busy_time() - cpu0, Millis(100));
}

TEST_F(RpcTest, DiskChargeSerializesAfterCpu) {
  auto server = MakeServer(RpcConfig{});
  auto conn = Connect(server.get());
  ASSERT_TRUE(conn.ok());
  const SimTime disk0 = server->disk().busy_time();
  ASSERT_TRUE((*conn)->Call(3, ToBytes("io")).ok());  // charges 64 KB disk
  EXPECT_GE(server->disk().busy_time() - disk0, cost_.disk_seek);
}

TEST_F(RpcTest, ProcessPerClientCostsMoreThanLwp) {
  RpcConfig proc_cfg;
  proc_cfg.server_structure = ServerStructure::kProcessPerClient;
  RpcConfig lwp_cfg;
  lwp_cfg.server_structure = ServerStructure::kLwp;

  auto proc_server = MakeServer(proc_cfg);
  auto lwp_server = MakeServer(lwp_cfg);

  sim::Clock c1, c2;
  auto conn1 = ClientConnection::Connect(topo_.WorkstationNode(0, 0), kUser, user_key_,
                                         proc_server.get(), &network_, cost_, &c1, 1);
  auto conn2 = ClientConnection::Connect(topo_.WorkstationNode(0, 1), kUser, user_key_,
                                         lwp_server.get(), &network_, cost_, &c2, 2);
  ASSERT_TRUE(conn1.ok() && conn2.ok());

  const SimTime cpu_before1 = proc_server->cpu().busy_time();
  const SimTime cpu_before2 = lwp_server->cpu().busy_time();
  ASSERT_TRUE((*conn1)->Call(1, ToBytes("x")).ok());
  ASSERT_TRUE((*conn2)->Call(1, ToBytes("x")).ok());
  const SimTime proc_cost = proc_server->cpu().busy_time() - cpu_before1;
  const SimTime lwp_cost = lwp_server->cpu().busy_time() - cpu_before2;
  EXPECT_GT(proc_cost, lwp_cost);
  EXPECT_GE(proc_cost - lwp_cost,
            cost_.server_context_switch - cost_.server_lwp_switch);
}

TEST_F(RpcTest, StreamTransportSlowerThanDatagram) {
  RpcConfig stream_cfg;
  stream_cfg.transport = Transport::kStream;
  RpcConfig dgram_cfg;
  dgram_cfg.transport = Transport::kDatagram;

  auto stream_server = MakeServer(stream_cfg);
  auto dgram_server = MakeServer(dgram_cfg);

  sim::Clock c1, c2;
  auto conn1 = ClientConnection::Connect(topo_.WorkstationNode(0, 0), kUser, user_key_,
                                         stream_server.get(), &network_, cost_, &c1, 1);
  auto conn2 = ClientConnection::Connect(topo_.WorkstationNode(0, 1), kUser, user_key_,
                                         dgram_server.get(), &network_, cost_, &c2, 2);
  ASSERT_TRUE(conn1.ok() && conn2.ok());

  const SimTime t1 = c1.now();
  const SimTime t2 = c2.now();
  ASSERT_TRUE((*conn1)->Call(1, ToBytes("x")).ok());
  ASSERT_TRUE((*conn2)->Call(1, ToBytes("x")).ok());
  EXPECT_GT(c1.now() - t1, c2.now() - t2);
}

TEST_F(RpcTest, EncryptionCanBeDisabledForAblation) {
  RpcConfig plain;
  plain.encrypt = false;
  auto server = MakeServer(plain);
  auto conn = Connect(server.get());
  ASSERT_TRUE(conn.ok());
  auto reply = (*conn)->Call(1, ToBytes("clear"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ToString(*reply), "clear");
}

TEST_F(RpcTest, ClosedConnectionRemovedFromServer) {
  auto server = MakeServer(RpcConfig{});
  {
    auto conn = Connect(server.get());
    ASSERT_TRUE(conn.ok());
  }  // destructor closes
  // A second connection still works; stale state is gone.
  auto conn2 = Connect(server.get());
  ASSERT_TRUE(conn2.ok());
  ASSERT_TRUE((*conn2)->Call(1, ToBytes("y")).ok());
}

TEST_F(RpcTest, WholeFileSideEffectMovesBigPayloads) {
  auto server = MakeServer(RpcConfig{});
  auto conn = Connect(server.get());
  ASSERT_TRUE(conn.ok());
  Bytes big(256 * 1024, 0x5a);
  const SimTime t0 = clock_.now();
  auto reply = (*conn)->Call(1, big);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->size(), big.size());
  // 512 KB over a 10 Mbit/s LAN (both directions) takes at least ~400 ms.
  EXPECT_GT(clock_.now() - t0, Millis(400));
}

}  // namespace
}  // namespace itc::rpc
