#include "src/common/rng.h"

#include <gtest/gtest.h>

namespace itc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ForkIndependentAndDeterministic) {
  Rng parent(99);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  Rng c1_again = Rng(99).Fork(1);
  EXPECT_EQ(c1.NextU64(), c1_again.NextU64());
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

}  // namespace
}  // namespace itc
