#include "src/common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace itc {
namespace {

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::kInvalidArgument;
  return v;
}

Result<std::string> Doubled(int v) {
  ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return std::to_string(parsed * 2);
}

Status CheckAll(int a, int b) {
  RETURN_IF_ERROR(ParsePositive(a).status());
  RETURN_IF_ERROR(ParsePositive(b).status());
  return Status::kOk;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::kOk);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::kNotFound;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kNotFound);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Result<int>(7).value_or(1), 7);
  EXPECT_EQ(Result<int>(Status::kNotFound).value_or(1), 1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(-1).status(), Status::kInvalidArgument);
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "42");
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(CheckAll(1, 2), Status::kOk);
  EXPECT_EQ(CheckAll(-1, 2), Status::kInvalidArgument);
  EXPECT_EQ(CheckAll(1, -2), Status::kInvalidArgument);
}

TEST(StatusTest, NamesAreStable) {
  EXPECT_EQ(StatusName(Status::kOk), "OK");
  EXPECT_EQ(StatusName(Status::kNotCustodian), "NOT_CUSTODIAN");
  EXPECT_EQ(StatusName(Status::kTamperDetected), "TAMPER_DETECTED");
  EXPECT_EQ(StatusName(Status::kQuotaExceeded), "QUOTA_EXCEEDED");
}

}  // namespace
}  // namespace itc
