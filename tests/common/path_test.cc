#include "src/common/path.h"

#include <gtest/gtest.h>

namespace itc {
namespace {

TEST(SplitPathTest, Basic) {
  EXPECT_EQ(SplitPath("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitPath("a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPath("/"), (std::vector<std::string>{}));
  EXPECT_EQ(SplitPath(""), (std::vector<std::string>{}));
}

TEST(SplitPathTest, CollapsesDuplicateSlashes) {
  EXPECT_EQ(SplitPath("//a///b//"), (std::vector<std::string>{"a", "b"}));
}

TEST(JoinPathTest, Basic) {
  EXPECT_EQ(JoinPath({"a", "b"}), "/a/b");
  EXPECT_EQ(JoinPath({}), "/");
}

TEST(JoinPathTest, RoundTripsWithSplit) {
  for (const char* p : {"/a", "/a/b/c", "/x/y/z/w"}) {
    EXPECT_EQ(JoinPath(SplitPath(p)), p);
  }
}

TEST(PathConcatTest, HandlesSlashes) {
  EXPECT_EQ(PathConcat("/a", "b"), "/a/b");
  EXPECT_EQ(PathConcat("/a/", "/b"), "/a/b");
  EXPECT_EQ(PathConcat("/a//", "//b/c"), "/a/b/c");
  EXPECT_EQ(PathConcat("", "b"), "/b");
}

TEST(PathHasPrefixTest, Matches) {
  EXPECT_TRUE(PathHasPrefix("/a/b", "/a"));
  EXPECT_TRUE(PathHasPrefix("/a", "/a"));
  EXPECT_TRUE(PathHasPrefix("/a/b", "/"));
  EXPECT_FALSE(PathHasPrefix("/ab", "/a"));
  EXPECT_FALSE(PathHasPrefix("/a", "/a/b"));
}

TEST(BasenameDirnameTest, Basic) {
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/a"), "a");
  EXPECT_EQ(Basename("/"), "");
  EXPECT_EQ(Dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(Dirname("/a"), "/");
  EXPECT_EQ(Dirname("/"), "/");
}

TEST(BasenameDirnameTest, TrailingSlashes) {
  EXPECT_EQ(Basename("/a/b/"), "b");
  EXPECT_EQ(Dirname("/a/b/"), "/a");
}

TEST(IsValidNameTest, AcceptsOrdinaryNames) {
  EXPECT_TRUE(IsValidName("foo"));
  EXPECT_TRUE(IsValidName("a.b-c_d"));
  EXPECT_TRUE(IsValidName(std::string(kMaxNameLength, 'x')));
}

TEST(IsValidNameTest, RejectsBadNames) {
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("."));
  EXPECT_FALSE(IsValidName(".."));
  EXPECT_FALSE(IsValidName("a/b"));
  EXPECT_FALSE(IsValidName(std::string(kMaxNameLength + 1, 'x')));
}

}  // namespace
}  // namespace itc
