// Unit tests for the lazy generative content representation: phase
// compatibility with the legacy workload byte generator, canonicalization
// round-trips, slicing, byte equality across representations, and the
// content-addressed interning tables.

#include "src/common/content.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/rng.h"
#include "src/workload/source_tree.h"

namespace itc::content {
namespace {

// RAII guard so a test that flips the canonicalization hook cannot leak the
// disabled state into later tests.
struct CanonGuard {
  explicit CanonGuard(bool enabled) { SetCanonicalizationEnabled(enabled); }
  ~CanonGuard() { SetCanonicalizationEnabled(true); }
};

TEST(ContentRef, ForSeedMatchesLegacyByteGenerator) {
  // A ref's bytes must equal the pre-diet SynthesizeContents stream: byte i
  // is kAlphabet[(i + phase) % kPeriod] with the phase drawn from the seed.
  for (uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    const uint64_t size = 1000 + seed % 7777;
    const Ref ref = Ref::ForSeed(seed, size);
    EXPECT_EQ(ref.size(), size);
    EXPECT_EQ(ref.phase(), Rng(seed).Below(kPeriod));
    const Bytes got = ref.Materialize();
    ASSERT_EQ(got.size(), size);
    for (uint64_t i = 0; i < size; ++i) {
      ASSERT_EQ(got[i], static_cast<uint8_t>(kAlphabet[(i + ref.phase()) % kPeriod]))
          << "seed " << seed << " byte " << i;
    }
    EXPECT_EQ(got, workload::SynthesizeContents(seed, size));
  }
}

TEST(ContentRef, CanonicalizeRecoversGenerativeRepresentation) {
  const Ref ref = Ref::ForSeed(7, 4096);
  const Ref round = Ref::Canonicalize(ref.Materialize());
  EXPECT_EQ(round.phase(), ref.phase());
  EXPECT_EQ(round.gen_len(), ref.gen_len());
  EXPECT_EQ(round.tail(), nullptr);  // fully recognized: no retained buffer
  EXPECT_TRUE(round.SameContent(ref));
  std::unordered_set<const void*> seen;
  EXPECT_EQ(round.RetainedBytes(&seen), 0u);
}

TEST(ContentRef, CanonicalizeSplitsPrefixAndLiteralTail) {
  Bytes data = Ref::ForSeed(3, 500).Materialize();
  const Bytes literal = ToBytes("\x01\x02literal tail that matches no phase\xff");
  data.insert(data.end(), literal.begin(), literal.end());

  const Ref ref = Ref::Canonicalize(Bytes(data));
  EXPECT_GE(ref.gen_len(), kMinGenerativePrefix);
  EXPECT_EQ(ref.size(), data.size());
  ASSERT_NE(ref.tail(), nullptr);
  EXPECT_LT(ref.tail()->size(), data.size());
  EXPECT_EQ(ref.Materialize(), data);
}

TEST(ContentRef, ShortOrForeignBytesStayInline) {
  // Shorter than one alphabet period: kept literal even if it matches.
  const Bytes short_gen = Ref::ForSeed(9, kMinGenerativePrefix - 1).Materialize();
  EXPECT_EQ(Ref::Canonicalize(Bytes(short_gen)).gen_len(), 0u);

  // Bytes that match no phase: kept literal, byte-identical round trip.
  const Bytes foreign = ToBytes("\xff\xfe\xfd completely unlike the alphabet");
  const Ref ref = Ref::Canonicalize(Bytes(foreign));
  EXPECT_EQ(ref.gen_len(), 0u);
  EXPECT_EQ(ref.Materialize(), foreign);
}

TEST(ContentRef, SliceMatchesMaterializeAtEveryOffset) {
  Bytes data = Ref::ForSeed(11, 300).Materialize();
  const Bytes literal = ToBytes("\x01\x02\x03opaque-tail-bytes\x7f");
  data.insert(data.end(), literal.begin(), literal.end());
  const Ref ref = Ref::Canonicalize(Bytes(data));
  ASSERT_EQ(ref.Materialize(), data);

  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const uint64_t off = rng.Below(data.size() + 10);
    const uint64_t n = rng.Below(data.size() + 10);
    const Bytes slice = ref.Slice(off, n);
    const uint64_t want = off >= data.size() ? 0 : std::min(n, data.size() - off);
    ASSERT_EQ(slice.size(), want);
    for (uint64_t j = 0; j < want; ++j) ASSERT_EQ(slice[j], data[off + j]);
  }
}

TEST(ContentRef, SameContentAcrossRepresentations) {
  const Ref gen = Ref::ForSeed(5, 2048);
  const Ref inline_copy = Ref::Inline(gen.Materialize());  // never phase-matched
  EXPECT_EQ(inline_copy.gen_len(), 0u);
  EXPECT_TRUE(gen.SameContent(inline_copy));
  EXPECT_TRUE(inline_copy.SameContent(gen));

  Bytes other = gen.Materialize();
  other[100] ^= 0x40;
  EXPECT_FALSE(gen.SameContent(Ref::Inline(std::move(other))));
  EXPECT_FALSE(gen.SameContent(Ref::ForSeed(5, 2047)));  // size mismatch
}

TEST(ContentRef, DisabledCanonicalizationKeepsEverythingInline) {
  CanonGuard guard(false);
  const Bytes data = Ref::ForSeed(13, 4096).Materialize();
  const Ref ref = Ref::Canonicalize(Bytes(data));
  EXPECT_EQ(ref.gen_len(), 0u);  // the pre-diet materialized representation
  EXPECT_EQ(ref.Materialize(), data);
  std::unordered_set<const void*> seen;
  EXPECT_EQ(ref.RetainedBytes(&seen), data.size());
}

TEST(ContentStore, InternDedupsIdenticalBuffers) {
  // Two independently-built identical literal buffers must collapse to one
  // shared allocation (the ten-thousand-cached-copies-of-/bin/cc case).
  const Bytes payload = ToBytes("\x01\x02 the same system binary, twice \xff");
  const Ref a = Ref::Inline(Bytes(payload));
  const Ref b = Ref::Inline(Bytes(payload));
  ASSERT_NE(a.tail(), nullptr);
  EXPECT_EQ(a.tail().get(), b.tail().get());

  // Dedup-aware accounting counts the shared buffer once.
  std::unordered_set<const void*> seen;
  EXPECT_EQ(a.RetainedBytes(&seen) + b.RetainedBytes(&seen), payload.size());
}

TEST(ContentStore, BuffersDieWithTheirLastRef) {
  Store& store = Store::Global();
  const Bytes payload = ToBytes("\x7f transient buffer for lifetime check");
  const size_t before = store.live_buffers();
  {
    const Ref ref = Ref::Inline(Bytes(payload));
    EXPECT_GE(store.live_buffers(), before + 1);
  }
  // Entries are weak: dropping the last ref releases the buffer.
  EXPECT_EQ(store.live_buffers(), before);
}

TEST(StringInterner, DedupsRepeatedStrings) {
  auto a = StringInterner::Global().Intern("/vice/usr/alice/thesis.tex");
  auto b = StringInterner::Global().Intern("/vice/usr/alice/thesis.tex");
  auto c = StringInterner::Global().Intern("/vice/usr/bob/thesis.tex");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(*a, "/vice/usr/alice/thesis.tex");
}

}  // namespace
}  // namespace itc::content
