// Unit tests for the crypto substrate: XTEA, key derivation, the sealed
// (authenticated CBC) envelope, and the mutual authentication handshake.

#include <gtest/gtest.h>

#include "src/crypto/cbc.h"
#include "src/crypto/handshake.h"
#include "src/crypto/key.h"
#include "src/crypto/xtea.h"

namespace itc::crypto {
namespace {

Key TestKey(uint8_t fill) {
  Key k;
  for (size_t i = 0; i < k.bytes.size(); ++i) k.bytes[i] = static_cast<uint8_t>(fill + i);
  return k;
}

// --- XTEA ---------------------------------------------------------------------

TEST(XteaTest, EncryptDecryptRoundTrip) {
  const Key key = TestKey(0x11);
  uint32_t block[2] = {0xdeadbeef, 0x01234567};
  uint32_t original[2] = {block[0], block[1]};
  XteaEncryptBlock(key, block);
  EXPECT_FALSE(block[0] == original[0] && block[1] == original[1]);
  XteaDecryptBlock(key, block);
  EXPECT_EQ(block[0], original[0]);
  EXPECT_EQ(block[1], original[1]);
}

TEST(XteaTest, ByteInterfaceMatchesWordInterface) {
  const Key key = TestKey(0x42);
  uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint32_t words[2] = {0x04030201, 0x08070605};  // little-endian packing
  XteaEncryptBlock(key, bytes);
  XteaEncryptBlock(key, words);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bytes[i], static_cast<uint8_t>(words[0] >> (8 * i)));
    EXPECT_EQ(bytes[4 + i], static_cast<uint8_t>(words[1] >> (8 * i)));
  }
}

TEST(XteaTest, DifferentKeysGiveDifferentCiphertext) {
  uint32_t a[2] = {1, 2}, b[2] = {1, 2};
  XteaEncryptBlock(TestKey(0x01), a);
  XteaEncryptBlock(TestKey(0x02), b);
  EXPECT_FALSE(a[0] == b[0] && a[1] == b[1]);
}

TEST(XteaTest, AvalancheSingleBitFlip) {
  // Flipping one plaintext bit should change roughly half the output bits.
  const Key key = TestKey(0x33);
  uint32_t a[2] = {0, 0}, b[2] = {1, 0};
  XteaEncryptBlock(key, a);
  XteaEncryptBlock(key, b);
  int diff = __builtin_popcount(a[0] ^ b[0]) + __builtin_popcount(a[1] ^ b[1]);
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

// --- Key derivation ------------------------------------------------------------

TEST(KeyDerivationTest, DeterministicAndSaltSensitive) {
  const Key a = DeriveKeyFromPassword("hunter2", "cmu");
  const Key b = DeriveKeyFromPassword("hunter2", "cmu");
  const Key c = DeriveKeyFromPassword("hunter2", "mit");
  const Key d = DeriveKeyFromPassword("hunter3", "cmu");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(KeyDerivationTest, EmptyPasswordStillProducesKey) {
  const Key a = DeriveKeyFromPassword("", "salt");
  const Key b = DeriveKeyFromPassword("", "salt2");
  EXPECT_NE(a, b);
}

TEST(KeyDerivationTest, SubKeysDifferByNonce) {
  const Key base = TestKey(0x55);
  EXPECT_EQ(DeriveSubKey(base, 1), DeriveSubKey(base, 1));
  EXPECT_NE(DeriveSubKey(base, 1), DeriveSubKey(base, 2));
  EXPECT_NE(DeriveSubKey(base, 1), base);
}

TEST(KeyTest, ToHexFormats) {
  Key k;
  k.bytes.fill(0xab);
  EXPECT_EQ(k.ToHex(), std::string(32, ' ').replace(0, 32, "abababababababababababababababab"));
}

// --- Sealed envelope --------------------------------------------------------------

class SealRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(SealRoundTrip, OpensToOriginal) {
  const Key key = TestKey(0x77);
  Bytes plain(GetParam());
  for (size_t i = 0; i < plain.size(); ++i) plain[i] = static_cast<uint8_t>(i * 7 + 3);
  const Bytes sealed = Seal(key, plain, /*iv_seed=*/GetParam());
  auto opened = Open(key, sealed);
  ASSERT_TRUE(opened.ok()) << StatusName(opened.status());
  EXPECT_EQ(*opened, plain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SealRoundTrip,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 63, 64, 255, 1024, 4096,
                                           65536));

TEST(SealTest, CiphertextHidesPlaintext) {
  const Key key = TestKey(0x01);
  const Bytes plain = ToBytes("attack at dawn, again and again and again");
  const Bytes sealed = Seal(key, plain, 1);
  // No 8-byte window of the ciphertext equals any window of the plaintext.
  const std::string hay(sealed.begin(), sealed.end());
  EXPECT_EQ(hay.find("attack"), std::string::npos);
}

TEST(SealTest, SameplaintextDifferentIvSeedsDiffer) {
  const Key key = TestKey(0x02);
  const Bytes plain = ToBytes("identical message");
  EXPECT_NE(Seal(key, plain, 1), Seal(key, plain, 2));
}

TEST(SealTest, WrongKeyDetected) {
  const Bytes sealed = Seal(TestKey(0x10), ToBytes("secret"), 5);
  EXPECT_EQ(Open(TestKey(0x20), sealed).status(), Status::kTamperDetected);
}

TEST(SealTest, EveryBitFlipDetected) {
  const Key key = TestKey(0x31);
  const Bytes sealed = Seal(key, ToBytes("integrity matters"), 9);
  for (size_t byte = 0; byte < sealed.size(); ++byte) {
    for (int bit = 0; bit < 8; bit += 3) {
      Bytes tampered = sealed;
      tampered[byte] = static_cast<uint8_t>(tampered[byte] ^ (1u << bit));
      auto opened = Open(key, tampered);
      EXPECT_FALSE(opened.ok()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(SealTest, TruncationDetected) {
  const Key key = TestKey(0x44);
  Bytes sealed = Seal(key, ToBytes("do not truncate me please"), 4);
  sealed.resize(sealed.size() - 8);
  EXPECT_FALSE(Open(key, sealed).ok());
}

TEST(SealTest, GarbageRejected) {
  EXPECT_FALSE(Open(TestKey(0x01), Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(Open(TestKey(0x01), Bytes(40, 0x5a)).ok());
}

// --- Handshake ----------------------------------------------------------------------

class HandshakeTest : public ::testing::Test {
 protected:
  static constexpr UserId kUser = 4711;
  Key user_key_ = DeriveKeyFromPassword("rosebud", "realm");

  ServerHandshake::KeyLookup LookupFor(UserId user, const Key& key) {
    return [user, key](UserId who) -> std::optional<Key> {
      if (who == user) return key;
      return std::nullopt;
    };
  }
};

TEST_F(HandshakeTest, MutualAuthenticationSucceeds) {
  ClientHandshake client(kUser, user_key_, /*nonce_seed=*/111);
  ServerHandshake server(LookupFor(kUser, user_key_), /*nonce_seed=*/222);

  Bytes m1 = client.Start();
  auto m2 = server.HandleHello(m1);
  ASSERT_TRUE(m2.ok());
  auto m3 = client.HandleChallenge(*m2);
  ASSERT_TRUE(m3.ok());
  auto m4 = server.HandleResponse(*m3);
  ASSERT_TRUE(m4.ok());
  auto secret = client.HandleSessionGrant(*m4);
  ASSERT_TRUE(secret.ok());

  EXPECT_TRUE(server.done());
  EXPECT_EQ(server.user(), kUser);
  EXPECT_EQ(*secret, server.secret());
  EXPECT_NE(secret->session_key, user_key_);
}

TEST_F(HandshakeTest, UnknownUserRejected) {
  ClientHandshake client(9999, user_key_, 1);
  ServerHandshake server(LookupFor(kUser, user_key_), 2);
  EXPECT_EQ(server.HandleHello(client.Start()).status(), Status::kAuthFailed);
}

TEST_F(HandshakeTest, ClientWithWrongKeyRejected) {
  ClientHandshake client(kUser, DeriveKeyFromPassword("wrong", "realm"), 1);
  ServerHandshake server(LookupFor(kUser, user_key_), 2);
  Bytes m1 = client.Start();
  // The server cannot decrypt the client's nonce, so the handshake dies
  // either at the hello or at the response check.
  auto m2 = server.HandleHello(m1);
  if (m2.ok()) {
    auto m3 = client.HandleChallenge(*m2);
    if (m3.ok()) {
      EXPECT_EQ(server.HandleResponse(*m3).status(), Status::kAuthFailed);
    } else {
      EXPECT_EQ(m3.status(), Status::kAuthFailed);
    }
  } else {
    EXPECT_EQ(m2.status(), Status::kAuthFailed);
  }
}

TEST_F(HandshakeTest, ServerImpersonatorDetectedByClient) {
  // A fake server that does not know the user key cannot produce Xr+1.
  ClientHandshake client(kUser, user_key_, 3);
  const Key fake_key = DeriveKeyFromPassword("not-the-key", "realm");
  ServerHandshake impostor(LookupFor(kUser, fake_key), 4);
  Bytes m1 = client.Start();
  auto m2 = impostor.HandleHello(m1);
  if (m2.ok()) {
    EXPECT_EQ(client.HandleChallenge(*m2).status(), Status::kAuthFailed);
  }
}

TEST_F(HandshakeTest, ReplayedHelloYieldsDifferentSessionKeys) {
  ClientHandshake c1(kUser, user_key_, 10);
  ClientHandshake c2(kUser, user_key_, 20);
  ServerHandshake s1(LookupFor(kUser, user_key_), 30);
  ServerHandshake s2(LookupFor(kUser, user_key_), 31);

  auto run = [&](ClientHandshake& c, ServerHandshake& s) {
    auto m2 = s.HandleHello(c.Start());
    auto m3 = c.HandleChallenge(*m2);
    auto m4 = s.HandleResponse(*m3);
    return *c.HandleSessionGrant(*m4);
  };
  EXPECT_NE(run(c1, s1).session_key, run(c2, s2).session_key);
}

TEST_F(HandshakeTest, OutOfOrderMessagesRejected) {
  ClientHandshake client(kUser, user_key_, 5);
  ServerHandshake server(LookupFor(kUser, user_key_), 6);
  // Response before hello.
  EXPECT_EQ(server.HandleResponse(Bytes{1, 2, 3}).status(), Status::kProtocolError);
  // Grant before challenge.
  EXPECT_EQ(client.HandleSessionGrant(Bytes{1, 2, 3}).status(), Status::kProtocolError);
}

}  // namespace
}  // namespace itc::crypto
