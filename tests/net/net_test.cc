// Unit tests for the campus topology (Figure 2-2) and the network model.

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/net/topology.h"

namespace itc::net {
namespace {

TEST(TopologyTest, NodeLayoutIsDense) {
  Topology t(TopologyConfig{3, 2, 10});
  EXPECT_EQ(t.node_count(), 36u);
  EXPECT_EQ(t.server_count(), 6u);
  EXPECT_EQ(t.workstation_count(), 30u);

  // Servers first within each cluster.
  EXPECT_TRUE(t.IsServer(t.ServerNode(0, 0)));
  EXPECT_TRUE(t.IsServer(t.ServerNode(2, 1)));
  EXPECT_FALSE(t.IsServer(t.WorkstationNode(0, 0)));

  EXPECT_EQ(t.ClusterOf(t.ServerNode(1, 0)), 1u);
  EXPECT_EQ(t.ClusterOf(t.WorkstationNode(2, 9)), 2u);
}

TEST(TopologyTest, NthEnumerationsCoverAll) {
  Topology t(TopologyConfig{2, 2, 3});
  EXPECT_EQ(t.NthServer(0), t.ServerNode(0, 0));
  EXPECT_EQ(t.NthServer(3), t.ServerNode(1, 1));
  EXPECT_EQ(t.NthWorkstation(0), t.WorkstationNode(0, 0));
  EXPECT_EQ(t.NthWorkstation(5), t.WorkstationNode(1, 2));
}

TEST(TopologyTest, Routes) {
  Topology t(TopologyConfig{2, 1, 5});
  auto same = t.RouteBetween(t.WorkstationNode(0, 0), t.ServerNode(0, 0));
  EXPECT_EQ(same.segments, 1);
  EXPECT_EQ(same.bridge_hops, 0);
  EXPECT_FALSE(same.cross_cluster);

  auto cross = t.RouteBetween(t.WorkstationNode(0, 0), t.ServerNode(1, 0));
  EXPECT_EQ(cross.segments, 3);
  EXPECT_EQ(cross.bridge_hops, 2);
  EXPECT_TRUE(cross.cross_cluster);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topo_(TopologyConfig{2, 1, 4}), cost_(sim::CostModel::Default1985()),
        net_(topo_, cost_) {}

  Topology topo_;
  sim::CostModel cost_;
  Network net_;
};

TEST_F(NetworkTest, IntraClusterTransferTime) {
  const NodeId ws = topo_.WorkstationNode(0, 0);
  const NodeId srv = topo_.ServerNode(0, 0);
  const SimTime arrival = net_.Transfer(ws, srv, 1024, 0);
  EXPECT_EQ(arrival, cost_.TransmissionTime(1024));
}

TEST_F(NetworkTest, CrossClusterCostsMore) {
  const NodeId ws = topo_.WorkstationNode(0, 0);
  const SimTime intra = net_.Transfer(ws, topo_.ServerNode(0, 0), 1024, 0);
  const SimTime inter = net_.Transfer(ws, topo_.ServerNode(1, 0), 1024, 0);
  // 3 segments + 2 bridge hops vs 1 segment.
  EXPECT_GT(inter, 2 * intra);
  EXPECT_EQ(net_.stats().cross_cluster_messages, 1u);
}

TEST_F(NetworkTest, LoopbackIsFree) {
  const NodeId n = topo_.ServerNode(0, 0);
  EXPECT_EQ(net_.Transfer(n, n, 1 << 20, 123), 123);
}

TEST_F(NetworkTest, SegmentContentionQueues) {
  const NodeId a = topo_.WorkstationNode(0, 0);
  const NodeId b = topo_.WorkstationNode(0, 1);
  const NodeId srv = topo_.ServerNode(0, 0);
  const SimTime t1 = net_.Transfer(a, srv, 100 * 1024, 0);
  const SimTime t2 = net_.Transfer(b, srv, 100 * 1024, 0);  // same segment, same time
  EXPECT_GT(t2, t1);  // second message waits for the shared Ethernet
}

TEST_F(NetworkTest, StatsAccumulateAndReset) {
  net_.Transfer(topo_.WorkstationNode(0, 0), topo_.ServerNode(0, 0), 500, 0);
  net_.Transfer(topo_.WorkstationNode(0, 0), topo_.ServerNode(1, 0), 700, 0);
  EXPECT_EQ(net_.stats().messages, 2u);
  EXPECT_EQ(net_.stats().bytes, 1200u);
  EXPECT_EQ(net_.stats().cross_cluster_bytes, 700u);
  net_.ResetStats();
  EXPECT_EQ(net_.stats().messages, 0u);
}

TEST(TopologyDescribeTest, MentionsShape) {
  Topology t(TopologyConfig{4, 1, 25});
  const std::string d = t.Describe();
  EXPECT_NE(d.find("4 cluster"), std::string::npos);
  EXPECT_NE(d.find("25 workstation"), std::string::npos);
}

}  // namespace
}  // namespace itc::net
