// LeaseManager vs a brute-force oracle under random interleavings of
// grant / renew / release / break / crash-restart.
//
// The oracle is the obvious map<(fid, holder) -> expiry> plus an embargo
// timestamp, recomputed from first principles at every step. Invariants
// checked after every operation:
//   * the manager's live-lease view (HasLease, lease_count) matches the
//     oracle exactly;
//   * no lease survives one term past the current time;
//   * Break returns exactly max(at, embargo end, latest expiry among live
//     unreachable holders) — in particular it never blocks at all when every
//     holder is reachable, and never blocks past the earliest moment every
//     outstanding lease has lapsed;
//   * reachable holders are notified exactly once per break, the writer and
//     lapsed holders never.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/net/network.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"
#include "src/vice/lease/lease_manager.h"

namespace itc::vice {
namespace {

class RecordingReceiver : public CallbackReceiver {
 public:
  explicit RecordingReceiver(NodeId node) : node_(node) {}
  void OnCallbackBroken(const Fid& fid) override { broken.push_back(fid); }
  NodeId callback_node() const override { return node_; }
  std::vector<Fid> broken;

 private:
  NodeId node_;
};

constexpr int kFids = 3;
constexpr int kHolders = 3;

TEST(LeasePropertyTest, MatchesBruteForceOracleUnderRandomInterleavings) {
  const sim::CostModel cost = sim::CostModel::Default1985();
  const SimTime kTerm = Seconds(30);
  const Fid fids[kFids] = {{1, 1, 1}, {1, 2, 2}, {2, 3, 3}};

  for (uint64_t iter = 0; iter < 150; ++iter) {
    Rng rng(0x1ea5e5ull * 2654435761u + iter);
    net::Topology topo(net::TopologyConfig{1, 1, kHolders});
    net::Network network(topo, cost);
    sim::Resource cpu("cpu");
    const NodeId server = topo.ServerNode(0, 0);

    // A random subset of holders is cut off for the whole run; reachability
    // is then a constant the oracle knows without reimplementing the
    // partition arithmetic.
    std::vector<std::unique_ptr<RecordingReceiver>> holders;
    bool reachable[kHolders];
    for (int h = 0; h < kHolders; ++h) {
      const NodeId node = topo.WorkstationNode(0, static_cast<uint32_t>(h));
      holders.push_back(std::make_unique<RecordingReceiver>(node));
      reachable[h] = !rng.Chance(0.4);
      if (!reachable[h]) network.AddPartition({{node}, 0, SimTime{1} << 60});
    }

    LeaseManager mgr(kTerm);
    SimTime expiry[kFids][kHolders] = {};
    bool held[kFids][kHolders] = {};
    SimTime suspended = 0;
    // Op times sit on a 13ms + k*25ms grid, so the sub-millisecond CPU
    // charges inside Break never straddle a partition boundary.
    SimTime now = Millis(13);

    for (int op = 0; op < 120; ++op) {
      now += Millis(25) * rng.Range(1, 40);
      const int f = static_cast<int>(rng.Below(kFids));
      const int h = static_cast<int>(rng.Below(kHolders));

      switch (rng.Below(6)) {
        case 0: {  // grant
          const SimTime got = mgr.Grant(fids[f], holders[h].get(), now);
          const SimTime want = now < suspended ? 0 : now + kTerm;
          ASSERT_EQ(got, want) << "iter=" << iter << " op=" << op;
          if (want != 0) {
            held[f][h] = true;
            expiry[f][h] = want;
          }
          break;
        }
        case 1: {  // batch renew of a random fid subset
          std::vector<Fid> ask;
          for (int i = 0; i < kFids; ++i) {
            if (rng.Chance(0.6)) ask.push_back(fids[i]);
          }
          const std::vector<Fid> rejected = mgr.Renew(holders[h].get(), ask, now);
          std::vector<Fid> want_rejected;
          for (const Fid& fid : ask) {
            int i = 0;
            while (!(fids[i] == fid)) ++i;
            const bool live = now >= suspended && held[i][h] && expiry[i][h] > now;
            if (live) {
              expiry[i][h] = now + kTerm;
            } else {
              want_rejected.push_back(fid);
            }
          }
          ASSERT_EQ(rejected, want_rejected) << "iter=" << iter << " op=" << op;
          break;
        }
        case 2: {  // voluntary release
          mgr.Release(fids[f], holders[h].get());
          held[f][h] = false;
          break;
        }
        case 3: {  // break-on-mutate; h doubles as the (optional) writer
          const bool has_writer = rng.Chance(0.5);
          CallbackReceiver* writer = has_writer ? holders[h].get() : nullptr;
          size_t broken_before[kHolders];
          for (int i = 0; i < kHolders; ++i) broken_before[i] = holders[i]->broken.size();

          const SimTime safe = mgr.Break(fids[f], writer, now, server, &network, &cpu, cost);

          SimTime want_safe = std::max(now, suspended);
          for (int i = 0; i < kHolders; ++i) {
            const bool is_writer = has_writer && i == h;
            const bool live = held[f][i] && expiry[f][i] > now;
            const bool notified = live && !is_writer && reachable[i];
            if (live && !is_writer && !reachable[i]) {
              want_safe = std::max(want_safe, expiry[f][i]);
            }
            EXPECT_EQ(holders[i]->broken.size(), broken_before[i] + (notified ? 1u : 0u))
                << "iter=" << iter << " op=" << op << " holder=" << i;
            if (!is_writer) held[f][i] = false;  // table forgets all but the writer
          }
          ASSERT_EQ(safe, want_safe) << "iter=" << iter << " op=" << op;
          // Never blocks past the last possible expiry on the file.
          EXPECT_LE(safe, std::max(now, suspended) + kTerm);
          break;
        }
        case 4: {  // crash + restart: volatile table, one-term grant embargo
          mgr.Clear();
          mgr.SuspendGrantsUntil(now + kTerm);
          for (int i = 0; i < kFids; ++i) {
            for (int j = 0; j < kHolders; ++j) held[i][j] = false;
          }
          suspended = now + kTerm;
          break;
        }
        default: {  // holder disconnects: everything it had goes
          mgr.ReleaseAll(holders[h].get());
          for (int i = 0; i < kFids; ++i) held[i][h] = false;
          break;
        }
      }

      // The manager's live view must match the oracle exactly...
      size_t live = 0;
      for (int i = 0; i < kFids; ++i) {
        for (int j = 0; j < kHolders; ++j) {
          const bool want = held[i][j] && expiry[i][j] > now;
          ASSERT_EQ(mgr.HasLease(fids[i], holders[j].get(), now), want)
              << "iter=" << iter << " op=" << op << " fid=" << i << " holder=" << j;
          if (want) live += 1;
        }
      }
      ASSERT_EQ(mgr.lease_count(now), live) << "iter=" << iter << " op=" << op;
      // ...and nothing may outlive its term.
      ASSERT_EQ(mgr.lease_count(now + kTerm), 0u) << "iter=" << iter << " op=" << op;
    }
  }
}

// Directed edges the random walk hits only occasionally.

TEST(LeasePropertyTest, BreakDuringEmbargoWaitsOutUnknownPreCrashLeases) {
  const sim::CostModel cost = sim::CostModel::Default1985();
  net::Topology topo(net::TopologyConfig{1, 1, 1});
  net::Network network(topo, cost);
  sim::Resource cpu("cpu");

  LeaseManager mgr(Seconds(30));
  RecordingReceiver r(topo.WorkstationNode(0, 0));
  ASSERT_GT(mgr.Grant({1, 1, 1}, &r, Seconds(1)), 0);

  // Crash at t=10s: the table is gone, but the t=1s lease is live somewhere
  // until t=31s. A mutation at t=12s must not complete before the embargo
  // ends — the restarted server cannot know which leases it forgot.
  mgr.Clear();
  mgr.SuspendGrantsUntil(Seconds(10) + Seconds(30));
  const SimTime safe =
      mgr.Break({1, 1, 1}, nullptr, Seconds(12), topo.ServerNode(0, 0), &network, &cpu, cost);
  EXPECT_EQ(safe, Seconds(40));
  EXPECT_EQ(mgr.Grant({1, 1, 1}, &r, Seconds(39)), 0);  // still embargoed
  EXPECT_EQ(mgr.Grant({1, 1, 1}, &r, Seconds(40)), Seconds(70));
}

TEST(LeasePropertyTest, WriterKeepsItsOriginalExpiryAcrossItsOwnBreak) {
  const sim::CostModel cost = sim::CostModel::Default1985();
  net::Topology topo(net::TopologyConfig{1, 1, 2});
  net::Network network(topo, cost);
  sim::Resource cpu("cpu");

  LeaseManager mgr(Seconds(30));
  RecordingReceiver writer(topo.WorkstationNode(0, 0));
  RecordingReceiver other(topo.WorkstationNode(0, 1));
  const Fid f{1, 2, 3};
  ASSERT_EQ(mgr.Grant(f, &writer, Seconds(1)), Seconds(31));
  ASSERT_EQ(mgr.Grant(f, &other, Seconds(2)), Seconds(32));

  const SimTime safe =
      mgr.Break(f, &writer, Seconds(3), topo.ServerNode(0, 0), &network, &cpu, cost);
  EXPECT_EQ(safe, Seconds(3));  // everyone reachable: no wait
  EXPECT_EQ(other.broken.size(), 1u);
  EXPECT_TRUE(writer.broken.empty());
  // The writer's lease survives with its ORIGINAL horizon, not a refresh.
  EXPECT_TRUE(mgr.HasLease(f, &writer, Seconds(30)));
  EXPECT_FALSE(mgr.HasLease(f, &writer, Seconds(31)));
  EXPECT_FALSE(mgr.HasLease(f, &other, Seconds(3)));
}

}  // namespace
}  // namespace itc::vice
