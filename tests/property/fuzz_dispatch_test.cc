// Robustness fuzzing of the Vice dispatch surface: arbitrary bytes from an
// authenticated (but possibly malicious or broken) workstation must never
// crash the server or corrupt volume state — only produce clean error
// replies. "Workstations are not trustworthy."

#include <gtest/gtest.h>

#include "src/campus/campus.h"
#include "src/common/rng.h"
#include "src/protection/protection_rpc.h"
#include "src/rpc/wire.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;

class FuzzDispatchTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(1, 1));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("fuzzer", "pw", 0);
    ASSERT_TRUE(home.ok());
    home_ = *home;
    ws_ = &campus_->workstation(0);
    ASSERT_EQ(ws_->LoginWithPassword(home_.user, "pw"), Status::kOk);
    ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/fuzzer/canary", ToBytes("alive")),
              Status::kOk);
  }

  // A raw authenticated connection, bypassing Venus entirely.
  std::unique_ptr<rpc::ClientConnection> RawConnection() {
    auto key = crypto::DeriveKeyFromPassword("pw", "itc.cmu.edu");
    auto conn = rpc::ClientConnection::Connect(
        campus_->topology().WorkstationNode(0, 0), home_.user, key,
        &campus_->server(0).endpoint(), &campus_->network(), campus_->config().cost,
        &clock_, 555);
    return conn.ok() ? std::move(*conn) : nullptr;
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome home_;
  virtue::Workstation* ws_ = nullptr;
  sim::Clock clock_;
};

TEST_P(FuzzDispatchTest, RandomBytesNeverCrashOrCorrupt) {
  auto conn = RawConnection();
  ASSERT_NE(conn, nullptr);
  Rng rng(GetParam() * 2654435761u);

  for (int i = 0; i < 400; ++i) {
    // Random procedure (valid and invalid ranges) with random payload.
    const uint32_t proc = static_cast<uint32_t>(rng.Below(80));
    Bytes payload(rng.Below(200));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextU64());
    // The call itself may report a protocol error; it must never abort.
    (void)conn->Call(proc, payload);
  }

  // The server is still sane: volumes salvage clean and real traffic works.
  auto report = campus_->registry().SalvageVolume(home_.volume);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  auto canary = ws_->ReadWholeFile("/vice/usr/fuzzer/canary");
  ASSERT_TRUE(canary.ok());
  EXPECT_EQ(ToString(*canary), "alive");
}

TEST_P(FuzzDispatchTest, StructurallyPlausibleGarbage) {
  // Sharper fuzz: wellformed-looking fids and strings with hostile values.
  auto conn = RawConnection();
  ASSERT_NE(conn, nullptr);
  Rng rng(GetParam() ^ 0xfeedface);

  const uint32_t procs[] = {10, 11, 12, 13, 14, 20, 21, 22, 23, 24, 25, 26,
                            27, 30, 31, 40, 41, 50, 60, 3, 4};
  for (int i = 0; i < 300; ++i) {
    rpc::Writer w;
    // A fid that may dangle, alias the root, or belong to no volume.
    w.PutFid(Fid{static_cast<VolumeId>(rng.Below(6)),
                 static_cast<uint32_t>(rng.Below(10)),
                 static_cast<uint32_t>(rng.Below(4))});
    switch (rng.Below(4)) {
      case 0: w.PutString(std::string(rng.Below(300), 'A')); break;
      case 1: w.PutString("../../../etc/passwd"); break;
      case 2: w.PutU64(rng.NextU64()); break;
      case 3: w.PutBytes(Bytes(rng.Below(64), 0xff)); break;
    }
    (void)conn->Call(procs[rng.Below(std::size(procs))], w.Take());
  }

  auto report = campus_->registry().SalvageVolume(home_.volume);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_TRUE(ws_->ReadWholeFile("/vice/usr/fuzzer/canary").ok());
}

TEST_P(FuzzDispatchTest, HostileMutationsBounceOffProtection) {
  // A second, unprivileged user aims mutations at the fuzzer's volume and
  // the root volume; nothing may change.
  auto stranger = campus_->protection().CreateUser("stranger", "pw2");
  ASSERT_TRUE(stranger.ok());
  auto key = crypto::DeriveKeyFromPassword("pw2", "itc.cmu.edu");
  auto conn = rpc::ClientConnection::Connect(
      campus_->topology().WorkstationNode(0, 0), *stranger, key,
      &campus_->server(0).endpoint(), &campus_->network(), campus_->config().cost,
      &clock_, 777);
  ASSERT_TRUE(conn.ok());

  Rng rng(GetParam() + 17);
  const VolumeId root_vol = campus_->registry().location().root_volume;
  for (int i = 0; i < 100; ++i) {
    rpc::Writer w;
    w.PutFid(rng.Chance(0.5) ? vice::VolumeRootFid(home_.volume)
                             : vice::VolumeRootFid(root_vol));
    w.PutString("x" + std::to_string(i));
    if (rng.Chance(0.5)) w.PutU32(0777);
    const uint32_t mutators[] = {13, 20, 21, 23, 24, 31};
    (void)(*conn)->Call(mutators[rng.Below(std::size(mutators))], w.Take());
  }

  // The fuzzer's home contains exactly what it did before.
  auto names = ws_->ReadDir("/vice/usr/fuzzer");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "canary");
}

TEST_P(FuzzDispatchTest, RegistryEdgeCases) {
  // Targeted abuse of the op-registry path: unknown opcodes (gaps in and
  // around the schema), truncated payloads, and oversized length fields must
  // all come back as clean errors, never a crash.
  auto conn = RawConnection();
  ASSERT_NE(conn, nullptr);
  Rng rng(GetParam() ^ 0xabcdef12);

  // Opcodes the schema does not contain: 0, the 6..9 gap, past-the-end, max.
  const uint32_t unknown[] = {0, 6, 7, 8, 9, 15, 28, 32, 42, 54, 61, 80, 0xffffffff};
  for (uint32_t proc : unknown) {
    auto reply = conn->Call(proc, Bytes{});
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status(), Status::kProtocolError);
  }

  // Truncated payloads: a fid cut off after 1..11 bytes against every op
  // that starts by reading one.
  const uint32_t fid_ops[] = {10, 11, 12, 13, 14, 20, 21, 22, 23, 24,
                              30, 31, 40, 41, 50, 51, 53};
  for (uint32_t proc : fid_ops) {
    rpc::Writer w;
    w.PutFid(Fid{home_.volume, 1, 1});
    Bytes full = w.Take();
    Bytes truncated(full.begin(), full.begin() + 1 + rng.Below(full.size() - 1));
    (void)conn->Call(proc, truncated);
  }

  // Oversized length fields: a string/bytes header promising ~4 GiB backed
  // by a handful of actual bytes. The bounds-checked reader must refuse.
  for (uint32_t proc : {13u, 20u, 21u, 22u, 23u, 27u, 31u}) {
    rpc::Writer w;
    w.PutFid(Fid{home_.volume, 1, 1});
    w.PutU32(0xffffffff);  // length prefix with no such body
    w.PutU8(0x41);
    w.PutU8(0x41);
    (void)conn->Call(proc, w.Take());
  }

  auto report = campus_->registry().SalvageVolume(home_.volume);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  auto canary = ws_->ReadWholeFile("/vice/usr/fuzzer/canary");
  ASSERT_TRUE(canary.ok());
  EXPECT_EQ(ToString(*canary), "alive");
}

TEST_P(FuzzDispatchTest, ProtectionDispatcherSurvivesGarbage) {
  // The protection server routes through the same registry machinery; give
  // its dispatcher the same hostile treatment on a standalone instance.
  net::Topology topo(net::TopologyConfig{1, 1, 1});
  sim::CostModel cost = sim::CostModel::Default1985();
  net::Network network(topo, cost);
  protection::ProtectionService service;
  const UserId user = *service.CreateUser("mortal", "user-pw");
  protection::ProtectionRpcServer server(topo.ServerNode(0, 0), &network, cost,
                                         rpc::RpcConfig{}, &service, 31);

  auto key = crypto::DeriveKeyFromPassword("user-pw", "itc.cmu.edu");
  sim::Clock clock;
  auto conn = rpc::ClientConnection::Connect(topo.WorkstationNode(0, 0), user, key,
                                             &server.endpoint(), &network, cost, &clock,
                                             999 + GetParam());
  ASSERT_TRUE(conn.ok());

  Rng rng(GetParam() * 0x9e3779b9u);
  for (int i = 0; i < 300; ++i) {
    const uint32_t proc = static_cast<uint32_t>(rng.Below(12));  // 1..6 valid
    Bytes payload(rng.Below(100));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextU64());
    (void)(*conn)->Call(proc, payload);
  }
  for (uint32_t proc : {0u, 7u, 61u, 0xffffffffu}) {
    auto reply = (*conn)->Call(proc, Bytes{});
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status(), Status::kProtocolError);
  }
  // Oversized string length against the ops that parse strings.
  for (uint32_t proc : {1u, 2u, 5u}) {
    rpc::Writer w;
    w.PutU32(0xffffffff);
    w.PutU8(0x41);
    (void)(*conn)->Call(proc, w.Take());
  }

  // The protection server still answers sensibly.
  auto whoami = (*conn)->Call(6, Bytes{});
  ASSERT_TRUE(whoami.ok());
  rpc::Reader r(*whoami);
  ASSERT_EQ(rpc::ExpectOk(r), Status::kOk);
  auto got = r.U32();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, user);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDispatchTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace itc
