// Property tests for the VFS mount layer: longest-prefix resolution against
// a brute-force oracle over random mount sets, shadowing under mount
// add/remove, and the cross-mount rename invariant on real backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/path.h"
#include "src/common/rng.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/unixfs/file_system.h"
#include "src/virtue/vfs/mount_table.h"
#include "src/virtue/vfs/switch.h"
#include "src/virtue/vfs/unixfs_mount.h"

namespace itc::virtue::vfs {
namespace {

// A mount that exists only to occupy a prefix in the table.
class StubMount : public Mount {
 public:
  explicit StubMount(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  bool shared() const override { return false; }

  Result<MountedOpen> Open(const std::string&, uint32_t) override {
    return Status::kNotSupported;
  }
  Status Close(uint64_t, bool) override { return Status::kNotSupported; }
  Result<Bytes> ReadAt(uint64_t, uint64_t, uint64_t) override {
    return Status::kNotSupported;
  }
  Status WriteAt(uint64_t, uint64_t, const Bytes&) override {
    return Status::kNotSupported;
  }
  Result<FileInfo> Stat(const std::string&) override { return Status::kNotSupported; }
  Result<std::vector<std::string>> List(const std::string&) override {
    return Status::kNotSupported;
  }
  Status MkDir(const std::string&) override { return Status::kNotSupported; }
  Status Remove(const std::string&) override { return Status::kNotSupported; }
  Status RmDir(const std::string&) override { return Status::kNotSupported; }
  Status Rename(const std::string&, const std::string&) override {
    return Status::kNotSupported;
  }
  Status Symlink(const std::string&, const std::string&) override {
    return Status::kNotSupported;
  }
  Result<std::string> ReadLink(const std::string&) override {
    return Status::kNotSupported;
  }
  Status Chmod(const std::string&, uint16_t) override { return Status::kNotSupported; }

 private:
  std::string name_;
};

// Random path over a tiny component alphabet so collisions between mount
// prefixes and query paths are common.
std::string RandomPath(Rng& rng, size_t max_depth) {
  static const char* kComps[] = {"a", "b", "c", "ab", "vice"};
  const size_t depth = rng.Below(max_depth + 1);
  if (depth == 0) return "/";
  std::string p;
  for (size_t i = 0; i < depth; ++i) {
    p += '/';
    p += kComps[rng.Below(5)];
  }
  return p;
}

// Brute-force oracle: the longest prefix in `entries` that path-prefixes
// `path` (component boundaries), ties impossible since prefixes are unique.
const std::pair<std::string, Mount*>* BruteForceMatch(
    const std::vector<std::pair<std::string, Mount*>>& entries, const std::string& path) {
  const std::pair<std::string, Mount*>* best = nullptr;
  for (const auto& e : entries) {
    if (!PathHasPrefix(path, e.first)) continue;
    if (best == nullptr || e.first.size() > best->first.size()) best = &e;
  }
  return best;
}

TEST(MountTableProperty, LongestPrefixMatchAgreesWithBruteForce) {
  Rng rng(0xf00d);
  for (int round = 0; round < 200; ++round) {
    MountTable table;
    std::vector<std::unique_ptr<StubMount>> mounts;
    const size_t n = 1 + rng.Below(6);
    for (size_t i = 0; i < n; ++i) {
      const std::string prefix = RandomPath(rng, 3);
      auto m = std::make_unique<StubMount>("stub" + std::to_string(i));
      if (table.Add(prefix, m.get()) == Status::kOk) mounts.push_back(std::move(m));
    }
    const auto entries = table.entries();
    for (int q = 0; q < 50; ++q) {
      const std::string path = RandomPath(rng, 5);
      const auto hit = table.Match(path);
      const auto* expect = BruteForceMatch(entries, path);
      if (expect == nullptr) {
        EXPECT_FALSE(hit.has_value()) << path;
      } else {
        ASSERT_TRUE(hit.has_value()) << path;
        EXPECT_EQ(hit->prefix, expect->first) << path;
        EXPECT_EQ(hit->mount, expect->second) << path;
      }
    }
  }
}

TEST(MountTableProperty, ComponentBoundaryNeverConfusesSiblingNames) {
  Rng rng(0xbeef);
  MountTable table;
  StubMount vice("vice"), root("root");
  ASSERT_EQ(table.Add("/", &root), Status::kOk);
  ASSERT_EQ(table.Add("/vice", &vice), Status::kOk);
  for (int i = 0; i < 100; ++i) {
    // Any extension of the *string* "/vice" that is not a component
    // boundary must fall through to the root mount.
    std::string path = "/vice";
    path += static_cast<char>('a' + rng.Below(26));
    path += RandomPath(rng, 2) == "/" ? "" : "/x";
    const auto hit = table.Match(path);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mount, &root) << path;
  }
  EXPECT_EQ(table.Match("/vice")->mount, &vice);
  EXPECT_EQ(table.Match("/vice/usr")->mount, &vice);
}

TEST(MountTableProperty, ShadowingFollowsAddAndRemove) {
  MountTable table;
  StubMount root("root"), vice("vice"), deep("deep");
  ASSERT_EQ(table.Add("/", &root), Status::kOk);
  ASSERT_EQ(table.Add("/vice", &vice), Status::kOk);

  EXPECT_EQ(table.Match("/vice/pc/f")->mount, &vice);
  // A deeper mount shadows the shallower one for its subtree only.
  ASSERT_EQ(table.Add("/vice/pc", &deep), Status::kOk);
  EXPECT_EQ(table.Match("/vice/pc/f")->mount, &deep);
  EXPECT_EQ(table.Match("/vice/other")->mount, &vice);
  // Removal uncovers what was shadowed.
  ASSERT_EQ(table.Remove("/vice/pc"), Status::kOk);
  EXPECT_EQ(table.Match("/vice/pc/f")->mount, &vice);

  // Duplicate prefixes and malformed prefixes are rejected.
  EXPECT_NE(table.Add("/vice", &deep), Status::kOk);
  EXPECT_NE(table.Add("vice", &deep), Status::kOk);
  EXPECT_NE(table.Add("/vice/", &deep), Status::kOk);
  EXPECT_NE(table.Add("//vice", &deep), Status::kOk);
  EXPECT_NE(table.Add("/vice/..", &deep), Status::kOk);
}

// Rename across mounts must fail with kCrossVolume and leave both trees
// untouched — checked on real unixfs-backed mounts through the switch.
TEST(SwitchProperty, CrossMountRenameRejectedAndHarmless) {
  sim::Clock clock;
  const sim::CostModel cost = sim::CostModel::Default1985();
  unixfs::FileSystem root_fs, scratch_fs;
  Switch sw;
  auto user = [] { return UserId{1}; };
  ASSERT_EQ(sw.AddMount("/", std::make_unique<UnixfsMount>(&root_fs, &clock, cost, user,
                                                           "root")),
            Status::kOk);
  ASSERT_EQ(sw.AddMount("/scratch", std::make_unique<UnixfsMount>(&scratch_fs, &clock,
                                                                  cost, user, "scratch")),
            Status::kOk);

  ASSERT_EQ(sw.WriteWholeFile("/f", ToBytes("root side")), Status::kOk);
  ASSERT_EQ(sw.WriteWholeFile("/scratch/g", ToBytes("scratch side")), Status::kOk);

  EXPECT_EQ(sw.Rename("/f", "/scratch/f"), Status::kCrossVolume);
  EXPECT_EQ(sw.Rename("/scratch/g", "/g"), Status::kCrossVolume);

  // Same-mount renames still work on both sides.
  EXPECT_EQ(sw.Rename("/f", "/f2"), Status::kOk);
  EXPECT_EQ(sw.Rename("/scratch/g", "/scratch/g2"), Status::kOk);
  EXPECT_EQ(ToString(*sw.ReadWholeFile("/f2")), "root side");
  EXPECT_EQ(ToString(*sw.ReadWholeFile("/scratch/g2")), "scratch side");

  // A busy mount refuses removal; after closing it detaches cleanly.
  auto fd = sw.Open("/scratch/g2", kRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(sw.RemoveMount("/scratch"), Status::kNotEmpty);
  ASSERT_EQ(sw.Close(*fd), Status::kOk);
  EXPECT_EQ(sw.RemoveMount("/scratch"), Status::kOk);
  // With the shadowing mount gone, /scratch names fall to the root mount.
  EXPECT_EQ(sw.ReadWholeFile("/scratch/g2").status(), Status::kNotFound);
}

}  // namespace
}  // namespace itc::virtue::vfs
