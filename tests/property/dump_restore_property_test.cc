// Property test: Volume::Dump -> Restore is lossless. A randomized operation
// churn builds an arbitrary volume; dumping it, restoring the dump, and
// dumping again must reproduce the exact same bytes (same vnodes, data,
// ACLs, fid counters). The same property must hold for a dump taken from a
// copy-on-write clone — the backup path dumps clones, and recovery restores
// whatever image the StableStore holds.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/protection/access_list.h"
#include "src/vice/volume.h"

namespace itc::vice {
namespace {

using protection::AccessList;
using protection::Principal;

AccessList OpenAcl() {
  AccessList acl;
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup), protection::kAllRights);
  return acl;
}

// Random volume churn: creates, writes, mkdirs, symlinks, renames, removals.
// Tracks live files/dirs so most operations hit existing objects.
void Churn(Volume& vol, Rng& rng, int steps) {
  std::vector<Fid> dirs = {vol.root()};
  std::vector<std::pair<Fid, std::string>> files;  // (parent, name)
  std::vector<std::pair<Fid, std::string>> subdirs;

  for (int step = 0; step < steps; ++step) {
    vol.set_now(static_cast<SimTime>(step) * 17 + 1);
    const Fid dir = dirs[rng.Below(dirs.size())];
    const std::string name = "n" + std::to_string(rng.Below(12));
    switch (rng.Below(6)) {
      case 0: {  // create file
        auto f = vol.CreateFile(dir, name, kAnonymousUser, 0644);
        if (f.ok()) files.emplace_back(dir, name);
        break;
      }
      case 1: {  // mkdir
        auto d = vol.MakeDir(dir, name, kAnonymousUser, OpenAcl());
        if (d.ok()) {
          dirs.push_back(*d);
          subdirs.emplace_back(dir, name);
        }
        break;
      }
      case 2: {  // store into a random file
        if (files.empty()) break;
        const auto& [pdir, pname] = files[rng.Below(files.size())];
        auto data = vol.FetchData(pdir);
        if (!data.ok()) break;
        auto entries = DeserializeDirectory(*data);
        if (!entries.ok()) break;
        auto it = entries->find(pname);
        if (it == entries->end()) break;
        Bytes payload = ToBytes(std::string(rng.Below(200), 'x') + std::to_string(step));
        (void)vol.StoreData(it->second.fid, std::move(payload));
        break;
      }
      case 3: {  // symlink
        (void)vol.MakeSymlink(dir, "l" + name, "/target/" + name, kAnonymousUser);
        break;
      }
      case 4: {  // rename a file somewhere else
        if (files.empty()) break;
        const size_t i = rng.Below(files.size());
        const Fid to_dir = dirs[rng.Below(dirs.size())];
        const std::string to_name = "r" + std::to_string(rng.Below(12));
        if (vol.Rename(files[i].first, files[i].second, to_dir, to_name) == Status::kOk) {
          files[i] = {to_dir, to_name};
        }
        break;
      }
      case 5: {  // remove a file
        if (files.empty()) break;
        const size_t i = rng.Below(files.size());
        if (vol.RemoveFile(files[i].first, files[i].second) == Status::kOk) {
          files.erase(files.begin() + static_cast<ptrdiff_t>(i));
        }
        break;
      }
    }
  }
}

class DumpRestorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DumpRestorePropertyTest, DumpRestoreDumpIsIdentity) {
  Rng rng(GetParam());
  Volume vol(5, "prop", VolumeType::kReadWrite, kAnonymousUser, OpenAcl(),
             /*quota_bytes=*/0);
  Churn(vol, rng, 300);
  ASSERT_TRUE(vol.Salvage().clean());  // churn must not corrupt the volume

  const Bytes dump = vol.Dump();
  auto restored = Volume::Restore(dump, /*new_id=*/5, "prop", VolumeType::kReadWrite);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->Dump(), dump);
  // The restored volume is internally consistent, not just byte-identical.
  EXPECT_TRUE((*restored)->Salvage().clean());
  EXPECT_EQ((*restored)->vnode_count(), vol.vnode_count());
}

TEST_P(DumpRestorePropertyTest, CloneDumpRestoresToEquivalentVolume) {
  Rng rng(GetParam() ^ 0xc10e);
  Volume vol(9, "orig", VolumeType::kReadWrite, kAnonymousUser, OpenAcl(), 0);
  Churn(vol, rng, 200);

  // The backup path: freeze a clone, dump it. Restoring that image must
  // reproduce the original's full content. The dump embeds the clone's
  // name and read-only type, so the byte-identity round-trip restores
  // under both.
  auto clone = vol.Clone(9, "orig.backup");
  const Bytes dump = clone->Dump();
  auto restored = Volume::Restore(dump, 9, "orig.backup", VolumeType::kReadOnly);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->Dump(), dump);
  EXPECT_EQ((*restored)->vnode_count(), vol.vnode_count());
  EXPECT_TRUE((*restored)->Salvage().clean());

  // Mutating the original after the clone must not disturb the frozen dump
  // (copy-on-write isolation).
  vol.set_now(99999);
  Churn(vol, rng, 50);
  EXPECT_EQ(clone->Dump(), dump);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DumpRestorePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 4242u));

}  // namespace
}  // namespace itc::vice
