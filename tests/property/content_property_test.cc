// Property tests for the lazy generative content representation: whatever
// the at-rest form (generative record, interned literal, or the pre-diet
// materialized bytes with canonicalization disabled), every byte served must
// be identical and every simulated timestamp unchanged. Covers random
// chunked reads, store overwrites on copy-on-write shared buffers, Dump ->
// Restore round trips, crash -> Restart replay, and a full mini campus day
// diffed against the materialized representation.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/campus/campus.h"
#include "src/common/content.h"
#include "src/common/rng.h"
#include "src/protection/access_list.h"
#include "src/vice/volume.h"
#include "src/workload/source_tree.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;
using protection::AccessList;
using protection::Principal;
using vice::Volume;
using vice::VolumeType;

struct CanonGuard {
  explicit CanonGuard(bool enabled) { content::SetCanonicalizationEnabled(enabled); }
  ~CanonGuard() { content::SetCanonicalizationEnabled(true); }
};

AccessList OpenAcl() {
  AccessList acl;
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup), protection::kAllRights);
  return acl;
}

// A deterministic payload of assorted shapes: purely generative, generative
// prefix + literal tail, or literal-only bytes the recognizer must not touch.
Bytes MakePayload(Rng& rng, uint64_t size) {
  switch (rng.Below(3)) {
    case 0:
      return content::Ref::ForSeed(rng.NextU64(), size).Materialize();
    case 1: {
      Bytes data = content::Ref::ForSeed(rng.NextU64(), size).Materialize();
      const uint64_t cut = size / 2 + rng.Below(size / 2 + 1);
      for (uint64_t i = cut; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(128 + ((i * 31) & 0x7f));
      }
      return data;
    }
    default: {
      Bytes data(size);
      for (uint64_t i = 0; i < size; ++i) {
        data[i] = static_cast<uint8_t>(200 + ((i * 7 + rng.Below(8)) & 0x37));
      }
      return data;
    }
  }
}

class ContentPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// --- Random chunked reads -----------------------------------------------------

TEST_P(ContentPropertyTest, ChunkedSlicesReassembleToMaterializedBytes) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const Bytes data = MakePayload(rng, 1 + rng.Below(20000));
    const content::Ref ref = content::Ref::Canonicalize(Bytes(data));
    ASSERT_EQ(ref.size(), data.size());

    Bytes reassembled;
    uint64_t off = 0;
    while (off < data.size()) {
      const uint64_t n = 1 + rng.Below(997);
      const Bytes chunk = ref.Slice(off, n);
      reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
      off += chunk.size();
    }
    ASSERT_EQ(reassembled, data) << "round " << round;
  }
}

// --- Store overwrites and copy-on-write ---------------------------------------

// The same randomized store/overwrite churn applied with canonicalization on
// and off must serve identical bytes, and overwriting one holder of a shared
// interned buffer must never disturb the other (copy-on-write).
TEST_P(ContentPropertyTest, StoreOverwritesMatchModelInBothRepresentations) {
  // Deterministic op list built first, so both volumes replay the same ops.
  struct Op {
    int file;
    Bytes data;
  };
  Rng rng(GetParam() ^ 0x57);
  constexpr int kFiles = 8;
  std::vector<Op> ops;
  for (int i = 0; i < 120; ++i) {
    Op op;
    op.file = static_cast<int>(rng.Below(kFiles));
    if (!ops.empty() && rng.Below(3) == 0) {
      // Partial overwrite: reuse an earlier payload and rewrite a span, so
      // stores frequently share prefixes/buffers with live contents.
      op.data = ops[rng.Below(ops.size())].data;
      if (!op.data.empty()) {
        const uint64_t at = rng.Below(op.data.size());
        for (uint64_t j = at; j < std::min<uint64_t>(at + 64, op.data.size()); ++j) {
          op.data[j] ^= 0x5a;
        }
      }
    } else {
      op.data = MakePayload(rng, 1 + rng.Below(8000));
    }
    ops.push_back(std::move(op));
  }

  auto run = [&](bool canonicalize) {
    CanonGuard guard(canonicalize);
    Volume vol(3, "prop", VolumeType::kReadWrite, kAnonymousUser, OpenAcl(), 0);
    std::vector<Fid> fids;
    for (int f = 0; f < kFiles; ++f) {
      fids.push_back(*vol.CreateFile(vol.root(), "f" + std::to_string(f), kAnonymousUser, 0644));
    }
    std::map<int, Bytes> model;
    for (const Op& op : ops) {
      EXPECT_EQ(vol.StoreData(fids[op.file], Bytes(op.data)), Status::kOk);
      model[op.file] = op.data;
      // Every store is immediately visible with the model's exact bytes; a
      // shared-buffer overwrite corrupting a sibling file would surface here.
      const int probe = static_cast<int>((op.file + 1) % kFiles);
      if (model.count(probe) > 0) {
        EXPECT_EQ(*vol.FetchData(fids[probe]), model[probe]);
      }
    }
    std::vector<Bytes> final_contents;
    for (int f = 0; f < kFiles; ++f) {
      final_contents.push_back(model.count(f) ? *vol.FetchData(fids[f]) : Bytes{});
    }
    return final_contents;
  };

  EXPECT_EQ(run(/*canonicalize=*/true), run(/*canonicalize=*/false));
}

TEST_P(ContentPropertyTest, OverwritingOneSharerLeavesTheOtherIntact) {
  Rng rng(GetParam() ^ 0xc0);
  Volume vol(4, "cow", VolumeType::kReadWrite, kAnonymousUser, OpenAcl(), 0);
  const Fid a = *vol.CreateFile(vol.root(), "a", kAnonymousUser, 0644);
  const Fid b = *vol.CreateFile(vol.root(), "b", kAnonymousUser, 0644);

  // Identical literal payloads intern to one shared buffer.
  const Bytes shared = MakePayload(rng, 4096);
  ASSERT_EQ(vol.StoreData(a, Bytes(shared)), Status::kOk);
  ASSERT_EQ(vol.StoreData(b, Bytes(shared)), Status::kOk);

  Bytes replacement = MakePayload(rng, 2048);
  ASSERT_EQ(vol.StoreData(a, std::move(replacement)), Status::kOk);
  EXPECT_EQ(*vol.FetchData(b), shared);

  // Same property across a clone: the frozen replica keeps its bytes while
  // the parent is overwritten.
  auto clone = vol.Clone(44, "cow.backup");
  ASSERT_EQ(vol.StoreData(b, MakePayload(rng, 1024)), Status::kOk);
  const Fid clone_b{44, b.vnode, b.uniquifier};
  EXPECT_EQ(*clone->FetchData(clone_b), shared);
}

// --- Dump -> Restore ----------------------------------------------------------

TEST_P(ContentPropertyTest, DumpRestoreRoundTripsLazyContents) {
  Rng rng(GetParam() ^ 0xd0);
  Volume vol(6, "dump", VolumeType::kReadWrite, kAnonymousUser, OpenAcl(), 0);
  std::vector<std::pair<Fid, Bytes>> files;
  for (int i = 0; i < 12; ++i) {
    const Fid fid = *vol.CreateFile(vol.root(), "f" + std::to_string(i), kAnonymousUser, 0644);
    Bytes data = MakePayload(rng, 1 + rng.Below(10000));
    ASSERT_EQ(vol.StoreData(fid, Bytes(data)), Status::kOk);
    files.emplace_back(fid, std::move(data));
  }

  const Bytes dump = vol.Dump();
  auto restored = Volume::Restore(dump, 6, "dump", VolumeType::kReadWrite);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->Dump(), dump);
  for (const auto& [fid, data] : files) {
    EXPECT_EQ(*(*restored)->FetchData(fid), data);
  }

  // Restore must canonicalize, not materialize: generative contents come
  // back as generative records, so the restored volume retains far fewer
  // host bytes than the logical total it serves.
  std::unordered_set<const void*> seen;
  const uint64_t retained = (*restored)->RetainedContentBytes(&seen);
  uint64_t logical = 0;
  for (const auto& [fid, data] : files) logical += data.size();
  EXPECT_LT(retained, logical);
}

// --- Crash -> Restart replay --------------------------------------------------

// Stores committed before a crash must be replayed byte-identically from the
// stable store + intention log, whatever representation they were held in.
TEST_P(ContentPropertyTest, CrashReplayServesIdenticalBytes) {
  Rng rng(GetParam() ^ 0xcc);
  CampusConfig config = CampusConfig::Revised(1, 2);
  Campus campus(config);
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("u", "pw", 0);
  ASSERT_TRUE(home.ok());
  auto& ws = campus.workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);

  std::map<std::string, Bytes> written;
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/vice/usr/u/f" + std::to_string(i);
    Bytes data = MakePayload(rng, 1 + rng.Below(6000));
    ASSERT_EQ(ws.WriteWholeFile(path, Bytes(data)), Status::kOk);
    written[path] = std::move(data);
  }

  campus.CrashServer(0);
  auto report = campus.RestartServer(0, ws.clock().now());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.replay_failures, 0u);

  // Force fresh fetches so the comparison exercises the server's recovered
  // state, not the workstation cache.
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);
  ws.venus().FlushCache();
  for (const auto& [path, data] : written) {
    auto back = ws.ReadWholeFile(path);
    ASSERT_TRUE(back.ok()) << path;
    EXPECT_EQ(*back, data) << path;
  }
}

// --- Whole campus day, diffed against the materialized representation ---------

// Runs an identical deterministic mini-day twice — once with the lazy
// representation, once with canonicalization disabled (every buffer inline,
// the pre-diet form) — and requires identical served bytes and identical
// simulated clocks at every observation point.
TEST(ContentPropertyCampusDay, LazyAndMaterializedRepresentationsAreEquivalent) {
  struct Trace {
    std::vector<uint64_t> content_hashes;
    std::vector<SimTime> clocks;
    bool operator==(const Trace&) const = default;
  };

  auto run = [](bool canonicalize) {
    CanonGuard guard(canonicalize);
    Trace trace;

    CampusConfig config = CampusConfig::Revised(2, 2);
    Campus campus(config);
    ITC_CHECK(campus.SetupRootVolume().ok());
    auto alice = campus.AddUserWithHome("alice", "pw-a", 0);
    auto bob = campus.AddUserWithHome("bob", "pw-b", 1);
    ITC_CHECK(alice.ok() && bob.ok());

    auto sysvol = campus.CreateSystemVolume("sys.sun", "/unix/sun", 0);
    ITC_CHECK(sysvol.ok());
    for (int i = 0; i < 4; ++i) {
      ITC_CHECK(campus.PopulateDirect(
                    *sysvol, "/bin/tool" + std::to_string(i),
                    workload::SynthesizeContents(0xb1 + i, 4096 + i * 512)) == Status::kOk);
    }

    auto& ws_a = campus.workstation(0);
    auto& ws_b = campus.workstation(2);  // other cluster
    ITC_CHECK(ws_a.LoginWithPassword(alice->user, "pw-a") == Status::kOk);
    ITC_CHECK(ws_b.LoginWithPassword(bob->user, "pw-b") == Status::kOk);

    auto observe = [&trace](auto& ws, const Bytes& bytes) {
      trace.content_hashes.push_back(content::HashBytes(bytes.data(), bytes.size()));
      trace.clocks.push_back(ws.clock().now());
    };

    // A day's worth of shapes: writes, cross-workstation reads through a
    // callback break, system-binary reads on both stations, an overwrite.
    for (int i = 0; i < 6; ++i) {
      const std::string doc = "/vice/usr/alice/doc" + std::to_string(i);
      Bytes payload = workload::SynthesizeContents(100 + i, 2048 + i * 777);
      ITC_CHECK(ws_a.WriteWholeFile(doc, Bytes(payload)) == Status::kOk);
      observe(ws_a, payload);

      auto remote = ws_b.ReadWholeFile(doc);
      ITC_CHECK(remote.ok());
      observe(ws_b, *remote);
    }
    for (int i = 0; i < 4; ++i) {
      auto tool_a = ws_a.ReadWholeFile("/vice/unix/sun/bin/tool" + std::to_string(i));
      auto tool_b = ws_b.ReadWholeFile("/vice/unix/sun/bin/tool" + std::to_string(i));
      ITC_CHECK(tool_a.ok() && tool_b.ok());
      observe(ws_a, *tool_a);
      observe(ws_b, *tool_b);
    }
    ITC_CHECK(ws_a.WriteWholeFile("/vice/usr/alice/doc0",
                                  workload::SynthesizeContents(999, 5000)) == Status::kOk);
    auto rewritten = ws_b.ReadWholeFile("/vice/usr/alice/doc0");
    ITC_CHECK(rewritten.ok());
    observe(ws_b, *rewritten);
    return trace;
  };

  const auto lazy = run(/*canonicalize=*/true);
  const auto materialized = run(/*canonicalize=*/false);
  EXPECT_EQ(lazy.content_hashes, materialized.content_hashes);
  EXPECT_EQ(lazy.clocks, materialized.clocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentPropertyTest,
                         ::testing::Values(1u, 2u, 17u, 4242u));

}  // namespace
}  // namespace itc
