// Property-based tests: randomized operation sequences checked against
// independent models and invariants.
//
//  * unixfs vs a flat shadow model (path -> contents map),
//  * Volume churn keeps Salvage clean and quota accounting exact,
//  * multi-client Venus/Vice sessions always converge to the server's truth,
//  * sealed-envelope round trips across randomized sizes and keys.

#include <gtest/gtest.h>

#include <map>

#include "src/campus/campus.h"
#include "src/common/rng.h"
#include "src/crypto/cbc.h"
#include "src/unixfs/file_system.h"
#include "src/vice/volume.h"

namespace itc {
namespace {

// --- unixfs vs shadow model ----------------------------------------------------

class UnixFsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnixFsPropertyTest, RandomOpsMatchShadowModel) {
  Rng rng(GetParam());
  unixfs::FileSystem fs;
  std::map<std::string, std::string> shadow;  // regular files only

  // A fixed pool of directories and file names keeps collisions frequent.
  const std::vector<std::string> dirs = {"/", "/a", "/a/b", "/c"};
  for (const auto& d : dirs) {
    if (d != "/") {
      ASSERT_EQ(fs.MkDirAll(d), Status::kOk);
    }
  }
  auto random_path = [&] {
    const std::string& dir = dirs[rng.Below(dirs.size())];
    return (dir == "/" ? "" : dir) + "/f" + std::to_string(rng.Below(6));
  };

  for (int step = 0; step < 600; ++step) {
    const std::string path = random_path();
    switch (rng.Below(4)) {
      case 0: {  // write
        std::string contents = "c" + std::to_string(rng.Below(1000));
        Status s = fs.WriteFile(path, ToBytes(contents));
        if (s == Status::kOk) shadow[path] = contents;
        break;
      }
      case 1: {  // read
        auto got = fs.ReadFile(path);
        auto it = shadow.find(path);
        if (it == shadow.end()) {
          EXPECT_FALSE(got.ok()) << path;
        } else {
          ASSERT_TRUE(got.ok()) << path;
          EXPECT_EQ(ToString(*got), it->second) << path;
        }
        break;
      }
      case 2: {  // unlink
        Status s = fs.Unlink(path);
        EXPECT_EQ(s == Status::kOk, shadow.erase(path) > 0) << path;
        break;
      }
      case 3: {  // rename to another random file path
        const std::string to = random_path();
        Status s = fs.Rename(path, to);
        auto it = shadow.find(path);
        if (it == shadow.end()) {
          EXPECT_NE(s, Status::kOk) << path << "->" << to;
        } else if (s == Status::kOk) {
          if (path != to) {
            shadow[to] = it->second;
            shadow.erase(path);
          }
        }
        break;
      }
    }
  }

  // Final sweep: every shadow file readable with exactly the right bytes.
  for (const auto& [path, contents] : shadow) {
    auto got = fs.ReadFile(path);
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(ToString(*got), contents) << path;
  }
  // And data-byte accounting matches the shadow total.
  uint64_t expected_bytes = 0;
  for (const auto& [path, contents] : shadow) expected_bytes += contents.size();
  EXPECT_EQ(fs.total_data_bytes(), expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnixFsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Volume churn invariants -------------------------------------------------------

class VolumePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VolumePropertyTest, ChurnKeepsSalvageCleanAndQuotaExact) {
  Rng rng(GetParam() * 7919);
  protection::AccessList acl;
  acl.SetPositive(protection::Principal::Group(protection::kAnyUserGroup),
                  protection::kAllRights);
  vice::Volume vol(1, "churn", vice::VolumeType::kReadWrite, 1, acl, 0);

  std::vector<Fid> dirs{vol.root()};

  for (int step = 0; step < 500; ++step) {
    const Fid dir = dirs[rng.Below(dirs.size())];
    switch (rng.Below(5)) {
      case 0: {  // create file
        (void)vol.CreateFile(dir, "f" + std::to_string(rng.Below(1000)), 1, 0644);
        break;
      }
      case 1: {  // mkdir
        auto fid = vol.MakeDir(dir, "d" + std::to_string(rng.Below(50)), 1, acl);
        if (fid.ok()) dirs.push_back(*fid);
        break;
      }
      case 2: {  // store into a random live file found via the directory
        auto data = vol.FetchData(dir);
        if (!data.ok()) break;
        auto entries = vice::DeserializeDirectory(*data);
        for (const auto& [name, item] : *entries) {
          if (item.kind == vice::DirItem::Kind::kFile && rng.Chance(0.5)) {
            (void)vol.StoreData(item.fid, Bytes(rng.Below(4096), 'x'));
            break;
          }
        }
        break;
      }
      case 3: {  // remove a random file
        auto data = vol.FetchData(dir);
        if (!data.ok()) break;
        auto entries = vice::DeserializeDirectory(*data);
        for (const auto& [name, item] : *entries) {
          if (item.kind == vice::DirItem::Kind::kFile && rng.Chance(0.5)) {
            (void)vol.RemoveFile(dir, name);
            break;
          }
        }
        break;
      }
      case 4: {  // rename between random directories
        auto data = vol.FetchData(dir);
        if (!data.ok()) break;
        auto entries = vice::DeserializeDirectory(*data);
        const Fid to = dirs[rng.Below(dirs.size())];
        for (const auto& [name, item] : *entries) {
          if (rng.Chance(0.3)) {
            (void)vol.Rename(dir, name, to, name + "_m");
            break;
          }
        }
        break;
      }
    }
  }

  // Invariant 1: salvage finds nothing to repair.
  const uint64_t usage_before = vol.usage_bytes();
  auto report = vol.Salvage();
  EXPECT_EQ(report.dangling_entries_removed, 0u);
  EXPECT_EQ(report.orphan_vnodes_removed, 0u);
  EXPECT_EQ(report.parents_fixed, 0u);
  // Invariant 2: incremental quota accounting equals recomputed usage.
  EXPECT_EQ(report.usage_corrected_bytes, 0u);
  EXPECT_EQ(vol.usage_bytes(), usage_before);

  // Invariant 3: a clone is byte-identical and stays so after more churn.
  auto clone = vol.Clone(2, "churn.snap");
  auto root_before = clone->FetchData(clone->root());
  (void)vol.CreateFile(vol.root(), "post-clone", 1, 0644);
  auto root_after = clone->FetchData(clone->root());
  ASSERT_TRUE(root_before.ok() && root_after.ok());
  EXPECT_EQ(*root_before, *root_after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VolumePropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Multi-client convergence -----------------------------------------------------

class ConvergencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergencePropertyTest, ClientsConvergeToServerTruth) {
  Rng rng(GetParam() ^ 0xc0ffee);
  campus::Campus campus(rng.Chance(0.5) ? campus::CampusConfig::Revised(1, 3)
                                        : campus::CampusConfig::Prototype(1, 3));
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("shared", "pw", 0);
  ASSERT_TRUE(home.ok());

  // All three workstations log in as the owner (mobility) and hammer a
  // small set of files with random whole-file writes and reads.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(campus.workstation(i).LoginWithPassword(home->user, "pw"), Status::kOk);
  }
  std::map<std::string, std::string> last_written;
  for (int step = 0; step < 200; ++step) {
    auto& ws = campus.workstation(rng.Below(3));
    const std::string path = "/vice/usr/shared/f" + std::to_string(rng.Below(5));
    if (rng.Chance(0.4)) {
      const std::string contents = "v" + std::to_string(step);
      if (ws.WriteWholeFile(path, ToBytes(contents)) == Status::kOk) {
        last_written[path] = contents;
      }
    } else {
      auto got = ws.ReadWholeFile(path);
      if (last_written.contains(path)) {
        ASSERT_TRUE(got.ok()) << path;
        // Whole-file semantics: a read returns SOME complete prior version;
        // with our sequential virtual interleaving it must be the latest.
        EXPECT_EQ(ToString(*got), last_written[path]) << path << " step " << step;
      }
    }
  }

  // Convergence: every client, after a flush, sees exactly the server truth.
  for (int i = 0; i < 3; ++i) {
    campus.workstation(i).venus().FlushCache();
    for (const auto& [path, contents] : last_written) {
      auto got = campus.workstation(i).ReadWholeFile(path);
      ASSERT_TRUE(got.ok()) << path;
      EXPECT_EQ(ToString(*got), contents) << path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergencePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- Sealed envelope sweep ----------------------------------------------------------

class SealPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SealPropertyTest, RandomPayloadsRoundTripAndRejectTampering) {
  Rng rng(GetParam() * 31337);
  for (int trial = 0; trial < 50; ++trial) {
    crypto::Key key;
    for (auto& b : key.bytes) b = static_cast<uint8_t>(rng.NextU64());
    Bytes payload(rng.Below(2000));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextU64());

    const Bytes sealed = crypto::Seal(key, payload, rng.NextU64());
    auto opened = crypto::Open(key, sealed);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, payload);

    Bytes tampered = sealed;
    tampered[rng.Below(tampered.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    EXPECT_FALSE(crypto::Open(key, tampered).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SealPropertyTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace itc
