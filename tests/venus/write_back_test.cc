// Tests for the write-back policy ablation (Section 3.2): store-on-close vs
// deferred write-back, including the crash-recovery argument that decided it.

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc::venus {
namespace {

using campus::Campus;
using campus::CampusConfig;

class WriteBackTest : public ::testing::Test {
 protected:
  void Build(VenusConfig::WriteBack policy, uint32_t max_dirty = 10) {
    CampusConfig config = CampusConfig::Revised(1, 2);
    config.workstation.venus.write_back = policy;
    config.workstation.venus.max_dirty_files = max_dirty;
    campus_ = std::make_unique<Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("w", "pw", 0);
    ASSERT_TRUE(home.ok());
    user_ = home->user;
    ws_ = &campus_->workstation(0);
    ASSERT_EQ(ws_->LoginWithPassword(user_, "pw"), Status::kOk);
  }

  std::unique_ptr<Campus> campus_;
  UserId user_ = kAnonymousUser;
  virtue::Workstation* ws_ = nullptr;
};

TEST_F(WriteBackTest, OnCloseStoresImmediately) {
  Build(VenusConfig::WriteBack::kOnClose);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("v1")), Status::kOk);
  EXPECT_EQ(ws_->venus().stats().stores, 1u);
  EXPECT_EQ(ws_->venus().dirty_count(), 0u);
}

TEST_F(WriteBackTest, DeferredQueuesAndCoalesces) {
  Build(VenusConfig::WriteBack::kDeferred, /*max_dirty=*/10);
  // Five edits of the same file: zero stores, one dirty entry.
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("v" + std::to_string(i))),
              Status::kOk);
  }
  EXPECT_EQ(ws_->venus().stats().stores, 0u);
  EXPECT_EQ(ws_->venus().dirty_count(), 1u);

  // Flush pushes exactly one coalesced store with the final contents.
  ASSERT_EQ(ws_->venus().FlushDirty(), Status::kOk);
  EXPECT_EQ(ws_->venus().stats().stores, 1u);
  EXPECT_EQ(ws_->venus().dirty_count(), 0u);

  auto& other = campus_->workstation(1);
  ASSERT_EQ(other.LoginWithPassword(user_, "pw"), Status::kOk);
  EXPECT_EQ(ToString(*other.ReadWholeFile("/vice/usr/w/f")), "v4");
}

TEST_F(WriteBackTest, DeferredHidesUpdatesUntilFlush) {
  // The consistency cost the paper avoided: "changes by one user are
  // immediately visible to all other users" fails under deferral.
  Build(VenusConfig::WriteBack::kDeferred);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("v1")), Status::kOk);
  ASSERT_EQ(ws_->venus().FlushDirty(), Status::kOk);

  auto& other = campus_->workstation(1);
  ASSERT_EQ(other.LoginWithPassword(user_, "pw"), Status::kOk);
  ASSERT_EQ(ToString(*other.ReadWholeFile("/vice/usr/w/f")), "v1");

  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("v2")), Status::kOk);
  // Not flushed: the other workstation still sees v1.
  EXPECT_EQ(ToString(*other.ReadWholeFile("/vice/usr/w/f")), "v1");
  ASSERT_EQ(ws_->venus().FlushDirty(), Status::kOk);
  EXPECT_EQ(ToString(*other.ReadWholeFile("/vice/usr/w/f")), "v2");
}

TEST_F(WriteBackTest, QueueLimitForcesFlush) {
  Build(VenusConfig::WriteBack::kDeferred, /*max_dirty=*/3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f" + std::to_string(i), ToBytes("x")),
              Status::kOk);
  }
  // Hitting the limit flushed everything.
  EXPECT_EQ(ws_->venus().stats().stores, 3u);
  EXPECT_EQ(ws_->venus().dirty_count(), 0u);
}

TEST_F(WriteBackTest, LogoutFlushes) {
  Build(VenusConfig::WriteBack::kDeferred);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("persisted")), Status::kOk);
  EXPECT_EQ(ws_->venus().stats().stores, 0u);
  ws_->Logout();

  auto& other = campus_->workstation(1);
  ASSERT_EQ(other.LoginWithPassword(user_, "pw"), Status::kOk);
  EXPECT_EQ(ToString(*other.ReadWholeFile("/vice/usr/w/f")), "persisted");
}

TEST_F(WriteBackTest, CrashLosesDeferredWrites) {
  // The argument that decided the design: "we have adopted this approach in
  // order to simplify recovery from workstation crashes."
  Build(VenusConfig::WriteBack::kDeferred);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("v1")), Status::kOk);
  ASSERT_EQ(ws_->venus().FlushDirty(), Status::kOk);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("v2-unsaved")), Status::kOk);

  ws_->venus().SimulateCrash();

  auto& other = campus_->workstation(1);
  ASSERT_EQ(other.LoginWithPassword(user_, "pw"), Status::kOk);
  EXPECT_EQ(ToString(*other.ReadWholeFile("/vice/usr/w/f")), "v1");  // v2 lost
}

TEST_F(WriteBackTest, CrashLosesNothingUnderOnClose) {
  Build(VenusConfig::WriteBack::kOnClose);
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/f", ToBytes("v2-durable")), Status::kOk);
  ws_->venus().SimulateCrash();

  auto& other = campus_->workstation(1);
  ASSERT_EQ(other.LoginWithPassword(user_, "pw"), Status::kOk);
  EXPECT_EQ(ToString(*other.ReadWholeFile("/vice/usr/w/f")), "v2-durable");
}

TEST_F(WriteBackTest, DirtyEntriesSurviveEvictionPressure) {
  CampusConfig config = CampusConfig::Revised(1, 1);
  config.workstation.venus.write_back = VenusConfig::WriteBack::kDeferred;
  config.workstation.venus.max_dirty_files = 100;
  config.workstation.venus.max_cache_bytes = 64 * 1024;
  campus_ = std::make_unique<Campus>(config);
  ASSERT_TRUE(campus_->SetupRootVolume().ok());
  auto home = campus_->AddUserWithHome("w", "pw", 0);
  ws_ = &campus_->workstation(0);
  ASSERT_EQ(ws_->LoginWithPassword(home->user, "pw"), Status::kOk);

  // Dirty one small file, then enough unflushed big files to bust the 64 KB
  // cache budget. Dirty entries must never be evicted (their bytes exist
  // nowhere else), so the cache legitimately overshoots its limit.
  ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/precious", ToBytes("unsaved work")),
            Status::kOk);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/w/big" + std::to_string(i),
                                  Bytes(30 * 1024, 'x')),
              Status::kOk);
  }
  EXPECT_GT(ws_->venus().cache().data_bytes(), 64 * 1024u);
  EXPECT_EQ(ws_->venus().dirty_count(), 11u);

  // Flushing persists everything; the cache can then shrink back under its
  // limit, and every byte survives a full cache drop.
  ASSERT_EQ(ws_->venus().FlushDirty(), Status::kOk);
  ws_->venus().cache().EnforceLimits();
  EXPECT_LE(ws_->venus().cache().data_bytes(), 64 * 1024u);
  ws_->venus().FlushCache();
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/vice/usr/w/precious")), "unsaved work");
  EXPECT_EQ(ws_->ReadWholeFile("/vice/usr/w/big7")->size(), 30 * 1024u);
}

}  // namespace
}  // namespace itc::venus
