// Edge cases of Venus's client-side pathname traversal (the revised
// implementation's name resolution): dot components, parents, mount points
// in every position, symlink chains and loops, and trailing-symlink
// semantics.

#include <gtest/gtest.h>

#include "src/campus/campus.h"

namespace itc::venus {
namespace {

using campus::Campus;
using campus::CampusConfig;

class PathResolutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(1, 1));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("p", "pw", 0);
    ASSERT_TRUE(home.ok());
    home_ = *home;
    ws_ = &campus_->workstation(0);
    ASSERT_EQ(ws_->LoginWithPassword(home_.user, "pw"), Status::kOk);
    ASSERT_EQ(ws_->MkDir("/vice/usr/p/a"), Status::kOk);
    ASSERT_EQ(ws_->MkDir("/vice/usr/p/a/b"), Status::kOk);
    ASSERT_EQ(ws_->WriteWholeFile("/vice/usr/p/a/b/leaf", ToBytes("found")), Status::kOk);
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome home_;
  virtue::Workstation* ws_ = nullptr;
};

TEST_F(PathResolutionTest, DotAndDotDotComponents) {
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/vice/usr/p/./a/b/leaf")), "found");
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/vice/usr/p/a/b/../b/leaf")), "found");
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/vice/usr/p/a/./b/.././b/leaf")), "found");
}

TEST_F(PathResolutionTest, DotDotCrossesMountPointsCorrectly) {
  // ".." at a mounted volume's root must land in the directory containing
  // the mount point (Unix semantics), which only the traversal knows — the
  // volume root's own parent fid is null. /usr/p/.. is /usr; /usr/p/../..
  // is the Vice root.
  auto usr = ws_->ReadDir("/vice/usr/p/..");
  ASSERT_TRUE(usr.ok());
  EXPECT_NE(std::find(usr->begin(), usr->end(), "p"), usr->end());

  auto root = ws_->ReadDir("/vice/usr/p/../..");
  ASSERT_TRUE(root.ok());
  EXPECT_NE(std::find(root->begin(), root->end(), "usr"), root->end());
  EXPECT_NE(std::find(root->begin(), root->end(), "unix"), root->end());

  // ".." above the Vice root stays at the root.
  auto still_root = ws_->ReadDir("/vice/../../..");
  ASSERT_TRUE(still_root.ok());
  EXPECT_NE(std::find(still_root->begin(), still_root->end(), "usr"), still_root->end());

  // And a file is reachable through a mount-crossing ".." path.
  auto data = ws_->ReadWholeFile("/vice/usr/p/../p/a/b/leaf");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "found");
}

TEST_F(PathResolutionTest, RelativeSymlinkChain) {
  ASSERT_EQ(ws_->Symlink("b/leaf", "/vice/usr/p/a/l1"), Status::kOk);
  ASSERT_EQ(ws_->Symlink("a/l1", "/vice/usr/p/l2"), Status::kOk);
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/vice/usr/p/l2")), "found");
}

TEST_F(PathResolutionTest, AbsoluteSymlinkRestartsAtViceRoot) {
  // Absolute Vice symlinks are absolute within the shared name space.
  ASSERT_EQ(ws_->Symlink("/usr/p/a/b/leaf", "/vice/usr/p/abs"), Status::kOk);
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/vice/usr/p/abs")), "found");
}

TEST_F(PathResolutionTest, SymlinkLoopDetected) {
  ASSERT_EQ(ws_->Symlink("loop2", "/vice/usr/p/loop1"), Status::kOk);
  ASSERT_EQ(ws_->Symlink("loop1", "/vice/usr/p/loop2"), Status::kOk);
  EXPECT_EQ(ws_->ReadWholeFile("/vice/usr/p/loop1").status(), Status::kSymlinkLoop);
}

TEST_F(PathResolutionTest, TrailingSymlinkNotFollowedByReadLink) {
  ASSERT_EQ(ws_->Symlink("a/b/leaf", "/vice/usr/p/link"), Status::kOk);
  EXPECT_EQ(*ws_->ReadLink("/vice/usr/p/link"), "a/b/leaf");
  // Stat follows; the result is the file, not the link.
  auto st = ws_->Stat("/vice/usr/p/link");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, virtue::FileInfo::Type::kFile);
  EXPECT_EQ(st->size, 5u);
}

TEST_F(PathResolutionTest, SymlinkIntoAnotherUsersVolume) {
  auto other = campus_->AddUserWithHome("q", "pw2", 0);
  ASSERT_TRUE(other.ok());
  ASSERT_EQ(campus_->PopulateDirect(other->volume, "/public", ToBytes("from q")),
            Status::kOk);
  // A symlink crossing a mount point (usr/p -> usr/q).
  ASSERT_EQ(ws_->Symlink("/usr/q/public", "/vice/usr/p/theirs"), Status::kOk);
  EXPECT_EQ(ToString(*ws_->ReadWholeFile("/vice/usr/p/theirs")), "from q");
}

TEST_F(PathResolutionTest, MountPointAsFinalComponent) {
  // Listing "/vice/usr/p" where "p" is itself a mount point must land in
  // the mounted volume's root.
  auto names = ws_->ReadDir("/vice/usr/p");
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names->begin(), names->end(), "a"), names->end());
}

TEST_F(PathResolutionTest, MissingIntermediateVsMissingLeaf) {
  EXPECT_EQ(ws_->ReadWholeFile("/vice/usr/p/a/b/absent").status(), Status::kNotFound);
  EXPECT_EQ(ws_->ReadWholeFile("/vice/usr/p/ghost/leaf").status(), Status::kNotFound);
  // Traversing through a regular file is a shape error, not NotFound.
  EXPECT_EQ(ws_->ReadWholeFile("/vice/usr/p/a/b/leaf/deeper").status(),
            Status::kNotDirectory);
}

TEST_F(PathResolutionTest, WarmTraversalUsesNoServerCalls) {
  ASSERT_TRUE(ws_->ReadWholeFile("/vice/usr/p/a/b/leaf").ok());  // warm everything
  campus_->ResetAllStats();
  ASSERT_TRUE(ws_->ReadWholeFile("/vice/usr/p/a/b/leaf").ok());
  EXPECT_EQ(campus_->TotalCalls(), 0u);  // dirs + file all under callback promises
}

}  // namespace
}  // namespace itc::venus
