// Unit tests for Venus's whole-file cache: status/data entries, LRU
// eviction under both limit policies, and pinning.

#include "src/venus/file_cache.h"

#include <gtest/gtest.h>

namespace itc::venus {
namespace {

vice::VnodeStatus StatusFor(const Fid& fid, uint64_t length) {
  vice::VnodeStatus s;
  s.fid = fid;
  s.length = length;
  s.version = 1;
  return s;
}

class FileCacheTest : public ::testing::Test {
 protected:
  FileCache MakeCache(VenusConfig::CacheLimit policy, uint64_t max_bytes,
                      uint32_t max_files) {
    VenusConfig config;
    config.cache_limit = policy;
    config.max_cache_bytes = max_bytes;
    config.max_cache_files = max_files;
    return FileCache(&fs_, "/cache", config);
  }

  unixfs::FileSystem fs_;
};

TEST_F(FileCacheTest, InstallAndRead) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  const Fid fid{1, 2, 3};
  cache.InstallData(fid, StatusFor(fid, 5), ToBytes("hello"));
  auto data = cache.ReadData(fid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "hello");
  EXPECT_EQ(cache.data_bytes(), 5u);
  EXPECT_EQ(cache.data_entry_count(), 1u);
  // The cached copy is a real local file.
  EXPECT_TRUE(fs_.Stat("/cache/1.2.3").ok());
}

TEST_F(FileCacheTest, StatusOnlyEntryHasNoData) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  const Fid fid{1, 2, 3};
  cache.PutStatus(fid, StatusFor(fid, 10));
  EXPECT_NE(cache.Find(fid), nullptr);
  EXPECT_FALSE(cache.Find(fid)->has_data);
  EXPECT_EQ(cache.ReadData(fid).status(), Status::kNotFound);
}

TEST_F(FileCacheTest, ReinstallReplacesBytes) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  const Fid fid{1, 2, 3};
  cache.InstallData(fid, StatusFor(fid, 4), ToBytes("long contents"));
  cache.InstallData(fid, StatusFor(fid, 4), ToBytes("tiny"));
  EXPECT_EQ(cache.data_bytes(), 4u);
  EXPECT_EQ(ToString(*cache.ReadData(fid)), "tiny");
}

TEST_F(FileCacheTest, InvalidateKeepsDataForRevalidation) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  const Fid fid{1, 2, 3};
  cache.InstallData(fid, StatusFor(fid, 1), ToBytes("x"));
  cache.Invalidate(fid);
  EXPECT_FALSE(cache.Find(fid)->valid);
  EXPECT_TRUE(cache.Find(fid)->has_data);
  EXPECT_TRUE(cache.ReadData(fid).ok());
}

TEST_F(FileCacheTest, EraseRemovesLocalFile) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  const Fid fid{1, 2, 3};
  cache.InstallData(fid, StatusFor(fid, 3), ToBytes("xyz"));
  cache.Erase(fid);
  EXPECT_EQ(cache.Find(fid), nullptr);
  EXPECT_EQ(cache.data_bytes(), 0u);
  EXPECT_FALSE(fs_.Stat("/cache/1.2.3").ok());
}

TEST_F(FileCacheTest, SpaceLimitEvictsLru) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, /*max_bytes=*/1000, 100);
  for (uint32_t i = 0; i < 4; ++i) {
    const Fid fid{1, i + 10, 1};
    cache.InstallData(fid, StatusFor(fid, 300), Bytes(300, 'a'));
    cache.Touch(fid, i * 100);
  }
  // 1200 bytes cached; LRU (vnode 10) must go.
  auto evicted = cache.EnforceLimits();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].vnode, 10u);
  EXPECT_LE(cache.data_bytes(), 1000u);
}

TEST_F(FileCacheTest, FileCountLimitIgnoresBytes) {
  // The prototype's policy: count files, not bytes (Section 3.5.1) — so a
  // few huge files can blow past any byte budget without eviction.
  auto cache = MakeCache(VenusConfig::CacheLimit::kFileCount, /*max_bytes=*/1000,
                         /*max_files=*/3);
  for (uint32_t i = 0; i < 3; ++i) {
    const Fid fid{1, i + 10, 1};
    cache.InstallData(fid, StatusFor(fid, 5000), Bytes(5000, 'b'));
    cache.Touch(fid, i);
  }
  EXPECT_TRUE(cache.EnforceLimits().empty());  // 15000 bytes, but only 3 files
  const Fid fid{1, 99, 1};
  cache.InstallData(fid, StatusFor(fid, 10), Bytes(10, 'c'));
  cache.Touch(fid, 100);
  auto evicted = cache.EnforceLimits();
  EXPECT_EQ(evicted.size(), 1u);  // over the file count now
}

TEST_F(FileCacheTest, PinnedEntriesAreNotEvicted) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kFileCount, 1 << 20, /*max_files=*/1);
  const Fid pinned{1, 1, 1};
  const Fid loose{1, 2, 1};
  cache.InstallData(pinned, StatusFor(pinned, 3), ToBytes("abc"));
  cache.Pin(pinned);
  cache.Touch(pinned, 0);  // oldest
  cache.InstallData(loose, StatusFor(loose, 3), ToBytes("def"));
  cache.Touch(loose, 10);
  auto evicted = cache.EnforceLimits();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], loose);  // pinned survives despite being LRU
  cache.Unpin(pinned);
}

TEST_F(FileCacheTest, EverythingPinnedMeansNoEviction) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kFileCount, 1 << 20, 1);
  for (uint32_t i = 0; i < 3; ++i) {
    const Fid fid{1, i + 1, 1};
    cache.InstallData(fid, StatusFor(fid, 1), Bytes(1, 'x'));
    cache.Pin(fid);
  }
  EXPECT_TRUE(cache.EnforceLimits().empty());
  EXPECT_EQ(cache.data_entry_count(), 3u);
}

TEST_F(FileCacheTest, InvalidateAllMarksEverything) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  for (uint32_t i = 0; i < 3; ++i) {
    const Fid fid{1, i + 1, 1};
    cache.InstallData(fid, StatusFor(fid, 1), Bytes(1, 'x'));
  }
  cache.InvalidateAll();
  for (const Fid& fid : cache.CachedFids()) {
    EXPECT_FALSE(cache.Find(fid)->valid);
  }
}

TEST_F(FileCacheTest, StatsTrackEvictions) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kFileCount, 1 << 20, 1);
  const Fid a{1, 1, 1}, b{1, 2, 1};
  cache.InstallData(a, StatusFor(a, 100), Bytes(100, 'x'));
  cache.Touch(a, 0);
  cache.InstallData(b, StatusFor(b, 50), Bytes(50, 'y'));
  cache.Touch(b, 1);
  cache.EnforceLimits();
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().evicted_bytes, 100u);
}

TEST_F(FileCacheTest, WriteDataUpdatesAccounting) {
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  const Fid fid{1, 2, 3};
  cache.InstallData(fid, StatusFor(fid, 3), ToBytes("abc"));
  ASSERT_EQ(cache.WriteData(fid, Bytes(1000, 'z')), Status::kOk);
  EXPECT_EQ(cache.data_bytes(), 1000u);
  EXPECT_EQ(cache.Find(fid)->status.length, 1000u);
}

TEST_F(FileCacheTest, PathForDerivesTheLocalPathFromTheFid) {
  // Regression: entries no longer store a cache_path string; the local path
  // is derived from the fid on demand and must be stable across the entry's
  // whole lifetime (install, read, write, erase all address the same file).
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, 1 << 20, 100);
  const Fid fid{7, 42, 9};
  EXPECT_EQ(cache.PathFor(fid), "/cache/7.42.9");
  cache.InstallData(fid, StatusFor(fid, 3), ToBytes("abc"));
  EXPECT_TRUE(fs_.Stat(cache.PathFor(fid)).ok());
  ASSERT_EQ(cache.WriteData(fid, ToBytes("abcd")), Status::kOk);
  EXPECT_EQ(ToString(*fs_.ReadFile(cache.PathFor(fid))), "abcd");
  cache.Erase(fid);
  EXPECT_FALSE(fs_.Stat(cache.PathFor(fid)).ok());
}

TEST_F(FileCacheTest, EvictionRemovesDerivedFilesAndKeepsAccountingExact) {
  // Same scenario as SpaceLimitEvictsLru, additionally pinning the on-disk
  // and byte-accounting effects: the evicted fid's derived file is gone,
  // the survivors' files remain, and data_bytes equals the surviving sum.
  auto cache = MakeCache(VenusConfig::CacheLimit::kSpace, /*max_bytes=*/1000, 100);
  for (uint32_t i = 0; i < 4; ++i) {
    const Fid fid{1, i + 10, 1};
    cache.InstallData(fid, StatusFor(fid, 300), Bytes(300, 'a'));
    cache.Touch(fid, i * 100);
  }
  auto evicted = cache.EnforceLimits();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_FALSE(fs_.Stat(cache.PathFor(evicted[0])).ok());
  uint64_t surviving = 0;
  for (const Fid& fid : cache.CachedFids()) {
    if (cache.Find(fid)->has_data) {
      EXPECT_TRUE(fs_.Stat(cache.PathFor(fid)).ok());
      surviving += cache.Find(fid)->status.length;
    }
  }
  EXPECT_EQ(cache.data_bytes(), surviving);
  EXPECT_EQ(cache.data_bytes(), 900u);
}

}  // namespace
}  // namespace itc::venus
