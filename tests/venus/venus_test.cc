// Behavioural tests of Venus through a small campus: validation schemes,
// location hints, read-only replica preference, eviction-driven callback
// removal, and stale-fid recovery.

#include "src/venus/venus.h"

#include <gtest/gtest.h>

#include "src/campus/campus.h"
#include "src/workload/populate.h"
#include "src/workload/synthetic_user.h"

namespace itc::venus {
namespace {

using campus::Campus;
using campus::CampusConfig;

class VenusTest : public ::testing::Test {
 protected:
  void Build(CampusConfig config) {
    campus_ = std::make_unique<Campus>(config);
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("alice", "pw", /*custodian=*/0);
    ASSERT_TRUE(home.ok());
    alice_ = *home;
  }

  virtue::Workstation& Login(size_t ws_index) {
    auto& ws = campus_->workstation(ws_index);
    EXPECT_EQ(ws.LoginWithPassword(alice_.user, "pw"), Status::kOk);
    return ws;
  }

  std::unique_ptr<Campus> campus_;
  Campus::UserHome alice_;
};

TEST_F(VenusTest, CallbackModeSkipsValidationOnWarmOpens) {
  Build(CampusConfig::Revised(1, 2));
  auto& ws = Login(0);
  const std::string path = "/vice/usr/alice/f";
  ASSERT_EQ(ws.WriteWholeFile(path, ToBytes("x")), Status::kOk);
  ASSERT_TRUE(ws.ReadWholeFile(path).ok());  // warm: revalidates the parent dir

  const auto before = ws.venus().stats();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ws.ReadWholeFile(path).ok());
  const auto after = ws.venus().stats();
  // Warm opens are pure cache hits: no fetches, no validations.
  EXPECT_EQ(after.fetches, before.fetches);
  EXPECT_EQ(after.validations, before.validations);
  EXPECT_EQ(after.cache_hits - before.cache_hits, 5u);
}

TEST_F(VenusTest, CheckOnOpenValidatesEveryOpen) {
  CampusConfig config = CampusConfig::Revised(1, 2);
  config.workstation.venus.validation = VenusConfig::Validation::kCheckOnOpen;
  config.vice.callbacks = false;
  Build(config);
  auto& ws = Login(0);
  const std::string path = "/vice/usr/alice/f";
  ASSERT_EQ(ws.WriteWholeFile(path, ToBytes("x")), Status::kOk);
  ASSERT_TRUE(ws.ReadWholeFile(path).ok());  // warm: refetch the changed dir

  const auto before = ws.venus().stats();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ws.ReadWholeFile(path).ok());
  const auto after = ws.venus().stats();
  // Each open round-trips a Validate (the prototype's dominant traffic),
  // and traversal validates cached directories as well.
  EXPECT_GE(after.validations - before.validations, 5u);
  EXPECT_EQ(after.fetches, before.fetches);  // but no refetches
}

TEST_F(VenusTest, CheckOnOpenSeesRemoteUpdateWithoutCallbacks) {
  CampusConfig config = CampusConfig::Revised(1, 3);
  config.workstation.venus.validation = VenusConfig::Validation::kCheckOnOpen;
  config.vice.callbacks = false;
  Build(config);
  auto other = campus_->AddUserWithHome("bob", "pw2", 0);
  ASSERT_TRUE(other.ok());

  auto& ws_a = Login(0);
  auto& ws_b = campus_->workstation(1);
  ASSERT_EQ(ws_b.LoginWithPassword(other->user, "pw2"), Status::kOk);

  const std::string path = "/vice/usr/alice/shared";
  ASSERT_EQ(ws_a.WriteWholeFile(path, ToBytes("v1")), Status::kOk);
  ASSERT_TRUE(ws_b.ReadWholeFile(path).ok());
  ASSERT_EQ(ws_a.WriteWholeFile(path, ToBytes("v2")), Status::kOk);
  // No callback arrives (disabled); validation on open catches the change.
  auto v2 = ws_b.ReadWholeFile(path);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(ToString(*v2), "v2");
}

TEST_F(VenusTest, EvictionNotifiesCustodian) {
  CampusConfig config = CampusConfig::Revised(1, 1);
  config.workstation.venus.cache_limit = VenusConfig::CacheLimit::kSpace;
  config.workstation.venus.max_cache_bytes = 64 * 1024;
  Build(config);
  ASSERT_EQ(workload::PopulateUserFiles(*campus_, alice_.volume, 40, 7), Status::kOk);

  auto& ws = Login(0);
  // Stream through far more data than the cache can hold.
  for (uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        ws.ReadWholeFile("/vice/usr/alice/" + workload::SyntheticUser::OwnFileName(i))
            .ok());
  }
  EXPECT_LE(ws.venus().cache().data_bytes(), 64 * 1024u);
  EXPECT_GT(ws.venus().cache().stats().evictions, 0u);
  // Server-side promise count stays bounded by what is actually cached
  // (RemoveCallback was sent for evicted files).
  const size_t promises = campus_->server(0).callbacks().promise_count();
  EXPECT_LE(promises, ws.venus().cache().entry_count() + 2);
}

TEST_F(VenusTest, ReadOnlyReplicaPreferredInOwnCluster) {
  CampusConfig config = CampusConfig::Revised(2, 2);
  Build(config);
  auto sysvol = campus_->CreateSystemVolume("sys", "/unix/sun", /*custodian=*/0);
  ASSERT_TRUE(sysvol.ok());
  ASSERT_EQ(workload::PopulateSystemBinaries(*campus_, *sysvol, 5, 3), Status::kOk);

  // Release read-only replicas at both cluster servers.
  ASSERT_TRUE(campus_->registry().ReleaseReadOnly(*sysvol, "sys.ro", {0, 1}).ok());

  // A workstation in cluster 1 must fetch binaries from its own cluster
  // server (1), not the custodian (0). Warm the directory cache first; the
  // root volume itself is unreplicated, so its directories legitimately come
  // from server 0.
  auto& ws = Login(2);  // cluster 1
  ASSERT_TRUE(ws.ReadWholeFile("/vice/unix/sun/bin/prog0").ok());
  campus_->ResetAllStats();
  ASSERT_TRUE(ws.ReadWholeFile("/vice/unix/sun/bin/prog1").ok());
  auto hist0 = campus_->server(0).CallHistogram();
  auto hist1 = campus_->server(1).CallHistogram();
  EXPECT_EQ(hist0[vice::CallClass::kFetch], 0u);
  EXPECT_GE(hist1[vice::CallClass::kFetch], 1u);
  EXPECT_EQ(campus_->network().stats().cross_cluster_messages, 0u);
}

TEST_F(VenusTest, ReplicatedRootVolumeLocalizesAllResolution) {
  // The full AFS-style deployment: the root volume itself is released
  // read-only to every cluster server, so even pathname resolution never
  // crosses a bridge for read traffic.
  CampusConfig config = CampusConfig::Revised(2, 2);
  Build(config);
  auto sysvol = campus_->CreateSystemVolume("sys", "/unix/sun", /*custodian=*/0);
  ASSERT_TRUE(sysvol.ok());
  ASSERT_EQ(workload::PopulateSystemBinaries(*campus_, *sysvol, 3, 3), Status::kOk);
  ASSERT_TRUE(campus_->registry().ReleaseReadOnly(*sysvol, "sys.ro", {0, 1}).ok());
  const VolumeId root = campus_->registry().location().root_volume;
  ASSERT_TRUE(campus_->registry().ReleaseReadOnly(root, "root.ro", {0, 1}).ok());

  auto& ws = Login(2);  // cluster 1
  campus_->ResetAllStats();
  ASSERT_TRUE(ws.ReadWholeFile("/vice/unix/sun/bin/prog0").ok());
  // Every fetch — root dirs included — was served inside cluster 1.
  auto hist0 = campus_->server(0).CallHistogram();
  EXPECT_EQ(hist0[vice::CallClass::kFetch], 0u);
  EXPECT_EQ(campus_->network().stats().cross_cluster_messages, 0u);

  // Writes still reach the read-write volumes: Alice edits her home (mounted
  // inside the RW root), which must succeed even though reads went RO.
  EXPECT_EQ(ws.WriteWholeFile("/vice/usr/alice/note", ToBytes("rw ok")), Status::kOk);
}

TEST_F(VenusTest, WritesBypassReadOnlyReplica) {
  CampusConfig config = CampusConfig::Revised(1, 1);
  Build(config);
  auto sysvol = campus_->CreateSystemVolume("sys", "/unix/sun", 0);
  ASSERT_TRUE(sysvol.ok());
  ASSERT_EQ(campus_->PopulateDirect(*sysvol, "/bin/tool", ToBytes("v1")), Status::kOk);
  ASSERT_TRUE(campus_->registry().ReleaseReadOnly(*sysvol, "sys.ro", {0}).ok());

  auto& ws = Login(0);
  // Reading goes to the clone...
  ASSERT_TRUE(ws.ReadWholeFile("/vice/unix/sun/bin/tool").ok());
  // ...but an administrator write resolves to the RW volume. Alice lacks
  // rights there (Administrators only), so she is denied — NOT told
  // "read-only volume", proving resolution reached the RW path.
  EXPECT_EQ(ws.WriteWholeFile("/vice/unix/sun/bin/tool", ToBytes("v2")),
            Status::kPermissionDenied);
}

TEST_F(VenusTest, StaleNameCacheRecoversAfterRemoteReplace) {
  // Prototype mode resolves by pathname and caches name->fid. If another
  // workstation deletes and recreates the file, the fid goes stale; Venus
  // must re-resolve transparently.
  CampusConfig config = CampusConfig::Prototype(1, 2);
  Build(config);
  auto other = campus_->AddUserWithHome("bob", "pw2", 0);
  ASSERT_TRUE(other.ok());

  auto& ws_a = Login(0);
  auto& ws_b = campus_->workstation(1);
  ASSERT_EQ(ws_b.LoginWithPassword(other->user, "pw2"), Status::kOk);

  // Bob creates in his own home; Alice reads it (AnyUser r).
  const std::string path = "/vice/usr/bob/doc";
  ASSERT_EQ(ws_b.WriteWholeFile(path, ToBytes("v1")), Status::kOk);
  ASSERT_EQ(ToString(*ws_a.ReadWholeFile(path)), "v1");

  // Bob replaces the file wholesale (delete + recreate = new fid).
  ASSERT_EQ(ws_b.Unlink(path), Status::kOk);
  ASSERT_EQ(ws_b.WriteWholeFile(path, ToBytes("v2")), Status::kOk);

  auto v2 = ws_a.ReadWholeFile(path);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(ToString(*v2), "v2");
}

TEST_F(VenusTest, PrototypeModeRefusesViceSymlinksAndDirRenames) {
  Build(CampusConfig::Prototype(1, 1));
  auto& ws = Login(0);
  ASSERT_EQ(ws.MkDir("/vice/usr/alice/dir"), Status::kOk);
  // Section 5.1's prototype shortcomings, reproduced.
  EXPECT_EQ(ws.venus().Symlink("/usr/alice/dir", "/usr/alice/link"),
            Status::kNotSupported);
  EXPECT_EQ(ws.venus().Rename("/usr/alice/dir", "/usr/alice/dir2"),
            Status::kNotSupported);
  // File renames still work.
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/alice/f", ToBytes("x")), Status::kOk);
  EXPECT_EQ(ws.venus().Rename("/usr/alice/f", "/usr/alice/g"), Status::kOk);
}

TEST_F(VenusTest, ViceSymlinksWorkInRevisedMode) {
  Build(CampusConfig::Revised(1, 1));
  auto& ws = Login(0);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/alice/real", ToBytes("target data")),
            Status::kOk);
  ASSERT_EQ(ws.Symlink("real", "/vice/usr/alice/link"), Status::kOk);
  auto via_link = ws.ReadWholeFile("/vice/usr/alice/link");
  ASSERT_TRUE(via_link.ok());
  EXPECT_EQ(ToString(*via_link), "target data");
  EXPECT_EQ(*ws.ReadLink("/vice/usr/alice/link"), "real");
}

TEST_F(VenusTest, LogoutInvalidatesCacheTrust) {
  Build(CampusConfig::Revised(1, 1));
  auto& ws = Login(0);
  ASSERT_EQ(ws.WriteWholeFile("/vice/usr/alice/f", ToBytes("x")), Status::kOk);
  ws.Logout();
  // Without a session nothing shared is reachable.
  EXPECT_EQ(ws.ReadWholeFile("/vice/usr/alice/f").status(), Status::kAuthFailed);
  // Re-login revalidates rather than blindly trusting the cache.
  ASSERT_EQ(ws.LoginWithPassword(alice_.user, "pw"), Status::kOk);
  const auto before = ws.venus().stats();
  ASSERT_TRUE(ws.ReadWholeFile("/vice/usr/alice/f").ok());
  const auto after = ws.venus().stats();
  EXPECT_GT((after.validations + after.fetches) - (before.validations + before.fetches),
            0u);
}

TEST_F(VenusTest, OpenHandleSurvivesRemoteReplacement) {
  // Unix open-file semantics across the stale-fid path: while a descriptor
  // is open, another workstation deletes and recreates the file. The open
  // handle keeps reading its (old) copy; new opens see the new file.
  Build(CampusConfig::Revised(1, 2));
  auto other = campus_->AddUserWithHome("bob", "pw2", 0);
  ASSERT_TRUE(other.ok());
  auto& ws_a = Login(0);
  auto& ws_b = campus_->workstation(1);
  ASSERT_EQ(ws_b.LoginWithPassword(other->user, "pw2"), Status::kOk);

  const std::string path = "/vice/usr/bob/doc";
  ASSERT_EQ(ws_b.WriteWholeFile(path, ToBytes("old content")), Status::kOk);

  auto fd = ws_a.Open(path, virtue::kRead);
  ASSERT_TRUE(fd.ok());

  // Replace remotely: delete + recreate (fresh fid).
  ASSERT_EQ(ws_b.Unlink(path), Status::kOk);
  ASSERT_EQ(ws_b.WriteWholeFile(path, ToBytes("new content")), Status::kOk);

  // A new open on ws_a transparently re-resolves to the new file...
  auto fresh = ws_a.ReadWholeFile(path);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(ToString(*fresh), "new content");

  // ...while the original descriptor still reads the old bytes and closes
  // cleanly (the pinned cache entry was invalidated, not destroyed).
  auto old_bytes = ws_a.Read(*fd, 100);
  ASSERT_TRUE(old_bytes.ok());
  EXPECT_EQ(ToString(*old_bytes), "old content");
  EXPECT_EQ(ws_a.Close(*fd), Status::kOk);
}

TEST_F(VenusTest, AdvisoryLocksAcrossWorkstations) {
  Build(CampusConfig::Revised(1, 2));
  auto other = campus_->AddUserWithHome("bob", "pw2", 0);
  ASSERT_TRUE(other.ok());
  auto& ws_a = Login(0);
  auto& ws_b = campus_->workstation(1);
  ASSERT_EQ(ws_b.LoginWithPassword(other->user, "pw2"), Status::kOk);

  ASSERT_EQ(ws_a.WriteWholeFile("/vice/usr/alice/db", ToBytes("x")), Status::kOk);

  // AnyUser holds only lookup+read on Alice's home; locking needs the Lock
  // right, so Bob is refused until Alice grants it.
  EXPECT_EQ(ws_b.venus().SetLock("/usr/alice/db", vice::LockMode::kShared),
            Status::kPermissionDenied);
  auto acl = ws_a.venus().GetAcl("/usr/alice");
  ASSERT_TRUE(acl.ok());
  acl->SetPositive(protection::Principal::User(other->user),
                   protection::kLookup | protection::kRead | protection::kLock);
  ASSERT_EQ(ws_a.venus().SetAcl("/usr/alice", *acl), Status::kOk);

  ASSERT_EQ(ws_a.venus().SetLock("/usr/alice/db", vice::LockMode::kExclusive),
            Status::kOk);
  EXPECT_EQ(ws_b.venus().SetLock("/usr/alice/db", vice::LockMode::kShared),
            Status::kLocked);
  ASSERT_EQ(ws_a.venus().ReleaseLock("/usr/alice/db"), Status::kOk);
  EXPECT_EQ(ws_b.venus().SetLock("/usr/alice/db", vice::LockMode::kShared), Status::kOk);
}

}  // namespace
}  // namespace itc::venus
