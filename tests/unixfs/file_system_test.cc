// Unit tests for the in-memory Unix file system substrate.

#include "src/unixfs/file_system.h"

#include <gtest/gtest.h>

namespace itc::unixfs {
namespace {

class UnixFsTest : public ::testing::Test {
 protected:
  FileSystem fs_;
};

TEST_F(UnixFsTest, RootExists) {
  auto st = fs_.Stat("/");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, FileType::kDirectory);
  EXPECT_EQ(st->inode, kRootInode);
}

TEST_F(UnixFsTest, CreateAndStatFile) {
  auto inode = fs_.Create("/hello.txt");
  ASSERT_TRUE(inode.ok());
  auto st = fs_.Stat("/hello.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, FileType::kRegular);
  EXPECT_EQ(st->size, 0u);
  EXPECT_EQ(st->link_count, 1u);
}

TEST_F(UnixFsTest, CreateRejectsDuplicatesAndBadNames) {
  ASSERT_TRUE(fs_.Create("/f").ok());
  EXPECT_EQ(fs_.Create("/f").status(), Status::kAlreadyExists);
  EXPECT_EQ(fs_.Create("/missing/f").status(), Status::kNotFound);
  EXPECT_EQ(fs_.Create("/.").status(), Status::kInvalidArgument);
  EXPECT_EQ(fs_.Create("relative").status(), Status::kInvalidArgument);
}

TEST_F(UnixFsTest, WriteAndReadWholeFile) {
  ASSERT_EQ(fs_.WriteFile("/data", ToBytes("contents here")), Status::kOk);
  auto back = fs_.ReadFile("/data");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ToString(*back), "contents here");
  // Overwrite replaces.
  ASSERT_EQ(fs_.WriteFile("/data", ToBytes("short")), Status::kOk);
  EXPECT_EQ(ToString(*fs_.ReadFile("/data")), "short");
}

TEST_F(UnixFsTest, MkDirAllCreatesChain) {
  ASSERT_EQ(fs_.MkDirAll("/a/b/c/d"), Status::kOk);
  EXPECT_TRUE(fs_.Stat("/a/b/c/d").ok());
  // Idempotent.
  EXPECT_EQ(fs_.MkDirAll("/a/b/c/d"), Status::kOk);
  // Fails crossing a file.
  ASSERT_TRUE(fs_.Create("/a/file").ok());
  EXPECT_EQ(fs_.MkDirAll("/a/file/x"), Status::kNotDirectory);
}

TEST_F(UnixFsTest, ReadDirSortedAndTyped) {
  ASSERT_EQ(fs_.MkDir("/d"), Status::kOk);
  ASSERT_TRUE(fs_.Create("/d/zz").ok());
  ASSERT_EQ(fs_.MkDir("/d/aa"), Status::kOk);
  ASSERT_EQ(fs_.Symlink("zz", "/d/mm"), Status::kOk);
  auto entries = fs_.ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "aa");
  EXPECT_EQ((*entries)[0].type, FileType::kDirectory);
  EXPECT_EQ((*entries)[1].name, "mm");
  EXPECT_EQ((*entries)[1].type, FileType::kSymlink);
  EXPECT_EQ((*entries)[2].name, "zz");
  EXPECT_EQ((*entries)[2].type, FileType::kRegular);
}

TEST_F(UnixFsTest, UnlinkSemantics) {
  ASSERT_TRUE(fs_.Create("/f").ok());
  ASSERT_EQ(fs_.MkDir("/d"), Status::kOk);
  EXPECT_EQ(fs_.Unlink("/d"), Status::kIsDirectory);
  EXPECT_EQ(fs_.Unlink("/nope"), Status::kNotFound);
  EXPECT_EQ(fs_.Unlink("/f"), Status::kOk);
  EXPECT_EQ(fs_.Stat("/f").status(), Status::kNotFound);
}

TEST_F(UnixFsTest, RmDirOnlyEmpty) {
  ASSERT_EQ(fs_.MkDir("/d"), Status::kOk);
  ASSERT_TRUE(fs_.Create("/d/f").ok());
  EXPECT_EQ(fs_.RmDir("/d"), Status::kNotEmpty);
  ASSERT_EQ(fs_.Unlink("/d/f"), Status::kOk);
  EXPECT_EQ(fs_.RmDir("/d"), Status::kOk);
  EXPECT_EQ(fs_.Stat("/d").status(), Status::kNotFound);
}

TEST_F(UnixFsTest, HardLinksShareData) {
  ASSERT_EQ(fs_.WriteFile("/orig", ToBytes("shared")), Status::kOk);
  ASSERT_EQ(fs_.HardLink("/orig", "/alias"), Status::kOk);
  EXPECT_EQ(fs_.Stat("/orig")->link_count, 2u);
  EXPECT_EQ(fs_.Stat("/orig")->inode, fs_.Stat("/alias")->inode);

  ASSERT_EQ(fs_.WriteFile("/alias", ToBytes("updated")), Status::kOk);
  EXPECT_EQ(ToString(*fs_.ReadFile("/orig")), "updated");

  ASSERT_EQ(fs_.Unlink("/orig"), Status::kOk);
  EXPECT_EQ(ToString(*fs_.ReadFile("/alias")), "updated");
  EXPECT_EQ(fs_.Stat("/alias")->link_count, 1u);
}

TEST_F(UnixFsTest, HardLinkToDirectoryRejected) {
  ASSERT_EQ(fs_.MkDir("/d"), Status::kOk);
  EXPECT_EQ(fs_.HardLink("/d", "/d2"), Status::kIsDirectory);
}

TEST_F(UnixFsTest, SymlinkResolution) {
  ASSERT_EQ(fs_.MkDirAll("/real/sub"), Status::kOk);
  ASSERT_EQ(fs_.WriteFile("/real/sub/f", ToBytes("x")), Status::kOk);
  ASSERT_EQ(fs_.Symlink("/real", "/abs"), Status::kOk);
  ASSERT_EQ(fs_.Symlink("sub", "/real/rel"), Status::kOk);

  EXPECT_TRUE(fs_.Stat("/abs/sub/f").ok());
  EXPECT_TRUE(fs_.Stat("/real/rel/f").ok());
  EXPECT_TRUE(fs_.Stat("/abs/rel/f").ok());  // chained

  // LStat does not follow the final link.
  EXPECT_EQ(fs_.LStat("/abs")->type, FileType::kSymlink);
  EXPECT_EQ(fs_.Stat("/abs")->type, FileType::kDirectory);
  EXPECT_EQ(*fs_.ReadLink("/abs"), "/real");
  EXPECT_EQ(fs_.ReadLink("/real").status(), Status::kNotSymlink);
}

TEST_F(UnixFsTest, SymlinkLoopDetected) {
  ASSERT_EQ(fs_.Symlink("/b", "/a"), Status::kOk);
  ASSERT_EQ(fs_.Symlink("/a", "/b"), Status::kOk);
  EXPECT_EQ(fs_.Stat("/a").status(), Status::kSymlinkLoop);
}

TEST_F(UnixFsTest, DotAndDotDotResolution) {
  ASSERT_EQ(fs_.MkDirAll("/a/b"), Status::kOk);
  ASSERT_EQ(fs_.WriteFile("/a/f", ToBytes("x")), Status::kOk);
  EXPECT_TRUE(fs_.Stat("/a/b/../f").ok());
  EXPECT_TRUE(fs_.Stat("/a/./b/.././f").ok());
  // ".." above the root stays at the root.
  EXPECT_TRUE(fs_.Stat("/../a/f").ok());
}

TEST_F(UnixFsTest, RenameFile) {
  ASSERT_EQ(fs_.WriteFile("/old", ToBytes("v")), Status::kOk);
  ASSERT_EQ(fs_.MkDir("/dir"), Status::kOk);
  ASSERT_EQ(fs_.Rename("/old", "/dir/new"), Status::kOk);
  EXPECT_EQ(fs_.Stat("/old").status(), Status::kNotFound);
  EXPECT_EQ(ToString(*fs_.ReadFile("/dir/new")), "v");
}

TEST_F(UnixFsTest, RenameReplacesExistingFile) {
  ASSERT_EQ(fs_.WriteFile("/src", ToBytes("new")), Status::kOk);
  ASSERT_EQ(fs_.WriteFile("/dst", ToBytes("old")), Status::kOk);
  ASSERT_EQ(fs_.Rename("/src", "/dst"), Status::kOk);
  EXPECT_EQ(ToString(*fs_.ReadFile("/dst")), "new");
}

TEST_F(UnixFsTest, RenameDirectoryRules) {
  ASSERT_EQ(fs_.MkDirAll("/a/b"), Status::kOk);
  ASSERT_EQ(fs_.MkDir("/c"), Status::kOk);
  // Cannot move a directory into its own subtree.
  EXPECT_EQ(fs_.Rename("/a", "/a/b/a"), Status::kInvalidArgument);
  // Can replace an empty directory.
  ASSERT_EQ(fs_.Rename("/c", "/a/b"), Status::kOk);
  EXPECT_TRUE(fs_.Stat("/a/b").ok());
  EXPECT_EQ(fs_.Stat("/c").status(), Status::kNotFound);
  // Cannot replace a non-empty directory.
  ASSERT_EQ(fs_.MkDir("/d"), Status::kOk);
  ASSERT_EQ(fs_.MkDirAll("/e/full"), Status::kOk);
  EXPECT_EQ(fs_.Rename("/d", "/e"), Status::kNotEmpty);
}

TEST_F(UnixFsTest, RenameToSelfIsNoOp) {
  ASSERT_EQ(fs_.WriteFile("/f", ToBytes("v")), Status::kOk);
  EXPECT_EQ(fs_.Rename("/f", "/f"), Status::kOk);
  EXPECT_EQ(ToString(*fs_.ReadFile("/f")), "v");
}

TEST_F(UnixFsTest, RemoveAllSubtree) {
  ASSERT_EQ(fs_.MkDirAll("/t/a/b"), Status::kOk);
  ASSERT_EQ(fs_.WriteFile("/t/a/f1", ToBytes("1")), Status::kOk);
  ASSERT_EQ(fs_.WriteFile("/t/a/b/f2", ToBytes("22")), Status::kOk);
  const uint64_t inodes_before = fs_.inode_count();
  ASSERT_EQ(fs_.RemoveAll("/t"), Status::kOk);
  EXPECT_EQ(fs_.Stat("/t").status(), Status::kNotFound);
  EXPECT_EQ(fs_.inode_count(), inodes_before - 5);
  EXPECT_EQ(fs_.total_data_bytes(), 0u);
}

TEST_F(UnixFsTest, ByteRangeIo) {
  auto inode = fs_.Create("/f");
  ASSERT_TRUE(inode.ok());
  ASSERT_EQ(fs_.WriteAt(*inode, 0, ToBytes("hello world")), Status::kOk);
  auto mid = fs_.ReadAt(*inode, 6, 5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(ToString(*mid), "world");

  // Write past EOF zero-fills the gap.
  ASSERT_EQ(fs_.WriteAt(*inode, 20, ToBytes("!")), Status::kOk);
  EXPECT_EQ(fs_.StatInode(*inode)->size, 21u);
  auto gap = fs_.ReadAt(*inode, 11, 9);
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ((*gap)[0], 0u);

  // Read past EOF returns empty.
  EXPECT_TRUE(fs_.ReadAt(*inode, 100, 10)->empty());
}

TEST_F(UnixFsTest, TruncateGrowsAndShrinks) {
  auto inode = fs_.Create("/f");
  ASSERT_TRUE(inode.ok());
  ASSERT_EQ(fs_.WriteAt(*inode, 0, ToBytes("abcdef")), Status::kOk);
  ASSERT_EQ(fs_.Truncate(*inode, 3), Status::kOk);
  EXPECT_EQ(ToString(*fs_.ReadFileByInode(*inode)), "abc");
  ASSERT_EQ(fs_.Truncate(*inode, 5), Status::kOk);
  EXPECT_EQ(fs_.StatInode(*inode)->size, 5u);
}

TEST_F(UnixFsTest, DataBytesAccounting) {
  EXPECT_EQ(fs_.total_data_bytes(), 0u);
  ASSERT_EQ(fs_.WriteFile("/a", Bytes(1000, 'x')), Status::kOk);
  ASSERT_EQ(fs_.WriteFile("/b", Bytes(500, 'y')), Status::kOk);
  EXPECT_EQ(fs_.total_data_bytes(), 1500u);
  ASSERT_EQ(fs_.WriteFile("/a", Bytes(200, 'z')), Status::kOk);
  EXPECT_EQ(fs_.total_data_bytes(), 700u);
  ASSERT_EQ(fs_.Unlink("/b"), Status::kOk);
  EXPECT_EQ(fs_.total_data_bytes(), 200u);
}

TEST_F(UnixFsTest, MTimeFollowsVirtualClock) {
  fs_.set_now(1000);
  ASSERT_EQ(fs_.WriteFile("/f", ToBytes("a")), Status::kOk);
  EXPECT_EQ(fs_.Stat("/f")->mtime, 1000);
  fs_.set_now(2000);
  ASSERT_EQ(fs_.WriteFile("/f", ToBytes("b")), Status::kOk);
  EXPECT_EQ(fs_.Stat("/f")->mtime, 2000);
  ASSERT_EQ(fs_.SetMTime("/f", 1234), Status::kOk);
  EXPECT_EQ(fs_.Stat("/f")->mtime, 1234);
}

TEST_F(UnixFsTest, ChmodChown) {
  ASSERT_TRUE(fs_.Create("/f").ok());
  ASSERT_EQ(fs_.Chmod("/f", 0600), Status::kOk);
  ASSERT_EQ(fs_.Chown("/f", 42), Status::kOk);
  auto st = fs_.Stat("/f");
  EXPECT_EQ(st->mode, 0600);
  EXPECT_EQ(st->owner, 42u);
}

TEST_F(UnixFsTest, StatThroughFileAsDirectoryFails) {
  ASSERT_TRUE(fs_.Create("/f").ok());
  EXPECT_EQ(fs_.Stat("/f/sub").status(), Status::kNotDirectory);
}

}  // namespace
}  // namespace itc::unixfs
