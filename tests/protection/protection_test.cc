// Unit tests for the protection domain: rights, access lists with negative
// rights, recursive groups / CPS, and the replicated protection service.

#include <gtest/gtest.h>

#include "src/protection/access_list.h"
#include "src/rpc/wire.h"
#include "src/protection/protection_db.h"
#include "src/protection/protection_service.h"
#include "src/protection/rights.h"

namespace itc::protection {
namespace {

// --- Rights -----------------------------------------------------------------

TEST(RightsTest, BitAlgebra) {
  Rights rw = kRead | kWrite;
  EXPECT_TRUE(HasRights(rw, kRead));
  EXPECT_TRUE(HasRights(rw, kWrite));
  EXPECT_FALSE(HasRights(rw, kRead | kInsert));
  EXPECT_EQ(rw & kRead, kRead);
  EXPECT_EQ(~kAllRights, kNone);
  EXPECT_TRUE(HasRights(kAllRights, kAdminister));
}

TEST(RightsTest, ToStringFormat) {
  EXPECT_EQ(RightsToString(kNone), "-------");
  EXPECT_EQ(RightsToString(kLookup | kRead), "lr-----");
  EXPECT_EQ(RightsToString(kAllRights), "lrwidka");
}

// --- AccessList ----------------------------------------------------------------

TEST(AccessListTest, EffectiveIsUnionOfPositives) {
  AccessList acl;
  acl.SetPositive(Principal::User(1), kRead);
  acl.SetPositive(Principal::Group(10), kWrite);
  const std::vector<Principal> cps{Principal::User(1), Principal::Group(10)};
  EXPECT_EQ(acl.Effective(cps), kRead | kWrite);
  EXPECT_EQ(acl.Effective({Principal::User(1)}), kRead);
  EXPECT_EQ(acl.Effective({Principal::User(2)}), kNone);
}

TEST(AccessListTest, NegativeRightsSubtract) {
  // "The union of all the negative rights specified for a user's CPS is
  //  subtracted from his positive rights."
  AccessList acl;
  acl.SetPositive(Principal::Group(10), kAllRights);
  acl.SetNegative(Principal::User(1), kWrite | kAdminister);
  const std::vector<Principal> cps{Principal::User(1), Principal::Group(10)};
  const Rights r = acl.Effective(cps);
  EXPECT_TRUE(HasRights(r, kRead));
  EXPECT_FALSE(HasRights(r, kWrite));
  EXPECT_FALSE(HasRights(r, kAdminister));
}

TEST(AccessListTest, NegativeBeatsPositiveOnSamePrincipal) {
  AccessList acl;
  acl.SetPositive(Principal::User(1), kRead);
  acl.SetNegative(Principal::User(1), kRead);
  EXPECT_EQ(acl.Effective({Principal::User(1)}), kNone);
}

TEST(AccessListTest, SettingNoneRemovesEntry) {
  AccessList acl;
  acl.SetPositive(Principal::User(1), kRead);
  EXPECT_EQ(acl.entry_count(), 1u);
  acl.SetPositive(Principal::User(1), kNone);
  EXPECT_TRUE(acl.empty());
}

TEST(AccessListTest, RemoveClearsBothSides) {
  AccessList acl;
  acl.SetPositive(Principal::User(1), kRead);
  acl.SetNegative(Principal::User(1), kWrite);
  acl.Remove(Principal::User(1));
  EXPECT_TRUE(acl.empty());
}

TEST(AccessListTest, SerializeRoundTrip) {
  AccessList acl;
  acl.SetPositive(Principal::User(42), kRead | kLookup);
  acl.SetPositive(Principal::Group(kAnyUserGroup), kLookup);
  acl.SetNegative(Principal::User(13), kAllRights);
  auto parsed = AccessList::Deserialize(acl.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, acl);
}

TEST(AccessListTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(AccessList::Deserialize(Bytes{1, 2, 3}).ok());
  // Invalid rights bits.
  itc::rpc::Writer w;
  w.PutU32(1);
  w.PutU8(0);
  w.PutU32(1);
  w.PutU32(0xffffffff);
  w.PutU32(0);
  EXPECT_FALSE(AccessList::Deserialize(w.Take()).ok());
}

// --- ProtectionDb -----------------------------------------------------------------

class ProtectionDbTest : public ::testing::Test {
 protected:
  ProtectionDb db_;
};

TEST_F(ProtectionDbTest, BuiltInGroupsExist) {
  EXPECT_TRUE(db_.GroupExists(kAnyUserGroup));
  EXPECT_TRUE(db_.GroupExists(kAdministratorsGroup));
  EXPECT_EQ(*db_.LookupGroup("System:AnyUser"), kAnyUserGroup);
}

TEST_F(ProtectionDbTest, CreateUserAndKey) {
  auto u = db_.CreateUser("alice", "pw1");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*db_.LookupUser("alice"), *u);
  EXPECT_EQ(*db_.UserName(*u), "alice");
  ASSERT_TRUE(db_.UserKey(*u).has_value());
  EXPECT_EQ(db_.CreateUser("alice", "pw2").status(), Status::kAlreadyExists);
  EXPECT_FALSE(db_.UserKey(99999).has_value());
}

TEST_F(ProtectionDbTest, PasswordChangeChangesKey) {
  auto u = db_.CreateUser("bob", "old");
  ASSERT_TRUE(u.ok());
  const auto k1 = *db_.UserKey(*u);
  ASSERT_EQ(db_.SetPassword(*u, "new"), Status::kOk);
  EXPECT_NE(*db_.UserKey(*u), k1);
}

TEST_F(ProtectionDbTest, CpsIncludesSelfAndAnyUser) {
  auto u = db_.CreateUser("carol", "x");
  ASSERT_TRUE(u.ok());
  auto cps = db_.CPS(*u);
  EXPECT_EQ(cps.size(), 2u);
  EXPECT_NE(std::find(cps.begin(), cps.end(), Principal::User(*u)), cps.end());
  EXPECT_NE(std::find(cps.begin(), cps.end(), Principal::Group(kAnyUserGroup)), cps.end());
}

TEST_F(ProtectionDbTest, CpsFollowsRecursiveMembership) {
  // carol ∈ staff ∈ faculty: CPS(carol) must contain both groups.
  auto u = *db_.CreateUser("carol", "x");
  auto staff = *db_.CreateGroup("staff");
  auto faculty = *db_.CreateGroup("faculty");
  ASSERT_EQ(db_.AddToGroup(Principal::User(u), staff), Status::kOk);
  ASSERT_EQ(db_.AddToGroup(Principal::Group(staff), faculty), Status::kOk);

  auto cps = db_.CPS(u);
  EXPECT_NE(std::find(cps.begin(), cps.end(), Principal::Group(staff)), cps.end());
  EXPECT_NE(std::find(cps.begin(), cps.end(), Principal::Group(faculty)), cps.end());
}

TEST_F(ProtectionDbTest, CpsToleratesMembershipCycles) {
  auto u = *db_.CreateUser("dave", "x");
  auto g1 = *db_.CreateGroup("g1");
  auto g2 = *db_.CreateGroup("g2");
  ASSERT_EQ(db_.AddToGroup(Principal::User(u), g1), Status::kOk);
  ASSERT_EQ(db_.AddToGroup(Principal::Group(g1), g2), Status::kOk);
  ASSERT_EQ(db_.AddToGroup(Principal::Group(g2), g1), Status::kOk);  // cycle
  auto cps = db_.CPS(u);
  EXPECT_EQ(cps.size(), 4u);  // user + AnyUser + g1 + g2
}

TEST_F(ProtectionDbTest, SelfMembershipRejected) {
  auto g = *db_.CreateGroup("g");
  EXPECT_EQ(db_.AddToGroup(Principal::Group(g), g), Status::kInvalidArgument);
}

TEST_F(ProtectionDbTest, RemoveFromGroupShrinksCps) {
  auto u = *db_.CreateUser("erin", "x");
  auto g = *db_.CreateGroup("g");
  ASSERT_EQ(db_.AddToGroup(Principal::User(u), g), Status::kOk);
  EXPECT_EQ(db_.CPS(u).size(), 3u);
  ASSERT_EQ(db_.RemoveFromGroup(Principal::User(u), g), Status::kOk);
  EXPECT_EQ(db_.CPS(u).size(), 2u);
  EXPECT_EQ(db_.RemoveFromGroup(Principal::User(u), g), Status::kNotFound);
}

TEST_F(ProtectionDbTest, VersionBumpsOnMutation) {
  const uint64_t v0 = db_.version();
  auto u = *db_.CreateUser("frank", "x");
  EXPECT_GT(db_.version(), v0);
  const uint64_t v1 = db_.version();
  auto g = *db_.CreateGroup("g");
  ASSERT_EQ(db_.AddToGroup(Principal::User(u), g), Status::kOk);
  EXPECT_GT(db_.version(), v1);
}

// --- ProtectionService ----------------------------------------------------------

TEST(ProtectionServiceTest, ReplicasReceiveUpdates) {
  ProtectionService service;
  Replica r1, r2;
  service.RegisterReplica(&r1);
  service.RegisterReplica(&r2);

  auto u = service.CreateUser("gina", "pw");
  ASSERT_TRUE(u.ok());
  // Both replicas see the new user and can serve the key lookup.
  EXPECT_TRUE(r1.snapshot()->UserKey(*u).has_value());
  EXPECT_TRUE(r2.snapshot()->UserKey(*u).has_value());
  EXPECT_EQ(r1.version(), r2.version());
  EXPECT_EQ(service.publications(), 1u);  // one publication for the CreateUser
}

TEST(ProtectionServiceTest, SnapshotIsImmutableView) {
  ProtectionService service;
  Replica r;
  service.RegisterReplica(&r);
  auto old_snapshot = r.snapshot();
  auto u = service.CreateUser("henry", "pw");
  ASSERT_TRUE(u.ok());
  // The old snapshot does not see the new user; the fresh one does.
  EXPECT_FALSE(old_snapshot->UserKey(*u).has_value());
  EXPECT_TRUE(r.snapshot()->UserKey(*u).has_value());
}

TEST(ProtectionServiceTest, GroupChangesPropagate) {
  ProtectionService service;
  Replica r;
  service.RegisterReplica(&r);
  auto u = *service.CreateUser("iris", "pw");
  auto g = *service.CreateGroup("club");
  ASSERT_EQ(service.AddToGroup(Principal::User(u), g), Status::kOk);
  auto cps = r.snapshot()->CPS(u);
  EXPECT_NE(std::find(cps.begin(), cps.end(), Principal::Group(g)), cps.end());
  ASSERT_EQ(service.RemoveFromGroup(Principal::User(u), g), Status::kOk);
  cps = r.snapshot()->CPS(u);
  EXPECT_EQ(std::find(cps.begin(), cps.end(), Principal::Group(g)), cps.end());
}

}  // namespace
}  // namespace itc::protection
