// Tests for the protection server's RPC interface: administrator-gated
// mutations, self-service password change, and replica propagation.

#include "src/protection/protection_rpc.h"

#include <gtest/gtest.h>

namespace itc::protection {
namespace {

class ProtectionRpcTest : public ::testing::Test {
 protected:
  ProtectionRpcTest()
      : topo_(net::TopologyConfig{1, 1, 2}),
        cost_(sim::CostModel::Default1985()),
        network_(topo_, cost_) {
    service_.RegisterReplica(&replica_);
    admin_ = *service_.CreateUser("admin", "root-pw");
    (void)service_.AddToGroup(Principal::User(admin_), kAdministratorsGroup);
    mortal_ = *service_.CreateUser("mortal", "user-pw");
    server_ = std::make_unique<ProtectionRpcServer>(topo_.ServerNode(0, 0), &network_,
                                                    cost_, rpc::RpcConfig{}, &service_,
                                                    31);
  }

  std::unique_ptr<ProtectionClient> ClientFor(UserId user, const std::string& pw,
                                              uint64_t seed) {
    auto client = std::make_unique<ProtectionClient>(topo_.WorkstationNode(0, 0), &clock_,
                                                     server_.get(), &network_, cost_);
    const auto key = crypto::DeriveKeyFromPassword(pw, "itc.cmu.edu");
    if (client->Connect(user, key, seed) != Status::kOk) return nullptr;
    return client;
  }

  net::Topology topo_;
  sim::CostModel cost_;
  net::Network network_;
  ProtectionService service_;
  Replica replica_;
  std::unique_ptr<ProtectionRpcServer> server_;
  sim::Clock clock_;
  UserId admin_ = 0, mortal_ = 0;
};

TEST_F(ProtectionRpcTest, WhoAmIReportsCaller) {
  auto client = ClientFor(mortal_, "user-pw", 1);
  ASSERT_NE(client, nullptr);
  auto who = client->WhoAmI();
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who->first, mortal_);
  EXPECT_EQ(who->second, 2u);  // self + System:AnyUser
}

TEST_F(ProtectionRpcTest, AdminCreatesUsersAndGroups) {
  auto admin = ClientFor(admin_, "root-pw", 2);
  ASSERT_NE(admin, nullptr);
  auto user = admin->CreateUser("newbie", "pw");
  ASSERT_TRUE(user.ok());
  auto group = admin->CreateGroup("staff");
  ASSERT_TRUE(group.ok());
  ASSERT_EQ(admin->AddToGroup(Principal::User(*user), *group), Status::kOk);

  // The replica (as held by every Vice server) sees all of it.
  EXPECT_TRUE(replica_.snapshot()->UserKey(*user).has_value());
  auto cps = replica_.snapshot()->CPS(*user);
  EXPECT_NE(std::find(cps.begin(), cps.end(), Principal::Group(*group)), cps.end());

  ASSERT_EQ(admin->RemoveFromGroup(Principal::User(*user), *group), Status::kOk);
  cps = replica_.snapshot()->CPS(*user);
  EXPECT_EQ(std::find(cps.begin(), cps.end(), Principal::Group(*group)), cps.end());
}

TEST_F(ProtectionRpcTest, MortalsCannotAdministrate) {
  auto mortal = ClientFor(mortal_, "user-pw", 3);
  ASSERT_NE(mortal, nullptr);
  EXPECT_EQ(mortal->CreateUser("sock", "pw").status(), Status::kPermissionDenied);
  EXPECT_EQ(mortal->CreateGroup("mine").status(), Status::kPermissionDenied);
  EXPECT_EQ(mortal->AddToGroup(Principal::User(mortal_), kAdministratorsGroup),
            Status::kPermissionDenied);
  EXPECT_EQ(mortal->SetPassword(admin_, "owned"), Status::kPermissionDenied);
}

TEST_F(ProtectionRpcTest, SelfServicePasswordChange) {
  auto mortal = ClientFor(mortal_, "user-pw", 4);
  ASSERT_NE(mortal, nullptr);
  ASSERT_EQ(mortal->SetPassword(mortal_, "fresh-pw"), Status::kOk);
  // Old password no longer authenticates; the new one does.
  EXPECT_EQ(ClientFor(mortal_, "user-pw", 5), nullptr);
  EXPECT_NE(ClientFor(mortal_, "fresh-pw", 6), nullptr);
}

TEST_F(ProtectionRpcTest, UnknownUserCannotConnect) {
  EXPECT_EQ(ClientFor(999999, "whatever", 7), nullptr);
}

}  // namespace
}  // namespace itc::protection
