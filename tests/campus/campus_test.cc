// Tests of the Campus deployment harness and the Vice wire helpers.

#include "src/campus/campus.h"

#include <gtest/gtest.h>

#include "src/vice/protocol.h"

namespace itc {
namespace {

using campus::Campus;
using campus::CampusConfig;

TEST(CampusConfigTest, PrototypeAndRevisedDiffer) {
  const CampusConfig proto = CampusConfig::Prototype(2, 10);
  const CampusConfig revised = CampusConfig::Revised(2, 10);
  EXPECT_EQ(proto.rpc.transport, rpc::Transport::kStream);
  EXPECT_EQ(revised.rpc.transport, rpc::Transport::kDatagram);
  EXPECT_TRUE(proto.vice.server_side_pathnames);
  EXPECT_FALSE(revised.vice.server_side_pathnames);
  EXPECT_FALSE(proto.vice.callbacks);
  EXPECT_TRUE(revised.vice.callbacks);
  EXPECT_EQ(proto.workstation.venus.cache_limit, venus::VenusConfig::CacheLimit::kFileCount);
  EXPECT_EQ(revised.workstation.venus.cache_limit, venus::VenusConfig::CacheLimit::kSpace);
}

TEST(CampusTest, TopologyShapeMatchesConfig) {
  Campus campus(CampusConfig::Revised(3, 4));
  EXPECT_EQ(campus.server_count(), 3u);
  EXPECT_EQ(campus.workstation_count(), 12u);
  // Home servers group by cluster.
  EXPECT_EQ(campus.HomeServerOf(0), 0u);
  EXPECT_EQ(campus.HomeServerOf(3), 0u);
  EXPECT_EQ(campus.HomeServerOf(4), 1u);
  EXPECT_EQ(campus.HomeServerOf(11), 2u);
}

TEST(CampusTest, SetupCreatesUsrAndUnix) {
  Campus campus(CampusConfig::Revised(1, 1));
  auto root = campus.SetupRootVolume();
  ASSERT_TRUE(root.ok());
  vice::Volume* vol = campus.registry().FindVolume(*root);
  ASSERT_NE(vol, nullptr);
  auto entries = vice::DeserializeDirectory(*vol->FetchData(vol->root()));
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->contains("usr"));
  EXPECT_TRUE(entries->contains("unix"));
}

TEST(CampusTest, AddUserMountsHome) {
  Campus campus(CampusConfig::Revised(1, 1));
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("zed", "pw", 0, 12345);
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(home->vice_path, "/usr/zed");
  vice::Volume* vol = campus.registry().FindVolume(home->volume);
  ASSERT_NE(vol, nullptr);
  EXPECT_EQ(vol->quota_bytes(), 12345u);
  // Duplicate user name fails cleanly.
  EXPECT_FALSE(campus.AddUserWithHome("zed", "pw2", 0).ok());
}

TEST(CampusTest, PopulateDirectCreatesNestedPaths) {
  Campus campus(CampusConfig::Revised(1, 1));
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("deep", "pw", 0);
  ASSERT_TRUE(home.ok());
  ASSERT_EQ(campus.PopulateDirect(home->volume, "/a/b/c/file", ToBytes("nested")),
            Status::kOk);
  // Visible through a workstation.
  auto& ws = campus.workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);
  auto data = ws.ReadWholeFile("/vice/usr/deep/a/b/c/file");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "nested");
  // Overwrite replaces in place.
  ASSERT_EQ(campus.PopulateDirect(home->volume, "/a/b/c/file", ToBytes("v2")),
            Status::kOk);
  ws.venus().FlushCache();
  EXPECT_EQ(ToString(*ws.ReadWholeFile("/vice/usr/deep/a/b/c/file")), "v2");
}

TEST(CampusTest, HistogramAggregatesAcrossServers) {
  Campus campus(CampusConfig::Revised(2, 1));
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto a = campus.AddUserWithHome("a", "pw", 0);
  auto b = campus.AddUserWithHome("b", "pw", 1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(campus.workstation(0).LoginWithPassword(a->user, "pw"), Status::kOk);
  ASSERT_EQ(campus.workstation(1).LoginWithPassword(b->user, "pw"), Status::kOk);
  ASSERT_EQ(campus.workstation(0).WriteWholeFile("/vice/usr/a/f", ToBytes("1")),
            Status::kOk);
  ASSERT_EQ(campus.workstation(1).WriteWholeFile("/vice/usr/b/f", ToBytes("2")),
            Status::kOk);
  EXPECT_GT(campus.TotalCalls(), 0u);
  auto hist = campus.TotalCallHistogram();
  EXPECT_GE(hist[vice::CallClass::kStore], 2u);
  campus.ResetAllStats();
  EXPECT_EQ(campus.TotalCalls(), 0u);
}

// --- Wire helper round trips --------------------------------------------------

TEST(ProtocolWireTest, VnodeStatusRoundTrip) {
  vice::VnodeStatus s;
  s.fid = Fid{7, 8, 9};
  s.type = vice::VnodeType::kSymlink;
  s.length = 123456789;
  s.version = 42;
  s.mtime = Seconds(1000);
  s.owner = 77;
  s.mode = 0640;
  s.link_count = 3;
  s.parent = Fid{7, 1, 1};

  rpc::Writer w;
  vice::PutVnodeStatus(w, s);
  Bytes buf = w.Take();
  rpc::Reader r(buf);
  auto parsed = vice::ReadVnodeStatus(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, s);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ProtocolWireTest, VolumeInfoRoundTrip) {
  vice::VolumeInfo info;
  info.volume = 5;
  info.read_write_volume = 4;
  info.ro_clone = 9;
  info.read_only = true;
  info.custodian = 2;
  info.replica_sites = {0, 1, 2};

  rpc::Writer w;
  vice::PutVolumeInfo(w, info);
  Bytes buf = w.Take();
  rpc::Reader r(buf);
  auto parsed = vice::ReadVolumeInfo(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->volume, info.volume);
  EXPECT_EQ(parsed->ro_clone, info.ro_clone);
  EXPECT_EQ(parsed->replica_sites, info.replica_sites);
}

TEST(ProtocolWireTest, CallClassCoversEveryProc) {
  // Every procedure classifies without falling through to garbage.
  for (uint32_t p = 1; p <= 60; ++p) {
    const auto cls = vice::ClassOf(static_cast<vice::Proc>(p));
    EXPECT_LE(static_cast<int>(cls), static_cast<int>(vice::CallClass::kOther));
  }
  EXPECT_EQ(vice::ClassOf(vice::Proc::kValidate), vice::CallClass::kValidate);
  EXPECT_EQ(vice::ClassOf(vice::Proc::kResolvePath), vice::CallClass::kStatus);
  EXPECT_FALSE(vice::ProcName(vice::Proc::kFetch).empty());
}

}  // namespace
}  // namespace itc
