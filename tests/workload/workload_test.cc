// Tests of the workload module: source tree generation, the five-phase
// benchmark, zipf sampling, file classes, and the synthetic user driver.

#include <gtest/gtest.h>

#include "src/campus/campus.h"
#include "src/sim/scheduler.h"
#include "src/workload/benchmark5.h"
#include "src/workload/file_classes.h"
#include "src/workload/populate.h"
#include "src/workload/source_tree.h"
#include "src/workload/synthetic_user.h"
#include "src/workload/zipf.h"

namespace itc::workload {
namespace {

using campus::Campus;
using campus::CampusConfig;

TEST(SourceTreeTest, DeterministicAndSized) {
  const SourceTreeSpec a = GenerateSourceTree(1, 70);
  const SourceTreeSpec b = GenerateSourceTree(1, 70);
  EXPECT_EQ(a.files.size(), 70u);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].relative_path, b.files[i].relative_path);
    EXPECT_EQ(a.files[i].size, b.files[i].size);
  }
  EXPECT_GT(a.source_count(), 20u);
  EXPECT_GT(a.total_bytes(), 100 * 1024u);
  EXPECT_LT(a.total_bytes(), 2 * 1024 * 1024u);
}

TEST(SourceTreeTest, ContentsMatchByteForByteReference) {
  // The chunked fast path must reproduce the original byte-at-a-time
  // definition: out[i] = kAlphabet[(i + phase) % period]. Check the
  // repeating structure across sizes spanning the doubling boundaries.
  for (uint64_t size : {0u, 1u, 58u, 59u, 60u, 118u, 1000u, 4096u, 65537u}) {
    const Bytes c = SynthesizeContents(99, size);
    ASSERT_EQ(c.size(), size);
    const uint64_t period = 59;  // sizeof(kAlphabet) - 1 in source_tree.cc
    for (uint64_t i = period; i < size; ++i) {
      ASSERT_EQ(c[i], c[i - period]) << "size " << size << " index " << i;
    }
  }
}

TEST(SourceTreeTest, ContentsMatchRequestedSize) {
  const Bytes c = SynthesizeContents(7, 12345);
  EXPECT_EQ(c.size(), 12345u);
  EXPECT_EQ(SynthesizeContents(7, 100), SynthesizeContents(7, 100));
  EXPECT_NE(SynthesizeContents(7, 100), SynthesizeContents(8, 100));
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)] += 1;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 25);  // rank 0 gets far more than uniform share
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(4);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.Sample(rng)] += 1;
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(FileClassesTest, SizesWithinDesignEnvelope) {
  Rng rng(5);
  for (auto cls : {FileClass::kSystemBinary, FileClass::kUserData, FileClass::kTemporary}) {
    for (int i = 0; i < 500; ++i) {
      const uint64_t size = SampleFileSize(cls, rng);
      EXPECT_GT(size, 0u);
      // "over 99% of the files ... fall within a few megabytes".
      EXPECT_LE(size, 2 * 1024 * 1024u);
    }
  }
}

class Benchmark5Test : public ::testing::Test {
 protected:
  void SetUp() override {
    campus_ = std::make_unique<Campus>(CampusConfig::Revised(1, 1));
    ASSERT_TRUE(campus_->SetupRootVolume().ok());
    auto home = campus_->AddUserWithHome("alice", "pw", 0);
    ASSERT_TRUE(home.ok());
    ws_ = &campus_->workstation(0);
    ASSERT_EQ(ws_->LoginWithPassword(home->user, "pw"), Status::kOk);
  }

  std::unique_ptr<Campus> campus_;
  virtue::Workstation* ws_ = nullptr;
};

TEST_F(Benchmark5Test, AllLocalRunCompletes) {
  const SourceTreeSpec spec = GenerateSourceTree(11, 30);
  ASSERT_EQ(ws_->MkDir("/src"), Status::kOk);
  ASSERT_EQ(InstallSourceTree(*ws_, "/src", spec, 11), Status::kOk);

  auto result = RunBenchmark5(*ws_, "/src", "/target", spec);
  ASSERT_TRUE(result.ok());
  for (int p = 0; p < kPhaseCount; ++p) {
    EXPECT_GT(result->phase_time[p], 0) << PhaseName(static_cast<Phase>(p));
  }
  EXPECT_EQ(result->total,
            result->phase_time[0] + result->phase_time[1] + result->phase_time[2] +
                result->phase_time[3] + result->phase_time[4]);
  // Make (compile+link) dominates, as on the real benchmark.
  EXPECT_GT(result->phase_time[4], result->phase_time[0]);
}

TEST_F(Benchmark5Test, RemoteRunSlowerThanLocal) {
  const SourceTreeSpec spec = GenerateSourceTree(13, 20);
  ASSERT_EQ(ws_->MkDir("/src"), Status::kOk);
  ASSERT_EQ(InstallSourceTree(*ws_, "/src", spec, 13), Status::kOk);
  auto local = RunBenchmark5(*ws_, "/src", "/target-local", spec);
  ASSERT_TRUE(local.ok());

  ASSERT_EQ(InstallSourceTree(*ws_, "/vice/usr/alice/src", spec, 13), Status::kOk);
  ws_->venus().FlushCache();  // cold cache, like the paper's remote run
  auto remote = RunBenchmark5(*ws_, "/vice/usr/alice/src", "/vice/usr/alice/target", spec);
  ASSERT_TRUE(remote.ok());

  EXPECT_GT(remote->total, local->total);
}

TEST_F(Benchmark5Test, CopyVerifiableByteForByte) {
  const SourceTreeSpec spec = GenerateSourceTree(17, 10);
  ASSERT_EQ(ws_->MkDir("/src"), Status::kOk);
  ASSERT_EQ(InstallSourceTree(*ws_, "/src", spec, 17), Status::kOk);
  ASSERT_TRUE(RunBenchmark5(*ws_, "/src", "/t", spec).ok());
  for (const SourceFile& f : spec.files) {
    auto src = ws_->ReadWholeFile("/src/" + f.relative_path);
    auto dst = ws_->ReadWholeFile("/t/" + f.relative_path);
    ASSERT_TRUE(src.ok() && dst.ok()) << f.relative_path;
    EXPECT_EQ(*src, *dst) << f.relative_path;
  }
}

TEST(SyntheticUserTest, RunsWithoutErrorsAndAdvancesTime) {
  Campus campus(CampusConfig::Revised(1, 2));
  ASSERT_TRUE(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("u0", "pw", 0);
  ASSERT_TRUE(home.ok());
  auto sys = campus.CreateSystemVolume("sys", "/unix/sun", 0);
  ASSERT_TRUE(sys.ok());

  UserDayConfig config;
  config.operations = 300;
  config.own_files = 20;
  config.system_files = 10;
  ASSERT_EQ(PopulateUserFiles(campus, home->volume, config.own_files, 1), Status::kOk);
  ASSERT_EQ(PopulateSystemBinaries(campus, *sys, config.system_files, 2), Status::kOk);

  auto& ws = campus.workstation(0);
  ASSERT_EQ(ws.LoginWithPassword(home->user, "pw"), Status::kOk);

  SyntheticUser user(&ws, "/vice/usr/u0", "/bin", config, 99);
  sim::Scheduler sched;
  sched.Add(&user);
  const SimTime end = sched.RunAll();

  EXPECT_EQ(user.stats().operations, 300u);
  EXPECT_EQ(user.stats().errors, 0u);
  EXPECT_GT(end, Seconds(300));  // think times alone exceed this
  EXPECT_GT(ws.venus().stats().opens, 0u);
}

TEST(SyntheticUserTest, DeterministicAcrossRuns) {
  auto run = [] {
    Campus campus(CampusConfig::Revised(1, 1));
    (void)campus.SetupRootVolume();
    auto home = campus.AddUserWithHome("u0", "pw", 0);
    auto sys = campus.CreateSystemVolume("sys", "/unix/sun", 0);
    UserDayConfig config;
    config.operations = 100;
    config.own_files = 10;
    config.system_files = 5;
    (void)PopulateUserFiles(campus, home->volume, 10, 1);
    (void)PopulateSystemBinaries(campus, *sys, 5, 2);
    auto& ws = campus.workstation(0);
    (void)ws.LoginWithPassword(home->user, "pw");
    SyntheticUser user(&ws, "/vice/usr/u0", "/bin", config, 7);
    sim::Scheduler sched;
    sched.Add(&user);
    sched.RunAll();
    return ws.clock().now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace itc::workload
