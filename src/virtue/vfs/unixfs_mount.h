// Local mount: a unixfs::FileSystem behind the Mount interface. This is
// file classes 1 and 3 of Section 3.1 — temporary files and data the owner
// will not entrust to Vice — plus the boot files. Costs are the local-disk
// charges the workstation always paid (local_open, local_create, ...).

#ifndef SRC_VIRTUE_VFS_UNIXFS_MOUNT_H_
#define SRC_VIRTUE_VFS_UNIXFS_MOUNT_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/unixfs/file_system.h"
#include "src/virtue/vfs/mount.h"

namespace itc::virtue::vfs {

class UnixfsMount : public Mount {
 public:
  // `user` supplies the owner for created files (the logged-in user changes
  // over the workstation's lifetime, so it is a callback, not a value).
  UnixfsMount(unixfs::FileSystem* fs, sim::Clock* clock, const sim::CostModel& cost,
              std::function<UserId()> user, std::string name = "unixfs");

  std::string_view name() const override { return name_; }
  bool shared() const override { return false; }
  bool resolves_locally() const override { return true; }

  [[nodiscard]] Result<MountedOpen> Open(const std::string& rel, uint32_t flags) override;
  [[nodiscard]] Status Close(uint64_t token, bool dirty) override;
  [[nodiscard]] Result<Bytes> ReadAt(uint64_t token, uint64_t offset, uint64_t length) override;
  [[nodiscard]] Status WriteAt(uint64_t token, uint64_t offset, const Bytes& data) override;

  [[nodiscard]] Result<FileInfo> Stat(const std::string& rel) override;
  [[nodiscard]] Result<std::vector<std::string>> List(const std::string& rel) override;
  [[nodiscard]] Status MkDir(const std::string& rel) override;
  [[nodiscard]] Status Remove(const std::string& rel) override;
  [[nodiscard]] Status RmDir(const std::string& rel) override;
  [[nodiscard]] Status Rename(const std::string& from_rel, const std::string& to_rel) override;
  [[nodiscard]] Status Symlink(const std::string& target, const std::string& rel) override;
  [[nodiscard]] Result<std::string> ReadLink(const std::string& rel) override;
  [[nodiscard]] Status Chmod(const std::string& rel, uint16_t mode) override;

  [[nodiscard]] Result<FileInfo> LStat(const std::string& rel) override;
  [[nodiscard]] Result<std::string> ReadTarget(const std::string& rel) override;

 private:
  unixfs::FileSystem* fs_;
  sim::Clock* clock_;
  sim::CostModel cost_;
  std::function<UserId()> user_;
  std::string name_;
};

// Shared by the local and Venus mounts (the cached copy is a unixfs file).
FileInfo::Type FromUnixType(unixfs::FileType t);

}  // namespace itc::virtue::vfs

#endif  // SRC_VIRTUE_VFS_UNIXFS_MOUNT_H_
