// The remote-open mount: the Section 6.3 Locus-style comparator behind the
// Mount interface. Every open, per-page read/write, and close is an RPC to
// the storage site; nothing is cached on the workstation and no local-disk
// cost is charged. Mounting this next to the itcfs mount is how the A2
// experiment becomes "same workload, different mount".

#ifndef SRC_VIRTUE_VFS_REMOTE_MOUNT_H_
#define SRC_VIRTUE_VFS_REMOTE_MOUNT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/baseline/remote_open.h"
#include "src/virtue/vfs/mount.h"

namespace itc::virtue::vfs {

class RemoteMount : public Mount {
 public:
  RemoteMount(NodeId node, sim::Clock* clock, baseline::RemoteOpenServer* server,
              net::Network* network, const sim::CostModel& cost,
              std::string name = "remote-open");

  // Authenticated connection to the storage site; must succeed before the
  // first operation (everything fails kConnectionBroken until then).
  [[nodiscard]] Status Connect(UserId user, const crypto::Key& user_key, uint64_t seed);

  std::string_view name() const override { return name_; }
  bool shared() const override { return true; }

  [[nodiscard]] Result<MountedOpen> Open(const std::string& rel, uint32_t flags) override;
  [[nodiscard]] Status Close(uint64_t token, bool dirty) override;
  [[nodiscard]] Result<Bytes> ReadAt(uint64_t token, uint64_t offset, uint64_t length) override;
  [[nodiscard]] Status WriteAt(uint64_t token, uint64_t offset, const Bytes& data) override;

  [[nodiscard]] Result<FileInfo> Stat(const std::string& rel) override;
  [[nodiscard]] Result<std::vector<std::string>> List(const std::string& rel) override;
  [[nodiscard]] Status MkDir(const std::string& rel) override;
  [[nodiscard]] Status Remove(const std::string& rel) override;
  [[nodiscard]] Status RmDir(const std::string& rel) override;
  [[nodiscard]] Status Rename(const std::string& from_rel, const std::string& to_rel) override;
  // The remote-open protocol has no symlinks (neither did Locus's
  // inter-machine interface here): kNotSupported.
  [[nodiscard]] Status Symlink(const std::string& target, const std::string& rel) override;
  [[nodiscard]] Result<std::string> ReadLink(const std::string& rel) override;
  [[nodiscard]] Status Chmod(const std::string& rel, uint16_t mode) override;

  baseline::RemoteOpenClient& client() { return client_; }

 private:
  baseline::RemoteOpenClient client_;
  std::string name_;
};

}  // namespace itc::virtue::vfs

#endif  // SRC_VIRTUE_VFS_REMOTE_MOUNT_H_
