// The vnode-style backend contract of the Virtue VFS switch.
//
// The paper promises "other than performance, there is no difference between
// accessing a local file and a file in the shared name space" (§2.3). The
// switch makes that literal: every file-access path on the workstation —
// the local Unix file system, the whole-file-caching Venus, and the
// remote-open comparator of Section 5 — is a Mount, and the descriptor API
// dispatches through this one interface after the resolver has mapped a
// workstation path onto (mount, mount-relative remainder).

#ifndef SRC_VIRTUE_VFS_MOUNT_H_
#define SRC_VIRTUE_VFS_MOUNT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"

namespace itc::virtue::vfs {

// open() flags (Unix-style).
enum OpenFlags : uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTruncate = 1u << 3,
};

// Unified stat result across every mount type. `shared` is stamped by the
// switch from the owning mount's shared(); backends may leave it false.
struct FileInfo {
  enum class Type { kFile, kDirectory, kSymlink };
  Type type = Type::kFile;
  uint64_t size = 0;
  SimTime mtime = 0;
  uint16_t mode = 0;
  UserId owner = kAnonymousUser;
  bool shared = false;  // lives in a name space other workstations also see
};

// Result of Mount::Open: an opaque per-mount token for the open file, plus
// whether the open itself already dirtied the backing copy (truncate-on-open
// of a cached file must be stored back even if nothing else is written).
struct MountedOpen {
  uint64_t token = 0;
  bool dirty = false;
};

// One backend of the switch. All paths handed to a Mount are
// mount-relative and absolute-style: "/" names the mount root. Each backend
// charges its own simulation costs (local disk time, RPC round trips), so
// the switch adds none of its own — mounting a different backend at the
// same prefix is exactly the paper's "same workload, different mount".
class Mount {
 public:
  virtual ~Mount() = default;

  virtual std::string_view name() const = 0;
  virtual bool shared() const = 0;
  // True when the resolver may inspect this mount's symlinks itself with
  // LStat/ReadTarget (local unixfs-backed mounts). Mounts that resolve
  // internally signal boundary crossings with Status::kSymlinkEscape and
  // TakeEscape() instead.
  virtual bool resolves_locally() const { return false; }

  [[nodiscard]] virtual Result<MountedOpen> Open(const std::string& rel, uint32_t flags) = 0;
  [[nodiscard]] virtual Status Close(uint64_t token, bool dirty) = 0;
  [[nodiscard]] virtual Result<Bytes> ReadAt(uint64_t token, uint64_t offset,
                                             uint64_t length) = 0;
  [[nodiscard]] virtual Status WriteAt(uint64_t token, uint64_t offset, const Bytes& data) = 0;

  [[nodiscard]] virtual Result<FileInfo> Stat(const std::string& rel) = 0;
  [[nodiscard]] virtual Result<std::vector<std::string>> List(const std::string& rel) = 0;
  [[nodiscard]] virtual Status MkDir(const std::string& rel) = 0;
  [[nodiscard]] virtual Status Remove(const std::string& rel) = 0;
  [[nodiscard]] virtual Status RmDir(const std::string& rel) = 0;
  // Both names are on this mount; the switch rejects cross-mount renames
  // with kCrossVolume before dispatch (the EXDEV of this system).
  [[nodiscard]] virtual Status Rename(const std::string& from_rel,
                                      const std::string& to_rel) = 0;
  [[nodiscard]] virtual Status Symlink(const std::string& target, const std::string& rel) = 0;
  [[nodiscard]] virtual Result<std::string> ReadLink(const std::string& rel) = 0;
  [[nodiscard]] virtual Status Chmod(const std::string& rel, uint16_t mode) = 0;

  // --- Resolver hooks --------------------------------------------------------
  // Uncharged lstat/readlink used by the resolver while walking component
  // prefixes of resolves_locally() mounts; others keep the defaults.
  [[nodiscard]] virtual Result<FileInfo> LStat(const std::string& rel) {
    (void)rel;
    return Status::kNotSupported;
  }
  [[nodiscard]] virtual Result<std::string> ReadTarget(const std::string& rel) {
    (void)rel;
    return Status::kNotSupported;
  }
  // After an operation failed with kSymlinkEscape: the rewritten
  // workstation-absolute path that resolution escaped to (consumed).
  virtual std::string TakeEscape() { return {}; }
};

}  // namespace itc::virtue::vfs

#endif  // SRC_VIRTUE_VFS_MOUNT_H_
