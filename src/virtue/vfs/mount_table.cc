#include "src/virtue/vfs/mount_table.h"

#include "src/common/path.h"

namespace itc::virtue::vfs {

namespace {

// "/" or "/a/b" with every component a legal directory-entry name.
bool IsNormalizedPrefix(const std::string& prefix) {
  if (prefix == "/") return true;
  if (prefix.empty() || prefix.front() != '/' || prefix.back() == '/') return false;
  const std::vector<std::string> comps = SplitPath(prefix);
  if (comps.empty()) return false;
  size_t rebuilt = 0;
  for (const std::string& c : comps) {
    if (!IsValidName(c)) return false;
    rebuilt += 1 + c.size();
  }
  // Rejects duplicate slashes ("/a//b"), which SplitPath would hide.
  return rebuilt == prefix.size();
}

}  // namespace

Status MountTable::Add(const std::string& prefix, Mount* mount) {
  if (mount == nullptr) return Status::kInvalidArgument;
  if (!IsNormalizedPrefix(prefix)) return Status::kInvalidArgument;
  auto [it, inserted] = mounts_.emplace(prefix, mount);
  (void)it;
  return inserted ? Status::kOk : Status::kAlreadyExists;
}

Status MountTable::Remove(const std::string& prefix) {
  return mounts_.erase(prefix) != 0 ? Status::kOk : Status::kNotFound;
}

std::optional<MountTable::Hit> MountTable::Match(const std::string& path) const {
  std::optional<Hit> best;
  for (const auto& [prefix, mount] : mounts_) {
    if (!PathHasPrefix(path, prefix)) continue;
    if (!best || prefix.size() > best->prefix.size()) best = Hit{mount, prefix};
  }
  return best;
}

Mount* MountTable::AtExactly(const std::string& prefix) const {
  auto it = mounts_.find(prefix);
  return it == mounts_.end() ? nullptr : it->second;
}

std::vector<std::pair<std::string, Mount*>> MountTable::entries() const {
  return {mounts_.begin(), mounts_.end()};
}

std::string MountRelative(const std::string& path, const std::string& prefix) {
  if (prefix == "/") return path;
  std::string rel = path.substr(prefix.size());
  if (rel.empty()) rel = "/";
  return rel;
}

}  // namespace itc::virtue::vfs
