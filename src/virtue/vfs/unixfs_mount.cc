#include "src/virtue/vfs/unixfs_mount.h"

#include <utility>

namespace itc::virtue::vfs {

FileInfo::Type FromUnixType(unixfs::FileType t) {
  switch (t) {
    case unixfs::FileType::kRegular: return FileInfo::Type::kFile;
    case unixfs::FileType::kDirectory: return FileInfo::Type::kDirectory;
    case unixfs::FileType::kSymlink: return FileInfo::Type::kSymlink;
  }
  return FileInfo::Type::kFile;
}

namespace {

FileInfo FromUnixStat(const unixfs::StatInfo& st) {
  FileInfo info;
  info.type = FromUnixType(st.type);
  info.size = st.size;
  info.mtime = st.mtime;
  info.mode = st.mode;
  info.owner = st.owner;
  return info;
}

}  // namespace

UnixfsMount::UnixfsMount(unixfs::FileSystem* fs, sim::Clock* clock, const sim::CostModel& cost,
                         std::function<UserId()> user, std::string name)
    : fs_(fs), clock_(clock), cost_(cost), user_(std::move(user)), name_(std::move(name)) {}

Result<MountedOpen> UnixfsMount::Open(const std::string& rel, uint32_t flags) {
  const bool writable = (flags & kWrite) != 0;
  unixfs::InodeNum inode = 0;

  auto resolved = fs_->Resolve(rel);
  if (!resolved.ok()) {
    if (resolved.status() != Status::kNotFound || (flags & kCreate) == 0) {
      return resolved.status();
    }
    clock_->Advance(cost_.local_create);
    ASSIGN_OR_RETURN(inode, fs_->Create(rel, unixfs::kDefaultFileMode, user_()));
  } else {
    inode = *resolved;
    ASSIGN_OR_RETURN(unixfs::StatInfo st, fs_->StatInode(inode));
    if (st.type == unixfs::FileType::kDirectory) return Status::kIsDirectory;
    if (writable && (flags & kTruncate) != 0) {
      RETURN_IF_ERROR(fs_->Truncate(inode, 0));
    }
  }
  clock_->Advance(cost_.local_open);
  return MountedOpen{inode, false};
}

Status UnixfsMount::Close(uint64_t token, bool dirty) {
  (void)token;
  (void)dirty;  // local files have no store-back
  return Status::kOk;
}

Result<Bytes> UnixfsMount::ReadAt(uint64_t token, uint64_t offset, uint64_t length) {
  ASSIGN_OR_RETURN(Bytes data, fs_->ReadAt(token, offset, length));
  clock_->Advance(cost_.LocalIoTime(data.size()));
  return data;
}

Status UnixfsMount::WriteAt(uint64_t token, uint64_t offset, const Bytes& data) {
  RETURN_IF_ERROR(fs_->WriteAt(token, offset, data));
  clock_->Advance(cost_.LocalIoTime(data.size()));
  return Status::kOk;
}

Result<FileInfo> UnixfsMount::Stat(const std::string& rel) {
  clock_->Advance(cost_.local_stat);
  ASSIGN_OR_RETURN(unixfs::StatInfo st, fs_->Stat(rel));
  return FromUnixStat(st);
}

Result<std::vector<std::string>> UnixfsMount::List(const std::string& rel) {
  clock_->Advance(cost_.local_stat);
  ASSIGN_OR_RETURN(auto entries, fs_->ReadDir(rel));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const auto& e : entries) names.push_back(e.name);
  return names;
}

Status UnixfsMount::MkDir(const std::string& rel) {
  clock_->Advance(cost_.local_mkdir);
  return fs_->MkDir(rel, unixfs::kDefaultDirMode, user_());
}

Status UnixfsMount::Remove(const std::string& rel) {
  clock_->Advance(cost_.local_open);
  return fs_->Unlink(rel);
}

Status UnixfsMount::RmDir(const std::string& rel) {
  clock_->Advance(cost_.local_open);
  return fs_->RmDir(rel);
}

Status UnixfsMount::Rename(const std::string& from_rel, const std::string& to_rel) {
  clock_->Advance(cost_.local_open);
  return fs_->Rename(from_rel, to_rel);
}

Status UnixfsMount::Symlink(const std::string& target, const std::string& rel) {
  clock_->Advance(cost_.local_create);
  return fs_->Symlink(target, rel);
}

Result<std::string> UnixfsMount::ReadLink(const std::string& rel) {
  clock_->Advance(cost_.local_stat);
  return fs_->ReadLink(rel);
}

Status UnixfsMount::Chmod(const std::string& rel, uint16_t mode) {
  clock_->Advance(cost_.local_stat);
  return fs_->Chmod(rel, mode);
}

Result<FileInfo> UnixfsMount::LStat(const std::string& rel) {
  ASSIGN_OR_RETURN(unixfs::StatInfo st, fs_->LStat(rel));
  return FromUnixStat(st);
}

Result<std::string> UnixfsMount::ReadTarget(const std::string& rel) {
  return fs_->ReadLink(rel);
}

}  // namespace itc::virtue::vfs
