// The VFS switch: one Unix-style descriptor API dispatched over a mount
// table of interchangeable backends (local unixfs, Venus whole-file
// caching, remote-open). Owns the mounts, the descriptor table, and the
// cross-mount symlink protocol: when a shared mount's internal traversal
// meets an absolute link that leaves it (kSymlinkEscape), the switch
// collects the rewritten workstation path and re-resolves, with one
// depth budget bounding the whole chain.

#ifndef SRC_VIRTUE_VFS_SWITCH_H_
#define SRC_VIRTUE_VFS_SWITCH_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/path.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/virtue/vfs/mount.h"
#include "src/virtue/vfs/mount_table.h"
#include "src/virtue/vfs/resolver.h"

namespace itc::virtue::vfs {

class Switch {
 public:
  Switch() = default;
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // Attaches a backend at `prefix` (see MountTable::Add for legal forms).
  // The switch takes ownership.
  [[nodiscard]] Status AddMount(const std::string& prefix, std::unique_ptr<Mount> mount);
  // Detaches and destroys the mount at exactly `prefix`; anything it
  // shadowed becomes reachable again. Refused (kNotEmpty) while files are
  // open on it.
  [[nodiscard]] Status RemoveMount(const std::string& prefix);
  const MountTable& table() const { return table_; }

  // Which mount owns `path` (follows local symlinks; no cost charged).
  [[nodiscard]] Result<ResolvedPath> Resolve(const std::string& path) const;
  // True if `path` resolves onto a shared mount.
  bool IsShared(const std::string& path) const;

  // --- Unix file system interface -------------------------------------------
  [[nodiscard]] Result<int> Open(const std::string& path, uint32_t flags);
  [[nodiscard]] Result<Bytes> Read(int fd, uint64_t length);
  [[nodiscard]] Status Write(int fd, const Bytes& data);
  [[nodiscard]] Result<uint64_t> Seek(int fd, uint64_t offset);
  [[nodiscard]] Status Close(int fd);

  [[nodiscard]] Result<FileInfo> Stat(const std::string& path);
  [[nodiscard]] Result<std::vector<std::string>> ReadDir(const std::string& path);
  [[nodiscard]] Status MkDir(const std::string& path);
  [[nodiscard]] Status Unlink(const std::string& path);
  [[nodiscard]] Status RmDir(const std::string& path);
  [[nodiscard]] Status Rename(const std::string& from, const std::string& to);
  [[nodiscard]] Status Symlink(const std::string& target, const std::string& link_path);
  [[nodiscard]] Result<std::string> ReadLink(const std::string& path);
  [[nodiscard]] Status Chmod(const std::string& path, uint16_t mode);

  // Whole-file conveniences (open/read-or-write/close in one call).
  [[nodiscard]] Result<Bytes> ReadWholeFile(const std::string& path);
  [[nodiscard]] Status WriteWholeFile(const std::string& path, const Bytes& data);

  size_t open_file_count() const { return fds_.size(); }

  // Escape predicate for shared mounts (see Venus::set_escape_predicate):
  // true when an absolute symlink target read inside such a mount names a
  // workstation path — its longest mount-prefix is a non-root mount, or its
  // first component exists in the root mount.
  bool EscapesSharedSpace(const std::string& target) const;

 private:
  struct OpenFd {
    Mount* mount = nullptr;
    uint64_t token = 0;
    bool writable = false;
    bool dirty = false;
    uint64_t offset = 0;
  };

  [[nodiscard]] static Status StatusOf(Status s) { return s; }
  template <typename T>
  [[nodiscard]] static Status StatusOf(const Result<T>& r) {
    return r.status();
  }

  // Resolves `path` and applies `op` on the owning mount; when the mount
  // reports that resolution escaped onto another mount, re-resolves the
  // rewritten path and retries, charging escapes against the same symlink
  // budget the resolver uses.
  template <typename Op>
  auto DispatchPath(const std::string& path, Op&& op)
      -> decltype(op(std::declval<Mount&>(), std::string())) {
    std::string cur = path;
    int budget = 0;
    for (;;) {
      auto r = ResolvePath(table_, cur, &budget);
      if (!r.ok()) return r.status();
      auto result = op(*r->mount, r->rel);
      if (StatusOf(result) != Status::kSymlinkEscape) return result;
      cur = r->mount->TakeEscape();
      if (cur.empty()) return Status::kSymlinkLoop;
      if (++budget > kMaxSymlinkDepth) return Status::kSymlinkLoop;
    }
  }

  MountTable table_;
  std::map<std::string, std::unique_ptr<Mount>> owned_;
  std::map<int, OpenFd> fds_;
  int next_fd_ = 3;
};

}  // namespace itc::virtue::vfs

#endif  // SRC_VIRTUE_VFS_SWITCH_H_
