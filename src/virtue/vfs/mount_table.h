// The mount table: normalized absolute prefixes mapped to Mount backends,
// looked up by longest matching prefix on component boundaries. Mount
// shadowing falls out of longest-prefix: a mount at /vice/pc owns
// everything under it even though /vice is also mounted, and removing it
// uncovers /vice again.

#ifndef SRC_VIRTUE_VFS_MOUNT_TABLE_H_
#define SRC_VIRTUE_VFS_MOUNT_TABLE_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/virtue/vfs/mount.h"

namespace itc::virtue::vfs {

class MountTable {
 public:
  // Attaches `mount` at `prefix`: "/" or an absolute path with valid
  // components (no ".", "..", empty, or trailing slash). One mount per
  // prefix; nested prefixes are how shadowing is expressed.
  [[nodiscard]] Status Add(const std::string& prefix, Mount* mount);
  [[nodiscard]] Status Remove(const std::string& prefix);

  struct Hit {
    Mount* mount = nullptr;
    std::string prefix;
  };
  // The mount whose prefix is the longest path-prefix of `path`, on
  // component boundaries ("/vice" does not own "/viceX"). Empty when no
  // mount covers the path (i.e. nothing is mounted at "/").
  std::optional<Hit> Match(const std::string& path) const;

  Mount* AtExactly(const std::string& prefix) const;
  // (prefix, mount) pairs in prefix order.
  std::vector<std::pair<std::string, Mount*>> entries() const;
  size_t size() const { return mounts_.size(); }

 private:
  std::map<std::string, Mount*> mounts_;
};

// The tail of `path` below `prefix` as a mount-relative absolute path:
// ("/vice/usr/x", "/vice") -> "/usr/x"; ("/vice", "/vice") -> "/";
// (p, "/") -> p. `prefix` must be a path-prefix of `path`.
std::string MountRelative(const std::string& path, const std::string& prefix);

}  // namespace itc::virtue::vfs

#endif  // SRC_VIRTUE_VFS_MOUNT_TABLE_H_
