// The itcfs mount: Venus whole-file caching behind the Mount interface
// (file class 2 of Section 3.1, normally attached at /vice). Open asks
// Venus for a cached copy and the token is a descriptor onto that local
// copy; read/write never touch Vice; close of a dirty file is the
// store-back. Resolution happens inside Venus (cached directories), so
// cross-mount symlinks surface as kSymlinkEscape rather than through the
// resolver hooks.

#ifndef SRC_VIRTUE_VFS_VENUS_MOUNT_H_
#define SRC_VIRTUE_VFS_VENUS_MOUNT_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/unixfs/file_system.h"
#include "src/venus/venus.h"
#include "src/virtue/vfs/mount.h"

namespace itc::virtue::vfs {

class VenusMount : public Mount {
 public:
  // `cache_fs` is the local file system holding Venus's cache copies (the
  // same one Venus was constructed over).
  VenusMount(venus::Venus* venus, unixfs::FileSystem* cache_fs, sim::Clock* clock,
             const sim::CostModel& cost);

  std::string_view name() const override { return "itcfs"; }
  bool shared() const override { return true; }

  [[nodiscard]] Result<MountedOpen> Open(const std::string& rel, uint32_t flags) override;
  [[nodiscard]] Status Close(uint64_t token, bool dirty) override;
  [[nodiscard]] Result<Bytes> ReadAt(uint64_t token, uint64_t offset, uint64_t length) override;
  [[nodiscard]] Status WriteAt(uint64_t token, uint64_t offset, const Bytes& data) override;

  [[nodiscard]] Result<FileInfo> Stat(const std::string& rel) override;
  [[nodiscard]] Result<std::vector<std::string>> List(const std::string& rel) override;
  [[nodiscard]] Status MkDir(const std::string& rel) override;
  [[nodiscard]] Status Remove(const std::string& rel) override;
  [[nodiscard]] Status RmDir(const std::string& rel) override;
  [[nodiscard]] Status Rename(const std::string& from_rel, const std::string& to_rel) override;
  [[nodiscard]] Status Symlink(const std::string& target, const std::string& rel) override;
  [[nodiscard]] Result<std::string> ReadLink(const std::string& rel) override;
  [[nodiscard]] Status Chmod(const std::string& rel, uint16_t mode) override;

  std::string TakeEscape() override { return venus_->TakeEscapePath(); }

 private:
  struct OpenToken {
    Fid fid;
    unixfs::InodeNum inode = 0;  // the cached copy
  };

  venus::Venus* venus_;
  unixfs::FileSystem* cache_fs_;
  sim::Clock* clock_;
  sim::CostModel cost_;
  std::map<uint64_t, OpenToken> open_;
  uint64_t next_token_ = 1;
};

FileInfo::Type FromViceType(vice::VnodeType t);

}  // namespace itc::virtue::vfs

#endif  // SRC_VIRTUE_VFS_VENUS_MOUNT_H_
