#include "src/virtue/vfs/venus_mount.h"

namespace itc::virtue::vfs {

FileInfo::Type FromViceType(vice::VnodeType t) {
  switch (t) {
    case vice::VnodeType::kFile: return FileInfo::Type::kFile;
    case vice::VnodeType::kDirectory: return FileInfo::Type::kDirectory;
    case vice::VnodeType::kSymlink: return FileInfo::Type::kSymlink;
  }
  return FileInfo::Type::kFile;
}

VenusMount::VenusMount(venus::Venus* venus, unixfs::FileSystem* cache_fs, sim::Clock* clock,
                       const sim::CostModel& cost)
    : venus_(venus), cache_fs_(cache_fs), clock_(clock), cost_(cost) {}

Result<MountedOpen> VenusMount::Open(const std::string& rel, uint32_t flags) {
  const bool writable = (flags & kWrite) != 0;
  ASSIGN_OR_RETURN(venus::Venus::OpenResult open,
                   venus_->Open(rel, writable, (flags & kCreate) != 0));
  clock_->Advance(cost_.local_open);  // opening the cached copy
  ASSIGN_OR_RETURN(unixfs::InodeNum inode, cache_fs_->Resolve(open.cache_path));

  MountedOpen mo;
  if (writable && (flags & kTruncate) != 0) {
    RETURN_IF_ERROR(cache_fs_->Truncate(inode, 0));
    mo.dirty = true;
  }
  mo.token = next_token_++;
  open_[mo.token] = OpenToken{open.fid, inode};
  return mo;
}

Status VenusMount::Close(uint64_t token, bool dirty) {
  auto it = open_.find(token);
  if (it == open_.end()) return Status::kBadDescriptor;
  const Fid fid = it->second.fid;
  open_.erase(it);
  return venus_->Close(fid, dirty);
}

Result<Bytes> VenusMount::ReadAt(uint64_t token, uint64_t offset, uint64_t length) {
  auto it = open_.find(token);
  if (it == open_.end()) return Status::kBadDescriptor;
  ASSIGN_OR_RETURN(Bytes data, cache_fs_->ReadAt(it->second.inode, offset, length));
  clock_->Advance(cost_.LocalIoTime(data.size()));
  return data;
}

Status VenusMount::WriteAt(uint64_t token, uint64_t offset, const Bytes& data) {
  auto it = open_.find(token);
  if (it == open_.end()) return Status::kBadDescriptor;
  RETURN_IF_ERROR(cache_fs_->WriteAt(it->second.inode, offset, data));
  clock_->Advance(cost_.LocalIoTime(data.size()));
  return Status::kOk;
}

Result<FileInfo> VenusMount::Stat(const std::string& rel) {
  ASSIGN_OR_RETURN(vice::VnodeStatus st, venus_->Stat(rel));
  FileInfo info;
  info.type = FromViceType(st.type);
  info.size = st.length;
  info.mtime = st.mtime;
  info.mode = st.mode;
  info.owner = st.owner;
  return info;
}

Result<std::vector<std::string>> VenusMount::List(const std::string& rel) {
  ASSIGN_OR_RETURN(auto entries, venus_->ReadDir(rel));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const auto& [name, item] : entries) names.push_back(name);
  return names;
}

Status VenusMount::MkDir(const std::string& rel) { return venus_->MkDir(rel); }

Status VenusMount::Remove(const std::string& rel) { return venus_->Remove(rel); }

Status VenusMount::RmDir(const std::string& rel) { return venus_->RmDir(rel); }

Status VenusMount::Rename(const std::string& from_rel, const std::string& to_rel) {
  return venus_->Rename(from_rel, to_rel);
}

Status VenusMount::Symlink(const std::string& target, const std::string& rel) {
  return venus_->Symlink(target, rel);
}

Result<std::string> VenusMount::ReadLink(const std::string& rel) {
  return venus_->ReadLink(rel);
}

Status VenusMount::Chmod(const std::string& rel, uint16_t mode) {
  return venus_->SetMode(rel, mode);
}

}  // namespace itc::virtue::vfs
