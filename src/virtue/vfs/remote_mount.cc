#include "src/virtue/vfs/remote_mount.h"

#include <utility>

namespace itc::virtue::vfs {

RemoteMount::RemoteMount(NodeId node, sim::Clock* clock, baseline::RemoteOpenServer* server,
                         net::Network* network, const sim::CostModel& cost, std::string name)
    : client_(node, clock, server, network, cost), name_(std::move(name)) {}

Status RemoteMount::Connect(UserId user, const crypto::Key& user_key, uint64_t seed) {
  return client_.Connect(user, user_key, seed);
}

Result<MountedOpen> RemoteMount::Open(const std::string& rel, uint32_t flags) {
  ASSIGN_OR_RETURN(uint64_t handle, client_.Open(rel, (flags & kCreate) != 0));
  MountedOpen mo;
  mo.token = handle;
  if ((flags & kWrite) != 0 && (flags & kTruncate) != 0) {
    const Status s = client_.Truncate(handle, 0);
    if (s != Status::kOk) {
      (void)client_.Close(handle);
      return s;
    }
    // No store-on-close here: the truncate already happened remotely.
  }
  return mo;
}

Status RemoteMount::Close(uint64_t token, bool dirty) {
  (void)dirty;  // writes went through already; close just drops the handle
  return client_.Close(token);
}

Result<Bytes> RemoteMount::ReadAt(uint64_t token, uint64_t offset, uint64_t length) {
  return client_.Read(token, offset, length);
}

Status RemoteMount::WriteAt(uint64_t token, uint64_t offset, const Bytes& data) {
  return client_.Write(token, offset, data);
}

Result<FileInfo> RemoteMount::Stat(const std::string& rel) {
  ASSIGN_OR_RETURN(baseline::RemoteOpenClient::RemoteStat st, client_.Stat(rel));
  FileInfo info;
  info.type = st.is_directory ? FileInfo::Type::kDirectory : FileInfo::Type::kFile;
  info.size = st.size;
  info.mtime = st.mtime;
  info.mode = unixfs::kDefaultFileMode;  // the wire protocol carries no mode/owner
  return info;
}

Result<std::vector<std::string>> RemoteMount::List(const std::string& rel) {
  return client_.ReadDir(rel);
}

Status RemoteMount::MkDir(const std::string& rel) { return client_.MkDir(rel); }

Status RemoteMount::Remove(const std::string& rel) { return client_.Unlink(rel); }

Status RemoteMount::RmDir(const std::string& rel) { return client_.RmDir(rel); }

Status RemoteMount::Rename(const std::string& from_rel, const std::string& to_rel) {
  return client_.Rename(from_rel, to_rel);
}

Status RemoteMount::Symlink(const std::string& target, const std::string& rel) {
  (void)target;
  (void)rel;
  return Status::kNotSupported;
}

Result<std::string> RemoteMount::ReadLink(const std::string& rel) {
  (void)rel;
  return Status::kNotSupported;
}

Status RemoteMount::Chmod(const std::string& rel, uint16_t mode) {
  (void)rel;
  (void)mode;
  return Status::kNotSupported;
}

}  // namespace itc::virtue::vfs
