// Path resolution against a mount table.
//
// This is the logic that used to live in Workstation::Classify as a
// hard-coded "/vice means shared" string test. The resolver walks a
// workstation-absolute path component by component, following symlinks of
// locally-resolving mounts (the Figure 3-2 /bin -> /vice/unix/<arch>/bin
// indirection is just such a link), and stops at the first component owned
// by a non-root mount — from there ownership of the remaining path is
// textual, so a deeper mount prefix shadows a shallower one.

#ifndef SRC_VIRTUE_VFS_RESOLVER_H_
#define SRC_VIRTUE_VFS_RESOLVER_H_

#include <string>

#include "src/common/result.h"
#include "src/virtue/vfs/mount.h"
#include "src/virtue/vfs/mount_table.h"

namespace itc::virtue::vfs {

struct ResolvedPath {
  Mount* mount = nullptr;
  std::string prefix;  // mount prefix that owns the path
  std::string rel;     // mount-relative remainder ("/" at the mount root)
};

// Maps `path` to the mount owning it plus the mount-relative remainder.
// Missing trailing components are allowed (creation paths). Trailing
// symlinks are followed, as the old classification did. `symlink_budget`
// accumulates symlink expansions across calls so that chains which bounce
// between mounts (via kSymlinkEscape re-entries) still terminate at
// kMaxSymlinkDepth; callers start it at 0 per logical operation.
[[nodiscard]] Result<ResolvedPath> ResolvePath(const MountTable& table,
                                               const std::string& path,
                                               int* symlink_budget);

}  // namespace itc::virtue::vfs

#endif  // SRC_VIRTUE_VFS_RESOLVER_H_
