#include "src/virtue/vfs/switch.h"

#include <algorithm>

#include "src/common/logging.h"

namespace itc::virtue::vfs {

namespace {
constexpr uint64_t kReadAll = ~0ull >> 2;
}  // namespace

Status Switch::AddMount(const std::string& prefix, std::unique_ptr<Mount> mount) {
  RETURN_IF_ERROR(table_.Add(prefix, mount.get()));
  owned_[prefix] = std::move(mount);
  return Status::kOk;
}

Status Switch::RemoveMount(const std::string& prefix) {
  Mount* mount = table_.AtExactly(prefix);
  if (mount == nullptr) return Status::kNotFound;
  for (const auto& [fd, of] : fds_) {
    if (of.mount == mount) return Status::kNotEmpty;
  }
  RETURN_IF_ERROR(table_.Remove(prefix));
  owned_.erase(prefix);
  return Status::kOk;
}

Result<ResolvedPath> Switch::Resolve(const std::string& path) const {
  int budget = 0;
  return ResolvePath(table_, path, &budget);
}

bool Switch::IsShared(const std::string& path) const {
  auto r = Resolve(path);
  return r.ok() && r->mount->shared();
}

bool Switch::EscapesSharedSpace(const std::string& target) const {
  if (target.empty() || target.front() != '/') return false;
  auto hit = table_.Match(target);
  if (!hit) return false;
  if (hit->prefix != "/") return true;
  if (!hit->mount->resolves_locally()) return false;
  const std::vector<std::string> comps = SplitPath(target);
  if (comps.empty()) return true;  // "/" is the workstation root itself
  return hit->mount->LStat("/" + comps[0]).ok();
}

// --- Descriptor API ----------------------------------------------------------

Result<int> Switch::Open(const std::string& path, uint32_t flags) {
  auto opened = DispatchPath(
      path, [flags](Mount& m, const std::string& rel) -> Result<std::pair<Mount*, MountedOpen>> {
        ASSIGN_OR_RETURN(MountedOpen mo, m.Open(rel, flags));
        return std::make_pair(&m, mo);
      });
  if (!opened.ok()) return opened.status();

  OpenFd of;
  of.mount = opened->first;
  of.token = opened->second.token;
  of.writable = (flags & kWrite) != 0;
  of.dirty = opened->second.dirty;
  const int fd = next_fd_++;
  fds_[fd] = of;
  return fd;
}

Result<Bytes> Switch::Read(int fd, uint64_t length) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  OpenFd& of = it->second;
  ASSIGN_OR_RETURN(Bytes data, of.mount->ReadAt(of.token, of.offset, length));
  of.offset += data.size();
  return data;
}

Status Switch::Write(int fd, const Bytes& data) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  OpenFd& of = it->second;
  if (!of.writable) return Status::kPermissionDenied;
  RETURN_IF_ERROR(of.mount->WriteAt(of.token, of.offset, data));
  of.offset += data.size();
  of.dirty = true;
  return Status::kOk;
}

Result<uint64_t> Switch::Seek(int fd, uint64_t offset) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  it->second.offset = offset;
  return offset;
}

Status Switch::Close(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  const OpenFd of = it->second;
  fds_.erase(it);
  return of.mount->Close(of.token, of.dirty);
}

// --- Metadata / name space ---------------------------------------------------

Result<FileInfo> Switch::Stat(const std::string& path) {
  return DispatchPath(path, [](Mount& m, const std::string& rel) -> Result<FileInfo> {
    ASSIGN_OR_RETURN(FileInfo info, m.Stat(rel));
    info.shared = m.shared();
    return info;
  });
}

Result<std::vector<std::string>> Switch::ReadDir(const std::string& path) {
  ASSIGN_OR_RETURN(std::vector<std::string> names,
                   DispatchPath(path, [](Mount& m, const std::string& rel) {
                     return m.List(rel);
                   }));
  // Mount points appear in their parent directory's listing, Unix-style: a
  // mount at /vice shows up as "vice" in ReadDir("/") even when the backend
  // owning "/" has no such entry.
  std::string dir = path;
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  for (const auto& [prefix, mount] : table_.entries()) {
    (void)mount;
    if (prefix == "/" || std::string(Dirname(prefix)) != dir) continue;
    const std::string leaf(Basename(prefix));
    if (std::find(names.begin(), names.end(), leaf) == names.end()) {
      names.push_back(leaf);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status Switch::MkDir(const std::string& path) {
  return DispatchPath(path, [](Mount& m, const std::string& rel) { return m.MkDir(rel); });
}

Status Switch::Unlink(const std::string& path) {
  return DispatchPath(path, [](Mount& m, const std::string& rel) { return m.Remove(rel); });
}

Status Switch::RmDir(const std::string& path) {
  return DispatchPath(path, [](Mount& m, const std::string& rel) { return m.RmDir(rel); });
}

Status Switch::Rename(const std::string& from, const std::string& to) {
  int budget = 0;
  ASSIGN_OR_RETURN(ResolvedPath src, ResolvePath(table_, from, &budget));
  ASSIGN_OR_RETURN(ResolvedPath dst, ResolvePath(table_, to, &budget));
  if (src.mount != dst.mount) return Status::kCrossVolume;
  const Status s = src.mount->Rename(src.rel, dst.rel);
  if (s == Status::kSymlinkEscape) {
    // An intermediate link of one of the names leads onto another mount:
    // cross-device by definition, like rename(2)'s EXDEV.
    (void)src.mount->TakeEscape();
    return Status::kCrossVolume;
  }
  return s;
}

Status Switch::Symlink(const std::string& target, const std::string& link_path) {
  return DispatchPath(
      link_path, [&target](Mount& m, const std::string& rel) { return m.Symlink(target, rel); });
}

Result<std::string> Switch::ReadLink(const std::string& path) {
  return DispatchPath(path, [](Mount& m, const std::string& rel) { return m.ReadLink(rel); });
}

Status Switch::Chmod(const std::string& path, uint16_t mode) {
  return DispatchPath(path,
                      [mode](Mount& m, const std::string& rel) { return m.Chmod(rel, mode); });
}

// --- Whole-file conveniences -------------------------------------------------

Result<Bytes> Switch::ReadWholeFile(const std::string& path) {
  ASSIGN_OR_RETURN(int fd, Open(path, kRead));
  auto data = Read(fd, kReadAll);
  const Status c = Close(fd);
  if (data.ok() && c != Status::kOk) return c;
  return data;
}

Status Switch::WriteWholeFile(const std::string& path, const Bytes& data) {
  Status result = Status::kOk;
  // A close-time store can discover the name was rebound under a trusted
  // cache entry (e.g. a leased directory that outlived a server restart):
  // the store comes back kStaleFid, the dead mapping is dropped, and one
  // retry re-resolves the name — usually into the create path.
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto fd = Open(path, kWrite | kCreate | kTruncate);
    if (!fd.ok()) {
      result = fd.status();
    } else {
      const Status s = Write(*fd, data);
      const Status c = Close(*fd);
      result = s != Status::kOk ? s : c;
    }
    if (result != Status::kStaleFid) break;
  }
  return result;
}

}  // namespace itc::virtue::vfs
