#include "src/virtue/vfs/resolver.h"

#include <vector>

#include "src/common/path.h"

namespace itc::virtue::vfs {

Result<ResolvedPath> ResolvePath(const MountTable& table, const std::string& path,
                                 int* symlink_budget) {
  if (path.empty() || path.front() != '/') return Status::kInvalidArgument;

  std::vector<std::string> comps = SplitPath(path);
  std::string cur;  // resolved prefix so far; "" == "/"
  size_t i = 0;

  auto finish = [&table](const std::string& full) -> Result<ResolvedPath> {
    auto hit = table.Match(full);
    if (!hit) return Status::kNotFound;
    return ResolvedPath{hit->mount, hit->prefix, MountRelative(full, hit->prefix)};
  };

  while (i < comps.size()) {
    std::string candidate = cur;
    candidate += '/';
    candidate += comps[i];

    auto hit = table.Match(candidate);
    if (!hit) return Status::kNotFound;
    if (hit->prefix != "/") {
      // Crossed into a non-root mount. From here ownership is textual:
      // rebuild the full remaining path and let longest-prefix pick the
      // owner, so a mount at /vice/pc shadows the one at /vice.
      std::string full = std::move(candidate);
      for (size_t j = i + 1; j < comps.size(); ++j) {
        full += '/';
        full += comps[j];
      }
      return finish(full);
    }

    if (hit->mount->resolves_locally()) {
      auto lst = hit->mount->LStat(candidate);
      if (lst.ok() && lst->type == FileInfo::Type::kSymlink) {
        if (++*symlink_budget > kMaxSymlinkDepth) return Status::kSymlinkLoop;
        ASSIGN_OR_RETURN(std::string target, hit->mount->ReadTarget(candidate));
        std::vector<std::string> spliced = SplitPath(target);
        spliced.insert(spliced.end(), comps.begin() + static_cast<ptrdiff_t>(i + 1),
                       comps.end());
        comps = std::move(spliced);
        i = 0;
        // Absolute target restarts at the workstation root; a relative one
        // continues from the directory holding the link (cur unchanged).
        if (!target.empty() && target.front() == '/') cur.clear();
        continue;
      }
    }
    // Missing components are fine (creation paths); they stay on this
    // mount since they cannot be symlinks.
    cur = std::move(candidate);
    ++i;
  }
  return finish(cur.empty() ? std::string("/") : cur);
}

}  // namespace itc::virtue::vfs
