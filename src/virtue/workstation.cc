#include "src/virtue/workstation.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/virtue/vfs/remote_mount.h"
#include "src/virtue/vfs/unixfs_mount.h"
#include "src/virtue/vfs/venus_mount.h"

namespace itc::virtue {

namespace {
constexpr char kVenusCacheDir[] = "/venus-cache";
}  // namespace

Workstation::Workstation(NodeId node, const venus::ServerMap* servers, ServerId home_server,
                         net::Network* network, const sim::CostModel& cost,
                         WorkstationConfig config, uint64_t seed)
    : node_(node), config_(std::move(config)), cost_(cost) {
  venus_ = std::make_unique<venus::Venus>(node, &clock_, &local_fs_, kVenusCacheDir,
                                          config_.venus, servers, home_server, network,
                                          cost, seed);
  vfs_ = std::make_unique<vfs::Switch>();
  ITC_CHECK(vfs_->AddMount("/", std::make_unique<vfs::UnixfsMount>(
                                    &local_fs_, &clock_, cost_,
                                    [v = venus_.get()] { return v->user(); }, "local")) ==
            Status::kOk);
  ITC_CHECK(vfs_->AddMount(kViceMountPoint,
                           std::make_unique<vfs::VenusMount>(venus_.get(), &local_fs_,
                                                             &clock_, cost_)) == Status::kOk);
  // Vice symlinks whose absolute targets name workstation paths hop back
  // out of the shared space through the switch (and vice versa).
  venus_->set_escape_predicate(
      [sw = vfs_.get()](const std::string& target) { return sw->EscapesSharedSpace(target); });
}

Status Workstation::InstallStandardLayout() {
  RETURN_IF_ERROR(local_fs_.MkDirAll("/tmp"));
  RETURN_IF_ERROR(local_fs_.MkDirAll("/etc"));
  RETURN_IF_ERROR(local_fs_.MkDirAll("/local"));
  RETURN_IF_ERROR(local_fs_.WriteFile("/vmunix", ToBytes("kernel image\n")));
  // The heterogeneity indirection of Figure 3-2: this workstation's /bin and
  // /lib are symbolic links into the architecture-specific shared subtree.
  RETURN_IF_ERROR(local_fs_.Symlink(std::string(kViceMountPoint) + "/unix/" + config_.arch +
                                        "/bin",
                                    "/bin"));
  RETURN_IF_ERROR(local_fs_.Symlink(std::string(kViceMountPoint) + "/unix/" + config_.arch +
                                        "/lib",
                                    "/lib"));
  return Status::kOk;
}

Status Workstation::MountRemote(const std::string& prefix, baseline::RemoteOpenServer* server,
                                net::Network* network, UserId user,
                                const crypto::Key& user_key, uint64_t seed) {
  auto mount = std::make_unique<vfs::RemoteMount>(node_, &clock_, server, network, cost_);
  RETURN_IF_ERROR(mount->Connect(user, user_key, seed));
  return vfs_->AddMount(prefix, std::move(mount));
}

Status Workstation::Login(UserId user, const crypto::Key& user_key) {
  return venus_->Login(user, user_key);
}

Status Workstation::LoginWithPassword(UserId user, const std::string& password) {
  return Login(user, crypto::DeriveKeyFromPassword(password, "itc.cmu.edu"));
}

void Workstation::Logout() { venus_->Logout(); }

// --- Unix file system interface (forwarded to the VFS switch) ----------------

Result<int> Workstation::Open(const std::string& path, uint32_t flags) {
  return vfs_->Open(path, flags);
}

Result<Bytes> Workstation::Read(int fd, uint64_t length) { return vfs_->Read(fd, length); }

Status Workstation::Write(int fd, const Bytes& data) { return vfs_->Write(fd, data); }

Result<uint64_t> Workstation::Seek(int fd, uint64_t offset) { return vfs_->Seek(fd, offset); }

Status Workstation::Close(int fd) { return vfs_->Close(fd); }

Result<FileInfo> Workstation::Stat(const std::string& path) { return vfs_->Stat(path); }

Result<std::vector<std::string>> Workstation::ReadDir(const std::string& path) {
  return vfs_->ReadDir(path);
}

Status Workstation::MkDir(const std::string& path) { return vfs_->MkDir(path); }

Status Workstation::Unlink(const std::string& path) { return vfs_->Unlink(path); }

Status Workstation::RmDir(const std::string& path) { return vfs_->RmDir(path); }

Status Workstation::Rename(const std::string& from, const std::string& to) {
  return vfs_->Rename(from, to);
}

Status Workstation::Symlink(const std::string& target, const std::string& link_path) {
  return vfs_->Symlink(target, link_path);
}

Result<std::string> Workstation::ReadLink(const std::string& path) {
  return vfs_->ReadLink(path);
}

Status Workstation::Chmod(const std::string& path, uint16_t mode) {
  return vfs_->Chmod(path, mode);
}

Result<Bytes> Workstation::ReadWholeFile(const std::string& path) {
  return vfs_->ReadWholeFile(path);
}

Status Workstation::WriteWholeFile(const std::string& path, const Bytes& data) {
  return vfs_->WriteWholeFile(path, data);
}

bool Workstation::IsShared(const std::string& path) { return vfs_->IsShared(path); }

}  // namespace itc::virtue
