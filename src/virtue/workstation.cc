#include "src/virtue/workstation.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/path.h"

namespace itc::virtue {

namespace {
constexpr char kVenusCacheDir[] = "/venus-cache";
constexpr uint64_t kReadAll = ~0ull >> 2;
}  // namespace

Workstation::Workstation(NodeId node, const venus::ServerMap* servers, ServerId home_server,
                         net::Network* network, const sim::CostModel& cost,
                         WorkstationConfig config, uint64_t seed)
    : node_(node), config_(std::move(config)), cost_(cost) {
  venus_ = std::make_unique<venus::Venus>(node, &clock_, &local_fs_, kVenusCacheDir,
                                          config_.venus, servers, home_server, network,
                                          cost, seed);
}

Status Workstation::InstallStandardLayout() {
  RETURN_IF_ERROR(local_fs_.MkDirAll("/tmp"));
  RETURN_IF_ERROR(local_fs_.MkDirAll("/etc"));
  RETURN_IF_ERROR(local_fs_.MkDirAll("/local"));
  RETURN_IF_ERROR(local_fs_.WriteFile("/vmunix", ToBytes("kernel image\n")));
  // The heterogeneity indirection of Figure 3-2: this workstation's /bin and
  // /lib are symbolic links into the architecture-specific shared subtree.
  RETURN_IF_ERROR(local_fs_.Symlink(std::string(kViceMountPoint) + "/unix/" + config_.arch +
                                        "/bin",
                                    "/bin"));
  RETURN_IF_ERROR(local_fs_.Symlink(std::string(kViceMountPoint) + "/unix/" + config_.arch +
                                        "/lib",
                                    "/lib"));
  return Status::kOk;
}

Status Workstation::Login(UserId user, const crypto::Key& user_key) {
  return venus_->Login(user, user_key);
}

Status Workstation::LoginWithPassword(UserId user, const std::string& password) {
  return Login(user, crypto::DeriveKeyFromPassword(password, "itc.cmu.edu"));
}

void Workstation::Logout() { venus_->Logout(); }

// --- Path classification ---------------------------------------------------------

Result<Workstation::PathClass> Workstation::Classify(const std::string& path) const {
  if (path.empty() || path.front() != '/') return Status::kInvalidArgument;

  std::vector<std::string> comps = SplitPath(path);
  std::string cur;  // "" == "/"
  size_t i = 0;
  int depth = 0;

  while (i < comps.size()) {
    std::string candidate = cur;
    candidate += '/';
    candidate += comps[i];
    if (PathHasPrefix(candidate, kViceMountPoint)) {
      // Everything below the mount point is shared; the Vice-internal path
      // is whatever follows /vice.
      std::string vice_path;
      for (size_t j = i + 1; j < comps.size(); ++j) {
        vice_path += '/';
        vice_path += comps[j];
      }
      if (vice_path.empty()) vice_path.push_back('/');
      return PathClass{true, vice_path};
    }

    auto lst = local_fs_.LStat(candidate);
    if (lst.ok() && lst->type == unixfs::FileType::kSymlink) {
      if (++depth > kMaxSymlinkDepth) return Status::kSymlinkLoop;
      auto target = local_fs_.ReadLink(candidate);
      if (!target.ok()) return target.status();
      std::vector<std::string> spliced = SplitPath(*target);
      spliced.insert(spliced.end(), comps.begin() + static_cast<ptrdiff_t>(i + 1),
                     comps.end());
      comps = std::move(spliced);
      i = 0;
      if (!target->empty() && target->front() == '/') cur.clear();
      continue;
    }
    // Missing components are fine (creation paths); they are local by
    // construction since they cannot be symlinks.
    cur = candidate;
    ++i;
  }
  return PathClass{false, cur.empty() ? std::string("/") : cur};
}

bool Workstation::IsShared(const std::string& path) {
  auto cls = Classify(path);
  return cls.ok() && cls->shared;
}

// --- Descriptor API ------------------------------------------------------------------

Result<int> Workstation::Open(const std::string& path, uint32_t flags) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  const bool writable = (flags & kWrite) != 0;

  OpenFile of;
  of.writable = writable;

  if (cls.shared) {
    ASSIGN_OR_RETURN(venus::Venus::OpenResult open,
                     venus_->Open(cls.path, writable, (flags & kCreate) != 0));
    clock_.Advance(cost_.local_open);  // opening the cached copy
    of.shared = true;
    of.fid = open.fid;
    ASSIGN_OR_RETURN(of.inode, local_fs_.Resolve(open.cache_path));
    if (writable && (flags & kTruncate) != 0) {
      RETURN_IF_ERROR(local_fs_.Truncate(of.inode, 0));
      of.dirty = true;
    }
  } else {
    auto resolved = local_fs_.Resolve(cls.path);
    if (!resolved.ok()) {
      if (resolved.status() != Status::kNotFound || (flags & kCreate) == 0) {
        return resolved.status();
      }
      clock_.Advance(cost_.local_create);
      ASSIGN_OR_RETURN(of.inode, local_fs_.Create(cls.path, unixfs::kDefaultFileMode,
                                                  venus_->user()));
    } else {
      of.inode = *resolved;
      ASSIGN_OR_RETURN(unixfs::StatInfo st, local_fs_.StatInode(of.inode));
      if (st.type == unixfs::FileType::kDirectory) return Status::kIsDirectory;
      if (writable && (flags & kTruncate) != 0) {
        RETURN_IF_ERROR(local_fs_.Truncate(of.inode, 0));
      }
    }
    clock_.Advance(cost_.local_open);
  }

  const int fd = next_fd_++;
  fds_[fd] = of;
  return fd;
}

Result<Bytes> Workstation::Read(int fd, uint64_t length) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  OpenFile& of = it->second;
  ASSIGN_OR_RETURN(Bytes data, local_fs_.ReadAt(of.inode, of.offset, length));
  of.offset += data.size();
  clock_.Advance(cost_.LocalIoTime(data.size()));
  return data;
}

Status Workstation::Write(int fd, const Bytes& data) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  OpenFile& of = it->second;
  if (!of.writable) return Status::kPermissionDenied;
  RETURN_IF_ERROR(local_fs_.WriteAt(of.inode, of.offset, data));
  of.offset += data.size();
  of.dirty = true;
  clock_.Advance(cost_.LocalIoTime(data.size()));
  return Status::kOk;
}

Result<uint64_t> Workstation::Seek(int fd, uint64_t offset) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  it->second.offset = offset;
  return offset;
}

Status Workstation::Close(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::kBadDescriptor;
  const OpenFile of = it->second;
  fds_.erase(it);
  if (of.shared) {
    return venus_->Close(of.fid, of.dirty);
  }
  return Status::kOk;
}

// --- Metadata / name space -----------------------------------------------------------

namespace {

FileInfo::Type FromUnixType(unixfs::FileType t) {
  switch (t) {
    case unixfs::FileType::kRegular: return FileInfo::Type::kFile;
    case unixfs::FileType::kDirectory: return FileInfo::Type::kDirectory;
    case unixfs::FileType::kSymlink: return FileInfo::Type::kSymlink;
  }
  return FileInfo::Type::kFile;
}

FileInfo::Type FromViceType(vice::VnodeType t) {
  switch (t) {
    case vice::VnodeType::kFile: return FileInfo::Type::kFile;
    case vice::VnodeType::kDirectory: return FileInfo::Type::kDirectory;
    case vice::VnodeType::kSymlink: return FileInfo::Type::kSymlink;
  }
  return FileInfo::Type::kFile;
}

}  // namespace

Result<FileInfo> Workstation::Stat(const std::string& path) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  FileInfo info;
  if (cls.shared) {
    ASSIGN_OR_RETURN(vice::VnodeStatus st, venus_->Stat(cls.path));
    info.type = FromViceType(st.type);
    info.size = st.length;
    info.mtime = st.mtime;
    info.mode = st.mode;
    info.owner = st.owner;
    info.shared = true;
  } else {
    clock_.Advance(cost_.local_stat);
    ASSIGN_OR_RETURN(unixfs::StatInfo st, local_fs_.Stat(cls.path));
    info.type = FromUnixType(st.type);
    info.size = st.size;
    info.mtime = st.mtime;
    info.mode = st.mode;
    info.owner = st.owner;
    info.shared = false;
  }
  return info;
}

Result<std::vector<std::string>> Workstation::ReadDir(const std::string& path) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  std::vector<std::string> names;
  if (cls.shared) {
    ASSIGN_OR_RETURN(auto entries, venus_->ReadDir(cls.path));
    names.reserve(entries.size());
    for (const auto& [name, item] : entries) names.push_back(name);
  } else {
    clock_.Advance(cost_.local_stat);
    ASSIGN_OR_RETURN(auto entries, local_fs_.ReadDir(cls.path));
    names.reserve(entries.size());
    for (const auto& e : entries) names.push_back(e.name);
  }
  return names;
}

Status Workstation::MkDir(const std::string& path) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  if (cls.shared) return venus_->MkDir(cls.path);
  clock_.Advance(cost_.local_mkdir);
  return local_fs_.MkDir(cls.path, unixfs::kDefaultDirMode, venus_->user());
}

Status Workstation::Unlink(const std::string& path) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  if (cls.shared) return venus_->Remove(cls.path);
  clock_.Advance(cost_.local_open);
  return local_fs_.Unlink(cls.path);
}

Status Workstation::RmDir(const std::string& path) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  if (cls.shared) return venus_->RmDir(cls.path);
  clock_.Advance(cost_.local_open);
  return local_fs_.RmDir(cls.path);
}

Status Workstation::Rename(const std::string& from, const std::string& to) {
  ASSIGN_OR_RETURN(PathClass from_cls, Classify(from));
  ASSIGN_OR_RETURN(PathClass to_cls, Classify(to));
  if (from_cls.shared != to_cls.shared) return Status::kCrossVolume;
  if (from_cls.shared) return venus_->Rename(from_cls.path, to_cls.path);
  clock_.Advance(cost_.local_open);
  return local_fs_.Rename(from_cls.path, to_cls.path);
}

Status Workstation::Symlink(const std::string& target, const std::string& link_path) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(link_path));
  if (cls.shared) return venus_->Symlink(target, cls.path);
  clock_.Advance(cost_.local_create);
  return local_fs_.Symlink(target, cls.path);
}

Result<std::string> Workstation::ReadLink(const std::string& path) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  if (cls.shared) return venus_->ReadLink(cls.path);
  clock_.Advance(cost_.local_stat);
  return local_fs_.ReadLink(cls.path);
}

Status Workstation::Chmod(const std::string& path, uint16_t mode) {
  ASSIGN_OR_RETURN(PathClass cls, Classify(path));
  if (cls.shared) return venus_->SetMode(cls.path, mode);
  clock_.Advance(cost_.local_stat);
  return local_fs_.Chmod(cls.path, mode);
}

// --- Whole-file conveniences ------------------------------------------------------------

Result<Bytes> Workstation::ReadWholeFile(const std::string& path) {
  ASSIGN_OR_RETURN(int fd, Open(path, kRead));
  auto data = Read(fd, kReadAll);
  const Status c = Close(fd);
  if (data.ok() && c != Status::kOk) return c;
  return data;
}

Status Workstation::WriteWholeFile(const std::string& path, const Bytes& data) {
  ASSIGN_OR_RETURN(int fd, Open(path, kWrite | kCreate | kTruncate));
  Status s = Write(fd, data);
  Status c = Close(fd);
  return s != Status::kOk ? s : c;
}

}  // namespace itc::virtue
