#include "src/virtue/surrogate.h"

#include "src/rpc/wire.h"

namespace itc::virtue {

namespace {

}  // namespace

SurrogateServer::SurrogateServer(Workstation* host, net::Network* network,
                                 const sim::CostModel& cost, rpc::RpcConfig rpc_config,
                                 rpc::ServerEndpoint::KeyLookup key_lookup,
                                 uint64_t nonce_seed)
    : host_(host),
      endpoint_(host->node(), network, cost, rpc_config, std::move(key_lookup),
                nonce_seed) {
  endpoint_.set_service(this);
}

Result<Bytes> SurrogateServer::Dispatch(rpc::CallContext& ctx, uint32_t proc_raw,
                                        const Bytes& request) {
  // The surrogate executes every operation through the HOST's Vice session.
  // Serving a differently-authenticated PC user would let that user act
  // with the host user's rights; refuse anyone but the session owner.
  if (ctx.user() != host_->venus().user()) {
    return rpc::StatusOnlyReply(Status::kPermissionDenied);
  }
  rpc::Reader r(request);
  switch (static_cast<SurrogateProc>(proc_raw)) {
    case SurrogateProc::kReadFile: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto data = host_->ReadWholeFile(*path);
      if (!data.ok()) return rpc::StatusOnlyReply(data.status());
      rpc::Writer w;
      w.PutStatus(Status::kOk);
      w.PutBytes(*data);
      return w.Take();
    }
    case SurrogateProc::kWriteFile: {
      auto path = r.String();
      auto data = path.ok() ? r.BytesField() : Result<Bytes>(Status::kProtocolError);
      if (!data.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      return rpc::StatusOnlyReply(host_->WriteWholeFile(*path, *data));
    }
    case SurrogateProc::kStat: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto info = host_->Stat(*path);
      if (!info.ok()) return rpc::StatusOnlyReply(info.status());
      rpc::Writer w;
      w.PutStatus(Status::kOk);
      w.PutU64(info->size);
      w.PutBool(info->type == FileInfo::Type::kDirectory);
      w.PutBool(info->shared);
      return w.Take();
    }
    case SurrogateProc::kMkDir: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      return rpc::StatusOnlyReply(host_->MkDir(*path));
    }
    case SurrogateProc::kUnlink: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      return rpc::StatusOnlyReply(host_->Unlink(*path));
    }
    case SurrogateProc::kReadDir: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto names = host_->ReadDir(*path);
      if (!names.ok()) return rpc::StatusOnlyReply(names.status());
      rpc::Writer w;
      w.PutStatus(Status::kOk);
      w.PutU32(static_cast<uint32_t>(names->size()));
      for (const auto& name : *names) w.PutString(name);
      return w.Take();
    }
  }
  return Status::kProtocolError;
}

PcClient::PcClient(NodeId node, sim::Clock* clock, SurrogateServer* surrogate,
                   net::Network* network, const sim::CostModel& cost)
    : node_(node), clock_(clock), surrogate_(surrogate), network_(network), cost_(cost) {}

Status PcClient::Connect(UserId user, const crypto::Key& user_key, uint64_t seed) {
  ASSIGN_OR_RETURN(conn_, rpc::ClientConnection::Connect(node_, user, user_key,
                                                         &surrogate_->endpoint(),
                                                         network_, cost_, clock_, seed));
  return Status::kOk;
}

Result<Bytes> PcClient::Call(SurrogateProc proc, const Bytes& request) {
  if (conn_ == nullptr) return Status::kConnectionBroken;
  return conn_->Call(static_cast<uint32_t>(proc), request);
}

Result<Bytes> PcClient::ReadFile(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(SurrogateProc::kReadFile, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  return r.BytesField();
}

Status PcClient::WriteFile(const std::string& path, const Bytes& data) {
  rpc::Writer w;
  w.PutString(path);
  w.PutBytes(data);
  ASSIGN_OR_RETURN(Bytes reply, Call(SurrogateProc::kWriteFile, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Result<PcClient::PcStat> PcClient::Stat(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(SurrogateProc::kStat, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  PcStat out;
  ASSIGN_OR_RETURN(out.size, r.U64());
  ASSIGN_OR_RETURN(out.is_directory, r.Bool());
  ASSIGN_OR_RETURN(out.shared, r.Bool());
  return out;
}

Status PcClient::MkDir(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(SurrogateProc::kMkDir, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status PcClient::Unlink(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(SurrogateProc::kUnlink, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Result<std::vector<std::string>> PcClient::ReadDir(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(SurrogateProc::kReadDir, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(uint32_t n, r.U32());
  std::vector<std::string> names;
  names.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.String());
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace itc::virtue
