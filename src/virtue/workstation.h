// Virtue: the workstation (Sections 2.3, 3.1, 3.3).
//
// A Workstation owns a local Unix file system (the Root File System), a
// virtual clock, a Venus cache manager, and a VFS switch with two standard
// mounts: the local file system at "/" and the shared Vice name space at
// /vice. "File names generated on the workstation with /vice as the leading
// prefix correspond to files in the shared space. All other names refer to
// files in the local space." Local symbolic links point into /vice (e.g.
// /bin -> /vice/unix/sun/bin), which is how heterogeneous workstation types
// see the right binaries (Figure 3-2).
//
// The Unix-like descriptor API below is the intercept layer, now a thin
// shim over vfs::Switch: the resolver maps each path onto its owning mount
// and the mount does the work — Venus whole-file caching for /vice, plain
// local I/O elsewhere, and (after MountRemote) a Locus-style remote-open
// tree wherever the caller attached it. "Other than performance, there is
// no difference between accessing a local file and a file in the shared
// name space."

#ifndef SRC_VIRTUE_WORKSTATION_H_
#define SRC_VIRTUE_WORKSTATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baseline/remote_open.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/crypto/key.h"
#include "src/net/network.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/unixfs/file_system.h"
#include "src/venus/venus.h"
#include "src/virtue/vfs/switch.h"

namespace itc::virtue {

inline constexpr char kViceMountPoint[] = "/vice";

// The flag and stat types live with the VFS contract now; re-exported here
// so existing callers keep compiling unchanged.
using vfs::FileInfo;
using vfs::OpenFlags;
using vfs::kRead;     // NOLINT(misc-unused-using-decls)
using vfs::kWrite;    // NOLINT(misc-unused-using-decls)
using vfs::kCreate;   // NOLINT(misc-unused-using-decls)
using vfs::kTruncate; // NOLINT(misc-unused-using-decls)

struct WorkstationConfig {
  // Architecture tag used for the /bin -> /vice/unix/<arch>/bin indirection.
  std::string arch = "sun";
  venus::VenusConfig venus;
  // Local disk capacity used by Venus's cache sizing is in venus config.
};

class Workstation {
 public:
  Workstation(NodeId node, const venus::ServerMap* servers, ServerId home_server,
              net::Network* network, const sim::CostModel& cost, WorkstationConfig config,
              uint64_t seed);

  NodeId node() const { return node_; }
  sim::Clock& clock() { return clock_; }
  unixfs::FileSystem& local_fs() { return local_fs_; }
  venus::Venus& venus() { return *venus_; }
  const WorkstationConfig& config() const { return config_; }
  // The mount layer itself, for mount management and direct dispatch.
  vfs::Switch& vfs() { return *vfs_; }

  // Creates the conventional local layout: /tmp, /etc, /vmunix, and the
  // symbolic links /bin and /lib into the shared space for this
  // workstation's architecture.
  [[nodiscard]] Status InstallStandardLayout();

  // Attaches a remote-open tree (Section 6.3 comparator) at `prefix`, e.g.
  // "/nfs", connecting to `server` as `user`. The paper's third file class
  // becomes a mount-table entry instead of a parallel universe.
  [[nodiscard]] Status MountRemote(const std::string& prefix,
                                   baseline::RemoteOpenServer* server, net::Network* network,
                                   UserId user, const crypto::Key& user_key, uint64_t seed);

  // --- Session ------------------------------------------------------------------
  [[nodiscard]] Status Login(UserId user, const crypto::Key& user_key);
  [[nodiscard]] Status LoginWithPassword(UserId user, const std::string& password);
  void Logout();

  // --- Unix file system interface --------------------------------------------------
  // Paths are workstation-absolute; anything resolving onto a shared mount
  // (the /vice tree, remote-open trees) is shared. All calls forward to the
  // VFS switch.
  [[nodiscard]] Result<int> Open(const std::string& path, uint32_t flags);
  [[nodiscard]] Result<Bytes> Read(int fd, uint64_t length);
  [[nodiscard]] Status Write(int fd, const Bytes& data);
  [[nodiscard]] Result<uint64_t> Seek(int fd, uint64_t offset);
  [[nodiscard]] Status Close(int fd);

  [[nodiscard]] Result<FileInfo> Stat(const std::string& path);
  [[nodiscard]] Result<std::vector<std::string>> ReadDir(const std::string& path);
  [[nodiscard]] Status MkDir(const std::string& path);
  [[nodiscard]] Status Unlink(const std::string& path);
  [[nodiscard]] Status RmDir(const std::string& path);
  [[nodiscard]] Status Rename(const std::string& from, const std::string& to);
  [[nodiscard]] Status Symlink(const std::string& target, const std::string& link_path);
  [[nodiscard]] Result<std::string> ReadLink(const std::string& path);
  [[nodiscard]] Status Chmod(const std::string& path, uint16_t mode);

  // Whole-file conveniences (open/read-or-write/close in one call).
  [[nodiscard]] Result<Bytes> ReadWholeFile(const std::string& path);
  [[nodiscard]] Status WriteWholeFile(const std::string& path, const Bytes& data);

  // True if `path` resolves onto a shared mount.
  bool IsShared(const std::string& path);

  size_t open_file_count() const { return vfs_->open_file_count(); }

 private:
  NodeId node_;
  sim::Clock clock_;
  unixfs::FileSystem local_fs_;
  WorkstationConfig config_;
  sim::CostModel cost_;
  std::unique_ptr<venus::Venus> venus_;
  std::unique_ptr<vfs::Switch> vfs_;
};

}  // namespace itc::virtue

#endif  // SRC_VIRTUE_WORKSTATION_H_
