// Virtue: the workstation (Sections 2.3, 3.1, 3.3).
//
// A Workstation owns a local Unix file system (the Root File System), a
// virtual clock, and a Venus cache manager. The shared Vice name space is
// mounted at /vice; "file names generated on the workstation with /vice as
// the leading prefix correspond to files in the shared space. All other
// names refer to files in the local space." Local symbolic links point into
// /vice (e.g. /bin -> /vice/unix/sun/bin), which is how heterogeneous
// workstation types see the right binaries (Figure 3-2).
//
// The Unix-like descriptor API below is the intercept layer: open of a
// shared file asks Venus for a whole-file cached copy and returns a
// descriptor onto that local copy; read/write never touch Vice; close of a
// dirty file triggers the store-back. "Other than performance, there is no
// difference between accessing a local file and a file in the shared name
// space."

#ifndef SRC_VIRTUE_WORKSTATION_H_
#define SRC_VIRTUE_WORKSTATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/crypto/key.h"
#include "src/net/network.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/unixfs/file_system.h"
#include "src/venus/venus.h"

namespace itc::virtue {

inline constexpr char kViceMountPoint[] = "/vice";

// open() flags.
enum OpenFlags : uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTruncate = 1u << 3,
};

// Unified stat result for local and shared files.
struct FileInfo {
  enum class Type { kFile, kDirectory, kSymlink };
  Type type = Type::kFile;
  uint64_t size = 0;
  SimTime mtime = 0;
  uint16_t mode = 0;
  UserId owner = kAnonymousUser;
  bool shared = false;  // lives in Vice
};

struct WorkstationConfig {
  // Architecture tag used for the /bin -> /vice/unix/<arch>/bin indirection.
  std::string arch = "sun";
  venus::VenusConfig venus;
  // Local disk capacity used by Venus's cache sizing is in venus config.
};

class Workstation {
 public:
  Workstation(NodeId node, const venus::ServerMap* servers, ServerId home_server,
              net::Network* network, const sim::CostModel& cost, WorkstationConfig config,
              uint64_t seed);

  NodeId node() const { return node_; }
  sim::Clock& clock() { return clock_; }
  unixfs::FileSystem& local_fs() { return local_fs_; }
  venus::Venus& venus() { return *venus_; }
  const WorkstationConfig& config() const { return config_; }

  // Creates the conventional local layout: /tmp, /etc, /vmunix, and the
  // symbolic links /bin and /lib into the shared space for this
  // workstation's architecture.
  [[nodiscard]] Status InstallStandardLayout();

  // --- Session ------------------------------------------------------------------
  [[nodiscard]] Status Login(UserId user, const crypto::Key& user_key);
  [[nodiscard]] Status LoginWithPassword(UserId user, const std::string& password);
  void Logout();

  // --- Unix file system interface --------------------------------------------------
  // Paths are workstation-absolute; anything resolving under /vice is shared.
  [[nodiscard]] Result<int> Open(const std::string& path, uint32_t flags);
  [[nodiscard]] Result<Bytes> Read(int fd, uint64_t length);
  [[nodiscard]] Status Write(int fd, const Bytes& data);
  [[nodiscard]] Result<uint64_t> Seek(int fd, uint64_t offset);
  [[nodiscard]] Status Close(int fd);

  [[nodiscard]] Result<FileInfo> Stat(const std::string& path);
  [[nodiscard]] Result<std::vector<std::string>> ReadDir(const std::string& path);
  [[nodiscard]] Status MkDir(const std::string& path);
  [[nodiscard]] Status Unlink(const std::string& path);
  [[nodiscard]] Status RmDir(const std::string& path);
  [[nodiscard]] Status Rename(const std::string& from, const std::string& to);
  [[nodiscard]] Status Symlink(const std::string& target, const std::string& link_path);
  [[nodiscard]] Result<std::string> ReadLink(const std::string& path);
  [[nodiscard]] Status Chmod(const std::string& path, uint16_t mode);

  // Whole-file conveniences (open/read-or-write/close in one call).
  [[nodiscard]] Result<Bytes> ReadWholeFile(const std::string& path);
  [[nodiscard]] Status WriteWholeFile(const std::string& path, const Bytes& data);

  // True if `path` resolves into the shared name space.
  bool IsShared(const std::string& path);

  size_t open_file_count() const { return fds_.size(); }

 private:
  struct PathClass {
    bool shared = false;
    std::string path;  // local path, or Vice-internal path (without /vice)
  };

  struct OpenFile {
    bool shared = false;
    bool writable = false;
    bool dirty = false;
    Fid fid;                    // shared files
    unixfs::InodeNum inode = 0; // backing local inode (cache copy or local file)
    uint64_t offset = 0;
  };

  // Resolves local symlinks until the path either escapes into /vice or
  // stays local. Missing trailing components are allowed (creation paths).
  [[nodiscard]] Result<PathClass> Classify(const std::string& path) const;

  NodeId node_;
  sim::Clock clock_;
  unixfs::FileSystem local_fs_;
  WorkstationConfig config_;
  sim::CostModel cost_;
  std::unique_ptr<venus::Venus> venus_;
  std::map<int, OpenFile> fds_;
  int next_fd_ = 3;
};

}  // namespace itc::virtue

#endif  // SRC_VIRTUE_WORKSTATION_H_
