// Surrogate server for low-function workstations (Section 3.3).
//
// "An approach we are exploring is to provide a Surrogate Server running on
//  a Virtue workstation. This surrogate would behave as a single-site
//  network file server for the Virtue file system. Clients of this server
//  would then be transparently accessing Vice files on account of a Virtue
//  workstation's transparent Vice attachment... Work is currently in
//  progress to build such a surrogate server for IBM PCs."
//
// The SurrogateServer is an RPC service hosted on a full Virtue
// workstation; it exposes a simple single-site file interface (read/write
// whole files, stat, mkdir, unlink, list) over the host's ordinary Unix
// API. A PcClient (the low-function machine) therefore reaches both the
// host's local files and — through the host's /vice mount and Venus cache —
// the entire shared name space, without running Venus or the crypto stack
// for Vice itself. PC-to-surrogate traffic still authenticates and encrypts
// with the standard handshake — and because every operation executes under
// the HOST workstation's Vice session, the surrogate only serves the user
// who owns that session (anyone else is refused, or Vice's protection
// checks would be evaluated against the wrong identity).

#ifndef SRC_VIRTUE_SURROGATE_H_
#define SRC_VIRTUE_SURROGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/rpc/rpc.h"
#include "src/virtue/workstation.h"

namespace itc::virtue {

enum class SurrogateProc : uint32_t {
  kReadFile = 1,   // path -> bytes
  kWriteFile = 2,  // path, bytes
  kStat = 3,       // path -> FileInfo fields
  kMkDir = 4,
  kUnlink = 5,
  kReadDir = 6,    // path -> names
};

class SurrogateServer : public rpc::Service {
 public:
  // The surrogate listens at the host workstation's own node. The host must
  // be logged in to Vice for shared paths to work; local paths always work.
  SurrogateServer(Workstation* host, net::Network* network, const sim::CostModel& cost,
                  rpc::RpcConfig rpc_config, rpc::ServerEndpoint::KeyLookup key_lookup,
                  uint64_t nonce_seed);

  rpc::ServerEndpoint& endpoint() { return endpoint_; }
  Workstation* host() { return host_; }

  [[nodiscard]] Result<Bytes> Dispatch(rpc::CallContext& ctx, uint32_t proc, const Bytes& request) override;

 private:
  Workstation* host_;
  rpc::ServerEndpoint endpoint_;
};

// The low-function client (an IBM PC on a cheap network, modelled as a node
// in the surrogate's cluster).
class PcClient {
 public:
  PcClient(NodeId node, sim::Clock* clock, SurrogateServer* surrogate,
           net::Network* network, const sim::CostModel& cost);

  [[nodiscard]] Status Connect(UserId user, const crypto::Key& user_key, uint64_t seed);

  [[nodiscard]] Result<Bytes> ReadFile(const std::string& path);
  [[nodiscard]] Status WriteFile(const std::string& path, const Bytes& data);
  struct PcStat {
    uint64_t size = 0;
    bool is_directory = false;
    bool shared = false;
  };
  [[nodiscard]] Result<PcStat> Stat(const std::string& path);
  [[nodiscard]] Status MkDir(const std::string& path);
  [[nodiscard]] Status Unlink(const std::string& path);
  [[nodiscard]] Result<std::vector<std::string>> ReadDir(const std::string& path);

 private:
  [[nodiscard]] Result<Bytes> Call(SurrogateProc proc, const Bytes& request);

  NodeId node_;
  sim::Clock* clock_;
  SurrogateServer* surrogate_;
  net::Network* network_;
  sim::CostModel cost_;
  std::unique_ptr<rpc::ClientConnection> conn_;
};

}  // namespace itc::virtue

#endif  // SRC_VIRTUE_SURROGATE_H_
