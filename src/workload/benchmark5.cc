#include "src/workload/benchmark5.h"

#include "src/common/path.h"

namespace itc::workload {

std::string_view PhaseName(Phase p) {
  switch (p) {
    case Phase::kMakeDir: return "MakeDir";
    case Phase::kCopy: return "Copy";
    case Phase::kScanDir: return "ScanDir";
    case Phase::kReadAll: return "ReadAll";
    case Phase::kMake: return "Make";
  }
  return "?";
}

Status InstallSourceTree(virtue::Workstation& ws, const std::string& source_prefix,
                         const SourceTreeSpec& spec, uint64_t seed) {
  if (Status s = ws.MkDir(source_prefix); s != Status::kOk && s != Status::kAlreadyExists) {
    return s;
  }
  for (const std::string& dir : spec.directories) {
    Status s = ws.MkDir(PathConcat(source_prefix, dir));
    if (s != Status::kOk && s != Status::kAlreadyExists) return s;
  }
  uint64_t i = 0;
  for (const SourceFile& f : spec.files) {
    RETURN_IF_ERROR(ws.WriteWholeFile(
        PathConcat(source_prefix, f.relative_path),
        // itcfs-lint: allow(no-eager-contents) -- transient store payload
        SynthesizeContents(seed ^ i, f.size)));
    ++i;
  }
  return Status::kOk;
}

Result<Benchmark5Result> RunBenchmark5(virtue::Workstation& ws,
                                       const std::string& source_prefix,
                                       const std::string& target_prefix,
                                       const SourceTreeSpec& spec,
                                       const Benchmark5Config& config) {
  Benchmark5Result result;
  sim::Clock& clock = ws.clock();
  SimTime phase_start = clock.now();

  auto end_phase = [&](Phase p) {
    result.phase_time[static_cast<int>(p)] = clock.now() - phase_start;
    phase_start = clock.now();
  };

  // Phase 1: MakeDir — replicate the directory structure.
  {
    Status s = ws.MkDir(target_prefix);
    if (s != Status::kOk && s != Status::kAlreadyExists) return s;
    for (const std::string& dir : spec.directories) {
      s = ws.MkDir(PathConcat(target_prefix, dir));
      if (s != Status::kOk && s != Status::kAlreadyExists) return s;
    }
    end_phase(Phase::kMakeDir);
  }

  // Phase 2: Copy — read each source file, write the target copy.
  for (const SourceFile& f : spec.files) {
    clock.Advance(config.copy_tool_per_file);
    ASSIGN_OR_RETURN(Bytes data, ws.ReadWholeFile(PathConcat(source_prefix, f.relative_path)));
    RETURN_IF_ERROR(ws.WriteWholeFile(PathConcat(target_prefix, f.relative_path), data));
  }
  end_phase(Phase::kCopy);

  // Phase 3: ScanDir — list every directory and stat every file.
  {
    RETURN_IF_ERROR(ws.ReadDir(target_prefix).status());
    for (const std::string& dir : spec.directories) {
      RETURN_IF_ERROR(ws.ReadDir(PathConcat(target_prefix, dir)).status());
    }
    for (const SourceFile& f : spec.files) {
      clock.Advance(config.scan_per_file);
      RETURN_IF_ERROR(ws.Stat(PathConcat(target_prefix, f.relative_path)).status());
    }
    end_phase(Phase::kScanDir);
  }

  // Phase 4: ReadAll — scan every byte of every file in the target.
  for (const SourceFile& f : spec.files) {
    clock.Advance(config.read_tool_per_file);
    RETURN_IF_ERROR(ws.ReadWholeFile(PathConcat(target_prefix, f.relative_path)).status());
  }
  end_phase(Phase::kReadAll);

  // Phase 5: Make — compile every source file, then link.
  {
    uint64_t objects_bytes = 0;
    for (const SourceFile& f : spec.files) {
      if (!f.is_source) continue;
      ASSIGN_OR_RETURN(Bytes src,
                       ws.ReadWholeFile(PathConcat(target_prefix, f.relative_path)));
      // Compiler think time.
      clock.Advance(config.compile_base +
                    static_cast<SimTime>(static_cast<double>(config.compile_per_kb) *
                                         (static_cast<double>(src.size()) / 1024.0)));
      // Object file, comparable in size to the source.
      std::string obj_path = PathConcat(target_prefix, f.relative_path);
      obj_path.replace(obj_path.size() - 2, 2, ".o");
      // itcfs-lint: allow(no-eager-contents) -- transient store payload; the at-rest copy canonicalizes
      const Bytes obj = SynthesizeContents(src.size(), src.size());
      RETURN_IF_ERROR(ws.WriteWholeFile(obj_path, obj));
      objects_bytes += obj.size();
    }
    // Link: read back all objects, emit the binary.
    for (const SourceFile& f : spec.files) {
      if (!f.is_source) continue;
      std::string obj_path = PathConcat(target_prefix, f.relative_path);
      obj_path.replace(obj_path.size() - 2, 2, ".o");
      RETURN_IF_ERROR(ws.ReadWholeFile(obj_path).status());
    }
    clock.Advance(config.link_base +
                  static_cast<SimTime>(static_cast<double>(config.link_per_kb) *
                                       (static_cast<double>(objects_bytes) / 1024.0)));
    RETURN_IF_ERROR(ws.WriteWholeFile(
        PathConcat(target_prefix, "a.out"),
        // itcfs-lint: allow(no-eager-contents) -- transient store payload
        SynthesizeContents(objects_bytes, objects_bytes / 2)));
    end_phase(Phase::kMake);
  }

  for (SimTime t : result.phase_time) result.total += t;
  return result;
}

}  // namespace itc::workload
