#include "src/workload/source_tree.h"

#include <algorithm>
#include <cstring>

#include "src/common/rng.h"

namespace itc::workload {

SourceTreeSpec GenerateSourceTree(uint64_t seed, uint32_t file_count) {
  Rng rng(seed);
  SourceTreeSpec spec;

  const char* dirs[] = {"", "lib", "cmd", "include", "doc"};
  for (const char* d : dirs) {
    if (*d != '\0') spec.directories.emplace_back(d);
  }

  // Typical application split: ~55% .c, ~25% .h, the rest docs/Makefiles.
  uint32_t c_files = file_count * 55 / 100;
  uint32_t h_files = file_count * 25 / 100;
  uint32_t misc = file_count - c_files - h_files;

  auto sample_size = [&rng](uint64_t lo, uint64_t hi) {
    // Skewed toward the small end, like the CMU file-size study [12].
    const double u = rng.NextDouble();
    const double skewed = u * u;
    return lo + static_cast<uint64_t>(skewed * static_cast<double>(hi - lo));
  };

  for (uint32_t i = 0; i < c_files; ++i) {
    const char* dir = (i % 3 == 0) ? "lib" : "cmd";
    spec.files.push_back(SourceFile{std::string(dir) + "/mod" + std::to_string(i) + ".c",
                                    sample_size(2048, 24 * 1024), true});
  }
  for (uint32_t i = 0; i < h_files; ++i) {
    spec.files.push_back(SourceFile{"include/def" + std::to_string(i) + ".h",
                                    sample_size(512, 6 * 1024), false});
  }
  for (uint32_t i = 0; i < misc; ++i) {
    const bool makefile = i == 0;
    spec.files.push_back(SourceFile{
        makefile ? std::string("Makefile") : "doc/notes" + std::to_string(i) + ".txt",
        sample_size(512, 12 * 1024), false});
  }
  return spec;
}

Bytes SynthesizeContents(uint64_t seed, uint64_t size) {
  Rng rng(seed);
  static constexpr char kAlphabet[] =
      "int main(void) { return 0; }\n/* vice */ #include <stdio.h>\n";
  constexpr uint64_t kPeriod = sizeof(kAlphabet) - 1;
  const uint64_t phase = rng.Below(kPeriod);
  // out[i] = kAlphabet[(i + phase) % kPeriod]. Write one period, then extend
  // by doubling: after the head, `filled` stays a multiple of kPeriod, so
  // copying from the front preserves the phase. Benches synthesize contents
  // on every store; byte-at-a-time push_back was a profile hotspot.
  Bytes out(size);
  const uint64_t head = std::min(size, kPeriod);
  for (uint64_t i = 0; i < head; ++i) {
    out[i] = static_cast<uint8_t>(kAlphabet[(i + phase) % kPeriod]);
  }
  for (uint64_t filled = head; filled < size;) {
    const uint64_t n = std::min(filled, size - filled);
    std::memcpy(out.data() + filled, out.data(), n);
    filled += n;
  }
  return out;
}

}  // namespace itc::workload
