#include "src/workload/source_tree.h"

#include <algorithm>

#include "src/common/content.h"
#include "src/common/rng.h"

namespace itc::workload {

SourceTreeSpec GenerateSourceTree(uint64_t seed, uint32_t file_count) {
  Rng rng(seed);
  SourceTreeSpec spec;

  const char* dirs[] = {"", "lib", "cmd", "include", "doc"};
  for (const char* d : dirs) {
    if (*d != '\0') spec.directories.emplace_back(d);
  }

  // Typical application split: ~55% .c, ~25% .h, the rest docs/Makefiles.
  uint32_t c_files = file_count * 55 / 100;
  uint32_t h_files = file_count * 25 / 100;
  uint32_t misc = file_count - c_files - h_files;

  auto sample_size = [&rng](uint64_t lo, uint64_t hi) {
    // Skewed toward the small end, like the CMU file-size study [12].
    const double u = rng.NextDouble();
    const double skewed = u * u;
    return lo + static_cast<uint64_t>(skewed * static_cast<double>(hi - lo));
  };

  for (uint32_t i = 0; i < c_files; ++i) {
    const char* dir = (i % 3 == 0) ? "lib" : "cmd";
    spec.files.push_back(SourceFile{std::string(dir) + "/mod" + std::to_string(i) + ".c",
                                    sample_size(2048, 24 * 1024), true});
  }
  for (uint32_t i = 0; i < h_files; ++i) {
    spec.files.push_back(SourceFile{"include/def" + std::to_string(i) + ".h",
                                    sample_size(512, 6 * 1024), false});
  }
  for (uint32_t i = 0; i < misc; ++i) {
    const bool makefile = i == 0;
    spec.files.push_back(SourceFile{
        makefile ? std::string("Makefile") : "doc/notes" + std::to_string(i) + ".txt",
        sample_size(512, 12 * 1024), false});
  }
  return spec;
}

Bytes SynthesizeContents(uint64_t seed, uint64_t size) {
  // The byte generator lives in src/common/content now (the same stream,
  // represented lazily); this materializing wrapper remains for call sites
  // that genuinely need transient bytes — e.g. a user's write buffer headed
  // for the wire. Populate-scale code should hold content::Ref::ForSeed
  // instead (enforced by itcfs-lint's no-eager-contents).
  return content::Ref::ForSeed(seed, size).Materialize();
}

}  // namespace itc::workload
