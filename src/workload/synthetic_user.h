// Synthetic user-day driver (reference [13]: "A Synthetic Driver for File
// System Simulation").
//
// A SyntheticUser is a sim::Process that walks one workstation through a
// working day: think, then stat / open-read / open-write / list / scratch
// in proportions configurable per experiment. File popularity within the
// user's own files and within the shared system binaries is Zipf, so a
// working set emerges and the cache-hit-ratio experiment (E2) has teeth.
//
// The user's files live under a Vice home directory; system binaries are
// reached through the /bin symlink; temporaries go to local /tmp — the three
// file classes of Section 4.

#ifndef SRC_WORKLOAD_SYNTHETIC_USER_H_
#define SRC_WORKLOAD_SYNTHETIC_USER_H_

#include <string>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/scheduler.h"
#include "src/virtue/workstation.h"
#include "src/workload/zipf.h"

namespace itc::workload {

struct UserDayConfig {
  uint32_t operations = 2000;

  // Operation mix (cumulative-normalized internally). Defaults follow the
  // 1985 usage profile: text processing and browsing read far more than they
  // write ("files tend to be read much more frequently than written").
  double p_stat = 0.24;        // stat a file (ls -l style)
  double p_list = 0.08;        // list a directory
  double p_read_own = 0.32;    // open-read one of the user's files
  double p_read_system = 0.26; // run a system program (read its binary)
  double p_write_own = 0.02;   // edit: open-read then write back
  double p_tmp = 0.08;         // compiler-style scratch in /tmp

  uint32_t own_files = 60;      // files in the user's home working set
  uint32_t system_files = 40;   // shared binaries in /bin
  double zipf_theta = 1.0;      // popularity skew within each set

  SimTime mean_think = Seconds(12);  // exponential think time between ops

  // Bursty sessions: with probability `burst_probability` (checked when
  // idle), the user enters an intense stretch of `burst_length` operations
  // with `burst_think` pacing — an edit-compile session. Bursts are what
  // drive the short-term utilization peaks of Section 5.2.
  double burst_probability = 0.06;
  uint32_t burst_length = 15;
  SimTime burst_think = Millis(1500);
};

struct UserDayStats {
  uint64_t operations = 0;
  uint64_t errors = 0;
};

class SyntheticUser : public sim::Process {
 public:
  // `home` is the user's Vice home seen from the workstation (e.g.
  // "/vice/usr/alice"); system binaries are read via `bin_prefix`
  // (e.g. "/bin"). Files fN must already exist under both prefixes —
  // see PopulateUserFiles / the campus system-volume helpers.
  SyntheticUser(virtue::Workstation* ws, std::string home, std::string bin_prefix,
                UserDayConfig config, uint64_t seed);

  // sim::Process. Under the event kernel each Step() runs inside an
  // activity and suspends at every resource arrival, so queueing is exact
  // regardless of step granularity. Stepping is still two-phase — one step
  // advances think time, the next performs the file operation — which keeps
  // the retained conservative baseline (bench_kernel_fidelity) ordering
  // clients by post-think arrival rather than pre-think time.
  SimTime now() const override { return ws_->clock().now(); }
  bool done() const override { return ops_done_ >= config_.operations; }
  void Step() override;

  const UserDayStats& stats() const { return stats_; }
  static std::string OwnFileName(uint32_t index) { return "f" + std::to_string(index); }
  static std::string SystemFileName(uint32_t index) {
    return "prog" + std::to_string(index);
  }

 private:
  void DoOne();

  virtue::Workstation* ws_;
  std::string home_;
  std::string bin_prefix_;
  UserDayConfig config_;
  Rng rng_;
  ZipfSampler own_pop_;
  ZipfSampler system_pop_;
  uint32_t ops_done_ = 0;
  uint32_t tmp_counter_ = 0;
  bool thinking_ = true;       // next step advances think time
  uint32_t burst_remaining_ = 0;
  UserDayStats stats_;
};

}  // namespace itc::workload

#endif  // SRC_WORKLOAD_SYNTHETIC_USER_H_
