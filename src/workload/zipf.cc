#include "src/workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace itc::workload {

ZipfSampler::ZipfSampler(uint32_t n, double theta) {
  ITC_CHECK(n > 0);
  cdf_.reserve(n);
  double sum = 0;
  for (uint32_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_.push_back(sum);
  }
  for (double& v : cdf_) v /= sum;
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<uint32_t>(cdf_.size() - 1);
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace itc::workload
