// The five-phase benchmark of Section 5.2 (the proto-"Andrew benchmark").
//
// "This benchmark operates on about 70 files corresponding to the source
//  code of an actual Unix application. There are five distinct phases...:
//  making a target subtree that is identical in structure to the source
//  subtree, copying the files from the source to the target, examining the
//  status of every file in the target, scanning every byte of every file in
//  the target, and finally compiling and linking the files in the target."
//
// The benchmark drives a Workstation through its ordinary Unix interface, so
// whether the source/target prefixes are local paths or /vice paths decides
// the local-vs-remote experiment of the paper ("about 80% longer when the
// workstation is obtaining all its files from an unloaded Vice server").

#ifndef SRC_WORKLOAD_BENCHMARK5_H_
#define SRC_WORKLOAD_BENCHMARK5_H_

#include <array>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/virtue/workstation.h"
#include "src/workload/source_tree.h"

namespace itc::workload {

enum class Phase : int { kMakeDir = 0, kCopy = 1, kScanDir = 2, kReadAll = 3, kMake = 4 };
inline constexpr int kPhaseCount = 5;
std::string_view PhaseName(Phase p);

struct Benchmark5Result {
  std::array<SimTime, kPhaseCount> phase_time{};
  SimTime total = 0;
};

struct Benchmark5Config {
  // Workstation think-time model, calibrated so the all-local run lands in
  // the neighbourhood of the paper's ~1000 s on a Sun-2-class machine.
  // Compiler CPU per source file (base + per-KB) and the final link:
  SimTime compile_base = Seconds(14);
  SimTime compile_per_kb = Millis(600);
  SimTime link_base = Seconds(30);
  SimTime link_per_kb = Millis(80);
  // Tool startup (fork/exec of cp, wc, ls) per file touched by the Copy,
  // ReadAll, and ScanDir phases — the benchmark script spawned a process
  // per file, which dominated the non-compile phases on 1985 hardware.
  SimTime copy_tool_per_file = Millis(1200);
  SimTime read_tool_per_file = Millis(1200);
  SimTime scan_per_file = Millis(300);
};

// Installs the source tree at `source_prefix` on the workstation (through
// the normal write path, so shared prefixes land in Vice).
[[nodiscard]] Status InstallSourceTree(virtue::Workstation& ws, const std::string& source_prefix,
                         const SourceTreeSpec& spec, uint64_t seed);

// Runs the five phases: source at `source_prefix`, target created under
// `target_prefix`. Both may be local or /vice paths.
[[nodiscard]] Result<Benchmark5Result> RunBenchmark5(virtue::Workstation& ws,
                                       const std::string& source_prefix,
                                       const std::string& target_prefix,
                                       const SourceTreeSpec& spec,
                                       const Benchmark5Config& config = {});

}  // namespace itc::workload

#endif  // SRC_WORKLOAD_BENCHMARK5_H_
