#include "src/workload/synthetic_user.h"

#include <cmath>

#include "src/common/path.h"
#include "src/workload/source_tree.h"

namespace itc::workload {

SyntheticUser::SyntheticUser(virtue::Workstation* ws, std::string home,
                             std::string bin_prefix, UserDayConfig config, uint64_t seed)
    : ws_(ws),
      home_(std::move(home)),
      bin_prefix_(std::move(bin_prefix)),
      config_(config),
      rng_(seed),
      own_pop_(config.own_files, config.zipf_theta),
      system_pop_(config.system_files, config.zipf_theta) {}

void SyntheticUser::Step() {
  if (thinking_) {
    // Exponential think time; the op itself runs on the next step, after the
    // kernel has re-aligned this activity to its post-think clock. An idle
    // user may enter a burst (edit-compile session) of rapid operations.
    if (burst_remaining_ == 0 && rng_.Chance(config_.burst_probability)) {
      burst_remaining_ = config_.burst_length;
    }
    SimTime mean = config_.mean_think;
    if (burst_remaining_ > 0) {
      mean = config_.burst_think;
      burst_remaining_ -= 1;
    }
    const double u = rng_.NextDouble();
    const double think = -static_cast<double>(mean) * std::log(1.0 - u);
    ws_->clock().Advance(static_cast<SimTime>(think));
    thinking_ = false;
    return;
  }
  DoOne();
  thinking_ = true;
  ops_done_ += 1;
  stats_.operations += 1;
}

void SyntheticUser::DoOne() {
  const double total = config_.p_stat + config_.p_list + config_.p_read_own +
                       config_.p_read_system + config_.p_write_own + config_.p_tmp;
  double pick = rng_.NextDouble() * total;

  auto track = [this](Status s) {
    if (s != Status::kOk) stats_.errors += 1;
  };

  if ((pick -= config_.p_stat) < 0) {
    // Mixed stat traffic: own files and binaries.
    const bool own = rng_.Chance(0.6);
    const std::string path =
        own ? PathConcat(home_, OwnFileName(own_pop_.Sample(rng_)))
            : PathConcat(bin_prefix_, SystemFileName(system_pop_.Sample(rng_)));
    track(ws_->Stat(path).status());
    return;
  }
  if ((pick -= config_.p_list) < 0) {
    track(ws_->ReadDir(rng_.Chance(0.5) ? home_ : bin_prefix_).status());
    return;
  }
  if ((pick -= config_.p_read_own) < 0) {
    track(ws_->ReadWholeFile(PathConcat(home_, OwnFileName(own_pop_.Sample(rng_))))
              .status());
    return;
  }
  if ((pick -= config_.p_read_system) < 0) {
    track(ws_->ReadWholeFile(
                  PathConcat(bin_prefix_, SystemFileName(system_pop_.Sample(rng_))))
              .status());
    return;
  }
  if ((pick -= config_.p_write_own) < 0) {
    // Edit cycle: read, modify, write back whole file.
    const std::string path = PathConcat(home_, OwnFileName(own_pop_.Sample(rng_)));
    auto data = ws_->ReadWholeFile(path);
    if (!data.ok()) {
      stats_.errors += 1;
      return;
    }
    Bytes edited = std::move(*data);
    edited.push_back('\n');
    track(ws_->WriteWholeFile(path, edited));
    return;
  }
  // Temporary-file cycle: write scratch to local /tmp, read it once, delete.
  const std::string tmp = "/tmp/t" + std::to_string(tmp_counter_++ % 8);
  // itcfs-lint: allow(no-eager-contents) -- transient store payload; the at-rest copy canonicalizes
  const Bytes scratch = SynthesizeContents(rng_.NextU64(), 2048 + rng_.Below(6144));
  track(ws_->WriteWholeFile(tmp, scratch));
  track(ws_->ReadWholeFile(tmp).status());
  track(ws_->Unlink(tmp));
}

}  // namespace itc::workload
