// File classes with distinct access patterns (design principle: "exploit
// class-specific file properties", Section 4; reference [13]).
//
// "Files in a typical file system can be grouped into a small number of
//  easily-identifiable classes, based on their access and modification
//  patterns. For example, files containing the binaries of system programs
//  are frequently read but rarely written. On the other hand temporary
//  files ... are typically read at most once after they are written."

#ifndef SRC_WORKLOAD_FILE_CLASSES_H_
#define SRC_WORKLOAD_FILE_CLASSES_H_

#include <cstdint>
#include <string_view>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace itc::workload {

enum class FileClass : uint8_t {
  kSystemBinary,  // read-mostly, shared by everyone, replication candidates
  kUserData,      // a user's own files: read-biased, occasionally written
  kTemporary,     // written once, read at most once, local by policy
};

std::string_view FileClassName(FileClass c);

// Samples a file size appropriate for the class, following the shape of the
// CMU size study [12]: heavily skewed to small files, >99% under a few MB.
uint64_t SampleFileSize(FileClass c, Rng& rng);

}  // namespace itc::workload

#endif  // SRC_WORKLOAD_FILE_CLASSES_H_
