// Zipf-distributed popularity sampling for workload generation.

#ifndef SRC_WORKLOAD_ZIPF_H_
#define SRC_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace itc::workload {

// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^theta.
// theta = 0 is uniform; larger theta concentrates on low ranks.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta);

  uint32_t Sample(Rng& rng) const;
  uint32_t size() const { return static_cast<uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace itc::workload

#endif  // SRC_WORKLOAD_ZIPF_H_
