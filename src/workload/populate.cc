#include "src/workload/populate.h"

#include "src/common/content.h"
#include "src/common/rng.h"
#include "src/workload/source_tree.h"
#include "src/workload/synthetic_user.h"

namespace itc::workload {

// Population installs content::Ref records instead of materialized byte
// vectors: the bytes a ref denotes are identical to what
// SynthesizeContents(seed, size) returns (Ref::ForSeed draws the same phase
// from the same Rng stream), but a populated file costs ~32 bytes of host
// memory until someone actually stores over it.

Status PopulateUserFiles(campus::Campus& campus, VolumeId user_volume, uint32_t count,
                         uint64_t seed) {
  Rng rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t size = SampleFileSize(FileClass::kUserData, rng);
    RETURN_IF_ERROR(campus.PopulateDirect(user_volume,
                                          "/" + SyntheticUser::OwnFileName(i),
                                          content::Ref::ForSeed(seed ^ i, size)));
  }
  return Status::kOk;
}

Status PopulateSystemBinaries(campus::Campus& campus, VolumeId system_volume,
                              uint32_t count, uint64_t seed) {
  Rng rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t size = SampleFileSize(FileClass::kSystemBinary, rng);
    RETURN_IF_ERROR(campus.PopulateDirect(system_volume,
                                          "/bin/" + SyntheticUser::SystemFileName(i),
                                          content::Ref::ForSeed(seed ^ (0xb1ull << 32) ^ i,
                                                                size)));
  }
  return Status::kOk;
}

}  // namespace itc::workload
