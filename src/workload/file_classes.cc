#include "src/workload/file_classes.h"

namespace itc::workload {

std::string_view FileClassName(FileClass c) {
  switch (c) {
    case FileClass::kSystemBinary: return "system-binary";
    case FileClass::kUserData: return "user-data";
    case FileClass::kTemporary: return "temporary";
  }
  return "?";
}

uint64_t SampleFileSize(FileClass c, Rng& rng) {
  // Piecewise mixture skewed small; binaries run larger than user data.
  const double u = rng.NextDouble();
  auto in = [&rng](uint64_t lo, uint64_t hi) {
    return lo + rng.Below(hi - lo + 1);
  };
  switch (c) {
    case FileClass::kSystemBinary:
      if (u < 0.30) return in(4 * 1024, 16 * 1024);
      if (u < 0.80) return in(16 * 1024, 64 * 1024);
      if (u < 0.98) return in(64 * 1024, 256 * 1024);
      return in(256 * 1024, 1024 * 1024);
    case FileClass::kUserData:
      if (u < 0.50) return in(512, 4 * 1024);
      if (u < 0.85) return in(4 * 1024, 16 * 1024);
      if (u < 0.99) return in(16 * 1024, 128 * 1024);
      return in(128 * 1024, 1024 * 1024);
    case FileClass::kTemporary:
      if (u < 0.70) return in(1024, 8 * 1024);
      return in(8 * 1024, 64 * 1024);
  }
  return 4096;
}

}  // namespace itc::workload
