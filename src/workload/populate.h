// Zero-cost environment population for experiments: pre-loads user home
// volumes and system-binary volumes so the synthetic users have something to
// work on, without perturbing clocks or statistics.

#ifndef SRC_WORKLOAD_POPULATE_H_
#define SRC_WORKLOAD_POPULATE_H_

#include "src/campus/campus.h"
#include "src/workload/file_classes.h"

namespace itc::workload {

// Creates `count` files f0..f<count-1> in the root of `user_volume`, with
// kUserData sizes.
[[nodiscard]] Status PopulateUserFiles(campus::Campus& campus, VolumeId user_volume, uint32_t count,
                         uint64_t seed);

// Creates `count` binaries bin/prog0..prog<count-1> in `system_volume`, with
// kSystemBinary sizes.
[[nodiscard]] Status PopulateSystemBinaries(campus::Campus& campus, VolumeId system_volume,
                              uint32_t count, uint64_t seed);

}  // namespace itc::workload

#endif  // SRC_WORKLOAD_POPULATE_H_
