// Deterministic generator for the benchmark source tree.
//
// The Section 5.2 benchmark "operates on about 70 files corresponding to the
// source code of an actual Unix application". This generator produces such a
// tree: C sources, headers, and Makefiles spread over a handful of
// subdirectories, with realistic mid-1980s sizes, deterministically from a
// seed.

#ifndef SRC_WORKLOAD_SOURCE_TREE_H_
#define SRC_WORKLOAD_SOURCE_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace itc::workload {

struct SourceFile {
  std::string relative_path;  // e.g. "lib/parse.c"
  uint64_t size = 0;
  bool is_source = false;  // .c file: the Make phase compiles it
};

struct SourceTreeSpec {
  std::vector<std::string> directories;  // relative, parents first
  std::vector<SourceFile> files;

  uint64_t total_bytes() const {
    uint64_t n = 0;
    for (const auto& f : files) n += f.size;
    return n;
  }
  size_t source_count() const {
    size_t n = 0;
    for (const auto& f : files) n += f.is_source ? 1 : 0;
    return n;
  }
};

// Generates a tree of ~`file_count` files (default matches the paper's ~70).
SourceTreeSpec GenerateSourceTree(uint64_t seed, uint32_t file_count = 70);

// Deterministic file contents of the given size (compressible text-like
// bytes; contents only matter for integrity checks).
Bytes SynthesizeContents(uint64_t seed, uint64_t size);

}  // namespace itc::workload

#endif  // SRC_WORKLOAD_SOURCE_TREE_H_
