#include "src/baseline/remote_open.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/rpc/wire.h"

namespace itc::baseline {

namespace {

}  // namespace

RemoteOpenServer::RemoteOpenServer(NodeId node, net::Network* network,
                                   const sim::CostModel& cost, rpc::RpcConfig rpc_config,
                                   rpc::ServerEndpoint::KeyLookup key_lookup,
                                   uint64_t nonce_seed)
    : cost_(cost),
      endpoint_(node, network, cost, rpc_config, std::move(key_lookup), nonce_seed) {
  endpoint_.set_service(this);
}

Result<Bytes> RemoteOpenServer::Dispatch(rpc::CallContext& ctx, uint32_t proc_raw,
                                         const Bytes& request) {
  rpc::Reader r(request);
  switch (static_cast<Proc>(proc_raw)) {
    case Proc::kOpen: {
      auto path = r.String();
      auto create = path.ok() ? r.Bool() : Result<bool>(Status::kProtocolError);
      if (!create.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto inode = storage_.Resolve(*path);
      if (!inode.ok() && inode.status() == Status::kNotFound && *create) {
        inode = storage_.Create(*path, unixfs::kDefaultFileMode, ctx.user());
      }
      if (!inode.ok()) return rpc::StatusOnlyReply(inode.status());
      auto st = storage_.StatInode(*inode);
      if (!st.ok()) return rpc::StatusOnlyReply(st.status());
      if (st->type == unixfs::FileType::kDirectory) return rpc::StatusOnlyReply(Status::kIsDirectory);
      const uint64_t handle = next_handle_++;
      handles_[handle] = *inode;
      ctx.ChargeDisk(0);  // open touches the inode
      rpc::Writer w;
      w.PutStatus(Status::kOk);
      w.PutU64(handle);
      w.PutU64(st->size);
      return w.Take();
    }
    case Proc::kClose: {
      auto handle = r.U64();
      if (!handle.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      return rpc::StatusOnlyReply(handles_.erase(*handle) > 0 ? Status::kOk
                                                     : Status::kBadDescriptor);
    }
    case Proc::kRead: {
      auto handle = r.U64();
      auto offset = handle.ok() ? r.U64() : Result<uint64_t>(Status::kProtocolError);
      auto length = offset.ok() ? r.U64() : Result<uint64_t>(Status::kProtocolError);
      if (!length.ok() || *length > kPageSize) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto it = handles_.find(*handle);
      if (it == handles_.end()) return rpc::StatusOnlyReply(Status::kBadDescriptor);
      auto data = storage_.ReadAt(it->second, *offset, *length);
      if (!data.ok()) return rpc::StatusOnlyReply(data.status());
      ctx.ChargeDisk(data->size());
      ctx.ChargeCpu(cost_.ServerCopyCpu(data->size()));
      rpc::Writer w;
      w.PutStatus(Status::kOk);
      w.PutBytes(*data);
      return w.Take();
    }
    case Proc::kWrite: {
      auto handle = r.U64();
      auto offset = handle.ok() ? r.U64() : Result<uint64_t>(Status::kProtocolError);
      auto data = offset.ok() ? r.BytesField() : Result<Bytes>(Status::kProtocolError);
      if (!data.ok() || data->size() > kPageSize) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto it = handles_.find(*handle);
      if (it == handles_.end()) return rpc::StatusOnlyReply(Status::kBadDescriptor);
      ctx.ChargeDisk(data->size());
      ctx.ChargeCpu(cost_.ServerCopyCpu(data->size()));
      return rpc::StatusOnlyReply(storage_.WriteAt(it->second, *offset, *data));
    }
    case Proc::kStat: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto st = storage_.Stat(*path);
      if (!st.ok()) return rpc::StatusOnlyReply(st.status());
      ctx.ChargeDisk(0);
      rpc::Writer w;
      w.PutStatus(Status::kOk);
      w.PutU64(st->size);
      w.PutI64(st->mtime);
      w.PutBool(st->type == unixfs::FileType::kDirectory);
      return w.Take();
    }
    case Proc::kMkDir: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      ctx.ChargeDisk(0);
      return rpc::StatusOnlyReply(storage_.MkDir(*path));
    }
    case Proc::kUnlink: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      ctx.ChargeDisk(0);
      return rpc::StatusOnlyReply(storage_.Unlink(*path));
    }
    case Proc::kReadDir: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto entries = storage_.ReadDir(*path);
      if (!entries.ok()) return rpc::StatusOnlyReply(entries.status());
      ctx.ChargeDisk(0);
      rpc::Writer w;
      w.PutStatus(Status::kOk);
      w.PutU32(static_cast<uint32_t>(entries->size()));
      for (const auto& e : *entries) w.PutString(e.name);
      return w.Take();
    }
    case Proc::kRename: {
      auto from = r.String();
      auto to = from.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
      if (!to.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      ctx.ChargeDisk(0);
      return rpc::StatusOnlyReply(storage_.Rename(*from, *to));
    }
    case Proc::kRmDir: {
      auto path = r.String();
      if (!path.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      ctx.ChargeDisk(0);
      return rpc::StatusOnlyReply(storage_.RmDir(*path));
    }
    case Proc::kTruncate: {
      auto handle = r.U64();
      auto size = handle.ok() ? r.U64() : Result<uint64_t>(Status::kProtocolError);
      if (!size.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
      auto it = handles_.find(*handle);
      if (it == handles_.end()) return rpc::StatusOnlyReply(Status::kBadDescriptor);
      ctx.ChargeDisk(0);
      return rpc::StatusOnlyReply(storage_.Truncate(it->second, *size));
    }
  }
  return Status::kProtocolError;
}

RemoteOpenClient::RemoteOpenClient(NodeId node, sim::Clock* clock, RemoteOpenServer* server,
                                   net::Network* network, const sim::CostModel& cost)
    : node_(node), clock_(clock), server_(server), network_(network), cost_(cost) {}

Status RemoteOpenClient::Connect(UserId user, const crypto::Key& user_key, uint64_t seed) {
  ASSIGN_OR_RETURN(conn_, rpc::ClientConnection::Connect(node_, user, user_key,
                                                         &server_->endpoint(), network_,
                                                         cost_, clock_, seed));
  return Status::kOk;
}

Result<Bytes> RemoteOpenClient::Call(Proc proc, const Bytes& request) {
  if (conn_ == nullptr) return Status::kConnectionBroken;
  return conn_->Call(static_cast<uint32_t>(proc), request);
}

Result<uint64_t> RemoteOpenClient::Open(const std::string& path, bool create) {
  rpc::Writer w;
  w.PutString(path);
  w.PutBool(create);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kOpen, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(uint64_t handle, r.U64());
  return handle;
}

Status RemoteOpenClient::Close(uint64_t handle) {
  rpc::Writer w;
  w.PutU64(handle);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kClose, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Result<Bytes> RemoteOpenClient::Read(uint64_t handle, uint64_t offset, uint64_t length) {
  Bytes out;
  while (length > 0) {
    const uint64_t chunk = std::min(length, kPageSize);
    rpc::Writer w;
    w.PutU64(handle);
    w.PutU64(offset);
    w.PutU64(chunk);
    ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kRead, w.Take()));
    rpc::Reader r(reply);
    RETURN_IF_ERROR(rpc::ExpectOk(r));
    ASSIGN_OR_RETURN(Bytes page, r.BytesField());
    out.insert(out.end(), page.begin(), page.end());
    if (page.size() < chunk) break;  // EOF
    offset += page.size();
    length -= page.size();
  }
  return out;
}

Status RemoteOpenClient::Write(uint64_t handle, uint64_t offset, const Bytes& data) {
  uint64_t off = 0;
  while (off < data.size() || data.empty()) {
    const uint64_t chunk = std::min<uint64_t>(data.size() - off, kPageSize);
    rpc::Writer w;
    w.PutU64(handle);
    w.PutU64(offset + off);
    w.PutBytes(Bytes(data.begin() + static_cast<ptrdiff_t>(off),
                     data.begin() + static_cast<ptrdiff_t>(off + chunk)));
    ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kWrite, w.Take()));
    rpc::Reader r(reply);
    RETURN_IF_ERROR(rpc::ExpectOk(r));
    off += chunk;
    if (data.empty()) break;
  }
  return Status::kOk;
}

Result<RemoteOpenClient::RemoteStat> RemoteOpenClient::Stat(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kStat, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  RemoteStat out;
  ASSIGN_OR_RETURN(out.size, r.U64());
  ASSIGN_OR_RETURN(out.mtime, r.I64());
  ASSIGN_OR_RETURN(out.is_directory, r.Bool());
  return out;
}

Status RemoteOpenClient::MkDir(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kMkDir, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status RemoteOpenClient::Unlink(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kUnlink, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Result<std::vector<std::string>> RemoteOpenClient::ReadDir(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kReadDir, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(uint32_t count, r.U32());
  std::vector<std::string> names;
  names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.String());
    names.push_back(std::move(name));
  }
  return names;
}

Status RemoteOpenClient::Rename(const std::string& from, const std::string& to) {
  rpc::Writer w;
  w.PutString(from);
  w.PutString(to);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kRename, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status RemoteOpenClient::RmDir(const std::string& path) {
  rpc::Writer w;
  w.PutString(path);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kRmDir, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status RemoteOpenClient::Truncate(uint64_t handle, uint64_t size) {
  rpc::Writer w;
  w.PutU64(handle);
  w.PutU64(size);
  ASSIGN_OR_RETURN(Bytes reply, Call(Proc::kTruncate, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Result<Bytes> RemoteOpenClient::ReadWholeFile(const std::string& path) {
  ASSIGN_OR_RETURN(RemoteStat st, Stat(path));
  ASSIGN_OR_RETURN(uint64_t handle, Open(path, /*create=*/false));
  auto data = Read(handle, 0, st.size);
  // A failed close leaks the server-side handle; surface it like
  // WriteWholeFile does rather than handing back data as if all went well.
  const Status c = Close(handle);
  if (data.ok() && c != Status::kOk) return c;
  return data;
}

Status RemoteOpenClient::WriteWholeFile(const std::string& path, const Bytes& data) {
  ASSIGN_OR_RETURN(uint64_t handle, Open(path, /*create=*/true));
  Status s = Write(handle, 0, data);
  Status c = Close(handle);
  return s != Status::kOk ? s : c;
}

}  // namespace itc::baseline
