// Remote-open baseline: a Locus/Newcastle-Connection-style file service
// (Section 6.3).
//
// "In systems such as Locus and the Newcastle Connection, the inter-machine
//  interface is very similar to the application program interface.
//  Operations on remote files are forwarded to the appropriate storage site,
//  where state information on these files is maintained."
//
// Here every open, per-page read, per-page write, and close is an RPC to the
// storage site; nothing is cached at the workstation. This is the comparator
// for the whole-file-transfer-vs-page-access experiment (A2): it wins only
// when a large file is touched sparsely, and loses everywhere the paper says
// whole-file caching wins (per-call protocol overhead, server contact on
// every read/write).

#ifndef SRC_BASELINE_REMOTE_OPEN_H_
#define SRC_BASELINE_REMOTE_OPEN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/rpc/rpc.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/unixfs/file_system.h"

namespace itc::baseline {

inline constexpr uint64_t kPageSize = 4096;

enum class Proc : uint32_t {
  kOpen = 1,     // path, create -> handle, size
  kClose = 2,    // handle
  kRead = 3,     // handle, offset, length(<=page) -> data
  kWrite = 4,    // handle, offset, data(<=page)
  kStat = 5,     // path -> size, mtime, type
  kMkDir = 6,    // path
  kUnlink = 7,   // path
  kReadDir = 8,  // path -> names
  kRename = 9,   // from, to (same server — this service has one volume)
  kRmDir = 10,   // path
  kTruncate = 11,  // handle, size
};

class RemoteOpenServer : public rpc::Service {
 public:
  RemoteOpenServer(NodeId node, net::Network* network, const sim::CostModel& cost,
                   rpc::RpcConfig rpc_config, rpc::ServerEndpoint::KeyLookup key_lookup,
                   uint64_t nonce_seed);

  rpc::ServerEndpoint& endpoint() { return endpoint_; }
  // Direct access for pre-population (zero-cost, like Campus::PopulateDirect).
  unixfs::FileSystem& storage() { return storage_; }

  uint64_t open_handles() const { return handles_.size(); }

  [[nodiscard]] Result<Bytes> Dispatch(rpc::CallContext& ctx, uint32_t proc, const Bytes& request) override;

 private:
  sim::CostModel cost_;
  rpc::ServerEndpoint endpoint_;
  unixfs::FileSystem storage_;
  std::map<uint64_t, unixfs::InodeNum> handles_;
  uint64_t next_handle_ = 1;
};

// Client side: forwards every operation; no caching whatsoever.
class RemoteOpenClient {
 public:
  RemoteOpenClient(NodeId node, sim::Clock* clock, RemoteOpenServer* server,
                   net::Network* network, const sim::CostModel& cost);

  // Authenticated connection, same handshake as itcfs proper.
  [[nodiscard]] Status Connect(UserId user, const crypto::Key& user_key, uint64_t seed);

  [[nodiscard]] Result<uint64_t> Open(const std::string& path, bool create);
  [[nodiscard]] Status Close(uint64_t handle);
  [[nodiscard]] Result<Bytes> Read(uint64_t handle, uint64_t offset, uint64_t length);
  [[nodiscard]] Status Write(uint64_t handle, uint64_t offset, const Bytes& data);

  struct RemoteStat {
    uint64_t size = 0;
    SimTime mtime = 0;
    bool is_directory = false;
  };
  [[nodiscard]] Result<RemoteStat> Stat(const std::string& path);
  [[nodiscard]] Status MkDir(const std::string& path);
  [[nodiscard]] Status Unlink(const std::string& path);
  [[nodiscard]] Result<std::vector<std::string>> ReadDir(const std::string& path);
  [[nodiscard]] Status Rename(const std::string& from, const std::string& to);
  [[nodiscard]] Status RmDir(const std::string& path);
  [[nodiscard]] Status Truncate(uint64_t handle, uint64_t size);

  // Whole-file conveniences built from page-at-a-time RPCs.
  [[nodiscard]] Result<Bytes> ReadWholeFile(const std::string& path);
  [[nodiscard]] Status WriteWholeFile(const std::string& path, const Bytes& data);

 private:
  [[nodiscard]] Result<Bytes> Call(Proc proc, const Bytes& request);

  NodeId node_;
  sim::Clock* clock_;
  RemoteOpenServer* server_;
  net::Network* network_;
  sim::CostModel cost_;
  std::unique_ptr<rpc::ClientConnection> conn_;
};

}  // namespace itc::baseline

#endif  // SRC_BASELINE_REMOTE_OPEN_H_
