#include "src/net/network.h"

#include "src/common/logging.h"
#include "src/sim/kernel.h"

namespace itc::net {

Network::Network(const Topology& topology, const sim::CostModel& cost)
    : topology_(topology), cost_(cost) {
  segments_.reserve(topology_.cluster_count());
  for (uint32_t c = 0; c < topology_.cluster_count(); ++c) {
    segments_.push_back(std::make_unique<sim::Resource>("lan.cluster" + std::to_string(c)));
  }
  backbone_ = std::make_unique<sim::Resource>("lan.backbone");
}

SimTime Network::Transfer(NodeId from, NodeId to, uint64_t bytes, SimTime depart) {
  ITC_CHECK(topology_.IsValidNode(from) && topology_.IsValidNode(to));
  stats_.messages += 1;
  stats_.bytes += bytes;

  if (from == to) return depart;  // loopback: no network cost

  const SimTime tx = cost_.TransmissionTime(bytes);
  const Topology::Route route = topology_.RouteBetween(from, to);

  SimTime t = depart;
  if (!route.cross_cluster) {
    t = sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
    return t;
  }

  stats_.cross_cluster_messages += 1;
  stats_.cross_cluster_bytes += bytes;
  t = sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
  t += cost_.bridge_hop_latency;
  t = sim::Charge(*backbone_, t, tx);
  t += cost_.bridge_hop_latency;
  t = sim::Charge(*segments_[topology_.ClusterOf(to)], t, tx);
  return t;
}

void Network::ResetStats() {
  stats_ = NetworkStats{};
  for (auto& s : segments_) s->Reset();
  backbone_->Reset();
}

}  // namespace itc::net
