#include "src/net/network.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/kernel.h"
#include "src/sim/kernel_group.h"

namespace itc::net {

Network::Network(const Topology& topology, const sim::CostModel& cost)
    : topology_(topology), cost_(cost) {
  segments_.reserve(topology_.cluster_count());
  for (uint32_t c = 0; c < topology_.cluster_count(); ++c) {
    segments_.push_back(std::make_unique<sim::Resource>("lan.cluster" + std::to_string(c)));
  }
  backbone_ = std::make_unique<sim::Resource>("lan.backbone");
  stats_by_cluster_.resize(topology_.cluster_count());
}

void Network::AddPartition(Partition partition) {
  ITC_CHECK(sim::Kernel::Current() == nullptr);  // orchestration is quiescent-only
  ITC_CHECK(partition.from < partition.until);
  for (NodeId n : partition.nodes) ITC_CHECK(topology_.IsValidNode(n));
  partitions_.push_back(std::move(partition));
}

namespace {
bool Contains(const std::vector<NodeId>& nodes, NodeId n) {
  for (NodeId m : nodes) {
    if (m == n) return true;
  }
  return false;
}
}  // namespace

bool Network::Reachable(NodeId a, NodeId b, SimTime at) const {
  if (a == b) return true;
  for (const Partition& p : partitions_) {
    if (at < p.from || at >= p.until) continue;
    if (Contains(p.nodes, a) != Contains(p.nodes, b)) return false;
  }
  return true;
}

SimTime Network::HealedBy(NodeId a, NodeId b, SimTime at) const {
  SimTime healed = at;
  if (a == b) return healed;
  for (const Partition& p : partitions_) {
    if (at < p.from || at >= p.until) continue;
    if (Contains(p.nodes, a) != Contains(p.nodes, b)) healed = std::max(healed, p.until);
  }
  return healed;
}

SimTime Network::Transfer(NodeId from, NodeId to, uint64_t bytes, SimTime depart) {
  ITC_CHECK(topology_.IsValidNode(from) && topology_.IsValidNode(to));
  ITC_CHECK(Reachable(from, to, depart));
  NetworkStats& acct = BucketFor(from);
  acct.messages += 1;
  acct.bytes += bytes;

  if (from == to) return depart;  // loopback: no network cost

  const SimTime tx = cost_.TransmissionTime(bytes);
  const Topology::Route route = topology_.RouteBetween(from, to);

  SimTime t = depart;
  if (!route.cross_cluster) {
    t = sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
    return t;
  }

  acct.cross_cluster_messages += 1;
  acct.cross_cluster_bytes += bytes;
  t = sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
  t += cost_.bridge_hop_latency;
  sim::KernelGroup* group = sim::KernelGroup::Current();
  if (group == nullptr) {
    t = sim::Charge(*backbone_, t, tx);
    t += cost_.bridge_hop_latency;
    t = sim::Charge(*segments_[topology_.ClusterOf(to)], t, tx);
    return t;
  }
  // Sharded: the backbone is modelled uncontended (fixed transmission
  // latency — identical to the solo kernel whenever the backbone has no
  // queueing), and everything from the second bridge on happens on the
  // destination cluster's shard. bridge + tx + bridge >= the group's
  // lookahead, which is what makes the migration timestamp legal.
  t += tx;
  t += cost_.bridge_hop_latency;
  group->MigrateToDomain(topology_.ClusterOf(to), t);
  t = sim::Charge(*segments_[topology_.ClusterOf(to)], t, tx);
  return t;
}

void Network::Send(NodeId from, NodeId to, uint64_t bytes, SimTime depart,
                   std::function<void()> deliver) {
  ITC_CHECK(topology_.IsValidNode(from) && topology_.IsValidNode(to));
  ITC_CHECK(Reachable(from, to, depart));
  NetworkStats& acct = BucketFor(from);
  acct.messages += 1;
  acct.bytes += bytes;

  if (from == to) {
    deliver();
    return;
  }

  const SimTime tx = cost_.TransmissionTime(bytes);
  const Topology::Route route = topology_.RouteBetween(from, to);

  SimTime t = depart;
  if (!route.cross_cluster) {
    sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
    deliver();
    return;
  }

  acct.cross_cluster_messages += 1;
  acct.cross_cluster_bytes += bytes;
  t = sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
  t += cost_.bridge_hop_latency;
  sim::KernelGroup* group = sim::KernelGroup::Current();
  if (group == nullptr) {
    t = sim::Charge(*backbone_, t, tx);
    t += cost_.bridge_hop_latency;
    sim::Charge(*segments_[topology_.ClusterOf(to)], t, tx);
    deliver();
    return;
  }
  // Sharded: hand a one-shot delivery activity to the destination shard at
  // the second bridge's exit; it pays the destination segment there and
  // applies the delivery at the true arrival time. The sender continues
  // immediately — fire-and-forget.
  t += tx;
  t += cost_.bridge_hop_latency;
  sim::Resource* dest_segment = segments_[topology_.ClusterOf(to)].get();
  group->Post(topology_.ClusterOf(to), t, "net.deliver",
              [dest_segment, tx, deliver = std::move(deliver)] {
                sim::Kernel* kernel = sim::Kernel::Current();
                const SimTime arrive = sim::Charge(*dest_segment, kernel->now(), tx);
                sim::AlignTo(arrive);
                deliver();
              });
}

NetworkStats Network::stats() const {
  NetworkStats total;
  for (const StatsBucket& b : stats_by_cluster_) {
    total.messages += b.stats.messages;
    total.bytes += b.stats.bytes;
    total.cross_cluster_messages += b.stats.cross_cluster_messages;
    total.cross_cluster_bytes += b.stats.cross_cluster_bytes;
    total.partition_drops += b.stats.partition_drops;
  }
  return total;
}

void Network::ResetStats() {
  for (StatsBucket& b : stats_by_cluster_) b.stats = NetworkStats{};
  for (auto& s : segments_) s->Reset();
  backbone_->Reset();
}

}  // namespace itc::net
