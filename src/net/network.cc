#include "src/net/network.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/sim/kernel.h"

namespace itc::net {

Network::Network(const Topology& topology, const sim::CostModel& cost)
    : topology_(topology), cost_(cost) {
  segments_.reserve(topology_.cluster_count());
  for (uint32_t c = 0; c < topology_.cluster_count(); ++c) {
    segments_.push_back(std::make_unique<sim::Resource>("lan.cluster" + std::to_string(c)));
  }
  backbone_ = std::make_unique<sim::Resource>("lan.backbone");
}

void Network::AddPartition(Partition partition) {
  ITC_CHECK(partition.from < partition.until);
  for (NodeId n : partition.nodes) ITC_CHECK(topology_.IsValidNode(n));
  partitions_.push_back(std::move(partition));
}

namespace {
bool Contains(const std::vector<NodeId>& nodes, NodeId n) {
  for (NodeId m : nodes) {
    if (m == n) return true;
  }
  return false;
}
}  // namespace

bool Network::Reachable(NodeId a, NodeId b, SimTime at) const {
  if (a == b) return true;
  for (const Partition& p : partitions_) {
    if (at < p.from || at >= p.until) continue;
    if (Contains(p.nodes, a) != Contains(p.nodes, b)) return false;
  }
  return true;
}

SimTime Network::HealedBy(NodeId a, NodeId b, SimTime at) const {
  SimTime healed = at;
  if (a == b) return healed;
  for (const Partition& p : partitions_) {
    if (at < p.from || at >= p.until) continue;
    if (Contains(p.nodes, a) != Contains(p.nodes, b)) healed = std::max(healed, p.until);
  }
  return healed;
}

SimTime Network::Transfer(NodeId from, NodeId to, uint64_t bytes, SimTime depart) {
  ITC_CHECK(topology_.IsValidNode(from) && topology_.IsValidNode(to));
  ITC_CHECK(Reachable(from, to, depart));
  stats_.messages += 1;
  stats_.bytes += bytes;

  if (from == to) return depart;  // loopback: no network cost

  const SimTime tx = cost_.TransmissionTime(bytes);
  const Topology::Route route = topology_.RouteBetween(from, to);

  SimTime t = depart;
  if (!route.cross_cluster) {
    t = sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
    return t;
  }

  stats_.cross_cluster_messages += 1;
  stats_.cross_cluster_bytes += bytes;
  t = sim::Charge(*segments_[topology_.ClusterOf(from)], t, tx);
  t += cost_.bridge_hop_latency;
  t = sim::Charge(*backbone_, t, tx);
  t += cost_.bridge_hop_latency;
  t = sim::Charge(*segments_[topology_.ClusterOf(to)], t, tx);
  return t;
}

void Network::ResetStats() {
  stats_ = NetworkStats{};
  for (auto& s : segments_) s->Reset();
  backbone_->Reset();
}

}  // namespace itc::net
