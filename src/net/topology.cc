#include "src/net/topology.h"

#include <sstream>

namespace itc::net {

std::string Topology::Describe() const {
  std::ostringstream os;
  os << cluster_count() << " cluster(s) on a backbone; per cluster: "
     << config_.servers_per_cluster << " server(s), " << config_.workstations_per_cluster
     << " workstation(s); " << node_count() << " nodes total";
  return os.str();
}

}  // namespace itc::net
