// Simulated campus network: timing, contention, and traffic accounting.
//
// Transfer(from, to, bytes, depart) models one message: it seizes each LAN
// segment along the route for the message's transmission time (cluster
// segments and the backbone are FCFS resources, so heavy traffic queues),
// adds bridge store-and-forward latency for cross-cluster routes, and
// returns the arrival time. All itcfs RPC traffic flows through here, which
// is what makes the locality experiments (cluster decomposition, read-only
// replication) measurable.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/net/topology.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"

namespace itc::net {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t cross_cluster_messages = 0;
  uint64_t cross_cluster_bytes = 0;
};

class Network {
 public:
  Network(const Topology& topology, const sim::CostModel& cost);

  // Delivers `bytes` from node `from` to node `to`, departing at `depart`.
  // Returns the arrival time at `to`.
  SimTime Transfer(NodeId from, NodeId to, uint64_t bytes, SimTime depart);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats();

  sim::Resource& cluster_segment(ClusterId c) { return *segments_[c]; }
  sim::Resource& backbone() { return *backbone_; }
  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
  sim::CostModel cost_;
  std::vector<std::unique_ptr<sim::Resource>> segments_;
  std::unique_ptr<sim::Resource> backbone_;
  NetworkStats stats_;
};

}  // namespace itc::net

#endif  // SRC_NET_NETWORK_H_
