// Simulated campus network: timing, contention, and traffic accounting.
//
// Transfer(from, to, bytes, depart) models one message: it seizes each LAN
// segment along the route for the message's transmission time (cluster
// segments and the backbone are FCFS resources, so heavy traffic queues),
// adds bridge store-and-forward latency for cross-cluster routes, and
// returns the arrival time. All itcfs RPC traffic flows through here, which
// is what makes the locality experiments (cluster decomposition, read-only
// replication) measurable.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "src/common/ownership.h"
#include "src/common/types.h"
#include "src/net/topology.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"

namespace itc::net {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t cross_cluster_messages = 0;
  uint64_t cross_cluster_bytes = 0;
  uint64_t partition_drops = 0;
};

// A link partition: the listed nodes are cut off from the rest of the campus
// (and only the rest — nodes inside the set still reach each other) for the
// half-open interval [from, until). Healing is just the passage of virtual
// time, so partition behaviour is a pure function of the clock and stays
// deterministic under the event kernel.
struct Partition {
  std::vector<NodeId> nodes;
  SimTime from = 0;
  SimTime until = 0;
};

class Network {
 public:
  Network(const Topology& topology, const sim::CostModel& cost);

  // Delivers `bytes` from node `from` to node `to`, departing at `depart`.
  // Returns the arrival time at `to`. Transfer itself is pure timing — the
  // RPC layer consults Reachable() and models the loss; a Transfer across an
  // active partition is a programming error.
  ITC_KERNEL_ENTRY SimTime Transfer(NodeId from, NodeId to, uint64_t bytes, SimTime depart);

  // Schedules a partition. Overlapping partitions compose: a message is lost
  // when any active partition separates its endpoints.
  ITC_KERNEL_QUIESCENT void AddPartition(Partition partition);
  // True when a message departing at `at` can travel between `a` and `b`:
  // no active partition contains exactly one of the two endpoints. Loopback
  // is always reachable.
  ITC_KERNEL_ENTRY bool Reachable(NodeId a, NodeId b, SimTime at) const;
  // Bookkeeping hook for the RPC layer: counts a message the partition ate.
  ITC_KERNEL_ENTRY void NotePartitionDrop() { stats_.partition_drops += 1; }
  // Earliest time >= `at` at which every partition separating `a` and `b`
  // has healed (== `at` when they are already reachable).
  ITC_KERNEL_ENTRY SimTime HealedBy(NodeId a, NodeId b, SimTime at) const;

  ITC_KERNEL_QUIESCENT const NetworkStats& stats() const { return stats_; }
  ITC_KERNEL_QUIESCENT void ResetStats();

  sim::Resource& cluster_segment(ClusterId c) { return *segments_[c]; }
  sim::Resource& backbone() { return *backbone_; }
  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
  sim::CostModel cost_;
  std::vector<std::unique_ptr<sim::Resource>> segments_;
  std::unique_ptr<sim::Resource> backbone_;
  ITC_OWNED_BY_KERNEL std::vector<Partition> partitions_;
  ITC_OWNED_BY_KERNEL NetworkStats stats_;
};

}  // namespace itc::net

#endif  // SRC_NET_NETWORK_H_
