// Simulated campus network: timing, contention, and traffic accounting.
//
// Transfer(from, to, bytes, depart) models one message: it seizes each LAN
// segment along the route for the message's transmission time (cluster
// segments and the backbone are FCFS resources, so heavy traffic queues),
// adds bridge store-and-forward latency for cross-cluster routes, and
// returns the arrival time. All itcfs RPC traffic flows through here, which
// is what makes the locality experiments (cluster decomposition, read-only
// replication) measurable.
//
// Sharded operation: when the calling activity runs inside a
// sim::KernelGroup (SchedulerMode::kSharded), cluster segments are
// shard-local resources and a cross-cluster Transfer *migrates the calling
// activity* to the destination cluster's shard: it pays the source segment
// locally, crosses the backbone at fixed (uncontended) transmission
// latency between the two bridge hops — together at least
// CostModel::BackboneLookahead(), the group's lookahead contract — and
// charges the destination segment on the far shard. One-way messages
// (Send) become one-shot delivery activities posted to the destination
// shard instead, since fire-and-forget traffic has no reply to migrate
// home on. Traffic accounting is kept in per-cluster buckets so shards
// never write a shared counter.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/ownership.h"
#include "src/common/types.h"
#include "src/net/topology.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"

namespace itc::net {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t cross_cluster_messages = 0;
  uint64_t cross_cluster_bytes = 0;
  uint64_t partition_drops = 0;
};

// A link partition: the listed nodes are cut off from the rest of the campus
// (and only the rest — nodes inside the set still reach each other) for the
// half-open interval [from, until). Healing is just the passage of virtual
// time, so partition behaviour is a pure function of the clock and stays
// deterministic under the event kernel.
struct Partition {
  std::vector<NodeId> nodes;
  SimTime from = 0;
  SimTime until = 0;
};

class Network {
 public:
  Network(const Topology& topology, const sim::CostModel& cost);

  // Delivers `bytes` from node `from` to node `to`, departing at `depart`.
  // Returns the arrival time at `to`. Transfer itself is pure timing — the
  // RPC layer consults Reachable() and models the loss; a Transfer across an
  // active partition is a programming error. Under a kernel group a
  // cross-cluster Transfer leaves the calling activity on the destination
  // cluster's shard (the reply Transfer carries it home).
  ITC_KERNEL_ENTRY SimTime Transfer(NodeId from, NodeId to, uint64_t bytes, SimTime depart);

  // One-way message: pays the same network path as Transfer and invokes
  // `deliver` at the arrival time at `to`. Solo kernel (and same-cluster
  // sharded) delivery runs inline on the calling activity, exactly like the
  // Transfer-then-apply sequence it replaces; a cross-cluster sharded
  // delivery runs as a one-shot activity on the destination shard at the
  // arrival time. The calling activity never suspends past the source
  // segment + bridge in sharded mode — fire-and-forget, as the callback
  // and lease break paths require.
  ITC_KERNEL_ENTRY void Send(NodeId from, NodeId to, uint64_t bytes, SimTime depart,
                             std::function<void()> deliver);

  // Schedules a partition. Overlapping partitions compose: a message is lost
  // when any active partition separates its endpoints.
  ITC_KERNEL_QUIESCENT void AddPartition(Partition partition);
  // True when a message departing at `at` can travel between `a` and `b`:
  // no active partition contains exactly one of the two endpoints. Loopback
  // is always reachable.
  ITC_KERNEL_ENTRY bool Reachable(NodeId a, NodeId b, SimTime at) const;
  // Bookkeeping hook for the RPC layer: counts a message the partition ate.
  // `at` is the node where the loss is observed (the sender of the leg that
  // would have departed), which decides the accounting bucket — and, under
  // a kernel group, names the shard the caller is already on.
  ITC_KERNEL_ENTRY void NotePartitionDrop(NodeId at) {
    BucketFor(at).partition_drops += 1;
  }
  // Earliest time >= `at` at which every partition separating `a` and `b`
  // has healed (== `at` when they are already reachable).
  ITC_KERNEL_ENTRY SimTime HealedBy(NodeId a, NodeId b, SimTime at) const;

  // Campus-wide traffic totals, aggregated across the per-cluster buckets.
  ITC_KERNEL_QUIESCENT NetworkStats stats() const;
  ITC_KERNEL_QUIESCENT void ResetStats();

  sim::Resource& cluster_segment(ClusterId c) { return *segments_[c]; }
  sim::Resource& backbone() { return *backbone_; }
  const Topology& topology() const { return topology_; }

 private:
  // Cache-line-padded per-cluster accounting: every mutation happens on the
  // shard owning the sending node's cluster, so shards never contend.
  struct alignas(64) StatsBucket {
    NetworkStats stats;
  };

  NetworkStats& BucketFor(NodeId n) { return stats_by_cluster_[topology_.ClusterOf(n)].stats; }

  Topology topology_;
  sim::CostModel cost_;
  std::vector<std::unique_ptr<sim::Resource>> segments_;
  std::unique_ptr<sim::Resource> backbone_;
  ITC_OWNED_BY_KERNEL std::vector<Partition> partitions_;
  ITC_OWNED_BY_SHARD std::vector<StatsBucket> stats_by_cluster_;
};

}  // namespace itc::net

#endif  // SRC_NET_NETWORK_H_
