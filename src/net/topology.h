// Campus network topology (Figure 2-2 of the paper).
//
// Vice is composed of semi-autonomous clusters connected by a backbone LAN.
// Each cluster has a cluster server and 50-100 Virtue workstations on a
// shared cluster Ethernet; bridges connect cluster Ethernets to the
// backbone and act as routers. The detailed topology is invisible to
// workstations — Vice is logically one network — but it determines cost:
// cross-cluster traffic crosses two bridges and three LAN segments.

#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>

#include "src/common/types.h"

namespace itc::net {

struct TopologyConfig {
  uint32_t clusters = 1;
  uint32_t servers_per_cluster = 1;
  uint32_t workstations_per_cluster = 20;
};

// Deterministic node-id layout: nodes of cluster c occupy a contiguous block;
// within a cluster, servers come first, then workstations.
class Topology {
 public:
  explicit Topology(TopologyConfig config) : config_(config) {}

  uint32_t cluster_count() const { return config_.clusters; }
  uint32_t node_count() const { return config_.clusters * NodesPerCluster(); }
  uint32_t server_count() const { return config_.clusters * config_.servers_per_cluster; }
  uint32_t workstation_count() const {
    return config_.clusters * config_.workstations_per_cluster;
  }

  NodeId ServerNode(ClusterId cluster, uint32_t index) const {
    return cluster * NodesPerCluster() + index;
  }
  NodeId WorkstationNode(ClusterId cluster, uint32_t index) const {
    return cluster * NodesPerCluster() + config_.servers_per_cluster + index;
  }

  ClusterId ClusterOf(NodeId node) const { return node / NodesPerCluster(); }
  bool IsServer(NodeId node) const {
    return node % NodesPerCluster() < config_.servers_per_cluster;
  }
  bool IsValidNode(NodeId node) const { return node < node_count(); }

  // Enumerates all servers / workstations in id order.
  NodeId NthServer(uint32_t n) const {
    return ServerNode(n / config_.servers_per_cluster, n % config_.servers_per_cluster);
  }
  NodeId NthWorkstation(uint32_t n) const {
    return WorkstationNode(n / config_.workstations_per_cluster,
                           n % config_.workstations_per_cluster);
  }

  // Cluster arithmetic for *indices* (server/workstation enumeration order),
  // the counterpart of ClusterOf for node ids — callers must not re-derive
  // these from the config's per-cluster counts.
  ClusterId ClusterOfNthServer(uint32_t n) const { return n / config_.servers_per_cluster; }
  ClusterId ClusterOfNthWorkstation(uint32_t n) const {
    return n / config_.workstations_per_cluster;
  }
  // Index (NthServer order) of the first server in `cluster` — e.g. the
  // home server a workstation in that cluster binds to.
  uint32_t FirstServerIndexIn(ClusterId cluster) const {
    return cluster * config_.servers_per_cluster;
  }

  struct Route {
    int segments = 0;     // LAN segments traversed (cluster LANs + backbone)
    int bridge_hops = 0;  // bridges crossed
    bool cross_cluster = false;
  };

  // Same cluster: one shared segment, no bridges. Cross-cluster: source
  // cluster LAN -> bridge -> backbone -> bridge -> destination cluster LAN.
  Route RouteBetween(NodeId a, NodeId b) const {
    if (ClusterOf(a) == ClusterOf(b)) return Route{1, 0, false};
    return Route{3, 2, true};
  }

  // Human-readable topology summary (used by bench headers).
  std::string Describe() const;

 private:
  uint32_t NodesPerCluster() const {
    return config_.servers_per_cluster + config_.workstations_per_cluster;
  }

  TopologyConfig config_;
};

}  // namespace itc::net

#endif  // SRC_NET_TOPOLOGY_H_
