#include "src/sim/resource.h"

#include <algorithm>

#include "src/common/logging.h"

namespace itc::sim {

SimTime Resource::Serve(SimTime arrival, SimTime demand) {
  ITC_CHECK(demand >= 0);
  const SimTime start = std::max(arrival, ready_);
  const SimTime done = start + demand;
  ready_ = done;
  busy_ += demand;
  ++jobs_;
  if (window_ > 0 && demand > 0) AccumulateWindowed(start, done);
  return done;
}

double Resource::Utilization(SimTime elapsed) const {
  if (elapsed <= 0) return 0.0;
  double u = static_cast<double>(busy_) / static_cast<double>(elapsed);
  return std::min(1.0, std::max(0.0, u));
}

void Resource::EnableWindowTracking(SimTime window) {
  ITC_CHECK(window > 0);
  // Windows are anchored at time 0; demands admitted before tracking was
  // enabled would be silently missing from the series.
  ITC_CHECK(jobs_ == 0);
  window_ = window;
}

void Resource::AccumulateWindowed(SimTime start, SimTime end) {
  size_t first = static_cast<size_t>(start / window_);
  size_t last = static_cast<size_t>((end - 1) / window_);
  if (window_busy_.size() <= last) window_busy_.resize(last + 1, 0);
  for (size_t w = first; w <= last; ++w) {
    const SimTime w_start = static_cast<SimTime>(w) * window_;
    const SimTime w_end = w_start + window_;
    window_busy_[w] += std::min(end, w_end) - std::max(start, w_start);
  }
}

std::vector<double> Resource::WindowUtilization() const {
  std::vector<double> out;
  out.reserve(window_busy_.size());
  for (SimTime b : window_busy_) {
    out.push_back(static_cast<double>(b) / static_cast<double>(window_));
  }
  return out;
}

void Resource::Reset() {
  ready_ = 0;
  busy_ = 0;
  jobs_ = 0;
  window_ = 0;
  window_busy_.clear();
}

}  // namespace itc::sim
