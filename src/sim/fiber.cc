#include "src/sim/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>

#include "src/common/logging.h"

// AddressSanitizer's fiber-switch interface. GCC defines __SANITIZE_ADDRESS__,
// Clang reports it through __has_feature; either way the annotations are
// required for ASan to follow execution across stack switches, and compile to
// nothing in plain builds.
#if defined(__SANITIZE_ADDRESS__)
#define ITC_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ITC_FIBER_ASAN 1
#endif
#endif
#ifndef ITC_FIBER_ASAN
#define ITC_FIBER_ASAN 0
#endif

#if ITC_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer's fiber interface, same detection dance: GCC defines
// __SANITIZE_THREAD__, Clang reports it through __has_feature. TSan keeps
// per-"thread" shadow state (vector clocks, lock sets); without these
// annotations a swapcontext teleports one OS thread between stacks and TSan
// misattributes every access after the switch.
#if defined(__SANITIZE_THREAD__)
#define ITC_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ITC_FIBER_TSAN 1
#endif
#endif
#ifndef ITC_FIBER_TSAN
#define ITC_FIBER_TSAN 0
#endif

#if ITC_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace itc::sim {

namespace {

// `fake` saves the outgoing context's ASan fake-stack handle (nullptr when
// the outgoing context is exiting for good, which tells ASan to free it);
// bottom/size describe the stack being switched *to*.
inline void AsanStartSwitch(void** fake, const void* bottom, size_t size) {
#if ITC_FIBER_ASAN
  __sanitizer_start_switch_fiber(fake, bottom, size);
#else
  (void)fake;
  (void)bottom;
  (void)size;
#endif
}

// Called first thing after control arrives on a stack: `fake` is the handle
// that stack saved when it last switched away (nullptr on first entry), and
// bottom/size receive the bounds of the stack control came *from*.
inline void AsanFinishSwitch(void* fake, const void** bottom_old, size_t* size_old) {
#if ITC_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fake, bottom_old, size_old);
#else
  (void)fake;
  (void)bottom_old;
  (void)size_old;
#endif
}

// A fresh TSan context for a fiber about to run. nullptr (and no-ops below)
// outside TSan builds.
inline void* TsanCreateFiber() {
#if ITC_FIBER_TSAN
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void TsanDestroyFiber(void* fiber) {
#if ITC_FIBER_TSAN
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

inline void* TsanCurrentFiber() {
#if ITC_FIBER_TSAN
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

// Called immediately before the swapcontext/setcontext that moves control to
// the context `fiber` shadows.
inline void TsanSwitchToFiber(void* fiber) {
#if ITC_FIBER_TSAN
  __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

size_t ConfiguredStackBytes() {
  size_t bytes = 256 * 1024;
  if (const char* env = std::getenv("ITCFS_FIBER_STACK_KB")) {
    const long kb = std::strtol(env, nullptr, 10);
    if (kb >= 64) bytes = static_cast<size_t>(kb) * 1024;
  }
  return bytes;
}

bool ConfiguredGuardPage() {
  if (const char* env = std::getenv("ITCFS_FIBER_GUARD")) return env[0] != '0';
  return true;
}

}  // namespace

FiberStackPool& FiberStackPool::Instance() {
  static FiberStackPool pool;
  return pool;
}

FiberStackPool::FiberStackPool()
    : stack_bytes_(ConfiguredStackBytes()), guard_page_(ConfiguredGuardPage()) {}

FiberStack* FiberStackPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_ != nullptr) {
    FiberStack* s = free_;
    free_ = s->next;
    s->next = nullptr;
    --free_count_;
    return s;
  }
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t guard = guard_page_ ? page : 0;
  const size_t map_size = stack_bytes_ + guard;
  void* m = mmap(nullptr, map_size, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  ITC_CHECK(m != MAP_FAILED);
  if (guard != 0) ITC_CHECK(mprotect(m, guard, PROT_NONE) == 0);
  auto* s = new FiberStack;
  s->mapping = m;
  s->mapping_size = map_size;
  s->limit = static_cast<unsigned char*>(m) + guard;
  s->size = stack_bytes_;
  ++created_;
  return s;
}

void FiberStackPool::Release(FiberStack* stack) {
  ITC_CHECK(stack != nullptr && stack->next == nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  stack->next = free_;
  free_ = stack;
  ++free_count_;
}

size_t FiberStackPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t FiberStackPool::free_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_count_;
}

Fiber::~Fiber() {
  // A live fiber still has frames on its stack; destroying it would hand
  // those frames to the next borrower. The kernel runs every activity to
  // completion before tearing down.
  ITC_CHECK(stack_ == nullptr || exited_ || !started_);
  ReleaseStack();
}

void Fiber::Start(Entry entry, void* arg) {
  ITC_CHECK(!started_ && stack_ == nullptr);
  stack_ = FiberStackPool::Instance().Acquire();
  tsan_fiber_ = TsanCreateFiber();
  entry_ = entry;
  arg_ = arg;
  started_ = true;
  ITC_CHECK(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_->limit;
  ctx_.uc_stack.ss_size = stack_->size;
  ctx_.uc_link = nullptr;  // the trampoline never returns; Exit() leaves explicitly
  // makecontext only passes ints, so the Fiber* travels as two 32-bit halves
  // (the classic libco/boost idiom; exact round-trip on every LP64 target).
  const uintptr_t self = reinterpret_cast<uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 2,
              static_cast<unsigned>(self >> 32), static_cast<unsigned>(self & 0xffffffffu));
}

void Fiber::Trampoline(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>((static_cast<uintptr_t>(hi) << 32) |
                                     static_cast<uintptr_t>(lo));
  // First time on this stack: no saved fake stack yet; learn the resumer's
  // bounds so Suspend/Exit can annotate switches back.
  AsanFinishSwitch(nullptr, &f->caller_stack_bottom_, &f->caller_stack_size_);
  f->entry_(f->arg_);
  f->Exit();
}

void Fiber::Resume() {
  ITC_CHECK(started_ && !exited_ && stack_ != nullptr);
  void* caller_fake = nullptr;
  AsanStartSwitch(&caller_fake, stack_->limit, stack_->size);
  tsan_caller_ = TsanCurrentFiber();
  TsanSwitchToFiber(tsan_fiber_);
  ITC_CHECK(swapcontext(&caller_, &ctx_) == 0);
  // The fiber suspended or exited; we are back on the caller's stack.
  AsanFinishSwitch(caller_fake, nullptr, nullptr);
}

void Fiber::Suspend() {
  AsanStartSwitch(&self_fake_stack_, caller_stack_bottom_, caller_stack_size_);
  TsanSwitchToFiber(tsan_caller_);
  ITC_CHECK(swapcontext(&ctx_, &caller_) == 0);
  // Resumed; refresh the resumer's bounds (a later Resume may come from a
  // different frame of the kernel loop).
  AsanFinishSwitch(self_fake_stack_, &caller_stack_bottom_, &caller_stack_size_);
}

void Fiber::Exit() {
  exited_ = true;
  // nullptr fake-stack handle: this context is gone for good, so ASan frees
  // its fake stack; the real stack goes back to the pool via ReleaseStack.
  AsanStartSwitch(nullptr, caller_stack_bottom_, caller_stack_size_);
  // The shadow context outlives this last switch; ReleaseStack (always on
  // the resumer's side) destroys it.
  TsanSwitchToFiber(tsan_caller_);
  setcontext(&caller_);
  __builtin_unreachable();
}

void Fiber::ReleaseStack() {
  if (stack_ == nullptr) return;
  ITC_CHECK(exited_ || !started_);
  TsanDestroyFiber(tsan_fiber_);
  tsan_fiber_ = nullptr;
  FiberStackPool::Instance().Release(stack_);
  stack_ = nullptr;
}

}  // namespace itc::sim
