// Conservative multi-client scheduler.
//
// Simulated clients interact only through FCFS resources (server CPU, disks,
// LAN segments). Among all unfinished client processes the scheduler always
// steps the one with the smallest virtual time, so demands arrive at every
// resource in (approximately) nondecreasing time order and FCFS service is
// faithful. Each Step() executes one client operation synchronously —
// including any RPCs, which advance the client's clock through the network
// and server resources.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <vector>

#include "src/common/types.h"

namespace itc::sim {

// One simulated actor (e.g. a workstation running a workload script).
class Process {
 public:
  virtual ~Process() = default;

  // Current virtual time of this actor.
  virtual SimTime now() const = 0;
  // True when the actor has no more work.
  virtual bool done() const = 0;
  // Executes the next operation, advancing now().
  virtual void Step() = 0;
};

class Scheduler {
 public:
  void Add(Process* p) { processes_.push_back(p); }

  // Runs until every process is done. Returns the max final virtual time.
  SimTime RunAll();

  // Runs until every process is done or has now() >= horizon.
  // Returns the latest virtual time reached (capped at horizon for
  // still-running processes).
  SimTime RunUntil(SimTime horizon);

 private:
  std::vector<Process*> processes_;
};

}  // namespace itc::sim

#endif  // SRC_SIM_SCHEDULER_H_
