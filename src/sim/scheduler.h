// Multi-client scheduler: a thin shim over the event kernel.
//
// Simulated clients interact only through FCFS resources (server CPU, disks,
// LAN segments). In the default event-driven mode each process runs as a
// sim::Kernel activity: before every Step() the activity waits until global
// virtual time reaches the process's clock, and inside a Step() every
// resource demand (sim::Charge) and stage boundary (sim::AlignTo) is a
// suspension point. Demands therefore reach every resource in global arrival
// order — a fetch can hold the LAN, queue at the server CPU behind another
// client's store, then wait on the disk, all interleaved exactly.
//
// The legacy conservative mode (step the minimum-virtual-time process, run
// each operation synchronously) is retained as the call-order baseline so
// bench_kernel_fidelity can quantify the ordering error the old model
// incurred. New code should not select it.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <vector>

#include "src/common/ownership.h"
#include "src/common/types.h"
#include "src/sim/kernel.h"

namespace itc::sim {

// One simulated actor (e.g. a workstation running a workload script).
class Process {
 public:
  virtual ~Process() = default;

  // Current virtual time of this actor.
  virtual SimTime now() const = 0;
  // True when the actor has no more work.
  virtual bool done() const = 0;
  // Executes the next operation, advancing now(). Under the event kernel
  // this runs inside an activity, so it may suspend at every Charge/AlignTo.
  virtual void Step() = 0;
};

enum class SchedulerMode {
  // Default: processes are kernel activities; resources see demands in
  // global arrival order.
  kEventDriven,
  // Call-order baseline: whole operations execute synchronously in
  // min-virtual-time order, so a process stepped later can present a
  // resource arrival earlier than work already admitted. Kept only for
  // measuring that error (bench_kernel_fidelity) and for regression tests.
  kConservative,
  // Sharded multi-kernel mode (src/sim/kernel_group.h): processes run as
  // activities of the kernel owning their domain's shard, one OS thread per
  // shard, synchronized conservatively at the backbone lookahead. Requires
  // every process to be Add()ed with its domain (cluster) id and a
  // lookahead from the network cost model. kEventDriven remains the
  // bit-identical single-kernel reference for intra-cluster activity.
  kSharded,
};

class Scheduler {
 public:
  void Add(Process* p) { Add(p, /*domain=*/0); }
  // Registers `p` on simulation domain (cluster) `domain`; the domain
  // decides shard placement under kSharded and is ignored otherwise.
  void Add(Process* p, uint32_t domain) {
    processes_.push_back(p);
    domains_.push_back(domain);
  }

  void set_mode(SchedulerMode mode) { mode_ = mode; }
  SchedulerMode mode() const { return mode_; }

  // Selects how the kernel parks and resumes activities (event-driven and
  // sharded modes). Affects wall-clock throughput, never simulated results.
  void set_backend(KernelBackend backend) { backend_ = backend; }
  KernelBackend backend() const { return backend_; }

  // kSharded tuning. shard_count 0 (default) means one shard per domain,
  // clamped by the ITCFS_SHARDS environment variable (DefaultShardCount).
  // The lookahead must be the minimum virtual-time cost of a cross-domain
  // message (sim::CostModel::BackboneLookahead() for the campus network);
  // shard placement and shard count can never change simulated results.
  void set_shard_count(uint32_t n) { shard_count_ = n; }
  void set_lookahead(SimTime lookahead) { lookahead_ = lookahead; }
  // Shards the most recent kSharded run actually used.
  uint32_t shards_used() const { return shards_used_; }
  // Per-shard traces of the most recent kSharded run (EnableTrace first).
  ITC_KERNEL_QUIESCENT const std::vector<std::vector<TraceEntry>>& shard_traces() const {
    return shard_traces_;
  }

  // Records the kernel's event trace during the next run (event-driven mode
  // only) into a ring of `capacity` entries; used by the determinism and
  // backend-equivalence tests.
  void EnableTrace(size_t capacity = Kernel::kDefaultTraceCapacity) {
    trace_enabled_ = true;
    trace_capacity_ = capacity;
  }
  ITC_KERNEL_QUIESCENT const std::vector<TraceEntry>& trace() const { return trace_; }

  // Events the kernel dispatched during the most recent run (event-driven
  // mode only); the throughput bench divides this by wall-clock time.
  ITC_KERNEL_QUIESCENT uint64_t last_events() const { return last_events_; }

  // Runs until every process is done. Returns the max final virtual time.
  ITC_KERNEL_ENTRY SimTime RunAll();

  // Runs until every process is done or has now() >= horizon.
  // Returns the latest virtual time reached (capped at horizon for
  // still-running processes).
  ITC_KERNEL_ENTRY SimTime RunUntil(SimTime horizon);

 private:
  SimTime RunEventDriven(SimTime horizon);
  SimTime RunConservative(SimTime horizon);
  SimTime RunSharded(SimTime horizon);

  std::vector<Process*> processes_;
  std::vector<uint32_t> domains_;  // parallel to processes_
  SchedulerMode mode_ = SchedulerMode::kEventDriven;
  KernelBackend backend_ = DefaultKernelBackend();
  uint32_t shard_count_ = 0;  // 0: one per domain, clamped by ITCFS_SHARDS
  SimTime lookahead_ = 0;     // required for kSharded
  uint32_t shards_used_ = 0;
  bool trace_enabled_ = false;
  size_t trace_capacity_ = Kernel::kDefaultTraceCapacity;
  ITC_OWNED_BY_KERNEL std::vector<TraceEntry> trace_;
  ITC_OWNED_BY_KERNEL std::vector<std::vector<TraceEntry>> shard_traces_;
  ITC_OWNED_BY_KERNEL uint64_t last_events_ = 0;
};

}  // namespace itc::sim

#endif  // SRC_SIM_SCHEDULER_H_
