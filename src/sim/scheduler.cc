#include "src/sim/scheduler.h"

#include <algorithm>
#include <limits>
#include <string>

#include "src/common/logging.h"
#include "src/sim/kernel_group.h"

namespace itc::sim {

namespace {
constexpr SimTime kForever = std::numeric_limits<SimTime>::max();
}

SimTime Scheduler::RunAll() { return RunUntil(kForever); }

SimTime Scheduler::RunUntil(SimTime horizon) {
  switch (mode_) {
    case SchedulerMode::kEventDriven:
      return RunEventDriven(horizon);
    case SchedulerMode::kSharded:
      return RunSharded(horizon);
    case SchedulerMode::kConservative:
      break;
  }
  return RunConservative(horizon);
}

SimTime Scheduler::RunSharded(SimTime horizon) {
  uint32_t domains = 1;
  for (uint32_t d : domains_) domains = std::max(domains, d + 1);
  const uint32_t shards =
      shard_count_ == 0 ? DefaultShardCount(domains)
                        : std::max(1u, std::min(shard_count_, domains));
  ITC_CHECK(lookahead_ > 0);  // set_lookahead(cost.BackboneLookahead()) first
  KernelGroup group(shards, backend_, lookahead_);
  shards_used_ = group.shard_count();
  if (trace_enabled_) group.EnableTrace(trace_capacity_);
  for (size_t i = 0; i < processes_.size(); ++i) {
    Process* p = processes_[i];
    // Same loop body as RunEventDriven, but through sim::AlignTo: after a
    // cross-shard migration the activity must realign on whichever kernel
    // is hosting it, not the one it was spawned on.
    group.Spawn(domains_[i], "p" + std::to_string(i), p->now(), [p, horizon] {
      while (!p->done() && p->now() < horizon) {
        sim::AlignTo(p->now());
        p->Step();
      }
    });
  }
  group.Run();
  last_events_ = group.events_dispatched();
  if (trace_enabled_) {
    shard_traces_.clear();
    for (uint32_t s = 0; s < group.shard_count(); ++s) {
      shard_traces_.push_back(group.shard_trace(s));
    }
  }

  SimTime latest = 0;
  for (Process* p : processes_) {
    latest = std::max(latest, std::min(p->now(), horizon));
  }
  return latest;
}

SimTime Scheduler::RunEventDriven(SimTime horizon) {
  Kernel kernel(backend_);
  if (trace_enabled_) kernel.EnableTrace(trace_capacity_);
  for (size_t i = 0; i < processes_.size(); ++i) {
    Process* p = processes_[i];
    kernel.Spawn("p" + std::to_string(i), p->now(), [p, horizon, &kernel] {
      // Re-align before every Step: an operation ends with the process clock
      // ahead of global time (the completion it computed), and the next
      // operation must not start — or touch any resource — until then.
      while (!p->done() && p->now() < horizon) {
        kernel.WaitUntil(p->now());
        p->Step();
      }
    });
  }
  kernel.Run();
  last_events_ = kernel.events_dispatched();
  if (trace_enabled_) trace_ = kernel.trace();

  SimTime latest = 0;
  for (Process* p : processes_) {
    latest = std::max(latest, std::min(p->now(), horizon));
  }
  return latest;
}

SimTime Scheduler::RunConservative(SimTime horizon) {
  SimTime latest = 0;
  for (;;) {
    Process* next = nullptr;
    for (Process* p : processes_) {
      if (p->done() || p->now() >= horizon) continue;
      if (next == nullptr || p->now() < next->now()) next = p;
    }
    if (next == nullptr) break;
    next->Step();
    latest = std::max(latest, std::min(next->now(), horizon));
  }
  for (Process* p : processes_) {
    latest = std::max(latest, std::min(p->now(), horizon));
  }
  return latest;
}

}  // namespace itc::sim
