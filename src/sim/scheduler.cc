#include "src/sim/scheduler.h"

#include <algorithm>
#include <limits>

namespace itc::sim {

namespace {
constexpr SimTime kForever = std::numeric_limits<SimTime>::max();
}

SimTime Scheduler::RunAll() { return RunUntil(kForever); }

SimTime Scheduler::RunUntil(SimTime horizon) {
  SimTime latest = 0;
  for (;;) {
    Process* next = nullptr;
    for (Process* p : processes_) {
      if (p->done() || p->now() >= horizon) continue;
      if (next == nullptr || p->now() < next->now()) next = p;
    }
    if (next == nullptr) break;
    next->Step();
    latest = std::max(latest, std::min(next->now(), horizon));
  }
  for (Process* p : processes_) {
    latest = std::max(latest, std::min(p->now(), horizon));
  }
  return latest;
}

}  // namespace itc::sim
