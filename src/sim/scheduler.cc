#include "src/sim/scheduler.h"

#include <algorithm>
#include <limits>
#include <string>

namespace itc::sim {

namespace {
constexpr SimTime kForever = std::numeric_limits<SimTime>::max();
}

SimTime Scheduler::RunAll() { return RunUntil(kForever); }

SimTime Scheduler::RunUntil(SimTime horizon) {
  return mode_ == SchedulerMode::kEventDriven ? RunEventDriven(horizon)
                                              : RunConservative(horizon);
}

SimTime Scheduler::RunEventDriven(SimTime horizon) {
  Kernel kernel(backend_);
  if (trace_enabled_) kernel.EnableTrace(trace_capacity_);
  for (size_t i = 0; i < processes_.size(); ++i) {
    Process* p = processes_[i];
    kernel.Spawn("p" + std::to_string(i), p->now(), [p, horizon, &kernel] {
      // Re-align before every Step: an operation ends with the process clock
      // ahead of global time (the completion it computed), and the next
      // operation must not start — or touch any resource — until then.
      while (!p->done() && p->now() < horizon) {
        kernel.WaitUntil(p->now());
        p->Step();
      }
    });
  }
  kernel.Run();
  last_events_ = kernel.events_dispatched();
  if (trace_enabled_) trace_ = kernel.trace();

  SimTime latest = 0;
  for (Process* p : processes_) {
    latest = std::max(latest, std::min(p->now(), horizon));
  }
  return latest;
}

SimTime Scheduler::RunConservative(SimTime horizon) {
  SimTime latest = 0;
  for (;;) {
    Process* next = nullptr;
    for (Process* p : processes_) {
      if (p->done() || p->now() >= horizon) continue;
      if (next == nullptr || p->now() < next->now()) next = p;
    }
    if (next == nullptr) break;
    next->Step();
    latest = std::max(latest, std::min(next->now(), horizon));
  }
  for (Process* p : processes_) {
    latest = std::max(latest, std::min(p->now(), horizon));
  }
  return latest;
}

}  // namespace itc::sim
