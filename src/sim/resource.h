// FCFS resources for the simulation's timing model.
//
// A Resource is a single server with a FIFO queue: a demand arriving at time
// `arrival` begins service when the resource frees up, occupies it for
// `demand` time units, and completes at begin + demand. Resources track
// total busy time (for utilization) and, optionally, per-window busy time
// (for utilization time series such as the 98 %-peak claim of Section 5.2).
//
// Resources never run "code"; the functional layer executes synchronously
// and charges its simulated costs here. Service order is arrival order: the
// event kernel (src/sim/kernel.h) suspends every activity until its demand's
// arrival time before admitting it, so Serve() calls reach each resource in
// nondecreasing `arrival` order and FCFS is exact, not approximate.
// Functional code therefore never calls Serve() directly — it goes through
// sim::Charge, which is the suspension point (enforced by the
// resource-serve-outside-kernel lint rule). Determinism: completion times
// depend only on the sequence of Serve() calls, which the kernel fixes.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ownership.h"
#include "src/common/types.h"

namespace itc::sim {

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  // Serves a demand of `demand` time units arriving at `arrival`; returns the
  // completion time. The event kernel guarantees calls arrive in
  // nondecreasing `arrival` order; only src/sim/ may call this directly —
  // everything else goes through sim::Charge.
  ITC_KERNEL_ENTRY SimTime Serve(SimTime arrival, SimTime demand);

  // Total time this resource has been busy.
  ITC_KERNEL_QUIESCENT SimTime busy_time() const { return busy_; }
  // Number of demands served.
  ITC_KERNEL_QUIESCENT uint64_t jobs() const { return jobs_; }
  // Time the resource next becomes free.
  ITC_KERNEL_QUIESCENT SimTime ready_at() const { return ready_; }
  // busy / elapsed, clamped to [0, 1].
  ITC_KERNEL_QUIESCENT double Utilization(SimTime elapsed) const;

  const std::string& name() const { return name_; }

  // Enables accumulation of busy time into windows of `window` duration,
  // starting at time 0. Must be called before the first Serve() (checked:
  // enabling late would silently miss busy time already accumulated).
  ITC_KERNEL_QUIESCENT void EnableWindowTracking(SimTime window);
  // Busy fraction per window; the last entry may cover a partial window.
  ITC_KERNEL_QUIESCENT std::vector<double> WindowUtilization() const;

  // Restores a completely fresh resource: queue, counters, and window
  // tracking (which may then be re-enabled) are all cleared.
  ITC_KERNEL_QUIESCENT void Reset();

 private:
  void AccumulateWindowed(SimTime start, SimTime end);

  std::string name_;
  ITC_OWNED_BY_KERNEL SimTime ready_ = 0;
  ITC_OWNED_BY_KERNEL SimTime busy_ = 0;
  ITC_OWNED_BY_KERNEL uint64_t jobs_ = 0;
  ITC_OWNED_BY_KERNEL SimTime window_ = 0;  // 0 = tracking disabled
  ITC_OWNED_BY_KERNEL std::vector<SimTime> window_busy_;
};

}  // namespace itc::sim

#endif  // SRC_SIM_RESOURCE_H_
