// FCFS resources for the conservative timing model.
//
// A Resource is a single server with a FIFO queue: a demand arriving at time
// `arrival` begins service when the resource frees up, occupies it for
// `demand` time units, and completes at begin + demand. Resources track
// total busy time (for utilization) and, optionally, per-window busy time
// (for utilization time series such as the 98 %-peak claim of Section 5.2).
//
// Resources never run "code"; the functional layer executes synchronously
// and charges its simulated costs here. Determinism: completion times depend
// only on the sequence of Serve() calls.
//
// KNOWN APPROXIMATION: service order is call order, not arrival order. The
// conservative scheduler steps the minimum-virtual-time client, and clients
// advance their clocks at operation granularity, so a client stepped later
// can present an arrival earlier than ready_ and be queued behind work that
// is logically in its future. The error is bounded by one operation's
// duration (workloads split think time and the operation into separate
// scheduler steps to keep that bound tight); an event-driven kernel would
// remove it entirely at substantial complexity cost. See DESIGN.md.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace itc::sim {

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  // Serves a demand of `demand` time units arriving at `arrival`; returns the
  // completion time. Calls should arrive in approximately nondecreasing
  // `arrival` order (the multi-client scheduler guarantees this); stragglers
  // are queued behind work already accepted.
  SimTime Serve(SimTime arrival, SimTime demand);

  // Total time this resource has been busy.
  SimTime busy_time() const { return busy_; }
  // Number of demands served.
  uint64_t jobs() const { return jobs_; }
  // Time the resource next becomes free.
  SimTime ready_at() const { return ready_; }
  // busy / elapsed, clamped to [0, 1].
  double Utilization(SimTime elapsed) const;

  const std::string& name() const { return name_; }

  // Enables accumulation of busy time into windows of `window` duration,
  // starting at time 0. Must be called before the first Serve().
  void EnableWindowTracking(SimTime window);
  // Busy fraction per window; the last entry may cover a partial window.
  std::vector<double> WindowUtilization() const;

  void Reset();

 private:
  void AccumulateWindowed(SimTime start, SimTime end);

  std::string name_;
  SimTime ready_ = 0;
  SimTime busy_ = 0;
  uint64_t jobs_ = 0;
  SimTime window_ = 0;  // 0 = tracking disabled
  std::vector<SimTime> window_busy_;
};

}  // namespace itc::sim

#endif  // SRC_SIM_RESOURCE_H_
