// Sharded multi-kernel runtime: conservative parallel discrete-event
// simulation, one Kernel per shard, each on its own OS thread.
//
// The campus topology is the partition (ROADMAP item 1): every cluster's
// servers, workstations and LAN segment live on one shard, and only
// backbone crossings couple shards. Crossing the backbone costs at least
//
//   lookahead = 2 * bridge_hop_latency + net_msg_latency
//
// of virtual time (two bridge hops plus the minimum transmission time of
// the smallest message, sim::CostModel::BackboneLookahead), so a shard may
// freely dispatch any event strictly below
//
//   min over other shards of (their published time bound) + lookahead
//
// — the classic null-message / lookahead recipe. Each shard publishes a
// monotone-per-iteration *time bound*: the earliest timestamp it could
// still dispatch (its heap top folded with its mailbox minimum). Messages
// between shards are timestamped activity handoffs:
//
//   MigrateToDomain  moves the *calling activity* to another shard. The
//                    synchronous RPC structure is preserved: the client's
//                    activity executes the server-side code on the server's
//                    shard and migrates home with the reply transfer.
//   Post             spawns a one-shot activity on another shard (one-way
//                    messages: callback and lease breaks have no ack to
//                    ride home on).
//
// Determinism: cross-shard arrivals carry sequence numbers above every
// local sequence number, ordered by (source shard, per-source message
// counter) — see Kernel::ArrivalSeq — so the event order on every shard is
// a pure function of the simulation, independent of how the OS schedules
// the shard threads, and independent of the shard *count* (clusters mapped
// to the same shard still exchange arrival-class messages). Workloads with
// no cross-cluster traffic replay bit-identical per-cluster traces against
// the solo kernel; docs/KERNEL.md states the full guarantee.
//
// Termination: a shard with an empty heap and mailbox publishes "never";
// when every shard is at "never" and a messages-sent counter is stable
// across the scan, no work exists anywhere and the group shuts down.

#ifndef SRC_SIM_KERNEL_GROUP_H_
#define SRC_SIM_KERNEL_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/ownership.h"
#include "src/common/types.h"
#include "src/sim/kernel.h"

namespace itc::sim {

// Shard count for a topology of `domains` clusters: one shard per cluster,
// clamped by the ITCFS_SHARDS environment variable (read once; 0 or unset
// means "one per cluster") and by the domain count itself.
uint32_t DefaultShardCount(uint32_t domains);

class KernelGroup {
 public:
  // `lookahead` is the minimum virtual-time distance of any cross-shard
  // message (sim::CostModel::BackboneLookahead() for the campus network);
  // every MigrateToDomain/Post timestamp is checked against it.
  KernelGroup(uint32_t shard_count, KernelBackend backend, SimTime lookahead);
  ~KernelGroup();
  KernelGroup(const KernelGroup&) = delete;
  KernelGroup& operator=(const KernelGroup&) = delete;

  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  SimTime lookahead() const { return lookahead_; }
  KernelBackend backend() const { return backend_; }

  // Domain (cluster) -> shard placement. Stable for the life of the group.
  uint32_t ShardOfDomain(uint32_t domain) const { return domain % shard_count(); }
  Kernel& shard(uint32_t i) { return *shards_[i]; }
  const Kernel& shard(uint32_t i) const { return *shards_[i]; }

  // The group driving the calling activity, or nullptr when the caller is
  // not a kernel activity or its kernel is solo. This is how the network
  // layer detects sharded operation.
  static KernelGroup* Current();

  // Registers an activity on `domain`'s shard. Must be called before Run.
  ITC_KERNEL_QUIESCENT void Spawn(uint32_t domain, std::string name, SimTime start,
                                  std::function<void()> body);

  // Runs every shard's event loop to completion: shard 0 on the calling
  // thread, one OS thread per further shard. Rethrows the first failure any
  // activity escaped with (lowest shard index wins ties deterministically).
  ITC_KERNEL_ENTRY void Run();

  // Moves the calling activity to `domain`'s shard, resuming at virtual
  // time `t`. Requires t >= host->now() + lookahead — the caller's network
  // path must have paid the backbone crossing. Legal (and still ordered in
  // the arrival sequence range) when the target is the calling shard, so
  // event order does not depend on how many shards the domains fold into.
  ITC_KERNEL_ENTRY void MigrateToDomain(uint32_t domain, SimTime t);

  // Schedules `fn` as a one-shot activity on `domain`'s shard at virtual
  // time `t` (same lookahead contract). One-way fire-and-forget messages;
  // the calling activity continues immediately.
  ITC_KERNEL_ENTRY void Post(uint32_t domain, SimTime t, std::string name,
                             std::function<void()> fn);

  // Per-shard tracing (same ring semantics as Kernel::EnableTrace).
  ITC_KERNEL_QUIESCENT void EnableTrace(size_t capacity = Kernel::kDefaultTraceCapacity);
  ITC_KERNEL_QUIESCENT std::vector<TraceEntry> shard_trace(uint32_t i) const {
    return shards_[i]->trace();
  }

  // Events dispatched across all shards during Run.
  ITC_KERNEL_QUIESCENT uint64_t events_dispatched() const;

 private:
  friend class Kernel;

  enum class Gate {
    kDispatch,  // the heap top at t_next is inside the safe horizon
    kRetry,     // mail arrived; drain and re-evaluate
    kDone,      // global termination
  };

  // Blocks (spin, then condvar with a timeout backstop) until the shard may
  // dispatch its heap top at `t_next`, has mail to drain, or the group is
  // done. Called by Kernel::RunShard with the shard's bound published.
  Gate AwaitSafe(uint32_t shard, SimTime t_next);

  // The earliest timestamp shard `i` could still dispatch: its published
  // bound folded with its mailbox minimum.
  SimTime EffectiveBound(uint32_t i) const;
  // min over shards != `self` of EffectiveBound + lookahead (saturating).
  SimTime SafeHorizon(uint32_t self) const;
  bool AllIdle() const;

  // Called by the sending side after enqueueing cross-shard mail: orders
  // the messages-sent counter after the mailbox publication (the
  // termination scan depends on exactly this order) and wakes waiters.
  void NoteMessageSent();
  void WakeWaiters();

  void RunShardThread(uint32_t i);

  const KernelBackend backend_;
  const SimTime lookahead_;
  std::vector<std::unique_ptr<Kernel>> shards_;

  // Total cross-shard messages ever sent; the termination scan re-reads it
  // around the idle check so an in-flight handoff can never be missed.
  std::atomic<uint64_t> msgs_sent_{0};
  std::atomic<bool> terminated_{false};

  // Blocking support for gated shards. Publishers only take the lock when
  // someone is actually waiting; waiters use a timed wait as a backstop so
  // a lost wakeup costs a timeout, never a hang.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  std::atomic<uint32_t> waiters_{0};
};

}  // namespace itc::sim

#endif  // SRC_SIM_KERNEL_GROUP_H_
