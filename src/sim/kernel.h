// Discrete-event simulation kernel.
//
// The kernel owns global virtual time and a single event queue — a min-heap
// keyed on (time, sequence number), so simultaneous events are FIFO-stable
// and every run is deterministic. Simulated activities (one per client
// operation stream) execute their functional code synchronously but suspend
// at every point where they consume simulated resource time; the kernel
// resumes whichever activity has the earliest pending event. The result is
// that a fetch can occupy the LAN, then queue at the server CPU behind
// another client's store, then wait on the disk, with every resource
// admitting demands in global arrival order.
//
// Mechanism: each activity runs on its own cooperative thread, but exactly
// one thread (the kernel's caller or one activity) is ever runnable — the
// baton is handed off under a mutex at suspension points. This gives the
// deep synchronous call stacks of Venus/Vice real suspension points without
// converting them to coroutines, stays sanitizer-clean (no ucontext stack
// switching), and is fully deterministic because the kernel alone decides
// who runs next.
//
// Functional code never touches the kernel directly; it calls sim::Charge
// (resource demand) or sim::AlignTo (stage boundary), both of which degrade
// to synchronous behaviour when no kernel is driving the caller, so
// single-actor unit tests need no setup.

#ifndef SRC_SIM_KERNEL_H_
#define SRC_SIM_KERNEL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/common/types.h"
#include "src/sim/resource.h"

namespace itc::sim {

// One entry of the kernel's event trace (see Kernel::EnableTrace): the
// virtual time an activity was resumed at and the deterministic sequence
// number of the event that resumed it.
struct TraceEntry {
  SimTime time = 0;
  uint64_t seq = 0;
  std::string activity;

  bool operator==(const TraceEntry& other) const = default;
};

class Kernel {
 public:
  Kernel();
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Registers an activity whose body starts at virtual time max(start, now()).
  // Must be called from outside the kernel (not from an activity body).
  void Spawn(std::string name, SimTime start, std::function<void()> body);

  // Drains the event queue: repeatedly pops the earliest event, advances
  // virtual time to it, and resumes its activity until that activity suspends
  // (WaitUntil) or finishes. Returns once every activity has run to
  // completion; rethrows the first exception an activity body escaped with.
  void Run();

  // Global virtual time: the timestamp of the most recent event.
  SimTime now() const { return now_; }

  // Suspends the calling activity until virtual time reaches t; a no-op when
  // t is not in the future. Only legal from inside an activity body.
  void WaitUntil(SimTime t);

  // The kernel driving the calling thread, or nullptr when the caller is not
  // a kernel activity (plain test code, bench setup, main()).
  static Kernel* Current();

  // Records a TraceEntry per resumption; two identical runs must produce
  // identical traces (the determinism regression test relies on this).
  void EnableTrace() { trace_enabled_ = true; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  struct Activity;
  struct Event {
    SimTime time = 0;
    uint64_t seq = 0;
    Activity* activity = nullptr;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Hands the baton to `a` and blocks until it suspends or finishes.
  void Dispatch(Activity* a);
  // Entry point of an activity thread: runs the body, then returns the baton
  // for good.
  void ActivityMain(Activity* a);

  std::mutex mu_;
  std::condition_variable kernel_cv_;  // signalled when the baton returns
  Activity* running_ = nullptr;        // guarded by mu_
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::vector<std::unique_ptr<Activity>> activities_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::exception_ptr failure_;
  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;

  static thread_local Kernel* current_kernel_;
  static thread_local Activity* current_activity_;
};

// The sanctioned way for functional code to consume simulated resource time
// (the resource-serve-outside-kernel lint rule rejects direct Serve calls
// outside src/sim/). Inside a kernel activity this suspends until the
// demand's `arrival`, then admits it — so every resource sees demands in
// global arrival order, FIFO ties broken by event sequence. The returned
// completion time is a prediction, not a wait: callers thread it into the
// arrival of their next stage, and that next Charge/AlignTo is the
// suspension point which realizes it. Outside a kernel this is a plain
// Resource::Serve in call order.
SimTime Charge(Resource& resource, SimTime arrival, SimTime demand);

// Suspends until virtual time reaches t (no-op outside a kernel). Marks a
// stage boundary that consumes no resource time — e.g. "the request has now
// arrived at the server; dispatch may run" — so the functional side effects
// of a stage happen at the simulated moment they represent.
void AlignTo(SimTime t);

}  // namespace itc::sim

#endif  // SRC_SIM_KERNEL_H_
