// Discrete-event simulation kernel.
//
// The kernel owns global virtual time and a single event queue — a min-heap
// keyed on (time, sequence number), so simultaneous events are FIFO-stable
// and every run is deterministic. Simulated activities (one per client
// operation stream) execute their functional code synchronously but suspend
// at every point where they consume simulated resource time; the kernel
// resumes whichever activity has the earliest pending event. The result is
// that a fetch can occupy the LAN, then queue at the server CPU behind
// another client's store, then wait on the disk, with every resource
// admitting demands in global arrival order.
//
// Mechanism — two interchangeable backends, selected per kernel:
//
//   KernelBackend::kFiber (default): each activity is a pooled stackful
//   fiber (src/sim/fiber.h). Suspension is one user-space context switch —
//   no mutex, no condvar, no OS scheduler — and the steady-state event loop
//   performs zero allocations per event: the event heap is a pre-sized
//   vector (an activity never has more than one pending event, so Spawn
//   growth bounds it for the whole run), fiber stacks are pooled and reused
//   across activities and across runs, and the optional trace is a
//   fixed-capacity ring written in place.
//
//   KernelBackend::kThread: the original model — each activity on its own
//   OS thread, exactly one per kernel ever runnable, parked on a
//   per-activity mutex/condvar pair and handed the baton by Dispatch.
//   Retained as the sanitizer-safe reference implementation and as the
//   wall-clock baseline bench_kernel_throughput measures the fiber backend
//   against.
//
// Backend choice can never affect simulated time or event order: both
// backends drive the same heap with the same sequence numbers and differ
// only in how an activity's host-side execution is parked and resumed. The
// backend-equivalence tests in tests/sim/ pin byte-identical traces.
//
// Sharded operation (see src/sim/kernel_group.h): a KernelGroup runs one
// Kernel per shard, each on its own OS thread, synchronized conservatively
// at a fixed lookahead. A kernel then distinguishes its *home* activities
// (spawned on it, joined by it) from activities it is currently *hosting*
// (migrated in across a cross-shard message). Cross-shard arrivals carry
// sequence numbers from a reserved range above every local sequence number,
// ordered by (source shard, per-source message counter), so event order is
// a pure function of the simulation — never of how the OS interleaves shard
// threads. A solo Kernel (no group) behaves exactly as before.
//
// Functional code never touches the kernel directly; it calls sim::Charge
// (resource demand) or sim::AlignTo (stage boundary), both of which degrade
// to synchronous behaviour when no kernel is driving the caller, so
// single-actor unit tests need no setup.

#ifndef SRC_SIM_KERNEL_H_
#define SRC_SIM_KERNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/ownership.h"
#include "src/common/types.h"
#include "src/sim/fiber.h"
#include "src/sim/resource.h"

namespace itc::sim {

class KernelGroup;

// One entry of the kernel's event trace (see Kernel::EnableTrace): the
// virtual time an activity was resumed at and the deterministic sequence
// number of the event that resumed it.
struct TraceEntry {
  SimTime time = 0;
  uint64_t seq = 0;
  std::string activity;

  bool operator==(const TraceEntry& other) const = default;
};

// How activities are parked and resumed; see the header comment.
enum class KernelBackend {
  kFiber,
  kThread,
};

// kFiber unless the ITCFS_KERNEL_BACKEND environment variable says "thread"
// (read once; CI pins the sanitizer leg with it). Affects wall-clock only —
// simulated results are backend-independent.
KernelBackend DefaultKernelBackend();
const char* KernelBackendName(KernelBackend backend);

// "No pending time": comparisons treat it as later than every real SimTime.
inline constexpr SimTime kNeverSimTime = std::numeric_limits<SimTime>::max();

class Kernel {
 public:
  // Default trace ring capacity: plenty for every regression test while
  // keeping a traced kernel's memory fixed (~64k entries) however long the
  // simulated day runs.
  static constexpr size_t kDefaultTraceCapacity = 1u << 16;

  explicit Kernel(KernelBackend backend = DefaultKernelBackend());
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  KernelBackend backend() const { return backend_; }

  // Registers an activity whose body starts at virtual time max(start, now()).
  // Must be called from outside the kernel (not from an activity body).
  ITC_KERNEL_QUIESCENT void Spawn(std::string name, SimTime start,
                                  std::function<void()> body);

  // Drains the event queue: repeatedly pops the earliest event, advances
  // virtual time to it, and resumes its activity until that activity suspends
  // (WaitUntil) or finishes. Returns once every activity has run to
  // completion; rethrows the first exception an activity body escaped with.
  // Solo mode only — a kernel inside a KernelGroup is driven by RunShard.
  ITC_KERNEL_ENTRY void Run();

  // Global virtual time: the timestamp of the most recent event.
  ITC_KERNEL_ENTRY SimTime now() const { return now_; }

  // Suspends the calling activity until virtual time reaches t; a no-op when
  // t is not in the future. Only legal from inside an activity body.
  ITC_KERNEL_ENTRY void WaitUntil(SimTime t);

  // The kernel driving the calling thread, or nullptr when the caller is not
  // a kernel activity (plain test code, bench setup, main()). After a
  // cross-shard migration this is the hosting shard's kernel, not the one
  // the activity was spawned on.
  static Kernel* Current();

  // The group this kernel is a shard of, or nullptr for a solo kernel.
  KernelGroup* group() const { return group_; }
  // This kernel's shard index within its group (0 for a solo kernel).
  uint32_t shard() const { return shard_; }

  // Records a TraceEntry per resumption into a fixed-capacity ring buffer
  // (the last `capacity` resumptions are kept; trace_dropped() counts
  // overwritten entries). Two identical runs must produce identical traces —
  // the determinism and backend-equivalence tests rely on this. Call before
  // Run; the ring is pre-sized here so tracing stays off the per-event
  // allocation path.
  ITC_KERNEL_QUIESCENT void EnableTrace(size_t capacity = kDefaultTraceCapacity);
  // The retained trace, oldest first.
  ITC_KERNEL_QUIESCENT std::vector<TraceEntry> trace() const;
  ITC_KERNEL_QUIESCENT uint64_t trace_dropped() const { return trace_dropped_; }

  // Events dispatched by Run() so far. One dispatch is one activity
  // resumption — under kFiber, exactly two user-space context switches.
  ITC_KERNEL_QUIESCENT uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  friend class KernelGroup;

  struct Activity;
  struct Event {
    SimTime time = 0;
    uint64_t seq = 0;
    Activity* activity = nullptr;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Cross-shard arrivals get sequence numbers from this reserved range, so
  // at equal timestamps every local event precedes every arrival and
  // arrivals order among themselves by (source shard, per-source message
  // counter) — deterministic however the OS interleaves shard threads.
  static constexpr uint64_t kArrivalSeqBase = 1ull << 62;
  static constexpr uint64_t ArrivalSeq(uint32_t src_shard, uint64_t msg_seq) {
    return kArrivalSeqBase + (static_cast<uint64_t>(src_shard) << 40) + msg_seq;
  }

  // A timestamped cross-shard message: either an activity migrating in, or
  // a one-shot activity a Post created (then `adopt` transfers ownership to
  // the receiving kernel at drain time).
  struct Mail {
    SimTime time = 0;
    uint64_t seq = 0;
    Activity* activity = nullptr;
    bool adopt = false;
  };

  // Queues an event. Steady-state calls (WaitUntil) never allocate: every
  // activity has at most one pending event, so the capacity Spawn built up
  // bounds the heap for the whole run (checked). Kernels in a group may
  // grow — migrated-in activities add events beyond the spawn-time bound.
  void PushEvent(SimTime time, Activity* activity, bool may_grow);
  // As PushEvent, but with an explicit arrival-range sequence number.
  void PushArrival(SimTime time, uint64_t seq, Activity* activity);
  // Pops the earliest event, advances the clock, dispatches. Shared by the
  // solo and sharded event loops.
  void StepOne();
  // Resumes `a` and returns when it suspends, migrates out, or finishes.
  void Dispatch(Activity* a);
  // Sharded event loop: drain arrivals, publish the time lower bound, wait
  // for the group's safe horizon, dispatch. Runs on the shard's own thread.
  ITC_KERNEL_ENTRY void RunShard();
  // Moves arrived mail into the event heap, keeping the published lower
  // bound covering the moved timestamps at every instant.
  void DrainMail();
  // Accepts a cross-shard message (called by the *sending* shard's thread).
  void EnqueueMail(const Mail& mail);
  // Suspends the calling activity and hands it to `target` (possibly this
  // kernel — same ordering class either way), where it will resume at time
  // `t` under arrival sequence number `seq`. The handoff is performed by
  // this kernel's event loop once the activity is fully parked.
  void MigrateOut(Kernel* target, SimTime t, uint64_t seq);
  // Creates a one-shot activity owned by this kernel and mails it to
  // itself; the sending shard's thread calls this on the *target* kernel.
  void PostMail(SimTime time, uint64_t seq, std::string name, std::function<void()> body);
  // Joins finished kThread activity threads; a group calls this after every
  // shard's event loop has terminated.
  void JoinActivityThreads();
  void RecordTrace(const Event& e);
  // Fiber entry point: runs the body, records failures, marks finished.
  static void FiberMain(void* arg);
  // Entry point of an activity thread (kThread): runs the body, then returns
  // the baton for good.
  static void ThreadMain(Activity* a);
  // kThread: blocks until the running activity parks, migrates or finishes.
  void AwaitBaton();
  // kThread: called on the activity's thread to hand control back.
  void ReturnBaton();

  const KernelBackend backend_;
  // Binary min-heap (std::push_heap/pop_heap over EventAfter), pre-sized by
  // Spawn-time growth.
  ITC_OWNED_BY_KERNEL std::vector<Event> heap_;
  ITC_OWNED_BY_KERNEL std::vector<std::unique_ptr<Activity>> activities_;
  ITC_OWNED_BY_KERNEL SimTime now_ = 0;
  ITC_OWNED_BY_KERNEL uint64_t next_seq_ = 0;
  ITC_OWNED_BY_KERNEL uint64_t events_dispatched_ = 0;
  ITC_OWNED_BY_KERNEL std::exception_ptr failure_;

  // Trace ring buffer; trace_cap_ == 0 means tracing is off.
  ITC_OWNED_BY_KERNEL std::vector<TraceEntry> trace_buf_;
  ITC_OWNED_BY_KERNEL size_t trace_cap_ = 0;
  ITC_OWNED_BY_KERNEL size_t trace_head_ = 0;   // next slot to write
  ITC_OWNED_BY_KERNEL size_t trace_count_ = 0;  // live entries, <= trace_cap_
  ITC_OWNED_BY_KERNEL uint64_t trace_dropped_ = 0;

  // Group membership (null / 0 for a solo kernel). Set once by KernelGroup
  // before any shard thread starts, constant while running.
  KernelGroup* group_ = nullptr;
  uint32_t shard_ = 0;
  // Per-sender counter ordering this kernel's outgoing cross-shard messages.
  ITC_OWNED_BY_KERNEL uint64_t next_msg_seq_ = 0;

  // Cross-shard mailbox. Senders push under mail_mu_; the owning shard
  // drains at the top of its event loop. mail_min_ mirrors the earliest
  // queued timestamp (kNeverSimTime when empty) so other shards can fold it
  // into this shard's effective lower bound without taking the mutex, and
  // lb_ is the shard's published promise: it will dispatch nothing, and
  // therefore send nothing timestamped less than lb_ + lookahead, below it.
  std::mutex mail_mu_;
  std::vector<Mail> mail_;
  alignas(64) std::atomic<SimTime> mail_min_{kNeverSimTime};
  alignas(64) std::atomic<SimTime> lb_{0};

  // kThread backend: the baton handed between Dispatch and the one running
  // activity. The mutex carries the happens-before edges that make the
  // unlocked kernel-state accesses safe — an activity only touches kernel
  // state between being woken by Dispatch and returning the baton.
  std::mutex mu_;
  std::condition_variable kernel_cv_;  // signalled when the baton returns
  ITC_OWNED_BY_KERNEL bool baton_returned_ = false;  // guarded by mu_

  static thread_local Kernel* current_kernel_;
  static thread_local Activity* current_activity_;
};

// The sanctioned way for functional code to consume simulated resource time
// (the resource-serve-outside-kernel lint rule rejects direct Serve calls
// outside src/sim/). Inside a kernel activity this suspends until the
// demand's `arrival`, then admits it — so every resource sees demands in
// global arrival order, FIFO ties broken by event sequence. The returned
// completion time is a prediction, not a wait: callers thread it into the
// arrival of their next stage, and that next Charge/AlignTo is the
// suspension point which realizes it. Outside a kernel this is a plain
// Resource::Serve in call order.
ITC_KERNEL_ENTRY SimTime Charge(Resource& resource, SimTime arrival, SimTime demand);

// Suspends until virtual time reaches t (no-op outside a kernel). Marks a
// stage boundary that consumes no resource time — e.g. "the request has now
// arrived at the server; dispatch may run" — so the functional side effects
// of a stage happen at the simulated moment they represent.
ITC_KERNEL_ENTRY void AlignTo(SimTime t);

}  // namespace itc::sim

#endif  // SRC_SIM_KERNEL_H_
