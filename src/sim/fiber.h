// Pooled stackful fibers for the event kernel's user-space backend.
//
// A Fiber is a cooperative execution context (`ucontext_t` via
// makecontext/swapcontext) whose stack comes from a process-wide pool and is
// returned to it when the fiber exits — so steady-state simulation reuses a
// small working set of stacks across activities and across kernel runs, and
// the per-event suspension cost is a single user-space context switch with no
// mutex, no condition variable, and no kernel scheduler involvement. This is
// the LWP treatment the paper's revised Vice server applied to the real
// system (§3.5.2): many lightweight contexts inside one process instead of a
// process (here: an OS thread) per client.
//
// Stack size is configurable via ITCFS_FIBER_STACK_KB (default 256 KB,
// minimum 64 KB, read once at first use); each stack optionally carries a
// PROT_NONE guard page at its low end (ITCFS_FIBER_GUARD=0 disables) so an
// overflow faults instead of corrupting a neighbouring mapping. Stacks are
// mmap-ed, linked through an intrusive freelist, and never unmapped: the pool
// lives for the process, which is what makes reuse across Scheduler::RunAll
// calls allocation-free.
//
// Sanitizers: under AddressSanitizer every switch is bracketed with
// __sanitizer_start_switch_fiber/__sanitizer_finish_switch_fiber so ASan
// tracks the active stack, and under ThreadSanitizer every fiber carries a
// __tsan_create_fiber context with __tsan_switch_to_fiber called right
// before each swapcontext, so TSan's shadow state follows execution across
// stack switches instead of reporting phantom races between frames of the
// same logical thread. Without a sanitizer the annotations compile to
// nothing. The OS-thread kernel backend (KernelBackend::kThread) remains the
// annotation-free reference implementation, and is what the TSan CI leg
// pins.

#ifndef SRC_SIM_FIBER_H_
#define SRC_SIM_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <mutex>

namespace itc::sim {

// One pooled stack mapping. `limit` is the lowest usable address (just above
// the guard page when one is present); ucontext grows the stack down from
// limit + size. Pool-owned; fibers borrow via Acquire/Release.
struct FiberStack {
  unsigned char* limit = nullptr;
  size_t size = 0;
  void* mapping = nullptr;
  size_t mapping_size = 0;
  FiberStack* next = nullptr;  // intrusive freelist link
};

// Process-wide stack pool. Acquire pops the freelist (mmap only on a miss);
// Release pushes back. The mutex is uncontended in practice — the kernel
// acquires/releases per *activity*, never per event — and exists only so
// thread-backend tests and fiber-backend tests can share one process safely.
class FiberStackPool {
 public:
  static FiberStackPool& Instance();

  FiberStack* Acquire();
  void Release(FiberStack* stack);

  // Stacks ever mmap-ed (monotone). A steady value across RunAll cycles is
  // the reuse guarantee the pool test pins down.
  size_t created() const;
  // Stacks currently in the freelist; equals created() when no fiber is live.
  size_t free_count() const;
  size_t stack_bytes() const { return stack_bytes_; }

 private:
  FiberStackPool();

  mutable std::mutex mu_;
  FiberStack* free_ = nullptr;
  size_t created_ = 0;
  size_t free_count_ = 0;
  size_t stack_bytes_ = 0;
  bool guard_page_ = true;
};

// A stackful cooperative context. Lifecycle: Start (borrows a pooled stack),
// then alternating Resume (caller side) / Suspend (fiber side) until the
// entry function returns, after which Resume's caller sees the fiber
// finished and calls ReleaseStack. Not reentrant and not thread-safe: a
// fiber belongs to whichever thread resumes it, which for the kernel is the
// single thread driving Kernel::Run.
class Fiber {
 public:
  using Entry = void (*)(void* arg);

  Fiber() = default;
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Borrows a stack from the pool and prepares the context so the first
  // Resume enters `entry(arg)`. When `entry` returns the fiber exits: the
  // in-flight Resume returns and the stack may be released.
  void Start(Entry entry, void* arg);

  // Transfers control into the fiber; returns when it suspends or exits.
  void Resume();

  // Transfers control back to the resumer. Only legal on the fiber itself.
  void Suspend();

  // Returns this fiber's stack to the pool. Only legal once exited (or never
  // started); a live fiber's frames are on that stack.
  void ReleaseStack();

  bool started() const { return started_; }
  bool exited() const { return exited_; }

 private:
  static void Trampoline(unsigned hi, unsigned lo);
  [[noreturn]] void Exit();

  ucontext_t ctx_{};     // the fiber's context while suspended
  ucontext_t caller_{};  // where Resume came from, while the fiber runs
  FiberStack* stack_ = nullptr;
  Entry entry_ = nullptr;
  void* arg_ = nullptr;
  bool started_ = false;
  bool exited_ = false;

  // ASan bookkeeping: the fiber's fake-stack handle while it is suspended,
  // and the resumer's stack bounds for annotating switches back.
  void* self_fake_stack_ = nullptr;
  const void* caller_stack_bottom_ = nullptr;
  size_t caller_stack_size_ = 0;

  // TSan bookkeeping: this fiber's shadow context (created at Start,
  // destroyed at ReleaseStack), and the resumer's context for switching
  // back. Unused (and left null) outside TSan builds.
  void* tsan_fiber_ = nullptr;
  void* tsan_caller_ = nullptr;
};

}  // namespace itc::sim

#endif  // SRC_SIM_FIBER_H_
