// Per-entity virtual clock.
//
// Every simulated workstation owns a Clock. Functional code runs instantly
// in host time; simulated durations are charged by advancing the clock.
// AdvanceTo is monotone: moving to an earlier time is a no-op, which is how
// waiting-for-a-resource composes with already-elapsed local work.

#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <algorithm>

#include "src/common/types.h"

namespace itc::sim {

class Clock {
 public:
  SimTime now() const { return now_; }

  void Advance(SimTime delta) { now_ += delta; }

  // Moves the clock forward to `t` if `t` is later than now.
  void AdvanceTo(SimTime t) { now_ = std::max(now_, t); }

  void Reset(SimTime t = 0) { now_ = t; }

 private:
  SimTime now_ = 0;
};

}  // namespace itc::sim

#endif  // SRC_SIM_CLOCK_H_
