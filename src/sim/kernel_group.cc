#include "src/sim/kernel_group.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/common/logging.h"

namespace itc::sim {

uint32_t DefaultShardCount(uint32_t domains) {
  static const uint32_t env_shards = [] {
    const char* env = std::getenv("ITCFS_SHARDS");
    if (env == nullptr || *env == '\0') return 0u;
    const long v = std::strtol(env, nullptr, 10);
    return v <= 0 ? 0u : static_cast<uint32_t>(v);
  }();
  if (domains == 0) return 1;
  const uint32_t want = env_shards == 0 ? domains : env_shards;
  return std::max(1u, std::min(want, domains));
}

KernelGroup::KernelGroup(uint32_t shard_count, KernelBackend backend, SimTime lookahead)
    : backend_(backend), lookahead_(lookahead) {
  ITC_CHECK(shard_count >= 1);
  ITC_CHECK(lookahead > 0);  // zero lookahead would deadlock the gate
  shards_.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    auto k = std::make_unique<Kernel>(backend);
    k->group_ = this;
    k->shard_ = i;
    shards_.push_back(std::move(k));
  }
}

KernelGroup::~KernelGroup() = default;

KernelGroup* KernelGroup::Current() {
  Kernel* k = Kernel::Current();
  return k == nullptr ? nullptr : k->group();
}

void KernelGroup::Spawn(uint32_t domain, std::string name, SimTime start,
                        std::function<void()> body) {
  shards_[ShardOfDomain(domain)]->Spawn(std::move(name), start, std::move(body));
}

void KernelGroup::Run() {
  ITC_CHECK(Kernel::Current() == nullptr);  // no nested runs
  terminated_.store(false);
  const uint32_t n = shard_count();
  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (uint32_t i = 1; i < n; ++i) {
    threads.emplace_back([this, i] { shards_[i]->RunShard(); });
  }
  shards_[0]->RunShard();
  for (auto& th : threads) th.join();
  for (auto& k : shards_) k->JoinActivityThreads();
  // Rethrow by shard index so the surfaced failure is deterministic even
  // when several shards failed in the same run.
  for (auto& k : shards_) {
    if (k->failure_ != nullptr) {
      std::exception_ptr f = std::exchange(k->failure_, nullptr);
      std::rethrow_exception(f);
    }
  }
}

void KernelGroup::MigrateToDomain(uint32_t domain, SimTime t) {
  Kernel* host = Kernel::Current();
  ITC_CHECK(host != nullptr && host->group() == this);
  // The lookahead contract: a cross-shard (or cross-cluster) hop always
  // pays at least the backbone floor, so the receiving shard — gated below
  // every other shard's bound + lookahead — cannot have passed `t` yet.
  ITC_CHECK(t >= host->now_ + lookahead_);
  Kernel* target = shards_[ShardOfDomain(domain)].get();
  const uint64_t seq = Kernel::ArrivalSeq(host->shard_, host->next_msg_seq_++);
  host->MigrateOut(target, t, seq);
}

void KernelGroup::Post(uint32_t domain, SimTime t, std::string name,
                       std::function<void()> fn) {
  Kernel* host = Kernel::Current();
  ITC_CHECK(host != nullptr && host->group() == this);
  ITC_CHECK(t >= host->now_ + lookahead_);
  Kernel* target = shards_[ShardOfDomain(domain)].get();
  const uint64_t seq = Kernel::ArrivalSeq(host->shard_, host->next_msg_seq_++);
  target->PostMail(t, seq, std::move(name), std::move(fn));
  NoteMessageSent();
}

void KernelGroup::EnableTrace(size_t capacity) {
  for (auto& k : shards_) k->EnableTrace(capacity);
}

uint64_t KernelGroup::events_dispatched() const {
  uint64_t total = 0;
  for (const auto& k : shards_) total += k->events_dispatched();
  return total;
}

SimTime KernelGroup::EffectiveBound(uint32_t i) const {
  const Kernel& k = *shards_[i];
  return std::min(k.lb_.load(), k.mail_min_.load());
}

SimTime KernelGroup::SafeHorizon(uint32_t self) const {
  SimTime min_eff = kNeverSimTime;
  const uint32_t n = shard_count();
  for (uint32_t i = 0; i < n; ++i) {
    if (i == self) continue;
    min_eff = std::min(min_eff, EffectiveBound(i));
  }
  if (min_eff >= kNeverSimTime - lookahead_) return kNeverSimTime;
  return min_eff + lookahead_;
}

bool KernelGroup::AllIdle() const {
  const uint32_t n = shard_count();
  for (uint32_t i = 0; i < n; ++i) {
    if (EffectiveBound(i) != kNeverSimTime) return false;
  }
  return true;
}

KernelGroup::Gate KernelGroup::AwaitSafe(uint32_t shard, SimTime t_next) {
  Kernel& me = *shards_[shard];
  int spins = 0;
  for (;;) {
    if (terminated_.load()) return Gate::kDone;
    if (me.mail_min_.load() != kNeverSimTime) return Gate::kRetry;
    if (t_next != kNeverSimTime) {
      // Single-shard groups have an unbounded horizon and never block here.
      if (t_next < SafeHorizon(shard)) return Gate::kDispatch;
    } else {
      // This shard is idle. Claim termination only if every shard is idle
      // and the messages-sent counter is stable across the scan: every
      // cross-shard send publishes the receiver's mailbox minimum *before*
      // bumping the counter, and only afterwards may the sender's own bound
      // rise — so a handoff in flight during the scan either shows up in a
      // mailbox we read, keeps its sender's bound finite, or moves the
      // counter between the two reads.
      const uint64_t sent_before = msgs_sent_.load();
      if (AllIdle()) {
        if (msgs_sent_.load() == sent_before && AllIdle()) {
          terminated_.store(true);
          {
            std::lock_guard<std::mutex> lock(sync_mu_);
          }
          sync_cv_.notify_all();
          return Gate::kDone;
        }
        continue;  // raced with a handoff; rescan
      }
    }
    // Not safe yet. The horizon usually opens within a few of the other
    // shards' events, so spin briefly, then yield (essential when shards
    // outnumber cores), then block with a timed backstop so a lost wakeup
    // costs a millisecond, never a hang.
    ++spins;
    if (spins < 256) {
      // busy-read; the loads above are the pause
    } else if (spins < 320) {
      std::this_thread::yield();
    } else {
      spins = 0;
      waiters_.fetch_add(1);
      {
        std::unique_lock<std::mutex> lock(sync_mu_);
        sync_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
      waiters_.fetch_sub(1);
    }
  }
}

void KernelGroup::NoteMessageSent() {
  // Mailbox publication (EnqueueMail / PostMail) happened-before this bump;
  // AwaitSafe's termination scan depends on exactly that order.
  msgs_sent_.fetch_add(1);
  WakeWaiters();
}

void KernelGroup::WakeWaiters() {
  if (waiters_.load() == 0) return;
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
  }
  sync_cv_.notify_all();
}

}  // namespace itc::sim
