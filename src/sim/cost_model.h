// Calibrated cost model for mid-1980s hardware.
//
// This is the substitution for the paper's physical testbed (Sun/VAX
// workstations, 10 Mbit/s Ethernets with bridges, dedicated cluster
// servers). Every constant is named here and printed by the bench harnesses;
// EXPERIMENTS.md discusses calibration. The paper's quantitative claims are
// ratios and distributions, so what matters is the *relative* cost of server
// CPU, disk, and network work — chosen below to reflect the prototype's
// measured behaviour (server CPU the bottleneck; pathname traversal and
// per-call process switching expensive; 10 Mbit/s LAN; ~1 MB/s disks).

#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include "src/common/types.h"

namespace itc::sim {

struct CostModel {
  // --- Network -------------------------------------------------------------
  // Fixed per-message cost on a LAN segment (media access + protocol stack).
  SimTime net_msg_latency = Millis(4);
  // Transmission time per kilobyte at ~10 Mbit/s.
  SimTime net_per_kb = Micros(820);
  // Extra latency per bridge hop for cross-cluster traffic (Figure 2-2).
  SimTime bridge_hop_latency = Millis(3);
  // Datagram RPC (revised) saves per-message protocol overhead vs the
  // prototype's reliable byte-stream transport (TCP through the 4.2BSD
  // socket layer on a ~1 MIPS machine).
  SimTime stream_transport_overhead = Millis(60);
  // How long a client waits for a reply before declaring the call lost.
  // Paid in full when a link partition eats the request or the reply.
  SimTime rpc_timeout = Millis(500);

  // --- Server --------------------------------------------------------------
  // CPU to dispatch any RPC (unmarshal, locate vnode, marshal reply).
  SimTime server_cpu_per_call = Millis(10);
  // CPU per pathname component resolved on the server (prototype only; the
  // revised implementation moves traversal to Venus). namei through the
  // user-level server was expensive.
  SimTime server_cpu_per_path_component = Millis(25);
  // CPU per kilobyte copied through the server (fetch/store).
  SimTime server_cpu_per_kb = Micros(400);
  // Process scheduling charged per call by the prototype's
  // process-per-client server structure (Section 3.5.2): waking the
  // dedicated per-client Unix process, switching, and switching back.
  // "significant performance degradation is caused by context switching
  // between the per-client Unix processes" — this is the dominant prototype
  // per-call cost and what makes its server CPU the bottleneck.
  SimTime server_context_switch = Millis(850);
  // LWP dispatch cost in the revised single-process server.
  SimTime server_lwp_switch = Micros(300);
  // Encryption CPU per kilobyte (both ends; charged to server CPU for the
  // server side, client think time for the client side).
  SimTime crypto_cpu_per_kb = Micros(250);

  // --- Server disk ---------------------------------------------------------
  SimTime disk_seek = Millis(40);
  SimTime disk_per_kb = Millis(1);
  // Prototype stores Vice status in a separate .admin file: extra disk op on
  // status reads/writes. The revised server keeps status in vnode indexes.
  SimTime admin_file_penalty = Millis(14);
  // Prototype pathname-keyed interface: every data/status call carries a
  // full pathname the server must resolve — this many components of CPU and
  // this many namei directory/inode/.admin disk reads per call.
  int prototype_path_depth = 4;
  int prototype_namei_disk_ops = 6;

  // --- Stable storage / crash recovery -------------------------------------
  // Appending an intention record to the write-ahead log: one sequential
  // write, far cheaper than a seek, plus a per-kilobyte payload cost.
  SimTime log_append = Millis(2);
  SimTime log_per_kb = Micros(500);
  // Forcing the log (and the commit mark) to disk before replying.
  SimTime log_fsync = Millis(8);
  // Restart costs: re-reading a checkpoint image is sequential disk I/O
  // (charged via disk_per_kb on the image size), re-executing one logged
  // intention, and walking one vnode during salvage.
  SimTime recovery_replay_per_record = Millis(3);
  SimTime salvage_per_vnode = Micros(800);

  // --- Workstation ---------------------------------------------------------
  // Local FS costs (workstation disk is similar to server disk but accessed
  // without network or server CPU).
  SimTime local_open = Millis(12);
  SimTime local_stat = Millis(8);
  SimTime local_create = Millis(20);
  SimTime local_per_kb = Millis(1);
  SimTime local_mkdir = Millis(24);
  // Client CPU around each RPC (marshal, Venus bookkeeping).
  SimTime client_cpu_per_rpc = Millis(3);
  // Venus cache lookup (hit path) — deliberately cheap.
  SimTime cache_lookup = Micros(500);

  // Returns the cost model used throughout bench/: the constants above.
  static CostModel Default1985() { return CostModel{}; }

  // Minimum virtual-time cost of any cross-cluster message: two bridge hops
  // plus the fixed per-message cost of the smallest possible transmission.
  // This is the conservative lookahead bound the sharded kernel group uses
  // — no backbone crossing can deliver sooner, so a shard gated at
  // min(other shards' bounds) + BackboneLookahead() can never receive a
  // message in its past (src/sim/kernel_group.h).
  SimTime BackboneLookahead() const {
    return 2 * bridge_hop_latency + net_msg_latency;
  }

  // Network transmission time for `bytes` on one segment, excluding queueing.
  SimTime TransmissionTime(uint64_t bytes) const {
    return net_msg_latency + static_cast<SimTime>(static_cast<double>(net_per_kb) *
                                                  (static_cast<double>(bytes) / 1024.0));
  }

  SimTime DiskTime(uint64_t bytes) const {
    return disk_seek + static_cast<SimTime>(static_cast<double>(disk_per_kb) *
                                            (static_cast<double>(bytes) / 1024.0));
  }

  SimTime ServerCopyCpu(uint64_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(server_cpu_per_kb) *
                                (static_cast<double>(bytes) / 1024.0));
  }

  SimTime CryptoCpu(uint64_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(crypto_cpu_per_kb) *
                                (static_cast<double>(bytes) / 1024.0));
  }

  // Disk time to append a `bytes`-sized intention record to the log.
  SimTime LogAppendTime(uint64_t bytes) const {
    return log_append + static_cast<SimTime>(static_cast<double>(log_per_kb) *
                                             (static_cast<double>(bytes) / 1024.0));
  }

  SimTime LocalIoTime(uint64_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(local_per_kb) *
                                (static_cast<double>(bytes) / 1024.0));
  }
};

}  // namespace itc::sim

#endif  // SRC_SIM_COST_MODEL_H_
