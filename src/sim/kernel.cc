#include "src/sim/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/logging.h"

namespace itc::sim {

// An activity is a cooperative execution context. Under kFiber it runs on a
// pooled fiber stack; under kThread it is a thread started lazily at its
// first event and parked on its own condition variable whenever it suspends
// (`resume` and `finished` are then guarded by the kernel's mutex).
struct Kernel::Activity {
  std::string name;
  std::function<void()> body;
  Kernel* kernel = nullptr;
  bool started = false;
  bool finished = false;
  // kFiber backend.
  Fiber fiber;
  // kThread backend.
  std::thread thread;
  std::condition_variable cv;
  bool resume = false;
};

thread_local Kernel* Kernel::current_kernel_ = nullptr;
thread_local Kernel::Activity* Kernel::current_activity_ = nullptr;

KernelBackend DefaultKernelBackend() {
  static const KernelBackend backend = [] {
    const char* env = std::getenv("ITCFS_KERNEL_BACKEND");
    if (env != nullptr && std::strcmp(env, "thread") == 0) return KernelBackend::kThread;
    return KernelBackend::kFiber;
  }();
  return backend;
}

const char* KernelBackendName(KernelBackend backend) {
  return backend == KernelBackend::kFiber ? "fiber" : "thread";
}

Kernel::Kernel(KernelBackend backend) : backend_(backend) {}

Kernel::~Kernel() {
  // Run() joins every started thread (and releases every fiber stack) before
  // returning, and an unstarted activity holds neither; nothing can still be
  // parked here.
  for (auto& a : activities_) {
    ITC_CHECK(!a->thread.joinable());
  }
}

void Kernel::Spawn(std::string name, SimTime start, std::function<void()> body) {
  ITC_CHECK(Current() == nullptr);  // spawning from an activity is not supported
  auto a = std::make_unique<Activity>();
  a->name = std::move(name);
  a->body = std::move(body);
  a->kernel = this;
  PushEvent(std::max(start, now_), a.get(), /*may_grow=*/true);
  activities_.push_back(std::move(a));
}

void Kernel::PushEvent(SimTime time, Activity* activity, bool may_grow) {
  // Every activity has at most one pending event (its spawn event or its
  // current WaitUntil), so the capacity built up while spawning bounds the
  // heap for the whole run and the steady-state push below cannot
  // reallocate. The check turns any future violation of that invariant into
  // a crash instead of a silent allocation.
  if (!may_grow) ITC_CHECK(heap_.size() < heap_.capacity());
  // itcfs-lint: allow(no-alloc-in-kernel-hot-path-transitive) -- capacity-checked above; steady state never grows
  heap_.push_back(Event{time, next_seq_++, activity});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void Kernel::Run() {
  ITC_CHECK(Current() == nullptr);  // no nested Run() from an activity body
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    const Event e = heap_.back();
    heap_.pop_back();
    ITC_CHECK(e.time >= now_);  // the heap never yields a past event
    now_ = e.time;
    ++events_dispatched_;
    if (trace_cap_ != 0) RecordTrace(e);
    Dispatch(e.activity);
  }
  // An unfinished activity would be parked in WaitUntil with its event still
  // queued; an empty heap therefore implies every body ran to completion.
  for (auto& a : activities_) {
    ITC_CHECK(a->finished || !a->started);
    if (a->thread.joinable()) a->thread.join();
  }
  if (failure_ != nullptr) {
    std::exception_ptr f = std::exchange(failure_, nullptr);
    std::rethrow_exception(f);
  }
}

void Kernel::Dispatch(Activity* a) {
  if (backend_ == KernelBackend::kFiber) {
    // Everything runs on this one OS thread; the thread-locals describe
    // whichever activity holds the processor between the two switches.
    current_kernel_ = this;
    current_activity_ = a;
    if (!a->started) {
      a->started = true;
      a->fiber.Start(&Kernel::FiberMain, a);
    }
    a->fiber.Resume();
    current_kernel_ = nullptr;
    current_activity_ = nullptr;
    if (a->finished) a->fiber.ReleaseStack();
    return;
  }
  // kThread: hand the baton to `a` and block until it suspends or finishes.
  std::unique_lock<std::mutex> lock(mu_);
  running_ = a;
  if (!a->started) {
    a->started = true;
    a->thread = std::thread(&Kernel::ThreadMain, this, a);
  } else {
    a->resume = true;
    a->cv.notify_one();
  }
  kernel_cv_.wait(lock, [this] { return running_ == nullptr; });
}

void Kernel::RecordTrace(const Event& e) {
  // In-place ring write: no growth, and activity names are short enough that
  // the string assignment reuses the slot's existing buffer after the first
  // lap (or SSO storage).
  TraceEntry& slot = trace_buf_[trace_head_];
  slot.time = e.time;
  slot.seq = e.seq;
  slot.activity = e.activity->name;
  trace_head_ = trace_head_ + 1 == trace_cap_ ? 0 : trace_head_ + 1;
  if (trace_count_ < trace_cap_) {
    ++trace_count_;
  } else {
    ++trace_dropped_;
  }
}

void Kernel::FiberMain(void* arg) {
  auto* a = static_cast<Activity*>(arg);
  Kernel* kernel = a->kernel;
  std::exception_ptr caught;
  try {
    a->body();
  } catch (...) {
    caught = std::current_exception();
  }
  if (caught != nullptr && kernel->failure_ == nullptr) kernel->failure_ = caught;
  a->finished = true;
  // Returning ends the fiber: Fiber::Trampoline switches back to Dispatch,
  // which releases the stack to the pool.
}

void Kernel::ThreadMain(Activity* a) {
  current_kernel_ = this;
  current_activity_ = a;
  std::exception_ptr caught;
  try {
    a->body();
  } catch (...) {
    caught = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (caught != nullptr && failure_ == nullptr) failure_ = caught;
  a->finished = true;
  running_ = nullptr;
  kernel_cv_.notify_one();
}

void Kernel::WaitUntil(SimTime t) {
  ITC_CHECK(current_kernel_ == this && current_activity_ != nullptr);
  if (t <= now_) return;
  Activity* self = current_activity_;
  if (backend_ == KernelBackend::kFiber) {
    PushEvent(t, self, /*may_grow=*/false);
    self->fiber.Suspend();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  PushEvent(t, self, /*may_grow=*/false);
  self->resume = false;
  running_ = nullptr;
  kernel_cv_.notify_one();
  self->cv.wait(lock, [self] { return self->resume; });
}

Kernel* Kernel::Current() { return current_kernel_; }

void Kernel::EnableTrace(size_t capacity) {
  ITC_CHECK(capacity > 0);
  trace_cap_ = capacity;
  trace_buf_.assign(capacity, TraceEntry{});
  trace_head_ = 0;
  trace_count_ = 0;
  trace_dropped_ = 0;
}

std::vector<TraceEntry> Kernel::trace() const {
  std::vector<TraceEntry> out;
  out.reserve(trace_count_);
  const size_t start = (trace_head_ + trace_cap_ - trace_count_) % (trace_cap_ == 0 ? 1 : trace_cap_);
  for (size_t i = 0; i < trace_count_; ++i) {
    out.push_back(trace_buf_[(start + i) % trace_cap_]);
  }
  return out;
}

SimTime Charge(Resource& resource, SimTime arrival, SimTime demand) {
  Kernel* kernel = Kernel::Current();
  if (kernel != nullptr) kernel->WaitUntil(arrival);
  return resource.Serve(arrival, demand);
}

void AlignTo(SimTime t) {
  Kernel* kernel = Kernel::Current();
  if (kernel != nullptr) kernel->WaitUntil(t);
}

}  // namespace itc::sim
