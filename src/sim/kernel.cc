#include "src/sim/kernel.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace itc::sim {

// An activity is a cooperative thread: started lazily at its first event,
// parked on its own condition variable whenever it suspends. `resume` and
// `finished` are guarded by the kernel's mutex.
struct Kernel::Activity {
  std::string name;
  std::function<void()> body;
  std::thread thread;
  std::condition_variable cv;
  bool started = false;
  bool resume = false;
  bool finished = false;
};

thread_local Kernel* Kernel::current_kernel_ = nullptr;
thread_local Kernel::Activity* Kernel::current_activity_ = nullptr;

Kernel::Kernel() = default;

Kernel::~Kernel() {
  // Run() joins every started thread before returning, and an unstarted
  // activity has no thread; nothing can still be parked here.
  for (auto& a : activities_) {
    ITC_CHECK(!a->thread.joinable());
  }
}

void Kernel::Spawn(std::string name, SimTime start, std::function<void()> body) {
  ITC_CHECK(Current() == nullptr);  // spawning from an activity is not supported
  auto a = std::make_unique<Activity>();
  a->name = std::move(name);
  a->body = std::move(body);
  queue_.push(Event{std::max(start, now_), next_seq_++, a.get()});
  activities_.push_back(std::move(a));
}

void Kernel::Run() {
  ITC_CHECK(Current() == nullptr);  // no nested Run() from an activity body
  for (;;) {
    Event e;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      e = queue_.top();
      queue_.pop();
    }
    ITC_CHECK(e.time >= now_);  // the heap never yields a past event
    now_ = e.time;
    if (trace_enabled_) trace_.push_back(TraceEntry{e.time, e.seq, e.activity->name});
    Dispatch(e.activity);
  }
  // An unfinished activity would be parked in WaitUntil with its event still
  // queued; an empty queue therefore implies every body ran to completion.
  for (auto& a : activities_) {
    ITC_CHECK(a->finished || !a->started);
    if (a->thread.joinable()) a->thread.join();
  }
  if (failure_ != nullptr) {
    std::exception_ptr f = std::exchange(failure_, nullptr);
    std::rethrow_exception(f);
  }
}

void Kernel::Dispatch(Activity* a) {
  std::unique_lock<std::mutex> lock(mu_);
  running_ = a;
  if (!a->started) {
    a->started = true;
    a->thread = std::thread(&Kernel::ActivityMain, this, a);
  } else {
    a->resume = true;
    a->cv.notify_one();
  }
  kernel_cv_.wait(lock, [this] { return running_ == nullptr; });
}

void Kernel::ActivityMain(Activity* a) {
  current_kernel_ = this;
  current_activity_ = a;
  std::exception_ptr caught;
  try {
    a->body();
  } catch (...) {
    caught = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (caught != nullptr && failure_ == nullptr) failure_ = caught;
  a->finished = true;
  running_ = nullptr;
  kernel_cv_.notify_one();
}

void Kernel::WaitUntil(SimTime t) {
  ITC_CHECK(current_kernel_ == this && current_activity_ != nullptr);
  if (t <= now_) return;
  Activity* self = current_activity_;
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push(Event{t, next_seq_++, self});
  self->resume = false;
  running_ = nullptr;
  kernel_cv_.notify_one();
  self->cv.wait(lock, [self] { return self->resume; });
}

Kernel* Kernel::Current() { return current_kernel_; }

SimTime Charge(Resource& resource, SimTime arrival, SimTime demand) {
  Kernel* kernel = Kernel::Current();
  if (kernel != nullptr) kernel->WaitUntil(arrival);
  return resource.Serve(arrival, demand);
}

void AlignTo(SimTime t) {
  Kernel* kernel = Kernel::Current();
  if (kernel != nullptr) kernel->WaitUntil(t);
}

}  // namespace itc::sim
