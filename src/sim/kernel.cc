#include "src/sim/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/kernel_group.h"

namespace itc::sim {

// An activity is a cooperative execution context. Under kFiber it runs on a
// pooled fiber stack; under kThread it is a thread started lazily at its
// first event and parked on its own mutex/condvar pair whenever it suspends.
// `home` is the kernel that spawned it (owns the memory, joins the thread);
// `host` is the kernel currently dispatching it, which differs from `home`
// while the activity is migrated across a shard boundary.
struct Kernel::Activity {
  std::string name;
  std::function<void()> body;
  Kernel* home = nullptr;
  Kernel* host = nullptr;
  bool started = false;
  bool finished = false;
  // Pending cross-shard handoff, set by MigrateOut before suspending and
  // performed by the hosting kernel's Dispatch once the activity is parked.
  Kernel* migrate_to = nullptr;
  SimTime migrate_time = 0;
  uint64_t migrate_seq = 0;
  // kFiber backend.
  Fiber fiber;
  // kThread backend. The park pair is per-activity (not per-kernel) so a
  // different shard's kernel can wake a migrated activity.
  std::thread thread;
  std::mutex park_mu;
  std::condition_variable park_cv;
  bool resume = false;  // guarded by park_mu
};

thread_local Kernel* Kernel::current_kernel_ = nullptr;
thread_local Kernel::Activity* Kernel::current_activity_ = nullptr;

KernelBackend DefaultKernelBackend() {
  static const KernelBackend backend = [] {
    const char* env = std::getenv("ITCFS_KERNEL_BACKEND");
    if (env != nullptr && std::strcmp(env, "thread") == 0) return KernelBackend::kThread;
    return KernelBackend::kFiber;
  }();
  return backend;
}

const char* KernelBackendName(KernelBackend backend) {
  return backend == KernelBackend::kFiber ? "fiber" : "thread";
}

Kernel::Kernel(KernelBackend backend) : backend_(backend) {}

Kernel::~Kernel() {
  // Run() / KernelGroup::Run() joins every started thread (and releases
  // every fiber stack) before returning, and an unstarted activity holds
  // neither; nothing can still be parked here.
  for (auto& a : activities_) {
    ITC_CHECK(!a->thread.joinable());
  }
}

void Kernel::Spawn(std::string name, SimTime start, std::function<void()> body) {
  ITC_CHECK(Current() == nullptr);  // spawning from an activity is not supported
  auto a = std::make_unique<Activity>();
  a->name = std::move(name);
  a->body = std::move(body);
  a->home = this;
  a->host = this;
  PushEvent(std::max(start, now_), a.get(), /*may_grow=*/true);
  activities_.push_back(std::move(a));
}

void Kernel::PushEvent(SimTime time, Activity* activity, bool may_grow) {
  // Every activity has at most one pending event (its spawn event or its
  // current WaitUntil), so the capacity built up while spawning bounds the
  // heap for the whole run and the steady-state push below cannot
  // reallocate. The check turns any future violation of that invariant into
  // a crash instead of a silent allocation. Kernels in a group are exempt:
  // activities migrated in add events beyond the spawn-time bound.
  if (!may_grow) ITC_CHECK(heap_.size() < heap_.capacity());
  // itcfs-lint: allow(no-alloc-in-kernel-hot-path-transitive) -- capacity-checked above; steady state never grows
  heap_.push_back(Event{time, next_seq_++, activity});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void Kernel::PushArrival(SimTime time, uint64_t seq, Activity* activity) {
  ITC_CHECK(time >= now_);  // the conservative gate kept us below this arrival
  activity->host = this;
  // itcfs-lint: allow(no-alloc-in-kernel-hot-path-transitive) -- arrival rate is bounded by cross-shard traffic, not the event rate
  heap_.push_back(Event{time, seq, activity});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void Kernel::Run() {
  ITC_CHECK(Current() == nullptr);  // no nested Run() from an activity body
  ITC_CHECK(group_ == nullptr);     // shards are driven by KernelGroup::Run
  while (!heap_.empty()) {
    StepOne();
  }
  // An unfinished activity would be parked in WaitUntil with its event still
  // queued; an empty heap therefore implies every body ran to completion.
  JoinActivityThreads();
  if (failure_ != nullptr) {
    std::exception_ptr f = std::exchange(failure_, nullptr);
    std::rethrow_exception(f);
  }
}

void Kernel::RunShard() {
  ITC_CHECK(group_ != nullptr);
  ITC_CHECK(Current() == nullptr);
  for (;;) {
    DrainMail();
    const SimTime t_next = heap_.empty() ? kNeverSimTime : heap_.front().time;
    // Publish the promise first, then gate on the other shards: nothing
    // below t_next will be dispatched here, so nothing this shard sends can
    // be timestamped below t_next + lookahead.
    lb_.store(t_next);
    group_->WakeWaiters();  // the raised bound may open another shard's horizon
    const KernelGroup::Gate gate = group_->AwaitSafe(shard_, t_next);
    if (gate == KernelGroup::Gate::kDone) break;
    if (gate == KernelGroup::Gate::kRetry) continue;
    StepOne();
  }
}

void Kernel::StepOne() {
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  const Event e = heap_.back();
  heap_.pop_back();
  ITC_CHECK(e.time >= now_);  // the heap never yields a past event
  now_ = e.time;
  ++events_dispatched_;
  if (trace_cap_ != 0) RecordTrace(e);
  Dispatch(e.activity);
}

void Kernel::JoinActivityThreads() {
  for (auto& a : activities_) {
    ITC_CHECK(a->finished || !a->started);
    if (a->thread.joinable()) a->thread.join();
  }
}

void Kernel::Dispatch(Activity* a) {
  if (backend_ == KernelBackend::kFiber) {
    // Everything runs on this one OS thread; the thread-locals describe
    // whichever activity holds the processor between the two switches.
    current_kernel_ = this;
    current_activity_ = a;
    a->host = this;
    if (!a->started) {
      a->started = true;
      a->fiber.Start(&Kernel::FiberMain, a);
    }
    a->fiber.Resume();
    current_kernel_ = nullptr;
    current_activity_ = nullptr;
    if (a->finished) a->fiber.ReleaseStack();
  } else {
    // kThread: hand the baton to `a` and block until it suspends, migrates
    // or finishes.
    if (!a->started) {
      a->started = true;
      a->host = this;
      a->thread = std::thread(&Kernel::ThreadMain, a);
    } else {
      {
        std::lock_guard<std::mutex> park(a->park_mu);
        a->host = this;
        a->resume = true;
      }
      a->park_cv.notify_one();
    }
    AwaitBaton();
  }
  // A pending migration is performed here — after the activity is fully
  // parked (its fiber suspended / its thread blocked on park_cv), and before
  // this shard publishes a higher lower bound, so the receiving shard can
  // neither resume a still-running context nor have advanced past the
  // message's timestamp.
  if (!a->finished && a->migrate_to != nullptr) {
    ITC_CHECK(group_ != nullptr);
    Kernel* target = std::exchange(a->migrate_to, nullptr);
    target->EnqueueMail(Mail{a->migrate_time, a->migrate_seq, a, /*adopt=*/false});
    group_->NoteMessageSent();
  }
}

void Kernel::EnqueueMail(const Mail& mail) {
  std::lock_guard<std::mutex> lock(mail_mu_);
  mail_.push_back(mail);
  if (mail.time < mail_min_.load()) mail_min_.store(mail.time);
}

void Kernel::DrainMail() {
  if (mail_min_.load() == kNeverSimTime) return;
  std::vector<Mail> taken;
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    taken.swap(mail_);
    // Keep the published bound covering the taken timestamps until the event
    // loop republishes from the heap: at no instant may this shard's
    // effective bound jump above work it actually holds (the group's
    // termination detector relies on that).
    SimTime floor = lb_.load();
    for (const Mail& m : taken) floor = std::min(floor, m.time);
    lb_.store(floor);
    mail_min_.store(kNeverSimTime);
  }
  for (const Mail& m : taken) {
    // itcfs-lint: allow(no-alloc-in-kernel-hot-path-transitive) -- adoption rate is bounded by cross-shard one-shot posts, not the event rate
    if (m.adopt) activities_.emplace_back(m.activity);
    PushArrival(m.time, m.seq, m.activity);
  }
}

void Kernel::PostMail(SimTime time, uint64_t seq, std::string name,
                      std::function<void()> body) {
  auto a = std::make_unique<Activity>();
  a->name = std::move(name);
  a->body = std::move(body);
  a->home = this;
  a->host = this;
  EnqueueMail(Mail{time, seq, a.release(), /*adopt=*/true});
}

void Kernel::MigrateOut(Kernel* target, SimTime t, uint64_t seq) {
  ITC_CHECK(current_kernel_ == this && current_activity_ != nullptr);
  ITC_CHECK(group_ != nullptr);
  Activity* self = current_activity_;
  self->migrate_to = target;
  self->migrate_time = t;
  self->migrate_seq = seq;
  if (backend_ == KernelBackend::kFiber) {
    self->fiber.Suspend();
    // Resumed by the target shard's Dispatch, which bound this thread's
    // locals before the switch. Do NOT write them here: the fiber now runs
    // on a different OS thread, and the compiler may have cached the TLS
    // address from before the suspend — the store would land in the origin
    // thread's slot.
  } else {
    {
      std::lock_guard<std::mutex> park(self->park_mu);
      self->resume = false;
    }
    ReturnBaton();
    std::unique_lock<std::mutex> park(self->park_mu);
    self->park_cv.wait(park, [self] { return self->resume; });
    // This activity's dedicated OS thread must now point at its new host
    // (same thread across the park, so the TLS slot is its own).
    current_kernel_ = self->host;
    current_activity_ = self;
  }
}

void Kernel::RecordTrace(const Event& e) {
  // In-place ring write: no growth, and activity names are short enough that
  // the string assignment reuses the slot's existing buffer after the first
  // lap (or SSO storage).
  TraceEntry& slot = trace_buf_[trace_head_];
  slot.time = e.time;
  slot.seq = e.seq;
  slot.activity = e.activity->name;
  trace_head_ = trace_head_ + 1 == trace_cap_ ? 0 : trace_head_ + 1;
  if (trace_count_ < trace_cap_) {
    ++trace_count_;
  } else {
    ++trace_dropped_;
  }
}

void Kernel::FiberMain(void* arg) {
  auto* a = static_cast<Activity*>(arg);
  std::exception_ptr caught;
  try {
    a->body();
  } catch (...) {
    caught = std::current_exception();
  }
  Kernel* host = a->host;  // the kernel dispatching this final slice
  if (caught != nullptr && host->failure_ == nullptr) host->failure_ = caught;
  a->finished = true;
  // Returning ends the fiber: Fiber::Trampoline switches back to Dispatch,
  // which releases the stack to the pool.
}

void Kernel::ThreadMain(Activity* a) {
  current_activity_ = a;
  current_kernel_ = a->host;
  std::exception_ptr caught;
  try {
    a->body();
  } catch (...) {
    caught = std::current_exception();
  }
  Kernel* host = current_kernel_;  // the kernel dispatching this final slice
  {
    std::lock_guard<std::mutex> lock(host->mu_);
    if (caught != nullptr && host->failure_ == nullptr) host->failure_ = caught;
    a->finished = true;
    host->baton_returned_ = true;
  }
  host->kernel_cv_.notify_one();
}

void Kernel::AwaitBaton() {
  std::unique_lock<std::mutex> lock(mu_);
  kernel_cv_.wait(lock, [this] { return baton_returned_; });
  baton_returned_ = false;
}

void Kernel::ReturnBaton() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    baton_returned_ = true;
  }
  kernel_cv_.notify_one();
}

void Kernel::WaitUntil(SimTime t) {
  ITC_CHECK(current_kernel_ == this && current_activity_ != nullptr);
  if (t <= now_) return;
  Activity* self = current_activity_;
  if (backend_ == KernelBackend::kFiber) {
    PushEvent(t, self, /*may_grow=*/group_ != nullptr);
    self->fiber.Suspend();
    return;
  }
  PushEvent(t, self, /*may_grow=*/group_ != nullptr);
  {
    std::lock_guard<std::mutex> park(self->park_mu);
    self->resume = false;
  }
  ReturnBaton();
  std::unique_lock<std::mutex> park(self->park_mu);
  self->park_cv.wait(park, [self] { return self->resume; });
}

Kernel* Kernel::Current() { return current_kernel_; }

void Kernel::EnableTrace(size_t capacity) {
  ITC_CHECK(capacity > 0);
  trace_cap_ = capacity;
  trace_buf_.assign(capacity, TraceEntry{});
  trace_head_ = 0;
  trace_count_ = 0;
  trace_dropped_ = 0;
}

std::vector<TraceEntry> Kernel::trace() const {
  std::vector<TraceEntry> out;
  out.reserve(trace_count_);
  const size_t start = (trace_head_ + trace_cap_ - trace_count_) % (trace_cap_ == 0 ? 1 : trace_cap_);
  for (size_t i = 0; i < trace_count_; ++i) {
    out.push_back(trace_buf_[(start + i) % trace_cap_]);
  }
  return out;
}

SimTime Charge(Resource& resource, SimTime arrival, SimTime demand) {
  Kernel* kernel = Kernel::Current();
  if (kernel != nullptr) kernel->WaitUntil(arrival);
  return resource.Serve(arrival, demand);
}

void AlignTo(SimTime t) {
  Kernel* kernel = Kernel::Current();
  if (kernel != nullptr) kernel->WaitUntil(t);
}

}  // namespace itc::sim
