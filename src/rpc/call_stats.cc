#include "src/rpc/call_stats.h"

#include <algorithm>
#include <bit>

namespace itc::rpc {

std::string_view CallClassName(CallClass c) {
  switch (c) {
    case CallClass::kValidate: return "validate";
    case CallClass::kStatus: return "status";
    case CallClass::kFetch: return "fetch";
    case CallClass::kStore: return "store";
    case CallClass::kOther: return "other";
  }
  return "?";
}

namespace {
int BucketFor(SimTime latency) {
  if (latency <= 0) return 0;
  int b = std::bit_width(static_cast<uint64_t>(latency));
  return std::min(b, LatencyHistogram::kBuckets - 1);
}
}  // namespace

void LatencyHistogram::Record(SimTime latency) {
  if (latency < 0) latency = 0;
  buckets_[BucketFor(latency)] += 1;
  if (count_ == 0 || latency < min_) min_ = latency;
  if (latency > max_) max_ = latency;
  sum_ += latency;
  count_ += 1;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

double LatencyHistogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

SimTime LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper bound of bucket i is 2^i - 1 micros (bucket 0 holds zeros).
      SimTime upper = (i == 0) ? 0 : static_cast<SimTime>((uint64_t{1} << i) - 1);
      return std::min(upper, max_);
    }
  }
  return max_;
}

void CallStats::Record(uint32_t opcode, std::string_view name, CallClass call_class,
                       SimTime latency, uint64_t bytes_in, uint64_t bytes_out,
                       Status outcome) {
  OpStats& op = per_op_[opcode];
  op.name = name;
  op.call_class = call_class;
  op.calls += 1;
  op.bytes_in += bytes_in;
  op.bytes_out += bytes_out;
  op.latency.Record(latency);
  if (outcome != Status::kOk) {
    op.errors += 1;
    op.error_codes[outcome] += 1;
  }
}

const OpStats* CallStats::Find(uint32_t opcode) const {
  auto it = per_op_.find(opcode);
  return it == per_op_.end() ? nullptr : &it->second;
}

uint64_t CallStats::total_calls() const {
  uint64_t n = 0;
  for (const auto& [op, s] : per_op_) n += s.calls;
  return n;
}

uint64_t CallStats::total_errors() const {
  uint64_t n = 0;
  for (const auto& [op, s] : per_op_) n += s.errors;
  return n;
}

uint64_t CallStats::total_bytes_in() const {
  uint64_t n = 0;
  for (const auto& [op, s] : per_op_) n += s.bytes_in;
  return n;
}

uint64_t CallStats::total_bytes_out() const {
  uint64_t n = 0;
  for (const auto& [op, s] : per_op_) n += s.bytes_out;
  return n;
}

std::map<CallClass, uint64_t> CallStats::Histogram() const {
  std::map<CallClass, uint64_t> h;
  for (const auto& [op, s] : per_op_) h[s.call_class] += s.calls;
  return h;
}

void CallStats::Merge(const CallStats& other) {
  for (const auto& [op, s] : other.per_op_) {
    OpStats& mine = per_op_[op];
    mine.name = s.name;
    mine.call_class = s.call_class;
    mine.calls += s.calls;
    mine.errors += s.errors;
    mine.bytes_in += s.bytes_in;
    mine.bytes_out += s.bytes_out;
    mine.latency.Merge(s.latency);
    for (const auto& [code, n] : s.error_codes) mine.error_codes[code] += n;
  }
}

}  // namespace itc::rpc
