// Composable interceptor chains for the RPC package.
//
// Server side, every decrypted call runs through the endpoint's chain:
//
//   tracing (CallStats) -> fault injection -> [dispatch + resource charging]
//
// Client side, every stub call runs through the connection's chain:
//
//   tracing (CallStats) -> retry/backoff -> deadline -> [seal + ship]
//
// The retry interceptor implements §3.5.3's RPC-level reliability for the
// datagram transport: only idempotent operations (per the op schema) are
// retried, so mutators keep at-most-once semantics. The fault-injection
// interceptor gives availability tests a seeded, deterministic way to fail a
// server (or drop individual replies) without poking server internals.

#ifndef SRC_RPC_INTERCEPTOR_H_
#define SRC_RPC_INTERCEPTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/rpc/call_stats.h"
#include "src/rpc/op_registry.h"
#include "src/rpc/rpc.h"
#include "src/sim/clock.h"

namespace itc::rpc {

// --- Server side -------------------------------------------------------------

// Adversarial moments inside a mutating Vice operation at which a test can
// schedule a server crash (tentpole 4 of the crash-recovery subsystem). The
// server's handlers poll ConsumeCrashAt() at each point:
//   kBeforeLogAppend — crash before the intention is logged: the op leaves
//     no trace at all; after restart it is simply absent.
//   kAfterLogAppend — the intention is durable but uncommitted: recovery
//     must DISCARD it (the client never got a reply; §3.5 store-on-close
//     atomicity).
//   kBeforeReply — applied and committed, reply lost: recovery must REPLAY
//     it; the client sees a transport failure for a change that stuck.
enum class CrashPoint : uint8_t {
  kNone = 0,
  kBeforeLogAppend,
  kAfterLogAppend,
  kBeforeReply,
};

// Per-call metadata visible to server interceptors. `op` is null for opcodes
// outside the registered schema (including the legacy Service path).
// `arrival` may be pushed later by a delay-injecting interceptor; the
// terminal stage serves CPU/disk from it and stores the reply-departure time
// through `completion`.
struct ServerCallInfo {
  const OpSpec* op = nullptr;
  uint32_t opcode = 0;
  UserId user = kAnonymousUser;
  NodeId client_node = kInvalidNode;
  SimTime arrival = 0;
  SimTime* completion = nullptr;
};

class ServerInterceptor {
 public:
  using Next = std::function<Result<Bytes>(const Bytes& request)>;

  virtual ~ServerInterceptor() = default;
  [[nodiscard]] virtual Result<Bytes> Intercept(ServerCallInfo& info, const Bytes& request,
                                  const Next& next) = 0;
};

class ServerInterceptorChain {
 public:
  // Interceptors are not owned; they run in insertion order (first added is
  // outermost).
  void Add(ServerInterceptor* interceptor) { interceptors_.push_back(interceptor); }

  [[nodiscard]] Result<Bytes> Run(ServerCallInfo& info, const Bytes& request,
                    const ServerInterceptor::Next& terminal) const;

 private:
  [[nodiscard]] Result<Bytes> RunFrom(size_t index, ServerCallInfo& info, const Bytes& request,
                        const ServerInterceptor::Next& terminal) const;

  std::vector<ServerInterceptor*> interceptors_;
};

// Records every call into a CallStats table: count, bytes in/out, latency
// (reply departure minus arrival), and the outcome status. For schema ops
// the application status is peeked from the reply prologue; transport-level
// failures are recorded under their own status code.
class ServerTracingInterceptor : public ServerInterceptor {
 public:
  explicit ServerTracingInterceptor(CallStats* stats) : stats_(stats) {}

  [[nodiscard]] Result<Bytes> Intercept(ServerCallInfo& info, const Bytes& request,
                          const Next& next) override;

 private:
  CallStats* stats_;
};

// Seeded fault injection (drop / delay / error, filtered by call class via
// FaultConfig), plus two deterministic controls for tests:
//   * set_fail_all(true) — total outage: every call (and, via the endpoint,
//     every handshake) fails kUnavailable until cleared;
//   * DropNextReplies(n, cls) — the next n matching calls EXECUTE on the
//     server but their replies are lost, which is exactly the §3.5.3 case
//     that distinguishes retryable idempotent ops from at-most-once mutators.
class FaultInjectionInterceptor : public ServerInterceptor {
 public:
  explicit FaultInjectionInterceptor(uint64_t seed) : rng_(seed) {}

  void set_config(const FaultConfig& config) { config_ = config; }
  const FaultConfig& config() const { return config_; }

  void set_fail_all(bool v) { fail_all_ = v; }
  bool fail_all() const { return fail_all_; }

  void DropNextReplies(uint32_t n, std::optional<CallClass> only_class = std::nullopt) {
    drop_replies_ = n;
    drop_replies_class_ = only_class;
  }

  // After letting `skip` calls through, fails the next `count` calls with
  // `error` (not executed). Deterministic: lets a test target a specific
  // call inside a multi-RPC client operation (e.g. the trailing Close of
  // ReadWholeFile) without guessing at seeded probabilities.
  void FailCalls(uint32_t skip, uint32_t count, Status error = Status::kUnavailable) {
    fail_skip_ = skip;
    fail_count_ = count;
    fail_error_ = error;
  }

  // Arms a one-shot crash at `point`: the next handler that polls
  // ConsumeCrashAt(point) sees true (and the armed point clears). The
  // handler then calls ViceServer::SimulateCrash and aborts the call.
  void ArmCrash(CrashPoint point) { armed_crash_ = point; }
  CrashPoint armed_crash() const { return armed_crash_; }
  bool ConsumeCrashAt(CrashPoint point) {
    if (armed_crash_ != point || point == CrashPoint::kNone) return false;
    armed_crash_ = CrashPoint::kNone;
    return true;
  }

  [[nodiscard]] Result<Bytes> Intercept(ServerCallInfo& info, const Bytes& request,
                          const Next& next) override;

 private:
  static bool Matches(const ServerCallInfo& info, const std::optional<CallClass>& only);

  FaultConfig config_;
  Rng rng_;
  bool fail_all_ = false;
  uint32_t drop_replies_ = 0;
  std::optional<CallClass> drop_replies_class_;
  uint32_t fail_skip_ = 0;
  uint32_t fail_count_ = 0;
  Status fail_error_ = Status::kUnavailable;
  CrashPoint armed_crash_ = CrashPoint::kNone;
};

// --- Client side -------------------------------------------------------------

struct ClientCallInfo {
  const OpSpec* op = nullptr;
  uint32_t opcode = 0;
  NodeId server_node = kInvalidNode;
  sim::Clock* clock = nullptr;
  Transport transport = Transport::kDatagram;
  uint32_t attempts = 1;  // total send attempts (retries bump it)
};

class ClientInterceptor {
 public:
  using Next = std::function<Result<Bytes>(const Bytes& request)>;

  virtual ~ClientInterceptor() = default;
  [[nodiscard]] virtual Result<Bytes> Intercept(ClientCallInfo& info, const Bytes& request,
                                  const Next& next) = 0;
};

class ClientInterceptorChain {
 public:
  void Add(std::unique_ptr<ClientInterceptor> interceptor) {
    interceptors_.push_back(std::move(interceptor));
  }
  bool empty() const { return interceptors_.empty(); }

  [[nodiscard]] Result<Bytes> Run(ClientCallInfo& info, const Bytes& request,
                    const ClientInterceptor::Next& terminal) const;

 private:
  [[nodiscard]] Result<Bytes> RunFrom(size_t index, ClientCallInfo& info, const Bytes& request,
                        const ClientInterceptor::Next& terminal) const;

  std::vector<std::unique_ptr<ClientInterceptor>> interceptors_;
};

// Client-side view of the same per-op accounting: latency is the full round
// trip including retries and backoff, as the workstation experienced it.
class ClientTracingInterceptor : public ClientInterceptor {
 public:
  explicit ClientTracingInterceptor(CallStats* stats) : stats_(stats) {}

  [[nodiscard]] Result<Bytes> Intercept(ClientCallInfo& info, const Bytes& request,
                          const Next& next) override;

 private:
  CallStats* stats_;
};

// Retries transport failures (kUnavailable, kTimedOut) with doubling backoff
// — datagram transport only, idempotent ops only (§3.5.3: the stream
// transport already guarantees delivery; mutators must stay at-most-once).
class RetryInterceptor : public ClientInterceptor {
 public:
  explicit RetryInterceptor(RetryPolicy policy) : policy_(policy) {}

  [[nodiscard]] Result<Bytes> Intercept(ClientCallInfo& info, const Bytes& request,
                          const Next& next) override;

 private:
  RetryPolicy policy_;
};

// Converts any attempt whose round trip exceeds `deadline` into kTimedOut.
// Sits inside the retry interceptor, so the deadline is per attempt and a
// timed-out idempotent call is retried.
class DeadlineInterceptor : public ClientInterceptor {
 public:
  explicit DeadlineInterceptor(SimTime deadline) : deadline_(deadline) {}

  [[nodiscard]] Result<Bytes> Intercept(ClientCallInfo& info, const Bytes& request,
                          const Next& next) override;

 private:
  SimTime deadline_;
};

}  // namespace itc::rpc

#endif  // SRC_RPC_INTERCEPTOR_H_
