// Typed operation registry for RPC services.
//
// Every service (the Vice file server, the protection server) describes its
// procedures once in an OpSchema — `{opcode, name, CallClass, idempotent,
// flags, wire docs}` — and binds handlers into an OpRegistry. The server
// endpoint dispatches through the registry instead of a hand-rolled opcode
// switch, which gives every layer the same metadata: the tracing interceptor
// labels CallStats entries from it, the client-side retry interceptor
// consults `idempotent` (§3.5.3 at-most-once semantics for mutators), and
// docs/PROTOCOL.md's opcode tables are rendered from it (RenderOpTable), so
// the document cannot drift from the code.

#ifndef SRC_RPC_OP_REGISTRY_H_
#define SRC_RPC_OP_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/rpc/call_stats.h"

namespace itc::rpc {

class CallContext;

// Static description of one procedure. `flags` carries service-defined bits
// (e.g. vice::kOpChargesPathname); `request_doc`/`reply_doc` are the wire
// formats as they appear in docs/PROTOCOL.md (verbatim markdown).
struct OpSpec {
  uint32_t opcode = 0;
  std::string_view name;
  CallClass call_class = CallClass::kOther;
  bool idempotent = false;
  uint32_t flags = 0;
  std::string_view request_doc = "\xe2\x80\x94";  // "—"
  std::string_view reply_doc = "\xe2\x80\x94";
};

// The full, immutable procedure table of one service.
class OpSchema {
 public:
  OpSchema(std::string_view service_name, std::initializer_list<OpSpec> ops);

  std::string_view service_name() const { return service_name_; }
  // Ascending opcode order.
  const std::vector<OpSpec>& ops() const { return ops_; }
  const OpSpec* Find(uint32_t opcode) const;

 private:
  std::string_view service_name_;
  std::vector<OpSpec> ops_;
};

using OpHandler = std::function<Result<Bytes>(CallContext& ctx, const Bytes& request)>;

// Handler bindings for a schema. Dispatch of an opcode that is unknown or
// unbound yields kProtocolError — the same clean error a malformed request
// body produces, never a crash.
class OpRegistry {
 public:
  explicit OpRegistry(const OpSchema* schema);

  const OpSchema& schema() const { return *schema_; }

  // Dies (ITC_CHECK) if the opcode is not in the schema or is already bound:
  // both are wiring bugs, not runtime conditions.
  void Bind(uint32_t opcode, OpHandler handler);
  bool Bound(uint32_t opcode) const { return handlers_.contains(opcode); }

  [[nodiscard]] Result<Bytes> Dispatch(CallContext& ctx, uint32_t opcode, const Bytes& request) const;

 private:
  const OpSchema* schema_;
  std::unordered_map<uint32_t, OpHandler> handlers_;
};

// Renders the schema's opcode table as the GitHub-markdown block embedded in
// docs/PROTOCOL.md between BEGIN/END GENERATED markers; protocol_doc_test
// compares the two so the doc cannot drift.
std::string RenderOpTable(const OpSchema& schema);

}  // namespace itc::rpc

#endif  // SRC_RPC_OP_REGISTRY_H_
