// Wire-format serialization for RPC requests and replies.
//
// A deliberately simple, explicit little-endian format: fixed-width
// integers, length-prefixed strings/byte-strings. Writer never fails;
// Reader is bounds-checked and returns kProtocolError on malformed input
// (which, combined with the encrypted envelope's integrity check, means a
// tampered or truncated message can never be misinterpreted).

#ifndef SRC_RPC_WIRE_H_
#define SRC_RPC_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/fid.h"
#include "src/common/result.h"
#include "src/common/types.h"

namespace itc::rpc {

class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void PutBytes(const Bytes& b) {
    PutU32(static_cast<uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void PutFid(const Fid& f) {
    PutU32(f.volume);
    PutU32(f.vnode);
    PutU32(f.uniquifier);
  }
  void PutStatus(Status s) { PutU32(static_cast<uint32_t>(s)); }

  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf) {}

  [[nodiscard]] Result<uint8_t> U8() {
    if (pos_ + 1 > buf_.size()) return Status::kProtocolError;
    return buf_[pos_++];
  }
  [[nodiscard]] Result<uint32_t> U32() {
    if (pos_ + 4 > buf_.size()) return Status::kProtocolError;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] Result<uint64_t> U64() {
    if (pos_ + 8 > buf_.size()) return Status::kProtocolError;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] Result<int64_t> I64() {
    ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  [[nodiscard]] Result<bool> Bool() {
    ASSIGN_OR_RETURN(uint8_t v, U8());
    return v != 0;
  }
  [[nodiscard]] Result<std::string> String() {
    ASSIGN_OR_RETURN(uint32_t n, U32());
    if (pos_ + n > buf_.size()) return Status::kProtocolError;
    std::string s(buf_.begin() + static_cast<ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }
  [[nodiscard]] Result<Bytes> BytesField() {
    ASSIGN_OR_RETURN(uint32_t n, U32());
    if (pos_ + n > buf_.size()) return Status::kProtocolError;
    Bytes b(buf_.begin() + static_cast<ptrdiff_t>(pos_),
            buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  [[nodiscard]] Result<Fid> FidField() {
    Fid f;
    ASSIGN_OR_RETURN(f.volume, U32());
    ASSIGN_OR_RETURN(f.vnode, U32());
    ASSIGN_OR_RETURN(f.uniquifier, U32());
    return f;
  }
  // Reads a Status encoded by PutStatus into *out. The return value reports
  // whether decoding succeeded; *out may itself be any (non-)OK Status.
  [[nodiscard]] Status ReadStatus(Status* out) {
    ASSIGN_OR_RETURN(uint32_t v, U32());
    *out = static_cast<Status>(v);
    return Status::kOk;
  }

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  const Bytes& buf_;
  size_t pos_ = 0;
};

// Encodes a reply carrying only a status code — the error shape every
// service shares.
inline Bytes StatusOnlyReply(Status s) {
  Writer w;
  w.PutStatus(s);
  return w.Take();
}

// Consumes a reply's status prologue and returns it; kProtocolError if the
// buffer is too short. Callers: RETURN_IF_ERROR(rpc::ExpectOk(r)); or
// `return rpc::ExpectOk(r);` for status-only replies.
[[nodiscard]] inline Status ExpectOk(Reader& r) {
  Status st = Status::kOk;
  RETURN_IF_ERROR(r.ReadStatus(&st));
  return st;
}

}  // namespace itc::rpc

#endif  // SRC_RPC_WIRE_H_
