#include "src/rpc/rpc.h"

#include "src/common/logging.h"
#include "src/crypto/cbc.h"
#include "src/rpc/interceptor.h"
#include "src/rpc/op_registry.h"
#include "src/rpc/wire.h"
#include "src/sim/kernel.h"
#include "src/sim/kernel_group.h"

#include <algorithm>

namespace itc::rpc {

namespace {

// Fixed per-message framing overhead on the wire (headers, addressing).
constexpr uint64_t kWireHeaderBytes = 32;

uint64_t WireSize(const Bytes& payload) { return payload.size() + kWireHeaderBytes; }

// In sharded mode a cross-cluster Transfer migrates the calling activity to
// the destination shard, and the reply transfer normally carries it home.
// Early exits — partition timeouts, handler failures, a handshake leg that
// fails authentication — would otherwise strand the client's activity on
// the server's shard. This guard walks it home on every exit path: a no-op
// when the activity is already on its home shard (all success paths, and
// everything outside a kernel group). Failure paths that end mid-flight on
// the far shard pay up to one extra lookahead of virtual time for the hop
// home; timeout paths (the common case) are already past it.
class HomeShardGuard {
 public:
  HomeShardGuard(net::Network* network, NodeId home, sim::Clock* clock)
      : network_(network), home_(home), clock_(clock) {}
  ~HomeShardGuard() {
    sim::KernelGroup* group = sim::KernelGroup::Current();
    if (group == nullptr) return;
    const ClusterId domain = network_->topology().ClusterOf(home_);
    sim::Kernel* host = sim::Kernel::Current();
    if (&group->shard(group->ShardOfDomain(domain)) == host) return;
    const SimTime at = std::max(clock_->now(), host->now() + group->lookahead());
    group->MigrateToDomain(domain, at);
    clock_->AdvanceTo(at);
  }
  HomeShardGuard(const HomeShardGuard&) = delete;
  HomeShardGuard& operator=(const HomeShardGuard&) = delete;

 private:
  net::Network* network_;
  NodeId home_;
  sim::Clock* clock_;
};

}  // namespace

ServerEndpoint::ServerEndpoint(NodeId node, net::Network* network, const sim::CostModel& cost,
                               RpcConfig config, KeyLookup key_lookup, uint64_t nonce_seed)
    : node_(node),
      network_(network),
      cost_(cost),
      config_(config),
      key_lookup_(std::move(key_lookup)),
      nonce_seed_(nonce_seed),
      cpu_("server.cpu.node" + std::to_string(node)),
      disk_("server.disk.node" + std::to_string(node)),
      tracing_(std::make_unique<ServerTracingInterceptor>(&call_stats_)),
      fault_(std::make_unique<FaultInjectionInterceptor>(nonce_seed ^ 0xfa017ull)),
      chain_(std::make_unique<ServerInterceptorChain>()) {
  fault_->set_config(config_.fault);
  chain_->Add(tracing_.get());
  chain_->Add(fault_.get());
}

ServerEndpoint::~ServerEndpoint() = default;

void ServerEndpoint::set_config(RpcConfig config) {
  config_ = config;
  fault_->set_config(config_.fault);
}

void ServerEndpoint::CloseConnectionsFrom(NodeId client_node) {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second.client_node == client_node) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t ServerEndpoint::ConnectionCountFrom(NodeId client_node) const {
  size_t n = 0;
  for (const auto& [id, conn] : connections_) {
    if (conn.client_node == client_node) ++n;
  }
  return n;
}

Result<Bytes> ServerEndpoint::HandleCall(uint64_t conn_id, NodeId client_node,
                                         const Bytes& sealed_request, SimTime arrival,
                                         SimTime* completion) {
  *completion = arrival;
  if (!online_ || fault_->fail_all()) return Status::kUnavailable;
  auto conn_it = connections_.find(conn_id);
  if (conn_it == connections_.end()) return Status::kConnectionBroken;
  ConnState& conn = conn_it->second;

  stats_.calls += 1;
  stats_.request_bytes += sealed_request.size();

  Bytes request;
  if (config_.encrypt) {
    auto opened = crypto::Open(conn.secret.session_key, sealed_request);
    if (!opened.ok()) return Status::kTamperDetected;
    request = std::move(*opened);
  } else {
    request = sealed_request;
  }

  Reader header(request);
  ASSIGN_OR_RETURN(uint32_t proc, header.U32());
  ASSIGN_OR_RETURN(uint64_t client_seq, header.U64());
  // Anti-replay: even a perfectly sealed frame captured off the wire is
  // rejected when presented a second time.
  if (client_seq <= conn.last_client_seq) return Status::kTamperDetected;
  conn.last_client_seq = client_seq;
  Bytes body(request.begin() + 12, request.end());

  ITC_CHECK(registry_ != nullptr || service_ != nullptr);
  ServerCallInfo info;
  info.op = registry_ != nullptr ? registry_->schema().Find(proc) : nullptr;
  info.opcode = proc;
  info.user = conn.user;
  info.client_node = client_node;
  info.arrival = arrival;
  info.completion = completion;

  // Terminal stage of the chain, executed as three suspendable stages so the
  // server's resources admit this call in arrival order relative to every
  // other client: (1) at info.arrival, the CPU cost of picking up the request
  // — structure switch + per-call base + request decrypt; (2) the handler
  // runs, then the CPU it reported plus the reply encrypt; (3) the disk
  // demand the handler accumulated, serialized after the CPU. Starts from
  // info.arrival so delay-injecting interceptors compose naturally.
  auto terminal = [&](const Bytes& b) -> Result<Bytes> {
    sim::AlignTo(info.arrival);
    SimTime pickup_cpu = cost_.server_cpu_per_call;
    pickup_cpu += config_.server_structure == ServerStructure::kProcessPerClient
                      ? cost_.server_context_switch
                      : cost_.server_lwp_switch;
    if (config_.encrypt) pickup_cpu += cost_.CryptoCpu(request.size());
    SimTime t = sim::Charge(cpu_, info.arrival, pickup_cpu);

    CallContext ctx(conn.user, client_node, info.arrival);
    Result<Bytes> dispatched = registry_ != nullptr
                                   ? registry_->Dispatch(ctx, proc, b)
                                   : service_->Dispatch(ctx, proc, b);
    if (!dispatched.ok()) return dispatched;
    Bytes reply = std::move(dispatched).value();

    SimTime reply_cpu = ctx.cpu_demand();
    if (config_.encrypt) reply_cpu += cost_.CryptoCpu(reply.size());
    t = sim::Charge(cpu_, t, reply_cpu);
    if (ctx.disk_ops() > 0 || ctx.disk_time() > 0) {
      const SimTime disk_demand =
          static_cast<SimTime>(ctx.disk_ops()) * cost_.disk_seek +
          static_cast<SimTime>(static_cast<double>(cost_.disk_per_kb) *
                               (static_cast<double>(ctx.disk_bytes()) / 1024.0)) +
          ctx.disk_time();
      t = sim::Charge(disk_, t, disk_demand);
    }
    if (ctx.completion_floor() > t) {
      // The handler waited on virtual time itself (lease expiry, grant
      // embargo), not on a server resource; no utilization is charged.
      sim::AlignTo(ctx.completion_floor());
      t = ctx.completion_floor();
    }
    *completion = t;
    return reply;
  };

  ASSIGN_OR_RETURN(Bytes reply, chain_->Run(info, body, terminal));

  stats_.reply_bytes += reply.size();
  if (config_.encrypt) {
    conn.seq += 1;
    return crypto::Seal(conn.secret.session_key, reply, conn.seq * 2 + 1);
  }
  return reply;
}

ClientConnection::ClientConnection(NodeId client_node, UserId user, ServerEndpoint* server,
                                   net::Network* network, const sim::CostModel& cost,
                                   sim::Clock* clock, uint64_t conn_id,
                                   crypto::SessionSecret secret, RpcConfig config,
                                   ClientOptions options)
    : client_node_(client_node),
      user_(user),
      server_(server),
      network_(network),
      cost_(cost),
      clock_(clock),
      conn_id_(conn_id),
      secret_(secret),
      config_(config),
      options_(options),
      chain_(std::make_unique<ClientInterceptorChain>()) {
  // Outermost first: tracing sees the whole call including retries; the
  // deadline is per attempt, inside the retry loop.
  if (options_.stats != nullptr) {
    chain_->Add(std::make_unique<ClientTracingInterceptor>(options_.stats));
  }
  if (config_.retry.max_retries > 0) {
    chain_->Add(std::make_unique<RetryInterceptor>(config_.retry));
  }
  if (config_.call_deadline > 0) {
    chain_->Add(std::make_unique<DeadlineInterceptor>(config_.call_deadline));
  }
}

ClientConnection::~ClientConnection() { server_->CloseConnection(conn_id_); }

Result<std::unique_ptr<ClientConnection>> ClientConnection::Connect(
    NodeId client_node, UserId user, const crypto::Key& user_key, ServerEndpoint* server,
    net::Network* network, const sim::CostModel& cost, sim::Clock* clock,
    uint64_t nonce_seed, ClientOptions options) {
  if (!server->online_ || server->fault_->fail_all()) return Status::kUnavailable;
  const RpcConfig config = server->config_;
  const SimTime stream_penalty =
      config.transport == Transport::kStream ? cost.stream_transport_overhead : 0;

  HomeShardGuard home_guard(network, client_node, clock);
  crypto::ClientHandshake client_hs(user, user_key, nonce_seed);
  crypto::ServerHandshake server_hs(server->key_lookup_,
                                    server->nonce_seed_ ^ (nonce_seed * 0x9e3779b9ull));

  // The handshake exchanges four small messages; each leg pays network time
  // and the server legs pay dispatch CPU. A partition can open mid-handshake,
  // so every leg checks reachability; a lost leg costs the client its full
  // RPC timeout.
  // `at_node` is where the undeparted leg sits when the loss is observed —
  // it picks the accounting bucket and names the shard the caller is on.
  const auto leg_lost = [&](SimTime at, NodeId at_node) {
    if (network->Reachable(client_node, server->node_, at)) return false;
    network->NotePartitionDrop(at_node);
    clock->AdvanceTo(at + cost.rpc_timeout);
    return true;
  };
  SimTime t = clock->now() + cost.client_cpu_per_rpc;

  Bytes m1 = client_hs.Start();
  if (leg_lost(t, client_node)) return Status::kUnavailable;
  t = network->Transfer(client_node, server->node_, WireSize(m1), t) + stream_penalty;
  t = sim::Charge(server->cpu_, t, cost.server_cpu_per_call);
  server->stats_.handshakes += 1;  // counted where the server sees the hello
  auto m2 = server_hs.HandleHello(m1);
  if (!m2.ok()) {
    server->stats_.auth_failures += 1;
    clock->AdvanceTo(t);
    return m2.status();
  }
  if (leg_lost(t, server->node_)) return Status::kUnavailable;
  t = network->Transfer(server->node_, client_node, WireSize(*m2), t) + stream_penalty;
  t += cost.client_cpu_per_rpc;
  auto m3 = client_hs.HandleChallenge(*m2);
  if (!m3.ok()) {
    clock->AdvanceTo(t);
    return m3.status();
  }
  if (leg_lost(t, client_node)) return Status::kUnavailable;
  t = network->Transfer(client_node, server->node_, WireSize(*m3), t) + stream_penalty;
  t = sim::Charge(server->cpu_, t, cost.server_cpu_per_call);
  auto m4 = server_hs.HandleResponse(*m3);
  if (!m4.ok()) {
    server->stats_.auth_failures += 1;
    clock->AdvanceTo(t);
    return m4.status();
  }
  // The server's side of the handshake is complete: install the connection
  // here, while the activity is still on the server's shard (mutating the
  // connection table after the m4 transfer would touch server state from the
  // client's shard). If the final leg is lost the entry stays behind — the
  // server granted a session the client never learned about — until the
  // client's next successful epoch drops it.
  const uint64_t conn_id = server->next_connection_id_++;
  server->connections_[conn_id] =
      ServerEndpoint::ConnState{server_hs.user(), server_hs.secret(), 0, 0, client_node};

  if (leg_lost(t, server->node_)) return Status::kUnavailable;
  t = network->Transfer(server->node_, client_node, WireSize(*m4), t) + stream_penalty;
  t += cost.client_cpu_per_rpc;
  auto secret = client_hs.HandleSessionGrant(*m4);
  clock->AdvanceTo(t);
  if (!secret.ok()) return secret.status();

  // Both sides have independently derived the same session secret.
  ITC_CHECK(*secret == server_hs.secret());

  return std::unique_ptr<ClientConnection>(new ClientConnection(
      client_node, user, server, network, cost, clock, conn_id, *secret, config,
      options));
}

Result<Bytes> ClientConnection::Call(uint32_t proc, const Bytes& request) {
  ClientCallInfo info;
  info.op = options_.schema != nullptr ? options_.schema->Find(proc) : nullptr;
  info.opcode = proc;
  info.server_node = server_->node();
  info.clock = clock_;
  info.transport = config_.transport;
  return chain_->Run(info, request,
                     [this, proc](const Bytes& req) { return SendOnce(proc, req); });
}

Result<Bytes> ClientConnection::SendOnce(uint32_t proc, const Bytes& request) {
  HomeShardGuard home_guard(network_, client_node_, clock_);
  const SimTime stream_penalty =
      config_.transport == Transport::kStream ? cost_.stream_transport_overhead : 0;

  // Prefix the procedure number and an increasing sequence number (the
  // server's anti-replay check), then seal.
  seq_ += 1;
  Writer w;
  w.PutU32(proc);
  w.PutU64(seq_);
  Bytes framed = w.Take();
  framed.insert(framed.end(), request.begin(), request.end());

  SimTime t = clock_->now() + cost_.client_cpu_per_rpc;
  Bytes sealed;
  if (config_.encrypt) {
    t += cost_.CryptoCpu(framed.size());
    sealed = crypto::Seal(secret_.session_key, framed, (conn_id_ << 20) ^ (seq_ * 2));
  } else {
    sealed = framed;
  }

  // A partition between the endpoints eats the request (or below, the
  // reply); the client burns its full timeout either way.
  if (!network_->Reachable(client_node_, server_->node_, t)) {
    network_->NotePartitionDrop(client_node_);
    clock_->AdvanceTo(t + cost_.rpc_timeout);
    return Status::kUnavailable;
  }
  const SimTime arrival =
      network_->Transfer(client_node_, server_->node_, WireSize(sealed), t) + stream_penalty;

  SimTime completion = arrival;
  auto sealed_reply = server_->HandleCall(conn_id_, client_node_, sealed, arrival, &completion);
  if (!sealed_reply.ok()) {
    clock_->AdvanceTo(completion);
    return sealed_reply.status();
  }

  if (!network_->Reachable(server_->node_, client_node_, completion)) {
    // The call executed but the reply is lost: at-most-once semantics are
    // preserved by the anti-replay sequence check on any retry. The client
    // gave up at its timeout, whatever the server did afterwards.
    network_->NotePartitionDrop(server_->node_);
    clock_->AdvanceTo(t + cost_.rpc_timeout);
    return Status::kUnavailable;
  }
  SimTime t2 = network_->Transfer(server_->node_, client_node_, WireSize(*sealed_reply),
                                  completion) +
               stream_penalty;
  t2 += cost_.client_cpu_per_rpc;

  Bytes reply;
  if (config_.encrypt) {
    t2 += cost_.CryptoCpu(sealed_reply->size());
    auto opened = crypto::Open(secret_.session_key, *sealed_reply);
    clock_->AdvanceTo(t2);
    if (!opened.ok()) return Status::kTamperDetected;
    reply = std::move(*opened);
  } else {
    clock_->AdvanceTo(t2);
    reply = std::move(*sealed_reply);
  }
  return reply;
}

}  // namespace itc::rpc
