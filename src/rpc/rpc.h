// Remote procedure call package (Section 3.5.3).
//
// Both generations of the paper's RPC are reproduced as configuration:
//
//   * Transport. The prototype used "a reliable byte-stream protocol
//     supported by Unix" — modelled as extra per-message protocol overhead.
//     The revised implementation uses "an unreliable datagram protocol" with
//     RPC-level reliability — modelled without that overhead.
//   * Server structure (Section 3.5.2). The prototype ran one Unix process
//     per (user, workstation), paying a full context switch per call. The
//     revised server is a single process with lightweight processes (LWPs)
//     sharing global state, paying only an LWP dispatch.
//   * Security (Section 3.4). Connection establishment runs the mutual
//     authentication handshake of src/crypto; afterwards every request and
//     reply is sealed under the per-session key. Whole-file transfer rides
//     the same sealed messages ("generalized side-effects").
//
// Functionally everything is synchronous and in-process; timing flows
// through src/net (LAN segments) and the server's CPU/disk resources, so
// utilization and latency come out of the same code path that moves bytes.

#ifndef SRC_RPC_RPC_H_
#define SRC_RPC_RPC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/crypto/handshake.h"
#include "src/crypto/key.h"
#include "src/net/network.h"
#include "src/rpc/call_stats.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"

namespace itc::rpc {

class OpRegistry;
class OpSchema;
class ServerInterceptorChain;
class ServerTracingInterceptor;
class FaultInjectionInterceptor;
class ClientInterceptorChain;

enum class Transport { kStream, kDatagram };
enum class ServerStructure { kProcessPerClient, kLwp };

// Client-stub retry policy (§3.5.3 RPC-level reliability). Applied by the
// RetryInterceptor to datagram-transport calls on ops the schema marks
// idempotent; mutators are never blindly resent (at-most-once).
struct RetryPolicy {
  uint32_t max_retries = 0;               // 0 disables the interceptor
  SimTime initial_backoff = Millis(20);   // doubles after each failed attempt
};

// Seeded fault injection applied at the server endpoint (probabilities per
// matching call; `only_class` restricts faults to one call class). Tests use
// this — plus FaultInjectionInterceptor's deterministic set_fail_all /
// DropNextReplies controls — instead of mutating server internals.
struct FaultConfig {
  double drop_probability = 0;        // request lost before execution
  double reply_drop_probability = 0;  // executed, reply lost
  double error_probability = 0;       // answered with `error`, not executed
  Status error = Status::kUnavailable;
  double delay_probability = 0;
  SimTime delay = 0;
  std::optional<CallClass> only_class;
};

struct RpcConfig {
  Transport transport = Transport::kDatagram;
  ServerStructure server_structure = ServerStructure::kLwp;
  // When false, messages travel unsealed (no crypto CPU, no integrity);
  // exists for the security-cost ablation only.
  bool encrypt = true;
  // Client-side interceptors: retries and a per-attempt deadline (0 = none).
  RetryPolicy retry;
  SimTime call_deadline = 0;
  // Server-side fault injection (inert by default).
  FaultConfig fault;
};

// Per-call server-side context handed to the service implementation. The
// handler reports the resources its work consumes; the endpoint serializes
// those demands through the server's CPU and disk.
class CallContext {
 public:
  CallContext(UserId user, NodeId client_node, SimTime arrival)
      : user_(user), client_node_(client_node), arrival_(arrival) {}

  UserId user() const { return user_; }
  NodeId client_node() const { return client_node_; }
  SimTime arrival() const { return arrival_; }

  // Extra CPU demand beyond the per-call base cost.
  void ChargeCpu(SimTime t) { cpu_demand_ += t; }
  // One disk operation moving `bytes` (0 for a pure seek, e.g. status read).
  void ChargeDisk(uint64_t bytes) {
    disk_ops_ += 1;
    disk_bytes_ += bytes;
  }
  // Pre-computed disk time (log appends/fsyncs, whose cost is not a plain
  // seek + per-kb transfer). Added to the disk demand as-is.
  void ChargeDiskTime(SimTime t) { disk_time_ += t; }
  // Holds the reply back until at least virtual time `t`: the handler waited
  // on something other than a server resource (a lease on an unreachable
  // holder running out, a post-restart grant embargo). The endpoint takes
  // the max of this floor and the resource completion time.
  void DelayCompletionUntil(SimTime t) {
    if (t > completion_floor_) completion_floor_ = t;
  }

  SimTime cpu_demand() const { return cpu_demand_; }
  uint32_t disk_ops() const { return disk_ops_; }
  uint64_t disk_bytes() const { return disk_bytes_; }
  SimTime disk_time() const { return disk_time_; }
  SimTime completion_floor() const { return completion_floor_; }

 private:
  UserId user_;
  NodeId client_node_;
  SimTime arrival_;
  SimTime cpu_demand_ = 0;
  uint32_t disk_ops_ = 0;
  uint64_t disk_bytes_ = 0;
  SimTime disk_time_ = 0;
  SimTime completion_floor_ = 0;
};

// A service implementation (the Vice file server, the protection server,
// the remote-open baseline server) registered at a ServerEndpoint.
class Service {
 public:
  virtual ~Service() = default;

  // Dispatches procedure `proc` with serialized arguments `request`.
  // Application-level failures are encoded inside the reply; a non-OK
  // Result here means the call itself could not be performed.
  [[nodiscard]] virtual Result<Bytes> Dispatch(CallContext& ctx, uint32_t proc, const Bytes& request) = 0;
};

struct RpcStats {
  uint64_t calls = 0;
  uint64_t request_bytes = 0;
  uint64_t reply_bytes = 0;
  uint64_t handshakes = 0;
  uint64_t auth_failures = 0;
};

// Server side of the RPC package: owns the server's simulated CPU and disk,
// the per-connection session state, and the registered service.
class ServerEndpoint {
 public:
  using KeyLookup = std::function<std::optional<crypto::Key>(UserId)>;

  ServerEndpoint(NodeId node, net::Network* network, const sim::CostModel& cost,
                 RpcConfig config, KeyLookup key_lookup, uint64_t nonce_seed);
  ~ServerEndpoint();

  // Legacy dispatch path: a monolithic Service. New services register a
  // typed OpRegistry instead (set_registry); the registry wins when both are
  // set.
  void set_service(Service* service) { service_ = service; }
  void set_registry(const OpRegistry* registry) { registry_ = registry; }
  void set_config(RpcConfig config);

  // Simulated outage: while offline the endpoint accepts no handshakes and
  // answers no calls (kUnavailable). Toggling this alone keeps connection
  // state (a network partition); a machine crash additionally calls
  // DropAllConnections — the paper's servers kept no hard client state that
  // a reboot plus salvage could not rebuild.
  void set_online(bool v) { online_ = v; }
  bool online() const { return online_; }

  // Volatile-state teardown for a simulated machine crash, and targeted
  // cleanup when one workstation disconnects or crashes. Orchestration-only
  // under the sharded scheduler: they touch the connection table, which the
  // server's shard owns.
  ITC_KERNEL_QUIESCENT void DropAllConnections() { connections_.clear(); }
  ITC_KERNEL_QUIESCENT void CloseConnectionsFrom(NodeId client_node);
  ITC_KERNEL_QUIESCENT size_t ConnectionCountFrom(NodeId client_node) const;

  NodeId node() const { return node_; }
  sim::Resource& cpu() { return cpu_; }
  sim::Resource& disk() { return disk_; }
  ITC_KERNEL_QUIESCENT const RpcStats& stats() const { return stats_; }
  // Per-op tracing recorded by the server interceptor chain.
  CallStats& call_stats() { return call_stats_; }
  const CallStats& call_stats() const { return call_stats_; }
  // The endpoint's fault injector (tests: set_fail_all, DropNextReplies).
  FaultInjectionInterceptor& fault() { return *fault_; }
  void ResetStats() {
    stats_ = RpcStats{};
    call_stats_.Reset();
  }

  // Internal API used by ClientConnection (in-process message delivery).
  struct ConnState {
    UserId user = kAnonymousUser;
    crypto::SessionSecret secret;
    uint64_t seq = 0;              // reply counter (IV diversification)
    uint64_t last_client_seq = 0;  // anti-replay: requests must increase
    NodeId client_node = kInvalidNode;  // workstation that opened the channel
  };

  // Processes one sealed call on connection `conn_id`, arriving at
  // `arrival`; returns the sealed reply and sets `*completion` to the time
  // the reply leaves the server.
  [[nodiscard]] Result<Bytes> HandleCall(uint64_t conn_id, NodeId client_node, const Bytes& sealed_request,
                           SimTime arrival, SimTime* completion);

  // Called from the client connection's destructor, i.e. potentially from
  // the client's shard. Known cross-shard touch under kSharded: a mid-run
  // teardown erases server-side state from the client's thread. Today every
  // connection teardown in the tree happens quiescently (prologue/epilogue,
  // crash orchestration) or on the server's own shard; the lint rule keeps
  // new callers honest.
  ITC_SHARD_FOREIGN void CloseConnection(uint64_t conn_id) { connections_.erase(conn_id); }

 private:
  friend class ClientConnection;

  NodeId node_;
  net::Network* network_;
  sim::CostModel cost_;
  RpcConfig config_;
  KeyLookup key_lookup_;
  uint64_t nonce_seed_;
  bool online_ = true;
  ITC_OWNED_BY_SHARD uint64_t next_connection_id_ = 1;
  Service* service_ = nullptr;
  const OpRegistry* registry_ = nullptr;
  sim::Resource cpu_;
  sim::Resource disk_;
  ITC_OWNED_BY_SHARD std::unordered_map<uint64_t, ConnState> connections_;
  ITC_OWNED_BY_SHARD RpcStats stats_;
  ITC_OWNED_BY_SHARD CallStats call_stats_;
  // Server interceptor chain: tracing (outermost) then fault injection,
  // wrapped around dispatch + resource charging.
  std::unique_ptr<ServerTracingInterceptor> tracing_;
  std::unique_ptr<FaultInjectionInterceptor> fault_;
  std::unique_ptr<ServerInterceptorChain> chain_;
};

// Optional client-stub wiring: the op schema of the service being called
// (enables the retry interceptor's idempotency check and labels traces) and
// a CallStats table to record the client-observed round trips into.
struct ClientOptions {
  const OpSchema* schema = nullptr;
  CallStats* stats = nullptr;
};

// Client side: an authenticated, encrypted connection from one user on one
// workstation to one server. Created via Connect(); each Call() advances the
// workstation's clock through the full network/server round trip.
class ClientConnection {
 public:
  // Establishes the connection, running the mutual handshake over the
  // simulated network. Fails with kAuthFailed if either side cannot prove
  // knowledge of the user's key.
  [[nodiscard]] static Result<std::unique_ptr<ClientConnection>> Connect(
      NodeId client_node, UserId user, const crypto::Key& user_key, ServerEndpoint* server,
      net::Network* network, const sim::CostModel& cost, sim::Clock* clock,
      uint64_t nonce_seed, ClientOptions options = {});

  ~ClientConnection();
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  // Performs one RPC through the client interceptor chain (tracing, retry,
  // deadline): seals `request`, ships it to the server, runs the service,
  // ships the reply back, advancing the client clock to the moment the reply
  // has been decrypted.
  [[nodiscard]] Result<Bytes> Call(uint32_t proc, const Bytes& request);

  UserId user() const { return user_; }
  NodeId server_node() const { return server_->node(); }
  ServerEndpoint* server() const { return server_; }

 private:
  ClientConnection(NodeId client_node, UserId user, ServerEndpoint* server,
                   net::Network* network, const sim::CostModel& cost, sim::Clock* clock,
                   uint64_t conn_id, crypto::SessionSecret secret, RpcConfig config,
                   ClientOptions options);

  // One wire attempt: frame, seal, ship, await, unseal.
  [[nodiscard]] Result<Bytes> SendOnce(uint32_t proc, const Bytes& request);

  NodeId client_node_;
  UserId user_;
  ServerEndpoint* server_;
  net::Network* network_;
  sim::CostModel cost_;
  sim::Clock* clock_;
  uint64_t conn_id_;
  crypto::SessionSecret secret_;
  RpcConfig config_;
  ClientOptions options_;
  std::unique_ptr<ClientInterceptorChain> chain_;
  uint64_t seq_ = 0;
};

}  // namespace itc::rpc

#endif  // SRC_RPC_RPC_H_
