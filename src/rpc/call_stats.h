// Per-operation call statistics for the RPC package (Section 3.6).
//
// The paper calls for "monitoring tools ... required to ease day-to-day
// operations of the system"; CallStats is the RPC layer's contribution: every
// call that flows through an op registry (src/rpc/op_registry.h) is recorded
// here by the tracing interceptor — per-op count, bytes in/out, latency
// histogram, and error-code breakdown. Server endpoints own one CallStats for
// the calls they serve; client stubs (Venus, the protection client) may own
// another for the round trips they observe. Campus aggregates the server-side
// tables; bench/ dumps them as BENCH_rpc.json.

#ifndef SRC_RPC_CALL_STATS_H_
#define SRC_RPC_CALL_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string_view>

#include "src/common/status.h"
#include "src/common/types.h"

namespace itc::rpc {

// The aggregate call categories of the prototype measurement in Section 5.2
// ("cache validity checking ... 65%, obtain file status ... 27%, fetch 4%,
// store 2%"). Defined at the RPC layer so every service's op schema can
// label its procedures; vice::CallClass is an alias of this.
enum class CallClass { kValidate, kStatus, kFetch, kStore, kOther };
std::string_view CallClassName(CallClass c);

// Power-of-two latency histogram over SimTime (microseconds). Bucket i
// counts latencies in [2^(i-1), 2^i); bucket 0 counts zero latency.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(SimTime latency);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  SimTime min() const { return count_ ? min_ : 0; }
  SimTime max() const { return max_; }
  SimTime sum() const { return sum_; }
  double Mean() const;
  // Approximate percentile (p in [0,1]): the upper bound of the bucket
  // holding the p-th sample, clamped to the observed max.
  SimTime Percentile(double p) const;

  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  SimTime min_ = 0;
  SimTime max_ = 0;
  SimTime sum_ = 0;
};

// Everything recorded about one procedure.
struct OpStats {
  std::string_view name = "unknown";  // static string from the op schema
  CallClass call_class = CallClass::kOther;
  uint64_t calls = 0;
  uint64_t errors = 0;      // transport failures + non-OK application replies
  uint64_t bytes_in = 0;    // request payload bytes
  uint64_t bytes_out = 0;   // reply payload bytes
  LatencyHistogram latency;
  std::map<Status, uint64_t> error_codes;  // non-OK outcomes by status
};

class CallStats {
 public:
  void Record(uint32_t opcode, std::string_view name, CallClass call_class,
              SimTime latency, uint64_t bytes_in, uint64_t bytes_out, Status outcome);

  const std::map<uint32_t, OpStats>& per_op() const { return per_op_; }
  const OpStats* Find(uint32_t opcode) const;

  uint64_t total_calls() const;
  uint64_t total_errors() const;
  uint64_t total_bytes_in() const;
  uint64_t total_bytes_out() const;

  // Collapses the per-op table into the paper's Section 5.2 call classes.
  std::map<CallClass, uint64_t> Histogram() const;

  void Merge(const CallStats& other);
  void Reset() { per_op_.clear(); }

 private:
  std::map<uint32_t, OpStats> per_op_;
};

}  // namespace itc::rpc

#endif  // SRC_RPC_CALL_STATS_H_
