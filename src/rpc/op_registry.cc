#include "src/rpc/op_registry.h"

#include <algorithm>

#include "src/common/logging.h"

namespace itc::rpc {

OpSchema::OpSchema(std::string_view service_name, std::initializer_list<OpSpec> ops)
    : service_name_(service_name), ops_(ops) {
  std::sort(ops_.begin(), ops_.end(),
            [](const OpSpec& a, const OpSpec& b) { return a.opcode < b.opcode; });
  for (size_t i = 1; i < ops_.size(); ++i) {
    ITC_CHECK(ops_[i - 1].opcode != ops_[i].opcode);
  }
}

const OpSpec* OpSchema::Find(uint32_t opcode) const {
  auto it = std::lower_bound(
      ops_.begin(), ops_.end(), opcode,
      [](const OpSpec& op, uint32_t code) { return op.opcode < code; });
  if (it == ops_.end() || it->opcode != opcode) return nullptr;
  return &*it;
}

OpRegistry::OpRegistry(const OpSchema* schema) : schema_(schema) {
  ITC_CHECK(schema_ != nullptr);
}

void OpRegistry::Bind(uint32_t opcode, OpHandler handler) {
  ITC_CHECK(schema_->Find(opcode) != nullptr);
  ITC_CHECK(!handlers_.contains(opcode));
  handlers_[opcode] = std::move(handler);
}

Result<Bytes> OpRegistry::Dispatch(CallContext& ctx, uint32_t opcode,
                                   const Bytes& request) const {
  auto it = handlers_.find(opcode);
  if (it == handlers_.end()) return Status::kProtocolError;
  return it->second(ctx, request);
}

std::string RenderOpTable(const OpSchema& schema) {
  std::string out;
  out += "| proc | name | class | idempotent | request body | OK reply payload |\n";
  out += "|---:|---|---|---|---|---|\n";
  for (const OpSpec& op : schema.ops()) {
    out += "| " + std::to_string(op.opcode) + " | ";
    out += op.name;
    out += " | ";
    out += CallClassName(op.call_class);
    out += op.idempotent ? " | yes | " : " | no | ";
    out += op.request_doc;
    out += " | ";
    out += op.reply_doc;
    out += " |\n";
  }
  return out;
}

}  // namespace itc::rpc
