#include "src/rpc/interceptor.h"

#include "src/rpc/wire.h"

namespace itc::rpc {

namespace {

// Outcome recorded for a finished call: the transport status on failure,
// else the application status peeked from the reply prologue (every schema
// op's reply begins with a Status; non-schema replies are opaque).
Status OutcomeOf(const ServerCallInfo& info, const Result<Bytes>& result) {
  if (!result.ok()) return result.status();
  if (info.op == nullptr) return Status::kOk;
  Reader r(result.value());
  Status app = Status::kOk;
  if (r.ReadStatus(&app) != Status::kOk) return Status::kProtocolError;
  return app;
}

Status ClientOutcomeOf(const ClientCallInfo& info, const Result<Bytes>& result) {
  if (!result.ok()) return result.status();
  if (info.op == nullptr) return Status::kOk;
  Reader r(result.value());
  Status app = Status::kOk;
  if (r.ReadStatus(&app) != Status::kOk) return Status::kProtocolError;
  return app;
}

bool RetryableTransportFailure(Status s) {
  return s == Status::kUnavailable || s == Status::kTimedOut;
}

}  // namespace

// --- Server side -------------------------------------------------------------

Result<Bytes> ServerInterceptorChain::Run(ServerCallInfo& info, const Bytes& request,
                                          const ServerInterceptor::Next& terminal) const {
  return RunFrom(0, info, request, terminal);
}

Result<Bytes> ServerInterceptorChain::RunFrom(
    size_t index, ServerCallInfo& info, const Bytes& request,
    const ServerInterceptor::Next& terminal) const {
  if (index == interceptors_.size()) return terminal(request);
  return interceptors_[index]->Intercept(
      info, request,
      [this, index, &info, &terminal](const Bytes& req) {
        return RunFrom(index + 1, info, req, terminal);
      });
}

Result<Bytes> ServerTracingInterceptor::Intercept(ServerCallInfo& info,
                                                  const Bytes& request,
                                                  const Next& next) {
  // Snapshot arrival before an inner interceptor injects delay: latency is
  // measured from when the request reached the server.
  const SimTime arrival = info.arrival;
  Result<Bytes> result = next(request);
  if (stats_ != nullptr) {
    const SimTime completion = info.completion != nullptr ? *info.completion : arrival;
    stats_->Record(info.opcode, info.op != nullptr ? info.op->name : "unknown",
                   info.op != nullptr ? info.op->call_class : CallClass::kOther,
                   completion - arrival, request.size(),
                   result.ok() ? result.value().size() : 0, OutcomeOf(info, result));
  }
  return result;
}

bool FaultInjectionInterceptor::Matches(const ServerCallInfo& info,
                                        const std::optional<CallClass>& only) {
  if (!only.has_value()) return true;
  return info.op != nullptr && info.op->call_class == *only;
}

Result<Bytes> FaultInjectionInterceptor::Intercept(ServerCallInfo& info,
                                                   const Bytes& request,
                                                   const Next& next) {
  if (fail_all_) return Status::kUnavailable;

  if (fail_count_ > 0) {
    if (fail_skip_ > 0) {
      fail_skip_ -= 1;
    } else {
      fail_count_ -= 1;
      return fail_error_;
    }
  }

  if (drop_replies_ > 0 && Matches(info, drop_replies_class_)) {
    drop_replies_ -= 1;
    // The request reached the server and executed; only the reply is lost.
    (void)next(request);
    return Status::kUnavailable;
  }

  if (Matches(info, config_.only_class)) {
    if (config_.drop_probability > 0 && rng_.Chance(config_.drop_probability)) {
      return Status::kUnavailable;  // request lost before the server saw it
    }
    if (config_.error_probability > 0 && rng_.Chance(config_.error_probability)) {
      return config_.error;
    }
    if (config_.delay_probability > 0 && rng_.Chance(config_.delay_probability)) {
      info.arrival += config_.delay;
    }
    if (config_.reply_drop_probability > 0 &&
        rng_.Chance(config_.reply_drop_probability)) {
      (void)next(request);
      return Status::kUnavailable;
    }
  }
  return next(request);
}

// --- Client side -------------------------------------------------------------

Result<Bytes> ClientInterceptorChain::Run(ClientCallInfo& info, const Bytes& request,
                                          const ClientInterceptor::Next& terminal) const {
  return RunFrom(0, info, request, terminal);
}

Result<Bytes> ClientInterceptorChain::RunFrom(
    size_t index, ClientCallInfo& info, const Bytes& request,
    const ClientInterceptor::Next& terminal) const {
  if (index == interceptors_.size()) return terminal(request);
  return interceptors_[index]->Intercept(
      info, request,
      [this, index, &info, &terminal](const Bytes& req) {
        return RunFrom(index + 1, info, req, terminal);
      });
}

Result<Bytes> ClientTracingInterceptor::Intercept(ClientCallInfo& info,
                                                  const Bytes& request,
                                                  const Next& next) {
  const SimTime start = info.clock != nullptr ? info.clock->now() : 0;
  Result<Bytes> result = next(request);
  if (stats_ != nullptr) {
    const SimTime end = info.clock != nullptr ? info.clock->now() : start;
    stats_->Record(info.opcode, info.op != nullptr ? info.op->name : "unknown",
                   info.op != nullptr ? info.op->call_class : CallClass::kOther,
                   end - start, request.size(),
                   result.ok() ? result.value().size() : 0,
                   ClientOutcomeOf(info, result));
  }
  return result;
}

Result<Bytes> RetryInterceptor::Intercept(ClientCallInfo& info, const Bytes& request,
                                          const Next& next) {
  Result<Bytes> result = next(request);
  // Stream transport delivers reliably at the transport level; and without
  // schema metadata declaring the op idempotent, a blind resend could run a
  // mutator twice — at-most-once wins (§3.5.3).
  if (info.transport != Transport::kDatagram) return result;
  if (info.op == nullptr || !info.op->idempotent) return result;

  SimTime backoff = policy_.initial_backoff;
  for (uint32_t retry = 0; retry < policy_.max_retries; ++retry) {
    if (result.ok() || !RetryableTransportFailure(result.status())) return result;
    if (info.clock != nullptr && backoff > 0) info.clock->Advance(backoff);
    backoff *= 2;
    info.attempts += 1;
    result = next(request);
  }
  return result;
}

Result<Bytes> DeadlineInterceptor::Intercept(ClientCallInfo& info, const Bytes& request,
                                             const Next& next) {
  if (deadline_ <= 0 || info.clock == nullptr) return next(request);
  const SimTime start = info.clock->now();
  Result<Bytes> result = next(request);
  if (info.clock->now() - start > deadline_) return Status::kTimedOut;
  return result;
}

}  // namespace itc::rpc
