// Campus: a complete simulated deployment of Vice and Virtue.
//
// Builds Figure 2-2 end to end: a backbone network of clusters, one or more
// Vice cluster servers per cluster, the protection service with a replica at
// every server, the volume registry with the replicated location database,
// and a population of Virtue workstations (each with its own local file
// system, clock, and Venus). Tests, examples, and every bench harness start
// from a Campus.

#ifndef SRC_CAMPUS_CAMPUS_H_
#define SRC_CAMPUS_CAMPUS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/content.h"
#include "src/common/ownership.h"
#include "src/common/result.h"
#include "src/net/network.h"
#include "src/protection/protection_service.h"
#include "src/rpc/rpc.h"
#include "src/sim/cost_model.h"
#include "src/venus/venus.h"
#include "src/vice/file_server.h"
#include "src/vice/volume_registry.h"
#include "src/virtue/workstation.h"

namespace itc::campus {

struct CampusConfig {
  net::TopologyConfig topology;
  sim::CostModel cost = sim::CostModel::Default1985();
  rpc::RpcConfig rpc;
  vice::ViceConfig vice;
  virtue::WorkstationConfig workstation;
  uint64_t seed = 42;

  // The revised (post-prototype) system, as the paper specifies it.
  static CampusConfig Revised(uint32_t clusters, uint32_t workstations_per_cluster);
  // The prototype measured in Section 5: stream RPC, process-per-client
  // servers, server-side pathnames, check-on-open validation, count-limited
  // cache.
  static CampusConfig Prototype(uint32_t clusters, uint32_t workstations_per_cluster);

  // Selects the cache-validation scheme coherently on both sides of the
  // wire (Venus policy + Vice callback/lease machinery must agree).
  CampusConfig& UseValidation(venus::VenusConfig::Validation scheme);
};

class Campus {
 public:
  explicit Campus(CampusConfig config);

  const CampusConfig& config() const { return config_; }
  net::Network& network() { return *network_; }
  const net::Topology& topology() const { return network_->topology(); }
  protection::ProtectionService& protection() { return protection_; }
  vice::VolumeRegistry& registry() { return registry_; }

  size_t server_count() const { return servers_.size(); }
  vice::ViceServer& server(size_t i) { return *servers_[i]; }
  size_t workstation_count() const { return workstations_.size(); }
  virtue::Workstation& workstation(size_t i) { return *workstations_[i]; }
  const venus::ServerMap& server_map() const { return server_map_; }

  // --- Environment setup -------------------------------------------------------

  // Creates the root volume (custodian: server 0) with a world-readable,
  // administrator-writable root directory, and registers it as the root of
  // the shared name space.
  [[nodiscard]] Result<VolumeId> SetupRootVolume();

  // Creates a user and a home volume mounted at /usr/<name>. The access
  // list grants the user everything and System:AnyUser lookup+read.
  struct UserHome {
    UserId user;
    VolumeId volume;
    std::string vice_path;  // "/usr/<name>"
  };
  [[nodiscard]] Result<UserHome> AddUserWithHome(const std::string& name, const std::string& password,
                                   ServerId custodian, uint64_t quota_bytes = 0);

  // Creates a system volume mounted at `mount_path` (e.g. "/unix/sun"),
  // world-readable, administrator-writable.
  [[nodiscard]] Result<VolumeId> CreateSystemVolume(const std::string& name,
                                      const std::string& mount_path, ServerId custodian);

  // --- Direct (zero-cost) population -----------------------------------------------
  // Administrative loading of files into a volume, bypassing RPC and cost
  // accounting; used to pre-populate system trees before an experiment.
  // `path` is relative to the volume root, intermediate directories are
  // created with the root directory's ACL.
  [[nodiscard]] Status PopulateDirect(VolumeId volume, const std::string& path, const Bytes& data);
  // Lazy variant: installs a content ref without ever materializing the
  // bytes on the host. Population of a 10k-workstation campus stays cheap
  // because a generative ref is ~32 bytes regardless of file size.
  [[nodiscard]] Status PopulateDirect(VolumeId volume, const std::string& path,
                                      content::Ref contents);
  [[nodiscard]] Status MkDirDirect(VolumeId volume, const std::string& path);

  // Home server of a workstation: the first server in its own cluster.
  ServerId HomeServerOf(uint32_t workstation_index) const;

  // --- Crash orchestration -----------------------------------------------------
  // Kills server `i` (volatile state lost; stable store survives) and brings
  // it back at virtual time `at`. See ViceServer::SimulateCrash / Restart.
  ITC_KERNEL_QUIESCENT void CrashServer(size_t i);
  ITC_KERNEL_QUIESCENT vice::recovery::RecoveryReport RestartServer(size_t i, SimTime at);

  // --- Partition orchestration -------------------------------------------------
  // Cuts server `i` off from the rest of the campus for [from, until); the
  // link heals by the passage of virtual time alone (deterministic).
  ITC_KERNEL_QUIESCENT void PartitionServer(size_t i, SimTime from, SimTime until);
  // Cuts workstation `w` (and only it) off from the campus for [from, until).
  ITC_KERNEL_QUIESCENT void PartitionWorkstation(size_t w, SimTime from, SimTime until);
  // Cuts an entire cluster (its servers and workstations keep talking to
  // each other, but the backbone link is down) for [from, until).
  ITC_KERNEL_QUIESCENT void PartitionCluster(ClusterId cluster, SimTime from, SimTime until);

  // Aggregated per-op CallStats across all servers (counts, bytes, latency
  // histograms — recorded by the RPC tracing interceptor).
  // Host bytes actually retained for file contents across the whole campus:
  // every server's volumes and stable store plus every workstation's local
  // file system (which holds the Venus cache copies). Buffers shared through
  // the content store are counted once. Memory diagnostics, not simulation
  // state.
  ITC_KERNEL_QUIESCENT uint64_t RetainedContentBytes() const;

  rpc::CallStats TotalCallStats() const;
  // The Section 5.2 call-class collapse of TotalCallStats().
  std::map<vice::CallClass, uint64_t> TotalCallHistogram() const;
  uint64_t TotalCalls() const;
  ITC_KERNEL_QUIESCENT void ResetAllStats();

 private:
  [[nodiscard]] Result<Fid> EnsureDirDirect(vice::Volume* vol, const std::string& path);

  CampusConfig config_;
  std::unique_ptr<net::Network> network_;
  protection::ProtectionService protection_;
  std::vector<std::unique_ptr<vice::ViceServer>> servers_;
  venus::ServerMap server_map_;
  vice::VolumeRegistry registry_;
  std::vector<std::unique_ptr<virtue::Workstation>> workstations_;
  VolumeId root_volume_ = kInvalidVolume;
  Fid usr_dir_ = kNullFid;  // /usr directory in the root volume
};

}  // namespace itc::campus

#endif  // SRC_CAMPUS_CAMPUS_H_
