#include "src/campus/campus.h"

#include <unordered_set>
#include <utility>

#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/sim/kernel.h"

namespace itc::campus {

using protection::AccessList;
using protection::Principal;

CampusConfig CampusConfig::Revised(uint32_t clusters, uint32_t workstations_per_cluster) {
  CampusConfig c;
  c.topology = net::TopologyConfig{clusters, 1, workstations_per_cluster};
  c.rpc.transport = rpc::Transport::kDatagram;
  c.rpc.server_structure = rpc::ServerStructure::kLwp;
  c.vice = vice::ViceConfig{};          // callbacks, fids, per-file bits
  c.workstation.venus = venus::VenusConfig{};  // callbacks, client paths, space limit
  return c;
}

CampusConfig CampusConfig::Prototype(uint32_t clusters, uint32_t workstations_per_cluster) {
  CampusConfig c;
  c.topology = net::TopologyConfig{clusters, 1, workstations_per_cluster};
  c.rpc.transport = rpc::Transport::kStream;
  c.rpc.server_structure = rpc::ServerStructure::kProcessPerClient;
  c.vice = vice::PrototypeViceConfig();
  c.workstation.venus = venus::PrototypeVenusConfig();
  return c;
}

CampusConfig& CampusConfig::UseValidation(venus::VenusConfig::Validation scheme) {
  workstation.venus.validation = scheme;
  vice.callbacks = scheme == venus::VenusConfig::Validation::kCallbacks;
  vice.leases = scheme == venus::VenusConfig::Validation::kLeases;
  return *this;
}

Campus::Campus(CampusConfig config) : config_(std::move(config)) {
  const net::Topology topo(config_.topology);
  network_ = std::make_unique<net::Network>(topo, config_.cost);

  // One ViceServer per server node, ids dense in topology order.
  for (uint32_t s = 0; s < topo.server_count(); ++s) {
    const NodeId node = topo.NthServer(s);
    auto server = std::make_unique<vice::ViceServer>(
        s, node, network_.get(), config_.cost, config_.rpc, config_.vice, &protection_,
        config_.seed ^ (0x5e4full << 32) ^ s);
    server_map_[s] = server.get();
    registry_.RegisterServer(server.get());
    servers_.push_back(std::move(server));
  }

  for (uint32_t w = 0; w < topo.workstation_count(); ++w) {
    const NodeId node = topo.NthWorkstation(w);
    auto ws = std::make_unique<virtue::Workstation>(
        node, &server_map_, HomeServerOf(w), network_.get(), config_.cost,
        config_.workstation, config_.seed ^ (0xa11ceull << 20) ^ w);
    ITC_CHECK(ws->InstallStandardLayout() == Status::kOk);
    workstations_.push_back(std::move(ws));
  }
}

ServerId Campus::HomeServerOf(uint32_t workstation_index) const {
  const net::Topology& topo = network_->topology();
  return topo.FirstServerIndexIn(topo.ClusterOfNthWorkstation(workstation_index));
}

Result<VolumeId> Campus::SetupRootVolume() {
  AccessList acl;
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup),
                  protection::kLookup | protection::kRead);
  acl.SetPositive(Principal::Group(protection::kAdministratorsGroup),
                  protection::kAllRights);
  ASSIGN_OR_RETURN(root_volume_,
                   registry_.CreateVolume("vice.root", /*custodian=*/0, kAnonymousUser,
                                          acl, /*quota_bytes=*/0));
  RETURN_IF_ERROR(registry_.SetRootVolume(root_volume_));

  // Standard top-level directories.
  vice::Volume* root = registry_.FindVolume(root_volume_);
  ITC_CHECK(root != nullptr);
  ASSIGN_OR_RETURN(Fid usr, root->MakeDir(root->root(), "usr", kAnonymousUser, acl));
  usr_dir_ = usr;
  RETURN_IF_ERROR(root->MakeDir(root->root(), "unix", kAnonymousUser, acl).status());
  // Direct mutations bypass the custodian's intention log; re-dump so the
  // standard layout survives a crash.
  RETURN_IF_ERROR(registry_.CheckpointVolume(root_volume_));
  return root_volume_;
}

Result<Campus::UserHome> Campus::AddUserWithHome(const std::string& name,
                                                 const std::string& password,
                                                 ServerId custodian, uint64_t quota_bytes) {
  ITC_CHECK(root_volume_ != kInvalidVolume);  // SetupRootVolume first
  ASSIGN_OR_RETURN(UserId user, protection_.CreateUser(name, password));

  AccessList acl;
  acl.SetPositive(Principal::User(user), protection::kAllRights);
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup),
                  protection::kLookup | protection::kRead);
  ASSIGN_OR_RETURN(VolumeId vol,
                   registry_.CreateVolume("user." + name, custodian, user, acl,
                                          quota_bytes));
  RETURN_IF_ERROR(registry_.MountAt(usr_dir_, name, vol));
  return UserHome{user, vol, "/usr/" + name};
}

Result<VolumeId> Campus::CreateSystemVolume(const std::string& name,
                                            const std::string& mount_path,
                                            ServerId custodian) {
  ITC_CHECK(root_volume_ != kInvalidVolume);
  AccessList acl;
  acl.SetPositive(Principal::Group(protection::kAnyUserGroup),
                  protection::kLookup | protection::kRead);
  acl.SetPositive(Principal::Group(protection::kAdministratorsGroup),
                  protection::kAllRights);
  ASSIGN_OR_RETURN(VolumeId vol,
                   registry_.CreateVolume(name, custodian, kAnonymousUser, acl, 0));

  // Walk/create the mount path inside the root volume, then add the mount.
  vice::Volume* root = registry_.FindVolume(root_volume_);
  ITC_CHECK(root != nullptr);
  ASSIGN_OR_RETURN(Fid dir, EnsureDirDirect(root, std::string(Dirname(mount_path))));
  RETURN_IF_ERROR(registry_.MountAt(dir, std::string(Basename(mount_path)), vol));
  // MountAt checkpoints after adding the mount point, but the directories
  // EnsureDirDirect may have created are not covered by it when Dirname is
  // deeper than one level; checkpoint explicitly.
  RETURN_IF_ERROR(registry_.CheckpointVolume(root_volume_));
  return vol;
}

Result<Fid> Campus::EnsureDirDirect(vice::Volume* vol, const std::string& path) {
  Fid cur = vol->root();
  for (const std::string& comp : SplitPath(path)) {
    auto data = vol->FetchData(cur);
    if (!data.ok()) return data.status();
    auto entries = vice::DeserializeDirectory(*data);
    if (!entries.ok()) return Status::kInternal;
    auto it = entries->find(comp);
    if (it != entries->end()) {
      if (it->second.kind != vice::DirItem::Kind::kDirectory) return Status::kNotDirectory;
      cur = it->second.fid;
      continue;
    }
    auto acl = vol->EffectiveAcl(cur);
    if (!acl.ok()) return acl.status();
    ASSIGN_OR_RETURN(cur, vol->MakeDir(cur, comp, kAnonymousUser, *acl));
  }
  return cur;
}

Status Campus::MkDirDirect(VolumeId volume, const std::string& path) {
  vice::Volume* vol = registry_.FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  RETURN_IF_ERROR(EnsureDirDirect(vol, path).status());
  // Direct mutation bypassed the file server: re-dump the durable image and
  // tell connected clients holding cached directories about it.
  RETURN_IF_ERROR(registry_.CheckpointVolume(volume));
  return registry_.BreakVolumeCallbacks(volume);
}

Status Campus::PopulateDirect(VolumeId volume, const std::string& path, const Bytes& data) {
  return PopulateDirect(volume, path, content::Ref::Canonicalize(data));
}

Status Campus::PopulateDirect(VolumeId volume, const std::string& path,
                              content::Ref contents) {
  vice::Volume* vol = registry_.FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  ASSIGN_OR_RETURN(Fid dir, EnsureDirDirect(vol, std::string(Dirname(path))));
  const std::string leaf(Basename(path));

  // Replace existing contents if the file is already there.
  auto dir_data = vol->FetchData(dir);
  if (!dir_data.ok()) return dir_data.status();
  auto entries = vice::DeserializeDirectory(*dir_data);
  if (!entries.ok()) return Status::kInternal;
  Fid fid;
  auto it = entries->find(leaf);
  if (it != entries->end()) {
    fid = it->second.fid;
  } else {
    ASSIGN_OR_RETURN(fid, vol->CreateFile(dir, leaf, kAnonymousUser, 0644));
  }
  RETURN_IF_ERROR(vol->StoreRef(fid, std::move(contents)));
  // Direct loading bypassed the file server: re-dump the durable image and
  // break any promises so already-connected clients refetch.
  RETURN_IF_ERROR(registry_.CheckpointVolume(volume));
  return registry_.BreakVolumeCallbacks(volume);
}

uint64_t Campus::RetainedContentBytes() const {
  ITC_CHECK(sim::Kernel::Current() == nullptr);
  std::unordered_set<const void*> seen;
  uint64_t total = 0;
  for (const auto& server : servers_) total += server->RetainedContentBytes(&seen);
  for (const auto& ws : workstations_) total += ws->local_fs().RetainedContentBytes(&seen);
  return total;
}

void Campus::CrashServer(size_t i) {
  ITC_CHECK(sim::Kernel::Current() == nullptr);  // orchestration is quiescent-only
  ITC_CHECK(i < servers_.size());
  servers_[i]->SimulateCrash();
}

vice::recovery::RecoveryReport Campus::RestartServer(size_t i, SimTime at) {
  ITC_CHECK(sim::Kernel::Current() == nullptr);
  ITC_CHECK(i < servers_.size());
  return servers_[i]->Restart(at);
}

void Campus::PartitionServer(size_t i, SimTime from, SimTime until) {
  ITC_CHECK(i < servers_.size());
  network_->AddPartition({{servers_[i]->node()}, from, until});
}

void Campus::PartitionWorkstation(size_t w, SimTime from, SimTime until) {
  ITC_CHECK(w < workstations_.size());
  network_->AddPartition({{workstations_[w]->node()}, from, until});
}

void Campus::PartitionCluster(ClusterId cluster, SimTime from, SimTime until) {
  const net::Topology& topo = network_->topology();
  std::vector<NodeId> nodes;
  for (uint32_t s = 0; s < topo.server_count(); ++s) {
    if (topo.ClusterOf(topo.NthServer(s)) == cluster) nodes.push_back(topo.NthServer(s));
  }
  for (uint32_t w = 0; w < topo.workstation_count(); ++w) {
    const NodeId n = topo.NthWorkstation(w);
    if (topo.ClusterOf(n) == cluster) nodes.push_back(n);
  }
  network_->AddPartition({std::move(nodes), from, until});
}

rpc::CallStats Campus::TotalCallStats() const {
  rpc::CallStats total;
  for (const auto& server : servers_) total.Merge(server->endpoint().call_stats());
  return total;
}

std::map<vice::CallClass, uint64_t> Campus::TotalCallHistogram() const {
  return TotalCallStats().Histogram();
}

uint64_t Campus::TotalCalls() const { return TotalCallStats().total_calls(); }

void Campus::ResetAllStats() {
  ITC_CHECK(sim::Kernel::Current() == nullptr);
  for (auto& server : servers_) server->ResetStats();
  for (auto& ws : workstations_) ws->venus().ResetStats();
  network_->ResetStats();
}

}  // namespace itc::campus
