#include "src/protection/protection_service.h"

namespace itc::protection {

void ProtectionService::RegisterReplica(Replica* replica) {
  replicas_.push_back(replica);
  replica->snapshot_ = std::make_shared<const ProtectionDb>(*master_);
}

void ProtectionService::Publish() {
  // Copy-on-publish: readers holding the old snapshot are unaffected.
  auto snapshot = std::make_shared<const ProtectionDb>(*master_);
  for (Replica* r : replicas_) r->snapshot_ = snapshot;
  publications_ += 1;
}

Result<UserId> ProtectionService::CreateUser(const std::string& name,
                                             const std::string& password) {
  auto r = master_->CreateUser(name, password);
  if (r.ok()) Publish();
  return r;
}

Result<GroupId> ProtectionService::CreateGroup(const std::string& name) {
  auto r = master_->CreateGroup(name);
  if (r.ok()) Publish();
  return r;
}

Status ProtectionService::AddToGroup(Principal member, GroupId group) {
  Status s = master_->AddToGroup(member, group);
  if (s == Status::kOk) Publish();
  return s;
}

Status ProtectionService::RemoveFromGroup(Principal member, GroupId group) {
  Status s = master_->RemoveFromGroup(member, group);
  if (s == Status::kOk) Publish();
  return s;
}

Status ProtectionService::SetPassword(UserId user, const std::string& password) {
  Status s = master_->SetPassword(user, password);
  if (s == Status::kOk) Publish();
  return s;
}

}  // namespace itc::protection
