// RPC interface to the protection server (Section 3.4).
//
// "Information about users and groups is stored in a protection database
//  which is replicated at each cluster server. Manipulation of this database
//  is via a protection server, which coordinates the updating of the
//  database at all sites."
//
// The ProtectionRpcServer wraps a ProtectionService behind the standard
// authenticated, encrypted RPC machinery. Mutations require the caller to be
// a member of System:Administrators, except SetPassword, which any user may
// invoke on their own account. The prototype had no protection server
// ("relies on manual updates to the protection database by the operations
// staff") — this is the revised implementation's component.

#ifndef SRC_PROTECTION_PROTECTION_RPC_H_
#define SRC_PROTECTION_PROTECTION_RPC_H_

#include <memory>
#include <string>

#include "src/protection/protection_service.h"
#include "src/rpc/op_registry.h"
#include "src/rpc/rpc.h"
#include "src/rpc/wire.h"

namespace itc::protection {

enum class ProtectionProc : uint32_t {
  kCreateUser = 1,       // name, password -> user id
  kCreateGroup = 2,      // name -> group id
  kAddToGroup = 3,       // principal, group
  kRemoveFromGroup = 4,  // principal, group
  kSetPassword = 5,      // user, password (self or administrator)
  kWhoAmI = 6,           // () -> caller's user id and CPS size
};

// The protection server's typed op table; only kWhoAmI is idempotent — every
// mutation must run at most once.
const rpc::OpSchema& ProtectionOpSchema();

class ProtectionRpcServer {
 public:
  ProtectionRpcServer(NodeId node, net::Network* network, const sim::CostModel& cost,
                      rpc::RpcConfig rpc_config, ProtectionService* service,
                      uint64_t nonce_seed);

  rpc::ServerEndpoint& endpoint() { return endpoint_; }
  const rpc::ServerEndpoint& endpoint() const { return endpoint_; }

 private:
  void BindOps();
  bool IsAdministrator(UserId user) const;

  Bytes HandleWhoAmI(rpc::CallContext& ctx);
  Bytes HandleCreateUser(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleCreateGroup(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleGroupMembership(rpc::CallContext& ctx, rpc::Reader& r, bool add);
  Bytes HandleSetPassword(rpc::CallContext& ctx, rpc::Reader& r);

  ProtectionService* service_;
  rpc::OpRegistry registry_;
  rpc::ServerEndpoint endpoint_;
};

// Client-side stub.
class ProtectionClient {
 public:
  ProtectionClient(NodeId node, sim::Clock* clock, ProtectionRpcServer* server,
                   net::Network* network, const sim::CostModel& cost);

  [[nodiscard]] Status Connect(UserId user, const crypto::Key& user_key, uint64_t seed);

  [[nodiscard]] Result<UserId> CreateUser(const std::string& name, const std::string& password);
  [[nodiscard]] Result<GroupId> CreateGroup(const std::string& name);
  [[nodiscard]] Status AddToGroup(Principal member, GroupId group);
  [[nodiscard]] Status RemoveFromGroup(Principal member, GroupId group);
  [[nodiscard]] Status SetPassword(UserId user, const std::string& password);
  // Returns (authenticated user id, CPS size) — a liveness/identity check.
  [[nodiscard]] Result<std::pair<UserId, uint32_t>> WhoAmI();

 private:
  [[nodiscard]] Result<Bytes> Call(ProtectionProc proc, const Bytes& request);

  NodeId node_;
  sim::Clock* clock_;
  ProtectionRpcServer* server_;
  net::Network* network_;
  sim::CostModel cost_;
  std::unique_ptr<rpc::ClientConnection> conn_;
};

}  // namespace itc::protection

#endif  // SRC_PROTECTION_PROTECTION_RPC_H_
