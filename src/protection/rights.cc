#include "src/protection/rights.h"

namespace itc::protection {

std::string RightsToString(Rights r) {
  std::string out = "-------";
  const struct {
    Rights bit;
    char ch;
    int pos;
  } table[] = {
      {kLookup, 'l', 0}, {kRead, 'r', 1},  {kWrite, 'w', 2},      {kInsert, 'i', 3},
      {kDelete, 'd', 4}, {kLock, 'k', 5},  {kAdminister, 'a', 6},
  };
  for (const auto& e : table) {
    if (HasRights(r, e.bit)) out[e.pos] = e.ch;
  }
  return out;
}

}  // namespace itc::protection
