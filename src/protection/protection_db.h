// The protection database: users, recursive groups, and CPS computation.
//
// "Entries on an access list are from a protection domain consisting of
//  Users ... and Groups, which are collections of users and other groups.
//  The recursive membership of groups is similar to that of the registration
//  database in Grapevine." (Section 3.4)
//
// The database also stores each user's long-term authentication key (derived
// from the password); the RPC layer's handshake looks keys up here.
//
// A user's Current Protection Subdomain (CPS) is himself plus every group he
// belongs to directly or indirectly, plus System:AnyUser. Membership cycles
// among groups are tolerated (the closure just converges).

#ifndef SRC_PROTECTION_PROTECTION_DB_H_
#define SRC_PROTECTION_PROTECTION_DB_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/crypto/key.h"
#include "src/protection/principal.h"

namespace itc::protection {

class ProtectionDb {
 public:
  // Creates the database with the built-in System:AnyUser and
  // System:Administrators groups.
  ProtectionDb();

  // --- Users ---------------------------------------------------------------
  [[nodiscard]] Result<UserId> CreateUser(const std::string& name, const std::string& password);
  [[nodiscard]] Result<UserId> LookupUser(const std::string& name) const;
  std::optional<crypto::Key> UserKey(UserId user) const;
  [[nodiscard]] Result<std::string> UserName(UserId user) const;
  [[nodiscard]] Status SetPassword(UserId user, const std::string& password);
  bool UserExists(UserId user) const { return users_.contains(user); }

  // --- Groups ---------------------------------------------------------------
  [[nodiscard]] Result<GroupId> CreateGroup(const std::string& name);
  [[nodiscard]] Result<GroupId> LookupGroup(const std::string& name) const;
  [[nodiscard]] Result<std::string> GroupName(GroupId group) const;
  bool GroupExists(GroupId group) const { return groups_.contains(group); }

  // Adds `member` (a user or another group) to `group`. Adding a group to
  // itself is rejected; deeper cycles are permitted and handled by CPS.
  [[nodiscard]] Status AddToGroup(Principal member, GroupId group);
  [[nodiscard]] Status RemoveFromGroup(Principal member, GroupId group);
  bool IsDirectMember(Principal member, GroupId group) const;

  // Direct members of a group.
  [[nodiscard]] Result<std::vector<Principal>> Members(GroupId group) const;

  // --- CPS ------------------------------------------------------------------
  // Current Protection Subdomain of a user: {user} ∪ transitive groups ∪
  // {System:AnyUser}. Unknown users get just {user, System:AnyUser} (they can
  // still hold rights granted to AnyUser — the anonymous case).
  std::vector<Principal> CPS(UserId user) const;

  // Version increments on every mutation; replicas use it to detect
  // staleness.
  uint64_t version() const { return version_; }

  size_t user_count() const { return users_.size(); }
  size_t group_count() const { return groups_.size(); }

 private:
  struct UserRecord {
    std::string name;
    crypto::Key key;
  };
  struct GroupRecord {
    std::string name;
    std::set<Principal> members;
  };

  // Derivation salt for password keys; acts as the "cell name".
  static constexpr char kRealm[] = "itc.cmu.edu";

  std::map<UserId, UserRecord> users_;
  std::map<GroupId, GroupRecord> groups_;
  std::map<std::string, UserId> user_names_;
  std::map<std::string, GroupId> group_names_;
  // Reverse index: principal -> groups it is a direct member of.
  std::map<Principal, std::set<GroupId>> memberships_;
  UserId next_user_ = 100;    // ids below 100 reserved
  GroupId next_group_ = 100;  // built-ins live below 100
  uint64_t version_ = 0;
};

}  // namespace itc::protection

#endif  // SRC_PROTECTION_PROTECTION_DB_H_
