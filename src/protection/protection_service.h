// The protection server (Sections 3.4, 3.5.2).
//
// "Information about users and groups is stored in a protection database
//  which is replicated at each cluster server. Manipulation of this database
//  is via a protection server, which coordinates the updating of the
//  database at all sites."
//
// ProtectionService owns the master database; each Vice server holds a
// Replica handle. Mutations go through the service, which re-publishes an
// immutable snapshot to every registered replica (the slow, rarely-exercised
// path — "avoid frequent, system-wide rapid change"). Reads (CPS evaluation,
// key lookup during the RPC handshake) hit the local replica snapshot.

#ifndef SRC_PROTECTION_PROTECTION_SERVICE_H_
#define SRC_PROTECTION_PROTECTION_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/protection/protection_db.h"

namespace itc::protection {

// A cluster server's replica of the protection database: an immutable
// snapshot swapped wholesale on update.
class Replica {
 public:
  std::shared_ptr<const ProtectionDb> snapshot() const { return snapshot_; }
  uint64_t version() const { return snapshot_ ? snapshot_->version() : 0; }

 private:
  friend class ProtectionService;
  std::shared_ptr<const ProtectionDb> snapshot_;
};

class ProtectionService {
 public:
  ProtectionService() : master_(std::make_shared<ProtectionDb>()) {}

  // Registers a replica and immediately publishes the current snapshot to
  // it. The replica must outlive the service or be unregistered... replicas
  // are owned by Vice servers which share the service's lifetime in all of
  // our deployments.
  void RegisterReplica(Replica* replica);

  // Number of replica publications performed (a proxy for the cost of
  // system-wide change; benches report it).
  uint64_t publications() const { return publications_; }

  // --- Mutations (coordinated; republished to all replicas) ----------------
  [[nodiscard]] Result<UserId> CreateUser(const std::string& name, const std::string& password);
  [[nodiscard]] Result<GroupId> CreateGroup(const std::string& name);
  [[nodiscard]] Status AddToGroup(Principal member, GroupId group);
  [[nodiscard]] Status RemoveFromGroup(Principal member, GroupId group);
  [[nodiscard]] Status SetPassword(UserId user, const std::string& password);

  // --- Reads against the master (admin paths) ------------------------------
  const ProtectionDb& db() const { return *master_; }

 private:
  void Publish();

  std::shared_ptr<ProtectionDb> master_;
  std::vector<Replica*> replicas_;
  uint64_t publications_ = 0;
};

}  // namespace itc::protection

#endif  // SRC_PROTECTION_PROTECTION_SERVICE_H_
