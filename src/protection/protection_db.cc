#include "src/protection/protection_db.h"

#include <deque>

namespace itc::protection {

constexpr char ProtectionDb::kRealm[];

ProtectionDb::ProtectionDb() {
  groups_[kAnyUserGroup] = GroupRecord{"System:AnyUser", {}};
  group_names_["System:AnyUser"] = kAnyUserGroup;
  groups_[kAdministratorsGroup] = GroupRecord{"System:Administrators", {}};
  group_names_["System:Administrators"] = kAdministratorsGroup;
}

Result<UserId> ProtectionDb::CreateUser(const std::string& name, const std::string& password) {
  if (name.empty()) return Status::kInvalidArgument;
  if (user_names_.contains(name)) return Status::kAlreadyExists;
  const UserId id = next_user_++;
  users_[id] = UserRecord{name, crypto::DeriveKeyFromPassword(password, kRealm)};
  user_names_[name] = id;
  ++version_;
  return id;
}

Result<UserId> ProtectionDb::LookupUser(const std::string& name) const {
  auto it = user_names_.find(name);
  if (it == user_names_.end()) return Status::kNotFound;
  return it->second;
}

std::optional<crypto::Key> ProtectionDb::UserKey(UserId user) const {
  auto it = users_.find(user);
  if (it == users_.end()) return std::nullopt;
  return it->second.key;
}

Result<std::string> ProtectionDb::UserName(UserId user) const {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::kNotFound;
  return it->second.name;
}

Status ProtectionDb::SetPassword(UserId user, const std::string& password) {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::kNotFound;
  it->second.key = crypto::DeriveKeyFromPassword(password, kRealm);
  ++version_;
  return Status::kOk;
}

Result<GroupId> ProtectionDb::CreateGroup(const std::string& name) {
  if (name.empty()) return Status::kInvalidArgument;
  if (group_names_.contains(name)) return Status::kAlreadyExists;
  const GroupId id = next_group_++;
  groups_[id] = GroupRecord{name, {}};
  group_names_[name] = id;
  ++version_;
  return id;
}

Result<GroupId> ProtectionDb::LookupGroup(const std::string& name) const {
  auto it = group_names_.find(name);
  if (it == group_names_.end()) return Status::kNotFound;
  return it->second;
}

Result<std::string> ProtectionDb::GroupName(GroupId group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return Status::kNotFound;
  return it->second.name;
}

Status ProtectionDb::AddToGroup(Principal member, GroupId group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return Status::kNotFound;
  if (member.kind == Principal::Kind::kUser) {
    if (!users_.contains(member.id)) return Status::kNotFound;
  } else {
    if (!groups_.contains(member.id)) return Status::kNotFound;
    if (member.id == group) return Status::kInvalidArgument;
  }
  if (!it->second.members.insert(member).second) return Status::kAlreadyExists;
  memberships_[member].insert(group);
  ++version_;
  return Status::kOk;
}

Status ProtectionDb::RemoveFromGroup(Principal member, GroupId group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return Status::kNotFound;
  if (it->second.members.erase(member) == 0) return Status::kNotFound;
  memberships_[member].erase(group);
  ++version_;
  return Status::kOk;
}

bool ProtectionDb::IsDirectMember(Principal member, GroupId group) const {
  auto it = groups_.find(group);
  return it != groups_.end() && it->second.members.contains(member);
}

Result<std::vector<Principal>> ProtectionDb::Members(GroupId group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return Status::kNotFound;
  return std::vector<Principal>(it->second.members.begin(), it->second.members.end());
}

std::vector<Principal> ProtectionDb::CPS(UserId user) const {
  std::set<Principal> cps;
  cps.insert(Principal::User(user));
  cps.insert(Principal::Group(kAnyUserGroup));

  // Breadth-first closure over the reverse membership index.
  std::deque<Principal> frontier;
  frontier.push_back(Principal::User(user));
  while (!frontier.empty()) {
    const Principal p = frontier.front();
    frontier.pop_front();
    auto it = memberships_.find(p);
    if (it == memberships_.end()) continue;
    for (GroupId g : it->second) {
      if (cps.insert(Principal::Group(g)).second) {
        frontier.push_back(Principal::Group(g));
      }
    }
  }
  return std::vector<Principal>(cps.begin(), cps.end());
}

}  // namespace itc::protection
