#include "src/protection/protection_rpc.h"

#include "src/rpc/wire.h"

namespace itc::protection {

namespace {

Result<Principal> ReadPrincipal(rpc::Reader& r) {
  ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind > 1) return Status::kProtocolError;
  ASSIGN_OR_RETURN(uint32_t id, r.U32());
  return Principal{static_cast<Principal::Kind>(kind), id};
}

void PutPrincipal(rpc::Writer& w, Principal p) {
  w.PutU8(static_cast<uint8_t>(p.kind));
  w.PutU32(p.id);
}

}  // namespace

const rpc::OpSchema& ProtectionOpSchema() {
  using P = ProtectionProc;
  auto op = [](P p) { return static_cast<uint32_t>(p); };
  static const rpc::OpSchema schema(
      "protection",
      {
          {op(P::kCreateUser), "CreateUser", rpc::CallClass::kOther, false, 0,
           "`string name, string password`", "`u32 user`"},
          {op(P::kCreateGroup), "CreateGroup", rpc::CallClass::kOther, false, 0,
           "`string name`", "`u32 group`"},
          {op(P::kAddToGroup), "AddToGroup", rpc::CallClass::kOther, false, 0,
           "`u8 kind (0 user, 1 group), u32 id, u32 group`", "—"},
          {op(P::kRemoveFromGroup), "RemoveFromGroup", rpc::CallClass::kOther, false, 0,
           "`u8 kind (0 user, 1 group), u32 id, u32 group`", "—"},
          {op(P::kSetPassword), "SetPassword", rpc::CallClass::kOther, false, 0,
           "`u32 user, string password`", "—"},
          {op(P::kWhoAmI), "WhoAmI", rpc::CallClass::kOther, true, 0, "—",
           "`u32 user, u32 cps_size`"},
      });
  return schema;
}

ProtectionRpcServer::ProtectionRpcServer(NodeId node, net::Network* network,
                                         const sim::CostModel& cost,
                                         rpc::RpcConfig rpc_config,
                                         ProtectionService* service, uint64_t nonce_seed)
    : service_(service),
      registry_(&ProtectionOpSchema()),
      endpoint_(
          node, network, cost, rpc_config,
          [service](UserId user) { return service->db().UserKey(user); }, nonce_seed) {
  BindOps();
  endpoint_.set_registry(&registry_);
}

void ProtectionRpcServer::BindOps() {
  auto bind = [this](ProtectionProc proc, auto handler) {
    registry_.Bind(static_cast<uint32_t>(proc),
                   [this, handler](rpc::CallContext& ctx,
                                   const Bytes& request) -> Result<Bytes> {
                     rpc::Reader r(request);
                     return handler(ctx, r);
                   });
  };
  bind(ProtectionProc::kWhoAmI,
       [this](rpc::CallContext& ctx, rpc::Reader&) { return HandleWhoAmI(ctx); });
  bind(ProtectionProc::kCreateUser, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleCreateUser(ctx, r);
  });
  bind(ProtectionProc::kCreateGroup, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleCreateGroup(ctx, r);
  });
  bind(ProtectionProc::kAddToGroup, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleGroupMembership(ctx, r, /*add=*/true);
  });
  bind(ProtectionProc::kRemoveFromGroup, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleGroupMembership(ctx, r, /*add=*/false);
  });
  bind(ProtectionProc::kSetPassword, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleSetPassword(ctx, r);
  });
}

bool ProtectionRpcServer::IsAdministrator(UserId user) const {
  for (const Principal& p : service_->db().CPS(user)) {
    if (p.kind == Principal::Kind::kGroup && p.id == kAdministratorsGroup) return true;
  }
  return false;
}

Bytes ProtectionRpcServer::HandleWhoAmI(rpc::CallContext& ctx) {
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutU32(ctx.user());
  w.PutU32(static_cast<uint32_t>(service_->db().CPS(ctx.user()).size()));
  return w.Take();
}

// Every mutation except SetPassword-on-self is administrators-only.

Bytes ProtectionRpcServer::HandleCreateUser(rpc::CallContext& ctx, rpc::Reader& r) {
  if (!IsAdministrator(ctx.user())) return rpc::StatusOnlyReply(Status::kPermissionDenied);
  auto name = r.String();
  auto pw = name.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  if (!pw.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
  auto user = service_->CreateUser(*name, *pw);
  if (!user.ok()) return rpc::StatusOnlyReply(user.status());
  ctx.ChargeDisk(0);  // database update
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutU32(*user);
  return w.Take();
}

Bytes ProtectionRpcServer::HandleCreateGroup(rpc::CallContext& ctx, rpc::Reader& r) {
  if (!IsAdministrator(ctx.user())) return rpc::StatusOnlyReply(Status::kPermissionDenied);
  auto name = r.String();
  if (!name.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
  auto group = service_->CreateGroup(*name);
  if (!group.ok()) return rpc::StatusOnlyReply(group.status());
  ctx.ChargeDisk(0);
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutU32(*group);
  return w.Take();
}

Bytes ProtectionRpcServer::HandleGroupMembership(rpc::CallContext& ctx, rpc::Reader& r,
                                                 bool add) {
  if (!IsAdministrator(ctx.user())) return rpc::StatusOnlyReply(Status::kPermissionDenied);
  auto member = ReadPrincipal(r);
  auto group = member.ok() ? r.U32() : Result<uint32_t>(Status::kProtocolError);
  if (!group.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
  ctx.ChargeDisk(0);
  return rpc::StatusOnlyReply(add ? service_->AddToGroup(*member, *group)
                                  : service_->RemoveFromGroup(*member, *group));
}

Bytes ProtectionRpcServer::HandleSetPassword(rpc::CallContext& ctx, rpc::Reader& r) {
  auto user = r.U32();
  auto pw = user.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  if (!pw.ok()) return rpc::StatusOnlyReply(Status::kProtocolError);
  if (*user != ctx.user() && !IsAdministrator(ctx.user())) {
    return rpc::StatusOnlyReply(Status::kPermissionDenied);
  }
  ctx.ChargeDisk(0);
  return rpc::StatusOnlyReply(service_->SetPassword(*user, *pw));
}

ProtectionClient::ProtectionClient(NodeId node, sim::Clock* clock,
                                   ProtectionRpcServer* server, net::Network* network,
                                   const sim::CostModel& cost)
    : node_(node), clock_(clock), server_(server), network_(network), cost_(cost) {}

Status ProtectionClient::Connect(UserId user, const crypto::Key& user_key, uint64_t seed) {
  ASSIGN_OR_RETURN(conn_, rpc::ClientConnection::Connect(
                              node_, user, user_key, &server_->endpoint(), network_,
                              cost_, clock_, seed,
                              rpc::ClientOptions{&ProtectionOpSchema(), nullptr}));
  return Status::kOk;
}

Result<Bytes> ProtectionClient::Call(ProtectionProc proc, const Bytes& request) {
  if (conn_ == nullptr) return Status::kConnectionBroken;
  return conn_->Call(static_cast<uint32_t>(proc), request);
}

Result<UserId> ProtectionClient::CreateUser(const std::string& name,
                                            const std::string& password) {
  rpc::Writer w;
  w.PutString(name);
  w.PutString(password);
  ASSIGN_OR_RETURN(Bytes reply, Call(ProtectionProc::kCreateUser, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  return r.U32();
}

Result<GroupId> ProtectionClient::CreateGroup(const std::string& name) {
  rpc::Writer w;
  w.PutString(name);
  ASSIGN_OR_RETURN(Bytes reply, Call(ProtectionProc::kCreateGroup, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  return r.U32();
}

Status ProtectionClient::AddToGroup(Principal member, GroupId group) {
  rpc::Writer w;
  PutPrincipal(w, member);
  w.PutU32(group);
  ASSIGN_OR_RETURN(Bytes reply, Call(ProtectionProc::kAddToGroup, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status ProtectionClient::RemoveFromGroup(Principal member, GroupId group) {
  rpc::Writer w;
  PutPrincipal(w, member);
  w.PutU32(group);
  ASSIGN_OR_RETURN(Bytes reply, Call(ProtectionProc::kRemoveFromGroup, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status ProtectionClient::SetPassword(UserId user, const std::string& password) {
  rpc::Writer w;
  w.PutU32(user);
  w.PutString(password);
  ASSIGN_OR_RETURN(Bytes reply, Call(ProtectionProc::kSetPassword, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Result<std::pair<UserId, uint32_t>> ProtectionClient::WhoAmI() {
  ASSIGN_OR_RETURN(Bytes reply, Call(ProtectionProc::kWhoAmI, Bytes{}));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(UserId user, r.U32());
  ASSIGN_OR_RETURN(uint32_t cps, r.U32());
  return std::make_pair(user, cps);
}

}  // namespace itc::protection
