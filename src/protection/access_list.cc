#include "src/protection/access_list.h"

#include "src/rpc/wire.h"

namespace itc::protection {

void AccessList::SetPositive(Principal who, Rights rights) {
  if (rights == kNone) {
    positive_.erase(who);
  } else {
    positive_[who] = rights;
  }
}

void AccessList::SetNegative(Principal who, Rights rights) {
  if (rights == kNone) {
    negative_.erase(who);
  } else {
    negative_[who] = rights;
  }
}

void AccessList::Remove(Principal who) {
  positive_.erase(who);
  negative_.erase(who);
}

Rights AccessList::PositiveFor(Principal who) const {
  auto it = positive_.find(who);
  return it == positive_.end() ? kNone : it->second;
}

Rights AccessList::NegativeFor(Principal who) const {
  auto it = negative_.find(who);
  return it == negative_.end() ? kNone : it->second;
}

Rights AccessList::Effective(const std::vector<Principal>& cps) const {
  Rights granted = kNone;
  Rights denied = kNone;
  for (const Principal& p : cps) {
    granted = granted | PositiveFor(p);
    denied = denied | NegativeFor(p);
  }
  return granted & ~denied;
}

Bytes AccessList::Serialize() const {
  rpc::Writer w;
  auto put_side = [&w](const std::map<Principal, Rights>& side) {
    w.PutU32(static_cast<uint32_t>(side.size()));
    for (const auto& [who, rights] : side) {
      w.PutU8(static_cast<uint8_t>(who.kind));
      w.PutU32(who.id);
      w.PutU32(static_cast<uint32_t>(rights));
    }
  };
  put_side(positive_);
  put_side(negative_);
  return w.Take();
}

Result<AccessList> AccessList::Deserialize(const Bytes& data) {
  rpc::Reader r(data);
  AccessList out;
  for (int side = 0; side < 2; ++side) {
    ASSIGN_OR_RETURN(uint32_t count, r.U32());
    for (uint32_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(uint8_t kind, r.U8());
      if (kind > 1) return Status::kProtocolError;
      ASSIGN_OR_RETURN(uint32_t id, r.U32());
      ASSIGN_OR_RETURN(uint32_t rights, r.U32());
      if ((rights & ~static_cast<uint32_t>(kAllRights)) != 0) return Status::kProtocolError;
      const Principal who{static_cast<Principal::Kind>(kind), id};
      if (side == 0) {
        out.SetPositive(who, static_cast<Rights>(rights));
      } else {
        out.SetNegative(who, static_cast<Rights>(rights));
      }
    }
  }
  if (!r.AtEnd()) return Status::kProtocolError;
  return out;
}

}  // namespace itc::protection
