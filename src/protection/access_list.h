// Access lists with positive and negative rights (Section 3.4).
//
// "The rights possessed by a user on a protected object are the union of the
//  rights specified for all the groups that he belongs to ... The union of
//  all the negative rights specified for a user's CPS is subtracted from his
//  positive rights."
//
// Negative rights are the rapid-revocation mechanism: revoking via group
// removal touches the replicated protection database (slow, distributed);
// granting a negative right edits one access list at one site.

#ifndef SRC_PROTECTION_ACCESS_LIST_H_
#define SRC_PROTECTION_ACCESS_LIST_H_

#include <map>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/protection/principal.h"
#include "src/protection/rights.h"

namespace itc::protection {

class AccessList {
 public:
  // Grants (replaces) positive rights for a principal. kNone removes the
  // entry.
  void SetPositive(Principal who, Rights rights);
  // Sets (replaces) negative rights for a principal. kNone removes the entry.
  void SetNegative(Principal who, Rights rights);
  // Removes both positive and negative entries for a principal.
  void Remove(Principal who);

  Rights PositiveFor(Principal who) const;
  Rights NegativeFor(Principal who) const;

  // Effective rights for a user whose Current Protection Subdomain is `cps`:
  // union of positive entries matching the CPS minus union of negative
  // entries matching the CPS.
  Rights Effective(const std::vector<Principal>& cps) const;

  size_t entry_count() const { return positive_.size() + negative_.size(); }
  bool empty() const { return positive_.empty() && negative_.empty(); }

  const std::map<Principal, Rights>& positive() const { return positive_; }
  const std::map<Principal, Rights>& negative() const { return negative_; }

  // Wire/storage encoding (stable, versionless).
  Bytes Serialize() const;
  [[nodiscard]] static Result<AccessList> Deserialize(const Bytes& data);

  friend bool operator==(const AccessList&, const AccessList&) = default;

 private:
  std::map<Principal, Rights> positive_;
  std::map<Principal, Rights> negative_;
};

}  // namespace itc::protection

#endif  // SRC_PROTECTION_ACCESS_LIST_H_
