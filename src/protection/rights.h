// Access rights on protected Vice objects (Section 3.4).
//
// Rights are a bitmask. The set follows the Vice design: directory rights
// control "the fetching and storing of files, the creation and deletion of
// new directory entries, and modifications to the access list".

#ifndef SRC_PROTECTION_RIGHTS_H_
#define SRC_PROTECTION_RIGHTS_H_

#include <cstdint>
#include <string>

namespace itc::protection {

enum Rights : uint32_t {
  kNone = 0,
  kLookup = 1u << 0,      // list the directory, stat entries
  kRead = 1u << 1,        // fetch files in the directory
  kWrite = 1u << 2,       // store (overwrite) files in the directory
  kInsert = 1u << 3,      // create new entries
  kDelete = 1u << 4,      // remove entries
  kLock = 1u << 5,        // acquire advisory locks
  kAdminister = 1u << 6,  // modify the access list

  kAllRights = kLookup | kRead | kWrite | kInsert | kDelete | kLock | kAdminister,
  kReadOnlyRights = kLookup | kRead | kLock,
};

inline Rights operator|(Rights a, Rights b) {
  return static_cast<Rights>(static_cast<uint32_t>(a) | static_cast<uint32_t>(b));
}
inline Rights operator&(Rights a, Rights b) {
  return static_cast<Rights>(static_cast<uint32_t>(a) & static_cast<uint32_t>(b));
}
inline Rights operator~(Rights a) {
  return static_cast<Rights>(~static_cast<uint32_t>(a) & static_cast<uint32_t>(kAllRights));
}
inline bool HasRights(Rights held, Rights wanted) { return (held & wanted) == wanted; }

// Renders e.g. "lrwidka" style string: "lr-i---".
std::string RightsToString(Rights r);

}  // namespace itc::protection

#endif  // SRC_PROTECTION_RIGHTS_H_
