// Principals: users and groups in the protection domain.

#ifndef SRC_PROTECTION_PRINCIPAL_H_
#define SRC_PROTECTION_PRINCIPAL_H_

#include <cstdint>
#include <functional>

#include "src/common/types.h"

namespace itc::protection {

struct Principal {
  enum class Kind : uint8_t { kUser, kGroup };

  Kind kind = Kind::kUser;
  uint32_t id = 0;

  static Principal User(UserId u) { return Principal{Kind::kUser, u}; }
  static Principal Group(GroupId g) { return Principal{Kind::kGroup, g}; }

  friend bool operator==(const Principal&, const Principal&) = default;
  friend auto operator<=>(const Principal&, const Principal&) = default;
};

struct PrincipalHash {
  size_t operator()(const Principal& p) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(p.kind) << 32) | p.id);
  }
};

// Built-in groups created by every ProtectionDb.
inline constexpr GroupId kAnyUserGroup = 1;        // "System:AnyUser"
inline constexpr GroupId kAdministratorsGroup = 2; // "System:Administrators"

}  // namespace itc::protection

#endif  // SRC_PROTECTION_PRINCIPAL_H_
