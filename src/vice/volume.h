// Volumes: relocatable subtrees of Vice files (Section 5.3).
//
// "A volume is a complete subtree of files whose root may be arbitrarily
//  relocated in the Vice name space. It is thus similar to a mountable disk
//  pack... Each volume may be turned offline or online, moved between
//  servers and salvaged after a system crash. A volume may also be Cloned,
//  thereby creating a frozen, read-only replica... We will use copy-on-write
//  semantics to make cloning a relatively inexpensive operation."
//
// A Volume owns its vnode table. File data is held as a content::Ref — a
// lazy generative record plus a shared, interned literal tail — so a clone
// shares every byte with its parent until either side is written (the
// copy-on-write the paper calls for), and synthetic populated contents cost
// ~32 bytes however large the file. Quota, status lengths, and dump images
// are all accounted at the logical byte size; only code that needs real
// bytes (FetchData, Dump) materializes, transiently. Volumes enforce quota
// (Section 3.6) and read-only-ness; protection checks belong to the
// FileServer above.

#ifndef SRC_VICE_VOLUME_H_
#define SRC_VICE_VOLUME_H_

#include <cstdint>
#include <memory>
#include <string>

#include <unordered_map>
#include <unordered_set>

#include "src/common/content.h"
#include "src/common/fid.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/protection/access_list.h"
#include "src/vice/vnode.h"

namespace itc::vice {

enum class VolumeType : uint8_t { kReadWrite, kReadOnly };

class Volume {
 public:
  // Fixed accounting overhead charged against quota per vnode.
  static constexpr uint64_t kPerVnodeOverhead = 128;

  // Creates a volume with a root directory (vnode 1.1) owned by `owner` and
  // protected by `root_acl`. `quota_bytes` of 0 means unlimited.
  Volume(VolumeId id, std::string name, VolumeType type, UserId owner,
         protection::AccessList root_acl, uint64_t quota_bytes);

  VolumeId id() const { return id_; }
  const std::string& name() const { return name_; }
  VolumeType type() const { return type_; }
  bool read_only() const { return type_ == VolumeType::kReadOnly; }
  Fid root() const { return VolumeRootFid(id_); }

  bool online() const { return online_; }
  void set_online(bool v) { online_ = v; }

  uint64_t quota_bytes() const { return quota_bytes_; }
  void set_quota_bytes(uint64_t q) { quota_bytes_ = q; }
  uint64_t usage_bytes() const { return usage_bytes_; }
  size_t vnode_count() const { return vnodes_.size(); }

  // Virtual time source for mtimes; the owning server keeps this current.
  void set_now(SimTime t) { now_ = t; }

  struct Vnode {
    VnodeStatus status;
    content::Ref data;           // file contents / symlink target (dirs: empty)
    DirMap entries;              // directories only
    protection::AccessList acl;  // directories only
  };

  // --- Lookup ----------------------------------------------------------------
  // Fails with kVolumeOffline when offline, kStaleFid when the fid's vnode
  // slot is gone or its uniquifier does not match (deleted & never reused).
  [[nodiscard]] Result<const Vnode*> Lookup(const Fid& fid) const;

  // --- Directory operations ---------------------------------------------------
  [[nodiscard]] Result<Fid> CreateFile(const Fid& dir, const std::string& name, UserId owner,
                         uint16_t mode);
  [[nodiscard]] Result<Fid> MakeDir(const Fid& dir, const std::string& name, UserId owner,
                      const protection::AccessList& acl);
  [[nodiscard]] Result<Fid> MakeSymlink(const Fid& dir, const std::string& name, const std::string& target,
                          UserId owner);
  [[nodiscard]] Status MakeMountPoint(const Fid& dir, const std::string& name, VolumeId target);
  // Removes a file, symlink, or mount point entry.
  [[nodiscard]] Status RemoveFile(const Fid& dir, const std::string& name);
  // Removes an empty directory.
  [[nodiscard]] Status RemoveDir(const Fid& dir, const std::string& name);
  [[nodiscard]] Status Rename(const Fid& from_dir, const std::string& from_name, const Fid& to_dir,
                const std::string& to_name);

  // --- Data operations ---------------------------------------------------------
  // Fetches file/symlink data, or serialized entries for a directory. The
  // returned buffer is materialized transiently (the wire carries bytes).
  [[nodiscard]] Result<Bytes> FetchData(const Fid& fid) const;
  // Stores literal bytes: canonicalized (generative prefix recognized,
  // literal tail interned) and handed to StoreRef.
  [[nodiscard]] Status StoreData(const Fid& fid, Bytes data);
  // Stores contents by reference without materializing — the populate path
  // and intention-log replay. Quota and status.length use the logical size.
  [[nodiscard]] Status StoreRef(const Fid& fid, content::Ref data);
  // The stored representation of a file or symlink (kIsDirectory for
  // directories) — equivalence tests and memory accounting.
  [[nodiscard]] Result<const content::Ref*> FetchRef(const Fid& fid) const;

  // --- Status / protection -------------------------------------------------------
  [[nodiscard]] Result<VnodeStatus> GetStatus(const Fid& fid) const;
  [[nodiscard]] Status SetMode(const Fid& fid, uint16_t mode);
  [[nodiscard]] Status SetOwner(const Fid& fid, UserId owner);
  [[nodiscard]] Status SetAcl(const Fid& dir, const protection::AccessList& acl);
  // For a directory: its own ACL. For a file or symlink: the ACL of its
  // parent directory ("the protected entities are directories", §3.4).
  [[nodiscard]] Result<protection::AccessList> EffectiveAcl(const Fid& fid) const;

  // --- Administration -------------------------------------------------------------
  // Frozen read-only copy sharing file data copy-on-write. Fids inside the
  // clone carry the clone's volume id with unchanged vnode/uniquifier.
  std::unique_ptr<Volume> Clone(VolumeId clone_id, const std::string& clone_name) const;

  // Serializes the whole volume — status, data, directories, access lists,
  // counters — to a flat byte stream, and reconstructs an identical volume
  // from one. This is the backup path behind the paper's Integrity goal
  // ("users should not feel compelled to make backup copies of their
  // files"): operations clones a volume (cheap, copy-on-write) and dumps
  // the frozen clone to tape. `new_id` rebrands all contained fids, as
  // Clone does; pass the dumped volume's own id to restore in place.
  Bytes Dump() const;
  [[nodiscard]] static Result<std::unique_ptr<Volume>> Restore(const Bytes& dump, VolumeId new_id,
                                                 const std::string& new_name,
                                                 VolumeType type);

  // Exact in-memory snapshot: same id, name, type, counters, and metadata,
  // sharing every data block with this volume copy-on-write. O(vnodes) with
  // no byte serialization, so StableStore can checkpoint on every interval
  // without re-copying file contents; Dump() remains the wire/backup format.
  std::unique_ptr<Volume> Snapshot() const;
  // The size of the stream Dump() would produce, computed without copying
  // file contents (the simulated checkpoint disk charge needs the byte
  // count, not the bytes). Pinned to Dump().size() by volume_test.
  uint64_t DumpSize() const;

  struct SalvageReport {
    uint32_t dangling_entries_removed = 0;  // dir entries pointing nowhere
    uint32_t orphan_vnodes_removed = 0;     // vnodes reachable from no directory
    uint32_t parents_fixed = 0;
    uint64_t usage_corrected_bytes = 0;
    bool clean() const {
      return dangling_entries_removed == 0 && orphan_vnodes_removed == 0 &&
             parents_fixed == 0 && usage_corrected_bytes == 0;
    }
  };
  // Consistency check and repair after a crash: drops dangling directory
  // entries, removes unreachable vnodes, fixes parent pointers, recomputes
  // quota usage.
  SalvageReport Salvage();

  // Host bytes actually held for file contents, counting each buffer shared
  // across clones/snapshots/volumes once per `seen` set. This is the memory
  // diet's accounting, not the simulated disk usage (usage_bytes()).
  uint64_t RetainedContentBytes(std::unordered_set<const void*>* seen) const;

 private:
  [[nodiscard]] Result<Vnode*> LookupMutable(const Fid& fid);
  [[nodiscard]] Result<Vnode*> LookupDirMutable(const Fid& fid);
  Fid NewFid();
  Vnode& Node(uint32_t vnode) { return vnodes_.at(vnode); }
  void TouchDir(Vnode& dir);
  // Charges (new - old) bytes against quota; kQuotaExceeded if over.
  [[nodiscard]] Status ChargeQuota(int64_t delta);
  static uint64_t DirDataSize(const DirMap& entries);

  VolumeId id_;
  std::string name_;
  VolumeType type_;
  bool online_ = true;
  uint64_t quota_bytes_;
  uint64_t usage_bytes_ = 0;
  uint32_t next_vnode_ = 2;       // 1 is the root
  uint32_t next_uniquifier_ = 2;  // 1 is the root's
  SimTime now_ = 0;
  std::unordered_map<uint32_t, Vnode> vnodes_;
};

}  // namespace itc::vice

#endif  // SRC_VICE_VOLUME_H_
