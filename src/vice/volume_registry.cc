#include "src/vice/volume_registry.h"

#include "src/common/logging.h"

namespace itc::vice {

void VolumeRegistry::RegisterServer(ViceServer* server) {
  ITC_CHECK(server != nullptr);
  servers_[server->id()] = server;
  server->SetLocationSnapshot(std::make_shared<const LocationDb>(master_));
}

ViceServer* VolumeRegistry::ServerById(ServerId id) const {
  auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : it->second;
}

std::vector<ViceServer*> VolumeRegistry::Servers() const {
  std::vector<ViceServer*> out;
  out.reserve(servers_.size());
  for (const auto& [id, server] : servers_) out.push_back(server);
  return out;
}

void VolumeRegistry::Publish() {
  master_.version += 1;
  auto snapshot = std::make_shared<const LocationDb>(master_);
  for (const auto& [id, server] : servers_) server->SetLocationSnapshot(snapshot);
}

Result<ViceServer*> VolumeRegistry::CustodianOf(VolumeId volume) const {
  auto info = master_.Find(volume);
  if (!info.has_value()) return Status::kNotFound;
  ViceServer* server = ServerById(info->custodian);
  if (server == nullptr) return Status::kUnavailable;
  return server;
}

Volume* VolumeRegistry::FindVolume(VolumeId volume) const {
  auto custodian = CustodianOf(volume);
  if (!custodian.ok()) return nullptr;
  return (*custodian)->FindVolume(volume);
}

Result<VolumeId> VolumeRegistry::CreateVolume(const std::string& name, ServerId custodian,
                                              UserId owner,
                                              const protection::AccessList& root_acl,
                                              uint64_t quota_bytes) {
  ViceServer* server = ServerById(custodian);
  if (server == nullptr) return Status::kNotFound;
  const VolumeId id = next_volume_++;
  server->InstallVolume(std::make_unique<Volume>(id, name, VolumeType::kReadWrite, owner,
                                                 root_acl, quota_bytes));
  VolumeInfo info;
  info.volume = id;
  info.read_write_volume = id;
  info.custodian = custodian;
  master_.volumes[id] = info;
  Publish();
  return id;
}

Status VolumeRegistry::SetRootVolume(VolumeId volume) {
  if (!master_.volumes.contains(volume)) return Status::kNotFound;
  master_.root_volume = volume;
  Publish();
  return Status::kOk;
}

Status VolumeRegistry::MountAt(const Fid& dir, const std::string& name, VolumeId child) {
  if (!master_.volumes.contains(child)) return Status::kNotFound;
  ASSIGN_OR_RETURN(ViceServer * server, CustodianOf(dir.volume));
  Volume* vol = server->FindVolume(dir.volume);
  if (vol == nullptr) return Status::kNotFound;
  RETURN_IF_ERROR(vol->MakeMountPoint(dir, name, child));
  // Direct mutation bypasses the intention log: checkpoint so it survives a
  // custodian crash.
  server->CheckpointVolume(dir.volume);
  // Clients caching this directory must refetch it to see the mount.
  server->callbacks().Break(dir, nullptr, 0, server->node(), server->network(),
                            &server->endpoint().cpu(), server->cost());
  return Status::kOk;
}

Status VolumeRegistry::CheckpointVolume(VolumeId volume) {
  ASSIGN_OR_RETURN(ViceServer * server, CustodianOf(volume));
  server->CheckpointVolume(volume);
  return Status::kOk;
}

Status VolumeRegistry::BreakVolumeCallbacks(VolumeId volume, SimTime at) {
  ASSIGN_OR_RETURN(ViceServer * server, CustodianOf(volume));
  server->callbacks().BreakVolume(volume, at, server->node(), server->network(),
                                  &server->endpoint().cpu(), server->cost());
  return Status::kOk;
}

Status VolumeRegistry::MoveVolume(VolumeId volume, ServerId new_custodian, SimTime at) {
  auto info_it = master_.volumes.find(volume);
  if (info_it == master_.volumes.end()) return Status::kNotFound;
  ViceServer* from = ServerById(info_it->second.custodian);
  ViceServer* to = ServerById(new_custodian);
  if (from == nullptr || to == nullptr) return Status::kUnavailable;
  if (from == to) return Status::kOk;

  std::unique_ptr<Volume> vol = from->EjectVolume(volume);
  if (vol == nullptr) return Status::kNotFound;

  // "The files whose custodians are being modified are unavailable during
  // the change" — cached copies may outlive the move, so their promises are
  // broken explicitly.
  from->callbacks().BreakVolume(volume, at, from->node(), from->network(),
                                &from->endpoint().cpu(), from->cost());
  to->InstallVolume(std::move(vol));
  info_it->second.custodian = new_custodian;
  Publish();
  return Status::kOk;
}

Result<VolumeId> VolumeRegistry::CloneVolume(VolumeId volume, const std::string& clone_name) {
  ASSIGN_OR_RETURN(ViceServer * server, CustodianOf(volume));
  Volume* vol = server->FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  if (vol->read_only()) return Status::kVolumeReadOnly;

  const VolumeId clone_id = next_volume_++;
  server->InstallVolume(vol->Clone(clone_id, clone_name));

  VolumeInfo info;
  info.volume = clone_id;
  info.read_write_volume = volume;
  info.read_only = true;
  info.custodian = server->id();
  master_.volumes[clone_id] = info;
  Publish();
  return clone_id;
}

Result<VolumeId> VolumeRegistry::ReleaseReadOnly(VolumeId volume,
                                                 const std::string& clone_name,
                                                 const std::vector<ServerId>& sites) {
  if (sites.empty()) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(ViceServer * server, CustodianOf(volume));
  Volume* vol = server->FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  if (vol->read_only()) return Status::kVolumeReadOnly;

  const VolumeId clone_id = next_volume_++;
  for (ServerId site : sites) {
    ViceServer* replica_host = ServerById(site);
    if (replica_host == nullptr) return Status::kNotFound;
    replica_host->InstallVolume(vol->Clone(clone_id, clone_name));
  }

  VolumeInfo clone_info;
  clone_info.volume = clone_id;
  clone_info.read_write_volume = volume;
  clone_info.read_only = true;
  clone_info.custodian = sites.front();
  clone_info.replica_sites = sites;
  master_.volumes[clone_id] = clone_info;

  // The atomic switch: the RW volume's location entry now advertises the new
  // clone; every Venus resolving through the location database sees either
  // the old release or the new one, never a mixture.
  master_.volumes[volume].ro_clone = clone_id;
  Publish();
  return clone_id;
}

Result<Bytes> VolumeRegistry::BackupVolume(VolumeId volume) {
  ASSIGN_OR_RETURN(ViceServer * server, CustodianOf(volume));
  Volume* vol = server->FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  // Freeze-then-dump: the clone shares data copy-on-write, so the dump is a
  // consistent snapshot even conceptually concurrent with updates.
  auto clone = vol->Clone(volume, vol->name() + ".backup");
  return clone->Dump();
}

Result<VolumeId> VolumeRegistry::RestoreVolume(const Bytes& dump, const std::string& name,
                                               ServerId custodian) {
  ViceServer* server = ServerById(custodian);
  if (server == nullptr) return Status::kNotFound;
  const VolumeId id = next_volume_++;
  ASSIGN_OR_RETURN(auto vol, Volume::Restore(dump, id, name, VolumeType::kReadWrite));
  server->InstallVolume(std::move(vol));
  VolumeInfo info;
  info.volume = id;
  info.read_write_volume = id;
  info.custodian = custodian;
  master_.volumes[id] = info;
  Publish();
  return id;
}

Status VolumeRegistry::SetVolumeQuota(VolumeId volume, uint64_t quota_bytes) {
  Volume* vol = FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  vol->set_quota_bytes(quota_bytes);
  return CheckpointVolume(volume);
}

Status VolumeRegistry::SetVolumeOnline(VolumeId volume, bool online) {
  Volume* vol = FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  vol->set_online(online);
  return CheckpointVolume(volume);
}

Result<Volume::SalvageReport> VolumeRegistry::SalvageVolume(VolumeId volume) {
  Volume* vol = FindVolume(volume);
  if (vol == nullptr) return Status::kNotFound;
  const Volume::SalvageReport report = vol->Salvage();
  RETURN_IF_ERROR(CheckpointVolume(volume));
  return report;
}

}  // namespace itc::vice
