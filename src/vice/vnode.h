// Vice vnodes: the server-side representation of shared files.
//
// Every Vice file, directory, or symlink is a vnode inside a volume,
// identified by a Fid (volume, vnode, uniquifier). Directories are stored as
// interpretable file data (SerializeDirectory) so that Venus can cache a
// directory like any other file and traverse pathnames itself — the revised
// implementation's client-side name resolution (Section 5.3).
//
// A directory entry may be a mount point naming another volume's root; this
// is how volumes stitch into the single shared name space while remaining
// invisible to Virtue application programs (Section 5.3: "volumes will not
// be visible to Virtue application programs; they will only be visible at
// the Vice-Virtue interface").

#ifndef SRC_VICE_VNODE_H_
#define SRC_VICE_VNODE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/fid.h"
#include "src/common/result.h"
#include "src/common/types.h"

namespace itc::vice {

enum class VnodeType : uint8_t { kFile, kDirectory, kSymlink };

// Status information for a vnode — what FetchStatus returns and what Venus
// caches alongside file data. `version` is the data version number, bumped
// on every mutation; cache validation compares versions (the prototype
// compared timestamps, which is equivalent under a virtual clock but
// version numbers are immune to clock granularity).
struct VnodeStatus {
  Fid fid;
  VnodeType type = VnodeType::kFile;
  uint64_t length = 0;
  uint64_t version = 0;
  SimTime mtime = 0;
  UserId owner = kAnonymousUser;
  uint16_t mode = 0644;  // per-file Unix protection bits (revised impl)
  uint32_t link_count = 1;
  Fid parent;  // enclosing directory (kNullFid for a volume root)

  friend bool operator==(const VnodeStatus&, const VnodeStatus&) = default;
};

// One directory entry as stored in serialized directory data.
struct DirItem {
  enum class Kind : uint8_t { kFile, kDirectory, kSymlink, kMountPoint };

  Kind kind = Kind::kFile;
  Fid fid;                               // valid unless kMountPoint
  VolumeId mount_volume = kInvalidVolume;  // valid only for kMountPoint

  friend bool operator==(const DirItem&, const DirItem&) = default;
};

using DirMap = std::map<std::string, DirItem>;

// Directory data encoding shared by Vice (producer) and Venus (consumer).
Bytes SerializeDirectory(const DirMap& entries);
[[nodiscard]] Result<DirMap> DeserializeDirectory(const Bytes& data);

// Root vnode convention: every volume's root directory is vnode 1,
// uniquifier 1.
inline Fid VolumeRootFid(VolumeId v) { return Fid{v, 1, 1}; }

}  // namespace itc::vice

#endif  // SRC_VICE_VNODE_H_
