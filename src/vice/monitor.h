// Monitoring and custodian reassignment recommendations (Section 3.6).
//
// "Another area ... is the development of monitoring tools. These tools will
//  be required to ease day-to-day operations of the system and also to
//  recognize long-term changes in user access patterns and help reassign
//  users to cluster servers so as to balance server loads and reduce
//  cross-cluster traffic."
//
// Section 3.1 adds: "we may install mechanisms in Vice to monitor long-term
// access file patterns and recommend changes to improve performance. Even
// then, a human operator will initiate the actual reassignment" — so the
// Monitor only *recommends*; applying a recommendation is an explicit call.

#ifndef SRC_VICE_MONITOR_H_
#define SRC_VICE_MONITOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/vice/volume_registry.h"

namespace itc::vice {

struct MoveRecommendation {
  VolumeId volume = kInvalidVolume;
  ServerId current_custodian = kInvalidServer;
  ServerId suggested_custodian = kInvalidServer;
  uint64_t accesses_from_suggested_cluster = 0;
  uint64_t total_accesses = 0;
  std::string Describe() const;
};

struct MonitorReport {
  std::vector<MoveRecommendation> moves;
  // Per-server total data/status accesses observed (load picture).
  std::map<ServerId, uint64_t> server_load;
};

class Monitor {
 public:
  // `min_accesses`: volumes with less traffic are ignored (too little
  // signal). `dominance`: the remote cluster must account for at least this
  // fraction of the volume's accesses to justify a move.
  Monitor(VolumeRegistry* registry, double dominance = 0.6, uint64_t min_accesses = 50)
      : registry_(registry), dominance_(dominance), min_accesses_(min_accesses) {}

  // Scans every server's access counters and recommends volume moves that
  // would localize traffic. Read-only volumes and the root volume are never
  // recommended (replication handles those).
  MonitorReport Scan() const;

  // Applies one recommendation (the "human operator" step).
  [[nodiscard]] Status Apply(const MoveRecommendation& rec, SimTime at = 0);

 private:
  VolumeRegistry* registry_;
  double dominance_;
  uint64_t min_accesses_;
};

}  // namespace itc::vice

#endif  // SRC_VICE_MONITOR_H_
