#include "src/vice/file_server.h"

#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/protection/access_list.h"
#include "src/rpc/interceptor.h"
#include "src/sim/kernel.h"
#include "src/vice/recovery/intention_log.h"

namespace itc::vice {

using protection::AccessList;
using protection::Rights;

ViceServer::ViceServer(ServerId id, NodeId node, net::Network* network,
                       const sim::CostModel& cost, rpc::RpcConfig rpc_config,
                       ViceConfig config, protection::ProtectionService* protection,
                       uint64_t nonce_seed)
    : id_(id),
      node_(node),
      network_(network),
      cost_(cost),
      config_(config),
      registry_(&ViceOpSchema()),
      endpoint_(
          node, network, cost, rpc_config,
          [this](UserId user) -> std::optional<crypto::Key> {
            auto snapshot = protection_replica_.snapshot();
            return snapshot ? snapshot->UserKey(user) : std::nullopt;
          },
          nonce_seed),
      leases_(config.lease_term) {
  ITC_CHECK(!(config_.callbacks && config_.leases));
  protection->RegisterReplica(&protection_replica_);
  BindOps();
  endpoint_.set_registry(&registry_);
}

void ViceServer::InstallVolume(std::unique_ptr<Volume> volume) {
  ITC_CHECK(volume != nullptr);
  const VolumeId id = volume->id();
  store_.CheckpointVolume(*volume);
  volumes_[id] = std::move(volume);
}

std::unique_ptr<Volume> ViceServer::EjectVolume(VolumeId id) {
  auto it = volumes_.find(id);
  if (it == volumes_.end()) return nullptr;
  std::unique_ptr<Volume> out = std::move(it->second);
  volumes_.erase(it);
  store_.EraseVolume(id);
  dirty_volumes_.erase(id);
  return out;
}

Volume* ViceServer::FindVolume(VolumeId id) {
  auto it = volumes_.find(id);
  if (it == volumes_.end()) return nullptr;
  it->second->set_now(now_);
  return it->second.get();
}

const Volume* ViceServer::FindVolume(VolumeId id) const {
  auto it = volumes_.find(id);
  return it == volumes_.end() ? nullptr : it->second.get();
}

void ViceServer::RegisterCallbackSink(NodeId node, CallbackReceiver* sink) {
  callback_sinks_[node] = sink;
}

void ViceServer::UnregisterCallbackSink(NodeId node) {
  auto it = callback_sinks_.find(node);
  if (it != callback_sinks_.end()) {
    callbacks_.UnregisterAll(it->second);
    leases_.ReleaseAll(it->second);
    callback_sinks_.erase(it);
  }
  // The teardown below must run even for a node that never registered a
  // sink (prototype-mode clients hold connections and locks too).
  // A disconnected (or crashed) workstation surrenders its advisory locks;
  // otherwise a crash would wedge every file its users had locked.
  locks_.ReleaseAllForNode(node);
  // It also leaves no secure-channel residue: every connection it opened is
  // torn down, so a rebooted workstation starts from a clean handshake and a
  // dead one stops consuming per-connection state.
  endpoint_.CloseConnectionsFrom(node);
}

// --- Crash recovery ----------------------------------------------------------

void ViceServer::CheckpointVolume(VolumeId id) {
  auto it = volumes_.find(id);
  if (it != volumes_.end()) store_.CheckpointVolume(*it->second);
}

void ViceServer::SimulateCrash() {
  crashed_ = true;
  endpoint_.set_online(false);
  // Volatile state dies with the machine: session channels, callback
  // promises ("callback state is volatile"), advisory locks, sink
  // registrations, the memoized CPS closures — and the in-memory volumes
  // themselves, which only exist again once Restart() re-reads the store.
  endpoint_.DropAllConnections();
  callbacks_.DropAllPromises();
  leases_.Clear();
  locks_ = LockManager{};
  callback_sinks_.clear();
  cps_cache_.clear();
  volumes_.clear();
}

recovery::RecoveryReport ViceServer::Restart(SimTime at) {
  if (!crashed_) SimulateCrash();  // a plain reboot loses volatile state too
  recovery::RecoveryReport report;
  SimTime disk_demand = 0;

  // Phase 1: re-read every checkpoint image (sequential I/O over the store).
  auto restored = store_.RestoreVolumes();
  ITC_CHECK(restored.ok());  // images are our own dumps
  disk_demand += cost_.DiskTime(store_.image_bytes());
  for (auto& vol : *restored) {
    const VolumeId id = vol->id();
    volumes_[id] = std::move(vol);
    report.volumes_restored += 1;
  }

  // Phase 2: replay committed intentions in LSN order; discard the rest.
  // A logged-but-uncommitted record belongs to a call whose client never saw
  // a reply, so dropping it keeps store-on-close atomic (Section 3.5).
  for (const auto& rec : store_.log().records()) {
    if (rec.state != recovery::IntentState::kCommitted) {
      report.intentions_discarded += 1;
      continue;
    }
    disk_demand += cost_.recovery_replay_per_record;
    auto it = volumes_.find(rec.volume);
    if (it == volumes_.end()) {
      report.replay_failures += 1;
      continue;
    }
    if (recovery::ApplyIntention(*it->second, rec) == Status::kOk) {
      report.intentions_replayed += 1;
    } else {
      report.replay_failures += 1;
    }
  }

  // Phase 3: salvage every volume and re-checkpoint the recovered state so
  // the log can be truncated.
  for (auto& [id, vol] : volumes_) {
    disk_demand += static_cast<SimTime>(vol->vnode_count()) * cost_.salvage_per_vnode;
    const Volume::SalvageReport sr = vol->Salvage();
    report.salvage.dangling_entries_removed += sr.dangling_entries_removed;
    report.salvage.orphan_vnodes_removed += sr.orphan_vnodes_removed;
    report.salvage.parents_fixed += sr.parents_fixed;
    report.salvage.usage_corrected_bytes += sr.usage_corrected_bytes;
  }
  store_.log().Truncate();
  for (auto& [id, vol] : volumes_) store_.CheckpointVolume(*vol);
  disk_demand += cost_.DiskTime(store_.image_bytes());
  committed_since_checkpoint_ = 0;
  dirty_volumes_.clear();

  restart_epoch_ += 1;
  report.restart_epoch = restart_epoch_;
  crashed_ = false;
  endpoint_.set_online(true);

  // Lease recovery needs no re-establishment protocol (Gray & Cheriton): the
  // server cannot remember what it promised, so it refuses new grants until
  // every lease it could have issued before the crash has expired. Holders
  // simply fall back to check-on-open until then.
  if (config_.leases) leases_.SuspendGrantsUntil(at + config_.lease_term);

  // Serve the recovery I/O through the server disk: recovery takes real
  // virtual time, and the first post-restart RPCs queue behind it.
  const SimTime done = sim::Charge(endpoint_.disk(), at, disk_demand);
  report.recovery_time = done - at;
  return report;
}

bool ViceServer::CrashPointHit(rpc::CrashPoint point) {
  if (!endpoint_.fault().ConsumeCrashAt(point)) return false;
  SimulateCrash();
  return true;
}

uint64_t ViceServer::LogIntention(rpc::CallContext& ctx, recovery::IntentKind kind,
                                  VolumeId volume, Bytes payload) {
  ctx.ChargeDiskTime(cost_.LogAppendTime(payload.size()));
  dirty_volumes_.insert(volume);
  return store_.log().Append(kind, volume, ctx.arrival(), std::move(payload));
}

uint64_t ViceServer::LogIntention(rpc::CallContext& ctx, VolumeId volume, const Fid& fid,
                                  content::Ref contents) {
  ctx.ChargeDiskTime(cost_.LogAppendTime(
      recovery::IntentionLog::LogicalStoreRecordBytes(contents.size())));
  dirty_volumes_.insert(volume);
  return store_.log().AppendStore(volume, ctx.arrival(), fid, std::move(contents));
}

void ViceServer::CommitIntention(rpc::CallContext& ctx, uint64_t lsn) {
  ctx.ChargeDiskTime(cost_.log_fsync);
  store_.log().MarkCommitted(lsn);
  committed_since_checkpoint_ += 1;
  if (config_.log_checkpoint_interval > 0 &&
      committed_since_checkpoint_ >= config_.log_checkpoint_interval) {
    // Re-dump only volumes with logged intentions since the last checkpoint;
    // every other image is already byte-identical to a fresh dump. The disk
    // charge is unchanged: the checkpoint still writes every image.
    for (auto& [id, vol] : volumes_) {
      if (dirty_volumes_.count(id) > 0) store_.CheckpointVolume(*vol);
    }
    dirty_volumes_.clear();
    store_.log().Truncate();
    committed_since_checkpoint_ = 0;
    ctx.ChargeDiskTime(cost_.DiskTime(store_.image_bytes()));
  }
}

void ViceServer::AbortIntention(uint64_t lsn) { store_.log().MarkAborted(lsn); }

uint64_t ViceServer::RetainedContentBytes(std::unordered_set<const void*>* seen) const {
  uint64_t total = 0;
  for (const auto& [id, vol] : volumes_) total += vol->RetainedContentBytes(seen);
  total += store_.RetainedContentBytes(seen);
  return total;
}

std::map<CallClass, uint64_t> ViceServer::CallHistogram() const {
  return endpoint_.call_stats().Histogram();
}

uint64_t ViceServer::total_calls() const { return endpoint_.call_stats().total_calls(); }

void ViceServer::ResetStats() {
  callbacks_.ResetStats();
  leases_.ResetStats();
  endpoint_.ResetStats();
  endpoint_.cpu().Reset();
  endpoint_.disk().Reset();
}

// --- Protection --------------------------------------------------------------

Rights ViceServer::EffectiveRights(const Volume& vol, const Fid& fid, UserId user) const {
  auto snapshot = protection_replica_.snapshot();
  if (snapshot == nullptr) return protection::kNone;
  auto& cached = cps_cache_[user];
  if (cached.first != snapshot->version() || cached.second.empty()) {
    cached = {snapshot->version(), snapshot->CPS(user)};
  }
  const std::vector<protection::Principal>& cps = cached.second;
  for (const auto& p : cps) {
    if (p.kind == protection::Principal::Kind::kGroup &&
        p.id == protection::kAdministratorsGroup) {
      return protection::kAllRights;
    }
  }
  auto acl = vol.EffectiveAcl(fid);
  if (!acl.ok()) return protection::kNone;
  return acl->Effective(cps);
}

Status ViceServer::CheckAccess(const Volume& vol, const Fid& fid, UserId user,
                               Rights needed) const {
  if (protection::HasRights(EffectiveRights(vol, fid, user), needed)) return Status::kOk;
  return Status::kPermissionDenied;
}

Status ViceServer::CheckFileBits(const Volume& vol, const Fid& fid, bool write) const {
  if (!config_.per_file_protection_bits) return Status::kOk;
  auto status = vol.GetStatus(fid);
  if (!status.ok()) return status.status();
  if (status->type != VnodeType::kFile) return Status::kOk;
  const uint16_t mask = write ? 0222 : 0444;
  return (status->mode & mask) != 0 ? Status::kOk : Status::kPermissionDenied;
}

// --- Callback plumbing ---------------------------------------------------------

void ViceServer::BreakCallbacks(const Fid& fid, rpc::CallContext& ctx) {
  CallbackReceiver* writer_sink = nullptr;
  auto it = callback_sinks_.find(ctx.client_node());
  if (it != callback_sinks_.end()) writer_sink = it->second;
  if (config_.leases) {
    // Reachable holders are notified immediately, like a callback break. An
    // unreachable holder cannot be told, but its promise is time-bounded: the
    // mutation's completion is held back until that lease has run out, so no
    // client ever reads stale data under a live lease.
    const SimTime safe = leases_.Break(fid, writer_sink, ctx.arrival(), node_, network_,
                                       &endpoint_.cpu(), cost_);
    ctx.DelayCompletionUntil(safe);
    return;
  }
  if (!config_.callbacks) return;
  callbacks_.Break(fid, writer_sink, ctx.arrival(), node_, network_, &endpoint_.cpu(),
                   cost_);
}

void ViceServer::MaybeRegisterCallback(const Fid& fid, rpc::CallContext& ctx) {
  if (!config_.callbacks) return;
  auto it = callback_sinks_.find(ctx.client_node());
  if (it != callback_sinks_.end()) callbacks_.Register(fid, it->second);
}

void ViceServer::AppendLeaseGrant(const Fid& fid, rpc::CallContext& ctx, rpc::Writer& w) {
  if (!config_.leases) return;
  SimTime expiry = 0;
  auto it = callback_sinks_.find(ctx.client_node());
  if (it != callback_sinks_.end()) {
    expiry = leases_.Grant(fid, it->second, ctx.arrival());
  }
  w.PutU64(static_cast<uint64_t>(expiry));
}

void ViceServer::ChargeAdminFile(rpc::CallContext& ctx) {
  if (config_.admin_status_files) ctx.ChargeDisk(0);
}

void ViceServer::NoteVolumeAccess(VolumeId volume, NodeId client) {
  volume_accesses_[volume][network_->topology().ClusterOf(client)] += 1;
}

// --- Op bindings ----------------------------------------------------------------

void ViceServer::BindOps() {
  // `bind` wraps each handler with the shared prologue: stamp the volume
  // clock, and — in the prototype, where "workstations present servers with
  // entire pathnames of files and the servers do the traversing of pathnames
  // prior to retrieving the files" (Section 4) — charge every flagged
  // data/status call the name-resolution CPU plus the namei directory reads
  // that miss the buffer cache.
  auto bind = [this](Proc proc, auto handler) {
    const uint32_t opcode = static_cast<uint32_t>(proc);
    const rpc::OpSpec* spec = ViceOpSchema().Find(opcode);
    ITC_CHECK(spec != nullptr);
    registry_.Bind(opcode, [this, spec, handler](rpc::CallContext& ctx,
                                                 const Bytes& request) -> Result<Bytes> {
      // Volumes stamp mtimes from this; FindVolume applies it lazily to just
      // the volume the handler actually touches.
      now_ = ctx.arrival();
      if (config_.server_side_pathnames && (spec->flags & kOpChargesPathname) != 0) {
        ctx.ChargeCpu(cost_.prototype_path_depth * cost_.server_cpu_per_path_component);
        // namei directory blocks + inode + the .admin companion read.
        for (int i = 0; i < cost_.prototype_namei_disk_ops; ++i) ctx.ChargeDisk(0);
      }
      rpc::Reader r(request);
      return handler(ctx, r);
    });
  };

  bind(Proc::kTestAuth,
       [](rpc::CallContext&, rpc::Reader&) { return StatusReply(Status::kOk); });
  bind(Proc::kGetTime, [](rpc::CallContext& ctx, rpc::Reader&) {
    rpc::Writer w;
    w.PutStatus(Status::kOk);
    w.PutI64(ctx.arrival());
    return w.Take();
  });
  bind(Proc::kGetVolumeInfo, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleGetVolumeInfo(ctx, r);
  });
  bind(Proc::kGetRootVolume,
       [this](rpc::CallContext& ctx, rpc::Reader&) { return HandleGetRootVolume(ctx); });
  bind(Proc::kProbeEpoch, [this](rpc::CallContext&, rpc::Reader&) {
    rpc::Writer w;
    w.PutStatus(Status::kOk);
    w.PutU32(restart_epoch_);
    return w.Take();
  });
  bind(Proc::kFetch, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleFetch(ctx, r, /*with_data=*/true);
  });
  bind(Proc::kFetchStatus, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleFetch(ctx, r, /*with_data=*/false);
  });
  bind(Proc::kValidate,
       [this](rpc::CallContext& ctx, rpc::Reader& r) { return HandleValidate(ctx, r); });
  bind(Proc::kStore,
       [this](rpc::CallContext& ctx, rpc::Reader& r) { return HandleStore(ctx, r); });
  bind(Proc::kSetStatus,
       [this](rpc::CallContext& ctx, rpc::Reader& r) { return HandleSetStatus(ctx, r); });
  for (Proc proc : {Proc::kCreateFile, Proc::kMakeDir, Proc::kMakeSymlink}) {
    bind(proc, [this, proc](rpc::CallContext& ctx, rpc::Reader& r) {
      return HandleCreate(ctx, r, proc);
    });
  }
  bind(Proc::kRemoveFile, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleRemove(ctx, r, /*dir=*/false);
  });
  bind(Proc::kRemoveDir, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleRemove(ctx, r, /*dir=*/true);
  });
  bind(Proc::kRename,
       [this](rpc::CallContext& ctx, rpc::Reader& r) { return HandleRename(ctx, r); });
  bind(Proc::kMakeMountPoint, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleMakeMountPoint(ctx, r);
  });
  bind(Proc::kResolvePath, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleResolvePath(ctx, r);
  });
  bind(Proc::kGetAcl,
       [this](rpc::CallContext& ctx, rpc::Reader& r) { return HandleGetAcl(ctx, r); });
  bind(Proc::kSetAcl,
       [this](rpc::CallContext& ctx, rpc::Reader& r) { return HandleSetAcl(ctx, r); });
  bind(Proc::kSetLock, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleLock(ctx, r, /*acquire=*/true);
  });
  bind(Proc::kReleaseLock, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleLock(ctx, r, /*acquire=*/false);
  });
  bind(Proc::kRemoveCallback, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleRemoveCallback(ctx, r);
  });
  bind(Proc::kGrantLease, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleGrantLease(ctx, r);
  });
  bind(Proc::kRenewLeases, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleRenewLeases(ctx, r);
  });
  bind(Proc::kReleaseLease, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleReleaseLease(ctx, r);
  });
  bind(Proc::kGetVolumeStatus, [this](rpc::CallContext& ctx, rpc::Reader& r) {
    return HandleGetVolumeStatus(ctx, r);
  });
}

// --- Handlers ----------------------------------------------------------------------

namespace {

// Reply for a volume this server does not host: status + custodian hint.
Bytes NotCustodianReply(const LocationDb* location, VolumeId volume) {
  rpc::Writer w;
  auto info = location ? location->Find(volume) : std::nullopt;
  if (!info.has_value()) {
    w.PutStatus(Status::kNotFound);
    w.PutU32(kInvalidServer);
  } else {
    w.PutStatus(Status::kNotCustodian);
    w.PutU32(info->custodian);
  }
  return w.Take();
}

}  // namespace

Bytes ViceServer::HandleGetVolumeInfo(rpc::CallContext& ctx, rpc::Reader& r) {
  (void)ctx;
  auto vid = r.U32();
  if (!vid.ok()) return StatusReply(Status::kProtocolError);
  auto info = location_ ? location_->Find(*vid) : std::nullopt;
  rpc::Writer w;
  if (!info.has_value()) {
    w.PutStatus(Status::kNotFound);
    return w.Take();
  }
  w.PutStatus(Status::kOk);
  PutVolumeInfo(w, *info);
  return w.Take();
}

Bytes ViceServer::HandleGetRootVolume(rpc::CallContext& ctx) {
  (void)ctx;
  rpc::Writer w;
  if (location_ == nullptr || location_->root_volume == kInvalidVolume) {
    w.PutStatus(Status::kNotFound);
  } else {
    w.PutStatus(Status::kOk);
    w.PutU32(location_->root_volume);
  }
  return w.Take();
}

Bytes ViceServer::HandleFetch(rpc::CallContext& ctx, rpc::Reader& r, bool with_data) {
  auto fid = r.FidField();
  if (!fid.ok()) return StatusReply(Status::kProtocolError);
  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);

  auto status = vol->GetStatus(*fid);
  if (!status.ok()) return StatusReply(status.status());
  NoteVolumeAccess(fid->volume, ctx.client_node());

  // Protection: reading a file needs Read on its directory; listing a
  // directory or reading status needs Lookup.
  const Rights needed =
      (with_data && status->type == VnodeType::kFile) ? protection::kRead
                                                      : protection::kLookup;
  if (Status s = CheckAccess(*vol, *fid, ctx.user(), needed); s != Status::kOk) {
    return StatusReply(s);
  }
  if (with_data) {
    if (Status s = CheckFileBits(*vol, *fid, /*write=*/false); s != Status::kOk) {
      return StatusReply(s);
    }
  }

  rpc::Writer w;
  if (with_data) {
    auto data = vol->FetchData(*fid);
    if (!data.ok()) return StatusReply(data.status());
    ctx.ChargeDisk(data->size());
    ChargeAdminFile(ctx);
    ctx.ChargeCpu(cost_.ServerCopyCpu(data->size()));
    w.PutStatus(Status::kOk);
    PutVnodeStatus(w, *status);
    w.PutBytes(*data);
  } else {
    w.PutStatus(Status::kOk);
    PutVnodeStatus(w, *status);
  }
  MaybeRegisterCallback(*fid, ctx);
  AppendLeaseGrant(*fid, ctx, w);
  return w.Take();
}

Bytes ViceServer::HandleValidate(rpc::CallContext& ctx, rpc::Reader& r) {
  auto fid = r.FidField();
  auto version = fid.ok() ? r.U64() : Result<uint64_t>(Status::kProtocolError);
  if (!fid.ok() || !version.ok()) return StatusReply(Status::kProtocolError);
  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);

  auto status = vol->GetStatus(*fid);
  if (!status.ok()) return StatusReply(status.status());
  // Validation reveals status (size, owner, mtime): same gate as FetchStatus.
  if (Status s = CheckAccess(*vol, *fid, ctx.user(), protection::kLookup);
      s != Status::kOk) {
    return StatusReply(s);
  }
  NoteVolumeAccess(fid->volume, ctx.client_node());

  const bool valid = status->version == *version;
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutBool(valid);
  PutVnodeStatus(w, *status);
  MaybeRegisterCallback(*fid, ctx);
  if (valid) {
    AppendLeaseGrant(*fid, ctx, w);
  } else if (config_.leases) {
    // A stale copy gets no promise; the refetch will carry the grant.
    w.PutU64(0);
  }
  return w.Take();
}

Result<Bytes> ViceServer::HandleStore(rpc::CallContext& ctx, rpc::Reader& r) {
  auto fid = r.FidField();
  auto data = fid.ok() ? r.BytesField() : Result<Bytes>(Status::kProtocolError);
  if (!fid.ok() || !data.ok()) return StatusReply(Status::kProtocolError);
  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);

  if (Status s = CheckAccess(*vol, *fid, ctx.user(), protection::kWrite); s != Status::kOk) {
    return StatusReply(s);
  }
  if (Status s = CheckFileBits(*vol, *fid, /*write=*/true); s != Status::kOk) {
    return StatusReply(s);
  }

  NoteVolumeAccess(fid->volume, ctx.client_node());
  const uint64_t size = data->size();
  // Canonicalize once: the log record and the vnode then share one ref (and
  // one interned tail) instead of holding two byte copies of the store.
  content::Ref contents = content::Ref::Canonicalize(std::move(*data));
  if (CrashPointHit(rpc::CrashPoint::kBeforeLogAppend)) return Status::kUnavailable;
  const uint64_t lsn = LogIntention(ctx, fid->volume, *fid, contents);
  if (CrashPointHit(rpc::CrashPoint::kAfterLogAppend)) return Status::kUnavailable;
  if (Status s = vol->StoreRef(*fid, std::move(contents)); s != Status::kOk) {
    AbortIntention(lsn);
    return StatusReply(s);
  }
  CommitIntention(ctx, lsn);
  ctx.ChargeDisk(size);
  ChargeAdminFile(ctx);
  ctx.ChargeCpu(cost_.ServerCopyCpu(size));

  // Invalidate every other cached copy. "A workstation which fetches a file
  // at the same time that another workstation is storing it will either
  // receive the old version or the new one, but never a partially modified
  // version" — whole-file store is atomic by construction here.
  BreakCallbacks(*fid, ctx);
  MaybeRegisterCallback(*fid, ctx);

  auto status = vol->GetStatus(*fid);
  if (!status.ok()) return StatusReply(status.status());
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  PutVnodeStatus(w, *status);
  if (CrashPointHit(rpc::CrashPoint::kBeforeReply)) return Status::kUnavailable;
  return w.Take();
}

Result<Bytes> ViceServer::HandleSetStatus(rpc::CallContext& ctx, rpc::Reader& r) {
  auto fid = r.FidField();
  if (!fid.ok()) return StatusReply(Status::kProtocolError);
  auto has_mode = r.Bool();
  auto mode = has_mode.ok() ? r.U32() : Result<uint32_t>(Status::kProtocolError);
  auto has_owner = mode.ok() ? r.Bool() : Result<bool>(Status::kProtocolError);
  auto owner = has_owner.ok() ? r.U32() : Result<uint32_t>(Status::kProtocolError);
  if (!owner.ok()) return StatusReply(Status::kProtocolError);

  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);

  if (Status s = CheckAccess(*vol, *fid, ctx.user(), protection::kWrite); s != Status::kOk) {
    return StatusReply(s);
  }
  if (CrashPointHit(rpc::CrashPoint::kBeforeLogAppend)) return Status::kUnavailable;
  const uint64_t lsn = LogIntention(
      ctx, recovery::IntentKind::kSetStatus, fid->volume,
      recovery::EncodeSetStatus(*fid, *has_mode, static_cast<uint16_t>(*mode), *has_owner,
                                *owner));
  if (CrashPointHit(rpc::CrashPoint::kAfterLogAppend)) return Status::kUnavailable;
  if (*has_mode) {
    if (Status s = vol->SetMode(*fid, static_cast<uint16_t>(*mode)); s != Status::kOk) {
      AbortIntention(lsn);
      return StatusReply(s);
    }
  }
  if (*has_owner) {
    if (Status s = vol->SetOwner(*fid, *owner); s != Status::kOk) {
      AbortIntention(lsn);
      return StatusReply(s);
    }
  }
  CommitIntention(ctx, lsn);
  ChargeAdminFile(ctx);
  BreakCallbacks(*fid, ctx);

  auto status = vol->GetStatus(*fid);
  if (!status.ok()) return StatusReply(status.status());
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  PutVnodeStatus(w, *status);
  if (CrashPointHit(rpc::CrashPoint::kBeforeReply)) return Status::kUnavailable;
  return w.Take();
}

Result<Bytes> ViceServer::HandleCreate(rpc::CallContext& ctx, rpc::Reader& r, Proc proc) {
  auto dir = r.FidField();
  auto name = dir.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  if (!dir.ok() || !name.ok()) return StatusReply(Status::kProtocolError);

  Volume* vol = FindVolume(dir->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), dir->volume);

  if (Status s = CheckAccess(*vol, *dir, ctx.user(), protection::kInsert);
      s != Status::kOk) {
    return StatusReply(s);
  }

  // Parse the per-proc arguments and build the intention payload up front —
  // MakeDir's ACL inheritance is resolved *before* logging, so replaying the
  // record needs no context beyond the payload itself.
  recovery::IntentKind kind = recovery::IntentKind::kCreateFile;
  Bytes payload;
  uint16_t mode = 0;
  AccessList acl;
  std::string target;
  if (proc == Proc::kCreateFile) {
    auto raw_mode = r.U32();
    if (!raw_mode.ok()) return StatusReply(Status::kProtocolError);
    mode = static_cast<uint16_t>(*raw_mode);
    kind = recovery::IntentKind::kCreateFile;
    payload = recovery::EncodeCreateFile(*dir, *name, ctx.user(), mode);
  } else if (proc == Proc::kMakeDir) {
    auto acl_bytes = r.BytesField();
    if (!acl_bytes.ok()) return StatusReply(Status::kProtocolError);
    if (acl_bytes->empty()) {
      // Inherit the parent directory's access list.
      auto parent_acl = vol->EffectiveAcl(*dir);
      if (!parent_acl.ok()) return StatusReply(parent_acl.status());
      acl = *parent_acl;
    } else {
      auto parsed = AccessList::Deserialize(*acl_bytes);
      if (!parsed.ok()) return StatusReply(Status::kProtocolError);
      acl = *parsed;
    }
    kind = recovery::IntentKind::kMakeDir;
    payload = recovery::EncodeMakeDir(*dir, *name, ctx.user(), acl.Serialize());
  } else {
    auto parsed_target = r.String();
    if (!parsed_target.ok()) return StatusReply(Status::kProtocolError);
    target = *parsed_target;
    kind = recovery::IntentKind::kMakeSymlink;
    payload = recovery::EncodeMakeSymlink(*dir, *name, target, ctx.user());
  }

  if (CrashPointHit(rpc::CrashPoint::kBeforeLogAppend)) return Status::kUnavailable;
  const uint64_t lsn = LogIntention(ctx, kind, dir->volume, std::move(payload));
  if (CrashPointHit(rpc::CrashPoint::kAfterLogAppend)) return Status::kUnavailable;

  Result<Fid> created = Status::kInternal;
  if (proc == Proc::kCreateFile) {
    created = vol->CreateFile(*dir, *name, ctx.user(), mode);
  } else if (proc == Proc::kMakeDir) {
    created = vol->MakeDir(*dir, *name, ctx.user(), acl);
  } else {
    created = vol->MakeSymlink(*dir, *name, target, ctx.user());
  }
  if (!created.ok()) {
    AbortIntention(lsn);
    return StatusReply(created.status());
  }
  CommitIntention(ctx, lsn);

  ctx.ChargeDisk(0);  // directory update
  ChargeAdminFile(ctx);
  BreakCallbacks(*dir, ctx);
  MaybeRegisterCallback(*created, ctx);

  auto status = vol->GetStatus(*created);
  if (!status.ok()) return StatusReply(status.status());
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutFid(*created);
  PutVnodeStatus(w, *status);
  if (CrashPointHit(rpc::CrashPoint::kBeforeReply)) return Status::kUnavailable;
  return w.Take();
}

Result<Bytes> ViceServer::HandleRemove(rpc::CallContext& ctx, rpc::Reader& r, bool dir) {
  auto parent = r.FidField();
  auto name = parent.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  if (!parent.ok() || !name.ok()) return StatusReply(Status::kProtocolError);

  Volume* vol = FindVolume(parent->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), parent->volume);

  if (Status s = CheckAccess(*vol, *parent, ctx.user(), protection::kDelete);
      s != Status::kOk) {
    return StatusReply(s);
  }

  // Identify the victim first so its callbacks can be broken.
  Fid victim = kNullFid;
  if (auto data = vol->FetchData(*parent); data.ok()) {
    if (auto entries = DeserializeDirectory(*data); entries.ok()) {
      auto it = entries->find(*name);
      if (it != entries->end()) victim = it->second.fid;
    }
  }

  if (CrashPointHit(rpc::CrashPoint::kBeforeLogAppend)) return Status::kUnavailable;
  const uint64_t lsn = LogIntention(
      ctx, dir ? recovery::IntentKind::kRemoveDir : recovery::IntentKind::kRemoveFile,
      parent->volume, recovery::EncodeRemove(*parent, *name));
  if (CrashPointHit(rpc::CrashPoint::kAfterLogAppend)) return Status::kUnavailable;
  const Status s = dir ? vol->RemoveDir(*parent, *name) : vol->RemoveFile(*parent, *name);
  if (s != Status::kOk) {
    AbortIntention(lsn);
    return StatusReply(s);
  }
  CommitIntention(ctx, lsn);

  ctx.ChargeDisk(0);
  ChargeAdminFile(ctx);
  BreakCallbacks(*parent, ctx);
  if (victim.valid()) BreakCallbacks(victim, ctx);
  if (CrashPointHit(rpc::CrashPoint::kBeforeReply)) return Status::kUnavailable;
  return StatusReply(Status::kOk);
}

Result<Bytes> ViceServer::HandleRename(rpc::CallContext& ctx, rpc::Reader& r) {
  auto from_dir = r.FidField();
  auto from_name = from_dir.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  auto to_dir = from_name.ok() ? r.FidField() : Result<Fid>(Status::kProtocolError);
  auto to_name = to_dir.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  if (!to_name.ok()) return StatusReply(Status::kProtocolError);

  if (from_dir->volume != to_dir->volume) return StatusReply(Status::kCrossVolume);
  Volume* vol = FindVolume(from_dir->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), from_dir->volume);

  if (Status s = CheckAccess(*vol, *from_dir, ctx.user(), protection::kDelete);
      s != Status::kOk) {
    return StatusReply(s);
  }
  if (Status s = CheckAccess(*vol, *to_dir, ctx.user(), protection::kInsert);
      s != Status::kOk) {
    return StatusReply(s);
  }

  // If the rename overwrites an existing target, that file's cached copies
  // must be invalidated just as a Remove would invalidate them.
  Fid overwritten = kNullFid;
  if (auto dst_data = vol->FetchData(*to_dir); dst_data.ok()) {
    if (auto entries = DeserializeDirectory(*dst_data); entries.ok()) {
      auto it = entries->find(*to_name);
      if (it != entries->end()) overwritten = it->second.fid;
    }
  }

  if (CrashPointHit(rpc::CrashPoint::kBeforeLogAppend)) return Status::kUnavailable;
  const uint64_t lsn =
      LogIntention(ctx, recovery::IntentKind::kRename, from_dir->volume,
                   recovery::EncodeRename(*from_dir, *from_name, *to_dir, *to_name));
  if (CrashPointHit(rpc::CrashPoint::kAfterLogAppend)) return Status::kUnavailable;
  if (Status s = vol->Rename(*from_dir, *from_name, *to_dir, *to_name); s != Status::kOk) {
    AbortIntention(lsn);
    return StatusReply(s);
  }
  CommitIntention(ctx, lsn);
  ctx.ChargeDisk(0);
  ChargeAdminFile(ctx);
  BreakCallbacks(*from_dir, ctx);
  if (!(*from_dir == *to_dir)) BreakCallbacks(*to_dir, ctx);
  if (overwritten.valid()) BreakCallbacks(overwritten, ctx);
  if (CrashPointHit(rpc::CrashPoint::kBeforeReply)) return Status::kUnavailable;
  return StatusReply(Status::kOk);
}

Result<Bytes> ViceServer::HandleMakeMountPoint(rpc::CallContext& ctx, rpc::Reader& r) {
  auto dir = r.FidField();
  auto name = dir.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  auto target = name.ok() ? r.U32() : Result<uint32_t>(Status::kProtocolError);
  if (!target.ok()) return StatusReply(Status::kProtocolError);

  Volume* vol = FindVolume(dir->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), dir->volume);
  if (Status s = CheckAccess(*vol, *dir, ctx.user(), protection::kInsert);
      s != Status::kOk) {
    return StatusReply(s);
  }
  if (CrashPointHit(rpc::CrashPoint::kBeforeLogAppend)) return Status::kUnavailable;
  const uint64_t lsn = LogIntention(ctx, recovery::IntentKind::kMakeMountPoint, dir->volume,
                                    recovery::EncodeMakeMountPoint(*dir, *name, *target));
  if (CrashPointHit(rpc::CrashPoint::kAfterLogAppend)) return Status::kUnavailable;
  if (Status s = vol->MakeMountPoint(*dir, *name, *target); s != Status::kOk) {
    AbortIntention(lsn);
    return StatusReply(s);
  }
  CommitIntention(ctx, lsn);
  ctx.ChargeDisk(0);
  BreakCallbacks(*dir, ctx);
  if (CrashPointHit(rpc::CrashPoint::kBeforeReply)) return Status::kUnavailable;
  return StatusReply(Status::kOk);
}

Bytes ViceServer::HandleResolvePath(rpc::CallContext& ctx, rpc::Reader& r) {
  // Prototype-mode server-side pathname traversal. Request: starting volume
  // (kInvalidVolume = the Vice root volume) + path. Reply on success:
  // kOk + Fid + VnodeStatus. If traversal crosses into a volume this server
  // does not host: kNotCustodian + custodian + volume + remaining path, and
  // Venus continues there.
  auto start_volume = r.U32();
  auto path = start_volume.ok() ? r.String() : Result<std::string>(Status::kProtocolError);
  if (!path.ok()) return StatusReply(Status::kProtocolError);

  VolumeId vid = *start_volume;
  if (vid == kInvalidVolume) {
    if (location_ == nullptr) return StatusReply(Status::kUnavailable);
    vid = location_->root_volume;
  }

  std::vector<std::string> components = SplitPath(*path);
  size_t index = 0;
  int symlink_depth = 0;

  auto not_custodian = [&](VolumeId missing) {
    rpc::Writer w;
    auto info = location_ ? location_->Find(missing) : std::nullopt;
    w.PutStatus(Status::kNotCustodian);
    w.PutU32(info ? info->custodian : kInvalidServer);
    w.PutU32(missing);
    // Remaining path, to be resolved from `missing`'s root.
    std::string rest;
    for (size_t j = index; j < components.size(); ++j) {
      rest += '/';
      rest += components[j];
    }
    w.PutString(rest.empty() ? "/" : rest);
    return w.Take();
  };

  Volume* vol = FindVolume(vid);
  if (vol == nullptr) return not_custodian(vid);
  Fid cur = vol->root();
  // Directories traversed so far, so ".." crosses mount points correctly
  // (a volume root's parent fid is null; only the traversal knows the
  // directory holding the mount).
  std::vector<std::pair<Volume*, Fid>> crumbs;

  while (index < components.size()) {
    // The server does the traversal work the revised implementation pushes
    // to clients; charge it per component.
    ctx.ChargeCpu(cost_.server_cpu_per_path_component);

    const std::string& comp = components[index];
    if (comp == ".") {
      ++index;
      continue;
    }
    auto status = vol->GetStatus(cur);
    if (!status.ok()) return StatusReply(status.status());
    if (comp == "..") {
      if (!crumbs.empty()) {
        vol = crumbs.back().first;
        cur = crumbs.back().second;
        crumbs.pop_back();
      }
      ++index;
      continue;
    }
    if (status->type != VnodeType::kDirectory) return StatusReply(Status::kNotDirectory);
    if (Status s = CheckAccess(*vol, cur, ctx.user(), protection::kLookup);
        s != Status::kOk) {
      return StatusReply(s);
    }
    auto dir_data = vol->FetchData(cur);
    if (!dir_data.ok()) return StatusReply(dir_data.status());
    auto entries = DeserializeDirectory(*dir_data);
    if (!entries.ok()) return StatusReply(Status::kInternal);
    auto it = entries->find(comp);
    if (it == entries->end()) return StatusReply(Status::kNotFound);

    const DirItem& item = it->second;
    ++index;
    if (item.kind == DirItem::Kind::kMountPoint) {
      Volume* next = FindVolume(item.mount_volume);
      if (next == nullptr) {
        // Hand the remaining work to the mount target's custodian.
        return not_custodian(item.mount_volume);
      }
      crumbs.emplace_back(vol, cur);
      vol = next;
      cur = vol->root();
      continue;
    }
    if (item.kind == DirItem::Kind::kSymlink && index <= components.size()) {
      if (++symlink_depth > kMaxSymlinkDepth) return StatusReply(Status::kSymlinkLoop);
      auto link = vol->FetchData(item.fid);
      if (!link.ok()) return StatusReply(link.status());
      const std::string target = ToString(*link);
      std::vector<std::string> spliced = SplitPath(target);
      if (!target.empty() && target.front() == '/') {
        // Absolute within Vice: restart at the root volume.
        spliced.insert(spliced.end(), components.begin() + static_cast<ptrdiff_t>(index),
                       components.end());
        components = std::move(spliced);
        index = 0;
        if (location_ == nullptr) return StatusReply(Status::kUnavailable);
        vol = FindVolume(location_->root_volume);
        if (vol == nullptr) return not_custodian(location_->root_volume);
        cur = vol->root();
        continue;
      }
      // Relative: splice before the remaining components; stay at `cur`.
      std::vector<std::string> next_components = std::move(spliced);
      next_components.insert(next_components.end(),
                             components.begin() + static_cast<ptrdiff_t>(index),
                             components.end());
      components = std::move(next_components);
      index = 0;
      continue;
    }
    cur = item.fid;
  }

  auto status = vol->GetStatus(cur);
  if (!status.ok()) return StatusReply(status.status());
  if (Status s = CheckAccess(*vol, cur, ctx.user(), protection::kLookup); s != Status::kOk) {
    return StatusReply(s);
  }
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutFid(cur);
  PutVnodeStatus(w, *status);
  return w.Take();
}

Bytes ViceServer::HandleGetAcl(rpc::CallContext& ctx, rpc::Reader& r) {
  auto fid = r.FidField();
  if (!fid.ok()) return StatusReply(Status::kProtocolError);
  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);
  if (Status s = CheckAccess(*vol, *fid, ctx.user(), protection::kLookup);
      s != Status::kOk) {
    return StatusReply(s);
  }
  auto acl = vol->EffectiveAcl(*fid);
  if (!acl.ok()) return StatusReply(acl.status());
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutBytes(acl->Serialize());
  return w.Take();
}

Result<Bytes> ViceServer::HandleSetAcl(rpc::CallContext& ctx, rpc::Reader& r) {
  auto fid = r.FidField();
  auto acl_bytes = fid.ok() ? r.BytesField() : Result<Bytes>(Status::kProtocolError);
  if (!acl_bytes.ok()) return StatusReply(Status::kProtocolError);
  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);
  if (Status s = CheckAccess(*vol, *fid, ctx.user(), protection::kAdminister);
      s != Status::kOk) {
    return StatusReply(s);
  }
  auto acl = AccessList::Deserialize(*acl_bytes);
  if (!acl.ok()) return StatusReply(Status::kProtocolError);
  if (CrashPointHit(rpc::CrashPoint::kBeforeLogAppend)) return Status::kUnavailable;
  const uint64_t lsn = LogIntention(ctx, recovery::IntentKind::kSetAcl, fid->volume,
                                    recovery::EncodeSetAcl(*fid, acl->Serialize()));
  if (CrashPointHit(rpc::CrashPoint::kAfterLogAppend)) return Status::kUnavailable;
  if (Status s = vol->SetAcl(*fid, *acl); s != Status::kOk) {
    AbortIntention(lsn);
    return StatusReply(s);
  }
  CommitIntention(ctx, lsn);
  ctx.ChargeDisk(0);
  if (CrashPointHit(rpc::CrashPoint::kBeforeReply)) return Status::kUnavailable;
  return StatusReply(Status::kOk);
}

Bytes ViceServer::HandleLock(rpc::CallContext& ctx, rpc::Reader& r, bool acquire) {
  auto fid = r.FidField();
  if (!fid.ok()) return StatusReply(Status::kProtocolError);
  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);

  const LockManager::Holder holder{ctx.user(), ctx.client_node()};
  if (acquire) {
    auto mode_raw = r.U8();
    if (!mode_raw.ok() || *mode_raw > 1) return StatusReply(Status::kProtocolError);
    if (Status s = CheckAccess(*vol, *fid, ctx.user(), protection::kLock);
        s != Status::kOk) {
      return StatusReply(s);
    }
    // The prototype funneled lock traffic through a dedicated lock-server
    // process; model that extra hand-off when running prototype-style.
    if (config_.admin_status_files) ctx.ChargeCpu(cost_.server_context_switch);
    return StatusReply(locks_.Acquire(*fid, static_cast<LockMode>(*mode_raw), holder));
  }
  return StatusReply(locks_.Release(*fid, holder));
}

Bytes ViceServer::HandleRemoveCallback(rpc::CallContext& ctx, rpc::Reader& r) {
  auto fid = r.FidField();
  if (!fid.ok()) return StatusReply(Status::kProtocolError);
  auto it = callback_sinks_.find(ctx.client_node());
  if (it != callback_sinks_.end()) callbacks_.Unregister(*fid, it->second);
  return StatusReply(Status::kOk);
}

Bytes ViceServer::HandleGrantLease(rpc::CallContext& ctx, rpc::Reader& r) {
  // Validate + grant in one call: the lease-mode open path once a cached
  // copy's lease has lapsed. Same shape as kValidate, plus the expiry.
  auto fid = r.FidField();
  auto version = fid.ok() ? r.U64() : Result<uint64_t>(Status::kProtocolError);
  if (!fid.ok() || !version.ok()) return StatusReply(Status::kProtocolError);
  Volume* vol = FindVolume(fid->volume);
  if (vol == nullptr) return NotCustodianReply(location_.get(), fid->volume);

  auto status = vol->GetStatus(*fid);
  if (!status.ok()) return StatusReply(status.status());
  if (Status s = CheckAccess(*vol, *fid, ctx.user(), protection::kLookup);
      s != Status::kOk) {
    return StatusReply(s);
  }
  NoteVolumeAccess(fid->volume, ctx.client_node());

  const bool valid = status->version == *version;
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutBool(valid);
  PutVnodeStatus(w, *status);
  if (valid && config_.leases) {
    AppendLeaseGrant(*fid, ctx, w);
  } else {
    // Fixed schema: the expiry field is always present; 0 means no promise
    // (stale copy, restart embargo, or a server not running leases at all).
    w.PutU64(0);
  }
  return w.Take();
}

Bytes ViceServer::HandleRenewLeases(rpc::CallContext& ctx, rpc::Reader& r) {
  auto n = r.U32();
  if (!n.ok()) return StatusReply(Status::kProtocolError);
  std::vector<Fid> fids;
  fids.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto fid = r.FidField();
    if (!fid.ok()) return StatusReply(Status::kProtocolError);
    fids.push_back(*fid);
  }
  // Renewal is a table walk, not per-file disk work; one LWP hand-off covers
  // the whole batch — that is the point of batching renewals per server.
  ctx.ChargeCpu(cost_.server_lwp_switch);

  std::vector<Fid> rejected;
  auto it = callback_sinks_.find(ctx.client_node());
  const bool granting = config_.leases && it != callback_sinks_.end();
  if (!granting) {
    rejected = fids;  // nothing renewable here; caller must revalidate
  } else {
    rejected = leases_.Renew(it->second, fids, ctx.arrival());
  }
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  // Every renewed lease now runs to the same horizon.
  w.PutU64(granting ? static_cast<uint64_t>(ctx.arrival() + leases_.term()) : 0);
  w.PutU32(static_cast<uint32_t>(rejected.size()));
  for (const Fid& f : rejected) w.PutFid(f);
  return w.Take();
}

Bytes ViceServer::HandleReleaseLease(rpc::CallContext& ctx, rpc::Reader& r) {
  auto fid = r.FidField();
  if (!fid.ok()) return StatusReply(Status::kProtocolError);
  auto it = callback_sinks_.find(ctx.client_node());
  if (it != callback_sinks_.end()) leases_.Release(*fid, it->second);
  return StatusReply(Status::kOk);
}

Bytes ViceServer::HandleGetVolumeStatus(rpc::CallContext& ctx, rpc::Reader& r) {
  (void)ctx;
  auto vid = r.U32();
  if (!vid.ok()) return StatusReply(Status::kProtocolError);
  const Volume* vol = FindVolume(*vid);
  if (vol == nullptr) return NotCustodianReply(location_.get(), *vid);
  rpc::Writer w;
  w.PutStatus(Status::kOk);
  w.PutU64(vol->quota_bytes());
  w.PutU64(vol->usage_bytes());
  w.PutBool(vol->read_only());
  w.PutBool(vol->online());
  w.PutU64(vol->vnode_count());
  return w.Take();
}

}  // namespace itc::vice
