// The Vice-Virtue file system interface (Section 2.3).
//
// "There is a well-defined file system interface between Vice and Virtue.
//  This interface is relatively static and enhancements to it occur in an
//  upward-compatible manner..."
//
// Procedure numbers, reply conventions, and (de)serialization helpers shared
// by the Vice file server and Venus. Every reply begins with a Status; a
// non-OK status carries no payload except where noted (kNotCustodian replies
// carry the custodian hint, per "if a server receives a request for a file
// for which it is not the custodian, it will respond with the identity of
// the appropriate custodian", Section 3.1).

#ifndef SRC_VICE_PROTOCOL_H_
#define SRC_VICE_PROTOCOL_H_

#include <cstdint>
#include <string_view>

#include "src/common/result.h"
#include "src/rpc/op_registry.h"
#include "src/rpc/wire.h"
#include "src/vice/vnode.h"

namespace itc::vice {

enum class Proc : uint32_t {
  // Connection / environment.
  kTestAuth = 1,
  kGetTime = 2,

  // Location (Section 3.1).
  kGetVolumeInfo = 3,   // volume id -> custodian + read-only replica sites
  kGetRootVolume = 4,   // () -> volume id of the Vice name space root

  // Crash recovery: () -> the server's restart epoch. Venus compares the
  // epoch against what it remembered for this server; a bump means the
  // server crashed and every callback promise it held is gone (Section 3.2:
  // "each workstation is critically dependent on noticing server crashes").
  kProbeEpoch = 5,

  // Data and status.
  kFetch = 10,        // fid -> status + whole-file data (registers callback)
  kFetchStatus = 11,  // fid -> status                  (registers callback)
  kValidate = 12,     // fid + cached version -> valid? (check-on-open path)
  kStore = 13,        // fid + data -> new status       (breaks callbacks)
  kSetStatus = 14,    // fid + mode/owner bits -> new status

  // Name space.
  kCreateFile = 20,
  kMakeDir = 21,
  kMakeSymlink = 22,
  kRemoveFile = 23,
  kRemoveDir = 24,
  kRename = 25,
  kMakeMountPoint = 26,
  // Prototype-mode server-side pathname traversal: full path -> fid+status.
  kResolvePath = 27,

  // Protection (Section 3.4).
  kGetAcl = 30,
  kSetAcl = 31,

  // Locks (Section 3.6).
  kSetLock = 40,
  kReleaseLock = 41,

  // Cache management.
  kRemoveCallback = 50,  // Venus dropped its cached copy

  // Leases (third validation scheme; see src/vice/lease/).
  kGrantLease = 51,   // fid + cached version -> valid? + fresh lease
  kRenewLeases = 52,  // batch: fids -> rejected fids (must revalidate)
  kReleaseLease = 53, // Venus dropped its cached copy (lease-mode analog
                      // of kRemoveCallback)

  // Administration.
  kGetVolumeStatus = 60,  // quota, usage, type, online
};

// Schema flag: in prototype mode (server_side_pathnames) this op pays full
// pathname-resolution CPU and namei disk reads before its handler runs.
inline constexpr uint32_t kOpChargesPathname = 1u << 0;

// The typed op table of the Vice-Virtue interface: one OpSpec per Proc with
// its CallClass, idempotency (governs client-side retries), flags, and wire
// docs. ViceServer binds its handlers against this schema; ProcName/ClassOf
// below and the docs/PROTOCOL.md table are all derived from it.
const rpc::OpSchema& ViceOpSchema();

std::string_view ProcName(Proc p);

// The aggregate call categories of the prototype measurement in Section 5.2
// ("cache validity checking ... 65%, obtain file status ... 27%, fetch 4%,
// store 2%"). Shared with the RPC tracing layer.
using CallClass = rpc::CallClass;
using rpc::CallClassName;
CallClass ClassOf(Proc p);

// --- Wire helpers -----------------------------------------------------------

void PutVnodeStatus(rpc::Writer& w, const VnodeStatus& s);
[[nodiscard]] Result<VnodeStatus> ReadVnodeStatus(rpc::Reader& r);

// Volume location info returned by kGetVolumeInfo.
struct VolumeInfo {
  VolumeId volume = kInvalidVolume;
  VolumeId read_write_volume = kInvalidVolume;  // parent for RO clones
  VolumeId ro_clone = kInvalidVolume;           // released RO clone of a RW volume
  bool read_only = false;
  ServerId custodian = kInvalidServer;
  std::vector<ServerId> replica_sites;  // servers holding RO replicas
};

void PutVolumeInfo(rpc::Writer& w, const VolumeInfo& info);
[[nodiscard]] Result<VolumeInfo> ReadVolumeInfo(rpc::Reader& r);

// Encodes a reply of just a status code.
Bytes StatusReply(Status s);

}  // namespace itc::vice

#endif  // SRC_VICE_PROTOCOL_H_
