#include "src/vice/callback_manager.h"

#include "src/sim/kernel.h"

namespace itc::vice {

void CallbackManager::Register(const Fid& fid, CallbackReceiver* who) {
  if (promises_[fid].insert(who).second) stats_.registered += 1;
}

void CallbackManager::Unregister(const Fid& fid, CallbackReceiver* who) {
  auto it = promises_.find(fid);
  if (it == promises_.end()) return;
  it->second.erase(who);
  if (it->second.empty()) promises_.erase(it);
}

void CallbackManager::UnregisterAll(CallbackReceiver* who) {
  for (auto it = promises_.begin(); it != promises_.end();) {
    it->second.erase(who);
    if (it->second.empty()) {
      it = promises_.erase(it);
    } else {
      ++it;
    }
  }
}

uint32_t CallbackManager::Break(const Fid& fid, CallbackReceiver* except, SimTime at,
                                NodeId server_node, net::Network* network,
                                sim::Resource* server_cpu, const sim::CostModel& cost) {
  auto it = promises_.find(fid);
  if (it == promises_.end()) return 0;

  uint32_t sent = 0;
  SimTime t = at;
  for (CallbackReceiver* r : it->second) {
    if (r == except) continue;
    // One small message per holder, preceded by a sliver of server CPU.
    t = sim::Charge(*server_cpu, t, cost.server_lwp_switch);
    if (!network->Reachable(server_node, r->callback_node(), t)) {
      // The break is fire-and-forget: a partitioned holder never hears it
      // and keeps trusting its cache — the staleness hole leases close.
      network->NotePartitionDrop(server_node);
      stats_.lost += 1;
      continue;
    }
    network->Send(server_node, r->callback_node(), 64, t,
                  [r, fid] { r->OnCallbackBroken(fid); });
    sent += 1;
  }
  if (sent > 0) stats_.break_events += 1;
  stats_.broken += sent;

  // Everyone else's promise is now void. The writer's own promise survives:
  // its cached copy is the new version, and it must still hear about
  // subsequent writes by others.
  const bool writer_held = except != nullptr && it->second.contains(except);
  promises_.erase(it);
  if (writer_held) promises_[fid].insert(except);
  return sent;
}

uint32_t CallbackManager::BreakVolume(VolumeId volume, SimTime at, NodeId server_node,
                                      net::Network* network, sim::Resource* server_cpu,
                                      const sim::CostModel& cost) {
  uint32_t sent = 0;
  SimTime t = at;
  for (auto it = promises_.begin(); it != promises_.end();) {
    if (it->first.volume != volume) {
      ++it;
      continue;
    }
    for (CallbackReceiver* r : it->second) {
      t = sim::Charge(*server_cpu, t, cost.server_lwp_switch);
      if (!network->Reachable(server_node, r->callback_node(), t)) {
        network->NotePartitionDrop(server_node);
        stats_.lost += 1;
        continue;
      }
      network->Send(server_node, r->callback_node(), 64, t,
                    [r, fid = it->first] { r->OnCallbackBroken(fid); });
      sent += 1;
    }
    it = promises_.erase(it);
  }
  if (sent > 0) {
    stats_.break_events += 1;
    stats_.broken += sent;
  }
  return sent;
}

bool CallbackManager::HasPromise(const Fid& fid, const CallbackReceiver* who) const {
  auto it = promises_.find(fid);
  return it != promises_.end() &&
         it->second.contains(const_cast<CallbackReceiver*>(who));
}

size_t CallbackManager::promise_count() const {
  size_t n = 0;
  for (const auto& [fid, holders] : promises_) n += holders.size();
  return n;
}

}  // namespace itc::vice
