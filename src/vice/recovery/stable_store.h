// Simulated stable storage for a Vice file server.
//
// Real Vice servers keep volumes on disk; this simulation keeps them in
// memory, so without a durability model a server crash cannot be expressed
// at all. StableStore is that model: a checkpoint image (a copy-on-write
// Volume::Snapshot) per volume plus the write-ahead IntentionLog. Together
// they define exactly what survives ViceServer::SimulateCrash() — everything
// else (callback promises, advisory locks, connections, in-flight replies)
// is volatile and is rebuilt or re-established after Restart().
//
// Images are snapshots rather than Volume::Dump byte streams so that the
// periodic checkpoint costs O(vnodes) pointer copies on the host instead of
// re-serializing every file byte; the *simulated* checkpoint disk charge is
// unchanged because image_bytes() still reports exactly what the dumps
// would have measured (Volume::DumpSize).
//
// Checkpointing is the log-truncation mechanism: after every
// `checkpoint_interval` committed intentions the server re-dumps the
// affected volume and truncates the log, bounding both recovery time and
// (modeled) log space.

#ifndef SRC_VICE_RECOVERY_STABLE_STORE_H_
#define SRC_VICE_RECOVERY_STABLE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/vice/recovery/intention_log.h"
#include "src/vice/volume.h"

namespace itc::vice::recovery {

// What Restart() reports back to the operator (and to tests/benches).
struct RecoveryReport {
  uint32_t volumes_restored = 0;
  uint32_t intentions_replayed = 0;   // committed records re-executed
  uint32_t intentions_discarded = 0;  // logged-but-uncommitted + aborted
  uint32_t replay_failures = 0;       // committed records that failed to re-apply
  Volume::SalvageReport salvage;      // aggregated across all volumes
  uint32_t restart_epoch = 0;         // server epoch after this restart
  SimTime recovery_time = 0;          // virtual time spent restoring/replaying

  bool clean() const { return replay_failures == 0 && salvage.clean(); }
};

class StableStore {
 public:
  // Overwrites the durable image of `vol` with a fresh snapshot.
  void CheckpointVolume(const Volume& vol);
  void EraseVolume(VolumeId id) { images_.erase(id); }
  bool HasVolume(VolumeId id) const { return images_.contains(id); }
  size_t volume_count() const { return images_.size(); }

  // Total bytes the checkpoint images would occupy as Volume::Dump streams
  // (for cost accounting/stats; identical to the pre-snapshot accounting).
  uint64_t image_bytes() const;

  // Host bytes retained for file contents in checkpoint images and logged
  // store records (dedup-aware via `seen`); memory accounting, not the
  // simulated image size above.
  uint64_t RetainedContentBytes(std::unordered_set<const void*>* seen) const;

  // Reconstructs every checkpointed volume from its image. Does not touch
  // the log; the caller replays committed intentions on top.
  [[nodiscard]] Result<std::vector<std::unique_ptr<Volume>>> RestoreVolumes() const;

  IntentionLog& log() { return log_; }
  const IntentionLog& log() const { return log_; }

 private:
  struct Image {
    std::unique_ptr<Volume> snap;  // copy-on-write, shares data blocks
    uint64_t dump_bytes = 0;       // what Dump().size() would have been
  };

  std::map<VolumeId, Image> images_;
  IntentionLog log_;
};

}  // namespace itc::vice::recovery

#endif  // SRC_VICE_RECOVERY_STABLE_STORE_H_
