// Write-ahead intention log for Vice stable storage (crash recovery).
//
// The revised design keeps callback state volatile but file state durable:
// "each workstation is critically dependent on noticing server crashes"
// (Section 3.2) only works if the server itself comes back with consistent
// volumes. Every mutating Vice operation appends an *intention* record here
// before applying the change to the in-memory volume, then marks the record
// committed once the change is applied. On restart, committed intentions are
// replayed against the last checkpoint image; uncommitted ones are discarded
// — the client never received a reply for them, so discarding preserves the
// store-on-close atomicity of Section 3.5 (a Store is either fully visible
// or absent, never torn).
//
// Replay is deterministic: volume fid counters are restored from the
// checkpoint dump, records carry the server clock at append time, and
// re-executing records in LSN order reproduces identical fids, versions and
// mtimes.

#ifndef SRC_VICE_RECOVERY_INTENTION_LOG_H_
#define SRC_VICE_RECOVERY_INTENTION_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/content.h"
#include "src/common/fid.h"
#include "src/common/result.h"
#include "src/common/types.h"

namespace itc::vice {
class Volume;
}  // namespace itc::vice

namespace itc::vice::recovery {

enum class IntentKind : uint8_t {
  kStore = 1,
  kCreateFile = 2,
  kMakeDir = 3,
  kMakeSymlink = 4,
  kRemoveFile = 5,
  kRemoveDir = 6,
  kRename = 7,
  kSetStatus = 8,
  kSetAcl = 9,
  kMakeMountPoint = 10,
};

const char* IntentKindName(IntentKind k);

enum class IntentState : uint8_t {
  kLogged = 0,     // appended, not yet applied — discarded on recovery
  kCommitted = 1,  // applied; replayed on recovery
  kAborted = 2,    // apply failed; discarded on recovery
};

struct Intention {
  uint64_t lsn = 0;
  IntentKind kind = IntentKind::kStore;
  VolumeId volume = kInvalidVolume;
  SimTime when = 0;  // server clock at append; replay re-installs it
  IntentState state = IntentState::kLogged;
  Bytes payload;  // op-specific encoding (Encode* below)
  // kStore via AppendStore only: the stored contents by reference — the log
  // shares the volume's (interned) buffers instead of holding a byte copy
  // until the next checkpoint truncates it. The *modeled* log traffic is
  // still the logical record (see AppendStore); only host memory changes.
  content::Ref contents;
};

// An append-only record list. In a real server this would be an fsync'd
// on-disk log; here durability is modeled by the cost charges the caller
// makes against the server disk resource.
class IntentionLog {
 public:
  // Appends a new record in state kLogged and returns its LSN.
  uint64_t Append(IntentKind kind, VolumeId volume, SimTime when, Bytes payload);
  // Appends a kStore record carrying `contents` by reference. bytes_appended
  // (and the caller's disk charge) must stay what the materialized encoding
  // EncodeStore(fid, bytes) would have measured, so the representation can
  // never change simulated times; LogicalStoreRecordBytes is that size.
  uint64_t AppendStore(VolumeId volume, SimTime when, const Fid& fid, content::Ref contents);
  static uint64_t LogicalStoreRecordBytes(uint64_t data_size) { return 12 + 4 + data_size; }
  void MarkCommitted(uint64_t lsn);
  void MarkAborted(uint64_t lsn);

  // Drops every record — called after a checkpoint makes them redundant.
  void Truncate() { records_.clear(); }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<Intention>& records() const { return records_; }

  // Total payload bytes appended over the log's lifetime (for stats).
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  Intention* Find(uint64_t lsn);

  std::vector<Intention> records_;
  uint64_t next_lsn_ = 1;
  uint64_t bytes_appended_ = 0;
};

// --- Payload encoders --------------------------------------------------------
// One per IntentKind. MakeDir ACL inheritance is resolved by the caller
// before logging so replay needs no out-of-band context.
// EncodeStore is the legacy byte-copying form; the server logs stores via
// AppendStore (ref-carrying) instead. Replay accepts both.
Bytes EncodeStore(const Fid& fid, const Bytes& data);
Bytes EncodeCreateFile(const Fid& dir, const std::string& name, UserId owner, uint16_t mode);
Bytes EncodeMakeDir(const Fid& dir, const std::string& name, UserId owner,
                    const Bytes& acl_bytes);
Bytes EncodeMakeSymlink(const Fid& dir, const std::string& name, const std::string& target,
                        UserId owner);
Bytes EncodeRemove(const Fid& dir, const std::string& name);  // file and dir
Bytes EncodeRename(const Fid& from_dir, const std::string& from_name, const Fid& to_dir,
                   const std::string& to_name);
Bytes EncodeSetStatus(const Fid& fid, bool set_mode, uint16_t mode, bool set_owner,
                      UserId owner);
Bytes EncodeSetAcl(const Fid& dir, const Bytes& acl_bytes);
Bytes EncodeMakeMountPoint(const Fid& dir, const std::string& name, VolumeId target);

// Re-executes one committed intention against `vol` during recovery.
// Decodes the payload and invokes the corresponding Volume operation with
// the record's logged clock installed.
[[nodiscard]] Status ApplyIntention(Volume& vol, const Intention& rec);

}  // namespace itc::vice::recovery

#endif  // SRC_VICE_RECOVERY_INTENTION_LOG_H_
