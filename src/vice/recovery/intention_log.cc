#include "src/vice/recovery/intention_log.h"

#include <utility>

#include "src/common/logging.h"
#include "src/protection/access_list.h"
#include "src/rpc/wire.h"
#include "src/vice/volume.h"

namespace itc::vice::recovery {

const char* IntentKindName(IntentKind k) {
  switch (k) {
    case IntentKind::kStore: return "Store";
    case IntentKind::kCreateFile: return "CreateFile";
    case IntentKind::kMakeDir: return "MakeDir";
    case IntentKind::kMakeSymlink: return "MakeSymlink";
    case IntentKind::kRemoveFile: return "RemoveFile";
    case IntentKind::kRemoveDir: return "RemoveDir";
    case IntentKind::kRename: return "Rename";
    case IntentKind::kSetStatus: return "SetStatus";
    case IntentKind::kSetAcl: return "SetAcl";
    case IntentKind::kMakeMountPoint: return "MakeMountPoint";
  }
  return "?";
}

uint64_t IntentionLog::Append(IntentKind kind, VolumeId volume, SimTime when,
                              Bytes payload) {
  Intention rec;
  rec.lsn = next_lsn_++;
  rec.kind = kind;
  rec.volume = volume;
  rec.when = when;
  rec.state = IntentState::kLogged;
  bytes_appended_ += payload.size();
  rec.payload = std::move(payload);
  records_.push_back(std::move(rec));
  return records_.back().lsn;
}

uint64_t IntentionLog::AppendStore(VolumeId volume, SimTime when, const Fid& fid,
                                   content::Ref contents) {
  Intention rec;
  rec.lsn = next_lsn_++;
  rec.kind = IntentKind::kStore;
  rec.volume = volume;
  rec.when = when;
  rec.state = IntentState::kLogged;
  bytes_appended_ += LogicalStoreRecordBytes(contents.size());
  rpc::Writer w;
  w.PutFid(fid);
  rec.payload = w.Take();
  rec.contents = std::move(contents);
  records_.push_back(std::move(rec));
  return records_.back().lsn;
}

Intention* IntentionLog::Find(uint64_t lsn) {
  // Records are appended in LSN order; the record being marked is almost
  // always the last one.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->lsn == lsn) return &*it;
  }
  return nullptr;
}

void IntentionLog::MarkCommitted(uint64_t lsn) {
  Intention* rec = Find(lsn);
  ITC_CHECK(rec != nullptr);
  rec->state = IntentState::kCommitted;
}

void IntentionLog::MarkAborted(uint64_t lsn) {
  Intention* rec = Find(lsn);
  ITC_CHECK(rec != nullptr);
  rec->state = IntentState::kAborted;
}

Bytes EncodeStore(const Fid& fid, const Bytes& data) {
  rpc::Writer w;
  w.PutFid(fid);
  w.PutBytes(data);
  return w.Take();
}

Bytes EncodeCreateFile(const Fid& dir, const std::string& name, UserId owner,
                       uint16_t mode) {
  rpc::Writer w;
  w.PutFid(dir);
  w.PutString(name);
  w.PutU32(owner);
  w.PutU32(mode);
  return w.Take();
}

Bytes EncodeMakeDir(const Fid& dir, const std::string& name, UserId owner,
                    const Bytes& acl_bytes) {
  rpc::Writer w;
  w.PutFid(dir);
  w.PutString(name);
  w.PutU32(owner);
  w.PutBytes(acl_bytes);
  return w.Take();
}

Bytes EncodeMakeSymlink(const Fid& dir, const std::string& name, const std::string& target,
                        UserId owner) {
  rpc::Writer w;
  w.PutFid(dir);
  w.PutString(name);
  w.PutString(target);
  w.PutU32(owner);
  return w.Take();
}

Bytes EncodeRemove(const Fid& dir, const std::string& name) {
  rpc::Writer w;
  w.PutFid(dir);
  w.PutString(name);
  return w.Take();
}

Bytes EncodeRename(const Fid& from_dir, const std::string& from_name, const Fid& to_dir,
                   const std::string& to_name) {
  rpc::Writer w;
  w.PutFid(from_dir);
  w.PutString(from_name);
  w.PutFid(to_dir);
  w.PutString(to_name);
  return w.Take();
}

Bytes EncodeSetStatus(const Fid& fid, bool set_mode, uint16_t mode, bool set_owner,
                      UserId owner) {
  rpc::Writer w;
  w.PutFid(fid);
  w.PutBool(set_mode);
  w.PutU32(mode);
  w.PutBool(set_owner);
  w.PutU32(owner);
  return w.Take();
}

Bytes EncodeSetAcl(const Fid& dir, const Bytes& acl_bytes) {
  rpc::Writer w;
  w.PutFid(dir);
  w.PutBytes(acl_bytes);
  return w.Take();
}

Bytes EncodeMakeMountPoint(const Fid& dir, const std::string& name, VolumeId target) {
  rpc::Writer w;
  w.PutFid(dir);
  w.PutString(name);
  w.PutU32(target);
  return w.Take();
}

Status ApplyIntention(Volume& vol, const Intention& rec) {
  vol.set_now(rec.when);
  rpc::Reader r(rec.payload);
  switch (rec.kind) {
    case IntentKind::kStore: {
      ASSIGN_OR_RETURN(Fid fid, r.FidField());
      // AppendStore records end at the fid and carry the contents as a ref;
      // EncodeStore records (legacy/test-crafted) carry literal bytes.
      if (r.AtEnd()) return vol.StoreRef(fid, rec.contents);
      ASSIGN_OR_RETURN(Bytes data, r.BytesField());
      return vol.StoreData(fid, std::move(data));
    }
    case IntentKind::kCreateFile: {
      ASSIGN_OR_RETURN(Fid dir, r.FidField());
      ASSIGN_OR_RETURN(std::string name, r.String());
      ASSIGN_OR_RETURN(uint32_t owner, r.U32());
      ASSIGN_OR_RETURN(uint32_t mode, r.U32());
      return vol.CreateFile(dir, name, owner, static_cast<uint16_t>(mode)).status();
    }
    case IntentKind::kMakeDir: {
      ASSIGN_OR_RETURN(Fid dir, r.FidField());
      ASSIGN_OR_RETURN(std::string name, r.String());
      ASSIGN_OR_RETURN(uint32_t owner, r.U32());
      ASSIGN_OR_RETURN(Bytes acl_bytes, r.BytesField());
      ASSIGN_OR_RETURN(protection::AccessList acl,
                       protection::AccessList::Deserialize(acl_bytes));
      return vol.MakeDir(dir, name, owner, acl).status();
    }
    case IntentKind::kMakeSymlink: {
      ASSIGN_OR_RETURN(Fid dir, r.FidField());
      ASSIGN_OR_RETURN(std::string name, r.String());
      ASSIGN_OR_RETURN(std::string target, r.String());
      ASSIGN_OR_RETURN(uint32_t owner, r.U32());
      return vol.MakeSymlink(dir, name, target, owner).status();
    }
    case IntentKind::kRemoveFile: {
      ASSIGN_OR_RETURN(Fid dir, r.FidField());
      ASSIGN_OR_RETURN(std::string name, r.String());
      return vol.RemoveFile(dir, name);
    }
    case IntentKind::kRemoveDir: {
      ASSIGN_OR_RETURN(Fid dir, r.FidField());
      ASSIGN_OR_RETURN(std::string name, r.String());
      return vol.RemoveDir(dir, name);
    }
    case IntentKind::kRename: {
      ASSIGN_OR_RETURN(Fid from_dir, r.FidField());
      ASSIGN_OR_RETURN(std::string from_name, r.String());
      ASSIGN_OR_RETURN(Fid to_dir, r.FidField());
      ASSIGN_OR_RETURN(std::string to_name, r.String());
      return vol.Rename(from_dir, from_name, to_dir, to_name);
    }
    case IntentKind::kSetStatus: {
      ASSIGN_OR_RETURN(Fid fid, r.FidField());
      ASSIGN_OR_RETURN(bool set_mode, r.Bool());
      ASSIGN_OR_RETURN(uint32_t mode, r.U32());
      ASSIGN_OR_RETURN(bool set_owner, r.Bool());
      ASSIGN_OR_RETURN(uint32_t owner, r.U32());
      if (set_mode) RETURN_IF_ERROR(vol.SetMode(fid, static_cast<uint16_t>(mode)));
      if (set_owner) RETURN_IF_ERROR(vol.SetOwner(fid, owner));
      return Status::kOk;
    }
    case IntentKind::kSetAcl: {
      ASSIGN_OR_RETURN(Fid dir, r.FidField());
      ASSIGN_OR_RETURN(Bytes acl_bytes, r.BytesField());
      ASSIGN_OR_RETURN(protection::AccessList acl,
                       protection::AccessList::Deserialize(acl_bytes));
      return vol.SetAcl(dir, acl);
    }
    case IntentKind::kMakeMountPoint: {
      ASSIGN_OR_RETURN(Fid dir, r.FidField());
      ASSIGN_OR_RETURN(std::string name, r.String());
      ASSIGN_OR_RETURN(uint32_t target, r.U32());
      return vol.MakeMountPoint(dir, name, target);
    }
  }
  return Status::kInvalidArgument;
}

}  // namespace itc::vice::recovery
