#include "src/vice/recovery/stable_store.h"

#include <utility>

namespace itc::vice::recovery {

void StableStore::CheckpointVolume(const Volume& vol) {
  Image img;
  img.dump = vol.Dump();
  img.name = vol.name();
  img.type = vol.type();
  img.online = vol.online();
  images_[vol.id()] = std::move(img);
}

uint64_t StableStore::image_bytes() const {
  uint64_t total = 0;
  for (const auto& [id, img] : images_) total += img.dump.size();
  return total;
}

Result<std::vector<std::unique_ptr<Volume>>> StableStore::RestoreVolumes() const {
  std::vector<std::unique_ptr<Volume>> out;
  out.reserve(images_.size());
  for (const auto& [id, img] : images_) {
    ASSIGN_OR_RETURN(std::unique_ptr<Volume> vol,
                     Volume::Restore(img.dump, id, img.name, img.type));
    vol->set_online(img.online);
    out.push_back(std::move(vol));
  }
  return out;
}

}  // namespace itc::vice::recovery
