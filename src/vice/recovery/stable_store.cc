#include "src/vice/recovery/stable_store.h"

#include <utility>

namespace itc::vice::recovery {

void StableStore::CheckpointVolume(const Volume& vol) {
  Image img;
  img.snap = vol.Snapshot();
  img.dump_bytes = vol.DumpSize();
  images_[vol.id()] = std::move(img);
}

uint64_t StableStore::image_bytes() const {
  uint64_t total = 0;
  for (const auto& [id, img] : images_) total += img.dump_bytes;
  return total;
}

uint64_t StableStore::RetainedContentBytes(std::unordered_set<const void*>* seen) const {
  uint64_t total = 0;
  for (const auto& [id, img] : images_) total += img.snap->RetainedContentBytes(seen);
  for (const auto& rec : log_.records()) total += rec.contents.RetainedBytes(seen);
  return total;
}

Result<std::vector<std::unique_ptr<Volume>>> StableStore::RestoreVolumes() const {
  std::vector<std::unique_ptr<Volume>> out;
  out.reserve(images_.size());
  for (const auto& [id, img] : images_) out.push_back(img.snap->Snapshot());
  return out;
}

}  // namespace itc::vice::recovery
