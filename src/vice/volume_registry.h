// Volume administration and the master location database.
//
// The VolumeRegistry is the operations side of Vice: creating volumes,
// assigning and re-assigning custodians ("the reassignment of subtrees to
// custodians is infrequent and typically involves human interaction",
// Section 3.1), cloning, and releasing read-only replicas ("the creation of
// a read-only subtree is an atomic operation, thus providing a convenient
// mechanism to support the orderly release of new system software",
// Section 3.2). Every mutation republished the location snapshot to all
// servers — the expensive, rare, global change the design principles call
// out.

#ifndef SRC_VICE_VOLUME_REGISTRY_H_
#define SRC_VICE_VOLUME_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/protection/access_list.h"
#include "src/vice/file_server.h"
#include "src/vice/location_db.h"

namespace itc::vice {

class VolumeRegistry {
 public:
  // Registers a server; it immediately receives the current location
  // snapshot and will receive every future one.
  void RegisterServer(ViceServer* server);
  ViceServer* ServerById(ServerId id) const;
  // All registered servers, in id order.
  std::vector<ViceServer*> Servers() const;

  // Creates an empty read-write volume on `custodian`.
  [[nodiscard]] Result<VolumeId> CreateVolume(const std::string& name, ServerId custodian, UserId owner,
                                const protection::AccessList& root_acl,
                                uint64_t quota_bytes);

  // Declares which volume roots the Vice shared name space ("/").
  [[nodiscard]] Status SetRootVolume(VolumeId volume);

  // Adds a mount point entry `name` in directory `dir` referring to
  // `child`'s root. Administrative path: applied directly at the custodian;
  // outstanding callback promises on the directory are broken so connected
  // clients see the new mount.
  [[nodiscard]] Status MountAt(const Fid& dir, const std::string& name, VolumeId child);

  // Breaks every callback promise on `volume` at its custodian. Invoked by
  // administrative tooling after direct (non-RPC) mutations so connected
  // clients cannot keep trusting stale cached copies.
  [[nodiscard]] Status BreakVolumeCallbacks(VolumeId volume, SimTime at = 0);

  // Re-dumps the volume's stable-storage image at its custodian. Required
  // after any direct (non-RPC) mutation, which bypasses the custodian's
  // intention log and would otherwise be lost by a crash.
  [[nodiscard]] Status CheckpointVolume(VolumeId volume);

  // Moves a volume to a new custodian. The volume is offline for the
  // duration of the move; all outstanding callback promises on it are
  // broken. `at` is the administrative wall-clock instant used for the
  // callback traffic.
  [[nodiscard]] Status MoveVolume(VolumeId volume, ServerId new_custodian, SimTime at = 0);

  // Creates a frozen read-only clone of `volume`, hosted at the custodian.
  [[nodiscard]] Result<VolumeId> CloneVolume(VolumeId volume, const std::string& clone_name);

  // Atomically releases a read-only replica set of `volume` at `sites`:
  // clones the volume, installs a copy at every site, records the replica
  // sites in the location database, and points the read-write volume's
  // location entry at the new clone. Subsequent releases supersede earlier
  // clones in the location map (old clones remain as frozen versions at
  // their sites — "multiple coexisting versions of a subsystem are
  // represented by their respective read-only subtrees").
  [[nodiscard]] Result<VolumeId> ReleaseReadOnly(VolumeId volume, const std::string& clone_name,
                                   const std::vector<ServerId>& sites);

  [[nodiscard]] Status SetVolumeQuota(VolumeId volume, uint64_t quota_bytes);
  [[nodiscard]] Status SetVolumeOnline(VolumeId volume, bool online);

  // Backup workflow (the Integrity goal of Section 2.2): clones the volume
  // (frozen, copy-on-write) and dumps the clone; the transient clone is
  // discarded. The dump is self-contained and restorable on any server.
  [[nodiscard]] Result<Bytes> BackupVolume(VolumeId volume);
  // Restores a dump as a brand-new read-write volume at `custodian`,
  // mounted nowhere (use MountAt). Returns the new volume id.
  [[nodiscard]] Result<VolumeId> RestoreVolume(const Bytes& dump, const std::string& name,
                                 ServerId custodian);

  // Runs salvage on a volume at its custodian (crash recovery).
  [[nodiscard]] Result<Volume::SalvageReport> SalvageVolume(VolumeId volume);

  const LocationDb& location() const { return master_; }
  // Direct access to a hosted volume (admin/test convenience).
  Volume* FindVolume(VolumeId volume) const;

 private:
  void Publish();
  [[nodiscard]] Result<ViceServer*> CustodianOf(VolumeId volume) const;

  std::map<ServerId, ViceServer*> servers_;
  LocationDb master_;
  VolumeId next_volume_ = 1;
};

}  // namespace itc::vice

#endif  // SRC_VICE_VOLUME_REGISTRY_H_
