#include "src/vice/monitor.h"

#include <sstream>

namespace itc::vice {

std::string MoveRecommendation::Describe() const {
  std::ostringstream os;
  os << "move volume " << volume << " from server " << current_custodian << " to server "
     << suggested_custodian << " (" << accesses_from_suggested_cluster << "/"
     << total_accesses << " accesses from that cluster)";
  return os.str();
}

MonitorReport Monitor::Scan() const {
  MonitorReport report;
  const std::vector<ViceServer*> servers = registry_->Servers();

  for (ViceServer* server : servers) {
    const net::Topology& topo = server->network()->topology();
    const ClusterId home_cluster = topo.ClusterOf(server->node());

    // Load picture straight from the RPC layer's tracing: every data/status
    // call the server answered (classes other than kOther).
    for (const auto& [opcode, op] : server->endpoint().call_stats().per_op()) {
      if (op.call_class != CallClass::kOther) report.server_load[server->id()] += op.calls;
    }

    for (const auto& [volume, per_cluster] : server->volume_accesses()) {
      uint64_t total = 0;
      ClusterId best_cluster = home_cluster;
      uint64_t best_count = 0;
      for (const auto& [cluster, count] : per_cluster) {
        total += count;
        if (count > best_count) {
          best_count = count;
          best_cluster = cluster;
        }
      }

      if (total < min_accesses_) continue;
      if (best_cluster == home_cluster) continue;
      if (static_cast<double>(best_count) < dominance_ * static_cast<double>(total)) {
        continue;
      }
      auto info = registry_->location().Find(volume);
      if (!info.has_value() || info->read_only) continue;
      if (registry_->location().root_volume == volume) continue;

      // The receiving custodian: a server in the dominant cluster.
      ServerId target = kInvalidServer;
      for (ViceServer* candidate : servers) {
        if (topo.ClusterOf(candidate->node()) == best_cluster) {
          target = candidate->id();
          break;
        }
      }
      if (target == kInvalidServer || target == info->custodian) continue;

      MoveRecommendation rec;
      rec.volume = volume;
      rec.current_custodian = info->custodian;
      rec.suggested_custodian = target;
      rec.accesses_from_suggested_cluster = best_count;
      rec.total_accesses = total;
      report.moves.push_back(rec);
    }
  }
  return report;
}

Status Monitor::Apply(const MoveRecommendation& rec, SimTime at) {
  return registry_->MoveVolume(rec.volume, rec.suggested_custodian, at);
}

}  // namespace itc::vice
