#include "src/vice/vnode.h"

#include "src/rpc/wire.h"

namespace itc::vice {

Bytes SerializeDirectory(const DirMap& entries) {
  rpc::Writer w;
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [name, item] : entries) {
    w.PutString(name);
    w.PutU8(static_cast<uint8_t>(item.kind));
    w.PutFid(item.fid);
    w.PutU32(item.mount_volume);
  }
  return w.Take();
}

Result<DirMap> DeserializeDirectory(const Bytes& data) {
  rpc::Reader r(data);
  DirMap out;
  ASSIGN_OR_RETURN(uint32_t count, r.U32());
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.String());
    ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind > 3) return Status::kProtocolError;
    DirItem item;
    item.kind = static_cast<DirItem::Kind>(kind);
    ASSIGN_OR_RETURN(item.fid, r.FidField());
    ASSIGN_OR_RETURN(item.mount_volume, r.U32());
    out.emplace(std::move(name), item);
  }
  if (!r.AtEnd()) return Status::kProtocolError;
  return out;
}

}  // namespace itc::vice
