#include "src/vice/lock_manager.h"

namespace itc::vice {

Status LockManager::Acquire(const Fid& fid, LockMode mode, Holder who) {
  LockState& state = locks_[fid];
  if (mode == LockMode::kShared) {
    if (!state.writer.empty()) {
      // The exclusive holder asking for shared keeps its exclusive lock
      // (no downgrade); anyone else conflicts.
      return state.writer.contains(who) ? Status::kOk : Status::kLocked;
    }
    state.readers.insert(who);
    return Status::kOk;
  }
  // Exclusive: nobody else may hold anything.
  if (!state.writer.empty()) {
    return state.writer.contains(who) ? Status::kOk : Status::kLocked;
  }
  for (const Holder& r : state.readers) {
    if (!(r == who)) return Status::kLocked;
  }
  state.readers.erase(who);  // upgrade
  state.writer.insert(who);
  return Status::kOk;
}

Status LockManager::Release(const Fid& fid, Holder who) {
  auto it = locks_.find(fid);
  if (it == locks_.end()) return Status::kNotLocked;
  LockState& state = it->second;
  // Erase from BOTH sides — short-circuiting here would strand a writer
  // entry whenever the holder also appeared as a reader.
  const bool was_reader = state.readers.erase(who) > 0;
  const bool was_writer = state.writer.erase(who) > 0;
  if (!was_reader && !was_writer) return Status::kNotLocked;
  if (state.readers.empty() && state.writer.empty()) locks_.erase(it);
  return Status::kOk;
}

void LockManager::ReleaseAllFor(Holder who) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    it->second.readers.erase(who);
    it->second.writer.erase(who);
    if (it->second.readers.empty() && it->second.writer.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

void LockManager::ReleaseAllForNode(NodeId node) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    auto drop = [node](std::set<Holder>& holders) {
      for (auto h = holders.begin(); h != holders.end();) {
        h = h->node == node ? holders.erase(h) : std::next(h);
      }
    };
    drop(it->second.readers);
    drop(it->second.writer);
    if (it->second.readers.empty() && it->second.writer.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::IsExclusive(const Fid& fid) const {
  auto it = locks_.find(fid);
  return it != locks_.end() && !it->second.writer.empty();
}

}  // namespace itc::vice
