#include "src/vice/lease/lease_manager.h"

#include <algorithm>

#include "src/sim/kernel.h"

namespace itc::vice {

SimTime LeaseManager::Grant(const Fid& fid, CallbackReceiver* who, SimTime now) {
  if (now < suspended_until_) {
    stats_.refused += 1;
    return 0;
  }
  const SimTime expiry = now + term_;
  leases_[fid][who] = expiry;
  stats_.granted += 1;
  return expiry;
}

std::vector<Fid> LeaseManager::Renew(CallbackReceiver* who, const std::vector<Fid>& fids,
                                     SimTime now) {
  std::vector<Fid> rejected;
  for (const Fid& fid : fids) {
    bool live = false;
    if (now >= suspended_until_) {
      auto it = leases_.find(fid);
      if (it != leases_.end()) {
        auto holder = it->second.find(who);
        live = holder != it->second.end() && holder->second > now;
        if (live) holder->second = now + term_;
      }
    }
    if (live) {
      stats_.renewed += 1;
    } else {
      // Expired, never held, or under the restart embargo: renewal would
      // resurrect a lease the server may already have considered dead while
      // mutating — the holder must revalidate the file instead.
      stats_.rejected += 1;
      rejected.push_back(fid);
    }
  }
  return rejected;
}

void LeaseManager::Release(const Fid& fid, CallbackReceiver* who) {
  auto it = leases_.find(fid);
  if (it == leases_.end()) return;
  it->second.erase(who);
  if (it->second.empty()) leases_.erase(it);
}

void LeaseManager::ReleaseAll(CallbackReceiver* who) {
  for (auto it = leases_.begin(); it != leases_.end();) {
    it->second.erase(who);
    if (it->second.empty()) {
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
}

SimTime LeaseManager::Break(const Fid& fid, CallbackReceiver* except, SimTime at,
                            NodeId server_node, net::Network* network,
                            sim::Resource* server_cpu, const sim::CostModel& cost) {
  // Under the restart embargo the table is empty but a pre-crash lease the
  // server no longer remembers may still be live somewhere; no mutation may
  // complete until every such promise has run out.
  const SimTime floor = std::max(at, suspended_until_);
  auto it = leases_.find(fid);
  if (it == leases_.end()) return floor;

  SimTime safe = floor;
  uint32_t sent = 0;
  SimTime t = at;
  bool writer_held = false;
  SimTime writer_expiry = 0;
  for (const auto& [holder, expiry] : it->second) {
    if (holder == except) {
      writer_held = true;
      writer_expiry = expiry;
      continue;
    }
    if (expiry <= at) continue;  // already lapsed on its own
    t = sim::Charge(*server_cpu, t, cost.server_lwp_switch);
    if (!network->Reachable(server_node, holder->callback_node(), t)) {
      // Cannot be told; the write may not complete until this holder's
      // promise has run out (never later than at + term).
      network->NotePartitionDrop(server_node);
      stats_.lost += 1;
      stats_.waited_out += 1;
      safe = std::max(safe, expiry);
      continue;
    }
    network->Send(server_node, holder->callback_node(), 64, t,
                  [holder = holder, fid] { holder->OnCallbackBroken(fid); });
    sent += 1;
  }
  if (sent > 0) stats_.break_events += 1;
  stats_.broken += sent;

  leases_.erase(it);
  if (writer_held) leases_[fid][except] = writer_expiry;
  return safe;
}

bool LeaseManager::HasLease(const Fid& fid, const CallbackReceiver* who, SimTime now) const {
  auto it = leases_.find(fid);
  if (it == leases_.end()) return false;
  auto holder = it->second.find(const_cast<CallbackReceiver*>(who));
  return holder != it->second.end() && holder->second > now;
}

size_t LeaseManager::lease_count(SimTime now) const {
  size_t n = 0;
  for (const auto& [fid, holders] : leases_) {
    for (const auto& [holder, expiry] : holders) {
      if (expiry > now) n += 1;
    }
  }
  return n;
}

}  // namespace itc::vice
