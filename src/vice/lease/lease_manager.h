// Lease-based cache consistency (the third validation scheme).
//
// A lease is a callback promise with an expiry date (Gray & Cheriton
// [Gray89]): the server promises to notify the holder of writes only until
// `expiry` on the simulated clock. The bound buys back the two availability
// holes callbacks left open:
//
//   * Crash recovery. Callback state is volatile, so PR 2's restart needed
//     epoch probes and cache re-validation storms. A restarted lease server
//     simply refuses new grants for one lease term — every lease it forgot
//     has expired by then, so no re-establishment traffic is needed.
//   * Partitions. A callback break lost to a partition leaves the holder
//     trusting its cache forever. A partitioned lease holder falls back to
//     check-on-open the moment its lease runs out: staleness is bounded by
//     the term.
//
// The price is renewal traffic (holders re-extend in batches) and mutators
// that must wait out unreachable holders — but never past the earliest
// moment every outstanding lease on the file has expired.
//
// The manager is the server-side table: per-(fid, holder) expiries on the
// simulated clock, grant suspension after restart, and break-on-mutate with
// per-notification CPU/network charging, mirroring CallbackManager so the
// validation-scheme ablation compares like with like.

#ifndef SRC_VICE_LEASE_LEASE_MANAGER_H_
#define SRC_VICE_LEASE_LEASE_MANAGER_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/fid.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"
#include "src/vice/callback_manager.h"

namespace itc::vice {

struct LeaseStats {
  uint64_t granted = 0;    // new leases handed out (piggybacked or explicit)
  uint64_t renewed = 0;    // individual fids extended by RenewLeases
  uint64_t rejected = 0;   // renewal attempts on expired/unknown leases
  uint64_t broken = 0;     // break notifications delivered
  uint64_t break_events = 0;
  uint64_t lost = 0;       // break notifications a partition ate
  uint64_t waited_out = 0; // mutations that had to sit out an unreachable holder
  uint64_t refused = 0;    // grants refused during the post-restart embargo
};

class LeaseManager {
 public:
  explicit LeaseManager(SimTime term) : term_(term) {}

  SimTime term() const { return term_; }

  // Grants (or re-extends) a lease on `fid` to `who`, valid until
  // `now + term`. Returns the expiry, or 0 while grants are suspended
  // (the holder then has no lease and must keep checking on open).
  SimTime Grant(const Fid& fid, CallbackReceiver* who, SimTime now);

  // Batch renewal: extends every listed fid the holder still holds a live
  // lease on to `now + term`. Expired or never-granted fids are returned in
  // `rejected` — the holder must revalidate those through GrantLease. While
  // grants are suspended everything is rejected.
  std::vector<Fid> Renew(CallbackReceiver* who, const std::vector<Fid>& fids, SimTime now);

  // Voluntary release (cache eviction), and release of everything a holder
  // had (disconnect / cache flush).
  void Release(const Fid& fid, CallbackReceiver* who);
  void ReleaseAll(CallbackReceiver* who);

  // Break-on-mutate. Notifies every live holder except the writer, charging
  // server CPU + one small message per reachable holder; unreachable holders
  // cannot be told, so the mutation must wait until their leases lapse.
  // Returns the earliest safe completion time for the mutation: `at` when
  // every holder was told (or nobody held a lease), otherwise the latest
  // expiry among unreachable holders — by construction at most `at + term`.
  // Either way the table forgets the file, except the writer's own lease.
  SimTime Break(const Fid& fid, CallbackReceiver* except, SimTime at, NodeId server_node,
                net::Network* network, sim::Resource* server_cpu,
                const sim::CostModel& cost);

  // Crash: the table is volatile.
  void Clear() { leases_.clear(); }
  // Restart embargo: refuse all grants and renewals until `until` (restart
  // time + one term), after which every pre-crash lease is provably dead.
  void SuspendGrantsUntil(SimTime until) { suspended_until_ = until; }
  SimTime suspended_until() const { return suspended_until_; }

  // A lease is live when it has not expired at `now`.
  bool HasLease(const Fid& fid, const CallbackReceiver* who, SimTime now) const;
  // Live leases held across the table at `now` (expired rows not yet
  // garbage-collected do not count).
  size_t lease_count(SimTime now) const;

  const LeaseStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LeaseStats{}; }

 private:
  SimTime term_;
  SimTime suspended_until_ = 0;
  // fid -> holder -> expiry. std::map on the holder pointer keeps break
  // iteration deterministic enough (single allocation site order), matching
  // CallbackManager's std::set choice.
  std::unordered_map<Fid, std::map<CallbackReceiver*, SimTime>, FidHash> leases_;
  LeaseStats stats_;
};

}  // namespace itc::vice

#endif  // SRC_VICE_LEASE_LEASE_MANAGER_H_
