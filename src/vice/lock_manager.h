// Advisory single-writer/multi-reader locks (Section 3.6).
//
// "Vice provides primitives for single-writer/multi-reader locking. Such
//  locking is advisory in nature..." A lock holder is a (user, workstation)
//  pair. The prototype served locks from a dedicated lock-server process;
//  here lock state is plain shared data (the revised single-process server
//  made that possible), and the structure ablation charges the process-
//  switch cost at the RPC layer instead.

#ifndef SRC_VICE_LOCK_MANAGER_H_
#define SRC_VICE_LOCK_MANAGER_H_

#include <map>
#include <set>
#include <unordered_map>

#include "src/common/fid.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace itc::vice {

enum class LockMode : uint8_t { kShared, kExclusive };

class LockManager {
 public:
  struct Holder {
    UserId user;
    NodeId node;
    friend auto operator<=>(const Holder&, const Holder&) = default;
  };

  // kLocked on conflict. Re-acquiring a mode already held is idempotent;
  // upgrading shared->exclusive succeeds only if the caller is the sole
  // reader.
  [[nodiscard]] Status Acquire(const Fid& fid, LockMode mode, Holder who);

  // Releases whatever `who` holds on `fid`; kNotLocked if nothing held.
  [[nodiscard]] Status Release(const Fid& fid, Holder who);

  // Drops every lock held by `who` (workstation crash recovery).
  void ReleaseAllFor(Holder who);
  // Drops every lock held from workstation `node`, regardless of user —
  // invoked when the workstation disconnects or is declared dead.
  void ReleaseAllForNode(NodeId node);

  bool IsLocked(const Fid& fid) const { return locks_.contains(fid); }
  bool IsExclusive(const Fid& fid) const;
  size_t lock_count() const { return locks_.size(); }

 private:
  struct LockState {
    std::set<Holder> readers;
    std::set<Holder> writer;  // empty or singleton
  };
  std::unordered_map<Fid, LockState, FidHash> locks_;
};

}  // namespace itc::vice

#endif  // SRC_VICE_LOCK_MANAGER_H_
