// The Vice cluster server (Sections 3, 5).
//
// A ViceServer is one cluster server: an RPC endpoint, the volumes it is
// custodian for (plus read-only replicas it hosts), a callback manager, a
// lock manager, a replica of the protection database, and a snapshot of the
// location database. It implements the Vice-Virtue interface of
// src/vice/protocol.h and enforces protection on every call — workstations
// are never trusted (Section 2.3).
//
// ViceConfig selects prototype vs revised behaviour:
//   * server_side_pathnames — the prototype's full-pathname interface
//     (Venus sends ResolvePath; the server pays per-component CPU),
//   * admin_status_files — the prototype's two-Unix-files-per-Vice-file
//     representation (extra disk op on data operations),
//   * callbacks — the revised invalidate-on-modification scheme (when off,
//     Venus must validate on every open),
//   * per_file_protection_bits — the revised hybrid protection scheme.

#ifndef SRC_VICE_FILE_SERVER_H_
#define SRC_VICE_FILE_SERVER_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "src/common/ownership.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/protection/protection_service.h"
#include "src/rpc/rpc.h"
#include "src/sim/cost_model.h"
#include "src/vice/callback_manager.h"
#include "src/vice/lease/lease_manager.h"
#include "src/vice/location_db.h"
#include "src/vice/lock_manager.h"
#include "src/vice/protocol.h"
#include "src/vice/recovery/stable_store.h"
#include "src/vice/volume.h"

namespace itc::rpc {
enum class CrashPoint : uint8_t;
}  // namespace itc::rpc

namespace itc::vice {

struct ViceConfig {
  bool server_side_pathnames = false;
  bool admin_status_files = false;
  bool callbacks = true;
  bool per_file_protection_bits = true;
  // Re-dump volumes and truncate the intention log after this many committed
  // intentions (0 = never); bounds recovery time and modeled log space.
  uint32_t log_checkpoint_interval = 64;
  // Lease-based validation (src/vice/lease/): callback promises with an
  // expiry. When on, Fetch/FetchStatus/Validate piggyback a lease grant on
  // their reply instead of registering an open-ended callback, and a
  // restarted server refuses grants for one lease term instead of relying on
  // epoch probes. `callbacks` and `leases` are mutually exclusive; Campus
  // configs keep the server and Venus sides coherent.
  bool leases = false;
  // The lease term. This is the one place the duration may be spelled as a
  // literal (the no-raw-lease-term lint rule pins every other site to the
  // config). Gray & Cheriton found short terms (tens of seconds) close to
  // optimal: long enough to cover a burst of opens, short enough that
  // recovery and partition staleness stay bounded.
  SimTime lease_term = Seconds(30);
};

// Prototype configuration in one call.
inline ViceConfig PrototypeViceConfig() {
  return ViceConfig{/*server_side_pathnames=*/true, /*admin_status_files=*/true,
                    /*callbacks=*/false, /*per_file_protection_bits=*/false};
}

class ViceServer {
 public:
  ViceServer(ServerId id, NodeId node, net::Network* network, const sim::CostModel& cost,
             rpc::RpcConfig rpc_config, ViceConfig config,
             protection::ProtectionService* protection, uint64_t nonce_seed);

  ServerId id() const { return id_; }
  NodeId node() const { return node_; }
  net::Network* network() const { return network_; }
  const sim::CostModel& cost() const { return cost_; }
  rpc::ServerEndpoint& endpoint() { return endpoint_; }
  const rpc::ServerEndpoint& endpoint() const { return endpoint_; }
  const ViceConfig& config() const { return config_; }
  void set_config(ViceConfig c) { config_ = c; }
  CallbackManager& callbacks() { return callbacks_; }
  LeaseManager& leases() { return leases_; }
  LockManager& locks() { return locks_; }
  protection::Replica& protection_replica() { return protection_replica_; }

  // --- Volume management (driven by the VolumeRegistry) ---------------------
  ITC_KERNEL_QUIESCENT void InstallVolume(std::unique_ptr<Volume> volume);
  ITC_KERNEL_QUIESCENT std::unique_ptr<Volume> EjectVolume(VolumeId id);
  Volume* FindVolume(VolumeId id);
  const Volume* FindVolume(VolumeId id) const;
  ITC_KERNEL_QUIESCENT size_t volume_count() const { return volumes_.size(); }
  // Host bytes retained for file contents across live volumes, checkpoint
  // images, and log records; buffers shared between them (snapshots, clones,
  // interned tails) count once per `seen` set. Memory accounting only.
  ITC_KERNEL_QUIESCENT uint64_t RetainedContentBytes(std::unordered_set<const void*>* seen) const;

  void SetLocationSnapshot(std::shared_ptr<const LocationDb> snapshot) {
    location_ = std::move(snapshot);
  }
  const LocationDb* location() const { return location_.get(); }

  // --- Crash recovery (src/vice/recovery) -----------------------------------
  // Re-dumps one volume's durable image; admin paths that mutate a volume
  // directly (bypassing the logged RPC handlers) must call this or the
  // mutation would not survive a crash.
  ITC_KERNEL_QUIESCENT void CheckpointVolume(VolumeId id);

  // Kills the server: the endpoint goes offline and every piece of volatile
  // state — callback promises, advisory locks, connections, registered
  // sinks, the in-memory volumes themselves — is dropped. Only the
  // StableStore (checkpoint images + intention log) survives.
  ITC_KERNEL_QUIESCENT void SimulateCrash();

  // Brings a crashed server back at virtual time `at`: restores volumes from
  // their checkpoint images, replays committed intentions in LSN order,
  // discards uncommitted/aborted ones (the client never saw a reply for
  // them; §3.5 store-on-close atomicity), salvages every volume, truncates
  // the log, and bumps the restart epoch. Recovery I/O is served through the
  // server disk, so RecoveryReport::recovery_time is real queueing time and
  // early RPCs after restart queue behind it.
  ITC_KERNEL_QUIESCENT recovery::RecoveryReport Restart(SimTime at);

  ITC_KERNEL_QUIESCENT bool crashed() const { return crashed_; }
  ITC_KERNEL_QUIESCENT uint32_t restart_epoch() const { return restart_epoch_; }
  recovery::StableStore& stable_store() { return store_; }
  const recovery::StableStore& stable_store() const { return store_; }

  // --- Callback delivery ------------------------------------------------------
  // Venus instances register out-of-band so the server can notify the right
  // in-process object for a given workstation node (the simulated wire
  // carries only the node id).
  ITC_KERNEL_QUIESCENT void RegisterCallbackSink(NodeId node, CallbackReceiver* sink);
  ITC_KERNEL_QUIESCENT void UnregisterCallbackSink(NodeId node);

  // --- Statistics ---------------------------------------------------------------
  // Derived from the endpoint's CallStats (recorded by the RPC tracing
  // interceptor; src/rpc/call_stats.h).
  ITC_KERNEL_QUIESCENT std::map<CallClass, uint64_t> CallHistogram() const;
  ITC_KERNEL_QUIESCENT uint64_t total_calls() const;
  ITC_KERNEL_QUIESCENT void ResetStats();

  // Long-term access pattern accounting (Section 3.6: "monitoring tools ...
  // to recognize long-term changes in user access patterns and help
  // reassign users to cluster servers"): per volume, how many data/status
  // accesses arrived from each cluster.
  using VolumeAccessMap = std::map<VolumeId, std::map<ClusterId, uint64_t>>;
  ITC_KERNEL_QUIESCENT const VolumeAccessMap& volume_accesses() const { return volume_accesses_; }

 private:
  // Binds every Proc's handler into registry_ against ViceOpSchema(). Each
  // binding runs the shared prologue (volume clock stamp + the prototype's
  // server-side pathname charge) before the handler body.
  ITC_KERNEL_ENTRY void BindOps();
  // Returns the effective rights `user` holds on the directory governing
  // `fid` in `vol`. Administrators hold all rights.
  protection::Rights EffectiveRights(const Volume& vol, const Fid& fid, UserId user) const;

  // Protection gate: kPermissionDenied unless the user holds `needed` on the
  // governing directory. Also applies per-file bits when configured.
  [[nodiscard]] Status CheckAccess(const Volume& vol, const Fid& fid, UserId user,
                     protection::Rights needed) const;
  [[nodiscard]] Status CheckFileBits(const Volume& vol, const Fid& fid, bool write) const;

  [[nodiscard]] Result<Volume*> VolumeFor(const Fid& fid, rpc::CallContext& ctx, rpc::Writer& reply);

  // Invalidation fan-out before a mutation commits: callback breaks in
  // callback mode; in lease mode, lease breaks whose unreachable-holder
  // wait (if any) is imposed on the call's completion time.
  void BreakCallbacks(const Fid& fid, rpc::CallContext& ctx);
  void MaybeRegisterCallback(const Fid& fid, rpc::CallContext& ctx);
  // Lease-mode reply tail: grants (or refuses) a lease to the caller and
  // appends the expiry to `w`, so Fetch/FetchStatus/Validate/GrantLease
  // replies all carry the grant without an extra RPC.
  void AppendLeaseGrant(const Fid& fid, rpc::CallContext& ctx, rpc::Writer& w);
  void ChargeAdminFile(rpc::CallContext& ctx);
  void NoteVolumeAccess(VolumeId volume, NodeId client);

  // --- Intention-log plumbing used by the mutating handlers -----------------
  // Polls the fault injector for an armed crash at `point`. On a hit the
  // server crashes (SimulateCrash) and this returns true; the handler must
  // return Status::kUnavailable immediately without touching any server
  // state — its `vol` pointer and parsed fids are dead.
  bool CrashPointHit(rpc::CrashPoint point);
  // Appends an intention (state kLogged), charging the log write to ctx.
  uint64_t LogIntention(rpc::CallContext& ctx, recovery::IntentKind kind, VolumeId volume,
                        Bytes payload);
  // Store overload: the record carries `contents` by reference (shared with
  // the vnode), but the disk charge is the logical record size — identical
  // to what the byte-copying encoding measured.
  uint64_t LogIntention(rpc::CallContext& ctx, VolumeId volume, const Fid& fid,
                        content::Ref contents);
  // Marks `lsn` committed (fsync charge) and checkpoints every volume once
  // log_checkpoint_interval committed intentions have accumulated.
  void CommitIntention(rpc::CallContext& ctx, uint64_t lsn);
  void AbortIntention(uint64_t lsn);

  // Handlers. Read-only handlers return the reply bytes directly; mutating
  // handlers return Result<Bytes> so an armed crash point can abort the call
  // at the transport level (the reply is never built, as if the machine
  // died mid-operation).
  Bytes HandleGetVolumeInfo(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleGetRootVolume(rpc::CallContext& ctx);
  Bytes HandleFetch(rpc::CallContext& ctx, rpc::Reader& r, bool with_data);
  Bytes HandleValidate(rpc::CallContext& ctx, rpc::Reader& r);
  [[nodiscard]] Result<Bytes> HandleStore(rpc::CallContext& ctx, rpc::Reader& r);
  [[nodiscard]] Result<Bytes> HandleSetStatus(rpc::CallContext& ctx, rpc::Reader& r);
  [[nodiscard]] Result<Bytes> HandleCreate(rpc::CallContext& ctx, rpc::Reader& r, Proc proc);
  [[nodiscard]] Result<Bytes> HandleRemove(rpc::CallContext& ctx, rpc::Reader& r, bool dir);
  [[nodiscard]] Result<Bytes> HandleRename(rpc::CallContext& ctx, rpc::Reader& r);
  [[nodiscard]] Result<Bytes> HandleMakeMountPoint(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleResolvePath(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleGetAcl(rpc::CallContext& ctx, rpc::Reader& r);
  [[nodiscard]] Result<Bytes> HandleSetAcl(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleLock(rpc::CallContext& ctx, rpc::Reader& r, bool acquire);
  Bytes HandleRemoveCallback(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleGrantLease(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleRenewLeases(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleReleaseLease(rpc::CallContext& ctx, rpc::Reader& r);
  Bytes HandleGetVolumeStatus(rpc::CallContext& ctx, rpc::Reader& r);

  ServerId id_;
  NodeId node_;
  net::Network* network_;
  sim::CostModel cost_;
  ViceConfig config_;
  rpc::OpRegistry registry_;
  rpc::ServerEndpoint endpoint_;
  protection::Replica protection_replica_;
  ITC_OWNED_BY_SHARD std::map<VolumeId, std::unique_ptr<Volume>> volumes_;
  std::shared_ptr<const LocationDb> location_;
  CallbackManager callbacks_;
  LeaseManager leases_;
  LockManager locks_;
  ITC_OWNED_BY_SHARD std::unordered_map<NodeId, CallbackReceiver*> callback_sinks_;
  ITC_OWNED_BY_SHARD VolumeAccessMap volume_accesses_;
  ITC_OWNED_BY_SHARD SimTime now_ = 0;  // arrival time of the call being dispatched
  // Durable state: survives SimulateCrash; everything above does not.
  recovery::StableStore store_;
  ITC_OWNED_BY_SHARD uint32_t restart_epoch_ = 0;
  ITC_OWNED_BY_SHARD bool crashed_ = false;
  ITC_OWNED_BY_SHARD uint32_t committed_since_checkpoint_ = 0;
  // Volumes with a logged intention since their last image dump. Periodic
  // checkpoints re-dump only these: a volume that logged no intention has
  // not mutated (the intention-before-mutate lint rule enforces this), so
  // its stored image is byte-identical to what a fresh Dump would produce.
  // The simulated checkpoint disk charge still covers all images.
  ITC_OWNED_BY_SHARD std::set<VolumeId> dirty_volumes_;
  // CPS memoization keyed by protection-database version: CheckAccess runs
  // on every call, and the recursive group closure need not be recomputed
  // until the replicated database actually changes.
  mutable std::map<UserId, std::pair<uint64_t, std::vector<protection::Principal>>>
      cps_cache_;
};

}  // namespace itc::vice

#endif  // SRC_VICE_FILE_SERVER_H_
