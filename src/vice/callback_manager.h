// Callback-based cache invalidation (the revised validation scheme).
//
// "Experience with a prototype has convinced us that the cost of frequent
//  cache validation is high enough to warrant the additional complexity of
//  an invalidate-on-modification approach in our next implementation."
//  (Section 3.2)
//
// The server remembers, per fid, which Venus instances hold cached copies
// (a "callback promise"). When the file is modified the server notifies
// every holder except the writer; holders discard or mark the cache entry.
// The cost of each break — one server CPU dispatch and one network message —
// is charged against the simulated resources, so the validation-scheme
// ablation (bench_validation_schemes) measures real traffic.

#ifndef SRC_VICE_CALLBACK_MANAGER_H_
#define SRC_VICE_CALLBACK_MANAGER_H_

#include <set>
#include <unordered_map>

#include "src/common/fid.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"

namespace itc::vice {

// Implemented by Venus: receives invalidations. The receiver's node id
// determines network cost of the notification.
class CallbackReceiver {
 public:
  virtual ~CallbackReceiver() = default;
  virtual void OnCallbackBroken(const Fid& fid) = 0;
  virtual NodeId callback_node() const = 0;
};

struct CallbackStats {
  uint64_t registered = 0;
  uint64_t broken = 0;          // individual notifications sent
  uint64_t break_events = 0;    // mutations that triggered notifications
  uint64_t lost = 0;            // notifications a link partition ate
};

class CallbackManager {
 public:
  void Register(const Fid& fid, CallbackReceiver* who);
  void Unregister(const Fid& fid, CallbackReceiver* who);
  // Drops every promise held by `who` (workstation disconnect / cache flush).
  void UnregisterAll(CallbackReceiver* who);

  // Drops every promise without notifying anyone — the server crashed and
  // its callback state is volatile (Section 3.2). Stats survive; they count
  // lifetime activity, not live promises.
  void DropAllPromises() { promises_.clear(); }

  // Breaks all promises on `fid` except the writer's own, delivering
  // notifications and charging server CPU + network per notification.
  // Returns the number of notifications sent.
  uint32_t Break(const Fid& fid, CallbackReceiver* except, SimTime at, NodeId server_node,
                 net::Network* network, sim::Resource* server_cpu,
                 const sim::CostModel& cost);

  // Breaks every promise on fids belonging to `volume` (used when a volume
  // goes offline or moves between servers). Returns notifications sent.
  uint32_t BreakVolume(VolumeId volume, SimTime at, NodeId server_node,
                       net::Network* network, sim::Resource* server_cpu,
                       const sim::CostModel& cost);

  bool HasPromise(const Fid& fid, const CallbackReceiver* who) const;
  size_t promise_count() const;
  const CallbackStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CallbackStats{}; }

 private:
  std::unordered_map<Fid, std::set<CallbackReceiver*>, FidHash> promises_;
  CallbackStats stats_;
};

}  // namespace itc::vice

#endif  // SRC_VICE_CALLBACK_MANAGER_H_
