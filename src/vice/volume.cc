#include "src/vice/volume.h"

#include <algorithm>
#include <set>

#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/rpc/wire.h"
#include "src/vice/protocol.h"

namespace itc::vice {

Volume::Volume(VolumeId id, std::string name, VolumeType type, UserId owner,
               protection::AccessList root_acl, uint64_t quota_bytes)
    : id_(id), name_(std::move(name)), type_(type), quota_bytes_(quota_bytes) {
  Vnode root;
  root.status.fid = VolumeRootFid(id_);
  root.status.type = VnodeType::kDirectory;
  root.status.mode = 0755;
  root.status.owner = owner;
  root.status.version = 1;
  root.acl = std::move(root_acl);
  vnodes_.emplace(1u, std::move(root));
  usage_bytes_ = kPerVnodeOverhead;
}

Result<const Volume::Vnode*> Volume::Lookup(const Fid& fid) const {
  if (!online_) return Status::kVolumeOffline;
  if (fid.volume != id_) return Status::kInvalidArgument;
  auto it = vnodes_.find(fid.vnode);
  if (it == vnodes_.end() || it->second.status.fid.uniquifier != fid.uniquifier) {
    return Status::kStaleFid;
  }
  return &it->second;
}

Result<Volume::Vnode*> Volume::LookupMutable(const Fid& fid) {
  ASSIGN_OR_RETURN(const Vnode* v, Lookup(fid));
  return const_cast<Vnode*>(v);
}

Result<Volume::Vnode*> Volume::LookupDirMutable(const Fid& fid) {
  ASSIGN_OR_RETURN(Vnode * v, LookupMutable(fid));
  if (v->status.type != VnodeType::kDirectory) return Status::kNotDirectory;
  return v;
}

Fid Volume::NewFid() { return Fid{id_, next_vnode_++, next_uniquifier_++}; }

uint64_t Volume::DirDataSize(const DirMap& entries) {
  uint64_t size = 4;
  for (const auto& [name, item] : entries) size += 4 + name.size() + 1 + 12 + 4;
  return size;
}

void Volume::TouchDir(Vnode& dir) {
  dir.status.version += 1;
  dir.status.mtime = now_;
  dir.status.length = DirDataSize(dir.entries);
}

Status Volume::ChargeQuota(int64_t delta) {
  const int64_t next = static_cast<int64_t>(usage_bytes_) + delta;
  ITC_CHECK(next >= 0);
  if (quota_bytes_ > 0 && delta > 0 && static_cast<uint64_t>(next) > quota_bytes_) {
    return Status::kQuotaExceeded;
  }
  usage_bytes_ = static_cast<uint64_t>(next);
  return Status::kOk;
}

Result<Fid> Volume::CreateFile(const Fid& dir, const std::string& name, UserId owner,
                               uint16_t mode) {
  if (read_only()) return Status::kVolumeReadOnly;
  if (!IsValidName(name)) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(Vnode * d, LookupDirMutable(dir));
  if (d->entries.contains(name)) return Status::kAlreadyExists;
  RETURN_IF_ERROR(ChargeQuota(kPerVnodeOverhead));

  const Fid fid = NewFid();
  Vnode v;
  v.status.fid = fid;
  v.status.type = VnodeType::kFile;
  v.status.owner = owner;
  v.status.mode = mode;
  v.status.version = 1;
  v.status.mtime = now_;
  v.status.parent = dir;
  vnodes_.emplace(fid.vnode, std::move(v));
  d->entries.emplace(name, DirItem{DirItem::Kind::kFile, fid, kInvalidVolume});
  TouchDir(*d);
  return fid;
}

Result<Fid> Volume::MakeDir(const Fid& dir, const std::string& name, UserId owner,
                            const protection::AccessList& acl) {
  if (read_only()) return Status::kVolumeReadOnly;
  if (!IsValidName(name)) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(Vnode * d, LookupDirMutable(dir));
  if (d->entries.contains(name)) return Status::kAlreadyExists;
  RETURN_IF_ERROR(ChargeQuota(kPerVnodeOverhead));

  const Fid fid = NewFid();
  Vnode v;
  v.status.fid = fid;
  v.status.type = VnodeType::kDirectory;
  v.status.owner = owner;
  v.status.mode = 0755;
  v.status.version = 1;
  v.status.mtime = now_;
  v.status.parent = dir;
  v.acl = acl;
  vnodes_.emplace(fid.vnode, std::move(v));
  d->entries.emplace(name, DirItem{DirItem::Kind::kDirectory, fid, kInvalidVolume});
  TouchDir(*d);
  return fid;
}

Result<Fid> Volume::MakeSymlink(const Fid& dir, const std::string& name,
                                const std::string& target, UserId owner) {
  if (read_only()) return Status::kVolumeReadOnly;
  if (!IsValidName(name) || target.empty()) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(Vnode * d, LookupDirMutable(dir));
  if (d->entries.contains(name)) return Status::kAlreadyExists;
  RETURN_IF_ERROR(
      ChargeQuota(static_cast<int64_t>(kPerVnodeOverhead + target.size())));

  const Fid fid = NewFid();
  Vnode v;
  v.status.fid = fid;
  v.status.type = VnodeType::kSymlink;
  v.status.owner = owner;
  v.status.mode = 0777;
  v.status.version = 1;
  v.status.mtime = now_;
  v.status.parent = dir;
  v.status.length = target.size();
  v.data = content::Ref::Inline(ToBytes(target));
  vnodes_.emplace(fid.vnode, std::move(v));
  d->entries.emplace(name, DirItem{DirItem::Kind::kSymlink, fid, kInvalidVolume});
  TouchDir(*d);
  return fid;
}

Status Volume::MakeMountPoint(const Fid& dir, const std::string& name, VolumeId target) {
  if (read_only()) return Status::kVolumeReadOnly;
  if (!IsValidName(name) || target == kInvalidVolume) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(Vnode * d, LookupDirMutable(dir));
  if (d->entries.contains(name)) return Status::kAlreadyExists;
  d->entries.emplace(name, DirItem{DirItem::Kind::kMountPoint, kNullFid, target});
  TouchDir(*d);
  return Status::kOk;
}

Status Volume::RemoveFile(const Fid& dir, const std::string& name) {
  if (read_only()) return Status::kVolumeReadOnly;
  ASSIGN_OR_RETURN(Vnode * d, LookupDirMutable(dir));
  auto it = d->entries.find(name);
  if (it == d->entries.end()) return Status::kNotFound;
  if (it->second.kind == DirItem::Kind::kDirectory) return Status::kIsDirectory;

  if (it->second.kind != DirItem::Kind::kMountPoint) {
    auto victim = vnodes_.find(it->second.fid.vnode);
    if (victim != vnodes_.end()) {
      const uint64_t data_size = victim->second.data.size();
      ITC_CHECK(ChargeQuota(-static_cast<int64_t>(kPerVnodeOverhead + data_size)) ==
                Status::kOk);
      vnodes_.erase(victim);
    }
  }
  d->entries.erase(it);
  TouchDir(*d);
  return Status::kOk;
}

Status Volume::RemoveDir(const Fid& dir, const std::string& name) {
  if (read_only()) return Status::kVolumeReadOnly;
  ASSIGN_OR_RETURN(Vnode * d, LookupDirMutable(dir));
  auto it = d->entries.find(name);
  if (it == d->entries.end()) return Status::kNotFound;
  if (it->second.kind != DirItem::Kind::kDirectory) return Status::kNotDirectory;
  auto victim = vnodes_.find(it->second.fid.vnode);
  if (victim != vnodes_.end()) {
    if (!victim->second.entries.empty()) return Status::kNotEmpty;
    ITC_CHECK(ChargeQuota(-static_cast<int64_t>(kPerVnodeOverhead)) == Status::kOk);
    vnodes_.erase(victim);
  }
  d->entries.erase(it);
  TouchDir(*d);
  return Status::kOk;
}

Status Volume::Rename(const Fid& from_dir, const std::string& from_name, const Fid& to_dir,
                      const std::string& to_name) {
  if (read_only()) return Status::kVolumeReadOnly;
  if (!IsValidName(to_name)) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(Vnode * src, LookupDirMutable(from_dir));
  auto src_it = src->entries.find(from_name);
  if (src_it == src->entries.end()) return Status::kNotFound;
  const DirItem moving = src_it->second;

  ASSIGN_OR_RETURN(Vnode * dst, LookupDirMutable(to_dir));

  // A directory must not move into its own subtree: walk up from to_dir.
  if (moving.kind == DirItem::Kind::kDirectory) {
    Fid cursor = to_dir;
    while (cursor.valid()) {
      if (cursor == moving.fid) return Status::kInvalidArgument;
      auto r = Lookup(cursor);
      if (!r.ok()) break;
      cursor = (*r)->status.parent;
    }
  }

  auto dst_it = dst->entries.find(to_name);
  if (dst_it != dst->entries.end()) {
    const DirItem& target = dst_it->second;
    if (target == moving && from_dir == to_dir && from_name == to_name) return Status::kOk;
    if (moving.kind == DirItem::Kind::kDirectory) {
      if (target.kind != DirItem::Kind::kDirectory) return Status::kNotDirectory;
      auto tv = vnodes_.find(target.fid.vnode);
      if (tv != vnodes_.end() && !tv->second.entries.empty()) return Status::kNotEmpty;
      RETURN_IF_ERROR(RemoveDir(to_dir, to_name));
    } else {
      if (target.kind == DirItem::Kind::kDirectory) return Status::kIsDirectory;
      RETURN_IF_ERROR(RemoveFile(to_dir, to_name));
    }
    // Re-find after removal invalidated iterators.
    ASSIGN_OR_RETURN(dst, LookupDirMutable(to_dir));
    ASSIGN_OR_RETURN(src, LookupDirMutable(from_dir));
    src_it = src->entries.find(from_name);
    ITC_CHECK(src_it != src->entries.end());
  }

  src->entries.erase(src_it);
  dst->entries.emplace(to_name, moving);
  if (moving.kind != DirItem::Kind::kMountPoint) {
    auto mv = vnodes_.find(moving.fid.vnode);
    if (mv != vnodes_.end()) {
      mv->second.status.parent = to_dir;
      // Fids are invariant across renames (Section 5.3): only the parent
      // pointer changes; fid, version and data are untouched.
    }
  }
  TouchDir(*src);
  if (!(from_dir == to_dir)) TouchDir(*dst);
  return Status::kOk;
}

Result<Bytes> Volume::FetchData(const Fid& fid) const {
  ASSIGN_OR_RETURN(const Vnode* v, Lookup(fid));
  if (v->status.type == VnodeType::kDirectory) return SerializeDirectory(v->entries);
  return v->data.Materialize();
}

Result<const content::Ref*> Volume::FetchRef(const Fid& fid) const {
  ASSIGN_OR_RETURN(const Vnode* v, Lookup(fid));
  if (v->status.type == VnodeType::kDirectory) return Status::kIsDirectory;
  return &v->data;
}

Status Volume::StoreData(const Fid& fid, Bytes data) {
  return StoreRef(fid, content::Ref::Canonicalize(std::move(data)));
}

Status Volume::StoreRef(const Fid& fid, content::Ref data) {
  if (read_only()) return Status::kVolumeReadOnly;
  ASSIGN_OR_RETURN(Vnode * v, LookupMutable(fid));
  if (v->status.type == VnodeType::kDirectory) return Status::kIsDirectory;
  const uint64_t old_size = v->data.size();
  RETURN_IF_ERROR(ChargeQuota(static_cast<int64_t>(data.size()) -
                              static_cast<int64_t>(old_size)));
  v->data = std::move(data);
  v->status.length = v->data.size();
  v->status.version += 1;
  v->status.mtime = now_;
  return Status::kOk;
}

Result<VnodeStatus> Volume::GetStatus(const Fid& fid) const {
  ASSIGN_OR_RETURN(const Vnode* v, Lookup(fid));
  return v->status;
}

Status Volume::SetMode(const Fid& fid, uint16_t mode) {
  if (read_only()) return Status::kVolumeReadOnly;
  ASSIGN_OR_RETURN(Vnode * v, LookupMutable(fid));
  v->status.mode = mode;
  v->status.version += 1;
  return Status::kOk;
}

Status Volume::SetOwner(const Fid& fid, UserId owner) {
  if (read_only()) return Status::kVolumeReadOnly;
  ASSIGN_OR_RETURN(Vnode * v, LookupMutable(fid));
  v->status.owner = owner;
  v->status.version += 1;
  return Status::kOk;
}

Status Volume::SetAcl(const Fid& dir, const protection::AccessList& acl) {
  if (read_only()) return Status::kVolumeReadOnly;
  ASSIGN_OR_RETURN(Vnode * v, LookupMutable(dir));
  if (v->status.type != VnodeType::kDirectory) return Status::kNotDirectory;
  v->acl = acl;
  v->status.version += 1;
  return Status::kOk;
}

Result<protection::AccessList> Volume::EffectiveAcl(const Fid& fid) const {
  ASSIGN_OR_RETURN(const Vnode* v, Lookup(fid));
  if (v->status.type == VnodeType::kDirectory) return v->acl;
  ASSIGN_OR_RETURN(const Vnode* parent, Lookup(v->status.parent));
  if (parent->status.type != VnodeType::kDirectory) return Status::kInternal;
  return parent->acl;
}

std::unique_ptr<Volume> Volume::Clone(VolumeId clone_id, const std::string& clone_name) const {
  auto clone = std::make_unique<Volume>(clone_id, clone_name, VolumeType::kReadOnly,
                                        vnodes_.at(1).status.owner,
                                        protection::AccessList{}, /*quota_bytes=*/0);
  clone->vnodes_.clear();
  auto rebrand = [clone_id](Fid f) {
    if (f.valid()) f.volume = clone_id;
    return f;
  };
  for (const auto& [num, v] : vnodes_) {
    Vnode copy = v;  // shares `data` — the copy-on-write
    copy.status.fid = rebrand(copy.status.fid);
    copy.status.parent = rebrand(copy.status.parent);
    for (auto& [name, item] : copy.entries) item.fid = rebrand(item.fid);
    clone->vnodes_.emplace(num, std::move(copy));
  }
  clone->next_vnode_ = next_vnode_;
  clone->next_uniquifier_ = next_uniquifier_;
  clone->usage_bytes_ = usage_bytes_;
  clone->now_ = now_;
  return clone;
}

std::unique_ptr<Volume> Volume::Snapshot() const {
  auto snap = std::make_unique<Volume>(id_, name_, type_, vnodes_.at(1).status.owner,
                                       protection::AccessList{}, quota_bytes_);
  snap->vnodes_ = vnodes_;  // Vnode copies share `data` — the copy-on-write
  snap->online_ = online_;
  snap->usage_bytes_ = usage_bytes_;
  snap->next_vnode_ = next_vnode_;
  snap->next_uniquifier_ = next_uniquifier_;
  snap->now_ = now_;
  return snap;
}

namespace {
constexpr uint32_t kDumpMagic = 0x56444d50;  // "VDMP"
constexpr uint32_t kDumpVersion = 1;
}  // namespace

Bytes Volume::Dump() const {
  rpc::Writer w;
  w.PutU32(kDumpMagic);
  w.PutU32(kDumpVersion);
  w.PutU32(id_);
  w.PutString(name_);
  w.PutU8(static_cast<uint8_t>(type_));
  w.PutU64(quota_bytes_);
  w.PutU32(next_vnode_);
  w.PutU32(next_uniquifier_);
  w.PutU32(static_cast<uint32_t>(vnodes_.size()));
  // Sorted for a stable, diffable dump format.
  std::vector<uint32_t> order;
  order.reserve(vnodes_.size());
  for (const auto& [num, v] : vnodes_) order.push_back(num);
  std::sort(order.begin(), order.end());
  for (uint32_t num : order) {
    const Vnode& v = vnodes_.at(num);
    const bool has_data = v.status.type != VnodeType::kDirectory;
    w.PutU32(num);
    PutVnodeStatus(w, v.status);
    w.PutBool(has_data);
    // Dump is the wire/backup format: logical bytes, materialized
    // transiently per vnode. The in-memory representation (a ref) never
    // leaks into the stream, so a dump's size — and every disk charge
    // derived from it — is independent of how contents are stored.
    if (has_data) w.PutBytes(v.data.Materialize());
    w.PutBytes(SerializeDirectory(v.entries));
    w.PutBytes(v.acl.Serialize());
  }
  return w.Take();
}

uint64_t Volume::DumpSize() const {
  // Mirrors Dump() field for field, but counts the file contents instead of
  // copying them: PutBytes(b) is a 4-byte length prefix plus b.size().
  rpc::Writer w;
  w.PutU32(kDumpMagic);
  w.PutU32(kDumpVersion);
  w.PutU32(id_);
  w.PutString(name_);
  w.PutU8(static_cast<uint8_t>(type_));
  w.PutU64(quota_bytes_);
  w.PutU32(next_vnode_);
  w.PutU32(next_uniquifier_);
  w.PutU32(static_cast<uint32_t>(vnodes_.size()));
  uint64_t data_bytes = 0;
  for (const auto& [num, v] : vnodes_) {
    w.PutU32(num);
    PutVnodeStatus(w, v.status);
    w.PutBool(v.status.type != VnodeType::kDirectory);
    if (v.status.type != VnodeType::kDirectory) data_bytes += 4 + v.data.size();
    data_bytes += 4 + SerializeDirectory(v.entries).size();
    data_bytes += 4 + v.acl.Serialize().size();
  }
  return w.size() + data_bytes;
}

Result<std::unique_ptr<Volume>> Volume::Restore(const Bytes& dump, VolumeId new_id,
                                                const std::string& new_name,
                                                VolumeType type) {
  rpc::Reader r(dump);
  ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kDumpMagic || version != kDumpVersion) return Status::kProtocolError;
  ASSIGN_OR_RETURN(VolumeId old_id, r.U32());
  RETURN_IF_ERROR(r.String().status());  // original name (informational)
  ASSIGN_OR_RETURN(uint8_t dumped_type, r.U8());
  (void)dumped_type;  // the caller chooses the restored type
  ASSIGN_OR_RETURN(uint64_t quota, r.U64());
  ASSIGN_OR_RETURN(uint32_t next_vnode, r.U32());
  ASSIGN_OR_RETURN(uint32_t next_uniq, r.U32());
  ASSIGN_OR_RETURN(uint32_t count, r.U32());

  auto vol = std::make_unique<Volume>(new_id, new_name, type, kAnonymousUser,
                                      protection::AccessList{}, quota);
  vol->vnodes_.clear();
  vol->next_vnode_ = next_vnode;
  vol->next_uniquifier_ = next_uniq;

  auto rebrand = [old_id, new_id](Fid f) {
    if (f.valid() && f.volume == old_id) f.volume = new_id;
    return f;
  };

  uint64_t usage = 0;
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint32_t num, r.U32());
    Vnode v;
    ASSIGN_OR_RETURN(v.status, ReadVnodeStatus(r));
    v.status.fid = rebrand(v.status.fid);
    v.status.parent = rebrand(v.status.parent);
    ASSIGN_OR_RETURN(bool has_data, r.Bool());
    if (has_data) {
      ASSIGN_OR_RETURN(Bytes data, r.BytesField());
      usage += data.size();
      // Restored contents canonicalize back to refs: a restore is as lazy
      // as the volume it was dumped from.
      v.data = content::Ref::Canonicalize(std::move(data));
    }
    ASSIGN_OR_RETURN(Bytes dir_bytes, r.BytesField());
    ASSIGN_OR_RETURN(v.entries, DeserializeDirectory(dir_bytes));
    for (auto& [name, item] : v.entries) item.fid = rebrand(item.fid);
    ASSIGN_OR_RETURN(Bytes acl_bytes, r.BytesField());
    ASSIGN_OR_RETURN(v.acl, protection::AccessList::Deserialize(acl_bytes));
    usage += kPerVnodeOverhead;
    vol->vnodes_.emplace(num, std::move(v));
  }
  if (!r.AtEnd()) return Status::kProtocolError;
  if (!vol->vnodes_.contains(1)) return Status::kProtocolError;  // no root
  vol->usage_bytes_ = usage;
  return vol;
}

Volume::SalvageReport Volume::Salvage() {
  SalvageReport report;

  // Pass 1: drop directory entries that point at missing/stale vnodes.
  for (auto& [num, v] : vnodes_) {
    if (v.status.type != VnodeType::kDirectory) continue;
    for (auto it = v.entries.begin(); it != v.entries.end();) {
      if (it->second.kind == DirItem::Kind::kMountPoint) {
        ++it;
        continue;
      }
      auto target = vnodes_.find(it->second.fid.vnode);
      if (target == vnodes_.end() ||
          target->second.status.fid.uniquifier != it->second.fid.uniquifier) {
        it = v.entries.erase(it);
        report.dangling_entries_removed += 1;
      } else {
        ++it;
      }
    }
  }

  // Pass 2: find vnodes unreachable from the root; remove them. Also fix
  // parent pointers to match the directory that actually references a vnode.
  std::set<uint32_t> reachable;
  std::vector<uint32_t> frontier{1};
  reachable.insert(1);
  while (!frontier.empty()) {
    const uint32_t cur = frontier.back();
    frontier.pop_back();
    Vnode& v = Node(cur);
    if (v.status.type != VnodeType::kDirectory) continue;
    for (auto& [name, item] : v.entries) {
      if (item.kind == DirItem::Kind::kMountPoint) continue;
      Vnode& child = Node(item.fid.vnode);
      if (!(child.status.parent == v.status.fid)) {
        child.status.parent = v.status.fid;
        report.parents_fixed += 1;
      }
      if (reachable.insert(item.fid.vnode).second) frontier.push_back(item.fid.vnode);
    }
  }
  for (auto it = vnodes_.begin(); it != vnodes_.end();) {
    if (!reachable.contains(it->first)) {
      it = vnodes_.erase(it);
      report.orphan_vnodes_removed += 1;
    } else {
      ++it;
    }
  }

  // Pass 3: recompute quota usage.
  uint64_t usage = 0;
  for (auto& [num, v] : vnodes_) {
    usage += kPerVnodeOverhead + v.data.size();
    if (v.status.type == VnodeType::kDirectory) v.status.length = DirDataSize(v.entries);
  }
  report.usage_corrected_bytes =
      usage > usage_bytes_ ? usage - usage_bytes_ : usage_bytes_ - usage;
  usage_bytes_ = usage;
  return report;
}

uint64_t Volume::RetainedContentBytes(std::unordered_set<const void*>* seen) const {
  uint64_t total = 0;
  for (const auto& [num, v] : vnodes_) total += v.data.RetainedBytes(seen);
  return total;
}

}  // namespace itc::vice
