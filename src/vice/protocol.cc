#include "src/vice/protocol.h"

namespace itc::vice {

std::string_view ProcName(Proc p) {
  switch (p) {
    case Proc::kTestAuth: return "TestAuth";
    case Proc::kGetTime: return "GetTime";
    case Proc::kGetVolumeInfo: return "GetVolumeInfo";
    case Proc::kGetRootVolume: return "GetRootVolume";
    case Proc::kFetch: return "Fetch";
    case Proc::kFetchStatus: return "FetchStatus";
    case Proc::kValidate: return "Validate";
    case Proc::kStore: return "Store";
    case Proc::kSetStatus: return "SetStatus";
    case Proc::kCreateFile: return "CreateFile";
    case Proc::kMakeDir: return "MakeDir";
    case Proc::kMakeSymlink: return "MakeSymlink";
    case Proc::kRemoveFile: return "RemoveFile";
    case Proc::kRemoveDir: return "RemoveDir";
    case Proc::kRename: return "Rename";
    case Proc::kMakeMountPoint: return "MakeMountPoint";
    case Proc::kResolvePath: return "ResolvePath";
    case Proc::kGetAcl: return "GetAcl";
    case Proc::kSetAcl: return "SetAcl";
    case Proc::kSetLock: return "SetLock";
    case Proc::kReleaseLock: return "ReleaseLock";
    case Proc::kRemoveCallback: return "RemoveCallback";
    case Proc::kGetVolumeStatus: return "GetVolumeStatus";
  }
  return "Unknown";
}

CallClass ClassOf(Proc p) {
  switch (p) {
    case Proc::kValidate:
      return CallClass::kValidate;
    case Proc::kFetchStatus:
    case Proc::kResolvePath:
    case Proc::kGetVolumeInfo:
      return CallClass::kStatus;
    case Proc::kFetch:
      return CallClass::kFetch;
    case Proc::kStore:
      return CallClass::kStore;
    default:
      return CallClass::kOther;
  }
}

std::string_view CallClassName(CallClass c) {
  switch (c) {
    case CallClass::kValidate: return "validate";
    case CallClass::kStatus: return "status";
    case CallClass::kFetch: return "fetch";
    case CallClass::kStore: return "store";
    case CallClass::kOther: return "other";
  }
  return "?";
}

void PutVnodeStatus(rpc::Writer& w, const VnodeStatus& s) {
  w.PutFid(s.fid);
  w.PutU8(static_cast<uint8_t>(s.type));
  w.PutU64(s.length);
  w.PutU64(s.version);
  w.PutI64(s.mtime);
  w.PutU32(s.owner);
  w.PutU32(s.mode);
  w.PutU32(s.link_count);
  w.PutFid(s.parent);
}

Result<VnodeStatus> ReadVnodeStatus(rpc::Reader& r) {
  VnodeStatus s;
  ASSIGN_OR_RETURN(s.fid, r.FidField());
  ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type > 2) return Status::kProtocolError;
  s.type = static_cast<VnodeType>(type);
  ASSIGN_OR_RETURN(s.length, r.U64());
  ASSIGN_OR_RETURN(s.version, r.U64());
  ASSIGN_OR_RETURN(s.mtime, r.I64());
  ASSIGN_OR_RETURN(s.owner, r.U32());
  ASSIGN_OR_RETURN(uint32_t mode, r.U32());
  s.mode = static_cast<uint16_t>(mode);
  ASSIGN_OR_RETURN(s.link_count, r.U32());
  ASSIGN_OR_RETURN(s.parent, r.FidField());
  return s;
}

void PutVolumeInfo(rpc::Writer& w, const VolumeInfo& info) {
  w.PutU32(info.volume);
  w.PutU32(info.read_write_volume);
  w.PutU32(info.ro_clone);
  w.PutBool(info.read_only);
  w.PutU32(info.custodian);
  w.PutU32(static_cast<uint32_t>(info.replica_sites.size()));
  for (ServerId s : info.replica_sites) w.PutU32(s);
}

Result<VolumeInfo> ReadVolumeInfo(rpc::Reader& r) {
  VolumeInfo info;
  ASSIGN_OR_RETURN(info.volume, r.U32());
  ASSIGN_OR_RETURN(info.read_write_volume, r.U32());
  ASSIGN_OR_RETURN(info.ro_clone, r.U32());
  ASSIGN_OR_RETURN(info.read_only, r.Bool());
  ASSIGN_OR_RETURN(info.custodian, r.U32());
  ASSIGN_OR_RETURN(uint32_t n, r.U32());
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(ServerId s, r.U32());
    info.replica_sites.push_back(s);
  }
  return info;
}

Bytes StatusReply(Status s) { return rpc::StatusOnlyReply(s); }

}  // namespace itc::vice
