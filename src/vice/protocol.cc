#include "src/vice/protocol.h"

namespace itc::vice {

namespace {

constexpr uint32_t Op(Proc p) { return static_cast<uint32_t>(p); }

}  // namespace

const rpc::OpSchema& ViceOpSchema() {
  constexpr CallClass kV = CallClass::kValidate;
  constexpr CallClass kS = CallClass::kStatus;
  constexpr CallClass kF = CallClass::kFetch;
  constexpr CallClass kW = CallClass::kStore;
  constexpr CallClass kO = CallClass::kOther;
  static const rpc::OpSchema schema(
      "vice",
      {
          {Op(Proc::kTestAuth), "TestAuth", kO, /*idempotent=*/true, 0, "—", "—"},
          {Op(Proc::kGetTime), "GetTime", kO, true, 0, "—", "`i64 server_time`"},
          {Op(Proc::kGetVolumeInfo), "GetVolumeInfo", kS, true, 0, "`u32 volume`",
           "`VolumeInfo`"},
          {Op(Proc::kGetRootVolume), "GetRootVolume", kO, true, 0, "—",
           "`u32 volume`"},
          {Op(Proc::kProbeEpoch), "ProbeEpoch", kO, true, 0, "—",
           "`u32 restart_epoch`"},
          {Op(Proc::kFetch), "Fetch", kF, true, kOpChargesPathname, "`fid`",
           "`VnodeStatus, bytes data` (+ `u64 lease_expiry` in lease mode)"},
          {Op(Proc::kFetchStatus), "FetchStatus", kS, true, kOpChargesPathname,
           "`fid`", "`VnodeStatus` (+ `u64 lease_expiry` in lease mode)"},
          {Op(Proc::kValidate), "Validate", kV, true, kOpChargesPathname,
           "`fid, u64 version`",
           "`bool valid, VnodeStatus` (+ `u64 lease_expiry` in lease mode)"},
          {Op(Proc::kStore), "Store", kW, false, kOpChargesPathname,
           "`fid, bytes data`", "`VnodeStatus`"},
          {Op(Proc::kSetStatus), "SetStatus", kO, false, kOpChargesPathname,
           "`fid, bool has_mode, u32 mode, bool has_owner, u32 owner`",
           "`VnodeStatus`"},
          {Op(Proc::kCreateFile), "CreateFile", kO, false, 0,
           "`fid dir, string name, u32 mode`", "`fid, VnodeStatus`"},
          {Op(Proc::kMakeDir), "MakeDir", kO, false, 0,
           "`fid dir, string name, bytes acl` (empty acl = inherit)",
           "`fid, VnodeStatus`"},
          {Op(Proc::kMakeSymlink), "MakeSymlink", kO, false, 0,
           "`fid dir, string name, string target`", "`fid, VnodeStatus`"},
          {Op(Proc::kRemoveFile), "RemoveFile", kO, false, 0,
           "`fid dir, string name`", "—"},
          {Op(Proc::kRemoveDir), "RemoveDir", kO, false, 0,
           "`fid dir, string name`", "—"},
          {Op(Proc::kRename), "Rename", kO, false, 0,
           "`fid from_dir, string, fid to_dir, string`", "—"},
          {Op(Proc::kMakeMountPoint), "MakeMountPoint", kO, false, 0,
           "`fid dir, string name, u32 volume`", "—"},
          {Op(Proc::kResolvePath), "ResolvePath", kS, true, 0,
           "`u32 start_volume (0=root), string path`",
           "`fid, VnodeStatus`; on `NOT_CUSTODIAN`: `u32 custodian, u32 volume, "
           "string remaining`"},
          {Op(Proc::kGetAcl), "GetAcl", kO, true, 0, "`fid`", "`bytes acl`"},
          {Op(Proc::kSetAcl), "SetAcl", kO, false, 0, "`fid, bytes acl`", "—"},
          {Op(Proc::kSetLock), "SetLock", kO, false, 0,
           "`fid, u8 mode (0 shared, 1 exclusive)`", "— (`LOCKED` on conflict)"},
          {Op(Proc::kReleaseLock), "ReleaseLock", kO, false, 0, "`fid`",
           "— (`NOT_LOCKED` if not held)"},
          {Op(Proc::kRemoveCallback), "RemoveCallback", kO, true, 0, "`fid`", "—"},
          {Op(Proc::kGrantLease), "GrantLease", kV, true, kOpChargesPathname,
           "`fid, u64 version`",
           "`bool valid, VnodeStatus, u64 lease_expiry` (0 = grant refused)"},
          {Op(Proc::kRenewLeases), "RenewLeases", kV, true, 0, "`u32 n, fid...`",
           "`u64 new_expiry, u32 n_rejected, fid...` (rejected must revalidate)"},
          {Op(Proc::kReleaseLease), "ReleaseLease", kO, true, 0, "`fid`", "—"},
          {Op(Proc::kGetVolumeStatus), "GetVolumeStatus", kO, true, 0,
           "`u32 volume`", "`u64 quota, u64 usage, bool ro, bool online, u64 vnodes`"},
      });
  return schema;
}

std::string_view ProcName(Proc p) {
  const rpc::OpSpec* op = ViceOpSchema().Find(static_cast<uint32_t>(p));
  return op != nullptr ? op->name : "Unknown";
}

CallClass ClassOf(Proc p) {
  const rpc::OpSpec* op = ViceOpSchema().Find(static_cast<uint32_t>(p));
  return op != nullptr ? op->call_class : CallClass::kOther;
}

void PutVnodeStatus(rpc::Writer& w, const VnodeStatus& s) {
  w.PutFid(s.fid);
  w.PutU8(static_cast<uint8_t>(s.type));
  w.PutU64(s.length);
  w.PutU64(s.version);
  w.PutI64(s.mtime);
  w.PutU32(s.owner);
  w.PutU32(s.mode);
  w.PutU32(s.link_count);
  w.PutFid(s.parent);
}

Result<VnodeStatus> ReadVnodeStatus(rpc::Reader& r) {
  VnodeStatus s;
  ASSIGN_OR_RETURN(s.fid, r.FidField());
  ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type > 2) return Status::kProtocolError;
  s.type = static_cast<VnodeType>(type);
  ASSIGN_OR_RETURN(s.length, r.U64());
  ASSIGN_OR_RETURN(s.version, r.U64());
  ASSIGN_OR_RETURN(s.mtime, r.I64());
  ASSIGN_OR_RETURN(s.owner, r.U32());
  ASSIGN_OR_RETURN(uint32_t mode, r.U32());
  s.mode = static_cast<uint16_t>(mode);
  ASSIGN_OR_RETURN(s.link_count, r.U32());
  ASSIGN_OR_RETURN(s.parent, r.FidField());
  return s;
}

void PutVolumeInfo(rpc::Writer& w, const VolumeInfo& info) {
  w.PutU32(info.volume);
  w.PutU32(info.read_write_volume);
  w.PutU32(info.ro_clone);
  w.PutBool(info.read_only);
  w.PutU32(info.custodian);
  w.PutU32(static_cast<uint32_t>(info.replica_sites.size()));
  for (ServerId s : info.replica_sites) w.PutU32(s);
}

Result<VolumeInfo> ReadVolumeInfo(rpc::Reader& r) {
  VolumeInfo info;
  ASSIGN_OR_RETURN(info.volume, r.U32());
  ASSIGN_OR_RETURN(info.read_write_volume, r.U32());
  ASSIGN_OR_RETURN(info.ro_clone, r.U32());
  ASSIGN_OR_RETURN(info.read_only, r.Bool());
  ASSIGN_OR_RETURN(info.custodian, r.U32());
  ASSIGN_OR_RETURN(uint32_t n, r.U32());
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(ServerId s, r.U32());
    info.replica_sites.push_back(s);
  }
  return info;
}

Bytes StatusReply(Status s) { return rpc::StatusOnlyReply(s); }

}  // namespace itc::vice
