// The replicated location database (Section 3.1).
//
// "Each cluster server contains a complete copy of a location database that
//  maps files to Custodians... The size of the replicated location database
//  is relatively small because custodianship is on a subtree basis."
//
// The subtree unit is the volume. The master copy lives in the
// VolumeRegistry; every server holds an immutable snapshot, swapped
// wholesale on the (rare, human-initiated) occasions the database changes —
// the paper's "avoid frequent, system-wide rapid change" principle.

#ifndef SRC_VICE_LOCATION_DB_H_
#define SRC_VICE_LOCATION_DB_H_

#include <map>
#include <optional>

#include "src/common/types.h"
#include "src/vice/protocol.h"

namespace itc::vice {

struct LocationDb {
  std::map<VolumeId, VolumeInfo> volumes;
  VolumeId root_volume = kInvalidVolume;
  uint64_t version = 0;

  std::optional<VolumeInfo> Find(VolumeId v) const {
    auto it = volumes.find(v);
    if (it == volumes.end()) return std::nullopt;
    return it->second;
  }
};

}  // namespace itc::vice

#endif  // SRC_VICE_LOCATION_DB_H_
