// 128-bit symmetric keys and password-based key derivation.
//
// The paper assumes each user shares a secret key with Vice, derived by
// "transformation of a password" (Section 3.4); the password itself never
// crosses the network. DeriveKeyFromPassword reproduces that transformation
// (an iterated cipher over the password, in the spirit of afs_string_to_key).

#ifndef SRC_CRYPTO_KEY_H_
#define SRC_CRYPTO_KEY_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace itc::crypto {

struct Key {
  std::array<uint8_t, 16> bytes{};

  friend bool operator==(const Key&, const Key&) = default;

  // Hex rendering for diagnostics (never logged by library code).
  std::string ToHex() const;
};

// Deterministically derives a 128-bit key from a user password and a salt
// (conventionally the cell/realm name). Same (password, salt) -> same key.
Key DeriveKeyFromPassword(std::string_view password, std::string_view salt);

// Derives a fresh key from an existing key and a 64-bit nonce; used to mint
// per-session keys during the authentication handshake.
Key DeriveSubKey(const Key& base, uint64_t nonce);

}  // namespace itc::crypto

#endif  // SRC_CRYPTO_KEY_H_
