#include "src/crypto/handshake.h"

#include <cstring>

#include "src/crypto/cbc.h"

namespace itc::crypto {

namespace {

// IV seeds namespace the four message types so replaying one message as
// another cannot succeed.
constexpr uint64_t kIvHello = 0x1001;
constexpr uint64_t kIvChallenge = 0x1002;
constexpr uint64_t kIvResponse = 0x1003;
constexpr uint64_t kIvGrant = 0x1004;

// Message-type tags sealed INSIDE each payload, so one handshake message can
// never be accepted in another's role (e.g. a reflected M3 passed off as M4)
// even though the envelope itself does not authenticate the IV seed.
constexpr uint64_t kTagHello = 0xa1;
constexpr uint64_t kTagChallenge = 0xa2;
constexpr uint64_t kTagResponse = 0xa3;
constexpr uint64_t kTagGrant = 0xa4;

Bytes EncodeU64s(std::initializer_list<uint64_t> values) {
  Bytes out;
  out.reserve(values.size() * 8);
  for (uint64_t v : values) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  return out;
}

Result<std::vector<uint64_t>> DecodeU64s(const Bytes& b, size_t count) {
  if (b.size() != count * 8) return Status::kProtocolError;
  std::vector<uint64_t> out(count, 0);
  for (size_t k = 0; k < count; ++k) {
    for (int i = 0; i < 8; ++i) {
      out[k] |= static_cast<uint64_t>(b[k * 8 + i]) << (8 * i);
    }
  }
  return out;
}

// Nonces are mixed from the seed so consecutive handshakes differ.
uint64_t MixNonce(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + salt * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ClientHandshake::ClientHandshake(UserId user, Key user_key, uint64_t nonce_seed)
    : user_(user), user_key_(user_key), client_nonce_(MixNonce(nonce_seed, 1)) {}

Bytes ClientHandshake::Start() {
  state_ = State::kSentHello;
  // M1 = user id (clear, so the server can find the key) || sealed Xr.
  Bytes sealed = Seal(user_key_, EncodeU64s({kTagHello, client_nonce_}), kIvHello);
  Bytes m1;
  for (int i = 0; i < 4; ++i) m1.push_back(static_cast<uint8_t>(user_ >> (8 * i)));
  m1.insert(m1.end(), sealed.begin(), sealed.end());
  return m1;
}

Result<Bytes> ClientHandshake::HandleChallenge(const Bytes& m2) {
  if (state_ != State::kSentHello) return Status::kProtocolError;
  auto opened = Open(user_key_, m2);
  if (!opened.ok()) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  auto words = DecodeU64s(*opened, 3);
  if (!words.ok() || (*words)[0] != kTagChallenge || (*words)[1] != client_nonce_ + 1) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  server_nonce_ = (*words)[2];
  state_ = State::kSentResponse;
  return Seal(user_key_, EncodeU64s({kTagResponse, server_nonce_ + 1}), kIvResponse);
}

Result<SessionSecret> ClientHandshake::HandleSessionGrant(const Bytes& m4) {
  if (state_ != State::kSentResponse) return Status::kProtocolError;
  auto opened = Open(user_key_, m4);
  if (!opened.ok()) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  auto words = DecodeU64s(*opened, 2);
  if (!words.ok() || (*words)[0] != kTagGrant) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  state_ = State::kDone;
  const uint64_t session_nonce = (*words)[1];
  return SessionSecret{DeriveSubKey(user_key_, session_nonce), session_nonce};
}

ServerHandshake::ServerHandshake(KeyLookup key_lookup, uint64_t nonce_seed)
    : key_lookup_(std::move(key_lookup)), nonce_seed_(nonce_seed) {}

Result<Bytes> ServerHandshake::HandleHello(const Bytes& m1) {
  if (state_ != State::kInit) return Status::kProtocolError;
  if (m1.size() < 4) return Status::kProtocolError;
  UserId claimed = 0;
  for (int i = 0; i < 4; ++i) claimed |= static_cast<UserId>(m1[i]) << (8 * i);
  auto key = key_lookup_(claimed);
  if (!key.has_value()) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  user_ = claimed;
  user_key_ = *key;

  Bytes sealed(m1.begin() + 4, m1.end());
  auto opened = Open(user_key_, sealed);
  if (!opened.ok()) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  auto words = DecodeU64s(*opened, 2);
  if (!words.ok() || (*words)[0] != kTagHello) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  client_nonce_ = (*words)[1];
  server_nonce_ = MixNonce(nonce_seed_, client_nonce_);
  state_ = State::kSentChallenge;
  return Seal(user_key_,
              EncodeU64s({kTagChallenge, client_nonce_ + 1, server_nonce_}), kIvChallenge);
}

Result<Bytes> ServerHandshake::HandleResponse(const Bytes& m3) {
  if (state_ != State::kSentChallenge) return Status::kProtocolError;
  auto opened = Open(user_key_, m3);
  if (!opened.ok()) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  auto words = DecodeU64s(*opened, 2);
  if (!words.ok() || (*words)[0] != kTagResponse || (*words)[1] != server_nonce_ + 1) {
    state_ = State::kFailed;
    return Status::kAuthFailed;
  }
  const uint64_t session_nonce = MixNonce(nonce_seed_ ^ client_nonce_, server_nonce_);
  secret_ = SessionSecret{DeriveSubKey(user_key_, session_nonce), session_nonce};
  state_ = State::kDone;
  return Seal(user_key_, EncodeU64s({kTagGrant, session_nonce}), kIvGrant);
}

}  // namespace itc::crypto
