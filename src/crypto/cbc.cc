#include "src/crypto/cbc.h"

#include <cstring>

#include "src/crypto/xtea.h"

namespace itc::crypto {

namespace {

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void PutU64(uint64_t v, uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Bytes Seal(const Key& key, const Bytes& plaintext, uint64_t iv_seed) {
  // Trailer: 8-byte length + 8-byte checksum; pad the whole body to a block
  // multiple before CBC.
  const size_t body_len = plaintext.size() + 16;
  const size_t padded = (body_len + kBlockSize - 1) / kBlockSize * kBlockSize;

  Bytes out(kBlockSize + padded, 0);

  // Derive the IV by encrypting the seed, so IVs are unpredictable without
  // the key but reproducible for a given (key, seed).
  uint8_t iv[kBlockSize];
  PutU64(iv_seed, iv);
  XteaEncryptBlock(key, iv);
  std::memcpy(out.data(), iv, kBlockSize);

  uint8_t* body = out.data() + kBlockSize;
  if (!plaintext.empty()) std::memcpy(body, plaintext.data(), plaintext.size());
  PutU64(plaintext.size(), body + padded - 16);
  PutU64(Fnv1a(plaintext.data(), plaintext.size()), body + padded - 8);

  uint8_t prev[kBlockSize];
  std::memcpy(prev, iv, kBlockSize);
  for (size_t off = 0; off < padded; off += kBlockSize) {
    for (int j = 0; j < kBlockSize; ++j) body[off + j] ^= prev[j];
    XteaEncryptBlock(key, body + off);
    std::memcpy(prev, body + off, kBlockSize);
  }
  return out;
}

Result<Bytes> Open(const Key& key, const Bytes& sealed) {
  if (sealed.size() < kBlockSize + 2 * kBlockSize ||
      (sealed.size() - kBlockSize) % kBlockSize != 0) {
    return Status::kInvalidArgument;
  }
  const size_t padded = sealed.size() - kBlockSize;
  Bytes body(sealed.begin() + kBlockSize, sealed.end());

  uint8_t prev[kBlockSize];
  std::memcpy(prev, sealed.data(), kBlockSize);
  for (size_t off = 0; off < padded; off += kBlockSize) {
    uint8_t cipher[kBlockSize];
    std::memcpy(cipher, body.data() + off, kBlockSize);
    XteaDecryptBlock(key, body.data() + off);
    for (int j = 0; j < kBlockSize; ++j) body[off + j] ^= prev[j];
    std::memcpy(prev, cipher, kBlockSize);
  }

  const uint64_t length = GetU64(body.data() + padded - 16);
  const uint64_t checksum = GetU64(body.data() + padded - 8);
  if (length > padded - 16) return Status::kTamperDetected;
  // Length must be consistent with the padding: body_len = length + 16 must
  // round up to exactly `padded`.
  if ((length + 16 + kBlockSize - 1) / kBlockSize * kBlockSize != padded) {
    return Status::kTamperDetected;
  }
  if (Fnv1a(body.data(), length) != checksum) return Status::kTamperDetected;

  body.resize(length);
  return body;
}

}  // namespace itc::crypto
