// Mutual authentication handshake (Section 3.4).
//
// "At connection establishment time, Vice and Virtue are viewed as mutually
//  suspicious parties sharing a common encryption key. This key is used in an
//  authentication handshake, at the end of which each party is assured of the
//  identity of the other. The final phase of the handshake generates a
//  session key which is used for encrypting all further communication."
//
// The protocol is a classic 4-message challenge/response:
//
//   M1 client -> server : user id (clear) || Seal_K( Xr )
//   M2 server -> client : Seal_K( Xr + 1 || Yr )
//   M3 client -> server : Seal_K( Yr + 1 )
//   M4 server -> client : Seal_K( session nonce )
//
// where K is the user's long-term key (derived from a password). Both sides
// then compute session_key = DeriveSubKey(K, session_nonce). A party holding
// the wrong K cannot produce the +1 responses, so each side authenticates the
// other; the long-term key encrypts only nonces, limiting its exposure.
//
// The classes here are pure state machines over byte strings; src/rpc moves
// the messages. This keeps the protocol unit-testable without a network.

#ifndef SRC_CRYPTO_HANDSHAKE_H_
#define SRC_CRYPTO_HANDSHAKE_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/crypto/key.h"

namespace itc::crypto {

// What a completed handshake yields on each side.
struct SessionSecret {
  Key session_key;
  uint64_t session_id = 0;

  friend bool operator==(const SessionSecret&, const SessionSecret&) = default;
};

// Client (Virtue) side. Drive as: Start() -> send; HandleChallenge(M2) ->
// send; HandleSessionGrant(M4) -> SessionSecret.
class ClientHandshake {
 public:
  // `nonce_seed` supplies the client's randomness deterministically (callers
  // draw it from an Rng).
  ClientHandshake(UserId user, Key user_key, uint64_t nonce_seed);

  // Produces M1.
  Bytes Start();

  // Consumes M2, produces M3. Fails with kAuthFailed if the server did not
  // prove knowledge of the user key.
  [[nodiscard]] Result<Bytes> HandleChallenge(const Bytes& m2);

  // Consumes M4, yielding the session secret.
  [[nodiscard]] Result<SessionSecret> HandleSessionGrant(const Bytes& m4);

 private:
  enum class State { kInit, kSentHello, kSentResponse, kDone, kFailed };
  UserId user_;
  Key user_key_;
  uint64_t client_nonce_;
  uint64_t server_nonce_ = 0;
  State state_ = State::kInit;
};

// Server (Vice) side. The server looks up the claimed user's long-term key
// through `key_lookup`; an unknown user fails the handshake.
class ServerHandshake {
 public:
  using KeyLookup = std::function<std::optional<Key>(UserId)>;

  ServerHandshake(KeyLookup key_lookup, uint64_t nonce_seed);

  // Consumes M1, produces M2.
  [[nodiscard]] Result<Bytes> HandleHello(const Bytes& m1);

  // Consumes M3, produces M4 and completes the handshake. After success,
  // user() and secret() are valid.
  [[nodiscard]] Result<Bytes> HandleResponse(const Bytes& m3);

  UserId user() const { return user_; }
  const SessionSecret& secret() const { return secret_; }
  bool done() const { return state_ == State::kDone; }

 private:
  enum class State { kInit, kSentChallenge, kDone, kFailed };
  KeyLookup key_lookup_;
  uint64_t nonce_seed_;
  UserId user_ = kAnonymousUser;
  Key user_key_;
  uint64_t client_nonce_ = 0;
  uint64_t server_nonce_ = 0;
  SessionSecret secret_;
  State state_ = State::kInit;
};

}  // namespace itc::crypto

#endif  // SRC_CRYPTO_HANDSHAKE_H_
