#include "src/crypto/xtea.h"

#include <cstring>

namespace itc::crypto {

namespace {

constexpr uint32_t kDelta = 0x9e3779b9u;

void LoadKey(const Key& key, uint32_t k[4]) {
  for (int i = 0; i < 4; ++i) {
    k[i] = static_cast<uint32_t>(key.bytes[4 * i]) |
           (static_cast<uint32_t>(key.bytes[4 * i + 1]) << 8) |
           (static_cast<uint32_t>(key.bytes[4 * i + 2]) << 16) |
           (static_cast<uint32_t>(key.bytes[4 * i + 3]) << 24);
  }
}

uint32_t LoadWord(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void StoreWord(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

void XteaEncryptBlock(const Key& key, uint32_t block[2]) {
  uint32_t k[4];
  LoadKey(key, k);
  uint32_t v0 = block[0], v1 = block[1], sum = 0;
  for (int i = 0; i < kXteaRounds / 2; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k[(sum >> 11) & 3]);
  }
  block[0] = v0;
  block[1] = v1;
}

void XteaDecryptBlock(const Key& key, uint32_t block[2]) {
  uint32_t k[4];
  LoadKey(key, k);
  uint32_t v0 = block[0], v1 = block[1];
  uint32_t sum = kDelta * static_cast<uint32_t>(kXteaRounds / 2);
  for (int i = 0; i < kXteaRounds / 2; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k[sum & 3]);
  }
  block[0] = v0;
  block[1] = v1;
}

void XteaEncryptBlock(const Key& key, uint8_t block[kBlockSize]) {
  uint32_t v[2] = {LoadWord(block), LoadWord(block + 4)};
  XteaEncryptBlock(key, v);
  StoreWord(v[0], block);
  StoreWord(v[1], block + 4);
}

void XteaDecryptBlock(const Key& key, uint8_t block[kBlockSize]) {
  uint32_t v[2] = {LoadWord(block), LoadWord(block + 4)};
  XteaDecryptBlock(key, v);
  StoreWord(v[0], block);
  StoreWord(v[1], block + 4);
}

}  // namespace itc::crypto
