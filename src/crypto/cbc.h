// Authenticated CBC envelope over the XTEA block cipher.
//
// Seal() produces: IV (8 bytes) || CBC( plaintext || length || checksum ),
// where the checksum is a 64-bit FNV-1a over the plaintext. Open() inverts
// the envelope and returns kTamperDetected if any bit of the ciphertext was
// altered (the checksum or length fails to verify). This gives the
// "end-to-end encryption" with integrity the Vice-Virtue connection needs;
// it is the reproduction stand-in for the encrypted-RPC channel of §3.5.3.

#ifndef SRC_CRYPTO_CBC_H_
#define SRC_CRYPTO_CBC_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/crypto/key.h"

namespace itc::crypto {

// Encrypts `plaintext` under `key`. `iv_seed` selects the initialization
// vector deterministically (callers pass a per-message sequence number so
// equal plaintexts yield different ciphertexts).
Bytes Seal(const Key& key, const Bytes& plaintext, uint64_t iv_seed);

// Decrypts and verifies a sealed message. Returns kTamperDetected on any
// integrity failure, kInvalidArgument if the buffer is structurally invalid.
[[nodiscard]] Result<Bytes> Open(const Key& key, const Bytes& sealed);

}  // namespace itc::crypto

#endif  // SRC_CRYPTO_CBC_H_
