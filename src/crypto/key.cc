#include "src/crypto/key.h"

#include <cstdio>

#include "src/crypto/xtea.h"

namespace itc::crypto {

std::string Key::ToHex() const {
  std::string out;
  out.reserve(32);
  for (uint8_t b : bytes) {
    char buf[3];
    std::snprintf(buf, sizeof(buf), "%02x", b);
    out += buf;
  }
  return out;
}

Key DeriveKeyFromPassword(std::string_view password, std::string_view salt) {
  // Absorb password+salt into the key state by repeated encrypt-and-fold:
  // start from a fixed key, repeatedly encrypt an 8-byte input block under
  // the evolving key and XOR the result back into the key halves.
  Key key;
  for (size_t i = 0; i < key.bytes.size(); ++i) {
    key.bytes[i] = static_cast<uint8_t>(0x5a + 13 * i);
  }
  std::string material(password);
  material += '\0';
  material += salt;
  // Pad to a multiple of the block size.
  while (material.size() % kBlockSize != 0) material += '\0';

  for (int round = 0; round < 8; ++round) {
    for (size_t off = 0; off < material.size(); off += kBlockSize) {
      uint8_t block[kBlockSize];
      for (int j = 0; j < kBlockSize; ++j) {
        block[j] = static_cast<uint8_t>(material[off + j]) ^
                   key.bytes[(off + j + round) % key.bytes.size()];
      }
      XteaEncryptBlock(key, block);
      for (int j = 0; j < kBlockSize; ++j) {
        key.bytes[(off / kBlockSize + round) % 2 == 0 ? j : j + 8] ^= block[j];
      }
    }
  }
  return key;
}

Key DeriveSubKey(const Key& base, uint64_t nonce) {
  Key out = base;
  uint8_t block[kBlockSize];
  for (int j = 0; j < kBlockSize; ++j) {
    block[j] = static_cast<uint8_t>(nonce >> (8 * j));
  }
  XteaEncryptBlock(base, block);
  for (int j = 0; j < kBlockSize; ++j) out.bytes[j] ^= block[j];
  XteaEncryptBlock(base, block);
  for (int j = 0; j < kBlockSize; ++j) out.bytes[j + 8] ^= block[j];
  return out;
}

}  // namespace itc::crypto
