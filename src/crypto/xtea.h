// XTEA block cipher: 64-bit blocks, 128-bit keys, 64 Feistel rounds.
//
// Stands in for the DES hardware the paper expected ("VLSI technology has
// made encryption chips available", Section 3.4). XTEA is compact, has real
// diffusion (so tamper-detection tests are meaningful), and is endian-stable
// here by explicit little-endian packing. It is NOT a modern cipher; itcfs
// uses it to exercise the security architecture, not to protect real data.

#ifndef SRC_CRYPTO_XTEA_H_
#define SRC_CRYPTO_XTEA_H_

#include <cstdint>

#include "src/crypto/key.h"

namespace itc::crypto {

inline constexpr int kXteaRounds = 64;
inline constexpr int kBlockSize = 8;  // bytes

// Encrypts one 64-bit block in place. `block` is two little-endian words.
void XteaEncryptBlock(const Key& key, uint32_t block[2]);

// Decrypts one 64-bit block in place.
void XteaDecryptBlock(const Key& key, uint32_t block[2]);

// Byte-oriented convenience wrappers over 8-byte blocks.
void XteaEncryptBlock(const Key& key, uint8_t block[kBlockSize]);
void XteaDecryptBlock(const Key& key, uint8_t block[kBlockSize]);

}  // namespace itc::crypto

#endif  // SRC_CRYPTO_XTEA_H_
