#include "src/common/path.h"

namespace itc {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) out.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string JoinPath(const std::vector<std::string>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

std::string PathConcat(std::string_view base, std::string_view rest) {
  while (!base.empty() && base.back() == '/') base.remove_suffix(1);
  while (!rest.empty() && rest.front() == '/') rest.remove_prefix(1);
  std::string out(base);
  out += '/';
  out += rest;
  return out;
}

bool PathHasPrefix(std::string_view path, std::string_view prefix) {
  while (prefix.size() > 1 && prefix.back() == '/') prefix.remove_suffix(1);
  if (prefix == "/") return !path.empty() && path.front() == '/';
  if (!path.starts_with(prefix)) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

std::string_view Basename(std::string_view path) {
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
  if (path == "/") return "";
  size_t pos = path.rfind('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

std::string_view Dirname(std::string_view path) {
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
  if (path == "/") return "/";
  size_t pos = path.rfind('/');
  if (pos == std::string_view::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

bool IsValidName(std::string_view name) {
  if (name.empty() || name.size() > kMaxNameLength) return false;
  if (name == "." || name == "..") return false;
  return name.find('/') == std::string_view::npos;
}

}  // namespace itc
