#include "src/common/logging.h"

namespace itc {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kNone: return "?";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace log_internal {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level && level != LogLevel::kNone), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace log_internal
}  // namespace itc
