#include "src/common/fid.h"

#include <ostream>
#include <sstream>

namespace itc {

std::string Fid::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Fid& fid) {
  return os << fid.volume << "." << fid.vnode << "." << fid.uniquifier;
}

}  // namespace itc
