#include "src/common/content.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/common/rng.h"

namespace itc::content {

namespace {

std::atomic<bool> g_canonicalize{true};

// Phases whose first stream byte is a given character: the candidate set a
// recognizer must verify. Built once; the alphabet repeats characters, so a
// first byte can admit several candidate phases.
const std::vector<std::vector<uint8_t>>& CandidatePhases() {
  static const std::vector<std::vector<uint8_t>>* table = [] {
    auto* t = new std::vector<std::vector<uint8_t>>(256);
    for (uint64_t p = 0; p < kPeriod; ++p) {
      (*t)[static_cast<uint8_t>(kAlphabet[p])].push_back(static_cast<uint8_t>(p));
    }
    return t;
  }();
  return *table;
}

// Length of the longest prefix of [data, data+n) matching the generative
// stream at `phase`.
uint64_t MatchLength(const uint8_t* data, uint64_t n, uint64_t phase) {
  uint64_t i = 0;
  while (i < n && data[i] == static_cast<uint8_t>(kAlphabet[(i + phase) % kPeriod])) {
    ++i;
  }
  return i;
}

}  // namespace

void SetCanonicalizationEnabled(bool enabled) {
  g_canonicalize.store(enabled, std::memory_order_relaxed);
}

bool CanonicalizationEnabled() { return g_canonicalize.load(std::memory_order_relaxed); }

uint64_t HashBytes(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

Bytes Synthesize(uint64_t phase, uint64_t offset, uint64_t n) {
  // Shifting the phase by the offset reduces "bytes [offset, offset+n)" to
  // "the first n bytes at a different phase".
  const uint64_t p = (phase + offset) % kPeriod;
  Bytes out(n);
  const uint64_t head = std::min(n, kPeriod);
  for (uint64_t i = 0; i < head; ++i) {
    out[i] = static_cast<uint8_t>(kAlphabet[(i + p) % kPeriod]);
  }
  // Extend by doubling: after the head, `filled` stays a multiple of kPeriod,
  // so copying from the front preserves the phase. (Byte-at-a-time appends
  // were a profile hotspot when benches synthesized on every store.)
  for (uint64_t filled = head; filled < n;) {
    const uint64_t len = std::min(filled, n - filled);
    std::memcpy(out.data() + filled, out.data(), len);
    filled += len;
  }
  return out;
}

Ref Ref::Generative(uint64_t phase, uint64_t size) {
  Ref r;
  r.phase_ = phase % kPeriod;
  r.gen_len_ = size;
  return r;
}

Ref Ref::ForSeed(uint64_t seed, uint64_t size) {
  // Exactly workload::SynthesizeContents's phase draw, so refs and the
  // legacy generator produce interchangeable bytes for the same seed.
  Rng rng(seed);
  return Generative(rng.Below(kPeriod), size);
}

Ref Ref::Inline(Bytes bytes) {
  Ref r;
  if (bytes.empty()) return r;
  if (CanonicalizationEnabled()) {
    r.tail_ = Store::Global().Intern(std::move(bytes));
  } else {
    r.tail_ = std::make_shared<const Bytes>(std::move(bytes));
  }
  return r;
}

Ref Ref::Canonicalize(Bytes bytes) {
  if (!CanonicalizationEnabled() || bytes.size() < kMinGenerativePrefix) {
    return Inline(std::move(bytes));
  }
  uint64_t best_phase = 0;
  uint64_t best_len = 0;
  for (uint8_t p : CandidatePhases()[bytes[0]]) {
    const uint64_t len = MatchLength(bytes.data(), bytes.size(), p);
    if (len > best_len) {
      best_len = len;
      best_phase = p;
    }
  }
  if (best_len < kMinGenerativePrefix) return Inline(std::move(bytes));
  Ref r;
  r.phase_ = best_phase;
  r.gen_len_ = best_len;
  if (best_len < bytes.size()) {
    r.tail_ = Store::Global().Intern(Bytes(bytes.begin() + static_cast<ptrdiff_t>(best_len),
                                           bytes.end()));
  }
  return r;
}

Bytes Ref::Materialize() const { return Slice(0, size()); }

Bytes Ref::Slice(uint64_t offset, uint64_t n) const {
  const uint64_t total = size();
  if (offset >= total) return Bytes{};
  n = std::min(n, total - offset);
  Bytes out;
  if (offset < gen_len_) {
    const uint64_t gen_take = std::min(n, gen_len_ - offset);
    out = Synthesize(phase_, offset, gen_take);
    if (gen_take < n) {
      out.insert(out.end(), tail_->begin(), tail_->begin() + static_cast<ptrdiff_t>(n - gen_take));
    }
    return out;
  }
  const uint64_t tail_off = offset - gen_len_;
  out.assign(tail_->begin() + static_cast<ptrdiff_t>(tail_off),
             tail_->begin() + static_cast<ptrdiff_t>(tail_off + n));
  return out;
}

bool Ref::SameContent(const Ref& other) const {
  if (size() != other.size()) return false;
  if (phase_ == other.phase_ && gen_len_ == other.gen_len_) {
    if (tail_ == other.tail_) return true;
    if (tail_ != nullptr && other.tail_ != nullptr) return *tail_ == *other.tail_;
    return tail_ == nullptr && other.tail_ == nullptr;
  }
  // Representations differ (e.g. one side canonicalized, the other inline):
  // fall back to byte comparison.
  return Materialize() == other.Materialize();
}

uint64_t Ref::RetainedBytes(std::unordered_set<const void*>* seen) const {
  if (tail_ == nullptr) return 0;
  if (seen != nullptr && !seen->insert(tail_.get()).second) return 0;
  return tail_->size();
}

Store& Store::Global() {
  static Store* store = new Store();
  return *store;
}

std::shared_ptr<const Bytes> Store::Intern(Bytes bytes) {
  const uint64_t h = HashBytes(bytes.data(), bytes.size());
  std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = buckets_[h];
  for (const auto& weak : bucket) {
    if (auto live = weak.lock(); live != nullptr && *live == bytes) return live;
  }
  auto owned = std::make_shared<const Bytes>(std::move(bytes));
  bucket.push_back(owned);
  if (++interns_since_sweep_ >= 1024) SweepLocked();
  return owned;
}

void Store::SweepLocked() {
  interns_since_sweep_ = 0;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& vec = it->second;
    std::erase_if(vec, [](const std::weak_ptr<const Bytes>& w) { return w.expired(); });
    it = vec.empty() ? buckets_.erase(it) : std::next(it);
  }
}

size_t Store::live_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [h, vec] : buckets_) {
    for (const auto& w : vec) n += w.expired() ? 0 : 1;
  }
  return n;
}

uint64_t Store::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [h, vec] : buckets_) {
    for (const auto& w : vec) {
      if (auto live = w.lock()) n += live->size();
    }
  }
  return n;
}

StringInterner& StringInterner::Global() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

std::shared_ptr<const std::string> StringInterner::Intern(std::string_view s) {
  const uint64_t h = HashBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = buckets_[h];
  for (const auto& weak : bucket) {
    if (auto live = weak.lock(); live != nullptr && *live == s) return live;
  }
  auto owned = std::make_shared<const std::string>(s);
  bucket.push_back(owned);
  if (++interns_since_sweep_ >= 1024) {
    interns_since_sweep_ = 0;
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      auto& vec = it->second;
      std::erase_if(vec, [](const std::weak_ptr<const std::string>& w) { return w.expired(); });
      it = vec.empty() ? buckets_.erase(it) : std::next(it);
    }
  }
  return owned;
}

size_t StringInterner::live_strings() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [h, vec] : buckets_) {
    for (const auto& w : vec) n += w.expired() ? 0 : 1;
  }
  return n;
}

}  // namespace itc::content
