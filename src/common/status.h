// Status codes for all itcfs library operations.
//
// Library code does not throw exceptions; every fallible operation returns a
// Status or a Result<T> (see src/common/result.h). The code space is modelled
// on the errors the Vice-Virtue interface of the ITC distributed file system
// must surface: Unix-like file system errors, protection errors, volume and
// custodian errors, and RPC/security errors.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace itc {

enum class Status : int32_t {
  kOk = 0,

  // Generic.
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kUnavailable = 5,
  kInternal = 6,
  kOutOfRange = 7,
  kNotSupported = 8,

  // File system shape.
  kNotDirectory = 20,
  kIsDirectory = 21,
  kNotEmpty = 22,
  kNameTooLong = 23,
  kTooManyLinks = 24,
  kCrossVolume = 25,   // rename/hard-link across volume boundaries
  kBadDescriptor = 26,
  kNoSpace = 27,
  kFileTooLarge = 28,
  kSymlinkLoop = 29,
  kNotSymlink = 30,
  kSymlinkEscape = 31,  // resolution left this mount via an absolute symlink;
                        // the VFS switch re-resolves (never user-visible)

  // Vice.
  kQuotaExceeded = 40,
  kVolumeOffline = 41,
  kVolumeReadOnly = 42,
  kStaleFid = 43,       // fid no longer names a live vnode (e.g. deleted)
  kNotCustodian = 44,   // ask the location database / follow the hint
  kLocked = 45,         // advisory lock conflict
  kNotLocked = 46,
  kCallbackBroken = 47,

  // Security / RPC.
  kAuthFailed = 60,
  kTamperDetected = 61,  // message failed integrity / decryption check
  kConnectionBroken = 62,
  kTimedOut = 63,
  kProtocolError = 64,
};

// Short stable name for a status code, e.g. "NOT_FOUND".
std::string_view StatusName(Status s);

inline bool IsOk(Status s) { return s == Status::kOk; }

std::ostream& operator<<(std::ostream& os, Status s);

}  // namespace itc

#endif  // SRC_COMMON_STATUS_H_
