// Result<T>: value-or-Status return type for fallible operations.
//
// Usage:
//   Result<int> r = Parse(s);
//   if (!r.ok()) return r.status();
//   Use(r.value());
//
// The ASSIGN_OR_RETURN / RETURN_IF_ERROR macros implement the common
// propagate-on-error pattern without exceptions.

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/common/status.h"

namespace itc {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from a value: `return 42;`
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}
  // Implicit from a non-OK status: `return Status::kNotFound;`
  Result(Status status) : status_(status) { ITC_CHECK(status != Status::kOk); }

  bool ok() const { return status_ == Status::kOk; }
  [[nodiscard]] Status status() const { return status_; }

  const T& value() const& {
    ITC_CHECK(ok());
    return *value_;
  }
  T& value() & {
    ITC_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    ITC_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace itc

#define ITC_CONCAT_INNER_(a, b) a##b
#define ITC_CONCAT_(a, b) ITC_CONCAT_INNER_(a, b)

// Evaluates `expr` (a Status); returns it from the enclosing function on error.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::itc::Status itc_status_ = (expr);             \
    if (itc_status_ != ::itc::Status::kOk) {        \
      return itc_status_;                           \
    }                                               \
  } while (false)

// Evaluates `expr` (a Result<T>); on error returns its status, otherwise
// assigns the value to `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, expr)                             \
  ASSIGN_OR_RETURN_IMPL_(ITC_CONCAT_(itc_result_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                           \
  if (!tmp.ok()) {                             \
    return tmp.status();                       \
  }                                            \
  lhs = std::move(tmp).value()

#endif  // SRC_COMMON_RESULT_H_
