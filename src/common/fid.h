// Fixed-length unique file identifiers for Vice files (Section 5.3).
//
// The prototype addressed Vice files by full pathname; the revised
// implementation — reproduced here — names every Vice file by a fixed-length
// Fid that is invariant across renames:
//
//   volume      which volume holds the file (location database maps this to
//               a custodian server),
//   vnode       index of the file within its volume,
//   uniquifier  generation number so a recycled vnode slot is distinguishable
//               from the file that previously used it (stale-fid detection).

#ifndef SRC_COMMON_FID_H_
#define SRC_COMMON_FID_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "src/common/types.h"

namespace itc {

struct Fid {
  VolumeId volume = kInvalidVolume;
  uint32_t vnode = 0;
  uint32_t uniquifier = 0;

  friend bool operator==(const Fid&, const Fid&) = default;
  friend auto operator<=>(const Fid&, const Fid&) = default;

  bool valid() const { return volume != kInvalidVolume; }
  std::string ToString() const;
};

// The null Fid: names nothing; Fid::valid() is false.
inline constexpr Fid kNullFid{};

std::ostream& operator<<(std::ostream& os, const Fid& fid);

struct FidHash {
  size_t operator()(const Fid& f) const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(f.volume);
    mix(f.vnode);
    mix(f.uniquifier);
    return static_cast<size_t>(h);
  }
};

}  // namespace itc

#endif  // SRC_COMMON_FID_H_
