// Lazy generative file contents and content-addressed interning.
//
// The memory wall for a big simulated campus is file bytes: every populated
// home volume, every read-only system binary, and every workstation cache
// copy used to hold its contents as a materialized std::vector. Yet almost
// all of those bytes are synthetic — produced by workload::SynthesizeContents,
// whose output is fully determined by a tiny amount of state. This module
// makes that observation a first-class storage representation:
//
//   * content::Ref — a file's contents as a generative prefix (a phase into
//     the fixed synthesis alphabet plus a length; ~32 bytes regardless of
//     file size) followed by an optional inline tail of literal bytes.
//     Materialize()/Slice() reproduce the exact bytes on demand.
//   * content::Store — a process-wide content-addressed interning table
//     (hash of bytes -> weak_ptr), so identical buffers (the same system
//     binary cached by ten thousand workstations, or stored on replicated
//     server volumes) are held once per host process.
//
// The representation is invisible to the simulation: RPC payloads, disk
// charges, quota, and dump images are all accounted at the *logical* byte
// size, and any code that needs real bytes (the wire, user reads)
// materializes transiently. Canonicalize() recognizes generative bytes by
// phase-matching the alphabet, so contents that round-trip through the wire
// (fetch -> cache -> store-back) collapse back to a ref at every at-rest
// layer. Every byte served is bit-identical to the materialized
// representation — pinned by tests/property/content_property_test.cc, which
// runs whole campus days with canonicalization forced off and compares.

#ifndef SRC_COMMON_CONTENT_H_
#define SRC_COMMON_CONTENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace itc::content {

// The synthesis alphabet. Byte i of a generative stream with phase p is
// kAlphabet[(i + p) % kPeriod]. This is exactly the pre-existing
// workload::SynthesizeContents stream (whose phase was drawn from the seed),
// so refs and the legacy byte generator are interchangeable.
inline constexpr char kAlphabet[] =
    "int main(void) { return 0; }\n/* vice */ #include <stdio.h>\n";
inline constexpr uint64_t kPeriod = sizeof(kAlphabet) - 1;

// Canonicalize() only classifies bytes as generative when at least one full
// alphabet period matches: beyond kPeriod bytes the phase is unambiguous
// (the alphabet is aperiodic), and shorter runs are not worth a split
// representation.
inline constexpr uint64_t kMinGenerativePrefix = kPeriod;

// Writes the generative stream bytes [offset, offset+n) for `phase` into a
// fresh buffer.
Bytes Synthesize(uint64_t phase, uint64_t offset, uint64_t n);

// Test hook: with canonicalization disabled, Canonicalize() keeps every
// buffer inline (the pre-diet materialized representation). Toggled only at
// test setup, never mid-simulation; simulated behaviour must be identical
// either way.
void SetCanonicalizationEnabled(bool enabled);
bool CanonicalizationEnabled();

// FNV-1a 64-bit over a byte range (the content-address hash).
uint64_t HashBytes(const uint8_t* data, size_t n);

// A file's contents: `gen_len` generative bytes at `phase`, then `tail`
// literal bytes. Either half may be empty. Immutable and cheaply copyable;
// the tail buffer is shared (and usually interned in Store::Global()).
class Ref {
 public:
  Ref() = default;  // empty contents

  // Purely generative contents of `size` bytes at `phase`.
  static Ref Generative(uint64_t phase, uint64_t size);
  // Generative contents whose phase is drawn from `seed` exactly as
  // workload::SynthesizeContents(seed, size) draws it.
  static Ref ForSeed(uint64_t seed, uint64_t size);
  // Literal contents, interned but never phase-matched.
  static Ref Inline(Bytes bytes);
  // Recognizes a generative prefix (when enabled) and interns the rest.
  // ForSeed(s, n).Materialize() canonicalizes back to ForSeed(s, n).
  static Ref Canonicalize(Bytes bytes);

  uint64_t size() const { return gen_len_ + (tail_ ? tail_->size() : 0); }
  bool empty() const { return size() == 0; }
  uint64_t gen_len() const { return gen_len_; }
  uint64_t phase() const { return phase_; }
  const std::shared_ptr<const Bytes>& tail() const { return tail_; }

  // The full contents as literal bytes (a fresh buffer).
  Bytes Materialize() const;
  // Bytes [offset, offset+n), clamped to size().
  Bytes Slice(uint64_t offset, uint64_t n) const;

  // Byte equality, without materializing when representations line up.
  bool SameContent(const Ref& other) const;

  // Host bytes retained by this ref's buffers. Shared buffers are counted
  // once across every ref probed with the same `seen` set (that is the
  // dedup-aware campus accounting used by bench_memory_per_client).
  uint64_t RetainedBytes(std::unordered_set<const void*>* seen) const;

 private:
  uint64_t phase_ = 0;
  uint64_t gen_len_ = 0;
  std::shared_ptr<const Bytes> tail_;  // null = purely generative (or empty)
};

// Process-wide content-addressed store: interns immutable byte buffers by
// content hash so identical contents share one allocation. Entries are weak;
// a buffer lives exactly as long as some Ref (or cache) holds it. Thread
// safety matters because sharded kernels canonicalize concurrently — the
// mutex is host-level only and cannot affect simulated behaviour.
class Store {
 public:
  static Store& Global();

  std::shared_ptr<const Bytes> Intern(Bytes bytes);

  // Diagnostics for tests/benches.
  size_t live_buffers() const;
  uint64_t live_bytes() const;

 private:
  void SweepLocked();

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<std::weak_ptr<const Bytes>>> buckets_;
  size_t interns_since_sweep_ = 0;
};

// Interning for small repeated strings (volume names, derived cache paths)
// kept once per process instead of once per workstation.
class StringInterner {
 public:
  static StringInterner& Global();
  std::shared_ptr<const std::string> Intern(std::string_view s);
  size_t live_strings() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<std::weak_ptr<const std::string>>> buckets_;
  size_t interns_since_sweep_ = 0;
};

}  // namespace itc::content

#endif  // SRC_COMMON_CONTENT_H_
