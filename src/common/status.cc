#include "src/common/status.h"

#include <ostream>

namespace itc {

std::string_view StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kAlreadyExists: return "ALREADY_EXISTS";
    case Status::kPermissionDenied: return "PERMISSION_DENIED";
    case Status::kUnavailable: return "UNAVAILABLE";
    case Status::kInternal: return "INTERNAL";
    case Status::kOutOfRange: return "OUT_OF_RANGE";
    case Status::kNotSupported: return "NOT_SUPPORTED";
    case Status::kNotDirectory: return "NOT_DIRECTORY";
    case Status::kIsDirectory: return "IS_DIRECTORY";
    case Status::kNotEmpty: return "NOT_EMPTY";
    case Status::kNameTooLong: return "NAME_TOO_LONG";
    case Status::kTooManyLinks: return "TOO_MANY_LINKS";
    case Status::kCrossVolume: return "CROSS_VOLUME";
    case Status::kBadDescriptor: return "BAD_DESCRIPTOR";
    case Status::kNoSpace: return "NO_SPACE";
    case Status::kFileTooLarge: return "FILE_TOO_LARGE";
    case Status::kSymlinkLoop: return "SYMLINK_LOOP";
    case Status::kNotSymlink: return "NOT_SYMLINK";
    case Status::kSymlinkEscape: return "SYMLINK_ESCAPE";
    case Status::kQuotaExceeded: return "QUOTA_EXCEEDED";
    case Status::kVolumeOffline: return "VOLUME_OFFLINE";
    case Status::kVolumeReadOnly: return "VOLUME_READ_ONLY";
    case Status::kStaleFid: return "STALE_FID";
    case Status::kNotCustodian: return "NOT_CUSTODIAN";
    case Status::kLocked: return "LOCKED";
    case Status::kNotLocked: return "NOT_LOCKED";
    case Status::kCallbackBroken: return "CALLBACK_BROKEN";
    case Status::kAuthFailed: return "AUTH_FAILED";
    case Status::kTamperDetected: return "TAMPER_DETECTED";
    case Status::kConnectionBroken: return "CONNECTION_BROKEN";
    case Status::kTimedOut: return "TIMED_OUT";
    case Status::kProtocolError: return "PROTOCOL_ERROR";
  }
  return "UNKNOWN";
}

std::ostream& operator<<(std::ostream& os, Status s) { return os << StatusName(s); }

}  // namespace itc
