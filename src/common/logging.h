// Minimal leveled logging.
//
// Library code logs sparingly; the default level is kWarning so tests and
// benches stay quiet. ITC_LOG(level) returns an ostream-like object that
// writes one line on destruction.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace itc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

// Process-wide minimum level actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace itc

#define ITC_LOG(level) \
  ::itc::log_internal::LogLine(::itc::LogLevel::level, __FILE__, __LINE__)

// Fatal invariant violation: logs and aborts. Used for programming errors
// only, never for recoverable conditions (those return Status).
#define ITC_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#endif  // SRC_COMMON_LOGGING_H_
