// Kernel-ownership annotations for itcfs-lint's kernel-ownership rule.
//
// The discrete-event kernel (src/sim/kernel.h) owns a domain of state: the
// event heap, the virtual clock, the trace ring, and — through the
// activities it schedules — the functional state those activities mutate
// (resources, network partitions, server volumes). Today one kernel runs
// everything on one thread, so any code can touch any of it and nothing
// breaks. The multi-kernel refactor (ROADMAP item 1: one kernel per
// cluster, each on its own OS thread) turns every such touch from outside
// the owning kernel's domain into a data race.
//
// These macros make the domain machine-checkable *before* the sharding.
// They expand to nothing — the compiler never sees them — but itcfs-lint's
// symbol index (tools/lint/symbols.h) picks them up and its kernel-ownership
// rule enforces the fence:
//
//   ITC_OWNED_BY_KERNEL    on a member declaration. The member belongs to
//                          the owning kernel's domain; only methods of the
//                          class reachable (via the conservative call graph)
//                          from an ENTRY or QUIESCENT function may touch it.
//
//   ITC_KERNEL_ENTRY       on a function declaration or definition. An
//                          entry point of the kernel domain: the event loop
//                          itself, or a call an activity legally makes while
//                          the kernel is running (sim::Charge, Kernel::
//                          WaitUntil, an RPC handler bound by BindOps, ...).
//
//   ITC_KERNEL_QUIESCENT   on a function declaration or definition. Legal
//                          only while the owning kernel is idle: setup
//                          (Spawn, EnableTrace), post-run accessors (trace,
//                          utilization), and orchestration between runs
//                          (Partition, RestartServer, SimulateCrash, ...).
//                          The multi-kernel PR will turn this taxonomy into
//                          an actual runtime check; today it documents and
//                          fences the boundary.
//
// The rule checks methods of the annotated member's own class, so the fence
// is necessary, not sufficient — a reference smuggled out of the class
// escapes it. That is the same deal ITC_CHECK offers: a cheap invariant
// that converts the common mistake into a build failure.

#ifndef ITC_COMMON_OWNERSHIP_H_
#define ITC_COMMON_OWNERSHIP_H_

#define ITC_OWNED_BY_KERNEL
#define ITC_KERNEL_ENTRY
#define ITC_KERNEL_QUIESCENT

#endif  // ITC_COMMON_OWNERSHIP_H_
